// Package repro reproduces, in pure Go, the system of Ghosh,
// Halappanavar, Kalyanaraman, Khan and Gebremedhin, "Exploring MPI
// Communication Models for Graph Applications Using Graph Matching as a
// Case Study" (IEEE IPDPS 2019): distributed-memory half-approximate
// weighted graph matching implemented under three MPI communication
// models — nonblocking Send-Recv, MPI-3 one-sided RMA, and MPI-3
// neighborhood collectives — plus the MatchBox-P baseline, all running
// on an in-process MPI-3-like runtime with a calibrated virtual-time
// cost model.
//
// Layout:
//
//	internal/mpi       MPI-3-like runtime (P2P, collectives, graph
//	                   topologies, neighborhood collectives, RMA)
//	internal/graph     CSR graphs, builders, serialization
//	internal/gen       deterministic generators for every input family
//	internal/order     BFS, pseudo-peripheral roots, RCM reordering
//	internal/distgraph 1-D distribution, ghosts, process-graph stats
//	internal/matching  the paper's contribution: serial + 4 parallel
//	                   matchers over pluggable transports
//	internal/core      facade over internal/matching
//	internal/bfs       Graph500-style distributed BFS (comm contrast)
//	internal/metrics   energy/EDP model, performance profiles
//	internal/harness   one experiment per paper table/figure
//	cmd/...            matchbench, gengraph, graphinfo, commmatrix
//	examples/...       runnable scenarios
//
// The benchmarks in bench_test.go regenerate every evaluation artifact
// of the paper; `go run ./cmd/matchbench -exp all` prints them as text
// tables. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
