// Command graphinfo reports graph, distribution, and process-topology
// statistics for a saved graph file: the quantities behind the paper's
// Tables III-VI (|Ep|, dmax, davg, sigma_d, |E'| family).
//
// Usage:
//
//	graphinfo -in graph.csr -p 32
//	graphinfo -in graph.csr -p 32 -rcm     # stats after RCM reordering
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/order"
)

func main() {
	var (
		in  = flag.String("in", "", "input graph (binary CSR, from gengraph)")
		p   = flag.Int("p", 32, "number of ranks for the 1-D block distribution")
		rcm = flag.Bool("rcm", false, "apply RCM before computing distribution stats")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "graphinfo: -in required")
		os.Exit(2)
	}
	g, err := graph.LoadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
	fmt.Println("graph:   ", g.Summary())
	if *rcm {
		g = order.Apply(g, order.RCM(g))
		fmt.Println("post-RCM:", g.Summary())
	}
	d := distgraph.NewBlockDist(g, *p)
	fmt.Println("topology:", d.ProcessGraphStats())
	fmt.Println("ghosts:  ", d.GhostEdgeStats())
	for r := 0; r < min(*p, 8); r++ {
		l := d.BuildLocal(r)
		fmt.Printf("rank %2d: owns [%d,%d) neighbors=%d crossArcs=%d |E'|=%d\n",
			r, l.Lo, l.Hi, len(l.NeighborRanks), l.TotalCrossArcs, l.LocalArcs)
	}
	if *p > 8 {
		fmt.Printf("... (%d more ranks)\n", *p-8)
	}
}
