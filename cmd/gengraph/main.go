// Command gengraph generates the synthetic graph families from the
// paper's Table II, prints their statistics, and optionally saves them in
// the repository's binary CSR format.
//
// Usage:
//
//	gengraph -family rgg -n 100000 -deg 8 -seed 1 -o rgg.csr
//	gengraph -family rmat -scale 14
//	gengraph -family sbp -n 50000 -blocks 200 -deg 16 -overlap 0.55
//	gengraph -family kmer -comps 1000 -minside 5 -maxside 9
//	gengraph -family social -n 80000 -deg 10
//	gengraph -family banded -n 30000 -band 24 -fill 2.5
//	gengraph -family path -n 1000
//	gengraph -family grid -rows 30 -cols 40
//
// Add -rcm to reorder the result with Reverse Cuthill-McKee and -scramble
// to randomize vertex ids first.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func main() {
	var (
		family   = flag.String("family", "", "rgg | rmat | sbp | kmer | social | banded | path | grid")
		n        = flag.Int("n", 10000, "vertices (rgg, sbp, social, banded, path)")
		deg      = flag.Float64("deg", 8, "target average degree (rgg, sbp, social)")
		seed     = flag.Int64("seed", 1, "generator seed")
		scale    = flag.Int("scale", 12, "rmat: log2 vertices")
		edgef    = flag.Int("edgef", 16, "rmat: edge factor")
		blocks   = flag.Int("blocks", 32, "sbp: number of blocks")
		overlap  = flag.Float64("overlap", 0.5, "sbp: cross-block edge probability")
		comps    = flag.Int("comps", 100, "kmer: grid components")
		minSide  = flag.Int("minside", 5, "kmer: min grid side")
		maxSide  = flag.Int("maxside", 9, "kmer: max grid side")
		band     = flag.Int("band", 24, "banded: bandwidth")
		fill     = flag.Float64("fill", 2.5, "banded: in-band edges per vertex")
		long     = flag.Float64("long", 0.002, "banded: long-range edge fraction")
		rows     = flag.Int("rows", 10, "grid: rows")
		cols     = flag.Int("cols", 10, "grid: columns")
		scramble = flag.Bool("scramble", false, "randomize vertex ids")
		rcm      = flag.Bool("rcm", false, "apply Reverse Cuthill-McKee reordering")
		out      = flag.String("o", "", "output file (binary CSR); omit to only print stats")
	)
	flag.Parse()

	var g *graph.CSR
	switch *family {
	case "rgg":
		g = gen.RGG(*n, gen.RGGRadiusForDegree(*n, *deg), *seed)
	case "rmat":
		g = gen.RMAT(*scale, *edgef, 0.57, 0.19, 0.19, 0.05, *seed)
	case "sbp":
		g = gen.SBP(*n, *blocks, *deg, *overlap, *seed)
	case "kmer":
		g = gen.KMerGrids(*comps, *minSide, *maxSide, *seed)
	case "social":
		g = gen.Social(*n, *deg, *seed)
	case "banded":
		g = gen.BandedMesh(*n, *band, *fill, *long, *seed)
	case "path":
		g = gen.Path(*n)
	case "grid":
		g = gen.Grid2D(*rows, *cols)
	default:
		fmt.Fprintln(os.Stderr, "gengraph: unknown -family (want rgg|rmat|sbp|kmer|social|banded|path|grid)")
		os.Exit(2)
	}
	if *scramble {
		g, _ = gen.Scramble(g, *seed^0x5ca1ab1e)
	}
	if *rcm {
		g = order.Apply(g, order.RCM(g))
	}
	fmt.Println(g.Summary())
	if *out != "" {
		var err error
		if strings.HasSuffix(*out, ".mtx") {
			var f *os.File
			if f, err = os.Create(*out); err == nil {
				err = g.WriteMatrixMarket(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		} else {
			err = g.SaveFile(*out)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
