// Command commmatrix runs half-approximate matching and/or Graph500-style
// BFS on a graph and dumps the per-pair communication matrices the paper
// visualizes in Figs 2, 9 and 11, either as a density plot or as CSV.
//
// Usage:
//
//	commmatrix -in graph.csr -p 32 -app matching -model nsr
//	commmatrix -in graph.csr -p 32 -app bfs -csv > bfs.csv
//	commmatrix -family rmat -scale 13 -p 32 -app both
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/transport"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file (binary CSR)")
		family   = flag.String("family", "rmat", "generate instead of loading: rmat | social | sbp")
		scale    = flag.Int("scale", 13, "rmat scale when generating")
		n        = flag.Int("n", 50000, "vertices when generating social/sbp")
		seed     = flag.Int64("seed", 1, "generator seed")
		p        = flag.Int("p", 32, "ranks")
		app      = flag.String("app", "matching", "matching | bfs | both")
		model    = flag.String("model", "nsr", "matching model: nsr | rma | ncl | mbp | ncli | nsra")
		bytes    = flag.Bool("bytes", false, "report byte volumes instead of message counts")
		csv      = flag.Bool("csv", false, "emit the raw matrix as CSV instead of a density plot")
		timeline = flag.Bool("timeline", false, "also print per-rank wait timelines ('#' = blocked)")
	)
	flag.Parse()

	var g *graph.CSR
	var err error
	if *in != "" {
		g, err = graph.LoadFile(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		switch *family {
		case "rmat":
			g = gen.Graph500(*scale, *seed)
		case "social":
			g = gen.Social(*n, 10, *seed)
		case "sbp":
			g = gen.SBP(*n, *n/150, 12, 0.55, *seed)
		default:
			fatal(fmt.Errorf("unknown -family %q", *family))
		}
	}
	fmt.Println("graph:", g.Summary())

	if *app == "matching" || *app == "both" {
		m, err := transport.ParseModel(*model)
		if err != nil {
			fatal(err)
		}
		res, err := matching.Run(g, matching.Options{Procs: *p, Model: m, TrackMatrices: true, TraceWaits: *timeline, Deadline: 10 * time.Minute})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("matching (%v): weight=%.1f cardinality=%d time=%.3fms\n",
			m, res.Weight, res.Cardinality, res.Report.MaxVirtualTime*1e3)
		dump(res.Report, *bytes, *csv)
		if *timeline {
			fmt.Println("wait timeline (virtual time left to right; '#' blocked, ':' mixed, '.' busy):")
			for _, line := range res.Report.RenderTimeline(72) {
				fmt.Println(line)
			}
		}
	}
	if *app == "bfs" || *app == "both" {
		res, err := bfs.Run(g, 0, bfs.Options{Procs: *p, TrackMatrices: true, Deadline: 10 * time.Minute})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bfs: visited=%d levels=%d time=%.3fms\n", res.Visited, res.Levels, res.Report.MaxVirtualTime*1e3)
		dump(res.Report, *bytes, *csv)
	}
}

func dump(rep *mpi.Report, bytes, csv bool) {
	m := rep.MsgMatrix()
	if bytes {
		m = rep.ByteMatrix()
	}
	if csv {
		for _, row := range m {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(cells, ","))
		}
		return
	}
	var max int64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	levels := []byte{' ', '.', ':', '*', '#', '@'}
	for _, row := range m {
		line := make([]byte, len(row))
		for j, v := range row {
			if v == 0 {
				line[j] = ' '
				continue
			}
			idx := 1 + int(int64(len(levels)-1)*v/(max+1))
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			line[j] = levels[idx]
		}
		fmt.Println("|" + string(line) + "|")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commmatrix:", err)
	os.Exit(1)
}
