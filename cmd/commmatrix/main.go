// Command commmatrix runs half-approximate matching and/or Graph500-style
// BFS on a graph and dumps the per-pair communication matrices the paper
// visualizes in Figs 2, 9 and 11, either as a density plot or as CSV.
//
// Usage:
//
//	commmatrix -in graph.csr -p 32 -app matching -model nsr
//	commmatrix -in graph.csr -p 32 -app bfs -csv > bfs.csv
//	commmatrix -family rmat -scale 13 -p 32 -app both
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit so tests can drive the CLI.
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("commmatrix", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input graph file (binary CSR)")
		family   = fs.String("family", "rmat", "generate instead of loading: rmat | social | sbp")
		scale    = fs.Int("scale", 13, "rmat scale when generating")
		n        = fs.Int("n", 50000, "vertices when generating social/sbp")
		seed     = fs.Int64("seed", 1, "generator seed")
		p        = fs.Int("p", 32, "ranks")
		ranks    = fs.Int("ranks", 0, "alias of -p (takes precedence when set)")
		app      = fs.String("app", "matching", "matching | bfs | both")
		model    = fs.String("model", "nsr", "matching model: nsr | rma | ncl | mbp | ncli | nsra | nclc")
		bytes    = fs.Bool("bytes", false, "report byte volumes instead of message counts")
		csv      = fs.Bool("csv", false, "emit the raw matrix as CSV instead of a density plot")
		timeline = fs.Bool("timeline", false, "also print per-rank wait timelines ('#' = blocked)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *app {
	case "matching", "bfs", "both":
	default:
		fmt.Fprintf(stderr, "commmatrix: unknown -app %q (want matching, bfs or both)\n", *app)
		return 2
	}
	if *ranks != 0 {
		*p = *ranks
	}
	if *p < 2 || *p > 1<<20 {
		fmt.Fprintf(stderr, "commmatrix: %d ranks out of range (want 2..%d)\n", *p, 1<<20)
		return 2
	}

	var g *graph.CSR
	var err error
	if *in != "" {
		g, err = graph.LoadFile(*in)
		if err != nil {
			fmt.Fprintln(stderr, "commmatrix:", err)
			return 1
		}
	} else {
		switch *family {
		case "rmat":
			g = gen.Graph500(*scale, *seed)
		case "social":
			g = gen.Social(*n, 10, *seed)
		case "sbp":
			g = gen.SBP(*n, *n/150, 12, 0.55, *seed)
		default:
			fmt.Fprintf(stderr, "commmatrix: unknown -family %q (want rmat, social or sbp)\n", *family)
			return 2
		}
	}
	fmt.Fprintln(stdout, "graph:", g.Summary())

	if *app == "matching" || *app == "both" {
		m, err := transport.ParseModel(*model)
		if err != nil {
			fmt.Fprintln(stderr, "commmatrix:", err)
			return 2
		}
		res, err := matching.Run(g, matching.Options{Procs: *p, Model: m, TrackMatrices: true, TraceWaits: *timeline, Deadline: 10 * time.Minute})
		if err != nil {
			fmt.Fprintln(stderr, "commmatrix:", err)
			return 1
		}
		fmt.Fprintf(stdout, "matching (%v): weight=%.1f cardinality=%d time=%.3fms\n",
			m, res.Weight, res.Cardinality, res.Report.MaxVirtualTime*1e3)
		dump(stdout, res.Report, *bytes, *csv)
		if *timeline {
			fmt.Fprintln(stdout, "wait timeline (virtual time left to right; '#' blocked, ':' mixed, '.' busy):")
			for _, line := range res.Report.RenderTimeline(72) {
				fmt.Fprintln(stdout, line)
			}
		}
	}
	if *app == "bfs" || *app == "both" {
		res, err := bfs.Run(g, 0, bfs.Options{Procs: *p, TrackMatrices: true, Deadline: 10 * time.Minute})
		if err != nil {
			fmt.Fprintln(stderr, "commmatrix:", err)
			return 1
		}
		fmt.Fprintf(stdout, "bfs: visited=%d levels=%d time=%.3fms\n", res.Visited, res.Levels, res.Report.MaxVirtualTime*1e3)
		dump(stdout, res.Report, *bytes, *csv)
	}
	return 0
}

func dump(w io.Writer, rep *mpi.Report, bytes, csv bool) {
	m := rep.MsgMatrix()
	if bytes {
		m = rep.ByteMatrix()
	}
	if csv {
		for _, row := range m {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = fmt.Sprint(v)
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
		}
		return
	}
	var max int64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	levels := []byte{' ', '.', ':', '*', '#', '@'}
	for _, row := range m {
		line := make([]byte, len(row))
		for j, v := range row {
			if v == 0 {
				line[j] = ' '
				continue
			}
			idx := 1 + int(int64(len(levels)-1)*v/(max+1))
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			line[j] = levels[idx]
		}
		fmt.Fprintln(w, "|"+string(line)+"|")
	}
}
