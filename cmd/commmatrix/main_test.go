package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-no-such-flag"}},
		{"bad app", []string{"-app", "sorting"}},
		{"bad family", []string{"-family", "hypercube"}},
		{"bad model", []string{"-family", "rmat", "-scale", "8", "-p", "2", "-model", "smoke-signals"}},
		{"ranks too small", []string{"-family", "rmat", "-scale", "8", "-ranks", "1"}},
		{"ranks too large", []string{"-family", "rmat", "-scale", "8", "-ranks", "2097152"}},
		{"p too small", []string{"-family", "rmat", "-scale", "8", "-p", "0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if code, _, errb := runCLI(t, tc.args...); code != 2 {
				t.Errorf("exit %d, want 2 (stderr %q)", code, errb)
			}
		})
	}
}

func TestMissingInputFileFails(t *testing.T) {
	code, _, errb := runCLI(t, "-in", "/no/such/graph.csr")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb)
	}
}

// TestTinyBothEndToEnd drives matching and BFS on a generated graph and
// checks both matrices come out in CSV form with one row per rank.
func TestTinyBothEndToEnd(t *testing.T) {
	const p = 4
	code, out, errb := runCLI(t, "-family", "rmat", "-scale", "8", "-p", "4", "-app", "both", "-csv")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "graph:") || !strings.Contains(out, "matching (NSR):") || !strings.Contains(out, "bfs:") {
		t.Fatalf("missing sections in output:\n%s", out)
	}
	csvRows := 0
	for _, line := range strings.Split(out, "\n") {
		if cells := strings.Split(line, ","); len(cells) == p && !strings.Contains(line, " ") {
			csvRows++
		}
	}
	if csvRows != 2*p {
		t.Errorf("found %d CSV matrix rows, want %d (two %dx%d matrices):\n%s", csvRows, 2*p, p, p, out)
	}
}

// TestDensityPlotEndToEnd also exercises -ranks, the validated alias
// of -p: three plot rows means three ranks.
func TestDensityPlotEndToEnd(t *testing.T) {
	code, out, errb := runCLI(t, "-family", "sbp", "-n", "2000", "-ranks", "3", "-app", "matching", "-model", "ncl")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "matching (NCL):") {
		t.Fatalf("missing matching section:\n%s", out)
	}
	plotRows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") && strings.HasSuffix(line, "|") {
			plotRows++
		}
	}
	if plotRows != 3 {
		t.Errorf("found %d density rows, want 3:\n%s", plotRows, out)
	}
}
