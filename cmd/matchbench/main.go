// Command matchbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	matchbench -exp fig4a                     # one experiment
//	matchbench -exp all                       # everything (minutes)
//	matchbench -list                          # show the experiment index
//	matchbench -exp fig8 -scale 0.5           # smaller, faster workloads
//	matchbench -exp fig4c -models nsr,ncl     # restrict the model set
//	matchbench -exp fig4c -trace fig4c.json   # Chrome trace of every run
//	matchbench -exp tab8 -profile             # phase-profile table (§V-D)
//
// Each experiment prints the table or series corresponding to one figure
// or table of Ghosh et al., IPDPS 2019, annotated with the shape the
// paper reported. A -trace file loads in chrome://tracing or Perfetto:
// one process per run, one thread track per rank, slices on the modeled
// virtual timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/transport"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig2, fig4a..c, tab3, fig5, fig6, tab4, fig7, tab5, tab6, fig8, fig9, tab7, fig10, tab8, fig11) or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		list     = flag.Bool("list", false, "list experiments and exit")
		verbose  = flag.Bool("v", false, "log progress")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-run deadline")
		models   = flag.String("models", "", "comma-separated model filter (nsr,rma,ncl,mbp,ncli,nsra); empty = experiment defaults")
		trace    = flag.String("trace", "", "write every run as a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
		traceCap = flag.Int("trace-events", 1<<16, "per-rank event ring capacity when tracing")
		profile  = flag.Bool("profile", false, "append a per-experiment phase-profile table (compute/pack/exchange/unpack/wait)")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			e := harness.Find(id)
			fmt.Printf("%-7s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "matchbench: -exp required (or -list); e.g. matchbench -exp fig4a")
		os.Exit(2)
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Deadline = *timeout
	cfg.Profile = *profile
	if *verbose {
		cfg.Out = os.Stderr
	}
	if *models != "" {
		ms, err := transport.ParseModels(*models)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matchbench:", err)
			os.Exit(2)
		}
		cfg.Models = ms
	}
	var collector *mpi.ChromeTrace
	if *trace != "" {
		collector = mpi.NewChromeTrace()
		cfg.TraceEvents = *traceCap
		cfg.OnRun = func(label string, rep *mpi.Report) { collector.Add(label, rep) }
	}

	start := time.Now()
	var err error
	if *exp == "all" {
		err = harness.RunAll(cfg, os.Stdout)
	} else {
		err = harness.RunOne(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "matchbench:", err)
		os.Exit(1)
	}
	if collector != nil {
		f, err := os.Create(*trace)
		if err == nil {
			err = collector.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "matchbench: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d traced runs to %s\n", collector.Len(), *trace)
	}
	fmt.Printf("# completed in %v\n", time.Since(start).Round(time.Millisecond))
}
