// Command matchbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	matchbench -exp fig4a            # one experiment
//	matchbench -exp all              # everything (minutes)
//	matchbench -list                 # show the experiment index
//	matchbench -exp fig8 -scale 0.5  # smaller, faster workloads
//
// Each experiment prints the table or series corresponding to one figure
// or table of Ghosh et al., IPDPS 2019, annotated with the shape the
// paper reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig2, fig4a..c, tab3, fig5, fig6, tab4, fig7, tab5, tab6, fig8, fig9, tab7, fig10, tab8, fig11) or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", false, "log progress")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-run deadline")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			e := harness.Find(id)
			fmt.Printf("%-7s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "matchbench: -exp required (or -list); e.g. matchbench -exp fig4a")
		os.Exit(2)
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Deadline = *timeout
	if *verbose {
		cfg.Out = os.Stderr
	}

	start := time.Now()
	var err error
	if *exp == "all" {
		err = harness.RunAll(cfg, os.Stdout)
	} else {
		err = harness.RunOne(*exp, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "matchbench:", err)
		os.Exit(1)
	}
	fmt.Printf("# completed in %v\n", time.Since(start).Round(time.Millisecond))
}
