// Command matchbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	matchbench -exp fig4a                     # one experiment
//	matchbench -exp all                       # everything (minutes)
//	matchbench -list                          # show the experiment index
//	matchbench -exp fig8 -scale 0.5           # smaller, faster workloads
//	matchbench -exp fig4c -models nsr,ncl     # restrict the model set
//	matchbench -exp fig4a -engine maximal     # asynchronous maximal engine (DESIGN §4f)
//	matchbench -exp fig4c -trace fig4c.json   # Chrome trace of every run
//	matchbench -exp tab8 -profile             # phase-profile table (§V-D)
//	matchbench -exp fig4a -json out.json      # machine-readable run records
//	matchbench -exp fig4a -rounds             # per-round convergence tables
//	matchbench -exp fig4a -perturb full -perturb-seed 0x2a  # perturbed schedules
//	matchbench -exp ranks -ranks 65536        # scheduler scaling curve up to 64K ranks
//	matchbench -exp fig6 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz  # pprof profiles
//
// Each experiment prints the table or series corresponding to one figure
// or table of Ghosh et al., IPDPS 2019, annotated with the shape the
// paper reported. A -trace file loads in chrome://tracing or Perfetto:
// one process per run, one thread track per rank, slices on the modeled
// virtual timeline. A -json file holds schema-versioned records of every
// table and every runtime launch — including, when round telemetry is on,
// the per-round protocol series — for the shape-regression suite and for
// plotting (see internal/harness/record.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/harness"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit so tests can drive the CLI
// end-to-end. Exit codes: 0 success, 1 runtime or output failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id (fig2, fig4a..c, tab3, fig5, fig6, tab4, fig7, tab5, tab6, fig8, fig9, tab7, fig10, tab8, fig11, ranks, ...) or 'all'")
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		list     = fs.Bool("list", false, "list experiments and exit")
		verbose  = fs.Bool("v", false, "log progress")
		timeout  = fs.Duration("timeout", 10*time.Minute, "per-run deadline")
		models   = fs.String("models", "", "comma-separated model filter (nsr,rma,ncl,mbp,ncli,nsra,nclc); empty = experiment defaults")
		engine   = fs.String("engine", "", "matching protocol family: halfapprox (default) or maximal (asynchronous engine; DESIGN §4f)")
		trace    = fs.String("trace", "", "write every run as a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
		traceCap = fs.Int("trace-events", 1<<16, "per-rank event ring capacity when tracing")
		profile  = fs.Bool("profile", false, "append a per-experiment phase-profile table (compute/pack/exchange/unpack/wait)")
		analyze  = fs.Bool("analyze", false, "run the post-mortem trace analyzer on every launch: embeds analysis in -json records and prints each run's top critical-path edges (matchprof renders the full report)")
		jsonOut  = fs.String("json", "", "write tables and run records as schema-versioned JSON")
		rounds   = fs.Bool("rounds", false, "print a per-round convergence table after each run")
		roundCap = fs.Int("round-cap", 512, "per-rank round-log capacity when -json or -rounds is set")
		ranks    = fs.Int("ranks", 0, "rank-count cap for the 'ranks' scaling experiment (0 = default 16384; 65536 runs the full curve)")
		perturb  = fs.String("perturb", "", "schedule-perturbation profile: off, full, or jitter=F,slowdown=F,ties,probemiss=F (see DESIGN §4)")
		pseed    = fs.Uint64("perturb-seed", 1, "perturbation seed (replays the schedule decisions of a PERTURB_SEED repro)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range harness.IDs() {
			e := harness.Find(id)
			fmt.Fprintf(stdout, "%-7s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "matchbench: -exp required (or -list); e.g. matchbench -exp fig4a")
		return 2
	}
	ids := harness.IDs()
	if *exp != "all" {
		if harness.Find(*exp) == nil {
			fmt.Fprintf(stderr, "matchbench: unknown experiment %q; valid ids: all", *exp)
			for _, id := range ids {
				fmt.Fprintf(stderr, ", %s", id)
			}
			fmt.Fprintln(stderr)
			return 2
		}
		ids = []string{*exp}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "matchbench: cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "matchbench: cpuprofile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "matchbench: cpuprofile:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := writeArtifact(*memProf, pprof.WriteHeapProfile); err != nil {
				fmt.Fprintln(stderr, "matchbench: memprofile:", err)
			}
		}()
	}

	if *ranks != 0 && (*ranks < 2 || *ranks > 1<<20) {
		fmt.Fprintf(stderr, "matchbench: -ranks %d out of range (want 0 or 2..%d)\n", *ranks, 1<<20)
		return 2
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	cfg.Deadline = *timeout
	cfg.Profile = *profile
	cfg.Ranks = *ranks
	if *verbose {
		cfg.Out = stderr
	}
	if *models != "" {
		ms, err := transport.ParseModels(*models)
		if err != nil {
			fmt.Fprintln(stderr, "matchbench:", err)
			return 2
		}
		cfg.Models = ms
	}
	if *engine != "" {
		e, err := matching.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(stderr, "matchbench:", err)
			return 2
		}
		cfg.Engine = e
	}
	if *perturb != "" {
		p, err := sched.ParseProfile(*perturb)
		if err != nil {
			fmt.Fprintln(stderr, "matchbench:", err)
			return 2
		}
		cfg.Perturb = p
		cfg.PerturbSeed = *pseed
	}
	var collector *mpi.ChromeTrace
	if *trace != "" {
		collector = mpi.NewChromeTrace()
		cfg.TraceEvents = *traceCap
		cfg.OnRun = func(info harness.RunInfo) { collector.Add(info.Label, info.Report) }
	}
	if *jsonOut != "" || *rounds {
		cfg.Rounds = *roundCap
	}
	if *analyze {
		cfg.Analyze = true
		if cfg.TraceEvents == 0 {
			cfg.TraceEvents = *traceCap
		}
	}

	start := time.Now()
	doc := harness.NewDocument("matchbench", *scale)
	for _, id := range ids {
		rec, err := harness.RunOneRecord(id, cfg, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "matchbench:", err)
			return 1
		}
		doc.Add(rec)
		if *rounds {
			for i := range rec.Runs {
				rec.Runs[i].RenderRounds(stdout)
			}
		}
		if *analyze {
			for i := range rec.Runs {
				renderTopEdges(stdout, stderr, &rec.Runs[i])
			}
		}
	}

	if collector != nil {
		if err := writeArtifact(*trace, collector.Write); err != nil {
			fmt.Fprintln(stderr, "matchbench: trace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "# wrote %d traced runs to %s\n", collector.Len(), *trace)
	}
	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, doc.Write); err != nil {
			fmt.Fprintln(stderr, "matchbench: json:", err)
			return 1
		}
		nruns := 0
		for _, e := range doc.Experiments {
			nruns += len(e.Runs)
		}
		fmt.Fprintf(stdout, "# wrote %d experiment records (%d runs, schema v%d) to %s\n",
			len(doc.Experiments), nruns, harness.SchemaVersion, *jsonOut)
	}
	fmt.Fprintf(stdout, "# completed in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// renderTopEdges prints a run's top-5 critical-path edges (-analyze):
// the cross-rank dependencies that bounded the run's virtual time. The
// full analyzer report is matchprof's job.
func renderTopEdges(stdout, stderr io.Writer, r *harness.RunRecord) {
	if r.Analysis == nil {
		return
	}
	if r.EventsTruncated {
		fmt.Fprintf(stderr, "matchbench: WARNING: %s dropped %d events — analysis is a prefix view (raise -trace-events)\n",
			r.Label, r.Analysis.DroppedEvents)
	}
	cp := &r.Analysis.CriticalPath
	fmt.Fprintf(stdout, "# %s critical path: %.3gs over %d hops; top edges:\n", r.Label, cp.LengthSec, cp.Hops)
	edges := cp.TopEdges
	if len(edges) > 5 {
		edges = edges[:5]
	}
	for _, e := range edges {
		fmt.Fprintf(stdout, "#   r%d<-r%d %s wait %.3gs transfer %.3gs\n",
			e.Rank, e.Peer, e.Class, e.WaitSec, e.TransferSec)
	}
}

// writeArtifact creates path and streams emit's output into it. Create,
// write and close errors all surface: a partial artifact must fail the
// command, not leave a truncated file that still parses.
func writeArtifact(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
