package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListShowsEveryExperiment(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range harness.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestMissingExpIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "-exp required") {
		t.Errorf("stderr = %q", errb)
	}
}

func TestUnknownExpListsValidIDs(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "fig99")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "fig99") {
		t.Errorf("stderr does not name the bad id: %q", errb)
	}
	for _, id := range []string{"fig4a", "tab8", "ext-coloring"} {
		if !strings.Contains(errb, id) {
			t.Errorf("stderr does not list valid id %q: %q", id, errb)
		}
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBadRanksIsUsageError(t *testing.T) {
	for _, v := range []string{"1", "-3", "2097152"} {
		code, _, errb := runCLI(t, "-exp", "ranks", "-ranks", v)
		if code != 2 {
			t.Errorf("-ranks %s: exit %d, want 2", v, code)
		}
		if !strings.Contains(errb, "-ranks") {
			t.Errorf("-ranks %s: stderr does not name the flag: %q", v, errb)
		}
	}
}

// TestRanksExperimentCapped drives the scaling experiment end-to-end
// with a cap below the smallest ladder rung: exactly one row at the cap
// itself, with both a ring record and a matching record in the JSON.
func TestRanksExperimentCapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ranks.json")
	code, out, errb := runCLI(t, "-exp", "ranks", "-ranks", "64", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "== ranks") {
		t.Fatalf("stdout missing ranks table:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc harness.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "ranks" {
		t.Fatalf("experiments = %+v", doc.Experiments)
	}
	e := doc.Experiments[0]
	if len(e.Tables) != 1 || len(e.Tables[0].Rows) != 1 {
		t.Fatalf("want 1 table with 1 row, got %+v", e.Tables)
	}
	if got := e.Tables[0].Rows[0][0]; got != "64" {
		t.Errorf("row rank count = %s, want 64", got)
	}
	apps := map[string]bool{}
	for _, r := range e.Runs {
		apps[r.App] = true
		if r.Procs != 64 {
			t.Errorf("%s: procs = %d, want 64", r.Label, r.Procs)
		}
	}
	if !apps["ring"] || !apps["matching"] {
		t.Errorf("runs missing ring or matching record: %+v", apps)
	}
}

func TestBadModelsIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "fig4a", "-models", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, errb)
	}
}

// TestTinyExperimentToJSON drives one real experiment end-to-end at
// reduced scale and validates the emitted document: schema version,
// experiment and run records, and a per-round series on every matching
// run (the -rounds/-json telemetry path).
func TestTinyExperimentToJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	code, out, errb := runCLI(t, "-exp", "fig4a", "-scale", "0.2", "-json", path, "-rounds")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "== fig4a") || !strings.Contains(out, "== rounds: convergence of") {
		t.Errorf("stdout missing experiment or convergence tables:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc harness.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if doc.Schema != harness.SchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, harness.SchemaVersion)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "fig4a" {
		t.Fatalf("experiments = %+v", doc.Experiments)
	}
	e := doc.Experiments[0]
	if len(e.Tables) == 0 || len(e.Runs) == 0 {
		t.Fatalf("empty record: %d tables, %d runs", len(e.Tables), len(e.Runs))
	}
	for _, r := range e.Runs {
		if r.App != "matching" || r.Model == "" || r.TimeSec <= 0 {
			t.Errorf("malformed run record %+v", r)
		}
		if len(r.RoundSeries) == 0 {
			t.Errorf("%s: no round series despite telemetry being on", r.Label)
		} else if last := r.RoundSeries[len(r.RoundSeries)-1]; last.Unresolved != 0 {
			t.Errorf("%s: final unresolved = %d", r.Label, last.Unresolved)
		}
	}
}

// TestJSONWriteFailureIsReported points -json at an unwritable path; the
// command must fail loudly instead of leaving a missing artifact behind
// a zero exit.
func TestJSONWriteFailureIsReported(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "tab3", "-scale", "0.2", "-json", t.TempDir())
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "json") {
		t.Errorf("stderr does not mention the json failure: %q", errb)
	}
}

// TestProfileFlagsWriteProfiles runs a tiny experiment with both pprof
// flags and checks non-empty profile files appear.
func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	code, _, errb := runCLI(t, "-exp", "tab3", "-scale", "0.2", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestCPUProfileFailureIsReported points -cpuprofile at an unwritable
// path (a directory): usage must fail with exit 1.
func TestCPUProfileFailureIsReported(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "tab3", "-scale", "0.2", "-cpuprofile", t.TempDir())
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "cpuprofile") {
		t.Errorf("stderr does not mention the cpuprofile failure: %q", errb)
	}
}

// TestTraceWriteFailureIsReported does the same for -trace.
func TestTraceWriteFailureIsReported(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "tab3", "-scale", "0.2", "-trace", t.TempDir())
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "trace") {
		t.Errorf("stderr does not mention the trace failure: %q", errb)
	}
}

// TestAnalyzeFlagPrintsTopEdges: -analyze embeds the post-mortem record
// in the JSON artifact and prints each run's top critical-path edges.
func TestAnalyzeFlagPrintsTopEdges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	code, out, errb := runCLI(t, "-exp", "fig4a", "-scale", "0.2", "-models", "nsr", "-analyze", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "top edges:") {
		t.Errorf("stdout missing critical-path summary:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc harness.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.Experiments {
		for _, r := range e.Runs {
			if r.Analysis == nil {
				t.Fatalf("%s: no embedded analysis despite -analyze", r.Label)
			}
			if r.Analysis.CriticalPath.LengthSec != r.TimeSec {
				t.Errorf("%s: path length %v != run time %v",
					r.Label, r.Analysis.CriticalPath.LengthSec, r.TimeSec)
			}
			if len(r.Analysis.WaitStates) == 0 {
				t.Errorf("%s: no wait states", r.Label)
			}
		}
	}
}
