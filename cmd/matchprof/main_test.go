package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoModeIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "-exp or -in") {
		t.Errorf("stderr does not explain the modes: %q", errb)
	}
}

func TestBothModesIsUsageError(t *testing.T) {
	if code, _, _ := runCLI(t, "-exp", "fig4c", "-in", "x.json"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownExpListsValidIDs(t *testing.T) {
	code, _, errb := runCLI(t, "-exp", "fig99")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "fig4c") {
		t.Errorf("stderr does not list valid ids: %q", errb)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit code != 2")
	}
}

func TestBadModelsIsUsageError(t *testing.T) {
	if code, _, _ := runCLI(t, "-exp", "fig4c", "-models", "nope"); code != 2 {
		t.Errorf("bad -models: exit code != 2")
	}
}

func TestMissingInputFileIsRuntimeError(t *testing.T) {
	if code, _, _ := runCLI(t, "-in", filepath.Join(t.TempDir(), "absent.json")); code != 1 {
		t.Errorf("missing -in file: exit code != 1")
	}
}

func TestGarbageInputIsRuntimeError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{\"nope\": true}"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "-in", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb)
	}
}

// TestExpEndToEnd drives the full pipeline: re-run fig4c small, render
// the analyzer report, write JSON and the enriched trace, then feed the
// JSON back through -in.
func TestExpEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "analysis.json")
	tracePath := filepath.Join(dir, "trace.json")
	code, out, errb := runCLI(t,
		"-exp", "fig4c", "-scale", "0.25", "-models", "nsr,ncl",
		"-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
	}
	// Trace separately under NSR alone: the "outstanding msgs" counter
	// tracks user p2p messages, which pure-collective models don't have.
	if code, _, errb := runCLI(t,
		"-exp", "fig4c", "-scale", "0.25", "-models", "nsr",
		"-trace", tracePath); code != 0 {
		t.Fatalf("trace run exit %d, want 0\nstderr: %s", code, errb)
	}
	for _, want := range []string{"wait state", "critical path", "efficiency", "model comparison", "late_sender"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc harness.Document
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("-json artifact does not parse: %v", err)
	}
	if doc.Schema != harness.SchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, harness.SchemaVersion)
	}
	analyzed := 0
	for _, e := range doc.Experiments {
		for _, r := range e.Runs {
			if r.Analysis != nil {
				analyzed++
				if r.Analysis.CriticalPath.LengthSec != r.TimeSec {
					t.Errorf("%s: path length %v != run time %v",
						r.Label, r.Analysis.CriticalPath.LengthSec, r.TimeSec)
				}
			}
		}
	}
	if analyzed == 0 {
		t.Fatal("no run records carry an embedded analysis")
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(trace) {
		t.Error("-trace artifact is not valid JSON")
	}
	for _, want := range []string{"outstanding msgs", "wait depth", "critical path"} {
		if !strings.Contains(string(trace), want) {
			t.Errorf("trace missing %q track", want)
		}
	}

	// Round-trip: render the written document without re-running.
	code, out2, errb := runCLI(t, "-in", jsonPath)
	if code != 0 {
		t.Fatalf("-in exit %d, want 0\nstderr: %s", code, errb)
	}
	if !strings.Contains(out2, "critical path") {
		t.Errorf("-in render missing critical path:\n%.400s", out2)
	}
}

// TestInWithoutAnalysisFails: a document whose runs carry no analysis
// renders nothing and must say so.
func TestInWithoutAnalysisFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.json")
	doc := harness.NewDocument("test", 1)
	doc.Add(&harness.ExperimentRecord{ID: "x", Runs: []harness.RunRecord{{Label: "plain run"}}})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	code, out, errb := runCLI(t, "-in", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "no embedded analysis") && !strings.Contains(errb, "no analyzable runs") {
		t.Errorf("missing-analysis hint absent\nstdout: %s\nstderr: %s", out, errb)
	}
}

// TestJSONWriteFailureIsReported mirrors the matchbench contract: a
// failing artifact write is an error exit, not a silent success.
func TestJSONWriteFailureIsReported(t *testing.T) {
	code, _, errb := runCLI(t,
		"-exp", "fig4c", "-scale", "0.25", "-models", "nsr",
		"-json", filepath.Join(t.TempDir(), "no", "such", "dir.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "json") {
		t.Errorf("stderr does not mention the json failure: %q", errb)
	}
}
