// Command matchprof is the post-mortem performance profiler: it runs
// (or loads) experiments with event tracing on and renders what the
// trace analyzer (internal/analysis) extracts — wait-state tables with
// causing ranks, the virtual-time critical path, POP-style efficiency
// factors and a per-model comparison.
//
// Usage:
//
//	matchprof -exp fig4c                          # re-run one experiment, analyze every launch
//	matchprof -exp fig4c -models nsr,ncl          # restrict the model set
//	matchprof -in records.json                    # render analysis embedded by matchbench -json -analyze
//	matchprof -exp fig4c -json analysis.json      # machine-readable schema-versioned records
//	matchprof -exp fig4c -trace slowest.json      # enriched Perfetto trace of the slowest run
//	matchprof -exp ranks -ranks 64                # scheduler-experiment cap, as in matchbench
//
// The enriched trace adds counter tracks (outstanding messages, wait
// depth) and a critical-path track to the per-rank slices; load it in
// chrome://tracing or Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/harness"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit so tests can drive the CLI
// end-to-end. Exit codes: 0 success, 1 runtime or output failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id to re-run under the analyzer (see matchbench -list)")
		in       = fs.String("in", "", "read a matchbench -json document (or single run record) instead of re-running")
		scale    = fs.Float64("scale", 1.0, "workload scale factor (with -exp)")
		models   = fs.String("models", "", "comma-separated model filter (nsr,rma,ncl,mbp,ncli,nsra,nclc)")
		timeout  = fs.Duration("timeout", 10*time.Minute, "per-run deadline")
		topK     = fs.Int("top", 10, "cause-list and critical-path edge cap")
		traceCap = fs.Int("trace-events", 1<<16, "per-rank event ring capacity")
		roundCap = fs.Int("round-cap", 512, "per-rank round-log capacity (per-round wait resolution)")
		ranks    = fs.Int("ranks", 0, "rank-count cap for the 'ranks' scaling experiment")
		jsonOut  = fs.String("json", "", "write the analyzed run records as schema-versioned JSON")
		trace    = fs.String("trace", "", "write the slowest run as an enriched Chrome trace (counters + critical path)")
		verbose  = fs.Bool("v", false, "log harness progress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*exp == "") == (*in == "") {
		fmt.Fprintln(stderr, "matchprof: exactly one of -exp or -in required; e.g. matchprof -exp fig4c")
		return 2
	}

	var doc *harness.Document
	var slowest *harness.RunInfo
	if *in != "" {
		var err error
		doc, err = loadDocument(*in)
		if err != nil {
			fmt.Fprintln(stderr, "matchprof:", err)
			return 1
		}
	} else {
		if harness.Find(*exp) == nil {
			fmt.Fprintf(stderr, "matchprof: unknown experiment %q; valid ids:", *exp)
			for _, id := range harness.IDs() {
				fmt.Fprintf(stderr, " %s", id)
			}
			fmt.Fprintln(stderr)
			return 2
		}
		cfg := harness.DefaultConfig()
		cfg.Scale = *scale
		cfg.Deadline = *timeout
		cfg.Analyze = true
		cfg.TraceEvents = *traceCap
		cfg.Rounds = *roundCap
		cfg.Ranks = *ranks
		if *verbose {
			cfg.Out = stderr
		}
		if *models != "" {
			ms, err := transport.ParseModels(*models)
			if err != nil {
				fmt.Fprintln(stderr, "matchprof:", err)
				return 2
			}
			cfg.Models = ms
		}
		if *trace != "" {
			cfg.OnRun = func(info harness.RunInfo) {
				if slowest == nil || info.Report.MaxVirtualTime > slowest.Report.MaxVirtualTime {
					copied := info
					slowest = &copied
				}
			}
		}
		doc = harness.NewDocument("matchprof", *scale)
		rec, err := harness.RunOneRecord(*exp, cfg, io.Discard)
		if err != nil {
			fmt.Fprintln(stderr, "matchprof:", err)
			return 1
		}
		doc.Add(rec)
	}

	rendered, skipped := 0, 0
	var all []*analysis.Record
	for _, e := range doc.Experiments {
		for i := range e.Runs {
			r := &e.Runs[i]
			if r.Analysis == nil {
				skipped++
				continue
			}
			if r.EventsTruncated || r.Analysis.EventsTruncated {
				fmt.Fprintf(stderr, "matchprof: WARNING: %s dropped %d events — analysis is a prefix view (raise -trace-events)\n",
					r.Label, r.Analysis.DroppedEvents)
			}
			r.Analysis.Render(stdout, r.Label)
			fmt.Fprintln(stdout)
			all = append(all, r.Analysis)
			rendered++
		}
	}
	if skipped > 0 {
		fmt.Fprintf(stdout, "# %d runs had no embedded analysis (regenerate with matchbench -json -analyze or matchprof -exp)\n", skipped)
	}
	if rendered == 0 {
		fmt.Fprintln(stderr, "matchprof: no analyzable runs found")
		return 1
	}
	if len(all) > 1 {
		fmt.Fprintln(stdout, "== model comparison ==")
		analysis.RenderComparison(stdout, all)
	}

	if *trace != "" && slowest != nil {
		rec, err := analysis.Analyze(slowest.Report, analysis.Options{
			Model: slowest.Model, Telemetry: slowest.Telemetry, TopK: *topK,
		})
		if err != nil {
			fmt.Fprintln(stderr, "matchprof: trace:", err)
			return 1
		}
		if err := writeArtifact(*trace, func(w io.Writer) error {
			return analysis.WriteChromeTrace(w, slowest.Label, slowest.Report, rec)
		}); err != nil {
			fmt.Fprintln(stderr, "matchprof: trace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "# wrote enriched trace of %s to %s\n", slowest.Label, *trace)
	}
	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, doc.Write); err != nil {
			fmt.Fprintln(stderr, "matchprof: json:", err)
			return 1
		}
		fmt.Fprintf(stdout, "# wrote %d analyzed runs (schema v%d) to %s\n",
			rendered, harness.SchemaVersion, *jsonOut)
	}
	return 0
}

// loadDocument reads a matchbench/matchprof JSON document; a bare
// RunRecord object is accepted too and wrapped in a synthetic document.
func loadDocument(path string) (*harness.Document, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc harness.Document
	if err := json.Unmarshal(blob, &doc); err == nil && len(doc.Experiments) > 0 {
		if doc.Schema > harness.SchemaVersion {
			return nil, fmt.Errorf("%s: schema v%d is newer than this binary understands (v%d)",
				path, doc.Schema, harness.SchemaVersion)
		}
		return &doc, nil
	}
	var rr harness.RunRecord
	if err := json.Unmarshal(blob, &rr); err != nil || rr.Label == "" {
		return nil, fmt.Errorf("%s: neither a run-record document nor a single run record", path)
	}
	doc = harness.Document{Schema: harness.SchemaVersion, Generator: "matchprof"}
	doc.Add(&harness.ExperimentRecord{ID: "imported", Runs: []harness.RunRecord{rr}})
	return &doc, nil
}

// writeArtifact creates path and streams emit's output into it; create,
// write and close errors all surface.
func writeArtifact(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
