// Package gen provides deterministic graph generators reproducing, at
// laptop scale, the structural character of every input family in the
// paper's Table II:
//
//   - RGG — random geometric graphs whose 1-D strip ordering bounds each
//     process's neighborhood to at most two peers (paper §V-B);
//   - RMAT/Graph500 — Kronecker graphs used for the weak-scaling study
//     and the BFS communication-pattern contrast;
//   - SBP — degree-corrected stochastic block partition graphs ("high
//     overlap, low block sizes"), whose dense process connectivity is
//     where Send-Recv beats the collectives (Fig 4c, Table III);
//   - KMerGrids — protein k-mer analogues: many packed grid components
//     of diverse sizes (Fig 5);
//   - ChungLu/Social — heavy-tailed social networks standing in for
//     Orkut and Friendster (Fig 6, Table IV);
//   - BandedMesh — Cage15/HV15R-like banded meshes for the RCM
//     reordering study (Fig 7-9, Tables V-VI);
//   - Path/Grid2D — pathological uniform-weight instances motivating
//     hashed tie-breaking (paper §III-A).
//
// All generators are pure functions of their parameters and seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// uniformWeight draws an edge weight in (0, 100].
func uniformWeight(rng *rand.Rand) float64 {
	return 100 * (1 - rng.Float64())
}

// RGG generates a random geometric graph: n points uniform in the unit
// square, an edge between points within Euclidean distance radius, and
// vertex ids assigned in ascending x order. The x-sorted numbering means
// a 1-D block distribution over P ranks yields vertical strips, and when
// radius < 1/P each rank's process neighborhood contains at most its two
// adjacent strips — the property the paper's distributed RGG generator
// guarantees.
func RGG(n int, radius float64, seed int64) *graph.CSR {
	if radius <= 0 || radius > 1 {
		panic(fmt.Sprintf("gen: RGG radius %g out of (0,1]", radius))
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	sort.Sort(&pointSorter{xs, ys})

	// Cell binning for O(n) expected neighbor search.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] / radius)
		cy := int(ys[i] / radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	bins := make(map[[2]int][]int)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		bins[[2]int{cx, cy}] = append(bins[[2]int{cx, cy}], i)
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bins[[2]int{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(i, j, uniformWeight(rng))
					}
				}
			}
		}
	}
	return b.Build()
}

type pointSorter struct{ xs, ys []float64 }

func (p *pointSorter) Len() int           { return len(p.xs) }
func (p *pointSorter) Less(i, j int) bool { return p.xs[i] < p.xs[j] }
func (p *pointSorter) Swap(i, j int) {
	p.xs[i], p.xs[j] = p.xs[j], p.xs[i]
	p.ys[i], p.ys[j] = p.ys[j], p.ys[i]
}

// RGGRadiusForDegree returns the radius giving expected average degree d
// for an n-point RGG (d = n*pi*r^2).
func RGGRadiusForDegree(n int, d float64) float64 {
	return math.Sqrt(d / (math.Pi * float64(n)))
}

// RMAT generates a recursive-matrix (Kronecker) graph with 2^scale
// vertices and edgeFactor*2^scale sampled edges, using quadrant
// probabilities (a,b,c,d). Duplicate samples and self loops are dropped
// by the builder, so the realized edge count is slightly lower, as in
// Graph500 practice.
func RMAT(scale, edgeFactor int, a, bq, cq, dq float64, seed int64) *graph.CSR {
	if s := a + bq + cq + dq; math.Abs(s-1) > 1e-9 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %g, want 1", s))
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+bq:
				v |= 1 << bit
			case r < a+bq+cq:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		b.AddEdge(u, v, uniformWeight(rng))
	}
	return b.Build()
}

// Graph500 generates an R-MAT graph with the Graph500 benchmark
// parameters: a=0.57, b=c=0.19, d=0.05 and edge factor 16.
func Graph500(scale int, seed int64) *graph.CSR {
	return RMAT(scale, 16, 0.57, 0.19, 0.19, 0.05, seed)
}

// SBP generates a degree-corrected stochastic-block-partition graph of n
// vertices in blocks blocks with expected average degree avgDeg.
// overlap in [0,1) is the probability that an edge leaves its block, and
// cross-block endpoints are spread uniformly over all other blocks — high
// overlap with small blocks ("HILO") therefore connects every partition
// to every other, which is exactly why the paper's process graphs for
// this family are near-complete (Table III).
func SBP(n, blocks int, avgDeg, overlap float64, seed int64) *graph.CSR {
	if blocks < 1 || blocks > n {
		panic(fmt.Sprintf("gen: SBP blocks=%d out of [1,%d]", blocks, n))
	}
	if overlap < 0 || overlap >= 1 {
		panic(fmt.Sprintf("gen: SBP overlap=%g out of [0,1)", overlap))
	}
	rng := rand.New(rand.NewSource(seed))
	m := int(float64(n) * avgDeg / 2)
	blockSize := (n + blocks - 1) / blocks
	// Rounding can leave trailing blocks empty; only target real ones.
	blocks = (n + blockSize - 1) / blockSize
	blockOf := func(v int) int { return v / blockSize }
	randIn := func(blk int) int {
		lo := blk * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		return lo + rng.Intn(hi-lo)
	}
	b := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < overlap && blocks > 1 {
			// Cross-block edge to a uniformly random other block.
			blk := rng.Intn(blocks - 1)
			if blk >= blockOf(u) {
				blk++
			}
			v = randIn(blk)
		} else {
			v = randIn(blockOf(u))
		}
		b.AddEdge(u, v, uniformWeight(rng))
	}
	return b.Build()
}

// KMerGrids generates a protein-k-mer-style input: components disjoint
// 2-D grid components whose side lengths are drawn from [minSide,
// maxSide], numbered component by component in row-major order. The
// paper notes these graphs "consist of grids of different sizes" whose
// dense packing stresses neighborhood collectives (Fig 5).
func KMerGrids(components, minSide, maxSide int, seed int64) *graph.CSR {
	if minSide < 1 || maxSide < minSide {
		panic(fmt.Sprintf("gen: KMerGrids sides [%d,%d] invalid", minSide, maxSide))
	}
	rng := rand.New(rand.NewSource(seed))
	type dims struct{ r, c int }
	sizes := make([]dims, components)
	total := 0
	for i := range sizes {
		r := minSide + rng.Intn(maxSide-minSide+1)
		c := minSide + rng.Intn(maxSide-minSide+1)
		sizes[i] = dims{r, c}
		total += r * c
	}
	b := graph.NewBuilder(total)
	base := 0
	for _, d := range sizes {
		id := func(i, j int) int { return base + i*d.c + j }
		for i := 0; i < d.r; i++ {
			for j := 0; j < d.c; j++ {
				if j+1 < d.c {
					b.AddEdge(id(i, j), id(i, j+1), uniformWeight(rng))
				}
				if i+1 < d.r {
					b.AddEdge(id(i, j), id(i+1, j), uniformWeight(rng))
				}
			}
		}
		base += d.r * d.c
	}
	return b.Build()
}

// ChungLu generates a graph with an expected power-law degree sequence
// of exponent gamma (> 2) and expected average degree avgDeg, by
// sampling endpoint pairs proportional to per-vertex weights. Heavy-tail
// hubs connect distant id ranges, so block partitions of these graphs
// produce near-complete process graphs — the paper's Friendster/Orkut
// behavior (Table IV).
func ChungLu(n int, avgDeg, gamma float64, seed int64) *graph.CSR {
	if gamma <= 2 {
		panic(fmt.Sprintf("gen: ChungLu gamma=%g must exceed 2", gamma))
	}
	rng := rand.New(rand.NewSource(seed))
	// Desired expected degrees: w_i proportional to (i+i0)^(-1/(gamma-1)).
	w := make([]float64, n)
	exp := -1 / (gamma - 1)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+10), exp)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	cum := make([]float64, n+1)
	for i := range w {
		w[i] *= scale
		cum[i+1] = cum[i] + w[i]
	}
	totalW := cum[n]
	draw := func() int {
		x := rng.Float64() * totalW
		return sort.SearchFloat64s(cum[1:], x)
	}
	// Scatter hubs across the id space so hubs do not all land in rank 0's
	// block: apply a deterministic hash shuffle of ids.
	perm := rand.New(rand.NewSource(seed ^ 0x5bd1e995)).Perm(n)
	m := int(avgDeg * float64(n) / 2)
	b := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u, v := draw(), draw()
		b.AddEdge(perm[u], perm[v], uniformWeight(rng))
	}
	return b.Build()
}

// Social generates an Orkut/Friendster-style social network: power law
// with exponent 2.3.
func Social(n int, avgDeg float64, seed int64) *graph.CSR {
	return ChungLu(n, avgDeg, 2.3, seed)
}

// BandedMesh generates a Cage15/HV15R-style banded mesh: a Hamiltonian
// chain plus fill random edges per vertex within +-band, plus a fraction
// longRange of uniformly random long edges that give the "irregular block
// structures" the paper observes along the diagonal (Fig 9).
func BandedMesh(n, band int, fill, longRange float64, seed int64) *graph.CSR {
	if band < 1 {
		panic("gen: BandedMesh band must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1, uniformWeight(rng))
	}
	extra := int(fill * float64(n))
	for e := 0; e < extra; e++ {
		u := rng.Intn(n)
		off := 1 + rng.Intn(band)
		v := u + off
		if v >= n {
			v = u - off
			if v < 0 {
				continue
			}
		}
		b.AddEdge(u, v, uniformWeight(rng))
	}
	far := int(longRange * float64(n))
	for e := 0; e < far; e++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), uniformWeight(rng))
	}
	return b.Build()
}

// Path returns the pathological path graph 0-1-...-(n-1) with all edge
// weights equal — the instance where locally-dominant matching without
// hashed tie-breaking degenerates to a sequential chain.
func Path(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

// Grid2D returns an r-by-c grid with unit weights and row-major ids,
// the second pathological family from §III-A.
func Grid2D(r, c int) *graph.CSR {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return b.Build()
}

// OrderByDegree relabels g so vertex ids descend by degree (ties by old
// id). Sparse-matrix collections often store rows grouped by structural
// role, concentrating dense rows; this ordering models that "original"
// layout for the reordering study: per-block work is skewed until RCM
// interleaves degrees along BFS levels.
func OrderByDegree(g *graph.CSR) *graph.CSR {
	n := g.NumVertices()
	byDeg := make([]int, n)
	for i := range byDeg {
		byDeg[i] = i
	}
	sort.Slice(byDeg, func(a, b int) bool {
		da, db := g.Degree(byDeg[a]), g.Degree(byDeg[b])
		if da != db {
			return da > db
		}
		return byDeg[a] < byDeg[b]
	})
	perm := make([]int, n)
	for newID, oldID := range byDeg {
		perm[oldID] = newID
	}
	return g.Permute(perm)
}

// Scramble relabels g by a seeded random permutation and returns the new
// graph along with the permutation used (newID = perm[oldID]). The RCM
// experiments scramble a banded mesh to obtain the "original" (poorly
// ordered) input that reordering then repairs.
func Scramble(g *graph.CSR, seed int64) (*graph.CSR, []int) {
	perm := rand.New(rand.NewSource(seed)).Perm(g.NumVertices())
	return g.Permute(perm), perm
}
