// Package gen provides deterministic graph generators reproducing, at
// laptop scale, the structural character of every input family in the
// paper's Table II:
//
//   - RGG — random geometric graphs whose 1-D strip ordering bounds each
//     process's neighborhood to at most two peers (paper §V-B);
//   - RMAT/Graph500 — Kronecker graphs used for the weak-scaling study
//     and the BFS communication-pattern contrast;
//   - SBP — degree-corrected stochastic block partition graphs ("high
//     overlap, low block sizes"), whose dense process connectivity is
//     where Send-Recv beats the collectives (Fig 4c, Table III);
//   - KMerGrids — protein k-mer analogues: many packed grid components
//     of diverse sizes (Fig 5);
//   - ChungLu/Social — heavy-tailed social networks standing in for
//     Orkut and Friendster (Fig 6, Table IV);
//   - BandedMesh — Cage15/HV15R-like banded meshes for the RCM
//     reordering study (Fig 7-9, Tables V-VI);
//   - Path/Grid2D — pathological uniform-weight instances motivating
//     hashed tie-breaking (paper §III-A).
//
// All generators are pure functions of their parameters and seed, and
// independent of GOMAXPROCS: the sample-index space is partitioned into
// fixed-size chunks, each chunk draws from its own counter stream
// derived from (seed, generator salt, chunk index), and chunks are
// fanned out over workers. However the chunks land on workers, chunk c
// always produces the same samples, so the edge multiset — and through
// the canonicalizing CSR builder, the graph — is a pure function of
// (params, seed).
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Per-generator stream salts: every (generator, purpose) pair derives
// its streams under a distinct salt so no two generators — and no two
// sample classes within one generator — ever share a stream.
const (
	saltRGGPoint  = 0xa1 // RGG point coordinates
	saltRGGWeight = 0xa2 // RGG per-edge weights (keyed by endpoint pair)
	saltRMAT      = 0xa3 // RMAT edge samples
	saltSBP       = 0xa4 // SBP edge samples
	saltKMerDims  = 0xa5 // KMerGrids component dimensions
	saltKMerW     = 0xa6 // KMerGrids per-component weights
	saltCLPerm    = 0xa7 // ChungLu hub-scatter permutation
	saltCLSample  = 0xa8 // ChungLu edge samples
	saltMeshChain = 0xa9 // BandedMesh chain weights
	saltMeshFill  = 0xaa // BandedMesh in-band fill samples
	saltMeshFar   = 0xab // BandedMesh long-range samples
	saltScramble  = 0xac // Scramble permutation
)

// sampleChunk is the fixed chunk width of the sample-index space. It is
// a constant — never derived from the worker count — because the chunk
// boundaries define which stream each sample draws from.
const sampleChunk = 1 << 14

// chunkStream returns the counter stream for chunk c of the sample
// class identified by salt.
func chunkStream(seed int64, salt uint64, c int) rng.Stream {
	return rng.NewStream(rng.Derive(uint64(seed), salt, uint64(c)))
}

// forChunks partitions [0, m) into fixed sampleChunk-wide chunks and
// fans the chunks out over workers: fn(c, lo, hi) handles samples
// [lo, hi) of chunk c. Each worker processes a contiguous run of whole
// chunks, so per-chunk streams never straddle workers.
func forChunks(m int, fn func(c, lo, hi int)) {
	nc := (m + sampleChunk - 1) / sampleChunk
	par.Ranges(nc, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * sampleChunk
			hi := lo + sampleChunk
			if hi > m {
				hi = m
			}
			fn(c, lo, hi)
		}
	})
}

// uniformWeight draws an edge weight in (0, 100].
func uniformWeight(s *rng.Stream) float64 {
	return 100 * (1 - s.Float64())
}

// pairWeight is the pure-function form of uniformWeight for edges
// discovered in parallel (RGG): the weight of edge {u,v} under seed,
// independent of discovery order. Still in (0, 100].
func pairWeight(seed int64, salt uint64, u, v int) float64 {
	return 100 * (1 - rng.U01(rng.Derive(uint64(seed), salt, uint64(u), uint64(v))))
}

// RGG generates a random geometric graph: n points uniform in the unit
// square, an edge between points within Euclidean distance radius, and
// vertex ids assigned in ascending x order. The x-sorted numbering means
// a 1-D block distribution over P ranks yields vertical strips, and when
// radius < 1/P each rank's process neighborhood contains at most its two
// adjacent strips — the property the paper's distributed RGG generator
// guarantees.
//
// Points are sampled per chunk, neighbor search runs over a flat
// counting-sorted cell grid, and edge discovery fans out over vertex
// spans with pure per-pair weights — the discovered multiset is
// worker-count independent even though per-span buffers are
// concatenated in span order.
func RGG(n int, radius float64, seed int64) *graph.CSR {
	if radius <= 0 || radius > 1 {
		panic(fmt.Sprintf("gen: RGG radius %g out of (0,1]", radius))
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	forChunks(n, func(c, lo, hi int) {
		s := chunkStream(seed, saltRGGPoint, c)
		for i := lo; i < hi; i++ {
			xs[i] = s.Float64()
			ys[i] = s.Float64()
		}
	})
	sort.Sort(&pointSorter{xs, ys})

	// Flat cell grid for O(n) expected neighbor search. Cell width is
	// 1/cells >= radius (so 3x3 neighborhoods suffice); cells is capped
	// near sqrt(n) to keep the grid O(n) even for tiny radii.
	cells := int(1 / radius)
	if cap := int(math.Sqrt(float64(n))) + 1; cells > cap {
		cells = cap
	}
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) int {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cy*cells + cx
	}
	// Counting-sort the point indices by cell (stable: ascending point id
	// within each cell), replacing the old map-of-slices binning.
	ncell := cells * cells
	cell := make([]int32, n)
	off := make([]int32, ncell+1)
	for i := 0; i < n; i++ {
		cid := cellOf(i)
		cell[i] = int32(cid)
		off[cid+1]++
	}
	for c := 0; c < ncell; c++ {
		off[c+1] += off[c]
	}
	binIdx := make([]int32, n)
	cursor := make([]int32, ncell)
	copy(cursor, off[:ncell])
	for i := 0; i < n; i++ {
		c := cell[i]
		binIdx[cursor[c]] = int32(i)
		cursor[c]++
	}

	// Parallel edge discovery over vertex spans. Weights are a pure
	// function of (seed, i, j), so the multiset is span-independent; the
	// builder canonicalizes away the concatenation order.
	r2 := radius * radius
	spans := par.Split(n, 2048)
	bufs := make([][]graph.Edge, len(spans))
	par.Do(spans, func(si, lo, hi int) {
		var buf []graph.Edge
		for i := lo; i < hi; i++ {
			cx, cy := int(cell[i])%cells, int(cell[i])/cells
			for dy := -1; dy <= 1; dy++ {
				ny := cy + dy
				if ny < 0 || ny >= cells {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					nx := cx + dx
					if nx < 0 || nx >= cells {
						continue
					}
					cid := ny*cells + nx
					for _, j32 := range binIdx[off[cid]:off[cid+1]] {
						j := int(j32)
						if j <= i {
							continue
						}
						ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
						if ddx*ddx+ddy*ddy <= r2 {
							buf = append(buf, graph.Edge{U: i, V: j, W: pairWeight(seed, saltRGGWeight, i, j)})
						}
					}
				}
			}
		}
		bufs[si] = buf
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	edges := make([]graph.Edge, 0, total)
	for _, b := range bufs {
		edges = append(edges, b...)
	}
	b := graph.NewBuilder(n)
	b.UseEdges(edges)
	return b.Build()
}

type pointSorter struct{ xs, ys []float64 }

func (p *pointSorter) Len() int           { return len(p.xs) }
func (p *pointSorter) Less(i, j int) bool { return p.xs[i] < p.xs[j] }
func (p *pointSorter) Swap(i, j int) {
	p.xs[i], p.xs[j] = p.xs[j], p.xs[i]
	p.ys[i], p.ys[j] = p.ys[j], p.ys[i]
}

// RGGRadiusForDegree returns the radius giving expected average degree d
// for an n-point RGG (d = n*pi*r^2).
func RGGRadiusForDegree(n int, d float64) float64 {
	return math.Sqrt(d / (math.Pi * float64(n)))
}

// RMAT generates a recursive-matrix (Kronecker) graph with 2^scale
// vertices and edgeFactor*2^scale sampled edges, using quadrant
// probabilities (a,b,c,d). Duplicate samples and self loops are dropped
// by the builder, so the realized edge count is slightly lower, as in
// Graph500 practice. Samples fan out per chunk; sample e always lands at
// edges[e].
func RMAT(scale, edgeFactor int, a, bq, cq, dq float64, seed int64) *graph.CSR {
	if s := a + bq + cq + dq; math.Abs(s-1) > 1e-9 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %g, want 1", s))
	}
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]graph.Edge, m)
	forChunks(m, func(c, lo, hi int) {
		s := chunkStream(seed, saltRMAT, c)
		for e := lo; e < hi; e++ {
			u, v := 0, 0
			for bit := 0; bit < scale; bit++ {
				r := s.Float64()
				switch {
				case r < a:
					// top-left: no bits set
				case r < a+bq:
					v |= 1 << bit
				case r < a+bq+cq:
					u |= 1 << bit
				default:
					u |= 1 << bit
					v |= 1 << bit
				}
			}
			edges[e] = graph.Edge{U: u, V: v, W: uniformWeight(&s)}
		}
	})
	b := graph.NewBuilder(n)
	b.UseEdges(edges)
	return b.Build()
}

// Graph500 generates an R-MAT graph with the Graph500 benchmark
// parameters: a=0.57, b=c=0.19, d=0.05 and edge factor 16.
func Graph500(scale int, seed int64) *graph.CSR {
	return RMAT(scale, 16, 0.57, 0.19, 0.19, 0.05, seed)
}

// SBP generates a degree-corrected stochastic-block-partition graph of n
// vertices in blocks blocks with expected average degree avgDeg.
// overlap in [0,1) is the probability that an edge leaves its block, and
// cross-block endpoints are spread uniformly over all other blocks — high
// overlap with small blocks ("HILO") therefore connects every partition
// to every other, which is exactly why the paper's process graphs for
// this family are near-complete (Table III).
func SBP(n, blocks int, avgDeg, overlap float64, seed int64) *graph.CSR {
	if blocks < 1 || blocks > n {
		panic(fmt.Sprintf("gen: SBP blocks=%d out of [1,%d]", blocks, n))
	}
	if overlap < 0 || overlap >= 1 {
		panic(fmt.Sprintf("gen: SBP overlap=%g out of [0,1)", overlap))
	}
	m := int(float64(n) * avgDeg / 2)
	blockSize := (n + blocks - 1) / blocks
	// Rounding can leave trailing blocks empty; only target real ones.
	blocks = (n + blockSize - 1) / blockSize
	blockOf := func(v int) int { return v / blockSize }
	randIn := func(s *rng.Stream, blk int) int {
		lo := blk * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		return lo + s.Intn(hi-lo)
	}
	edges := make([]graph.Edge, m)
	forChunks(m, func(c, lo, hi int) {
		s := chunkStream(seed, saltSBP, c)
		for e := lo; e < hi; e++ {
			u := s.Intn(n)
			var v int
			if s.Float64() < overlap && blocks > 1 {
				// Cross-block edge to a uniformly random other block.
				blk := s.Intn(blocks - 1)
				if blk >= blockOf(u) {
					blk++
				}
				v = randIn(&s, blk)
			} else {
				v = randIn(&s, blockOf(u))
			}
			edges[e] = graph.Edge{U: u, V: v, W: uniformWeight(&s)}
		}
	})
	b := graph.NewBuilder(n)
	b.UseEdges(edges)
	return b.Build()
}

// KMerGrids generates a protein-k-mer-style input: components disjoint
// 2-D grid components whose side lengths are drawn from [minSide,
// maxSide], numbered component by component in row-major order. The
// paper notes these graphs "consist of grids of different sizes" whose
// dense packing stresses neighborhood collectives (Fig 5). Components
// are independent — dimensions are drawn up front, then each component
// fills its precomputed edge range in parallel under its own stream.
func KMerGrids(components, minSide, maxSide int, seed int64) *graph.CSR {
	if minSide < 1 || maxSide < minSide {
		panic(fmt.Sprintf("gen: KMerGrids sides [%d,%d] invalid", minSide, maxSide))
	}
	dims := chunkStream(seed, saltKMerDims, 0)
	type grid struct{ r, c int }
	sizes := make([]grid, components)
	voff := make([]int, components+1)
	eoff := make([]int, components+1)
	for i := range sizes {
		r := minSide + dims.Intn(maxSide-minSide+1)
		c := minSide + dims.Intn(maxSide-minSide+1)
		sizes[i] = grid{r, c}
		voff[i+1] = voff[i] + r*c
		eoff[i+1] = eoff[i] + r*(c-1) + (r-1)*c
	}
	edges := make([]graph.Edge, eoff[components])
	par.Ranges(components, 1, func(clo, chi int) {
		for comp := clo; comp < chi; comp++ {
			s := rng.NewStream(rng.Derive(uint64(seed), saltKMerW, uint64(comp)))
			d := sizes[comp]
			base := voff[comp]
			id := func(i, j int) int { return base + i*d.c + j }
			k := eoff[comp]
			for i := 0; i < d.r; i++ {
				for j := 0; j < d.c; j++ {
					if j+1 < d.c {
						edges[k] = graph.Edge{U: id(i, j), V: id(i, j+1), W: uniformWeight(&s)}
						k++
					}
					if i+1 < d.r {
						edges[k] = graph.Edge{U: id(i, j), V: id(i+1, j), W: uniformWeight(&s)}
						k++
					}
				}
			}
		}
	})
	b := graph.NewBuilder(voff[components])
	b.UseEdges(edges)
	return b.Build()
}

// ChungLu generates a graph with an expected power-law degree sequence
// of exponent gamma (> 2) and expected average degree avgDeg, by
// sampling endpoint pairs proportional to per-vertex weights. Heavy-tail
// hubs connect distant id ranges, so block partitions of these graphs
// produce near-complete process graphs — the paper's Friendster/Orkut
// behavior (Table IV). The power-law weight table fans out over vertex
// spans; edge samples fan out per chunk.
func ChungLu(n int, avgDeg, gamma float64, seed int64) *graph.CSR {
	if gamma <= 2 {
		panic(fmt.Sprintf("gen: ChungLu gamma=%g must exceed 2", gamma))
	}
	// Desired expected degrees: w_i proportional to (i+i0)^(-1/(gamma-1)).
	// math.Pow dominates setup, so the table is computed in parallel with
	// per-span partial sums.
	w := make([]float64, n)
	exp := -1 / (gamma - 1)
	spans := par.Split(n, 2048)
	partial := make([]float64, len(spans))
	par.Do(spans, func(si, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			w[i] = math.Pow(float64(i+10), exp)
			sum += w[i]
		}
		partial[si] = sum
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	scale := avgDeg * float64(n) / sum
	cum := make([]float64, n+1)
	for i := range w {
		w[i] *= scale
		cum[i+1] = cum[i] + w[i]
	}
	totalW := cum[n]
	draw := func(s *rng.Stream) int {
		x := s.Float64() * totalW
		return sort.SearchFloat64s(cum[1:], x)
	}
	// Scatter hubs across the id space so hubs do not all land in rank 0's
	// block: apply a deterministic hash shuffle of ids.
	perm := rng.Perm(n, rng.Derive(uint64(seed), saltCLPerm))
	m := int(avgDeg * float64(n) / 2)
	edges := make([]graph.Edge, m)
	forChunks(m, func(c, lo, hi int) {
		s := chunkStream(seed, saltCLSample, c)
		for e := lo; e < hi; e++ {
			u, v := draw(&s), draw(&s)
			edges[e] = graph.Edge{U: perm[u], V: perm[v], W: uniformWeight(&s)}
		}
	})
	b := graph.NewBuilder(n)
	b.UseEdges(edges)
	return b.Build()
}

// Social generates an Orkut/Friendster-style social network: power law
// with exponent 2.3.
func Social(n int, avgDeg float64, seed int64) *graph.CSR {
	return ChungLu(n, avgDeg, 2.3, seed)
}

// BandedMesh generates a Cage15/HV15R-style banded mesh: a Hamiltonian
// chain plus fill random edges per vertex within +-band, plus a fraction
// longRange of uniformly random long edges that give the "irregular block
// structures" the paper observes along the diagonal (Fig 9). The three
// sample classes (chain, fill, far) each chunk their own index space;
// fill samples that would fall off both ends of the id range become
// {0,0} self-loop sentinels, which the builder drops.
func BandedMesh(n, band int, fill, longRange float64, seed int64) *graph.CSR {
	if band < 1 {
		panic("gen: BandedMesh band must be >= 1")
	}
	chain := n - 1
	if chain < 0 {
		chain = 0
	}
	extra := int(fill * float64(n))
	far := int(longRange * float64(n))
	edges := make([]graph.Edge, chain+extra+far)
	forChunks(chain, func(c, lo, hi int) {
		s := chunkStream(seed, saltMeshChain, c)
		for v := lo; v < hi; v++ {
			edges[v] = graph.Edge{U: v, V: v + 1, W: uniformWeight(&s)}
		}
	})
	forChunks(extra, func(c, lo, hi int) {
		s := chunkStream(seed, saltMeshFill, c)
		for e := lo; e < hi; e++ {
			u := s.Intn(n)
			off := 1 + s.Intn(band)
			w := uniformWeight(&s)
			v := u + off
			if v >= n {
				v = u - off
			}
			if v < 0 {
				edges[chain+e] = graph.Edge{} // dead sample: dropped self loop
				continue
			}
			edges[chain+e] = graph.Edge{U: u, V: v, W: w}
		}
	})
	forChunks(far, func(c, lo, hi int) {
		s := chunkStream(seed, saltMeshFar, c)
		for e := lo; e < hi; e++ {
			u, v := s.Intn(n), s.Intn(n)
			edges[chain+extra+e] = graph.Edge{U: u, V: v, W: uniformWeight(&s)}
		}
	})
	b := graph.NewBuilder(n)
	b.UseEdges(edges)
	return b.Build()
}

// Path returns the pathological path graph 0-1-...-(n-1) with all edge
// weights equal — the instance where locally-dominant matching without
// hashed tie-breaking degenerates to a sequential chain.
func Path(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

// Grid2D returns an r-by-c grid with unit weights and row-major ids,
// the second pathological family from §III-A.
func Grid2D(r, c int) *graph.CSR {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return b.Build()
}

// OrderByDegree relabels g so vertex ids descend by degree (ties by old
// id). Sparse-matrix collections often store rows grouped by structural
// role, concentrating dense rows; this ordering models that "original"
// layout for the reordering study: per-block work is skewed until RCM
// interleaves degrees along BFS levels.
func OrderByDegree(g *graph.CSR) *graph.CSR {
	n := g.NumVertices()
	deg := make([]int, n)
	byDeg := make([]int, n)
	for i := range byDeg {
		deg[i] = g.Degree(i)
		byDeg[i] = i
	}
	sort.Slice(byDeg, func(a, b int) bool {
		da, db := deg[byDeg[a]], deg[byDeg[b]]
		if da != db {
			return da > db
		}
		return byDeg[a] < byDeg[b]
	})
	perm := make([]int, n)
	for newID, oldID := range byDeg {
		perm[oldID] = newID
	}
	return g.Permute(perm)
}

// Scramble relabels g by a seeded random permutation and returns the new
// graph along with the permutation used (newID = perm[oldID]). The RCM
// experiments scramble a banded mesh to obtain the "original" (poorly
// ordered) input that reordering then repairs.
func Scramble(g *graph.CSR, seed int64) (*graph.CSR, []int) {
	perm := rng.Perm(g.NumVertices(), rng.Derive(uint64(seed), saltScramble))
	return g.Permute(perm), perm
}
