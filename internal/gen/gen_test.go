package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func validate(t *testing.T, g *graph.CSR, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s produced an invalid graph: %v", name, err)
	}
}

func TestRGGBasic(t *testing.T) {
	n := 2000
	r := RGGRadiusForDegree(n, 8)
	g := RGG(n, r, 1)
	validate(t, g, "RGG")
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	avg := g.AvgDegree()
	if avg < 4 || avg > 14 {
		t.Errorf("avg degree = %g, want near 8", avg)
	}
}

func TestRGGStripLocality(t *testing.T) {
	// With x-sorted ids, edge id spans should be a small fraction of n:
	// a 1-D block partition then touches only adjacent strips.
	n := 4000
	r := RGGRadiusForDegree(n, 6)
	g := RGG(n, r, 2)
	maxSpan := 0
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			if s := int(a) - v; s > maxSpan {
				maxSpan = s
			}
		}
	}
	// Points within radius r in x have at most ~3*r*n points between them
	// in x order (w.h.p.); allow generous slack.
	bound := int(6*r*float64(n)) + 50
	if maxSpan > bound {
		t.Errorf("max id span = %d, want <= %d (strip locality broken)", maxSpan, bound)
	}
}

func TestRMATHubStructure(t *testing.T) {
	g := Graph500(10, 3)
	validate(t, g, "Graph500")
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Errorf("R-MAT should be skewed: max %d vs avg %g", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATRejectsBadProbabilities(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad probabilities accepted")
		}
	}()
	RMAT(4, 2, 0.5, 0.5, 0.5, 0.5, 1)
}

func TestSBPBlockStructure(t *testing.T) {
	n, blocks := 3000, 30
	g := SBP(n, blocks, 12, 0.3, 4)
	validate(t, g, "SBP")
	// Count cross-block arcs; with overlap 0.3 they should be a clear
	// minority but present.
	blockSize := (n + blocks - 1) / blocks
	var cross, total int64
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			total++
			if v/blockSize != int(a)/blockSize {
				cross++
			}
		}
	}
	frac := float64(cross) / float64(total)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("cross-block fraction = %g, want near 0.3", frac)
	}
}

func TestSBPHighOverlapTouchesManyBlocks(t *testing.T) {
	// HILO inputs must connect most block pairs — the cause of the
	// paper's near-complete process graphs for this family.
	n, blocks := 2000, 16
	g := SBP(n, blocks, 20, 0.6, 5)
	blockSize := (n + blocks - 1) / blocks
	pairs := map[[2]int]bool{}
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			bu, bv := v/blockSize, int(a)/blockSize
			if bu != bv {
				if bu > bv {
					bu, bv = bv, bu
				}
				pairs[[2]int{bu, bv}] = true
			}
		}
	}
	possible := blocks * (blocks - 1) / 2
	if len(pairs) < possible*3/4 {
		t.Errorf("connected block pairs = %d of %d, want near-complete", len(pairs), possible)
	}
}

func TestKMerGrids(t *testing.T) {
	g := KMerGrids(20, 3, 9, 6)
	validate(t, g, "KMerGrids")
	// Grid vertices have degree 2..4.
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d < 2 || d > 4 {
			t.Fatalf("vertex %d degree %d outside grid range", v, d)
		}
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	g := Social(5000, 10, 7)
	validate(t, g, "Social")
	avg := g.AvgDegree()
	if avg < 5 || avg > 20 {
		t.Errorf("avg degree %g, want near 10", avg)
	}
	if g.MaxDegree() < 8*int(avg) {
		t.Errorf("social graph should have hubs: max %d avg %g", g.MaxDegree(), avg)
	}
}

func TestBandedMeshBandwidth(t *testing.T) {
	g := BandedMesh(2000, 25, 3, 0, 8)
	validate(t, g, "BandedMesh")
	if bw := g.Bandwidth(); bw > 25 {
		t.Errorf("bandwidth %d exceeds band 25 with no long-range edges", bw)
	}
	withFar := BandedMesh(2000, 25, 3, 0.02, 8)
	if withFar.Bandwidth() <= 25 {
		t.Error("long-range edges should blow up the bandwidth")
	}
}

func TestPathAndGridPathological(t *testing.T) {
	p := Path(10)
	validate(t, p, "Path")
	if p.NumEdges() != 9 {
		t.Fatalf("path edges = %d", p.NumEdges())
	}
	for _, w := range p.Weights {
		if w != 1 {
			t.Fatal("path weights must be uniform")
		}
	}
	g := Grid2D(4, 5)
	validate(t, g, "Grid2D")
	if g.NumVertices() != 20 || g.NumEdges() != 4*4+5*3 {
		t.Fatalf("grid sizes: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestScrambleRaisesBandwidthAndPreservesStructure(t *testing.T) {
	g := BandedMesh(1000, 10, 2, 0, 9)
	s, perm := Scramble(g, 10)
	validate(t, s, "Scramble")
	if len(perm) != g.NumVertices() {
		t.Fatal("perm length")
	}
	if s.Bandwidth() <= g.Bandwidth() {
		t.Error("scrambling a banded mesh should raise bandwidth")
	}
	if s.NumEdges() != g.NumEdges() {
		t.Error("scramble changed edge count")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		f    func(seed int64) *graph.CSR
	}{
		{"RGG", func(s int64) *graph.CSR { return RGG(500, 0.05, s) }},
		{"Graph500", func(s int64) *graph.CSR { return Graph500(8, s) }},
		{"SBP", func(s int64) *graph.CSR { return SBP(500, 10, 8, 0.4, s) }},
		{"KMer", func(s int64) *graph.CSR { return KMerGrids(5, 3, 6, s) }},
		{"Social", func(s int64) *graph.CSR { return Social(500, 8, s) }},
		{"Banded", func(s int64) *graph.CSR { return BandedMesh(500, 10, 2, 0.01, s) }},
	}
	for _, tc := range cases {
		a, b := tc.f(42), tc.f(42)
		if a.NumArcs() != b.NumArcs() {
			t.Errorf("%s: same seed, different arc counts", tc.name)
			continue
		}
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] || a.Weights[i] != b.Weights[i] {
				t.Errorf("%s: same seed, different graphs", tc.name)
				break
			}
		}
		c := tc.f(43)
		same := a.NumArcs() == c.NumArcs()
		if same {
			diff := false
			for i := range a.Adj {
				if a.Adj[i] != c.Adj[i] {
					diff = true
					break
				}
			}
			same = !diff
		}
		if same {
			t.Errorf("%s: different seeds produced identical graphs", tc.name)
		}
	}
}

func TestRGGRadiusForDegree(t *testing.T) {
	r := RGGRadiusForDegree(10000, 8)
	if d := 10000 * math.Pi * r * r; math.Abs(d-8) > 1e-9 {
		t.Errorf("radius inverts to degree %g, want 8", d)
	}
}

func TestGeneratorsAlwaysValidQuick(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		var g *graph.CSR
		switch sel % 5 {
		case 0:
			g = RGG(200, 0.08, seed)
		case 1:
			g = RMAT(7, 4, 0.45, 0.25, 0.2, 0.1, seed)
		case 2:
			g = SBP(200, 8, 6, 0.5, seed)
		case 3:
			g = KMerGrids(4, 2, 5, seed)
		case 4:
			g = Social(200, 6, seed)
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
