package gen

import "testing"

func BenchmarkRGG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RGG(50000, RGGRadiusForDegree(50000, 8), int64(i))
	}
}

// BenchmarkRGGLarge is the acceptance benchmark for end-to-end
// generate+build on a ~1.6M-edge geometric graph.
func BenchmarkRGGLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RGG(400000, RGGRadiusForDegree(400000, 8), int64(i))
	}
}

// BenchmarkGraph500Large is the >=1M-edge RMAT end-to-end companion to
// the graph package's Build-only acceptance benchmark.
func BenchmarkGraph500Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Graph500(16, int64(i))
	}
}

func BenchmarkGraph500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Graph500(14, int64(i))
	}
}

func BenchmarkSBP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SBP(50000, 300, 12, 0.5, int64(i))
	}
}

func BenchmarkSocial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Social(50000, 10, int64(i))
	}
}

func BenchmarkKMerGrids(b *testing.B) {
	for i := 0; i < b.N; i++ {
		KMerGrids(1000, 5, 9, int64(i))
	}
}

func BenchmarkBandedMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BandedMesh(50000, 32, 3, 0.002, int64(i))
	}
}
