package gen

import "testing"

func BenchmarkRGG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RGG(50000, RGGRadiusForDegree(50000, 8), int64(i))
	}
}

func BenchmarkGraph500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Graph500(14, int64(i))
	}
}

func BenchmarkSBP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SBP(50000, 300, 12, 0.5, int64(i))
	}
}

func BenchmarkSocial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Social(50000, 10, int64(i))
	}
}

func BenchmarkKMerGrids(b *testing.B) {
	for i := 0; i < b.N; i++ {
		KMerGrids(1000, 5, 9, int64(i))
	}
}

func BenchmarkBandedMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BandedMesh(50000, 32, 3, 0.002, int64(i))
	}
}
