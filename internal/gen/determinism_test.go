package gen

import (
	"runtime"
	"testing"

	"repro/internal/graph"
)

// TestGeneratorsIndependentOfWorkerCount pins the chunked-stream
// contract: every generator produces a bit-identical CSR under
// GOMAXPROCS=1 and GOMAXPROCS=8. Sizes are chosen to exceed one sample
// chunk (1<<14) so the multi-chunk path actually splits.
func TestGeneratorsIndependentOfWorkerCount(t *testing.T) {
	cases := []struct {
		name string
		f    func() *graph.CSR
	}{
		{"RGG", func() *graph.CSR { return RGG(20000, RGGRadiusForDegree(20000, 8), 3) }},
		{"RMAT", func() *graph.CSR { return RMAT(11, 10, 0.57, 0.19, 0.19, 0.05, 4) }},
		{"SBP", func() *graph.CSR { return SBP(12000, 24, 10, 0.4, 5) }},
		{"KMer", func() *graph.CSR { return KMerGrids(40, 4, 20, 6) }},
		{"Social", func() *graph.CSR { return Social(15000, 8, 7) }},
		{"Banded", func() *graph.CSR { return BandedMesh(20000, 16, 2, 0.01, 8) }},
	}
	at := func(procs int, f func() *graph.CSR) *graph.CSR {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		return f()
	}
	for _, tc := range cases {
		a := at(1, tc.f)
		b := at(8, tc.f)
		if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
			t.Errorf("%s: sizes differ across worker counts: %d/%d arcs", tc.name, a.NumArcs(), b.NumArcs())
			continue
		}
		for i := range a.Offsets {
			if a.Offsets[i] != b.Offsets[i] {
				t.Errorf("%s: offsets differ across worker counts", tc.name)
				break
			}
		}
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] || a.Weights[i] != b.Weights[i] {
				t.Errorf("%s: graph differs across worker counts at arc %d", tc.name, i)
				break
			}
		}
	}
}
