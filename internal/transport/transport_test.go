package transport

import (
	"testing"
	"time"

	"repro/internal/distgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Compile-time interface conformance.
var (
	_ Async = (*P2P)(nil)
	_ Async = (*P2PAgg)(nil)
	_ Round = (*NCL)(nil)
	_ Round = (*RMA)(nil)
	_ Round = (*NCLI)(nil)
)

// run executes body on p ranks with the standard test deadline.
func run(p int, body func(c *mpi.Comm) error) (*mpi.Report, error) {
	return mpi.Run(p, body, mpi.WithDeadline(30*time.Second))
}

type rec struct{ ctx, x, y int64 }

func TestP2PRoundTrip(t *testing.T) {
	_, err := run(2, func(c *mpi.Comm) error {
		tr := NewP2P(c, false)
		if c.Rank() == 0 {
			tr.Send(1, 3, 10, 20)
			tr.Send(1, 4, 11, 21)
		}
		c.Barrier()
		if c.Rank() == 1 {
			var got []rec
			tr.Drain(func(ctx, x, y int64) { got = append(got, rec{ctx, x, y}) })
			if len(got) != 2 || got[0] != (rec{3, 10, 20}) || got[1] != (rec{4, 11, 21}) {
				t.Errorf("got %v", got)
			}
		}
		tr.Finish()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2PAggBatchingAndFlush(t *testing.T) {
	rep, err := run(2, func(c *mpi.Comm) error {
		tr := NewP2PAgg(c, 4) // 4 records per batch
		if c.Rank() == 0 {
			for k := int64(0); k < 10; k++ {
				tr.Send(1, 1, k, k)
			}
			// 10 records = 2 full batches sent + 2 parked; Finish flushes.
			tr.Finish()
		}
		c.Barrier()
		if c.Rank() == 1 {
			var got []rec
			tr.Drain(func(ctx, x, y int64) { got = append(got, rec{ctx, x, y}) })
			if len(got) != 10 {
				t.Errorf("received %d records, want 10", len(got))
			}
			for k, r := range got {
				if r.x != int64(k) {
					t.Errorf("record %d out of order: %+v", k, r)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 records in batches of 4 -> 3 messages, not 10.
	if n := rep.Stats[0].SendCount; n != 3 {
		t.Errorf("aggregated into %d messages, want 3", n)
	}
}

// TestP2PAggFlushRankOrder pins the determinism of the aggregating
// transport's batch flush: flushAll must issue the parked batches in
// ascending destination-rank order, never Go map order. Map-order
// flushing would reshuffle Isend issuance — and therefore the
// perturbation engine's per-message jitter-stream draws — between two
// runs of the SAME seed, silently breaking replayability (a reordering
// no real MPI library exhibits, since user code issues its sends in
// program order). The event trace records sends at issuance, so the
// ascending-peer order of the flush is asserted directly; staging the
// records in DESCENDING rank order proves the flush reorders them.
func TestP2PAggFlushRankOrder(t *testing.T) {
	const p = 5
	rep, err := mpi.Run(p, func(c *mpi.Comm) error {
		tr := NewP2PAgg(c, 64) // batch far above 1: nothing auto-flushes
		for dst := p - 1; dst >= 0; dst-- {
			if dst != c.Rank() {
				tr.Send(dst, 1, int64(dst), int64(c.Rank()))
			}
		}
		tr.Finish() // flushAll: one parked batch per destination
		var recvd int64 = 0
		sent := int64(p - 1)
		for {
			tr.Drain(func(ctx, x, y int64) { recvd++ })
			if c.AllreduceScalarInt64(mpi.OpSum, sent-recvd) == 0 {
				return nil
			}
		}
	}, mpi.WithDeadline(30*time.Second), mpi.WithEventTrace(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		last := -1
		flushed := 0
		for _, e := range rep.Events(r) {
			if e.Kind != mpi.EvSend || e.Tag != aggTag {
				continue
			}
			if e.Peer <= last {
				t.Errorf("rank %d flushed batch to %d after %d (want ascending rank order)", r, e.Peer, last)
			}
			last = e.Peer
			flushed++
		}
		if flushed != p-1 {
			t.Errorf("rank %d issued %d flush batches, want %d", r, flushed, p-1)
		}
	}
}

func TestP2PAggFewerMessagesThanP2P(t *testing.T) {
	const records = 200
	run := func(agg bool) int64 {
		rep, err := run(2, func(c *mpi.Comm) error {
			var tr Async = NewP2P(c, false)
			if agg {
				tr = NewP2PAgg(c, 32)
			}
			if c.Rank() == 0 {
				for k := int64(0); k < records; k++ {
					tr.Send(1, 1, k, k)
				}
				tr.Finish()
			}
			c.Barrier()
			if c.Rank() == 1 {
				n := 0
				tr.Drain(func(ctx, x, y int64) { n++ })
				if n != records {
					t.Errorf("agg=%v delivered %d records", agg, n)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats[0].SendCount
	}
	plain, agg := run(false), run(true)
	if agg*10 > plain {
		t.Errorf("aggregation sent %d messages vs %d plain — no coalescing", agg, plain)
	}
}

func TestRoundBackendsDeliverIdentically(t *testing.T) {
	// Same record stream through NCL, RMA and NCLI on a ring topology;
	// all must deliver exactly the sent multiset.
	g := gen.Path(40)
	const p = 4
	d := distgraph.NewBlockDist(g, p)
	for _, kind := range []string{"ncl", "rma", "ncli"} {
		_, err := run(p, func(c *mpi.Comm) error {
			l := d.BuildLocal(c.Rank())
			topo := c.CreateGraphTopo(l.NeighborRanks)
			var tr Round
			switch kind {
			case "ncl":
				tr = NewNCL(c, topo, l, 2)
			case "rma":
				tr = NewRMA(c, topo, l, 2)
			case "ncli":
				tr = NewNCLI(c, topo, l, 2)
			}
			// Send one record per cross arc per round, two rounds.
			total := 0
			for round := 0; round < 2; round++ {
				for _, q := range l.NeighborRanks {
					// The path's cross arc endpoints: boundary vertices.
					var x int64
					if q < c.Rank() {
						x = int64(l.Lo - 1)
					} else {
						x = int64(l.Hi)
					}
					tr.Send(q, 1, x, int64(c.Rank()))
				}
				n := tr.Exchange(func(ctx, x, y int64) {
					if ctx != 1 {
						t.Errorf("%s: bad ctx %d", kind, ctx)
					}
					total++
				})
				_ = n
			}
			// Drain the pipelined backend's tail.
			tr.Exchange(func(ctx, x, y int64) { total++ })
			tr.Finish()
			if total != 2*len(l.NeighborRanks) {
				t.Errorf("%s: rank %d delivered %d records, want %d", kind, c.Rank(), total, 2*len(l.NeighborRanks))
			}
			if r, ok := tr.(*RMA); ok {
				r.Free()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestNCLOverflowPanics(t *testing.T) {
	g := gen.Path(8)
	d := distgraph.NewBlockDist(g, 2)
	_, err := run(2, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCL(c, topo, l, 1) // 1 record per cross arc
		q := l.NeighborRanks[0]
		tr.Send(q, 1, 0, 0)
		tr.Send(q, 1, 0, 0) // exceeds the bound
		return nil
	})
	if err == nil {
		t.Fatal("buffer overflow must fail the run")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := gen.Path(12)
	d := distgraph.NewBlockDist(g, 3)
	_, err := run(3, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCL(c, topo, l, 2)
		if c.Rank() == 0 {
			tr.Send(2, 1, 0, 0) // rank 2 is not a path neighbor of rank 0
		}
		return nil
	})
	if err == nil {
		t.Fatal("send to non-neighbor must fail")
	}
}

// TestVolumeByDest asserts the per-destination byte ledger every backend
// exposes for round telemetry: one 3-word record costs recordBytes
// toward its destination, uniformly across models. The ledger is lazy —
// allocated by the first VolumeByDest call, exactly how the telemetry
// layer uses it (snapshot before any Send) — so the test activates it
// first; untelemetered runs never pay the O(P) slice.
func TestVolumeByDest(t *testing.T) {
	g := gen.Path(8)
	d := distgraph.NewBlockDist(g, 2)
	_, err := run(2, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		peer := 1 - c.Rank()
		x, y := int64(3), int64(4)
		if c.Rank() == 0 {
			x, y = 4, 3
		}
		for _, tr := range []Sender{
			NewP2P(c, false),
			NewP2PAgg(c, 4),
			NewNCL(c, topo, l, 8),
			NewRMA(c, topo, l, 8),
			NewNCLI(c, topo, l, 8),
		} {
			v, ok := tr.(Volumer)
			if !ok {
				t.Fatalf("%T does not expose VolumeByDest", tr)
			}
			v.VolumeByDest() // activate the lazy ledger before sending
			tr.Send(peer, 1, x, y)
			tr.Send(peer, 1, x, y)
			vol := v.VolumeByDest()
			if len(vol) != 2 || vol[peer] != 2*recordBytes || vol[c.Rank()] != 0 {
				t.Errorf("%T: vol = %v, want %d at %d", tr, vol, 2*recordBytes, peer)
			}
			// Settle in-flight traffic so the next backend starts clean.
			switch b := tr.(type) {
			case Async:
				b.Finish()
				c.Barrier()
				b.Drain(func(ctx, rx, ry int64) {})
			case Round:
				b.Exchange(func(ctx, rx, ry int64) {})
				b.Exchange(func(ctx, rx, ry int64) {})
				b.Finish()
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryRoundZeroAlloc extends the NCL aggregation-round contract
// below with the full telemetry hot path: after each exchange the rank
// samples its clock, mailbox occupancy and per-destination volume ledger
// and appends a row to a preallocated RoundLog. The instrumented round
// must stay allocation-free, so enabling -rounds/-json telemetry cannot
// perturb the steady state it measures.
func TestTelemetryRoundZeroAlloc(t *testing.T) {
	const runs = 50
	g := gen.Path(8)
	d := distgraph.NewBlockDist(g, 2)
	_, err := run(2, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCL(c, topo, l, 8)
		log := telemetry.NewRoundLog(1024, c.Size())
		peer := 1 - c.Rank()
		x, y := int64(3), int64(4)
		if c.Rank() == 0 {
			x, y = 4, 3
		}
		var unresolved, done int64
		round := func() {
			tr.Send(peer, 1, x, y)
			if n := tr.Exchange(func(ctx, rx, ry int64) {}); n != 1 {
				t.Errorf("exchange delivered %d records, want 1", n)
			}
			c.AllreduceScalarInt64(mpi.OpSum, 1)
			done++
			log.Append(c.Now(), unresolved, done, done, 0, 0, c.QueuedBytes(), tr.VolumeByDest())
		}
		for i := 0; i < 8; i++ {
			round() // warm buffers, rings and pools
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, round); avg != 0 {
				t.Errorf("telemetry-instrumented NCL round: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				round()
			}
		}
		if log.Drops() != 0 {
			t.Errorf("rank %d dropped %d rows", c.Rank(), log.Drops())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNCLRoundZeroAlloc asserts the steady-state allocation contract of
// one full NCL aggregation round — queue a record, exchange counts and
// payloads, deliver, and run the termination reduction — exercising the
// pooled internal messages, the Into receive variants and the scalar
// allreduce scratch together. AllocsPerRun executes its body runs+1
// times on rank 0; rank 1 runs the same count so the collective stays in
// lockstep.
func TestNCLRoundZeroAlloc(t *testing.T) {
	const runs = 50
	g := gen.Path(8)
	d := distgraph.NewBlockDist(g, 2)
	_, err := run(2, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCL(c, topo, l, 8)
		peer := 1 - c.Rank()
		// The single cross edge of the path is {3,4}; x must be owned by
		// the destination rank.
		x, y := int64(3), int64(4)
		if c.Rank() == 0 {
			x, y = 4, 3
		}
		round := func() {
			tr.Send(peer, 1, x, y)
			if n := tr.Exchange(func(ctx, rx, ry int64) {}); n != 1 {
				t.Errorf("exchange delivered %d records, want 1", n)
			}
			c.AllreduceScalarInt64(mpi.OpSum, 1)
		}
		for i := 0; i < 8; i++ {
			round() // warm buffers, rings and pools
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, round); avg != 0 {
				t.Errorf("NCL aggregation round: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				round()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
