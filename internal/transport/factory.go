package transport

import (
	"fmt"

	"repro/internal/distgraph"
	"repro/internal/mpi"
)

// Backend is the surface every transport exposes: record emission plus
// the end-of-algorithm Finish. Drivers downcast to Async or Round
// according to Model.Flavor — New guarantees the backend implements the
// interface its model's flavor promises.
type Backend interface {
	Sender
	// Finish releases or transmits whatever the backend still holds once
	// the algorithm decides termination (parked aggregation batches,
	// in-flight pipelined rounds). Safe to call on every backend.
	Finish()
}

// DefaultAggBatch is the per-destination batch size the aggregating
// Send-Recv backend (NSRA) uses when Deps.AggBatch is zero.
const DefaultAggBatch = 64

// Deps carries everything a backend construction might need. Comm is
// always required. The topology-based round models (NCL, RMA, NCLI,
// NCLC) additionally need Local and MaxPerArc; they use Topo when set
// and otherwise collectively create one from Local.NeighborRanks —
// legal because the model (and therefore the need for a topology) is
// uniform across ranks.
type Deps struct {
	// Comm is the rank's communicator.
	Comm *mpi.Comm
	// Topo is the process-graph topology. Optional: when nil, round
	// models create it from Local.NeighborRanks (a collective call).
	Topo *mpi.Topo
	// Local is the rank's partition view (neighbor ranks, cross-arc
	// counts). Required by the round models.
	Local *distgraph.Local
	// MaxPerArc bounds protocol records per cross arc per direction;
	// buffered backends size overflow guards from it. Required (> 0) by
	// the round models.
	MaxPerArc int64
	// AggBatch is the NSRA per-destination batch size (records);
	// DefaultAggBatch when zero.
	AggBatch int
}

// New constructs the backend for a model. It is collective when the
// model needs a topology and Deps.Topo is nil (CreateGraphTopo, and for
// RMA/NCLC their own collective setup). The returned Backend implements
// Async when m.Flavor() == FlavorAsync and Round when FlavorRound.
// Callers that construct round backends should release window resources
// with Release after Finish.
func New(m Model, d Deps) (Backend, error) {
	if d.Comm == nil {
		return nil, fmt.Errorf("transport: New(%v): nil Comm", m)
	}
	switch m {
	case ModelNSR:
		return NewP2P(d.Comm, false), nil
	case ModelMBP:
		return NewP2P(d.Comm, true), nil
	case ModelNSRA:
		batch := d.AggBatch
		if batch == 0 {
			batch = DefaultAggBatch
		}
		return NewP2PAgg(d.Comm, batch), nil
	case ModelNCL, ModelRMA, ModelNCLI, ModelNCLC:
		if d.Local == nil {
			return nil, fmt.Errorf("transport: New(%v): nil Local", m)
		}
		if d.MaxPerArc <= 0 {
			return nil, fmt.Errorf("transport: New(%v): MaxPerArc = %d", m, d.MaxPerArc)
		}
		topo := d.Topo
		if topo == nil {
			topo = d.Comm.CreateGraphTopo(d.Local.NeighborRanks)
		}
		switch m {
		case ModelNCL:
			return NewNCL(d.Comm, topo, d.Local, d.MaxPerArc), nil
		case ModelRMA:
			return NewRMA(d.Comm, topo, d.Local, d.MaxPerArc), nil
		case ModelNCLI:
			return NewNCLI(d.Comm, topo, d.Local, d.MaxPerArc), nil
		default:
			return NewNCLC(d.Comm, topo, d.Local, d.MaxPerArc), nil
		}
	}
	return nil, fmt.Errorf("transport: unknown model %v", m)
}

// Release collectively frees backend resources that outlive Finish
// (the RMA window). A no-op for every other backend, so drivers call it
// unconditionally.
func Release(b Backend) {
	if f, ok := b.(interface{ Free() }); ok {
		f.Free()
	}
}

// The factory's flavor contract, checked at compile time.
var (
	_ Async = (*P2P)(nil)
	_ Async = (*P2PAgg)(nil)
	_ Round = (*NCL)(nil)
	_ Round = (*RMA)(nil)
	_ Round = (*NCLI)(nil)
	_ Round = (*NCLC)(nil)
)
