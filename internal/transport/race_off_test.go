//go:build !race

package transport

// raceEnabled reports whether the race detector is compiled in.
// Allocation contracts skip their assertions under it: race-mode
// sync.Pool deliberately drops a fraction of Puts (to expose reuse
// races), so the runtime's pooled message path is not allocation-free
// by design, and the race runtime itself allocates shadow state on
// blocking operations. The contracts are asserted by the unraced suite
// (tier1); the raced suite still executes the same rounds for data-race
// coverage.
const raceEnabled = false
