// Package transport provides the seven MPI communication-model backends
// shared by the owner-computes graph algorithms in this repository
// (matching, coloring, BFS): point-to-point Send-Recv (eager or
// synchronous, optionally sender-aggregated), blocking neighborhood
// collectives, one-sided RMA with precomputed displacements, pipelined
// nonblocking neighborhood collectives, and message-combining
// neighborhood collectives over persistent schedules (nclc.go).
//
// Construction goes through the factory (factory.go): transport.New
// maps a Model to its Backend, and Model.Flavor tells the driver which
// loop shape — Async polling or bulk-synchronous Rounds — the backend
// wants.
//
// All backends move fixed-shape protocol records {ctx, x, y}: ctx is an
// application-defined small positive integer (it travels as the message
// tag on the point-to-point path, per the paper's §IV-B), x is the
// target vertex (owned by the destination rank) and y the remote vertex.
// Buffered backends are sized from the distribution's per-neighbor cross
// arc counts times the application's per-edge message bound.
package transport

import (
	"fmt"

	"repro/internal/distgraph"
	"repro/internal/mpi"
)

// recordWords is the wire size of one record for buffered backends.
const recordWords = 3

// recordBytes is the ledger cost of one record in VolumeByDest: every
// backend moves the same three-word logical record, so volumes stay
// comparable across models regardless of wire framing (the P2P path
// carries ctx in the tag, batched paths add count headers).
const recordBytes = recordWords * 8

// Handler consumes one received protocol record.
type Handler func(ctx, x, y int64)

// Sender is the downcall surface applications use to emit records.
type Sender interface {
	// Send queues or transmits record {ctx, x, y} to rank dst. ctx must
	// be a positive int that fits a message tag.
	Send(dst int, ctx, x, y int64)
}

// Async is the point-to-point flavor: records are transmitted
// immediately and the application polls for arrivals.
type Async interface {
	Sender
	// Drain delivers every currently queued record to h; reports whether
	// any was delivered.
	Drain(h Handler) bool
	// Block waits until at least one record is queued.
	Block()
	// Finish transmits anything still parked locally; must be called
	// when the algorithm decides local termination, since peers may
	// depend on buffered records.
	Finish()
}

// Round is the bulk-synchronous flavor: records accumulate until
// Exchange, which transmits, receives, and delivers.
type Round interface {
	Sender
	// Exchange performs one communication round and delivers received
	// records to h, returning how many were delivered.
	Exchange(h Handler) int
	// Finish releases any in-flight state after the algorithm's
	// termination decision (needed by pipelined backends).
	Finish()
}

// Volumer exposes a backend's cumulative per-destination payload
// ledger: VolumeByDest()[d] is the total record bytes this rank has
// pushed toward rank d through Send since construction. The slice is
// live backend state — the round-telemetry layer snapshots it once per
// round; callers must not retain or modify it.
//
// The ledger is O(world size) per rank, so backends allocate it lazily
// on the first VolumeByDest call: an untelemetered 64K-rank run carries
// no ledgers at all, while the telemetry layer (which calls VolumeByDest
// before the backend's first Send) still observes every byte. Sends
// before the first VolumeByDest call are deliberately not back-filled.
type Volumer interface {
	VolumeByDest() []int64
}

// --- P2P: Send-Recv -------------------------------------------------------

// P2P sends each record as one point-to-point message with the context
// in the tag (the paper's NSR baseline); Synchronous selects
// synchronous-mode sends (the MatchBox-P model).
type P2P struct {
	C           *mpi.Comm
	Synchronous bool
	sbuf        [2]int64 // send scratch (the runtime copies payloads)
	rbuf        [2]int64 // receive scratch for RecvInto
	vol         []int64
}

// NewP2P returns a Send-Recv backend.
func NewP2P(c *mpi.Comm, synchronous bool) *P2P {
	return &P2P{C: c, Synchronous: synchronous}
}

// VolumeByDest implements Volumer; first call allocates the ledger.
func (t *P2P) VolumeByDest() []int64 {
	if t.vol == nil {
		t.vol = make([]int64, t.C.Size())
	}
	return t.vol
}

// Send implements Sender.
func (t *P2P) Send(dst int, ctx, x, y int64) {
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	t.sbuf[0], t.sbuf[1] = x, y
	if t.Synchronous {
		t.C.Ssend(dst, int(ctx), t.sbuf[:])
	} else {
		t.C.Isend(dst, int(ctx), t.sbuf[:])
	}
}

// Drain implements Async.
func (t *P2P) Drain(h Handler) bool {
	any := false
	for {
		ok, st := t.C.Iprobe(mpi.AnySource, mpi.AnyTag)
		if !ok {
			return any
		}
		_, st = t.C.RecvInto(st.Source, st.Tag, t.rbuf[:])
		h(int64(st.Tag), t.rbuf[0], t.rbuf[1])
		any = true
	}
}

// Block implements Async.
func (t *P2P) Block() {
	t.C.Probe(mpi.AnySource, mpi.AnyTag)
}

// Finish implements Async (every record was already transmitted).
func (t *P2P) Finish() {}

// --- NCL: blocking neighborhood collectives --------------------------------

// NCL aggregates records per process-graph neighbor and exchanges them
// once per round with a blocking count exchange plus payload alltoallv
// (paper §IV-D(c)).
type NCL struct {
	c         *mpi.Comm
	topo      *mpi.Topo
	l         *distgraph.Local
	out       [][]int64
	accounted int64 // high-water of buffer bytes actually used
	vol       []int64

	// Per-round scratch, reused so a steady-state Exchange allocates
	// nothing: outgoing/incoming counts and the receive buffers.
	counts   []int64
	incoming []int64
	in       [][]int64
}

// NewNCL returns a blocking neighborhood-collective backend whose
// buffers hold maxPerArc records per cross arc per direction.
func NewNCL(c *mpi.Comm, topo *mpi.Topo, l *distgraph.Local, maxPerArc int64) *NCL {
	deg := len(l.NeighborRanks)
	t := &NCL{
		c: c, topo: topo, l: l,
		out:      make([][]int64, deg),
		counts:   make([]int64, deg),
		incoming: make([]int64, deg),
		in:       make([][]int64, deg),
	}
	for i, arcs := range l.CrossArcs {
		t.out[i] = make([]int64, 0, arcs*maxPerArc*recordWords)
	}
	// Memory is accounted per round from actual usage (Exchange): real
	// implementations size aggregation buffers to per-round volume, far
	// below the lifetime protocol bound used here as an overflow guard.
	return t
}

// VolumeByDest implements Volumer; first call allocates the ledger.
func (t *NCL) VolumeByDest() []int64 {
	if t.vol == nil {
		t.vol = make([]int64, t.c.Size())
	}
	return t.vol
}

// Send implements Sender.
func (t *NCL) Send(dst int, ctx, x, y int64) {
	i := t.l.NeighborIndex(dst)
	if i < 0 {
		panic(fmt.Sprintf("transport: NCL send to non-neighbor rank %d", dst))
	}
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	if len(t.out[i])+recordWords > cap(t.out[i]) {
		panic(fmt.Sprintf("transport: NCL buffer overflow to rank %d (per-edge message bound violated)", dst))
	}
	t.c.Pack(1)
	t.out[i] = append(t.out[i], ctx, x, y)
}

// Exchange implements Round: counts via MPI_Neighbor_alltoall, payloads
// via MPI_Neighbor_alltoallv, then delivery.
func (t *NCL) Exchange(h Handler) int {
	for i := range t.out {
		t.counts[i] = int64(len(t.out[i]))
	}
	incoming := t.topo.NeighborAlltoallInt64Into(t.counts, 1, t.incoming)
	t.in = t.topo.NeighborAlltoallvInt64Into(t.out, t.in)
	data := t.in
	var usage int64
	for i := range t.out {
		usage += int64(len(t.out[i]))
	}
	for i := range data {
		usage += int64(len(data[i]))
	}
	if usage *= 8; usage > t.accounted {
		t.c.AccountAlloc(usage - t.accounted)
		t.accounted = usage
	}
	// Reset before delivery: handlers queue next-round records into the
	// same buffers (the runtime copied the payloads).
	for i := range t.out {
		t.out[i] = t.out[i][:0]
	}
	n := 0
	for i := range data {
		if int64(len(data[i])) != incoming[i] {
			panic(fmt.Sprintf("transport: NCL count exchange disagrees with payload: %d vs %d", incoming[i], len(data[i])))
		}
		for k := 0; k+recordWords <= len(data[i]); k += recordWords {
			t.c.Unpack(1)
			h(data[i][k], data[i][k+1], data[i][k+2])
			n++
		}
	}
	return n
}

// Finish implements Round (no-op for the blocking backend).
func (t *NCL) Finish() {}

// --- RMA: one-sided puts ----------------------------------------------------

// RMA implements the paper's §IV-D(b) scheme (Fig 1): every rank's
// window is partitioned into per-neighbor regions sized from the ghost
// counts; a prefix sum plus one neighborhood alltoall gives each origin
// its base displacement in every target's window; each record is one
// MPI_Put at base + cursor; a per-round flush plus count exchange tells
// targets how much arrived.
type RMA struct {
	c    *mpi.Comm
	topo *mpi.Topo
	l    *distgraph.Local
	win  mpi.WinHandle

	maxPerArc   int64
	regionStart []int64
	writeBase   []int64
	writeCursor []int64
	roundMark   []int64
	readCursor  []int64
	vol         []int64

	// Per-round scratch, reused so a steady-state Exchange (and each
	// Send's 3-word put record) allocates nothing.
	rec      [recordWords]int64
	delta    []int64
	incoming []int64
}

// NewRMA collectively creates the window and exchanges displacement
// bases within the process neighborhood.
func NewRMA(c *mpi.Comm, topo *mpi.Topo, l *distgraph.Local, maxPerArc int64) *RMA {
	deg := len(l.NeighborRanks)
	t := &RMA{
		c: c, topo: topo, l: l, maxPerArc: maxPerArc,
		regionStart: make([]int64, deg),
		writeCursor: make([]int64, deg),
		roundMark:   make([]int64, deg),
		readCursor:  make([]int64, deg),
		delta:       make([]int64, deg),
		incoming:    make([]int64, deg),
	}
	var total int64
	for i, arcs := range l.CrossArcs {
		t.regionStart[i] = total
		total += arcs * maxPerArc * recordWords
	}
	t.win = c.WinCreate(int(total))
	t.writeBase = topo.NeighborAlltoallInt64(t.regionStart, 1)
	c.AccountAlloc(int64(deg) * 4 * 8)
	return t
}

// VolumeByDest implements Volumer; first call allocates the ledger.
func (t *RMA) VolumeByDest() []int64 {
	if t.vol == nil {
		t.vol = make([]int64, t.c.Size())
	}
	return t.vol
}

// Send implements Sender with a one-sided put at the precomputed
// displacement.
func (t *RMA) Send(dst int, ctx, x, y int64) {
	i := t.l.NeighborIndex(dst)
	if i < 0 {
		panic(fmt.Sprintf("transport: RMA send to non-neighbor rank %d", dst))
	}
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	if t.writeCursor[i] >= t.l.CrossArcs[i]*t.maxPerArc {
		panic(fmt.Sprintf("transport: RMA region overflow to rank %d (per-edge message bound violated)", dst))
	}
	disp := t.writeBase[i] + t.writeCursor[i]*recordWords
	t.rec[0], t.rec[1], t.rec[2] = ctx, x, y
	t.win.Put(dst, int(disp), t.rec[:])
	t.writeCursor[i]++
}

// Exchange implements Round: flush, neighborhood count exchange, then
// read newly arrived records from the local window.
func (t *RMA) Exchange(h Handler) int {
	t.win.FlushAll()
	for i := range t.delta {
		t.delta[i] = t.writeCursor[i] - t.roundMark[i]
		t.roundMark[i] = t.writeCursor[i]
	}
	incoming := t.topo.NeighborAlltoallInt64Into(t.delta, 1, t.incoming)
	local := t.win.Local()
	n := 0
	for i := range incoming {
		for k := int64(0); k < incoming[i]; k++ {
			base := t.regionStart[i] + (t.readCursor[i]+k)*recordWords
			t.c.Unpack(1)
			h(local[base], local[base+1], local[base+2])
			n++
		}
		t.readCursor[i] += incoming[i]
	}
	return n
}

// Finish implements Round.
func (t *RMA) Finish() {}

// Free collectively releases the window.
func (t *RMA) Free() { t.win.Free() }

// --- NCLI: pipelined nonblocking neighborhood collectives -------------------

// NCLI extends the study with MPI-3 nonblocking neighborhood collectives:
// double-buffered rounds where round k's records travel while round
// k-1's are processed. Receive buffers are implicitly preposted at the
// per-edge bound, so no count exchange is needed.
type NCLI struct {
	c         *mpi.Comm
	topo      *mpi.Topo
	l         *distgraph.Local
	out       [][]int64
	spare     [][]int64
	in        [][]int64 // receive scratch reused across rounds
	inflight  *mpi.NbrRequest
	accounted int64 // high-water of buffer bytes actually used
	vol       []int64
}

// NewNCLI returns the pipelined nonblocking backend.
func NewNCLI(c *mpi.Comm, topo *mpi.Topo, l *distgraph.Local, maxPerArc int64) *NCLI {
	t := &NCLI{c: c, topo: topo, l: l,
		out:   make([][]int64, len(l.NeighborRanks)),
		spare: make([][]int64, len(l.NeighborRanks)),
		in:    make([][]int64, len(l.NeighborRanks)),
	}
	for i, arcs := range l.CrossArcs {
		cap := arcs * maxPerArc * recordWords
		t.out[i] = make([]int64, 0, cap)
		t.spare[i] = make([]int64, 0, cap)
	}
	// Accounted per round from actual usage, like NCL (double-buffered,
	// so both the filling and in-flight sides count).
	return t
}

// VolumeByDest implements Volumer; first call allocates the ledger.
func (t *NCLI) VolumeByDest() []int64 {
	if t.vol == nil {
		t.vol = make([]int64, t.c.Size())
	}
	return t.vol
}

// Send implements Sender.
func (t *NCLI) Send(dst int, ctx, x, y int64) {
	i := t.l.NeighborIndex(dst)
	if i < 0 {
		panic(fmt.Sprintf("transport: NCLI send to non-neighbor rank %d", dst))
	}
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	if len(t.out[i])+recordWords > cap(t.out[i]) {
		panic(fmt.Sprintf("transport: NCLI buffer overflow to rank %d (per-edge message bound violated)", dst))
	}
	t.c.Pack(1)
	t.out[i] = append(t.out[i], ctx, x, y)
}

// Exchange implements Round: start the nonblocking send of the current
// buffers, then complete and deliver the previous round's exchange.
func (t *NCLI) Exchange(h Handler) int {
	var usage int64
	for i := range t.out {
		usage += 2 * int64(len(t.out[i])) // filling + in-flight copies
	}
	req := t.topo.INeighborAlltoallvInt64(t.out)
	t.out, t.spare = t.spare, t.out
	for i := range t.out {
		t.out[i] = t.out[i][:0]
	}
	n := 0
	if t.inflight != nil {
		t.in = t.inflight.WaitInto(t.in)
		for _, data := range t.in {
			usage += int64(len(data))
			for k := 0; k+recordWords <= len(data); k += recordWords {
				t.c.Unpack(1)
				h(data[k], data[k+1], data[k+2])
				n++
			}
		}
	}
	if usage *= 8; usage > t.accounted {
		t.c.AccountAlloc(usage - t.accounted)
		t.accounted = usage
	}
	t.inflight = req
	return n
}

// Finish drains the final in-flight exchange; anything it carries is
// stale once the algorithm's global termination condition held.
func (t *NCLI) Finish() {
	if t.inflight != nil {
		t.in = t.inflight.WaitInto(t.in)
		t.inflight = nil
	}
}

// --- P2PAgg: Send-Recv with sender-side aggregation -------------------------

// aggTag is the reserved tag carrying coalesced record batches;
// application contexts must stay below it.
const aggTag = 1 << 20

// P2PAgg is Send-Recv with sender-side message coalescing: records for
// one destination accumulate in a small buffer and travel as one message
// when the buffer fills or the sender goes idle. The paper remarks that
// "while it is possible to make the Send-Recv version optimal, handling
// message aggregation in irregular applications is challenging" (§V-D);
// this backend is that optimization, kept correct by flushing before
// every blocking wait so no rank stalls on records parked in a peer's
// buffer.
type P2PAgg struct {
	c         *mpi.Comm
	batch     int
	out       map[int][]int64
	rbuf      []int64 // receive scratch, grown to the largest batch seen
	accounted int64
	vol       []int64
}

// NewP2PAgg returns an aggregating Send-Recv backend batching up to
// batch records per destination (batch >= 1).
func NewP2PAgg(c *mpi.Comm, batch int) *P2PAgg {
	if batch < 1 {
		panic(fmt.Sprintf("transport: P2PAgg batch = %d", batch))
	}
	return &P2PAgg{c: c, batch: batch, out: make(map[int][]int64)}
}

// VolumeByDest implements Volumer; first call allocates the ledger.
func (t *P2PAgg) VolumeByDest() []int64 {
	if t.vol == nil {
		t.vol = make([]int64, t.c.Size())
	}
	return t.vol
}

// Send implements Sender: append to the destination's batch, flushing
// when full.
func (t *P2PAgg) Send(dst int, ctx, x, y int64) {
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	t.c.Pack(1)
	buf := append(t.out[dst], ctx, x, y)
	if len(buf) >= t.batch*recordWords {
		t.c.Isend(dst, aggTag, buf)
		buf = buf[:0]
	}
	t.out[dst] = buf
	if usage := int64(8 * t.batch * recordWords * len(t.out)); usage > t.accounted {
		t.c.AccountAlloc(usage - t.accounted)
		t.accounted = usage
	}
}

// flushAll transmits every partial batch, in destination-rank order: a
// map range here would emit the flushes in Go's randomized iteration
// order, introducing a run-to-run send reordering that is NOT one of the
// runtime's modeled perturbation points — it would break replayability
// of perturbed schedules (same seed, different transcript) for a reason
// no real MPI library has.
func (t *P2PAgg) flushAll() {
	for dst := 0; dst < t.c.Size(); dst++ {
		if buf := t.out[dst]; len(buf) > 0 {
			t.c.Isend(dst, aggTag, buf)
			t.out[dst] = buf[:0]
		}
	}
}

// Drain implements Async, unpacking coalesced batches.
func (t *P2PAgg) Drain(h Handler) bool {
	any := false
	for {
		ok, st := t.c.Iprobe(mpi.AnySource, mpi.AnyTag)
		if !ok {
			return any
		}
		if st.Tag != aggTag {
			panic(fmt.Sprintf("transport: P2PAgg received non-batch tag %d", st.Tag))
		}
		if cap(t.rbuf) < st.Count {
			t.rbuf = make([]int64, st.Count)
		}
		n, _ := t.c.RecvInto(st.Source, st.Tag, t.rbuf[:cap(t.rbuf)])
		data := t.rbuf[:n]
		for k := 0; k+recordWords <= len(data); k += recordWords {
			t.c.Unpack(1)
			h(data[k], data[k+1], data[k+2])
		}
		any = true
	}
}

// Block implements Async: partial batches are flushed first — a rank
// about to wait must not sit on records its peers need for progress.
func (t *P2PAgg) Block() {
	t.flushAll()
	t.c.Probe(mpi.AnySource, mpi.AnyTag)
}

// Finish implements Async: a locally-terminated rank still owes its
// peers whatever sits in partial batches.
func (t *P2PAgg) Finish() {
	t.flushAll()
}
