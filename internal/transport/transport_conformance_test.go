// Black-box conformance suite for the transport factory contract: every
// model constructed through transport.New — whatever its wire strategy —
// must deliver the sent record multiset exactly once, preserve
// per-source record order, keep a consistent per-destination volume
// ledger, honor Finish, and (round models) enforce the neighborhood and
// per-arc protocol bounds. Drivers rely on precisely this surface and
// nothing else, so the suite runs against the exported API only.
package transport_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/distgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// completeGraph builds K_n with one vertex per rank under a block
// distribution of n ranks: every pair of ranks shares exactly one cross
// arc, so per-neighbor buffers hold exactly MaxPerArc records and the
// process graph is as dense as it gets (NCLC runs in combining mode).
func completeGraph(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// pump moves records one step according to the backend's flavor and
// returns after a global fence confirms every sent record was handled —
// the loop shape all drivers share (see matching.runRounds/runAsync and
// bfs.Run).
func pump(c *mpi.Comm, bk transport.Backend, h transport.Handler, sent, recvd *int64) {
	for {
		if async, ok := bk.(transport.Async); ok {
			bk.Finish() // flush parked batches; a no-op on unbatched backends
			async.Drain(h)
		} else {
			bk.(transport.Round).Exchange(h)
		}
		if c.AllreduceScalarInt64(mpi.OpSum, *sent-*recvd) == 0 {
			return
		}
	}
}

// TestConformanceDeliveryOrderVolume drives every model through the same
// multi-round exchange on a complete process graph and checks the three
// ledger invariants at once: exact-once delivery, per-source FIFO, and
// VolumeByDest accounting 24 bytes per record toward the final
// destination (never toward self, never toward a relay).
func TestConformanceDeliveryOrderVolume(t *testing.T) {
	const p = 6
	const rounds = 3
	const perRound = 2
	// MaxPerArc is the per-arc PROTOCOL bound, i.e. over the backend's
	// whole lifetime: the RMA window regions never recycle displacements
	// (real one-sided regions don't), so it must cover every round.
	const maxPerArc = rounds * perRound
	g := completeGraph(p)
	d := distgraph.NewBlockDist(g, p)
	for _, m := range transport.Models {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			_, err := mpi.Run(p, func(c *mpi.Comm) error {
				l := d.BuildLocal(c.Rank())
				bk, err := transport.New(m, transport.Deps{Comm: c, Local: l, MaxPerArc: maxPerArc})
				if err != nil {
					return err
				}
				v, ok := bk.(transport.Volumer)
				if !ok {
					t.Errorf("%v backend does not implement Volumer", m)
					return nil
				}
				vol := v.VolumeByDest()
				var sent, recvd int64
				lastSeq := make([]int64, p) // per-source FIFO watermark
				got := make([]int64, p)     // per-source delivery count
				h := func(ctx, x, y int64) {
					recvd++
					src, seq := y/1000, y%1000
					if x != int64(c.Rank()) {
						t.Errorf("%v: record for vertex %d delivered to rank %d", m, x, c.Rank())
					}
					if seq <= lastSeq[src] {
						t.Errorf("%v: rank %d got seq %d from %d after %d (per-source order broken)",
							m, c.Rank(), seq, src, lastSeq[src])
					}
					lastSeq[src] = seq
					got[src]++
				}
				for r := 0; r < rounds; r++ {
					for j := 0; j < perRound; j++ {
						for _, nb := range l.NeighborRanks {
							// seq starts at 1 so the zero watermark is below it.
							bk.Send(nb, 1, int64(nb), int64(c.Rank()*1000+r*perRound+j+1))
							sent++
						}
					}
					pump(c, bk, h, &sent, &recvd)
				}
				bk.Finish()
				transport.Release(bk)
				for src := 0; src < p; src++ {
					want := int64(rounds * perRound)
					if src == c.Rank() {
						want = 0
					}
					if got[src] != want {
						t.Errorf("%v: rank %d received %d records from %d, want %d", m, c.Rank(), got[src], src, want)
					}
				}
				var volSum int64
				for dst, b := range vol {
					volSum += b
					if dst == c.Rank() && b != 0 {
						t.Errorf("%v: %d bytes accounted toward self", m, b)
					}
				}
				if volSum != sent*24 {
					t.Errorf("%v: ledger holds %d bytes, want %d (24 per sent record)", m, volSum, sent*24)
				}
				return nil
			}, mpi.WithDeadline(time.Minute))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceFlavorLoops asserts the factory's flavor contract: the
// backend implements the driver-loop interface its model's Flavor
// promises, on every model.
func TestConformanceFlavorLoops(t *testing.T) {
	g := gen.Path(12)
	const p = 3
	d := distgraph.NewBlockDist(g, p)
	for _, m := range transport.Models {
		_, err := mpi.Run(p, func(c *mpi.Comm) error {
			bk, err := transport.New(m, transport.Deps{Comm: c, Local: d.BuildLocal(c.Rank()), MaxPerArc: 1})
			if err != nil {
				return err
			}
			_, isAsync := bk.(transport.Async)
			_, isRound := bk.(transport.Round)
			switch m.Flavor() {
			case transport.FlavorAsync:
				if !isAsync {
					t.Errorf("%v declares FlavorAsync but backend is not transport.Async", m)
				}
			case transport.FlavorRound:
				if !isRound {
					t.Errorf("%v declares FlavorRound but backend is not transport.Round", m)
				}
			}
			bk.Finish()
			transport.Release(bk)
			return nil
		}, mpi.WithDeadline(time.Minute))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConformanceRoundBounds asserts the two protocol panics every
// buffered round backend owes its caller: sending to a rank outside the
// process graph, and exceeding the per-arc record bound.
func TestConformanceRoundBounds(t *testing.T) {
	g := gen.Path(16)
	const p = 4
	d := distgraph.NewBlockDist(g, p)
	expectPanic := func(m transport.Model, substr string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%v: no panic, want one containing %q", m, substr)
				return
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
				t.Errorf("%v: panic %q, want substring %q", m, msg, substr)
			}
		}()
		f()
	}
	for _, m := range transport.Models {
		if m.Flavor() != transport.FlavorRound {
			continue
		}
		_, err := mpi.Run(p, func(c *mpi.Comm) error {
			l := d.BuildLocal(c.Rank())
			bk, err := transport.New(m, transport.Deps{Comm: c, Local: l, MaxPerArc: 1})
			if err != nil {
				return err
			}
			// On the path distribution rank r's neighbors are r±1 only, so
			// the opposite end of the world is a non-neighbor for the two
			// outer ranks (for the middle ranks it is adjacent — skip).
			far := p - 1 - c.Rank()
			if far != c.Rank() && l.NeighborIndex(far) < 0 {
				expectPanic(m, "non-neighbor rank", func() { bk.Send(far, 1, 0, 0) })
			}
			// One cross arc per adjacent rank and MaxPerArc=1: the second
			// record to the same neighbor must trip the overflow guard.
			nb := l.NeighborRanks[0]
			x := int64(l.Lo - 1)
			if nb > c.Rank() {
				x = int64(l.Hi)
			}
			bk.Send(nb, 1, x, 0)
			expectPanic(m, "per-edge message bound violated", func() { bk.Send(nb, 1, x, 1) })
			// The surviving staged record still delivers cleanly.
			var sent, recvd int64 = 1, 0
			pump(c, bk, func(ctx, x, y int64) { recvd++ }, &sent, &recvd)
			bk.Finish()
			transport.Release(bk)
			return nil
		}, mpi.WithDeadline(time.Minute))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConformanceFactoryErrors pins the factory's error contract:
// missing dependencies are errors, not panics.
func TestConformanceFactoryErrors(t *testing.T) {
	if _, err := transport.New(transport.ModelNSR, transport.Deps{}); err == nil {
		t.Error("nil Comm accepted")
	}
	_, err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := transport.New(transport.ModelNCL, transport.Deps{Comm: c}); err == nil {
			t.Error("round model with nil Local accepted")
		}
		if _, err := transport.New(transport.Model(99), transport.Deps{Comm: c}); err == nil {
			t.Error("unknown model accepted")
		}
		g := gen.Path(8)
		l := distgraph.NewBlockDist(g, 2).BuildLocal(c.Rank())
		if _, err := transport.New(transport.ModelRMA, transport.Deps{Comm: c, Local: l}); err == nil {
			t.Error("round model with zero MaxPerArc accepted")
		}
		return nil
	}, mpi.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
}
