//go:build race

package transport

// raceEnabled reports whether the race detector is compiled in; see
// race_off_test.go for why allocation contracts skip under it.
const raceEnabled = true
