package transport

import (
	"fmt"
	"math/bits"

	"repro/internal/distgraph"
	"repro/internal/mpi"
)

// --- NCLC: message-combining neighborhood collectives -----------------------

// nclcWireWords is the in-transit record size for combined bundles:
// {dst, ctx, x, y}. The destination rank rides with the payload because
// intermediate ranks must route it; VolumeByDest still accounts the
// uniform 3-word logical record toward the final destination, keeping
// per-model volume ledgers comparable (the extra routing word is wire
// framing, like the P2P path's tag or the batched paths' count headers).
const nclcWireWords = 4

// nclcCombineFactor scales the combining threshold: NCLC routes through
// the virtual ring-power schedule only when the global average
// process-graph degree exceeds nclcCombineFactor * ceil(log2 p) —
// roughly where O(log p) combined transfers per round undercut one
// transfer per neighbor, after paying the forwarding beta and repack
// overheads. Below it, NCLC falls back to the direct blocking exchange
// (which the paper shows is already the right shape for sparse
// neighborhoods). A variable so the density-sweep experiment and tests
// can probe both sides of the crossover.
var nclcCombineFactor = 1.5

// nclcPhase is one direction of the combining schedule: in phase j this
// rank forwards one combined bundle to (rank + 2^j) mod p and receives
// one from (rank - 2^j) mod p, over a dedicated 1- or 2-neighbor
// topology driven by a persistent schedule.
type nclcPhase struct {
	step   int // 2^j
	fwdIdx int // position of the forward peer in the phase topo
	pn     *mpi.PersistentNbr
	sendv  [][]int64 // per-peer send views; only fwdIdx ever carries data
	recv   [][]int64 // per-peer receive scratch, reused across rounds
	buf    []int64   // outgoing bundle: wire records whose lowest unresolved distance bit is j
}

// NCLC is the message-combining neighborhood-collective backend (Träff
// et al., "Message-Combining Algorithms for Isomorphic, Sparse
// Collective Communication"): instead of posting one transfer per
// process-graph neighbor per round (NCL, which degrades as the process
// graph densifies — the paper's SBP and social-network caveat), records
// are routed along a virtual ring-power embedding of the whole world.
// Phase j moves one combined bundle distance 2^j; a record for a rank at
// ring distance t travels the set bits of t in increasing order, with
// intermediate ranks splitting received bundles and re-combining the
// records into their next direction's bundle. Each rank therefore posts
// O(ceil(log2 p)) transfers per round regardless of neighborhood degree,
// and every phase reuses a persistent exchange schedule
// (Topo.NeighborAlltoallvInit) computed once at construction — the
// rounds are isomorphic, so the schedule never changes.
//
// When the neighborhood is sparse (global average degree at or below
// nclcCombineFactor * ceil(log2 p)), combining cannot pay for the extra
// hops and NCLC delegates to the direct blocking exchange instead. The
// mode is decided once, collectively, from the global average degree —
// per-rank decisions would produce incompatible schedules.
type NCLC struct {
	c *mpi.Comm
	l *distgraph.Local

	direct *NCL // sparse fallback; nil when combining

	p          int
	phases     []nclcPhase
	out        [][]int64 // staged {ctx,x,y} per process-graph neighbor
	deliver    []int64   // records destined here, delivered at Exchange end
	fwdRecords int64
	fwdBytes   int64
	accounted  int64 // high-water of buffer bytes actually used
	vol        []int64
}

// NewNCLC collectively constructs the combining backend: an allreduce
// decides the mode, and in combining mode one 1- or 2-neighbor topology
// plus persistent schedule is created per ring-power direction. Buffers
// hold maxPerArc records per cross arc per direction, as for NCL.
func NewNCLC(c *mpi.Comm, topo *mpi.Topo, l *distgraph.Local, maxPerArc int64) *NCLC {
	t := &NCLC{c: c, l: l, p: c.Size()}
	k := log2Ceil(t.p)
	// Mode is a global property: every rank must either combine (and
	// participate in all k phase topologies as a potential intermediate,
	// even with zero neighbors of its own) or none must.
	sumDeg := c.AllreduceScalarInt64(mpi.OpSum, int64(len(l.NeighborRanks)))
	avgDeg := float64(sumDeg) / float64(t.p)
	if k == 0 || avgDeg <= nclcCombineFactor*float64(k) {
		t.direct = NewNCL(c, topo, l, maxPerArc)
		return t
	}

	deg := len(l.NeighborRanks)
	t.out = make([][]int64, deg)
	for i, arcs := range l.CrossArcs {
		t.out[i] = make([]int64, 0, arcs*maxPerArc*recordWords)
	}
	t.phases = make([]nclcPhase, k)
	for j := 0; j < k; j++ {
		step := 1 << j
		fwd := (c.Rank() + step) % t.p
		bwd := (c.Rank() - step + t.p) % t.p
		peers := []int{fwd}
		if bwd != fwd { // 2*step == p collapses both directions onto one peer
			peers = append(peers, bwd)
		}
		pt := c.CreateGraphTopo(peers)
		t.phases[j] = nclcPhase{
			step:   step,
			fwdIdx: pt.NeighborIndex(fwd),
			pn:     pt.NeighborAlltoallvInit(),
			sendv:  make([][]int64, len(peers)),
			recv:   make([][]int64, len(peers)),
		}
	}
	// Memory is accounted per round from actual usage (Exchange), as for
	// NCL: real implementations size combining buffers to per-round
	// volume, far below the lifetime protocol bound used as an overflow
	// guard.
	return t
}

// log2Ceil returns ceil(log2(n)) for n >= 1 — the phase count of the
// combining schedule (every ring distance 1..n-1 is a sum of distinct
// powers 2^j with j < ceil(log2 n)).
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Combining reports whether the backend routes through the combining
// schedule (false: direct fallback).
func (t *NCLC) Combining() bool { return t.direct == nil }

// ForwardedBytes returns the cumulative wire bytes this rank has relayed
// on behalf of other ranks (received in a bundle and re-sent toward the
// destination). Endpoint traffic is in VolumeByDest; the sum of both is
// the rank's true injection load.
func (t *NCLC) ForwardedBytes() int64 { return t.fwdBytes }

// ForwardedRecords returns the cumulative count of relayed records.
func (t *NCLC) ForwardedRecords() int64 { return t.fwdRecords }

// VolumeByDest implements Volumer; first call allocates the ledger.
// Bytes are accounted toward the record's final destination at Send
// time, uniformly with every other backend, so per-model volume ledgers
// stay comparable; relay traffic is tracked separately (ForwardedBytes).
func (t *NCLC) VolumeByDest() []int64 {
	if t.direct != nil {
		return t.direct.VolumeByDest()
	}
	if t.vol == nil {
		t.vol = make([]int64, t.c.Size())
	}
	return t.vol
}

// Send implements Sender: stage the record for its process-graph
// neighbor, bounded by the per-arc protocol guarantee.
func (t *NCLC) Send(dst int, ctx, x, y int64) {
	if t.direct != nil {
		t.direct.Send(dst, ctx, x, y)
		return
	}
	i := t.l.NeighborIndex(dst)
	if i < 0 {
		panic(fmt.Sprintf("transport: NCLC send to non-neighbor rank %d", dst))
	}
	if t.vol != nil {
		t.vol[dst] += recordBytes
	}
	if len(t.out[i])+recordWords > cap(t.out[i]) {
		panic(fmt.Sprintf("transport: NCLC buffer overflow to rank %d (per-edge message bound violated)", dst))
	}
	t.c.Pack(1)
	t.out[i] = append(t.out[i], ctx, x, y)
}

// dist returns the ring distance from this rank to dst in [1, p).
func (t *NCLC) dist(dst int) int {
	d := dst - t.c.Rank()
	if d < 0 {
		d += t.p
	}
	return d
}

// Exchange implements Round: route staged records into their first
// direction's bundle, then run the k phases in order — each a persistent
// Start/WaitInto with the forward peer — re-combining received records
// that are not yet home into their next direction. Records for this rank
// are delivered after all phases complete, so delivery order is a pure
// function of the staged sends (deterministic regardless of schedule
// perturbation, like the blocking direct exchange).
//
// Correctness of the in-round forwarding: a record staged with ring
// distance d first travels in phase j0 = lowest set bit of d; arriving
// there, its remaining distance d - 2^j0 has only bits above j0 set, so
// its next phase j1 > j0 has not run yet this round. Induction gives
// every record home within the round's k phases.
func (t *NCLC) Exchange(h Handler) int {
	if t.direct != nil {
		return t.direct.Exchange(h)
	}
	var usage int64
	// Distribute staged records (3 words) into wire bundles (4 words,
	// destination prepended) keyed by the distance's lowest set bit.
	for i := range t.out {
		buf := t.out[i]
		usage += int64(len(buf))
		if len(buf) == 0 {
			continue
		}
		dst := t.l.NeighborRanks[i]
		ph := &t.phases[bits.TrailingZeros(uint(t.dist(dst)))]
		for k := 0; k+recordWords <= len(buf); k += recordWords {
			ph.buf = append(ph.buf, int64(dst), buf[k], buf[k+1], buf[k+2])
		}
		t.out[i] = buf[:0]
	}
	delivered := t.deliver[:0]
	for j := range t.phases {
		ph := &t.phases[j]
		ph.sendv[ph.fwdIdx] = ph.buf
		usage += int64(len(ph.buf))
		ph.pn.Start(ph.sendv)
		// The runtime copied the payload at Start; the bundle buffer is
		// immediately reusable for records this phase forwards onward.
		ph.buf = ph.buf[:0]
		ph.recv = ph.pn.WaitInto(ph.recv)
		for _, data := range ph.recv {
			usage += int64(len(data))
			for k := 0; k+nclcWireWords <= len(data); k += nclcWireWords {
				dst := int(data[k])
				if dst == t.c.Rank() {
					delivered = append(delivered, data[k+1], data[k+2], data[k+3])
					continue
				}
				// Split and re-combine: this rank is an intermediate hop.
				// The next set bit of the remaining distance is > j, so
				// the target bundle has not been sent this round.
				t.c.Pack(1)
				t.fwdRecords++
				t.fwdBytes += nclcWireWords * 8
				t.phases[bits.TrailingZeros(uint(t.dist(dst)))].buf = append(
					t.phases[bits.TrailingZeros(uint(t.dist(dst)))].buf, data[k:k+nclcWireWords]...)
			}
		}
	}
	t.deliver = delivered
	usage += int64(len(delivered))
	if usage *= 8; usage > t.accounted {
		t.c.AccountAlloc(usage - t.accounted)
		t.accounted = usage
	}
	// Deliver after the staging buffers were reset: handlers queue
	// next-round records into the same buffers.
	n := 0
	for k := 0; k+recordWords <= len(delivered); k += recordWords {
		t.c.Unpack(1)
		h(delivered[k], delivered[k+1], delivered[k+2])
		n++
	}
	return n
}

// Finish implements Round: every phase completes within its Exchange,
// so there is no in-flight state (delegates in direct mode).
func (t *NCLC) Finish() {
	if t.direct != nil {
		t.direct.Finish()
	}
}
