package transport

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/distgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// completeK builds K_n (one vertex per rank under NewBlockDist(g, n)).
func completeK(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// nclcRun executes a fixed 3-round workload — every rank sends one
// tagged record to every process-graph neighbor per round — and returns
// each rank's received records sorted, plus whether combining was on.
func nclcRun(t *testing.T, p int, opts ...mpi.Option) ([][]rec, bool) {
	t.Helper()
	g := completeK(p)
	d := distgraph.NewBlockDist(g, p)
	got := make([][]rec, p)
	combining := false
	opts = append(opts, mpi.WithDeadline(time.Minute))
	_, err := mpi.Run(p, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCLC(c, topo, l, 4)
		if c.Rank() == 0 {
			combining = tr.Combining()
		}
		for r := 0; r < 3; r++ {
			for _, nb := range l.NeighborRanks {
				tr.Send(nb, int64(r+1), int64(nb), int64(c.Rank()))
			}
			tr.Exchange(func(ctx, x, y int64) {
				got[c.Rank()] = append(got[c.Rank()], rec{ctx, x, y})
			})
		}
		tr.Finish()
		return nil
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		sort.Slice(g, func(i, j int) bool {
			a, b := g[i], g[j]
			if a.ctx != b.ctx {
				return a.ctx < b.ctx
			}
			if a.x != b.x {
				return a.x < b.x
			}
			return a.y < b.y
		})
	}
	return got, combining
}

// TestNCLCCombiningMatchesDirect pins the tentpole's core equivalence:
// the multi-hop combining schedule delivers exactly the record multiset
// the direct exchange delivers, round for round. The dense K_8 process
// graph (avg degree 7 > 1.5*ceil(log2 8)) forces combining mode; a
// temporarily unreachable threshold forces the same backend into its
// direct fallback for the reference run.
func TestNCLCCombiningMatchesDirect(t *testing.T) {
	const p = 8
	combined, on := nclcRun(t, p)
	if !on {
		t.Fatal("K_8 at p=8 should select combining mode")
	}
	defer func(f float64) { nclcCombineFactor = f }(nclcCombineFactor)
	nclcCombineFactor = 1e18
	direct, on := nclcRun(t, p)
	if on {
		t.Fatal("unreachable threshold should select direct mode")
	}
	for r := 0; r < p; r++ {
		if len(combined[r]) != len(direct[r]) {
			t.Fatalf("rank %d: combining delivered %d records, direct %d", r, len(combined[r]), len(direct[r]))
		}
		for i := range combined[r] {
			if combined[r][i] != direct[r][i] {
				t.Fatalf("rank %d record %d: combining %+v, direct %+v", r, i, combined[r][i], direct[r][i])
			}
		}
	}
}

// TestNCLCSparseFallsBackToDirect checks the mode decision on a sparse
// process graph: a path's ring of degree <= 2 never clears the
// threshold, and every rank must agree (the decision is collective).
func TestNCLCSparseFallsBackToDirect(t *testing.T) {
	g := gen.Path(32)
	const p = 8
	d := distgraph.NewBlockDist(g, p)
	_, err := mpi.Run(p, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCLC(c, topo, l, 2)
		if tr.Combining() {
			t.Errorf("rank %d combining on a path distribution", c.Rank())
		}
		tr.Finish()
		return nil
	}, mpi.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
}

// TestNCLCForwardingAccounting checks the relay ledgers: on K_8 the
// ring distances 3, 5, 6, 7 need more than one hop, so intermediates
// must report forwarded traffic — and none of it may leak into
// VolumeByDest, which stays endpoint-uniform (24 bytes per sent record
// toward the final destination).
func TestNCLCForwardingAccounting(t *testing.T) {
	const p = 8
	g := completeK(p)
	d := distgraph.NewBlockDist(g, p)
	fwd := make([]int64, p)
	_, err := mpi.Run(p, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCLC(c, topo, l, 2)
		vol := tr.VolumeByDest()
		var sent int64
		for _, nb := range l.NeighborRanks {
			tr.Send(nb, 1, int64(nb), int64(c.Rank()))
			sent++
		}
		n := tr.Exchange(func(ctx, x, y int64) {})
		if n != p-1 {
			t.Errorf("rank %d delivered %d records, want %d", c.Rank(), n, p-1)
		}
		fwd[c.Rank()] = tr.ForwardedRecords()
		if tr.ForwardedBytes() != tr.ForwardedRecords()*nclcWireWords*8 {
			t.Errorf("rank %d: %d forwarded bytes for %d records", c.Rank(), tr.ForwardedBytes(), tr.ForwardedRecords())
		}
		var sum int64
		for dst, b := range vol {
			sum += b
			if dst == c.Rank() && b != 0 {
				t.Errorf("rank %d accounted %d bytes toward itself", c.Rank(), b)
			}
		}
		if sum != sent*recordBytes {
			t.Errorf("rank %d ledger %d bytes, want %d", c.Rank(), sum, sent*recordBytes)
		}
		tr.Finish()
		return nil
	}, mpi.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, f := range fwd {
		total += f
	}
	// Per rank, destinations at distances 3,5,6,7 cost 1,1,1,2 extra
	// hops: 5 forwarded records per source rank.
	if want := int64(5 * p); total != want {
		t.Errorf("total forwarded records = %d, want %d", total, want)
	}
}

// TestNCLCRoundZeroAlloc asserts the steady-state allocation contract of
// a full combining round: stage one record per neighbor, run all
// ceil(log2 8) persistent phase exchanges with forwarding, deliver, and
// run the termination reduction — all from reused buffers, pooled
// runtime messages and the persistent schedules. AllocsPerRun executes
// its body runs+1 times on rank 0; the other ranks run the same count so
// the collectives stay in lockstep.
func TestNCLCRoundZeroAlloc(t *testing.T) {
	const runs = 50
	const p = 8
	g := completeK(p)
	d := distgraph.NewBlockDist(g, p)
	_, err := mpi.Run(p, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		topo := c.CreateGraphTopo(l.NeighborRanks)
		tr := NewNCLC(c, topo, l, 4)
		if !tr.Combining() {
			t.Error("K_8 should combine")
		}
		round := func() {
			for _, nb := range l.NeighborRanks {
				tr.Send(nb, 1, int64(nb), int64(c.Rank()))
			}
			if n := tr.Exchange(func(ctx, x, y int64) {}); n != p-1 {
				t.Errorf("exchange delivered %d records, want %d", n, p-1)
			}
			c.AllreduceScalarInt64(mpi.OpSum, 1)
		}
		for i := 0; i < 8; i++ {
			round() // warm bundles, receive scratch, rings and pools
		}
		if raceEnabled {
			// Race-mode sync.Pool drops Puts by design, so the pooled
			// message path cannot be allocation-free; keep exercising
			// the rounds for data-race coverage, skip the count.
			for i := 0; i < runs+1; i++ {
				round()
			}
			return nil
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, round); avg != 0 {
				t.Errorf("NCLC combining round: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				round()
			}
		}
		return nil
	}, mpi.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
}

// TestNCLCDeterministicEverywhere pins the determinism acceptance: the
// delivered record streams (per rank, in delivery order) are
// bit-identical across scheduler modes, GOMAXPROCS settings, and every
// schedule-perturbation profile — delivery order is a pure function of
// the staged sends, like the direct blocking exchange.
func TestNCLCDeterministicEverywhere(t *testing.T) {
	const p = 8
	fingerprint := func(opts ...mpi.Option) uint64 {
		got, on := nclcRun(t, p, opts...)
		if !on {
			t.Fatal("expected combining mode")
		}
		h := uint64(14695981039346656037)
		for r := range got {
			for _, rc := range got[r] {
				for _, v := range []int64{int64(r), rc.ctx, rc.x, rc.y} {
					h = (h ^ uint64(v)) * 1099511628211
				}
			}
		}
		return h
	}
	base := fingerprint()
	for name, opts := range map[string][]mpi.Option{
		"direct-sched":  {mpi.WithScheduler(mpi.SchedDirect)},
		"worker-sched":  {mpi.WithScheduler(mpi.SchedWorkers)},
		"perturb-ties":  {mpi.WithPerturb(0xfeed, sched.Profile{Ties: true})},
		"perturb-full":  {mpi.WithPerturb(0xfeed, sched.Full)},
		"perturb-full2": {mpi.WithPerturb(0xbeef, sched.Full)},
	} {
		if got := fingerprint(opts...); got != base {
			t.Errorf("%s: fingerprint %x, want %x", name, got, base)
		}
	}
	old := runtime.GOMAXPROCS(1)
	got := fingerprint()
	runtime.GOMAXPROCS(old)
	if got != base {
		t.Errorf("GOMAXPROCS=1: fingerprint %x, want %x", got, base)
	}
}
