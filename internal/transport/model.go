package transport

import (
	"fmt"
	"strings"
)

// Model identifies a communication model from the paper's study (§V-A)
// plus the two extensions, one per transport backend in this package.
// It lives here — with the backends it selects — so that every consumer
// (matching, coloring, the harness, command-line flags) shares one
// vocabulary instead of per-package ints.
type Model int

// The constants carry a Model prefix because the short names (NCL,
// RMA, NCLI) are taken by the backend types in this package; the
// application packages re-export them under the paper's bare
// descriptors (matching.NSR, ...).
const (
	// ModelNSR is the baseline: nonblocking MPI Send-Recv with Iprobe
	// polling.
	ModelNSR Model = iota
	// ModelRMA uses MPI-3 passive-target one-sided puts with
	// precomputed displacements plus neighborhood count exchanges.
	ModelRMA
	// ModelNCL uses blocking MPI-3 neighborhood collectives over the
	// distributed graph topology with per-neighbor aggregation.
	ModelNCL
	// ModelMBP models MatchBox-P: Send-Recv with synchronous-mode sends.
	ModelMBP
	// ModelNCLI extends the study with nonblocking neighborhood
	// collectives (pipelined rounds with double buffering) — the
	// direction the paper's related work (Kandalla et al.) explores for
	// BFS.
	ModelNCLI
	// ModelNSRA extends the study with sender-side message aggregation
	// for Send-Recv — the optimization the paper calls "challenging"
	// for irregular applications (§V-D).
	ModelNSRA
	// ModelNCLC extends the study with message-combining neighborhood
	// collectives (Träff et al.): records are routed and combined along
	// O(log p) virtual directions with intermediate ranks splitting and
	// forwarding bundles, instead of one transfer per process-graph
	// neighbor — the fix for NCL's dense-neighborhood degradation that
	// the paper leaves as future work. Exchange schedules persist across
	// rounds (MPI-4 persistent collectives).
	ModelNCLC
)

// Models lists all communication models in presentation order.
var Models = []Model{ModelNSR, ModelRMA, ModelNCL, ModelMBP, ModelNCLI, ModelNSRA, ModelNCLC}

// Flavor classifies a model's driver loop shape: Async models transmit
// records immediately and the application polls for arrivals; Round
// models accumulate records and move them in bulk-synchronous exchange
// rounds. Drivers select their loop from Model.Flavor instead of
// hard-coding model lists.
type Flavor int

const (
	// FlavorAsync: point-to-point transmission with Drain/Block polling
	// and local termination (transport.Async).
	FlavorAsync Flavor = iota
	// FlavorRound: bulk-synchronous Exchange rounds with a global
	// termination reduction (transport.Round).
	FlavorRound
)

func (f Flavor) String() string {
	if f == FlavorRound {
		return "round"
	}
	return "async"
}

// Flavor returns the model's driver loop shape.
func (m Model) Flavor() Flavor {
	switch m {
	case ModelRMA, ModelNCL, ModelNCLI, ModelNCLC:
		return FlavorRound
	}
	return FlavorAsync
}

func (m Model) String() string {
	switch m {
	case ModelNSR:
		return "NSR"
	case ModelRMA:
		return "RMA"
	case ModelNCL:
		return "NCL"
	case ModelMBP:
		return "MBP"
	case ModelNCLI:
		return "NCLI"
	case ModelNSRA:
		return "NSRA"
	case ModelNCLC:
		return "NCLC"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ParseModel resolves a case-insensitive model name ("nsr", "RMA", ...)
// to its Model, for command-line flags and config files.
func ParseModel(s string) (Model, error) {
	for _, m := range Models {
		if strings.EqualFold(s, m.String()) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("transport: unknown model %q (want one of %v)", s, Models)
}

// ParseModels resolves a comma-separated list of model names, skipping
// empty elements ("nsr,rma,ncl" -> [NSR RMA NCL]).
func ParseModels(s string) ([]Model, error) {
	var out []Model
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := ParseModel(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
