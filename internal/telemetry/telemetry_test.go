package telemetry

import "testing"

func TestNewRoundLogPanics(t *testing.T) {
	for _, tc := range []struct{ capacity, width int }{{0, 4}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRoundLog(%d, %d) did not panic", tc.capacity, tc.width)
				}
			}()
			NewRoundLog(tc.capacity, tc.width)
		}()
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *RoundLog
	l.Append(1, 2, 3, 4, 5, 6, 7, []int64{8})
	if l.Len() != 0 || l.Drops() != 0 {
		t.Errorf("nil log: Len=%d Drops=%d", l.Len(), l.Drops())
	}
}

func TestAppendAndDrops(t *testing.T) {
	l := NewRoundLog(2, 2)
	l.SetTotal(10)
	l.Append(1.0, 5, 2, 3, 1, 0, 100, []int64{24, 0})
	l.Append(2.0, 0, 5, 4, 2, 1, 0, []int64{48, 0})
	l.Append(3.0, 0, 5, 4, 2, 1, 0, []int64{48, 0}) // beyond capacity
	if l.Len() != 2 || l.Drops() != 1 || l.Total() != 10 {
		t.Fatalf("Len=%d Drops=%d Total=%d, want 2, 1, 10", l.Len(), l.Drops(), l.Total())
	}
	r := l.Round(1)
	if r.Time != 2.0 || r.Unresolved != 0 || r.Done != 5 || r.Req != 4 || r.Rej != 2 || r.Inv != 1 || r.Queue != 0 {
		t.Errorf("row 1 = %+v", r)
	}
	if len(r.NbrBytes) != 2 || r.NbrBytes[0] != 48 {
		t.Errorf("row 1 nbr = %v", r.NbrBytes)
	}
}

func TestAppendToleratesShortOrNilVolume(t *testing.T) {
	l := NewRoundLog(4, 3)
	l.Append(1, 0, 0, 0, 0, 0, 0, nil)
	l.Append(2, 0, 0, 0, 0, 0, 0, []int64{7})
	l.Append(3, 0, 0, 0, 0, 0, 0, []int64{1, 2, 3, 4, 5}) // longer than width
	if got := l.Round(1).NbrBytes; got[0] != 7 || got[1] != 0 {
		t.Errorf("short copy: %v", got)
	}
	if got := l.Round(2).NbrBytes; got[0] != 1 || got[2] != 3 {
		t.Errorf("truncated copy: %v", got)
	}
}

// TestMergeCarryForward exercises the heart of Merge: ranks finishing at
// different rounds contribute their final cumulative values to later
// points, per-round deltas are computed against the previous cumulative
// sum, and only ranks still producing rows compete for the per-round
// link maximum.
func TestMergeCarryForward(t *testing.T) {
	a := NewRoundLog(4, 2)
	a.SetTotal(10)
	a.Append(1.0, 5, 2, 3, 1, 0, 100, []int64{24, 0})
	a.Append(2.0, 0, 5, 4, 2, 1, 0, []int64{48, 0})
	b := NewRoundLog(4, 2)
	b.SetTotal(10)
	b.Append(1.5, 3, 4, 2, 0, 0, 50, []int64{0, 24}) // finishes after one round

	s := Merge([]*RoundLog{a, nil, b})
	if s.Procs != 2 || s.Total != 20 || s.Drops != 0 || s.Rounds() != 2 {
		t.Fatalf("series = %+v", s)
	}

	p0 := s.Points[0]
	if p0.Time != 1.5 || p0.Unresolved != 8 || p0.Done != 6 || p0.DoneFrac != 0.3 {
		t.Errorf("p0 = %+v", p0)
	}
	if p0.Req != 5 || p0.Rej != 1 || p0.Inv != 0 || p0.Bytes != 48 {
		t.Errorf("p0 deltas = %+v", p0)
	}
	if p0.MaxLinkBytes != 24 || p0.MaxQueueBytes != 100 {
		t.Errorf("p0 maxima = %+v", p0)
	}

	p1 := s.Points[1]
	// b's single row carries forward: instantaneous sums include it,
	// cumulative counters do not regress, deltas count only a's progress.
	if p1.Unresolved != 3 || p1.Done != 9 || p1.DoneFrac != 0.45 {
		t.Errorf("p1 = %+v", p1)
	}
	if p1.Req != 1 || p1.Rej != 1 || p1.Inv != 1 || p1.Bytes != 24 {
		t.Errorf("p1 deltas = %+v", p1)
	}
	// a's link delta is 48-24; b is carried forward and must not compete.
	if p1.MaxLinkBytes != 24 || p1.MaxQueueBytes != 50 {
		t.Errorf("p1 maxima = %+v", p1)
	}
	if f := s.Final(); f != p1 {
		t.Errorf("Final() = %+v, want %+v", f, p1)
	}
}

func TestMergeEmpty(t *testing.T) {
	for _, logs := range [][]*RoundLog{nil, {nil, nil}, {NewRoundLog(2, 0)}} {
		s := Merge(logs)
		if s.Rounds() != 0 {
			t.Errorf("Merge(%v).Rounds() = %d", logs, s.Rounds())
		}
		if f := s.Final(); f != (Point{}) {
			t.Errorf("Final() = %+v, want zero", f)
		}
	}
}

// TestAppendZeroAlloc is the telemetry side of the repo's allocation
// contracts: recording a round into a preallocated log must not touch
// the heap.
func TestAppendZeroAlloc(t *testing.T) {
	l := NewRoundLog(1<<16, 8)
	nbr := make([]int64, 8)
	i := int64(0)
	if avg := testing.AllocsPerRun(1000, func() {
		l.Append(float64(i), i, i, i, i, i, i, nbr)
		i++
	}); avg != 0 {
		t.Errorf("Append: %.2f allocs/op, want 0", avg)
	}
}
