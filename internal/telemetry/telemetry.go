// Package telemetry provides algorithm-level, round-granularity
// instrumentation for the owner-computes drivers (matching, coloring,
// BFS). Where package mpi's event rings trace individual runtime
// primitives, a RoundLog captures the quantities the paper's §V-D
// analysis reasons about one layer up: how the unresolved cross-edge
// count (the "nghosts" sum) drains round by round, how many
// REQUEST/REJECT/INVALID protocol records each round pushes, how much
// volume flows toward each neighbor, and how deep the receive queues
// get while the protocol converges.
//
// The discipline matches the event rings: every slice is preallocated
// at construction, Append is bounds-checked stores plus copies (no heap
// traffic in steady state), rows beyond the capacity are counted in a
// drop counter rather than evicting earlier ones, and a disabled log is
// a nil pointer whose entire cost at each instrumentation point is one
// nil check.
//
// Counters recorded per row are cumulative (the engines' running
// totals); Merge converts them to per-round deltas when folding the
// per-rank logs into a run-level Series.
package telemetry

import "fmt"

// RoundLog is one rank's preallocated round-level telemetry store. It
// is written only by the owning rank goroutine during a run and read
// only after the run completes, so it needs no synchronization.
type RoundLog struct {
	width int   // length of the per-destination byte vector per row
	total int64 // work-item denominator for done fractions (owned vertices)

	n       int
	dropped int64

	time       []float64
	unresolved []int64
	done       []int64
	req        []int64
	rej        []int64
	inv        []int64
	queue      []int64
	nbr        []int64 // n rows of width cells, flat
}

// NewRoundLog returns a log holding up to capacity rounds, each with a
// per-destination byte vector of the given width (the communicator
// size; width 0 disables volume capture).
func NewRoundLog(capacity, width int) *RoundLog {
	if capacity < 1 {
		panic(fmt.Sprintf("telemetry: RoundLog capacity = %d", capacity))
	}
	if width < 0 {
		panic(fmt.Sprintf("telemetry: RoundLog width = %d", width))
	}
	return &RoundLog{
		width:      width,
		time:       make([]float64, capacity),
		unresolved: make([]int64, capacity),
		done:       make([]int64, capacity),
		req:        make([]int64, capacity),
		rej:        make([]int64, capacity),
		inv:        make([]int64, capacity),
		queue:      make([]int64, capacity),
		nbr:        make([]int64, capacity*width),
	}
}

// SetTotal records the rank's work-item count (owned vertices), the
// denominator of the Series' done fractions.
func (l *RoundLog) SetTotal(total int64) { l.total = total }

// Append records one driver round. now is the rank's virtual clock at
// the round boundary; unresolved and done are the engine's current
// state; req, rej and inv are the engine's cumulative per-kind protocol
// send counters; queue is the rank's current mailbox occupancy in
// bytes; nbrBytes is the transport's cumulative per-destination payload
// ledger (copied; may be nil or shorter than the row width, in which
// case the remainder stays zero). A nil receiver and a full log are
// both no-ops — the latter bumps the drop counter so truncation is
// detectable.
func (l *RoundLog) Append(now float64, unresolved, done, req, rej, inv, queue int64, nbrBytes []int64) {
	if l == nil {
		return
	}
	if l.n == len(l.time) {
		l.dropped++
		return
	}
	i := l.n
	l.time[i] = now
	l.unresolved[i] = unresolved
	l.done[i] = done
	l.req[i] = req
	l.rej[i] = rej
	l.inv[i] = inv
	l.queue[i] = queue
	row := l.nbr[i*l.width : (i+1)*l.width]
	if len(nbrBytes) > len(row) {
		nbrBytes = nbrBytes[:len(row)]
	}
	copy(row, nbrBytes)
	l.n++
}

// Len returns the number of recorded rounds.
func (l *RoundLog) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// Drops returns how many rounds were discarded after the log filled.
func (l *RoundLog) Drops() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Total returns the value set by SetTotal.
func (l *RoundLog) Total() int64 { return l.total }

// Round is one recorded row. Counters are cumulative as recorded;
// NbrBytes aliases the log's storage and must not be modified.
type Round struct {
	Time       float64
	Unresolved int64
	Done       int64
	Req, Rej   int64
	Inv        int64
	Queue      int64
	NbrBytes   []int64
}

// Round returns row i.
func (l *RoundLog) Round(i int) Round {
	return Round{
		Time:       l.time[i],
		Unresolved: l.unresolved[i],
		Done:       l.done[i],
		Req:        l.req[i],
		Rej:        l.rej[i],
		Inv:        l.inv[i],
		Queue:      l.queue[i],
		NbrBytes:   l.nbr[i*l.width : (i+1)*l.width],
	}
}

// Point is one round of a merged run-level Series. Message-kind counts
// and byte volumes are per-round deltas summed over ranks; Unresolved
// and Done are instantaneous sums; Time, MaxLinkBytes and
// MaxQueueBytes are maxima over ranks.
type Point struct {
	Round      int
	Time       float64 // latest rank clock at this round boundary
	Unresolved int64   // the paper's nghosts sum across ranks
	Done       int64   // matched / colored / visited work items
	DoneFrac   float64 // Done over the run's total work items
	Req        int64   // REQUEST (or announcement / visit) records this round
	Rej        int64   // REJECT records this round
	Inv        int64   // INVALID records this round
	Bytes      int64   // payload bytes pushed this round, all ranks and links
	// MaxLinkBytes is the heaviest single (rank, destination) volume
	// this round — the per-neighbor hot spot.
	MaxLinkBytes int64
	// MaxQueueBytes is the deepest mailbox occupancy any rank reported
	// at this round boundary.
	MaxQueueBytes int64
}

// Series is the run-level view of per-rank RoundLogs: one Point per
// round, with shorter ranks' final rows carried forward so cumulative
// counters stay consistent.
type Series struct {
	Procs  int   // ranks that contributed a log
	Total  int64 // total work items across ranks (done-fraction denominator)
	Drops  int64 // rows discarded across all ranks
	Points []Point
}

// Rounds returns the number of merged rounds.
func (s *Series) Rounds() int { return len(s.Points) }

// Final returns the last point (zero Point for an empty series).
func (s *Series) Final() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Merge folds per-rank logs (nil entries allowed) into a Series. Rank
// rows are aligned by index; a rank past its last row contributes its
// final cumulative values, so sums never regress when ranks finish at
// different rounds.
func Merge(logs []*RoundLog) *Series {
	s := &Series{}
	rounds := 0
	for _, l := range logs {
		if l == nil {
			continue
		}
		s.Procs++
		s.Total += l.total
		s.Drops += l.Drops()
		if l.Len() > rounds {
			rounds = l.Len()
		}
	}
	if rounds == 0 {
		return s
	}
	s.Points = make([]Point, rounds)
	prevReq, prevRej, prevInv := int64(0), int64(0), int64(0)
	prevBytes := int64(0)
	for r := 0; r < rounds; r++ {
		p := Point{Round: r}
		var cumReq, cumRej, cumInv, cumBytes int64
		for _, l := range logs {
			if l == nil || l.Len() == 0 {
				continue
			}
			i := r
			if i >= l.Len() {
				i = l.Len() - 1
			}
			row := l.Round(i)
			if row.Time > p.Time {
				p.Time = row.Time
			}
			p.Unresolved += row.Unresolved
			p.Done += row.Done
			cumReq += row.Req
			cumRej += row.Rej
			cumInv += row.Inv
			if row.Queue > p.MaxQueueBytes {
				p.MaxQueueBytes = row.Queue
			}
			var prevRow []int64
			if i > 0 {
				prevRow = l.Round(i - 1).NbrBytes
			}
			for d, b := range row.NbrBytes {
				cumBytes += b
				delta := b
				if prevRow != nil {
					delta -= prevRow[d]
				}
				// Only ranks still producing rows at r compete for the
				// per-round link hot spot; carried-forward rows have a
				// zero delta by construction.
				if i == r && delta > p.MaxLinkBytes {
					p.MaxLinkBytes = delta
				}
			}
		}
		p.Req = cumReq - prevReq
		p.Rej = cumRej - prevRej
		p.Inv = cumInv - prevInv
		p.Bytes = cumBytes - prevBytes
		if s.Total > 0 {
			p.DoneFrac = float64(p.Done) / float64(s.Total)
		}
		prevReq, prevRej, prevInv, prevBytes = cumReq, cumRej, cumInv, cumBytes
		s.Points[r] = p
	}
	return s
}
