// Explorer coverage for the asynchronous engine family (DESIGN §4f):
// the maximal-matching engine and the Safra quiescence detector run
// under hundreds of perturbed schedules per configuration. Their
// results are legitimately schedule-dependent — which maximal matching
// emerges depends on arrival order — so the outcomes carry ValidOnly
// and the explorer enforces invariants only: valid maximal matching,
// balanced ledgers, drained mailboxes, no goroutine leaks, and no
// false termination. The same mechanism formally excludes the
// EagerReject ablation from fingerprint equivalence (the known
// schedule-dependence documented in internal/matching/perturb_test.go).
package sched_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// asyncClasses is the sweep axis: each single jitter class in
// isolation, then everything at once. With seedsPerClass seeds each,
// one configuration sees 5*seedsPerClass perturbed schedules.
var asyncClasses = []struct {
	name string
	p    sched.Profile
}{
	{"ties", sched.Profile{Ties: true}},
	{"jitter", sched.Profile{Jitter: 1.0}},
	{"slowdown", sched.Profile{Slowdown: 0.5}},
	{"probemiss", sched.Profile{ProbeMiss: 0.5}},
	{"full", sched.Full},
}

const seedsPerClass = 50 // 5 classes x 50 = 250 seeds per configuration

// maximalRunFunc builds the RunFunc for the asynchronous maximal
// engine: run, check every runtime invariant, verify maximality, and
// return a ValidOnly outcome (the matching's identity may differ per
// schedule; its validity may not). A false termination by the detector
// surfaces here as a non-maximal matching, an unsettled-vertex panic,
// or an undrained mailbox.
func maximalRunFunc(g *graph.CSR, model matching.Model, procs int) sched.RunFunc {
	return func(seed uint64, p sched.Profile) (sched.Outcome, error) {
		baseline := runtime.NumGoroutine()
		res, err := matching.Run(g, matching.Options{
			Procs:       procs,
			Model:       model,
			Engine:      matching.EngineMaximal,
			Deadline:    time.Minute,
			Perturb:     p,
			PerturbSeed: seed,
		})
		if err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckGoroutines(baseline); err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckBalanced(res.Report); err != nil {
			return sched.Outcome{}, err
		}
		// Unlike the half-approx protocol, the maximal protocol answers
		// every proposal, so quiescence implies every mailbox is empty.
		if err := mpi.CheckDrained(res.Report); err != nil {
			return sched.Outcome{}, err
		}
		if err := matching.VerifyMaximal(g, res.Result); err != nil {
			return sched.Outcome{}, err
		}
		return sched.Outcome{
			ValidOnly: true,
			Desc:      fmt.Sprintf("maximal card=%d", res.Cardinality),
		}, nil
	}
}

// TestExploreAsyncMaximal is the bug-hunt sweep from the issue: >= 200
// seeds across all four jitter classes (plus the combined profile) over
// the async engine on both FlavorAsync transports and both graph
// families. Any failure shrinks to a minimal profile and prints a
// PERTURB_SEED repro line for pinning.
func TestExploreAsyncMaximal(t *testing.T) {
	n := seedsPerClass
	if testing.Short() {
		n = 4
	}
	const procs = 4
	configs := []struct {
		model matching.Model
		graph string
	}{
		{matching.NSR, "rgg"},
		{matching.NSR, "sbp"},
		{matching.NSRA, "sbp"},
		{matching.MBP, "rgg"},
	}
	graphs := exploreGraphs()
	for _, cfg := range configs {
		g := graphs[cfg.graph]
		run := maximalRunFunc(g, cfg.model, procs)
		for _, cl := range asyncClasses {
			label := fmt.Sprintf("%v/%s/%s", cfg.model, cfg.graph, cl.name)
			t.Run(label, func(t *testing.T) {
				if fail := sched.Explore(run, cl.p, 0xa51c, n); fail != nil {
					writeArtifact(t, label, fail)
					t.Fatalf("async engine invariant violated: %v (replay: %s)", fail.Err, fail.Repro())
				}
			})
		}
	}
}

// quiesceRunFunc exercises the termination detector directly under an
// engine-style drive: a pseudo-random relay where every hop is a
// sender idling with its message still in flight. The invariants are
// the detector's safety contract — at the moment termination is
// observed, every record sent was received and no mailbox holds
// anything.
func quiesceRunFunc(procs, hops int) sched.RunFunc {
	return func(seed uint64, p sched.Profile) (sched.Outcome, error) {
		baseline := runtime.NumGoroutine()
		rep, err := mpi.RunChecked(procs, func(c *mpi.Comm) error {
			q := mpi.NewQuiesce(c)
			sent, recvd := 0, 0
			buf := make([]int64, 1)
			if c.Rank() == 0 {
				q.NoteSend(1)
				sent++
				c.Isend(1%c.Size(), 0, []int64{int64(hops)})
			}
			for {
				progressed := false
				for {
					ok, st := c.Iprobe(mpi.AnySource, mpi.AnyTag)
					if !ok {
						break
					}
					c.RecvInto(st.Source, st.Tag, buf)
					q.NoteRecv(1)
					recvd++
					progressed = true
					if ttl := buf[0]; ttl > 0 {
						dst := (c.Rank() + 1 + int(ttl*2654435761)%(c.Size()-1)) % c.Size()
						q.NoteSend(1)
						sent++
						c.Isend(dst, 0, []int64{ttl - 1})
					}
				}
				if progressed {
					continue
				}
				if q.Idle() {
					break
				}
				q.Block()
			}
			if ok, st := c.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
				return fmt.Errorf("rank %d: message from %d still queued after termination", c.Rank(), st.Source)
			}
			tot := c.AllreduceInt64(mpi.OpSum, []int64{int64(sent), int64(recvd)})
			if tot[0] != tot[1] {
				return fmt.Errorf("sent %d != received %d at termination", tot[0], tot[1])
			}
			return nil
		}, mpi.WithPerturb(seed, p), mpi.WithDeadline(time.Minute))
		if err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckDrained(rep); err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckGoroutines(baseline); err != nil {
			return sched.Outcome{}, err
		}
		return sched.Outcome{ValidOnly: true, Desc: "quiescent"}, nil
	}
}

// TestExploreQuiesceDetector sweeps the detector itself with the same
// seed budget as the engine sweep.
func TestExploreQuiesceDetector(t *testing.T) {
	n := seedsPerClass
	if testing.Short() {
		n = 4
	}
	run := quiesceRunFunc(5, 64)
	for _, cl := range asyncClasses {
		t.Run(cl.name, func(t *testing.T) {
			if fail := sched.Explore(run, cl.p, 0x70ce, n); fail != nil {
				writeArtifact(t, "quiesce/"+cl.name, fail)
				t.Fatalf("detector safety violated: %v (replay: %s)", fail.Err, fail.Repro())
			}
		})
	}
}

// eagerRunFunc is the EagerReject ablation under ValidOnly: its
// matched-edge set is legitimately schedule-dependent (see
// internal/matching/perturb_test.go), so it is formally excluded from
// fingerprint equivalence and swept for validity invariants only.
func eagerRunFunc(g *graph.CSR, model matching.Model, procs int) sched.RunFunc {
	return func(seed uint64, p sched.Profile) (sched.Outcome, error) {
		res, err := matching.Run(g, matching.Options{
			Procs:       procs,
			Model:       model,
			EagerReject: true,
			Deadline:    time.Minute,
			Perturb:     p,
			PerturbSeed: seed,
		})
		if err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckBalanced(res.Report); err != nil {
			return sched.Outcome{}, err
		}
		if err := matching.Verify(g, res.Result); err != nil {
			return sched.Outcome{}, err
		}
		return sched.Outcome{
			ValidOnly: true,
			Desc:      fmt.Sprintf("eager card=%d", res.Cardinality),
		}, nil
	}
}

// TestExploreEagerRejectExcluded resolves the documented EagerReject
// schedule-dependence: the ablation now participates in explorer sweeps
// under the ValidOnly contract — every schedule must yield a valid
// matching, divergent edge sets are by-design and never a false
// positive.
func TestExploreEagerRejectExcluded(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 4
	}
	g := gen.SBP(120, 6, 8, 0.5, 11)
	for _, model := range []matching.Model{matching.NSR, matching.NCL} {
		t.Run(model.String(), func(t *testing.T) {
			if fail := sched.Explore(eagerRunFunc(g, model, 4), sched.Full, 0xea6e, n); fail != nil {
				writeArtifact(t, "eager/"+model.String(), fail)
				t.Fatalf("eager-reject invariant violated: %v (replay: %s)", fail.Err, fail.Repro())
			}
		})
	}
}

// TestValidOnlySkipsFingerprint pins the exclusion mechanism itself: a
// protocol that returns different fingerprints per schedule but marks
// ValidOnly must pass, and the same protocol without ValidOnly must be
// caught.
func TestValidOnlySkipsFingerprint(t *testing.T) {
	varying := func(validOnly bool) sched.RunFunc {
		return func(seed uint64, p sched.Profile) (sched.Outcome, error) {
			return sched.Outcome{Fingerprint: seed, ValidOnly: validOnly, Desc: "varies"}, nil
		}
	}
	if fail := sched.Explore(varying(true), sched.Full, 1, 8); fail != nil {
		t.Fatalf("ValidOnly outcome still compared by fingerprint: %v", fail.Err)
	}
	if fail := sched.Explore(varying(false), sched.Full, 1, 8); fail == nil {
		t.Fatal("non-ValidOnly divergence went uncaught")
	}
}
