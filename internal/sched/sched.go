// Package sched is a seeded schedule-perturbation engine for the mpi
// runtime. MPI guarantees only per-(source, communicator) non-overtaking
// delivery; everything else — which of several concurrently available
// messages an AnySource receive matches, whether a nonblocking probe
// observes a message that is "almost" there, how long each message
// spends in flight, how fast each rank runs — is legal for an
// implementation to vary. The runtime's default schedule is the
// deterministic earliest-virtual-arrival order, which is exactly one
// point in that legal space; protocols can hide order-dependence bugs
// behind it.
//
// A Profile enables classes of perturbation; New derives one
// deterministic PRNG stream per rank from a seed, and the runtime
// consults the per-rank stream at its three legal reordering points
// (mpi.WithPerturb threads it through):
//
//   - wildcard selection: permute AnySource matching among bucket
//     fronts whose arrivals overlap (per-source FIFO still holds),
//   - arrival stamping: per-message latency jitter and a fixed
//     per-rank slowdown factor applied before virtual-arrival stamps,
//   - probe timing: forced Iprobe/Test misses with a bounded retry
//     budget so poll loops exercise their miss paths.
//
// Explore runs a protocol body under many seeds, checks that results
// and run-invariants are schedule-independent, and shrinks any failure
// to a minimal replayable reproduction. The package depends only on the
// leaf PRNG package (repro/internal/rng), so every layer (including the
// runtime itself) may depend on it.
package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Profile selects which classes of legal schedule perturbation are
// active. The zero value disables everything (and the runtime's
// fast paths stay allocation-free and branch-predictable).
type Profile struct {
	// Jitter is the maximum relative latency inflation per message: each
	// in-flight latency is multiplied by 1+u·Jitter with u uniform in
	// [0,1). Zero disables message jitter. Jitter only ever delays a
	// message, so causality (arrival >= send completion) is preserved.
	Jitter float64
	// Slowdown is the maximum relative per-rank slowdown: each rank
	// draws a fixed factor in [1, 1+Slowdown) at startup that scales
	// every latency it induces, modeling persistently slow ranks (OS
	// noise, a busy socket). Zero disables.
	Slowdown float64
	// Ties permutes wildcard (AnySource) selection uniformly among the
	// messages that are concurrently available at match time, instead of
	// always taking the earliest virtual arrival. Per-source FIFO order
	// is preserved — only the interleaving across sources varies.
	Ties bool
	// ProbeMiss is the probability that a nonblocking probe (Iprobe,
	// NbrRequest.Test) is forced to report "nothing there" even though a
	// message is queued. Forced misses are bounded per call site (see
	// maxConsecMiss), so poll loops still make progress. Blocking
	// probes are never forced to miss.
	ProbeMiss float64
}

// Full is the everything-on exploration profile used by default.
var Full = Profile{Jitter: 1.0, Slowdown: 0.5, Ties: true, ProbeMiss: 0.25}

// Enabled reports whether any perturbation class is active.
func (p Profile) Enabled() bool {
	return p.Jitter > 0 || p.Slowdown > 0 || p.Ties || p.ProbeMiss > 0
}

// String renders p in the form ParseProfile accepts: "off" for the
// zero profile, otherwise a comma-separated key=value list.
func (p Profile) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	if p.Jitter > 0 {
		parts = append(parts, "jitter="+strconv.FormatFloat(p.Jitter, 'g', -1, 64))
	}
	if p.Slowdown > 0 {
		parts = append(parts, "slowdown="+strconv.FormatFloat(p.Slowdown, 'g', -1, 64))
	}
	if p.Ties {
		parts = append(parts, "ties")
	}
	if p.ProbeMiss > 0 {
		parts = append(parts, "probemiss="+strconv.FormatFloat(p.ProbeMiss, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses the textual profile forms used by the -perturb
// flag and the PERTURB environment variable: the names "off" and
// "full", or a comma-separated list of jitter=F, slowdown=F, ties and
// probemiss=F settings (unmentioned classes stay off).
func ParseProfile(s string) (Profile, error) {
	switch strings.TrimSpace(s) {
	case "", "off", "none":
		return Profile{}, nil
	case "full", "all", "default":
		return Full, nil
	}
	var p Profile
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		var fv float64
		if hasVal {
			var err error
			fv, err = strconv.ParseFloat(val, 64)
			if err != nil || fv < 0 {
				return Profile{}, fmt.Errorf("sched: bad value %q for %q (want a non-negative number)", val, key)
			}
		}
		switch key {
		case "jitter":
			if !hasVal {
				return Profile{}, fmt.Errorf("sched: %q needs a value (jitter=0.5)", key)
			}
			p.Jitter = fv
		case "slowdown", "slow":
			if !hasVal {
				return Profile{}, fmt.Errorf("sched: %q needs a value (slowdown=0.5)", key)
			}
			p.Slowdown = fv
		case "ties":
			if hasVal {
				return Profile{}, fmt.Errorf("sched: %q takes no value", key)
			}
			p.Ties = true
		case "probemiss", "miss":
			if !hasVal {
				return Profile{}, fmt.Errorf("sched: %q needs a value (probemiss=0.25)", key)
			}
			p.ProbeMiss = fv
		default:
			return Profile{}, fmt.Errorf("sched: unknown perturbation class %q (want jitter=, slowdown=, ties, probemiss=)", key)
		}
	}
	return p, nil
}

// classes enumerates the perturbation classes for the shrinking pass,
// most-intrusive first (the order shrinking tries to disable them).
var classes = []struct {
	name    string
	disable func(*Profile)
	on      func(Profile) bool
}{
	{"ties", func(p *Profile) { p.Ties = false }, func(p Profile) bool { return p.Ties }},
	{"jitter", func(p *Profile) { p.Jitter = 0 }, func(p Profile) bool { return p.Jitter > 0 }},
	{"slowdown", func(p *Profile) { p.Slowdown = 0 }, func(p Profile) bool { return p.Slowdown > 0 }},
	{"probemiss", func(p *Profile) { p.ProbeMiss = 0 }, func(p Profile) bool { return p.ProbeMiss > 0 }},
}

// enabledClasses returns the names of the active classes, for reporting.
func (p Profile) enabledClasses() []string {
	var names []string
	for _, c := range classes {
		if c.on(p) {
			names = append(names, c.name)
		}
	}
	sort.Strings(names)
	return names
}

// NumClasses reports how many perturbation classes p enables (used by
// tests asserting that shrinking actually minimized).
func (p Profile) NumClasses() int { return len(p.enabledClasses()) }
