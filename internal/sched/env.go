package sched

import (
	"fmt"
	"os"
	"strconv"
)

// Environment variables shared by the explorer tests, the CI perturb
// job and failure-repro lines (Failure.Repro):
//
//	PERTURB_SEED=0x1f   replay exactly this seed instead of exploring
//	PERTURB=ties,jitter=1  perturbation profile ("full" when unset)
//	PERTURB_N=32        number of exploration seeds
const (
	EnvSeed  = "PERTURB_SEED"
	EnvProf  = "PERTURB"
	EnvCount = "PERTURB_N"
)

// FromEnv reads the perturbation environment. It returns the profile
// (Full when PERTURB is unset), the replay seed and whether one was set,
// and the exploration seed count (def when PERTURB_N is unset).
func FromEnv(def int) (p Profile, seed uint64, replay bool, n int, err error) {
	p, n = Full, def
	if s := os.Getenv(EnvProf); s != "" {
		p, err = ParseProfile(s)
		if err != nil {
			return p, 0, false, n, fmt.Errorf("%s: %w", EnvProf, err)
		}
	}
	if s := os.Getenv(EnvSeed); s != "" {
		seed, err = strconv.ParseUint(s, 0, 64)
		if err != nil {
			return p, 0, false, n, fmt.Errorf("%s: bad seed %q: %w", EnvSeed, s, err)
		}
		replay = true
	}
	if s := os.Getenv(EnvCount); s != "" {
		v, perr := strconv.Atoi(s)
		if perr != nil || v < 1 {
			return p, seed, replay, n, fmt.Errorf("%s: bad count %q (want a positive integer)", EnvCount, s)
		}
		n = v
	}
	return p, seed, replay, n, nil
}
