package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestProfileStringParseRoundTrip(t *testing.T) {
	cases := []Profile{
		{},
		Full,
		{Ties: true},
		{Jitter: 0.5},
		{Slowdown: 0.25},
		{ProbeMiss: 0.125},
		{Jitter: 1, Ties: true},
		{Jitter: 2, Slowdown: 0.75, Ties: true, ProbeMiss: 0.5},
	}
	for _, p := range cases {
		s := p.String()
		got, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		if got != p {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, p)
		}
	}
}

func TestParseProfileNames(t *testing.T) {
	for _, s := range []string{"", "off", "none"} {
		if p, err := ParseProfile(s); err != nil || p.Enabled() {
			t.Errorf("ParseProfile(%q) = %+v, %v; want disabled profile", s, p, err)
		}
	}
	for _, s := range []string{"full", "all", "default"} {
		if p, err := ParseProfile(s); err != nil || p != Full {
			t.Errorf("ParseProfile(%q) = %+v, %v; want Full", s, p, err)
		}
	}
	for _, s := range []string{"bogus", "jitter", "ties=1", "jitter=-2", "jitter=x"} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q) succeeded, want error", s)
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	p := Full
	a, b := New(7, p, 4), New(7, p, 4)
	for r := 0; r < 4; r++ {
		ra, rb := a.Rank(r), b.Rank(r)
		for i := 0; i < 100; i++ {
			switch i % 3 {
			case 0:
				if la, lb := ra.Latency(1.5), rb.Latency(1.5); la != lb {
					t.Fatalf("rank %d draw %d: Latency %v != %v", r, i, la, lb)
				}
			case 1:
				if ma, mb := ra.ForceMiss(), rb.ForceMiss(); ma != mb {
					t.Fatalf("rank %d draw %d: ForceMiss %v != %v", r, i, ma, mb)
				}
			case 2:
				if pa, pb := ra.Pick(5), rb.Pick(5); pa != pb {
					t.Fatalf("rank %d draw %d: Pick %v != %v", r, i, pa, pb)
				}
			}
		}
	}
	if New(0, Profile{}, 4) != nil {
		t.Fatalf("New with a disabled profile should return nil")
	}
}

func TestLatencyPreservesCausality(t *testing.T) {
	pt := New(99, Full, 2)
	r := pt.Rank(1)
	for i := 0; i < 1000; i++ {
		base := 1e-6 * float64(i+1)
		if lat := r.Latency(base); lat < base {
			t.Fatalf("Latency(%g) = %g < base: perturbed message would arrive before it was sent", base, lat)
		}
	}
}

func TestForceMissBounded(t *testing.T) {
	// Even at ProbeMiss=1 a poll loop must get a real probe through
	// every maxConsecMiss+1 calls.
	pt := New(3, Profile{ProbeMiss: 1}, 1)
	r := pt.Rank(0)
	consec := 0
	for i := 0; i < 10000; i++ {
		if r.ForceMiss() {
			consec++
			if consec > maxConsecMiss {
				t.Fatalf("%d consecutive forced misses, cap is %d", consec, maxConsecMiss)
			}
		} else {
			consec = 0
		}
	}
}

func TestPickInRange(t *testing.T) {
	pt := New(11, Profile{Ties: true}, 1)
	r := pt.Rank(0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Pick(4)
		if v < 0 || v >= 4 {
			t.Fatalf("Pick(4) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick(4) over 1000 draws hit %d of 4 values", len(seen))
	}
}

// orderRun simulates an order-dependent protocol for explorer testing:
// with Ties enabled the fingerprint varies by seed; otherwise it is
// stable. It lets the shrinking logic be tested hermetically.
func orderRun(seed uint64, p Profile) (Outcome, error) {
	fp := uint64(0xfeed)
	if p.Ties {
		fp = rng.Mix(seed | 1)
	}
	return Outcome{Fingerprint: fp, Desc: fmt.Sprintf("fp=%#x", fp)}, nil
}

func TestExploreCatchesAndShrinks(t *testing.T) {
	fail := Explore(orderRun, Full, 42, 64)
	if fail == nil {
		t.Fatal("Explore missed an order-dependent protocol")
	}
	if !fail.Profile.Ties {
		t.Fatalf("shrunk profile %v lost the class that causes the failure", fail.Profile)
	}
	if got := fail.Profile.NumClasses(); got != 1 {
		t.Fatalf("shrunk profile %v has %d classes, want 1 (ties)", fail.Profile, got)
	}
	// The repro line must actually reproduce.
	if re := Replay(orderRun, fail.Profile, fail.Seed); re == nil {
		t.Fatalf("replaying %s did not reproduce the failure", fail.Repro())
	}
	if !strings.HasPrefix(fail.Repro(), "PERTURB_SEED=0x") || !strings.Contains(fail.Repro(), "PERTURB=ties") {
		t.Fatalf("repro line %q not in replayable form", fail.Repro())
	}
}

func TestExploreCleanProtocolPasses(t *testing.T) {
	clean := func(seed uint64, p Profile) (Outcome, error) {
		return Outcome{Fingerprint: 1, Desc: "stable"}, nil
	}
	if fail := Explore(clean, Full, 1, 32); fail != nil {
		t.Fatalf("clean protocol reported as order-dependent: %v", fail)
	}
}

func TestExploreReportsInvariantErrors(t *testing.T) {
	boom := errors.New("mailbox not drained")
	broken := func(seed uint64, p Profile) (Outcome, error) {
		if p.ProbeMiss > 0 {
			return Outcome{}, boom
		}
		return Outcome{Fingerprint: 1}, nil
	}
	fail := Explore(broken, Full, 5, 16)
	if fail == nil {
		t.Fatal("Explore missed an invariant violation")
	}
	if !errors.Is(fail.Err, boom) {
		t.Fatalf("failure error %v does not wrap the invariant error", fail.Err)
	}
	if fail.Profile.ProbeMiss <= 0 || fail.Profile.NumClasses() != 1 {
		t.Fatalf("shrunk profile %v, want probemiss only", fail.Profile)
	}
}

func TestExploreBaselineFailure(t *testing.T) {
	broken := func(seed uint64, p Profile) (Outcome, error) {
		return Outcome{}, errors.New("always broken")
	}
	fail := Explore(broken, Full, 5, 4)
	if fail == nil || fail.Profile.Enabled() || fail.Seed != 0 {
		t.Fatalf("baseline failure not reported as such: %+v", fail)
	}
}

func TestSeedAtDecorrelated(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := SeedAt(123, i)
		if seen[s] {
			t.Fatalf("duplicate seed at index %d", i)
		}
		seen[s] = true
	}
}
