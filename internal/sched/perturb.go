package sched

import "repro/internal/rng"

// Randomness comes from the shared SplitMix64 package (repro/internal/rng):
// rng.Mix decorrelates derived seeds, rng.Stream is the per-class counter
// stream. The streams are bit-identical to the local prng this package
// used to carry, so historical (seed, profile) pairs replay unchanged.

// Perturb is one instantiated perturbation: a profile plus one
// deterministic PRNG stream per rank. Streams are strictly per-rank —
// each is consulted only from its owning rank's goroutine — so
// perturbed runs need no extra synchronization and a seed replays the
// same sequence of perturbation decisions.
type Perturb struct {
	seed    uint64
	profile Profile
	ranks   []Rank
}

// New builds a Perturb for nranks ranks from seed. A disabled profile
// returns nil, which is the runtime's "no perturbation" fast path.
func New(seed uint64, p Profile, nranks int) *Perturb {
	if !p.Enabled() {
		return nil
	}
	pt := &Perturb{seed: seed, profile: p, ranks: make([]Rank, nranks)}
	for r := range pt.ranks {
		rk := &pt.ranks[r]
		rk.p = p
		// Decorrelate rank streams: hash (seed, rank) rather than seeding
		// with seed+rank, so nearby seeds do not share rank streams. Each
		// jitter class gets its own stream off the rank seed: the classes
		// consume draws at wall-clock-sensitive rates (probe polling, tie
		// candidate counts), and separate streams keep one class's
		// consumption from desynchronizing another's draws between
		// replays of the same seed.
		rkSeed := rng.Mix(seed ^ rng.Mix(uint64(r)+1))
		rk.jitterRng = rng.NewStream(rng.Mix(rkSeed ^ 0x6a09e667f3bcc908)) // sqrt(2) frac
		rk.probeRng = rng.NewStream(rng.Mix(rkSeed ^ 0xbb67ae8584caa73b))  // sqrt(3) frac
		rk.tieRng = rng.NewStream(rng.Mix(rkSeed ^ 0x3c6ef372fe94f82b))    // sqrt(5) frac
		rk.slow = 1
		if p.Slowdown > 0 {
			slowRng := rng.NewStream(rkSeed)
			rk.slow = 1 + p.Slowdown*slowRng.Float64()
		}
	}
	return pt
}

// Seed returns the seed New was called with.
func (pt *Perturb) Seed() uint64 { return pt.seed }

// Profile returns the profile New was called with.
func (pt *Perturb) Profile() Profile { return pt.profile }

// Rank returns rank r's perturbation stream. The returned pointer must
// only be used from rank r's goroutine.
func (pt *Perturb) Rank(r int) *Rank { return &pt.ranks[r] }

// maxConsecMiss bounds how many times in a row a nonblocking probe may
// be forced to miss, so perturbed poll loops still make progress.
const maxConsecMiss = 8

// Rank is one rank's perturbation state: one independent PRNG stream
// per jitter class. All methods are single-goroutine: only the owning
// rank may call them (the mailbox hooks run on the receiving rank's
// goroutine under its mailbox lock).
type Rank struct {
	jitterRng  rng.Stream // consumed per send (Latency)
	probeRng   rng.Stream // consumed per nonblocking probe (ForceMiss)
	tieRng     rng.Stream // consumed per wildcard tie decision (Pick)
	p          Profile
	slow       float64 // fixed per-rank latency factor, >= 1
	consecMiss int
}

// Latency perturbs one in-flight latency: the per-rank slowdown factor
// times a fresh jitter draw. The result is always >= base, so message
// causality (arrival after send) is preserved; with jitter active,
// per-source arrival stamps are no longer monotone, but delivery order
// stays FIFO per source (the mailbox rings are structural).
func (r *Rank) Latency(base float64) float64 {
	lat := base * r.slow
	if r.p.Jitter > 0 {
		lat *= 1 + r.p.Jitter*r.jitterRng.Float64()
	}
	return lat
}

// ForceMiss reports whether the next nonblocking probe should be forced
// to report no message. Misses are bounded: after maxConsecMiss
// consecutive forced misses the next probe is allowed through.
func (r *Rank) ForceMiss() bool {
	if r.p.ProbeMiss <= 0 {
		return false
	}
	if r.consecMiss >= maxConsecMiss {
		r.consecMiss = 0
		return false
	}
	if r.probeRng.Float64() < r.p.ProbeMiss {
		r.consecMiss++
		return true
	}
	r.consecMiss = 0
	return false
}

// Ties reports whether wildcard-selection permutation is active.
func (r *Rank) Ties() bool { return r.p.Ties }

// Pick returns a uniform draw in [0, n), used to select among n
// concurrently available wildcard candidates. n must be > 0.
func (r *Rank) Pick(n int) int {
	if n == 1 {
		return 0
	}
	return r.tieRng.Intn(n)
}
