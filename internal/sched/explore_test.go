// Explorer integration tests: run the distributed matching protocol
// under many perturbed schedules and require every schedule to produce
// the identical matching. These live in an external test package so the
// leaf sched package can be imported by the runtime while its tests
// exercise the full stack (sched -> mpi -> transports -> matching).
//
// Environment (all optional; see sched/env.go and the CI perturb job):
//
//	PERTURB_N=32          seeds per (model, graph) pair
//	PERTURB=ties,jitter=1 perturbation profile (default full)
//	PERTURB_SEED=0x1f     replay one seed instead of exploring
//	PERTURB_ARTIFACT=p.json  write any failure as a JSON artifact
package sched_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// defaultSeeds is the per-(model, graph) seed budget when PERTURB_N is
// unset: the acceptance bar is >= 100 seeds per model, split across the
// two graphs. -short runs a smoke subset.
const defaultSeeds = 50

// exploreGraphs are the small inputs the explorer sweeps: a random
// geometric graph (the paper's RGG family) and a stochastic block
// partition graph (its SBP family), both with cross-rank edges on every
// boundary at procs=4.
func exploreGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"rgg": gen.RGG(96, gen.RGGRadiusForDegree(96, 6), 7),
		"sbp": gen.SBP(120, 6, 8, 0.5, 11),
	}
}

// matchRunFunc builds the sched.RunFunc for one (model, graph)
// configuration: each invocation runs distributed matching under the
// given perturbation, applies the runtime invariants (no goroutine
// leaks via matching.Run's own teardown + CheckBalanced through the
// Report, plus full result validation), and fingerprints the matching.
func matchRunFunc(g *graph.CSR, model matching.Model, procs int) sched.RunFunc {
	return func(seed uint64, p sched.Profile) (sched.Outcome, error) {
		baseline := runtime.NumGoroutine()
		res, err := matching.Run(g, matching.Options{
			Procs:       procs,
			Model:       model,
			Deadline:    time.Minute,
			Perturb:     p,
			PerturbSeed: seed,
		})
		if err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckGoroutines(baseline); err != nil {
			return sched.Outcome{}, err
		}
		if err := mpi.CheckBalanced(res.Report); err != nil {
			return sched.Outcome{}, err
		}
		if err := matching.VerifyLocallyDominant(g, res.Result); err != nil {
			return sched.Outcome{}, err
		}
		return fingerprint(res), nil
	}
}

// fingerprint distills a run's result into the schedule-invariant
// outcome: the exact weight bits, cardinality, and the mate vector
// hash. Virtual times, round counts and message counts legitimately
// vary across schedules and are excluded.
func fingerprint(res *matching.ParallelResult) sched.Outcome {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(math.Float64bits(res.Weight))
	mix(uint64(res.Cardinality))
	for _, m := range res.Mate {
		mix(uint64(int64(m)))
	}
	return sched.Outcome{
		Fingerprint: h,
		Desc:        fmt.Sprintf("weight=%.6f card=%d", res.Weight, res.Cardinality),
	}
}

// writeArtifact serializes a failure for the CI perturb job's
// failing-seed artifact upload (PERTURB_ARTIFACT).
func writeArtifact(t *testing.T, label string, fail *sched.Failure) {
	path := os.Getenv("PERTURB_ARTIFACT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Errorf("PERTURB_ARTIFACT: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.Encode(map[string]any{
		"label":    label,
		"seed":     fmt.Sprintf("%#x", fail.Seed),
		"profile":  fail.Profile.String(),
		"repro":    fail.Repro(),
		"error":    fail.Err.Error(),
		"baseline": fail.Baseline.Desc,
		"got":      fail.Got.Desc,
	})
}

// TestExploreMatching is the schedule-invariance gate: for each of the
// paper's three communication models, the matching produced on the RGG
// and SBP inputs must be bit-identical across the unperturbed baseline
// and every perturbed schedule. PERTURB_SEED replays one failing seed
// (the Failure.Repro form); any failure is shrunk to a minimal profile
// and reported with its replay line.
func TestExploreMatching(t *testing.T) {
	prof, rseed, replay, n, err := sched.FromEnv(defaultSeeds)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() && os.Getenv(sched.EnvCount) == "" {
		n = 8
	}
	const procs = 4
	for _, model := range []matching.Model{matching.NSR, matching.RMA, matching.NCL} {
		for name, g := range exploreGraphs() {
			label := fmt.Sprintf("%v/%s", model, name)
			t.Run(label, func(t *testing.T) {
				run := matchRunFunc(g, model, procs)
				var fail *sched.Failure
				if replay {
					fail = sched.Replay(run, prof, rseed)
				} else {
					fail = sched.Explore(run, prof, 0x5eed, n)
				}
				if fail != nil {
					writeArtifact(t, label, fail)
					t.Fatalf("schedule-dependent result: %v\nreplay with: %s go test ./internal/sched -run 'TestExploreMatching/%s'",
						fail.Err, fail.Repro(), label)
				}
			})
		}
	}
}

// TestExploreMatchingAllModels extends the sweep to the repo's two
// extension models (NSRA aggregation, NCLI pipelining) at a reduced
// seed budget — they share the engine but exercise different transports
// (flush-before-block, double-buffered in-flight rounds).
func TestExploreMatchingAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("extension-model sweep skipped in -short")
	}
	g := gen.SBP(120, 6, 8, 0.5, 11)
	for _, model := range []matching.Model{matching.MBP, matching.NSRA, matching.NCLI, matching.NCLC} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			if fail := sched.Explore(matchRunFunc(g, model, 4), sched.Full, 0xab, 16); fail != nil {
				writeArtifact(t, model.String(), fail)
				t.Fatalf("schedule-dependent result: %v (replay: %s)", fail.Err, fail.Repro())
			}
		})
	}
}

// TestInjectedOrderingBugCaughtAndShrunk is the explorer's own
// regression: a deliberately order-dependent protocol — rank 0 folds
// AnySource arrival order into its result, exactly the bug class the
// engine exists to catch — must be (a) caught, (b) shrunk to a minimal
// single-class profile, and (c) replayable from the emitted repro.
func TestInjectedOrderingBugCaughtAndShrunk(t *testing.T) {
	const procs = 5
	buggy := func(seed uint64, p sched.Profile) (sched.Outcome, error) {
		var h uint64
		_, err := mpi.Run(procs, func(c *mpi.Comm) error {
			if c.Rank() != 0 {
				c.Isend(0, 1, []int64{int64(c.Rank())})
			}
			c.Barrier() // all sends are queued at rank 0 beyond this point
			if c.Rank() == 0 {
				acc := uint64(0)
				for i := 0; i < procs-1; i++ {
					data, _ := c.Recv(mpi.AnySource, mpi.AnyTag)
					// BUG under test: the fold is order-sensitive, so the
					// result depends on which tied message Recv matches first.
					acc = acc*31 + uint64(data[0])
				}
				h = acc
			}
			return nil
		}, mpi.WithPerturb(seed, p), mpi.WithDeadline(time.Minute))
		if err != nil {
			return sched.Outcome{}, err
		}
		return sched.Outcome{Fingerprint: h, Desc: fmt.Sprintf("fold=%d", h)}, nil
	}

	fail := sched.Explore(buggy, sched.Full, 0xdead, 100)
	if fail == nil {
		t.Fatal("explorer failed to catch the injected AnySource ordering bug")
	}
	if fail.Profile.NumClasses() != 1 {
		t.Fatalf("shrunk profile %q still has %d classes, want 1", fail.Profile, fail.Profile.NumClasses())
	}
	if !fail.Profile.Ties && fail.Profile.Jitter == 0 && fail.Profile.Slowdown == 0 {
		t.Fatalf("shrunk profile %q disabled every class that can reorder arrivals", fail.Profile)
	}
	// The emitted repro must reproduce: same seed, shrunk profile.
	if re := sched.Replay(buggy, fail.Profile, fail.Seed); re == nil {
		t.Fatalf("replaying the emitted repro (%s) did not reproduce the failure", fail.Repro())
	}
	t.Logf("caught and shrunk: %v -> %s", fail.Err, fail.Repro())
}

// TestPerturbedRunInvariants pins the runtime invariants under heavy
// perturbation independent of any protocol: an all-pairs echo exchange
// with wildcard receives must still drain every mailbox, balance its
// ledgers, and deliver per-source FIFO (checked via per-source sequence
// numbers), whatever the profile.
func TestPerturbedRunInvariants(t *testing.T) {
	const procs, msgs = 4, 20
	profiles := []sched.Profile{
		{Ties: true},
		{Jitter: 1},
		{Slowdown: 0.5},
		{ProbeMiss: 0.5},
		sched.Full,
	}
	for _, p := range profiles {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				rep, err := mpi.RunChecked(procs, func(c *mpi.Comm) error {
					for i := 0; i < msgs; i++ {
						for dst := 0; dst < procs; dst++ {
							if dst != c.Rank() {
								c.Isend(dst, 3, []int64{int64(i)})
							}
						}
					}
					next := make([]int64, procs)
					for got := 0; got < msgs*(procs-1); {
						// Exercise both the forced-miss Iprobe path and the
						// blocking wildcard Recv path.
						if ok, st := c.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
							data, rst := c.Recv(st.Source, st.Tag)
							if rst.Source != st.Source {
								return fmt.Errorf("probe/recv mismatch: probed src %d, received %d", st.Source, rst.Source)
							}
							if data[0] != next[rst.Source] {
								return fmt.Errorf("per-source FIFO violated: src %d seq %d, want %d", rst.Source, data[0], next[rst.Source])
							}
							next[rst.Source]++
							got++
							continue
						}
						data, st := c.Recv(mpi.AnySource, mpi.AnyTag)
						if data[0] != next[st.Source] {
							return fmt.Errorf("per-source FIFO violated: src %d seq %d, want %d", st.Source, data[0], next[st.Source])
						}
						next[st.Source]++
						got++
					}
					return nil
				}, mpi.WithPerturb(seed, p), mpi.WithDeadline(time.Minute))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := mpi.CheckDrained(rep); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
