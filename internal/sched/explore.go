package sched

import (
	"fmt"
	"strconv"

	"repro/internal/rng"
)

// Outcome is the schedule-independent summary a RunFunc distills from
// one run: a fingerprint that must be identical across every legal
// schedule (for matching: the result weight bits folded with validity),
// plus a human-readable description for mismatch reports.
//
// Protocols whose result is *legitimately* schedule-dependent — the
// EagerReject ablation, the asynchronous maximal engine — set ValidOnly
// instead: the explorer then enforces only the RunFunc's own invariant
// checks (validity, balance, drained mailboxes, no leaks) and formally
// excludes the fingerprint from equivalence, so a divergent-but-valid
// matching is never reported as a false positive.
type Outcome struct {
	Fingerprint uint64
	Desc        string
	// ValidOnly excludes this protocol from fingerprint equivalence:
	// every perturbed run must still pass its invariants, but outcomes
	// are allowed to differ across schedules.
	ValidOnly bool
}

// RunFunc executes the protocol under test once with the given
// perturbation and returns its outcome. A zero-profile call is the
// unperturbed baseline. The func must also apply its own run-invariant
// checks (balance, drained mailboxes, leaked goroutines, result
// validity) and return an error when any fail.
type RunFunc func(seed uint64, p Profile) (Outcome, error)

// Failure describes a schedule-dependence bug found by Explore, shrunk
// to the smallest perturbation profile that still reproduces it under
// the discovering seed.
type Failure struct {
	// Seed is the discovering seed; replaying it with Profile reproduces
	// the failure.
	Seed uint64
	// Profile is the shrunk (minimal) perturbation profile.
	Profile Profile
	// Err is what the failing run reported: an invariant violation from
	// the RunFunc itself, or an outcome mismatch built by Explore.
	Err error
	// Baseline and Got are the unperturbed and failing outcomes (equal
	// fingerprints when Err came from an invariant check instead).
	Baseline, Got Outcome
}

// Repro renders the one-line replayable reproduction, in the exact
// environment-variable form the explorer tests and the matchbench
// -perturb/-perturb-seed flags accept.
func (f *Failure) Repro() string {
	return "PERTURB_SEED=0x" + strconv.FormatUint(f.Seed, 16) + " PERTURB=" + f.Profile.String()
}

func (f *Failure) Error() string {
	return fmt.Sprintf("schedule-dependent behavior: %v (replay: %s)", f.Err, f.Repro())
}

// SeedAt returns the i-th seed of the deterministic exploration
// sequence rooted at seed0. Hashing rather than incrementing keeps the
// per-rank streams of successive seeds decorrelated.
func SeedAt(seed0 uint64, i int) uint64 {
	return rng.Mix(seed0 + uint64(i)*0x9e3779b97f4a7c15)
}

// Explore runs the protocol once unperturbed to establish the baseline
// outcome, then under n seeds derived from seed0 with profile p,
// requiring every perturbed run to succeed and to reproduce the
// baseline fingerprint. On the first failure it shrinks: it retries the
// failing seed with each perturbation class disabled in turn, keeping a
// class disabled whenever the failure still reproduces, and returns the
// minimal failing configuration. Returns nil when all schedules agree.
//
// A baseline failure (the protocol is broken without any perturbation)
// is reported as a Failure with the zero profile.
func Explore(run RunFunc, p Profile, seed0 uint64, n int) *Failure {
	base, err := run(0, Profile{})
	if err != nil {
		return &Failure{Seed: 0, Profile: Profile{}, Err: fmt.Errorf("unperturbed baseline failed: %w", err), Baseline: base}
	}
	for i := 0; i < n; i++ {
		seed := SeedAt(seed0, i)
		if fail := trySeed(run, base, seed, p); fail != nil {
			return shrink(run, base, fail)
		}
	}
	return nil
}

// Replay re-runs one (seed, profile) pair against the unperturbed
// baseline, returning the failure it reproduces (nil if it passes).
// This is the entry point for PERTURB_SEED replays.
func Replay(run RunFunc, p Profile, seed uint64) *Failure {
	base, err := run(0, Profile{})
	if err != nil {
		return &Failure{Seed: 0, Profile: Profile{}, Err: fmt.Errorf("unperturbed baseline failed: %w", err), Baseline: base}
	}
	return trySeed(run, base, seed, p)
}

// trySeed runs one perturbed schedule and compares it to the baseline.
// Fingerprint equivalence is skipped when either side declares
// ValidOnly — the run's own invariant checks are the whole contract for
// schedule-dependent-by-design protocols.
func trySeed(run RunFunc, base Outcome, seed uint64, p Profile) *Failure {
	got, err := run(seed, p)
	if err != nil {
		return &Failure{Seed: seed, Profile: p, Err: err, Baseline: base, Got: got}
	}
	if base.ValidOnly || got.ValidOnly {
		return nil
	}
	if got.Fingerprint != base.Fingerprint {
		return &Failure{
			Seed:    seed,
			Profile: p,
			Err: fmt.Errorf("outcome diverged from unperturbed baseline: got %q (fp %#x), want %q (fp %#x)",
				got.Desc, got.Fingerprint, base.Desc, base.Fingerprint),
			Baseline: base,
			Got:      got,
		}
	}
	return nil
}

// shrink greedily minimizes a failure: for each perturbation class
// still enabled, re-run the failing seed with that class disabled and
// keep it disabled if the failure reproduces. The result is a profile
// where every remaining class is necessary (removing any single one
// makes the failure vanish), which is what a human wants to debug from.
func shrink(run RunFunc, base Outcome, fail *Failure) *Failure {
	cur := *fail
	for _, cl := range classes {
		if !cl.on(cur.Profile) {
			continue
		}
		trial := cur.Profile
		cl.disable(&trial)
		if !trial.Enabled() {
			// Never shrink to the empty profile: the baseline already
			// passed, so at least one class is necessary.
			continue
		}
		if f := trySeed(run, base, cur.Seed, trial); f != nil {
			cur = *f
		}
	}
	return &cur
}
