package order

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBFSLevelsPath(t *testing.T) {
	g := gen.Path(5)
	levels, reached := BFSLevels(g, 0)
	if reached != 5 {
		t.Fatalf("reached = %d", reached)
	}
	for v, l := range levels {
		if l != v {
			t.Errorf("level[%d] = %d, want %d", v, l, v)
		}
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	levels, reached := BFSLevels(g, 0)
	if reached != 2 {
		t.Fatalf("reached = %d, want 2", reached)
	}
	if levels[2] != -1 || levels[3] != -1 {
		t.Error("unreachable vertices must have level -1")
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := gen.Path(11)
	pp := PseudoPeripheral(g, 5)
	if pp != 0 && pp != 10 {
		t.Errorf("pseudo-peripheral of a path from middle = %d, want an endpoint", pp)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	g := gen.Social(500, 6, 1)
	perm := RCM(g)
	if !IsPermutation(perm) {
		t.Fatal("RCM did not return a permutation")
	}
}

func TestRCMReducesBandwidthOnScrambledMesh(t *testing.T) {
	mesh := gen.BandedMesh(1500, 12, 2, 0, 2)
	scrambled, _ := gen.Scramble(mesh, 3)
	before := scrambled.Bandwidth()
	re := Apply(scrambled, RCM(scrambled))
	after := re.Bandwidth()
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	if after >= before/4 {
		t.Errorf("RCM bandwidth %d, want far below scrambled %d", after, before)
	}
}

func TestRCMReducesProfileOnGrid(t *testing.T) {
	g, _ := gen.Scramble(gen.Grid2D(20, 20), 7)
	before := g.Profile()
	after := Apply(g, RCM(g)).Profile()
	if after >= before {
		t.Errorf("RCM profile %d, want below %d", after, before)
	}
}

func TestRCMDeterministic(t *testing.T) {
	g := gen.SBP(300, 10, 8, 0.4, 5)
	a, b := RCM(g), RCM(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCM is not deterministic")
		}
	}
}

func TestRCMHandlesDisconnectedAndEmpty(t *testing.T) {
	g := gen.KMerGrids(4, 2, 4, 8) // several components
	perm := RCM(g)
	if !IsPermutation(perm) {
		t.Fatal("RCM on disconnected graph is not a permutation")
	}
	empty := graph.NewBuilder(0).Build()
	if len(RCM(empty)) != 0 {
		t.Fatal("RCM on empty graph")
	}
	isolated := graph.NewBuilder(3).Build()
	if !IsPermutation(RCM(isolated)) {
		t.Fatal("RCM on isolated vertices")
	}
}

func TestInverseAndIdentity(t *testing.T) {
	id := Identity(5)
	for i, v := range id {
		if v != i {
			t.Fatal("identity broken")
		}
	}
	perm := []int{2, 0, 1, 4, 3}
	inv := Inverse(perm)
	for i := range perm {
		if inv[perm[i]] != i {
			t.Fatal("inverse broken")
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]int{0, 0, 1}) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]int{0, 3}) {
		t.Error("out of range accepted")
	}
	if !IsPermutation(nil) {
		t.Error("empty should be a permutation")
	}
}

func TestRCMPermutationQuick(t *testing.T) {
	// Property: RCM of any random graph is a permutation, and the
	// reordered graph is structurally valid with identical edge count.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 5
		g := gen.SBP(n, 4, 4, 0.3, seed)
		perm := RCM(g)
		if !IsPermutation(perm) {
			return false
		}
		h := Apply(g, perm)
		return h.Validate() == nil && h.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
