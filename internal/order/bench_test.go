package order

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkRCMBandedMesh(b *testing.B) {
	g, _ := gen.Scramble(gen.BandedMesh(30000, 24, 2.5, 0.002, 1), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm := RCM(g)
		if len(perm) != g.NumVertices() {
			b.Fatal("bad permutation")
		}
	}
}

func BenchmarkRCMSocial(b *testing.B) {
	g := gen.Social(20000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCM(g)
	}
}

func BenchmarkBFSLevels(b *testing.B) {
	g := gen.Graph500(14, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSLevels(g, 0)
	}
}
