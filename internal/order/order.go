// Package order implements graph reordering: breadth-first search
// levelization, pseudo-peripheral root finding, and the Reverse
// Cuthill-McKee (RCM) bandwidth-reduction heuristic used in the paper's
// §V-C reordering study.
package order

import (
	"sort"

	"repro/internal/graph"
)

// BFSLevels returns each vertex's BFS level from root (-1 for
// unreachable vertices) and the number of reached vertices.
func BFSLevels(g *graph.CSR, root int) (levels []int, reached int) {
	n := g.NumVertices()
	levels = make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	queue := make([]int32, 0, n)
	levels[root] = 0
	queue = append(queue, int32(root))
	reached = 1
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		for _, a := range g.Neighbors(v) {
			if levels[a] < 0 {
				levels[a] = levels[v] + 1
				queue = append(queue, a)
				reached++
			}
		}
	}
	return levels, reached
}

// PseudoPeripheral finds an approximately peripheral vertex of start's
// connected component using the George-Liu iteration: repeatedly jump to
// a minimum-degree vertex in the last BFS level until the eccentricity
// stops growing.
func PseudoPeripheral(g *graph.CSR, start int) int {
	cur := start
	curEcc := -1
	for {
		levels, _ := BFSLevels(g, cur)
		ecc, far := 0, cur
		for v, l := range levels {
			if l > ecc {
				ecc = l
				far = v
			} else if l == ecc && l > 0 && g.Degree(v) < g.Degree(far) {
				far = v
			}
		}
		if ecc <= curEcc {
			return cur
		}
		cur, curEcc = far, ecc
	}
}

// CuthillMcKee computes the Cuthill-McKee ordering and returns perm with
// newID = perm[oldID]. Each connected component is rooted at a
// pseudo-peripheral vertex of its lowest-id member; components are laid
// out in order of that lowest id. Within the BFS, neighbors are visited
// in ascending degree (ties by id), the classical CM rule.
func CuthillMcKee(g *graph.CSR) []int {
	n := g.NumVertices()
	perm := make([]int, n)
	visited := make([]bool, n)
	next := 0
	scratch := make([]int32, 0, 64)
	for v0 := 0; v0 < n; v0++ {
		if visited[v0] {
			continue
		}
		root := PseudoPeripheral(g, v0)
		visited[root] = true
		queue := []int32{int32(root)}
		for head := 0; head < len(queue); head++ {
			v := int(queue[head])
			perm[v] = next
			next++
			scratch = scratch[:0]
			for _, a := range g.Neighbors(v) {
				if !visited[a] {
					visited[a] = true
					scratch = append(scratch, a)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				di, dj := g.Degree(int(scratch[i])), g.Degree(int(scratch[j]))
				if di != dj {
					return di < dj
				}
				return scratch[i] < scratch[j]
			})
			queue = append(queue, scratch...)
		}
	}
	return perm
}

// RCM computes the Reverse Cuthill-McKee ordering: the Cuthill-McKee
// order with positions reversed, which never increases and usually
// reduces the envelope relative to CM (Liu & Sherman 1976, the paper's
// ref [24]).
func RCM(g *graph.CSR) []int {
	perm := CuthillMcKee(g)
	n := len(perm)
	for i := range perm {
		perm[i] = n - 1 - perm[i]
	}
	return perm
}

// Apply relabels g by perm (newID = perm[oldID]); a convenience wrapper
// over graph.CSR.Permute that reads naturally at call sites.
func Apply(g *graph.CSR, perm []int) *graph.CSR { return g.Permute(perm) }

// IsPermutation reports whether perm is a bijection on [0, len(perm)).
func IsPermutation(perm []int) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Identity returns the identity permutation on n elements.
func Identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// Inverse returns the inverse permutation.
func Inverse(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}
