package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/mpi"
)

func TestEnergyFromRealRun(t *testing.T) {
	g := gen.Social(800, 8, 1)
	res, err := matching.Run(g, matching.Options{Procs: 8, Model: matching.NSR, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := DefaultEnergyModel().Evaluate(res.Report, nil)
	if rep.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 for 8 ranks at 32/node", rep.Nodes)
	}
	if rep.EnergyKJ <= 0 || rep.AvgPowerKW <= 0 || rep.EDP <= 0 {
		t.Errorf("nonpositive energy report: %+v", rep)
	}
	if math.Abs(rep.CompPct+rep.MPIPct-100) > 1e-6 {
		t.Errorf("comp%%+mpi%% = %g", rep.CompPct+rep.MPIPct)
	}
	if rep.MemMBPerProc <= 0 {
		t.Error("memory must be positive")
	}
	if rep.String() == "" {
		t.Error("empty String")
	}
}

func TestEnergyTracksTime(t *testing.T) {
	// A run that takes longer (MBP's synchronous sends) must burn more
	// energy under the model — the core of Table VIII's story.
	g := gen.Social(1000, 8, 2)
	var e [2]float64
	for i, m := range []matching.Model{matching.NSR, matching.MBP} {
		res, err := matching.Run(g, matching.Options{Procs: 8, Model: m, Deadline: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		e[i] = DefaultEnergyModel().Evaluate(res.Report, nil).EnergyKJ
	}
	if e[1] <= e[0] {
		t.Errorf("MBP energy %g should exceed NSR %g", e[1], e[0])
	}
}

func TestExtraMemoryCounted(t *testing.T) {
	g := gen.Path(100)
	res, err := matching.Run(g, matching.Options{Procs: 4, Model: matching.NSR, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultEnergyModel()
	without := m.Evaluate(res.Report, nil).MemMBPerProc
	extra := []int64{1 << 20, 1 << 20, 1 << 20, 1 << 20}
	with := m.Evaluate(res.Report, extra).MemMBPerProc
	if d := with - without; math.Abs(d-1.0) > 1e-9 {
		t.Errorf("extra MB accounted = %g, want 1.0", d)
	}
}

func TestNodesRoundUp(t *testing.T) {
	rep := &mpi.Report{Procs: 33, Stats: []*mpi.RankStats{}}
	r := DefaultEnergyModel().Evaluate(rep, nil)
	if r.Nodes != 2 {
		t.Errorf("33 ranks -> %d nodes, want 2", r.Nodes)
	}
}

func TestProfilesBasic(t *testing.T) {
	times := map[string][]float64{
		"A": {1, 2, 4}, // best on problem 0
		"B": {2, 1, 1}, // best on problems 1, 2
	}
	curves, err := Profiles(times)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range curves {
		byName[c.Name] = c
	}
	// At tau=1: A wins 1/3, B wins 2/3.
	if f := byName["A"].FracWithin(1); math.Abs(f-1.0/3) > 1e-9 {
		t.Errorf("A at tau=1: %g", f)
	}
	if f := byName["B"].FracWithin(1); math.Abs(f-2.0/3) > 1e-9 {
		t.Errorf("B at tau=1: %g", f)
	}
	// At tau=2 both reach 1.0 (A's worst ratio 4/1=4? A: ratios 1, 2, 4 -> at tau 2, frac 2/3).
	if f := byName["A"].FracWithin(4); f != 1.0 {
		t.Errorf("A at tau=4: %g", f)
	}
	if f := byName["B"].FracWithin(2); f != 1.0 {
		t.Errorf("B at tau=2: %g", f)
	}
	// B dominates overall: higher area score.
	if byName["B"].AreaScore(8) <= byName["A"].AreaScore(8) {
		t.Error("B should have the better profile")
	}
}

func TestProfilesFailuresAreInfinite(t *testing.T) {
	times := map[string][]float64{
		"ok":   {1, 1},
		"fail": {1, -1},
	}
	curves, err := Profiles(times)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if c.Name == "fail" {
			if f := c.FracWithin(1e9); f != 0.5 {
				t.Errorf("failed problem should never be solved: %g", f)
			}
		}
	}
}

func TestProfilesErrors(t *testing.T) {
	if _, err := Profiles(nil); err == nil {
		t.Error("empty scheme set accepted")
	}
	if _, err := Profiles(map[string][]float64{"a": {1}, "b": {1, 2}}); err == nil {
		t.Error("mismatched problem sets accepted")
	}
	if _, err := Profiles(map[string][]float64{"a": {}}); err == nil {
		t.Error("empty problem set accepted")
	}
}
