package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

// Property tests over randomized inputs pin the structural invariants of
// the Table VIII energy model and the Fig 10 performance profiles —
// the facts every consumer (harness tables, shape checks) relies on but
// no example-based test states explicitly.

// randTimes builds a random scheme->times matrix. Every time is
// positive; failRate of entries are flipped to -1 (failure).
func randTimes(rng *rand.Rand, schemes, problems int, failRate float64) map[string][]float64 {
	times := make(map[string][]float64, schemes)
	for s := 0; s < schemes; s++ {
		name := string(rune('A' + s))
		ts := make([]float64, problems)
		for i := range ts {
			ts[i] = 0.1 + rng.Float64()*10
			if rng.Float64() < failRate {
				ts[i] = -1
			}
		}
		times[name] = ts
	}
	return times
}

func TestProfilesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		schemes := 2 + rng.Intn(4)
		problems := 1 + rng.Intn(12)
		times := randTimes(rng, schemes, problems, 0.1)
		curves, err := Profiles(times)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(curves) != schemes {
			t.Fatalf("trial %d: %d curves for %d schemes", trial, len(curves), schemes)
		}
		solvedAtOne := 0.0
		for _, c := range curves {
			// Tau sorted ascending, every ratio >= 1 (nothing beats the
			// per-problem best), Frac nondecreasing in (0, 1].
			for i := range c.Tau {
				if c.Tau[i] < 1 {
					t.Fatalf("trial %d %s: ratio %g < 1", trial, c.Name, c.Tau[i])
				}
				if i > 0 && (c.Tau[i] < c.Tau[i-1] || c.Frac[i] < c.Frac[i-1]) {
					t.Fatalf("trial %d %s: non-monotone profile", trial, c.Name)
				}
				if c.Frac[i] <= 0 || c.Frac[i] > 1 {
					t.Fatalf("trial %d %s: frac %g out of (0,1]", trial, c.Name, c.Frac[i])
				}
			}
			// FracWithin is monotone in tau and consistent with the curve.
			if a, b := c.FracWithin(2), c.FracWithin(8); a > b {
				t.Fatalf("trial %d %s: FracWithin not monotone (%g > %g)", trial, c.Name, a, b)
			}
			// At any finite tau, failures (infinite ratio) never count as
			// solved; everything else eventually does.
			fails := 0
			for _, ts := range times[c.Name] {
				if ts <= 0 {
					fails++
				}
			}
			want := float64(problems-fails) / float64(problems)
			if f := c.FracWithin(math.MaxFloat64); math.Abs(f-want) > 1e-12 && !(fails == problems && f == 0) {
				t.Fatalf("trial %d %s: FracWithin(max) = %g, want %g", trial, c.Name, f, want)
			}
			// AreaScore is a normalized integral of Frac: within [0, 1].
			if s := c.AreaScore(8); s < 0 || s > 1+1e-12 {
				t.Fatalf("trial %d %s: AreaScore %g out of [0,1]", trial, c.Name, s)
			}
			solvedAtOne += c.FracWithin(1)
		}
		// On every problem where anyone finished, someone is best: the
		// tau=1 fractions sum to at least solvable/problems.
		solvable := 0
		for i := 0; i < problems; i++ {
			for _, ts := range times {
				if ts[i] > 0 {
					solvable++
					break
				}
			}
		}
		if solvedAtOne < float64(solvable)/float64(problems)-1e-12 {
			t.Fatalf("trial %d: best-scheme coverage %g < %g", trial, solvedAtOne, float64(solvable)/float64(problems))
		}
	}
}

// TestProfilesScaleInvariant: per-problem rescaling (all schemes on one
// problem multiplied by the same constant) leaves every curve unchanged
// — profiles are about ratios, not absolute times.
func TestProfilesScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	times := randTimes(rng, 4, 9, 0)
	scaled := make(map[string][]float64, len(times))
	factors := make([]float64, 9)
	for i := range factors {
		factors[i] = 0.5 + rng.Float64()*100
	}
	for name, ts := range times {
		cp := make([]float64, len(ts))
		for i, v := range ts {
			cp[i] = v * factors[i]
		}
		scaled[name] = cp
	}
	a, err := Profiles(times)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profiles(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("curve order changed: %s vs %s", a[i].Name, b[i].Name)
		}
		for j := range a[i].Tau {
			if math.Abs(a[i].Tau[j]-b[i].Tau[j]) > 1e-9*a[i].Tau[j] {
				t.Fatalf("%s: ratio %d changed %g -> %g", a[i].Name, j, a[i].Tau[j], b[i].Tau[j])
			}
			if a[i].Frac[j] != b[i].Frac[j] {
				t.Fatalf("%s: frac %d changed", a[i].Name, j)
			}
		}
	}
}

// synthReport builds a deterministic multi-rank report without running
// the scheduler, so energy properties can range over regimes (idle,
// saturated, message-heavy) that real runs reach only incidentally.
func synthReport(rng *rand.Rand, procs int) *mpi.Report {
	rep := &mpi.Report{Procs: procs, MaxVirtualTime: 0.1 + rng.Float64()*10}
	for r := 0; r < procs; r++ {
		rs := &mpi.RankStats{Rank: r}
		rs.CompTime = rng.Float64() * rep.MaxVirtualTime
		rs.CommTime = rng.Float64() * (rep.MaxVirtualTime - rs.CompTime)
		rs.SendCount = int64(rng.Intn(1000))
		rs.AllocHighWater = int64(rng.Intn(1 << 20))
		rep.Stats = append(rep.Stats, rs)
	}
	return rep
}

func TestEnergyModelProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := DefaultEnergyModel()
	for trial := 0; trial < 200; trial++ {
		procs := 1 + rng.Intn(100)
		rep := synthReport(rng, procs)
		r := m.Evaluate(rep, nil)

		if want := (procs + m.CoresPerNode - 1) / m.CoresPerNode; r.Nodes != want {
			t.Fatalf("trial %d: %d ranks -> %d nodes, want %d", trial, procs, r.Nodes, want)
		}
		// EDP = energy x delay, and power is energy over time, by
		// definition — the report must be internally consistent.
		if got, want := r.EDP, r.EnergyKJ*1e3*r.TimeSec; math.Abs(got-want) > 1e-9*want {
			t.Fatalf("trial %d: EDP %g != E*t %g", trial, got, want)
		}
		if got, want := r.AvgPowerKW, r.EnergyKJ/r.TimeSec; math.Abs(got-want) > 1e-9*want {
			t.Fatalf("trial %d: P %g != E/t %g", trial, got, want)
		}
		if math.Abs(r.CompPct+r.MPIPct-100) > 1e-6 {
			t.Fatalf("trial %d: comp+mpi = %g%%", trial, r.CompPct+r.MPIPct)
		}
		// Power is bounded by the all-idle and all-active envelopes plus
		// the per-message term.
		nodes := float64(r.Nodes)
		msgJ := float64(rep.Totals().Msgs) * m.JoulesPerMessage / r.TimeSec
		lo := nodes*m.IdleWattsPerNode + msgJ
		hi := nodes*(m.IdleWattsPerNode+m.ActiveWattsPerNode) + msgJ
		if p := r.AvgPowerKW * 1e3; p < lo-1e-6 || p > hi+1e-6 {
			t.Fatalf("trial %d: power %gW outside [%g, %g]", trial, p, lo, hi)
		}
		// More messages at equal time and activity -> strictly more energy.
		rep.Stats[0].SendCount += 10000
		if r2 := m.Evaluate(rep, nil); r2.EnergyKJ <= r.EnergyKJ {
			t.Fatalf("trial %d: +10k msgs did not raise energy (%g -> %g)", trial, r.EnergyKJ, r2.EnergyKJ)
		}
	}
}

// TestEvaluateZeroAlloc pins the hot-path contract: Evaluate is called
// per run inside harness sweeps and must not allocate.
func TestEvaluateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rep := synthReport(rng, 64)
	extra := make([]int64, 64)
	for i := range extra {
		extra[i] = 1 << 16
	}
	m := DefaultEnergyModel()
	var sink Report
	if allocs := testing.AllocsPerRun(100, func() { sink = m.Evaluate(rep, extra) }); allocs != 0 {
		t.Errorf("Evaluate allocates %v times per call, want 0", allocs)
	}
	if sink.EnergyKJ <= 0 {
		t.Error("sink unset")
	}
}

// TestCurveQueriesZeroAlloc: FracWithin and AreaScore are called in
// rendering loops over every (curve, tau) pair and must not allocate.
func TestCurveQueriesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	curves, err := Profiles(randTimes(rng, 3, 50, 0))
	if err != nil {
		t.Fatal(err)
	}
	c := curves[0]
	var sink float64
	if allocs := testing.AllocsPerRun(100, func() { sink = c.FracWithin(2) + c.AreaScore(8) }); allocs != 0 {
		t.Errorf("curve queries allocate %v times per call, want 0", allocs)
	}
	_ = sink
}
