// Package metrics converts runtime ledgers into the paper's evaluation
// quantities: power/energy/EDP and memory usage (Table VIII) and
// Dolan-Moré performance profiles (Fig 10).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mpi"
)

// EnergyModel maps a run's virtual time and activity to node power and
// energy. The paper measures these with CrayPat on Cori (32 cores/node);
// its Table VIII shows power varying only mildly across communication
// models (9.6-10.7 kW for 32 nodes) while energy tracks runtime, plus a
// per-message activity term that gives the chattier Send-Recv variant its
// slightly higher draw. The defaults reproduce that structure.
type EnergyModel struct {
	// CoresPerNode converts rank counts to node counts (Cori: 32).
	CoresPerNode int
	// IdleWattsPerNode is the baseline draw of an allocated node.
	IdleWattsPerNode float64
	// ActiveWattsPerNode scales with average core activity (0..1).
	ActiveWattsPerNode float64
	// JoulesPerMessage is the incremental energy of injecting one
	// message (NIC + software path).
	JoulesPerMessage float64
}

// DefaultEnergyModel returns parameters tuned to Table VIII's regime.
func DefaultEnergyModel() *EnergyModel {
	return &EnergyModel{
		CoresPerNode:       32,
		IdleWattsPerNode:   190,
		ActiveWattsPerNode: 130,
		JoulesPerMessage:   25e-6,
	}
}

// Report is an energy/memory summary for one run, in the units of the
// paper's Table VIII.
type Report struct {
	Nodes        int
	TimeSec      float64
	AvgPowerKW   float64 // total power across nodes
	EnergyKJ     float64
	EDP          float64 // energy (J) x delay (s)
	CompPct      float64 // fraction of busy time in computation
	MPIPct       float64 // fraction of busy time in communication
	MemMBPerProc float64 // average modeled memory per rank
}

func (r Report) String() string {
	return fmt.Sprintf("nodes=%d t=%.3fs P=%.2fkW E=%.2fkJ EDP=%.3g comp=%.1f%% mpi=%.1f%% mem=%.1fMB/proc",
		r.Nodes, r.TimeSec, r.AvgPowerKW, r.EnergyKJ, r.EDP, r.CompPct, r.MPIPct, r.MemMBPerProc)
}

// Evaluate derives the Table VIII quantities from a runtime report.
// extraMemPerRank optionally adds modeled application memory (graph
// storage) per rank; it may be nil.
func (m *EnergyModel) Evaluate(rep *mpi.Report, extraMemPerRank []int64) Report {
	nodes := (rep.Procs + m.CoresPerNode - 1) / m.CoresPerNode
	t := rep.MaxVirtualTime
	tot := rep.Totals()

	var busy, comp float64
	var memBytes float64
	for i, rs := range rep.Stats {
		busy += rs.CommTime + rs.CompTime
		comp += rs.CompTime
		mem := float64(rs.MemoryBytes())
		if extraMemPerRank != nil {
			mem += float64(extraMemPerRank[i])
		}
		memBytes += mem
	}
	var compPct, mpiPct float64
	if busy > 0 {
		compPct = 100 * comp / busy
		mpiPct = 100 - compPct
	}
	// Average core activity: busy rank-seconds over total rank-seconds.
	activity := 0.0
	if t > 0 {
		activity = busy / (float64(rep.Procs) * t)
		if activity > 1 {
			activity = 1
		}
	}
	powerW := float64(nodes) * (m.IdleWattsPerNode + m.ActiveWattsPerNode*activity)
	energyJ := powerW * t
	energyJ += float64(tot.Msgs) * m.JoulesPerMessage
	if t > 0 {
		powerW = energyJ / t
	}
	return Report{
		Nodes:        nodes,
		TimeSec:      t,
		AvgPowerKW:   powerW / 1e3,
		EnergyKJ:     energyJ / 1e3,
		EDP:          energyJ * t,
		CompPct:      compPct,
		MPIPct:       mpiPct,
		MemMBPerProc: memBytes / float64(rep.Procs) / (1 << 20),
	}
}

// Curve is one scheme's performance profile: Frac[i] of the problem set
// is solved within factor Tau[i] of the per-problem best scheme
// (Dolan & Moré 2002; the paper's Fig 10).
type Curve struct {
	Name string
	Tau  []float64
	Frac []float64
}

// Profiles builds performance-profile curves from per-scheme times over
// a common problem set. times[scheme][i] is scheme's time on problem i;
// all schemes must cover the same problems. Nonpositive times are
// treated as failures (infinite ratio).
func Profiles(times map[string][]float64) ([]Curve, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("metrics: no schemes")
	}
	n := -1
	names := make([]string, 0, len(times))
	for name, ts := range times {
		if n == -1 {
			n = len(ts)
		} else if len(ts) != n {
			return nil, fmt.Errorf("metrics: scheme %s has %d problems, want %d", name, len(ts), n)
		}
		names = append(names, name)
	}
	if n == 0 {
		return nil, fmt.Errorf("metrics: empty problem set")
	}
	sort.Strings(names)

	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
		for _, name := range names {
			if t := times[name][i]; t > 0 && t < best[i] {
				best[i] = t
			}
		}
	}
	curves := make([]Curve, 0, len(names))
	for _, name := range names {
		ratios := make([]float64, 0, n)
		for i, t := range times[name] {
			if t <= 0 || math.IsInf(best[i], 1) {
				ratios = append(ratios, math.Inf(1))
				continue
			}
			ratios = append(ratios, t/best[i])
		}
		sort.Float64s(ratios)
		c := Curve{Name: name}
		for i, r := range ratios {
			c.Tau = append(c.Tau, r)
			c.Frac = append(c.Frac, float64(i+1)/float64(n))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// FracWithin returns the fraction of problems a curve solves within
// factor tau of the best scheme.
func (c Curve) FracWithin(tau float64) float64 {
	frac := 0.0
	for i, t := range c.Tau {
		if t <= tau {
			frac = c.Frac[i]
		}
	}
	return frac
}

// AreaScore integrates a profile curve up to tauMax (higher = better);
// a scalar summary used by the harness to rank schemes as Fig 10 does
// visually.
func (c Curve) AreaScore(tauMax float64) float64 {
	area := 0.0
	prevTau, prevFrac := 1.0, 0.0
	for i := range c.Tau {
		tau := math.Min(c.Tau[i], tauMax)
		if tau > prevTau {
			area += prevFrac * (tau - prevTau)
		}
		prevTau, prevFrac = tau, c.Frac[i]
		if c.Tau[i] >= tauMax {
			break
		}
	}
	if prevTau < tauMax {
		area += prevFrac * (tauMax - prevTau)
	}
	return area / (tauMax - 1)
}
