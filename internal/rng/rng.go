// Package rng is the repository's shared counter-based PRNG: the
// SplitMix64 mixing function (Steele, Lea & Flood, OOPSLA 2014) exposed
// both as a stateless bijection (Mix) and as a tiny counter stream
// (Stream). It is the randomness substrate for every deterministic
// parallel pipeline in the repo:
//
//   - the graph generators partition their sample-index space into
//     fixed-size chunks and derive one Stream per chunk (Derive), so the
//     sampled edge set is a pure function of (params, seed) no matter how
//     many workers process the chunks;
//   - the schedule-perturbation engine (internal/sched) derives one
//     stream per rank per jitter class, so perturbed schedules replay
//     bit-exactly from a seed;
//   - edge-weight tie-breaking (graph.KeyOf) uses Mix directly.
//
// Because Stream is counter-based — the state advances by a fixed Weyl
// increment and the output is a stateless finalization of the counter —
// streams can be split, skipped and derived without any of the
// correlation hazards of seeding linear generators with nearby seeds.
// The package is a leaf: it imports nothing, so every layer may depend
// on it.
package rng

// gamma is the Weyl-sequence increment (the golden ratio in fixed
// point), the standard SplitMix64 stream constant.
const gamma = 0x9e3779b97f4a7c15

// finalize is the SplitMix64 output function: a bijective avalanche over
// uint64. It passes BigCrush when applied to a Weyl counter.
func finalize(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix advances x by one gamma step and finalizes it: a stateless,
// bijective hash suitable for decorrelating derived seeds and for
// keyed per-element draws (Mix(seed^Mix(element)) style). Mix(x) equals
// the first Next() of a Stream seeded with x.
func Mix(x uint64) uint64 { return finalize(x + gamma) }

// Derive folds vals into seed one Mix at a time, producing a
// decorrelated sub-seed: nearby seeds or nearby vals give unrelated
// outputs, and the fold is order- and role-sensitive (Derive(a, b) !=
// Derive(b, a)). Use it to give each (generator, chunk) pair its own
// stream.
func Derive(seed uint64, vals ...uint64) uint64 {
	acc := Mix(seed)
	for _, v := range vals {
		acc = Mix(Mix(acc) ^ v)
	}
	return acc
}

// U01 maps one mixed word to a uniform float64 in [0, 1) using the top
// 53 bits, for pure-function draws that bypass a Stream.
func U01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Stream is a SplitMix64 counter stream. The zero value is a valid
// (seed-0) stream. Streams are values: copying one forks the sequence.
type Stream struct{ state uint64 }

// NewStream returns a stream seeded with seed. Seeds need no
// preconditioning — the finalizer decorrelates consecutive seeds — but
// derived streams should still go through Derive so chunk and class
// indices do not alias.
func NewStream(seed uint64) Stream { return Stream{state: seed} }

// Next returns the next word of the stream.
func (s *Stream) Next() uint64 {
	s.state += gamma
	return finalize(s.state)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be > 0. (The modulo
// bias is below 2^-32 for any n this repository draws; acceptable for
// workload synthesis and schedule exploration.)
func (s *Stream) Intn(n int) int {
	return int(s.Next() % uint64(n))
}

// Perm returns a seeded Fisher-Yates permutation of [0, n).
func Perm(n int, seed uint64) []int {
	s := NewStream(seed)
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
