package rng

import (
	"math"
	"testing"
)

// TestMixMatchesStream pins the contract generators rely on: Mix(x) is
// the first draw of a stream seeded x, so pure-function draws and
// stream draws interleave consistently.
func TestMixMatchesStream(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63, math.MaxUint64} {
		s := NewStream(seed)
		if got, want := s.Next(), Mix(seed); got != want {
			t.Errorf("seed %#x: first Next() = %#x, Mix = %#x", seed, got, want)
		}
	}
}

// TestKnownSplitMix64Vector pins the exact bit-stream against the
// reference SplitMix64 output for seed 1234567 (Vigna's splitmix64.c):
// changing these values silently would invalidate every golden artifact
// downstream.
func TestKnownSplitMix64Vector(t *testing.T) {
	want := []uint64{
		0x599ed017fb08fc85, // 6457827717110365317
		0x2c73f08458540fa5, // 3203168211198807973
		0x883ebce5a3f27c77, // 9817491932198370423
	}
	s := NewStream(1234567)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamsAreValues(t *testing.T) {
	a := NewStream(99)
	a.Next()
	b := a // fork
	if a.Next() != b.Next() {
		t.Fatal("copied stream diverged from original")
	}
}

func TestDeriveDecorrelates(t *testing.T) {
	seen := map[uint64]string{}
	for seed := uint64(0); seed < 8; seed++ {
		for chunk := uint64(0); chunk < 8; chunk++ {
			v := Derive(seed, 7, chunk)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Derive collision: (%d,%d) and %s -> %#x", seed, chunk, prev, v)
			}
			seen[v] = "earlier pair"
		}
	}
	if Derive(1, 2) == Derive(2, 1) {
		t.Error("Derive must not be symmetric in (seed, val)")
	}
}

func TestU01AndFloat64Bounds(t *testing.T) {
	s := NewStream(7)
	for i := 0; i < 1000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
	if U01(0) != 0 {
		t.Error("U01(0) != 0")
	}
	if f := U01(math.MaxUint64); f >= 1 {
		// top 53 bits all set -> just below 1
	} else if f < 0.999 {
		t.Errorf("U01(max) = %g, want just below 1", f)
	}
}

func TestIntnRange(t *testing.T) {
	s := NewStream(3)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) value %d drawn %d/7000 times, want near 1000", v, c)
		}
	}
}

func TestPermIsPermutationAndSeeded(t *testing.T) {
	p := Perm(100, 5)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	q := Perm(100, 5)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("same seed, different permutations")
		}
	}
	r := Perm(100, 6)
	same := true
	for i := range p {
		if p[i] != r[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutations")
	}
}
