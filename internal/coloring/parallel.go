package coloring

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Model aliases the matching package's communication models so both
// owner-computes applications share one vocabulary (NSR, RMA, NCL, MBP,
// NCLI).
type Model = matching.Model

// Options configures a distributed coloring run.
type Options struct {
	Procs         int
	Model         Model
	Cost          *mpi.CostModel
	TrackMatrices bool
	Deadline      time.Duration
	// TraceWaits records per-rank blocked intervals for
	// Report.RenderTimeline.
	TraceWaits bool
	// TraceEvents, when > 0, enables structured event tracing with a
	// per-rank ring of this capacity (Report.Events, WriteChromeTrace).
	TraceEvents int
	// RoundLog, when > 0, enables round-level telemetry with a per-rank
	// log of this capacity (ParallelResult.Telemetry).
	RoundLog int
	// Perturb, when enabled, runs under seeded schedule perturbation
	// (mpi.WithPerturb with PerturbSeed); see internal/sched.
	Perturb     sched.Profile
	PerturbSeed uint64
}

// ParallelResult is the outcome of a distributed coloring.
type ParallelResult struct {
	*Result
	Rounds   int
	Messages int64
	Report   *mpi.Report
	// Telemetry is the merged round-level series (nil unless
	// Options.RoundLog was set). Req counts color announcements; Rej and
	// Inv are always zero for Jones-Plassmann.
	Telemetry *telemetry.Series
}

// ctxColor announces "vertex y (mine) adjacent to your x is colored c";
// the color rides in the record's x slot alongside the edge endpoints —
// records are {ctx, x, y<<colorShift | color}.
const (
	ctxColor   int64 = 1
	colorShift       = 24 // colors < 2^24; vertex ids shifted above
)

// maxMessagesPerCrossArc: each side announces its endpoint's color on a
// cross arc exactly once.
const maxMessagesPerCrossArc = 1

// volumeOf returns a transport's live per-destination byte ledger for
// round telemetry (all in-repo backends implement transport.Volumer).
func volumeOf(t transport.Sender) []int64 {
	if v, ok := t.(transport.Volumer); ok {
		return v.VolumeByDest()
	}
	return nil
}

// engine holds one rank's Jones-Plassmann state.
type jpEngine struct {
	c  *mpi.Comm
	l  *distgraph.Local
	g  *graph.CSR
	tr transport.Sender

	lo, hi    int
	color     []int32 // owned vertices; -1 uncolored
	waitCount []int32 // uncolored higher-priority neighbors remaining
	ghostCol  []int32 // per local arc: far endpoint's color, -1 unknown
	arcBase   int64

	pendingArcs int64 // cross arcs whose announcement we have not received
	work        []int32
	rounds      int
	sent        int64
	ncolored    int64 // owned vertices colored so far
}

func newJPEngine(c *mpi.Comm, l *distgraph.Local, tr transport.Sender) *jpEngine {
	g := l.Graph()
	nOwned := l.NumOwned()
	e := &jpEngine{
		c: c, l: l, g: g, tr: tr,
		lo: l.Lo, hi: l.Hi,
		color:     make([]int32, nOwned),
		waitCount: make([]int32, nOwned),
		ghostCol:  make([]int32, g.Offsets[l.Hi]-g.Offsets[l.Lo]),
		arcBase:   g.Offsets[l.Lo],
	}
	for i := range e.color {
		e.color[i] = -1
	}
	for i := range e.ghostCol {
		e.ghostCol[i] = -1
	}
	var recvArcs int64
	for vi := 0; vi < nOwned; vi++ {
		v := vi + e.lo
		for _, a := range g.Neighbors(v) {
			e.c.Compute(1)
			if priorityLess(v, int(a)) {
				e.waitCount[vi]++
			}
			if !l.Owns(int(a)) {
				recvArcs++
			}
		}
	}
	e.pendingArcs = recvArcs
	c.AccountAlloc(int64(nOwned)*8 + int64(len(e.ghostCol))*4)
	return e
}

// tryColor colors owned vertex vi if all higher-priority neighbors are
// done, then releases lower-priority waiters.
func (e *jpEngine) tryColor(vi int32) {
	if e.color[vi] >= 0 || e.waitCount[vi] > 0 {
		return
	}
	v := int(vi) + e.lo
	row := e.g.Neighbors(v)
	used := make([]bool, len(row)+1)
	for i, a := range row {
		e.c.Compute(1)
		var c int32 = -1
		if e.l.Owns(int(a)) {
			c = e.color[int(a)-e.lo]
		} else {
			c = e.ghostCol[e.g.Offsets[v]+int64(i)-e.arcBase]
		}
		if c >= 0 && int(c) < len(used) {
			used[c] = true
		}
	}
	var chosen int32
	for used[chosen] {
		chosen++
	}
	e.color[vi] = chosen
	e.ncolored++

	// Announce to every rank holding a ghost copy (once per cross arc,
	// so buffered transports stay within their bound) and release local
	// lower-priority neighbors.
	for _, a := range row {
		e.c.Compute(1)
		if e.l.Owns(int(a)) {
			if priorityLess(int(a), v) {
				ai := int32(int(a) - e.lo)
				e.waitCount[ai]--
				e.work = append(e.work, ai)
			}
			continue
		}
		e.sent++
		e.tr.Send(e.l.Owner(int(a)), ctxColor, int64(a), int64(v)<<colorShift|int64(chosen))
	}
}

// handleMessage ingests one color announcement.
func (e *jpEngine) handleMessage(ctx, x, packed int64) {
	e.c.Compute(1)
	if ctx != ctxColor {
		panic(fmt.Sprintf("coloring: unknown context %d", ctx))
	}
	y := packed >> colorShift
	col := int32(packed & (1<<colorShift - 1))
	xi := int32(int(x) - e.lo)
	if xi < 0 || int(x) >= e.hi {
		panic(fmt.Sprintf("coloring: rank %d received announcement for vertex %d outside [%d,%d)", e.c.Rank(), x, e.lo, e.hi))
	}
	arc := e.arcIndex(x, y)
	if e.ghostCol[arc-e.arcBase] >= 0 {
		panic(fmt.Sprintf("coloring: duplicate announcement for edge {%d,%d}", x, y))
	}
	e.ghostCol[arc-e.arcBase] = col
	e.pendingArcs--
	if priorityLess(int(x), int(y)) && e.color[xi] < 0 {
		e.waitCount[xi]--
		e.work = append(e.work, xi)
	}
}

func (e *jpEngine) arcIndex(x, y int64) int64 {
	nbrs := e.g.Neighbors(int(x))
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(y) })
	if i == len(nbrs) || nbrs[i] != int32(y) {
		panic(fmt.Sprintf("coloring: message references nonexistent edge {%d,%d}", x, y))
	}
	return e.g.Offsets[x] + int64(i)
}

// record appends one telemetry row at a driver round boundary. The
// announcement count rides in the request slot; Jones-Plassmann has no
// reject/invalid traffic. One nil check when off.
func (e *jpEngine) record(log *telemetry.RoundLog, vol []int64) {
	if log == nil {
		return
	}
	log.Append(e.c.Now(), e.pendingArcs, e.ncolored, e.sent, 0, 0,
		e.c.QueuedBytes(), vol)
}

func (e *jpEngine) drainWork() {
	for len(e.work) > 0 {
		vi := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		e.tryColor(vi)
	}
}

func (e *jpEngine) start() {
	for vi := int32(0); vi < int32(e.l.NumOwned()); vi++ {
		e.tryColor(vi)
		e.drainWork()
	}
}

// uncolored counts owned vertices still waiting.
func (e *jpEngine) uncolored() int64 {
	var n int64
	for _, c := range e.color {
		if c < 0 {
			n++
		}
	}
	return n
}

// Run executes distributed Jones-Plassmann coloring on g. The result is
// identical to Serial(g) for every model — the same uniqueness oracle as
// the matching suite.
func Run(g *graph.CSR, opt Options) (*ParallelResult, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("coloring: Procs = %d", opt.Procs)
	}
	d := distgraph.NewBlockDist(g, opt.Procs)
	colors := make([]int64, g.NumVertices())
	rounds := make([]int, opt.Procs)
	sent := make([]int64, opt.Procs)
	var logs []*telemetry.RoundLog
	if opt.RoundLog > 0 {
		logs = make([]*telemetry.RoundLog, opt.Procs)
	}

	opts := make([]mpi.Option, 0, 5)
	if opt.Cost != nil {
		opts = append(opts, mpi.WithCost(opt.Cost))
	}
	if opt.TrackMatrices {
		opts = append(opts, mpi.WithMatrices())
	}
	if opt.Deadline > 0 {
		opts = append(opts, mpi.WithDeadline(opt.Deadline))
	}
	if opt.TraceWaits {
		opts = append(opts, mpi.WithWaitTrace())
	}
	if opt.TraceEvents > 0 {
		opts = append(opts, mpi.WithEventTrace(opt.TraceEvents))
	}
	if opt.Perturb.Enabled() {
		opts = append(opts, mpi.WithPerturb(opt.PerturbSeed, opt.Perturb))
	}
	rep, err := mpi.Run(opt.Procs, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		var log *telemetry.RoundLog
		if logs != nil {
			log = telemetry.NewRoundLog(opt.RoundLog, opt.Procs)
			log.SetTotal(int64(l.NumOwned()))
			logs[c.Rank()] = log
		}
		bk, err := transport.New(opt.Model, transport.Deps{
			Comm:      c,
			Local:     l,
			MaxPerArc: maxMessagesPerCrossArc,
		})
		if err != nil {
			return fmt.Errorf("coloring: %w", err)
		}
		var vol []int64
		if log != nil {
			vol = volumeOf(bk) // O(P) ledger: only when telemetry records
		}
		e := newJPEngine(c, l, bk)
		e.start()
		e.record(log, vol)
		switch opt.Model.Flavor() {
		case transport.FlavorAsync:
			t := bk.(transport.Async)
			// A rank is done when all owned vertices are colored and all
			// expected announcements have been consumed (it owes nothing
			// after its own announcements, sent eagerly at coloring time).
			for e.uncolored() > 0 || e.pendingArcs > 0 {
				progressed := t.Drain(e.handleMessage)
				e.drainWork()
				e.record(log, vol)
				if e.uncolored() == 0 && e.pendingArcs == 0 {
					break
				}
				if !progressed && len(e.work) == 0 {
					t.Block()
				}
				e.rounds++
			}
			t.Finish()
		default:
			t := bk.(transport.Round)
			for {
				t.Exchange(e.handleMessage)
				e.drainWork()
				total := c.AllreduceScalarInt64(mpi.OpSum, e.uncolored()+e.pendingArcs)
				e.rounds++
				e.record(log, vol)
				if total == 0 {
					t.Finish()
					break
				}
			}
		}
		transport.Release(bk)
		for vi, col := range e.color {
			colors[e.lo+vi] = int64(col)
		}
		rounds[c.Rank()] = e.rounds
		sent[c.Rank()] = e.sent
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}

	res := &Result{Color: make([]int, len(colors))}
	for v, c := range colors {
		res.Color[v] = int(c)
		if int(c)+1 > res.Colors {
			res.Colors = int(c) + 1
		}
	}
	pr := &ParallelResult{Result: res, Report: rep}
	if logs != nil {
		pr.Telemetry = telemetry.Merge(logs)
	}
	for r := 0; r < opt.Procs; r++ {
		if rounds[r] > pr.Rounds {
			pr.Rounds = rounds[r]
		}
		pr.Messages += sent[r]
	}
	return pr, nil
}
