// Package coloring implements distributed-memory greedy graph coloring
// under the same MPI communication models as the matching study. The
// paper closes §IV-D noting its "MPI communication substrate comprising
// of Send-Recv, RMA and neighborhood collective routines can be applied
// to any graph algorithm imitating the owner-computes model"; coloring
// is the canonical second such algorithm (the paper's ref [5],
// Catalyurek et al., treats matching and coloring together).
//
// The algorithm is Jones-Plassmann with hashed priorities: a vertex
// colors itself once every higher-priority neighbor is colored, choosing
// the smallest color unused in its neighborhood, then announces the
// color to ranks owning ghost copies. With a strict total priority order
// (graph.HashID with id tiebreak), the result equals the sequential
// greedy coloring in priority order — a unique oracle, exactly like the
// matching suite's.
package coloring

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Result is a vertex coloring.
type Result struct {
	// Color[v] is v's color in [0, Colors).
	Color []int
	// Colors is the number of distinct colors used.
	Colors int
}

// priorityLess reports whether vertex a has strictly lower priority than
// b under the hashed total order.
func priorityLess(a, b int) bool {
	ha, hb := graph.HashID(a), graph.HashID(b)
	if ha != hb {
		return ha < hb
	}
	return a < b
}

// Serial computes the greedy coloring in decreasing hashed-priority
// order — the fixed point Jones-Plassmann converges to.
func Serial(g *graph.CSR) *Result {
	n := g.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return priorityLess(order[j], order[i]) })
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	var used []bool
	maxColor := 0
	for _, v := range order {
		used = used[:0]
		for range g.Neighbors(v) {
			used = append(used, false)
		}
		used = append(used, false) // colors 0..deg are always enough
		for _, a := range g.Neighbors(v) {
			if c := color[a]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return &Result{Color: color, Colors: maxColor}
}

// Verify checks that r is a proper coloring of g and that Colors is
// consistent.
func Verify(g *graph.CSR, r *Result) error {
	if len(r.Color) != g.NumVertices() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(r.Color), g.NumVertices())
	}
	max := 0
	for v, c := range r.Color {
		if c < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		if c+1 > max {
			max = c + 1
		}
		for _, a := range g.Neighbors(v) {
			if int(a) != v && r.Color[a] == c {
				return fmt.Errorf("coloring: edge {%d,%d} endpoints share color %d", v, a, c)
			}
		}
	}
	if max != r.Colors {
		return fmt.Errorf("coloring: Colors = %d, actual %d", r.Colors, max)
	}
	return nil
}
