package coloring

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

func opts(p int, m Model) Options {
	return Options{Procs: p, Model: m, Deadline: time.Minute}
}

func TestSerialTriangleNeedsThree(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	r := Serial(g)
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Colors != 3 {
		t.Errorf("triangle colored with %d colors, want 3", r.Colors)
	}
}

func TestSerialBipartite(t *testing.T) {
	// A star is 2-colorable and greedy achieves it.
	b := graph.NewBuilder(6)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, i, 1)
	}
	g := b.Build()
	r := Serial(g)
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Colors != 2 {
		t.Errorf("star colored with %d colors, want 2", r.Colors)
	}
}

func TestSerialEmptyAndIsolated(t *testing.T) {
	if r := Serial(graph.NewBuilder(0).Build()); r.Colors != 0 {
		t.Error("empty graph colors != 0")
	}
	r := Serial(graph.NewBuilder(4).Build())
	if r.Colors != 1 {
		t.Errorf("isolated vertices need exactly 1 color, got %d", r.Colors)
	}
}

func TestSerialBoundedByDegreePlusOne(t *testing.T) {
	g := gen.Social(2000, 10, 1)
	r := Serial(g)
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Colors > g.MaxDegree()+1 {
		t.Errorf("greedy used %d colors, above Delta+1 = %d", r.Colors, g.MaxDegree()+1)
	}
}

func assertMatchesSerial(t *testing.T, g *graph.CSR, p int, m Model) *ParallelResult {
	t.Helper()
	want := Serial(g)
	got, err := Run(g, opts(p, m))
	if err != nil {
		t.Fatalf("%v p=%d: %v", m, p, err)
	}
	if err := Verify(g, got.Result); err != nil {
		t.Fatalf("%v p=%d: %v", m, p, err)
	}
	for v := range want.Color {
		if got.Color[v] != want.Color[v] {
			t.Fatalf("%v p=%d: color[%d] = %d, serial %d", m, p, v, got.Color[v], want.Color[v])
		}
	}
	return got
}

func TestParallelAllModelsAllFamilies(t *testing.T) {
	families := map[string]*graph.CSR{
		"rgg":    gen.RGG(900, gen.RGGRadiusForDegree(900, 6), 1),
		"rmat":   gen.Graph500(9, 2),
		"sbp":    gen.SBP(700, 10, 8, 0.5, 3),
		"social": gen.Social(800, 8, 4),
		"grid":   gen.Grid2D(15, 18),
	}
	for name, g := range families {
		for _, m := range matching.Models {
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				assertMatchesSerial(t, g, 6, m)
			})
		}
	}
}

func TestParallelTinyAndManyRanks(t *testing.T) {
	tiny := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	for _, m := range matching.Models {
		assertMatchesSerial(t, tiny, 3, m)
		assertMatchesSerial(t, tiny, 1, m)
	}
	g := gen.Social(1500, 8, 5)
	assertMatchesSerial(t, g, 24, matching.NCL)
	assertMatchesSerial(t, g, 24, matching.NSR)
}

func TestMessageBoundOnePerCrossArc(t *testing.T) {
	g := gen.Social(1000, 10, 6)
	const p = 8
	res, err := Run(g, opts(p, matching.NSR))
	if err != nil {
		t.Fatal(err)
	}
	var crossArcs int64
	for r := 0; r < p; r++ {
		crossArcs += res.Report.Stats[r].SendCount
	}
	if res.Messages > g.NumArcs() {
		t.Errorf("messages %d exceed one per cross arc bound %d", res.Messages, g.NumArcs())
	}
}

func TestVerifyCatchesBadColorings(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	if err := Verify(g, &Result{Color: []int{0, 0, 1}, Colors: 2}); err == nil {
		t.Error("adjacent same-color accepted")
	}
	if err := Verify(g, &Result{Color: []int{0, -1, 1}, Colors: 2}); err == nil {
		t.Error("uncolored vertex accepted")
	}
	if err := Verify(g, &Result{Color: []int{0, 1, 0}, Colors: 5}); err == nil {
		t.Error("wrong color count accepted")
	}
}

func TestColoringQuick(t *testing.T) {
	f := func(seed int64, pRaw, mRaw uint8) bool {
		p := int(pRaw%5) + 1
		m := matching.Models[int(mRaw)%len(matching.Models)]
		g := gen.SBP(100, 5, 6, 0.4, seed)
		want := Serial(g)
		got, err := Run(g, opts(p, m))
		if err != nil || Verify(g, got.Result) != nil {
			return false
		}
		for v := range want.Color {
			if got.Color[v] != want.Color[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestColoringModelTimesDiffer(t *testing.T) {
	g := gen.Social(3000, 10, 7)
	times := map[Model]float64{}
	for _, m := range []Model{matching.NSR, matching.RMA, matching.NCL} {
		res, err := Run(g, opts(8, m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.MaxVirtualTime <= 0 {
			t.Fatalf("%v: nonpositive time", m)
		}
		times[m] = res.Report.MaxVirtualTime
	}
	// Coloring sends one message per cross arc: aggregation should help
	// here too on a volume-heavy social graph.
	if times[matching.NCL] >= times[matching.NSR] {
		t.Logf("note: NCL (%g) did not beat NSR (%g) on this input; acceptable but unexpected",
			times[matching.NCL], times[matching.NSR])
	}
}
