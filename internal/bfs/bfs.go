// Package bfs implements a Graph500-style distributed breadth-first
// search over the same 1-D vertex-block distribution as the matching
// code. The paper uses BFS as the communication-pattern foil for
// matching (Figs 2 and 11): BFS is level-synchronous with bulk frontier
// expansion, whereas matching generates dynamic, unpredictable
// point-to-point traffic. This package regenerates the BFS side of those
// communication matrices.
package bfs

import (
	"fmt"
	"time"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Options configures a distributed BFS run.
type Options struct {
	Procs         int
	Cost          *mpi.CostModel
	TrackMatrices bool
	Deadline      time.Duration
	// TraceWaits records per-rank blocked intervals for
	// Report.RenderTimeline.
	TraceWaits bool
	// TraceEvents, when > 0, enables structured event tracing with a
	// per-rank ring of this capacity (Report.Events, WriteChromeTrace).
	TraceEvents int
	// UseNeighborhood switches the per-level frontier exchange from
	// per-edge point-to-point sends to aggregated neighborhood
	// collectives over the distributed graph topology — the approach
	// Kandalla et al. study for BFS (the paper's ref [22]).
	UseNeighborhood bool
	// RoundLog, when > 0, enables per-level telemetry with a per-rank
	// log of this capacity (Result.Telemetry).
	RoundLog int
	// Perturb, when enabled, runs under seeded schedule perturbation
	// (mpi.WithPerturb with PerturbSeed); see internal/sched.
	Perturb     sched.Profile
	PerturbSeed uint64
}

// Result is the outcome of a BFS.
type Result struct {
	// Parent[v] is v's BFS tree parent, v itself for the root, or -1 if
	// unreached.
	Parent []int
	// Level[v] is v's BFS level, or -1 if unreached.
	Level []int
	// Visited is the number of reached vertices.
	Visited int
	// Levels is the number of BFS levels (eccentricity of the root + 1).
	Levels int
	// Report carries runtime statistics and virtual time.
	Report *mpi.Report
	// Telemetry is the merged per-level series (nil unless
	// Options.RoundLog was set). Unresolved is the frontier size entering
	// the next level, Done the visited count, and Req the cumulative
	// cross-edge visit messages; Rej and Inv are always zero.
	Telemetry *telemetry.Series
}

const tagVisit = 1

// Run executes a level-synchronous distributed BFS from root. Cross-edge
// frontier expansions travel as individual nonblocking sends (as in the
// Graph500 reference MPI implementation the paper profiles), with a
// per-level count exchange bounding receives and an allreduce deciding
// termination.
func Run(g *graph.CSR, root int, opt Options) (*Result, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("bfs: Procs = %d", opt.Procs)
	}
	if root < 0 || root >= g.NumVertices() {
		return nil, fmt.Errorf("bfs: root %d out of range", root)
	}
	d := distgraph.NewBlockDist(g, opt.Procs)
	parentGlobal := make([]int64, g.NumVertices())
	levelGlobal := make([]int64, g.NumVertices())
	var logs []*telemetry.RoundLog
	if opt.RoundLog > 0 {
		logs = make([]*telemetry.RoundLog, opt.Procs)
	}

	opts := make([]mpi.Option, 0, 5)
	if opt.Cost != nil {
		opts = append(opts, mpi.WithCost(opt.Cost))
	}
	if opt.TrackMatrices {
		opts = append(opts, mpi.WithMatrices())
	}
	if opt.Deadline > 0 {
		opts = append(opts, mpi.WithDeadline(opt.Deadline))
	}
	if opt.TraceWaits {
		opts = append(opts, mpi.WithWaitTrace())
	}
	if opt.TraceEvents > 0 {
		opts = append(opts, mpi.WithEventTrace(opt.TraceEvents))
	}
	if opt.Perturb.Enabled() {
		opts = append(opts, mpi.WithPerturb(opt.PerturbSeed, opt.Perturb))
	}
	rep, err := mpi.Run(opt.Procs, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		var topo *mpi.Topo
		if opt.UseNeighborhood {
			topo = c.CreateGraphTopo(l.NeighborRanks)
		}
		nOwned := l.NumOwned()
		parent := make([]int64, nOwned)
		level := make([]int64, nOwned)
		for i := range parent {
			parent[i] = -1
			level[i] = -1
		}
		c.AccountAlloc(int64(nOwned) * 16)

		// Per-level telemetry: BFS has no transport backend, so it keeps
		// its own per-destination volume ledger (16 bytes per {u, from}
		// visit record) and counts cross-edge sends in the request slot.
		var log *telemetry.RoundLog
		var vol []int64
		var sent, visited int64
		if logs != nil {
			log = telemetry.NewRoundLog(opt.RoundLog, opt.Procs)
			log.SetTotal(int64(nOwned))
			logs[c.Rank()] = log
			vol = make([]int64, opt.Procs)
		}

		frontier := make([]int32, 0, nOwned)
		next := make([]int32, 0, nOwned)
		visit := func(v, from, lvl int64) {
			vi := int(v) - l.Lo
			if parent[vi] != -1 {
				return
			}
			parent[vi] = from
			level[vi] = lvl
			visited++
			next = append(next, int32(vi))
		}
		if l.Owns(root) {
			visit(int64(root), int64(root), 0)
		}
		frontier, next = next, frontier[:0]
		if log != nil {
			log.Append(c.Now(), int64(len(frontier)), visited, sent, 0, 0, c.QueuedBytes(), vol)
		}

		sendCounts := make([]int64, opt.Procs)
		nbrBufs := make([][]int64, len(l.NeighborRanks))
		for lvl := int64(0); ; lvl++ {
			// Expand the frontier: local visits immediately, cross edges
			// as one message each (point-to-point mode) or batched per
			// neighbor (neighborhood-collective mode).
			for i := range sendCounts {
				sendCounts[i] = 0
			}
			for i := range nbrBufs {
				nbrBufs[i] = nbrBufs[i][:0]
			}
			for _, vi := range frontier {
				v := int64(int(vi) + l.Lo)
				for _, a := range g.Neighbors(int(vi) + l.Lo) {
					c.Compute(1)
					u := int64(a)
					if l.Owns(int(u)) {
						visit(u, v, lvl+1)
						continue
					}
					dst := l.Owner(int(u))
					sent++
					if vol != nil {
						vol[dst] += 16
					}
					if opt.UseNeighborhood {
						i := l.NeighborIndex(dst)
						nbrBufs[i] = append(nbrBufs[i], u, v)
						continue
					}
					c.Isend(dst, tagVisit, []int64{u, v})
					sendCounts[dst]++
				}
			}
			if opt.UseNeighborhood {
				for _, data := range topo.NeighborAlltoallvInt64(nbrBufs) {
					for k := 0; k+2 <= len(data); k += 2 {
						c.Compute(1)
						visit(data[k], data[k+1], lvl+1)
					}
				}
			} else {
				// Everyone learns how many visit messages to expect.
				expect := c.AlltoallInt64(sendCounts, 1)
				for src := 0; src < opt.Procs; src++ {
					for k := int64(0); k < expect[src]; k++ {
						data, _ := c.Recv(src, tagVisit)
						c.Compute(1)
						visit(data[0], data[1], lvl+1)
					}
				}
			}
			frontier, next = next, frontier[:0]
			total := c.AllreduceInt64(mpi.OpSum, []int64{int64(len(frontier))})[0]
			if log != nil {
				log.Append(c.Now(), int64(len(frontier)), visited, sent, 0, 0, c.QueuedBytes(), vol)
			}
			if total == 0 {
				break
			}
		}
		copy(parentGlobal[l.Lo:l.Hi], parent)
		copy(levelGlobal[l.Lo:l.Hi], level)
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Parent: make([]int, len(parentGlobal)),
		Level:  make([]int, len(levelGlobal)),
		Report: rep,
	}
	if logs != nil {
		res.Telemetry = telemetry.Merge(logs)
	}
	for v := range parentGlobal {
		res.Parent[v] = int(parentGlobal[v])
		res.Level[v] = int(levelGlobal[v])
		if res.Level[v] >= 0 {
			res.Visited++
			if res.Level[v]+1 > res.Levels {
				res.Levels = res.Level[v] + 1
			}
		}
	}
	return res, nil
}

// Verify checks BFS tree invariants: the root is its own parent at level
// 0; every other reached vertex has a reached parent one level shallower
// connected by a real edge; level assignments are exactly the true BFS
// distances (compared against the serial levels the caller provides).
func Verify(g *graph.CSR, root int, r *Result, serialLevels []int) error {
	if r.Parent[root] != root || r.Level[root] != 0 {
		return fmt.Errorf("bfs: root parent/level = %d/%d", r.Parent[root], r.Level[root])
	}
	for v := range r.Parent {
		switch {
		case r.Level[v] < 0:
			if r.Parent[v] != -1 {
				return fmt.Errorf("bfs: unreached vertex %d has parent %d", v, r.Parent[v])
			}
		case v != root:
			p := r.Parent[v]
			if p < 0 || p >= len(r.Parent) {
				return fmt.Errorf("bfs: vertex %d has bad parent %d", v, p)
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("bfs: tree edge {%d,%d} not in graph", v, p)
			}
			if r.Level[p] != r.Level[v]-1 {
				return fmt.Errorf("bfs: vertex %d at level %d has parent at level %d", v, r.Level[v], r.Level[p])
			}
		}
		if serialLevels != nil && r.Level[v] != serialLevels[v] {
			return fmt.Errorf("bfs: vertex %d level %d, serial BFS says %d", v, r.Level[v], serialLevels[v])
		}
	}
	return nil
}
