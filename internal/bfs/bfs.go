// Package bfs implements a Graph500-style distributed breadth-first
// search over the same 1-D vertex-block distribution as the matching
// code. The paper uses BFS as the communication-pattern foil for
// matching (Figs 2 and 11): BFS is level-synchronous with bulk frontier
// expansion, whereas matching generates dynamic, unpredictable
// point-to-point traffic. This package regenerates the BFS side of those
// communication matrices, and — like matching and coloring — runs its
// frontier exchange over any of the transport communication models.
package bfs

import (
	"fmt"
	"time"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// maxVisitsPerCrossArc sizes the round backends' buffers: the driver
// quiesces every level (no rank expands level L+1 until all level-L
// visit records are delivered, enforced by the in-flight reduction), so
// each cross arc carries at most one visit record per exchange round.
const maxVisitsPerCrossArc = 1

// Options configures a distributed BFS run.
type Options struct {
	Procs         int
	Cost          *mpi.CostModel
	TrackMatrices bool
	Deadline      time.Duration
	// TraceWaits records per-rank blocked intervals for
	// Report.RenderTimeline.
	TraceWaits bool
	// TraceEvents, when > 0, enables structured event tracing with a
	// per-rank ring of this capacity (Report.Events, WriteChromeTrace).
	TraceEvents int
	// Model selects the communication model carrying cross-edge frontier
	// expansions. The zero value is ModelNSR: per-edge nonblocking sends,
	// as in the Graph500 reference MPI implementation the paper profiles.
	// Neighborhood models batch per neighbor over the distributed graph
	// topology — the approach Kandalla et al. study for BFS (the paper's
	// ref [22]).
	Model transport.Model
	// RoundLog, when > 0, enables per-level telemetry with a per-rank
	// log of this capacity (Result.Telemetry).
	RoundLog int
	// Perturb, when enabled, runs under seeded schedule perturbation
	// (mpi.WithPerturb with PerturbSeed); see internal/sched.
	Perturb     sched.Profile
	PerturbSeed uint64
}

// Result is the outcome of a BFS.
type Result struct {
	// Parent[v] is v's BFS tree parent, v itself for the root, or -1 if
	// unreached.
	Parent []int
	// Level[v] is v's BFS level, or -1 if unreached.
	Level []int
	// Visited is the number of reached vertices.
	Visited int
	// Levels is the number of BFS levels (eccentricity of the root + 1).
	Levels int
	// Report carries runtime statistics and virtual time.
	Report *mpi.Report
	// Telemetry is the merged per-level series (nil unless
	// Options.RoundLog was set). Unresolved is the frontier size entering
	// the next level, Done the visited count, and Req the cumulative
	// cross-edge visit messages; Rej and Inv are always zero.
	Telemetry *telemetry.Series
}

// Run executes a level-synchronous distributed BFS from root. Cross-edge
// frontier expansions travel as transport records {level, child, parent}
// over the selected communication model; a global reduction over
// [next-frontier size, records in flight] both decides termination and
// fences each level, so levels are exact under every model — including
// the pipelined and combining collectives, whose records may arrive an
// exchange late or routed through intermediate ranks. The child's level
// rides in the record's ctx slot (it doubles as the message tag on the
// point-to-point paths), and expansion reads each vertex's stored level
// rather than a loop counter, so a late-delivered visit still assigns
// and propagates the exact distance.
func Run(g *graph.CSR, root int, opt Options) (*Result, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("bfs: Procs = %d", opt.Procs)
	}
	if root < 0 || root >= g.NumVertices() {
		return nil, fmt.Errorf("bfs: root %d out of range", root)
	}
	model := opt.Model
	d := distgraph.NewBlockDist(g, opt.Procs)
	parentGlobal := make([]int64, g.NumVertices())
	levelGlobal := make([]int64, g.NumVertices())
	var logs []*telemetry.RoundLog
	if opt.RoundLog > 0 {
		logs = make([]*telemetry.RoundLog, opt.Procs)
	}

	opts := make([]mpi.Option, 0, 5)
	if opt.Cost != nil {
		opts = append(opts, mpi.WithCost(opt.Cost))
	}
	if opt.TrackMatrices {
		opts = append(opts, mpi.WithMatrices())
	}
	if opt.Deadline > 0 {
		opts = append(opts, mpi.WithDeadline(opt.Deadline))
	}
	if opt.TraceWaits {
		opts = append(opts, mpi.WithWaitTrace())
	}
	if opt.TraceEvents > 0 {
		opts = append(opts, mpi.WithEventTrace(opt.TraceEvents))
	}
	if opt.Perturb.Enabled() {
		opts = append(opts, mpi.WithPerturb(opt.PerturbSeed, opt.Perturb))
	}
	rep, err := mpi.Run(opt.Procs, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		bk, err := transport.New(model, transport.Deps{
			Comm:      c,
			Local:     l,
			MaxPerArc: maxVisitsPerCrossArc,
		})
		if err != nil {
			return fmt.Errorf("bfs: %w", err)
		}
		nOwned := l.NumOwned()
		parent := make([]int64, nOwned)
		level := make([]int64, nOwned)
		queued := make([]bool, nOwned)
		for i := range parent {
			parent[i] = -1
			level[i] = -1
		}
		c.AccountAlloc(int64(nOwned) * 17)

		// Per-level telemetry reads the transport's live volume ledger
		// (O(P) memory: only when telemetry actually records) and counts
		// cross-edge visit records in the request slot.
		var log *telemetry.RoundLog
		var vol []int64
		var sent, recvd, visited int64
		if logs != nil {
			log = telemetry.NewRoundLog(opt.RoundLog, opt.Procs)
			log.SetTotal(int64(nOwned))
			logs[c.Rank()] = log
			if v, ok := bk.(transport.Volumer); ok {
				vol = v.VolumeByDest()
			}
		}

		frontier := make([]int32, 0, nOwned)
		next := make([]int32, 0, nOwned)
		visit := func(v, from, lvl int64) {
			vi := int(v) - l.Lo
			if parent[vi] != -1 && level[vi] <= lvl {
				return
			}
			if parent[vi] == -1 {
				visited++
			}
			parent[vi] = from
			level[vi] = lvl
			if !queued[vi] {
				queued[vi] = true
				next = append(next, int32(vi))
			}
		}
		handler := func(ctx, x, y int64) {
			recvd++
			c.Compute(1)
			visit(x, y, ctx)
		}
		if l.Owns(root) {
			visit(int64(root), int64(root), 0)
		}
		frontier, next = next, frontier[:0]
		if log != nil {
			log.Append(c.Now(), int64(len(frontier)), visited, sent, 0, 0, c.QueuedBytes(), vol)
		}

		async, isAsync := bk.(transport.Async)
		round, _ := bk.(transport.Round)
		// pump moves records once: one exchange round, or (async) a batch
		// flush — safe mid-protocol, P2P's Finish is a no-op and P2PAgg's
		// is exactly flushAll — plus a nonblocking drain. Block is never
		// used: a rank with nothing arriving may owe nothing while others
		// still exchange, and the in-flight reduction below is the fence
		// that keeps everyone pumping until delivery completes.
		pump := func() {
			if isAsync {
				bk.Finish()
				async.Drain(handler)
				return
			}
			round.Exchange(handler)
		}
		for {
			// Expand the frontier: local visits immediately, cross edges
			// as one record each, at the stored level of the expanding
			// vertex.
			for _, vi := range frontier {
				queued[vi] = false
				childLvl := level[vi] + 1
				v := int64(int(vi) + l.Lo)
				for _, a := range g.Neighbors(int(vi) + l.Lo) {
					c.Compute(1)
					u := int64(a)
					if l.Owns(int(u)) {
						visit(u, v, childLvl)
						continue
					}
					sent++
					bk.Send(l.Owner(int(u)), childLvl, u, v)
				}
			}
			// Fence the level: pump until no visit record is in flight
			// anywhere (parked in a batch, staged for an exchange, or
			// pipelined into the next round), then advance together.
			var nextTotal int64
			for {
				pump()
				st := c.AllreduceInt64(mpi.OpSum, []int64{int64(len(next)), sent - recvd})
				if st[1] == 0 {
					nextTotal = st[0]
					break
				}
			}
			frontier, next = next, frontier[:0]
			if log != nil {
				log.Append(c.Now(), int64(len(frontier)), visited, sent, 0, 0, c.QueuedBytes(), vol)
			}
			if nextTotal == 0 {
				break
			}
		}
		bk.Finish()
		transport.Release(bk)
		copy(parentGlobal[l.Lo:l.Hi], parent)
		copy(levelGlobal[l.Lo:l.Hi], level)
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Parent: make([]int, len(parentGlobal)),
		Level:  make([]int, len(levelGlobal)),
		Report: rep,
	}
	if logs != nil {
		res.Telemetry = telemetry.Merge(logs)
	}
	for v := range parentGlobal {
		res.Parent[v] = int(parentGlobal[v])
		res.Level[v] = int(levelGlobal[v])
		if res.Level[v] >= 0 {
			res.Visited++
			if res.Level[v]+1 > res.Levels {
				res.Levels = res.Level[v] + 1
			}
		}
	}
	return res, nil
}

// Verify checks BFS tree invariants: the root is its own parent at level
// 0; every other reached vertex has a reached parent one level shallower
// connected by a real edge; level assignments are exactly the true BFS
// distances (compared against the serial levels the caller provides).
func Verify(g *graph.CSR, root int, r *Result, serialLevels []int) error {
	if r.Parent[root] != root || r.Level[root] != 0 {
		return fmt.Errorf("bfs: root parent/level = %d/%d", r.Parent[root], r.Level[root])
	}
	for v := range r.Parent {
		switch {
		case r.Level[v] < 0:
			if r.Parent[v] != -1 {
				return fmt.Errorf("bfs: unreached vertex %d has parent %d", v, r.Parent[v])
			}
		case v != root:
			p := r.Parent[v]
			if p < 0 || p >= len(r.Parent) {
				return fmt.Errorf("bfs: vertex %d has bad parent %d", v, p)
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("bfs: tree edge {%d,%d} not in graph", v, p)
			}
			if r.Level[p] != r.Level[v]-1 {
				return fmt.Errorf("bfs: vertex %d at level %d has parent at level %d", v, r.Level[v], r.Level[p])
			}
		}
		if serialLevels != nil && r.Level[v] != serialLevels[v] {
			return fmt.Errorf("bfs: vertex %d level %d, serial BFS says %d", v, r.Level[v], serialLevels[v])
		}
	}
	return nil
}
