package bfs

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/order"
	"repro/internal/transport"
)

func opts(p int) Options {
	return Options{Procs: p, Deadline: 60 * time.Second}
}

func checkAgainstSerial(t *testing.T, g *graph.CSR, root, p int) *Result {
	t.Helper()
	res, err := Run(g, root, opts(p))
	if err != nil {
		t.Fatal(err)
	}
	serial, reached := order.BFSLevels(g, root)
	if res.Visited != reached {
		t.Fatalf("visited %d, serial reached %d", res.Visited, reached)
	}
	if err := Verify(g, root, res, serial); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBFSPath(t *testing.T) {
	g := gen.Path(20)
	res := checkAgainstSerial(t, g, 0, 4)
	if res.Levels != 20 {
		t.Errorf("levels = %d, want 20", res.Levels)
	}
}

func TestBFSFamiliesAndRankCounts(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"rmat":   gen.Graph500(9, 1),
		"social": gen.Social(800, 8, 2),
		"rgg":    gen.RGG(1000, gen.RGGRadiusForDegree(1000, 8), 3),
		"kmer":   gen.KMerGrids(6, 3, 8, 4),
	}
	for name, g := range graphs {
		for _, p := range []int{1, 3, 8} {
			t.Run(name, func(t *testing.T) {
				checkAgainstSerial(t, g, 0, p)
			})
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(5, 6, 1) // separate component
	g := b.Build()
	res := checkAgainstSerial(t, g, 0, 3)
	if res.Visited != 3 {
		t.Errorf("visited = %d, want 3", res.Visited)
	}
	if res.Level[5] != -1 || res.Parent[6] != -1 {
		t.Error("other component must stay unreached")
	}
}

func TestBFSNonzeroRoot(t *testing.T) {
	g := gen.Graph500(8, 7)
	checkAgainstSerial(t, g, g.NumVertices()/2, 4)
}

func TestBFSSingleRankNoMessages(t *testing.T) {
	g := gen.Social(400, 6, 9)
	res, err := Run(g, 0, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	tot := mpi.Aggregate(res.Report.Stats)
	if tot.P2PMsgs != 0 {
		t.Errorf("single rank sent %d messages", tot.P2PMsgs)
	}
}

func TestBFSCommMatrixDiffersFromEmpty(t *testing.T) {
	g := gen.Graph500(9, 11)
	o := opts(8)
	o.TrackMatrices = true
	res, err := Run(g, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	mm := mpi.MsgMatrix(res.Report.Stats)
	var nonzero int
	for i := range mm {
		for j := range mm[i] {
			if mm[i][j] > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Error("R-MAT BFS should produce cross-rank traffic")
	}
}

func TestBFSMatchesSerialQuick(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%5) + 1
		g := gen.SBP(150, 6, 5, 0.4, seed)
		res, err := Run(g, 0, opts(p))
		if err != nil {
			return false
		}
		serial, _ := order.BFSLevels(g, 0)
		return Verify(g, 0, res, serial) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSInvalidArgs(t *testing.T) {
	g := gen.Path(5)
	if _, err := Run(g, -1, opts(2)); err == nil {
		t.Error("negative root accepted")
	}
	if _, err := Run(g, 0, Options{Procs: 0}); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestBFSNeighborhoodModeMatchesSerial(t *testing.T) {
	graphs := []*graph.CSR{
		gen.Graph500(9, 21),
		gen.RGG(1200, gen.RGGRadiusForDegree(1200, 8), 22),
		gen.Path(40),
	}
	for _, g := range graphs {
		for _, p := range []int{1, 4, 8} {
			o := opts(p)
			o.Model = transport.ModelNCL
			res, err := Run(g, 0, o)
			if err != nil {
				t.Fatal(err)
			}
			serial, reached := order.BFSLevels(g, 0)
			if res.Visited != reached {
				t.Fatalf("p=%d visited %d, want %d", p, res.Visited, reached)
			}
			if err := Verify(g, 0, res, serial); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBFSModesAgree(t *testing.T) {
	g := gen.Social(700, 8, 23)
	a, err := Run(g, 0, opts(6))
	if err != nil {
		t.Fatal(err)
	}
	o := opts(6)
	o.Model = transport.ModelNCL
	b, err := Run(g, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Level {
		if a.Level[v] != b.Level[v] {
			t.Fatalf("modes disagree on level of %d: %d vs %d", v, a.Level[v], b.Level[v])
		}
	}
	// The collective mode must not use point-to-point sends.
	tot := mpi.Aggregate(b.Report.Stats)
	if tot.P2PMsgs != 0 {
		t.Errorf("neighborhood mode sent %d p2p messages", tot.P2PMsgs)
	}
	if tot.NbrOps == 0 {
		t.Error("neighborhood mode used no neighborhood collectives")
	}
}
