// Package distgraph implements the paper's 1-D vertex-based graph
// distribution (§IV-A): each rank owns a contiguous block of vertices and
// every edge incident on them; endpoints owned by other ranks are "ghost"
// vertices. From the distribution it derives the distributed process
// graph topology (an edge between two ranks iff they share ghost
// vertices) and the statistics the paper reports about it: |Ep|, dmax,
// davg, sigma_d (Tables III, IV, VI) and the ghost-augmented edge counts
// |E'| (Table V).
package distgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Dist is a 1-D block distribution of a graph over P ranks.
type Dist struct {
	G      *graph.CSR
	P      int
	starts []int // len P+1; rank r owns [starts[r], starts[r+1])
}

// NewBlockDist distributes g's vertices over p equal (+-1) contiguous
// blocks, the paper's simple 1-D vertex-based partition.
func NewBlockDist(g *graph.CSR, p int) *Dist {
	if p < 1 {
		panic(fmt.Sprintf("distgraph: p = %d", p))
	}
	n := g.NumVertices()
	starts := make([]int, p+1)
	for r := 0; r <= p; r++ {
		starts[r] = r * n / p
	}
	return &Dist{G: g, P: p, starts: starts}
}

// Owner returns the rank owning global vertex v.
func (d *Dist) Owner(v int) int {
	// starts is produced by r*n/p, so owner is found directly; guard the
	// boundary cases with a local search.
	n := d.G.NumVertices()
	if v < 0 || v >= n {
		panic(fmt.Sprintf("distgraph: Owner(%d) out of range [0,%d)", v, n))
	}
	r := 0
	if n > 0 {
		r = v * d.P / n
	}
	for d.starts[r+1] <= v {
		r++
	}
	for d.starts[r] > v {
		r--
	}
	return r
}

// Range returns rank r's owned vertex interval [lo, hi).
func (d *Dist) Range(r int) (lo, hi int) {
	return d.starts[r], d.starts[r+1]
}

// NumOwned returns how many vertices rank r owns.
func (d *Dist) NumOwned(r int) int {
	return d.starts[r+1] - d.starts[r]
}

// Local is one rank's view of the distribution: its vertex range, the
// process-graph neighborhood, and per-neighbor cross-edge (ghost) counts,
// precomputed exactly as the paper's implementations need them for buffer
// sizing and RMA displacement calculation (Fig 1).
type Local struct {
	Rank int
	P    int
	Lo   int // first owned vertex (global id)
	Hi   int // one past last owned vertex

	// NeighborRanks is the sorted list of ranks this rank shares ghost
	// vertices with: its adjacency in the distributed process graph.
	NeighborRanks []int
	// CrossArcs[i] is the number of local arcs whose far endpoint is
	// owned by NeighborRanks[i] — the per-neighbor ghost-edge count from
	// which communication buffers are sized (each cross edge produces at
	// most MaxMessagesPerCrossEdge messages in each direction).
	CrossArcs []int64
	// TotalCrossArcs is the sum of CrossArcs.
	TotalCrossArcs int64
	// LocalArcs is |E'| for this rank: all stored arcs, including those
	// to ghosts.
	LocalArcs int64

	nbrIndex map[int]int
	dist     *Dist
}

// BuildLocal computes rank r's local view.
func (d *Dist) BuildLocal(r int) *Local {
	if r < 0 || r >= d.P {
		panic(fmt.Sprintf("distgraph: BuildLocal(%d) with P=%d", r, d.P))
	}
	lo, hi := d.Range(r)
	counts := make(map[int]int64)
	var localArcs int64
	for v := lo; v < hi; v++ {
		for _, a := range d.G.Neighbors(v) {
			localArcs++
			if int(a) < lo || int(a) >= hi {
				counts[d.Owner(int(a))]++
			}
		}
	}
	nbrs := make([]int, 0, len(counts))
	for q := range counts {
		nbrs = append(nbrs, q)
	}
	sort.Ints(nbrs)
	l := &Local{
		Rank:          r,
		P:             d.P,
		Lo:            lo,
		Hi:            hi,
		NeighborRanks: nbrs,
		CrossArcs:     make([]int64, len(nbrs)),
		LocalArcs:     localArcs,
		nbrIndex:      make(map[int]int, len(nbrs)),
		dist:          d,
	}
	for i, q := range nbrs {
		l.CrossArcs[i] = counts[q]
		l.TotalCrossArcs += counts[q]
		l.nbrIndex[q] = i
	}
	return l
}

// Owns reports whether this rank owns global vertex v.
func (l *Local) Owns(v int) bool { return v >= l.Lo && v < l.Hi }

// Owner returns the owning rank of any global vertex.
func (l *Local) Owner(v int) int { return l.dist.Owner(v) }

// NumOwned returns the number of vertices this rank owns.
func (l *Local) NumOwned() int { return l.Hi - l.Lo }

// NeighborIndex returns the position of rank q in NeighborRanks, or -1.
func (l *Local) NeighborIndex(q int) int {
	if i, ok := l.nbrIndex[q]; ok {
		return i
	}
	return -1
}

// Graph returns the underlying global CSR (each rank reads only rows of
// vertices it owns, per the owner-computes model).
func (l *Local) Graph() *graph.CSR { return l.dist.G }

// MemoryModelBytes estimates the bytes this rank holds for its share of
// the graph: CSR rows for owned vertices (offset + neighbor + weight per
// arc) plus per-vertex state. Used for Table VIII-style memory reports.
func (l *Local) MemoryModelBytes() int64 {
	return l.LocalArcs*(4+8) + int64(l.NumOwned())*(8+8)
}

// PGStats summarizes the distributed process graph, matching the
// notation of the paper's Tables III, IV and VI.
type PGStats struct {
	P      int
	Edges  int64 // |Ep|
	DMax   int   // dmax
	DMin   int
	DAvg   float64 // davg
	DSigma float64 // sigma_d
}

func (s PGStats) String() string {
	return fmt.Sprintf("p=%d |Ep|=%d dmax=%d davg=%.2f sigma_d=%.2f", s.P, s.Edges, s.DMax, s.DAvg, s.DSigma)
}

// ProcessGraph returns each rank's process-graph adjacency (sorted).
func (d *Dist) ProcessGraph() [][]int {
	adj := make([]map[int]struct{}, d.P)
	for r := range adj {
		adj[r] = make(map[int]struct{})
	}
	for r := 0; r < d.P; r++ {
		lo, hi := d.Range(r)
		for v := lo; v < hi; v++ {
			for _, a := range d.G.Neighbors(v) {
				if int(a) < lo || int(a) >= hi {
					q := d.Owner(int(a))
					adj[r][q] = struct{}{}
					adj[q][r] = struct{}{}
				}
			}
		}
	}
	out := make([][]int, d.P)
	for r := range adj {
		for q := range adj[r] {
			out[r] = append(out[r], q)
		}
		sort.Ints(out[r])
	}
	return out
}

// ProcessGraphStats computes PGStats for the distribution.
func (d *Dist) ProcessGraphStats() PGStats {
	pg := d.ProcessGraph()
	st := PGStats{P: d.P, DMin: math.MaxInt}
	var sum, sumSq float64
	for _, nbrs := range pg {
		deg := len(nbrs)
		st.Edges += int64(deg)
		if deg > st.DMax {
			st.DMax = deg
		}
		if deg < st.DMin {
			st.DMin = deg
		}
		sum += float64(deg)
		sumSq += float64(deg) * float64(deg)
	}
	st.Edges /= 2
	st.DAvg = sum / float64(d.P)
	if v := sumSq/float64(d.P) - st.DAvg*st.DAvg; v > 0 {
		st.DSigma = math.Sqrt(v)
	}
	if st.DMin == math.MaxInt {
		st.DMin = 0
	}
	return st
}

// EPrimeStats reports the ghost-augmented per-rank edge counts |E'| the
// paper uses in Table V to quantify reordering's effect on balance.
type EPrimeStats struct {
	P     int
	Total int64   // sum over ranks of local arcs
	Max   int64   // |E'|max
	Avg   float64 // |E'|avg
	Sigma float64 // sigma_|E'|
}

func (s EPrimeStats) String() string {
	return fmt.Sprintf("p=%d |E'|=%d |E'|max=%d |E'|avg=%.0f sigma=%.0f", s.P, s.Total, s.Max, s.Avg, s.Sigma)
}

// GhostEdgeStats computes EPrimeStats for the distribution.
func (d *Dist) GhostEdgeStats() EPrimeStats {
	st := EPrimeStats{P: d.P}
	var sum, sumSq float64
	for r := 0; r < d.P; r++ {
		lo, hi := d.Range(r)
		arcs := d.G.Offsets[hi] - d.G.Offsets[lo]
		st.Total += arcs
		if arcs > st.Max {
			st.Max = arcs
		}
		sum += float64(arcs)
		sumSq += float64(arcs) * float64(arcs)
	}
	st.Avg = sum / float64(d.P)
	if v := sumSq/float64(d.P) - st.Avg*st.Avg; v > 0 {
		st.Sigma = math.Sqrt(v)
	}
	return st
}
