package distgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestOwnerPartition(t *testing.T) {
	g := gen.Path(17)
	d := NewBlockDist(g, 4)
	// Every vertex has exactly one owner and ranges tile [0, n).
	counts := make([]int, 4)
	for v := 0; v < 17; v++ {
		r := d.Owner(v)
		lo, hi := d.Range(r)
		if v < lo || v >= hi {
			t.Fatalf("Owner(%d)=%d but range is [%d,%d)", v, r, lo, hi)
		}
		counts[r]++
	}
	total := 0
	for r, c := range counts {
		if c != d.NumOwned(r) {
			t.Errorf("rank %d owns %d, NumOwned says %d", r, c, d.NumOwned(r))
		}
		total += c
	}
	if total != 17 {
		t.Fatalf("partition covers %d of 17", total)
	}
}

func TestOwnerBalanced(t *testing.T) {
	d := NewBlockDist(gen.Path(100), 8)
	for r := 0; r < 8; r++ {
		if n := d.NumOwned(r); n < 12 || n > 13 {
			t.Errorf("rank %d owns %d vertices, want 12 or 13", r, n)
		}
	}
}

func TestMorePartsThanVertices(t *testing.T) {
	d := NewBlockDist(gen.Path(3), 5)
	total := 0
	for r := 0; r < 5; r++ {
		total += d.NumOwned(r)
	}
	if total != 3 {
		t.Fatalf("coverage %d", total)
	}
	for v := 0; v < 3; v++ {
		d.Owner(v) // must not panic even with empty ranks around
	}
}

func TestLocalCrossArcsSymmetric(t *testing.T) {
	g := gen.SBP(400, 8, 10, 0.5, 1)
	d := NewBlockDist(g, 8)
	locals := make([]*Local, 8)
	for r := range locals {
		locals[r] = d.BuildLocal(r)
	}
	for r, l := range locals {
		for i, q := range l.NeighborRanks {
			j := locals[q].NeighborIndex(r)
			if j < 0 {
				t.Fatalf("rank %d lists %d but not vice versa", r, q)
			}
			if locals[q].CrossArcs[j] != l.CrossArcs[i] {
				t.Errorf("cross arcs asymmetric: %d->%d has %d, reverse has %d",
					r, q, l.CrossArcs[i], locals[q].CrossArcs[j])
			}
		}
	}
}

func TestLocalArcsSumToGraph(t *testing.T) {
	g := gen.Social(500, 8, 2)
	d := NewBlockDist(g, 6)
	var sum int64
	for r := 0; r < 6; r++ {
		sum += d.BuildLocal(r).LocalArcs
	}
	if sum != g.NumArcs() {
		t.Fatalf("local arcs sum %d != global arcs %d", sum, g.NumArcs())
	}
}

func TestRGGStripProcessGraphIsBounded(t *testing.T) {
	// The key structural property behind Fig 4a: an x-sorted RGG under
	// 1-D blocks yields a process graph where each rank talks to at most
	// its two adjacent strips (given radius < strip width).
	n := 4000
	r := gen.RGGRadiusForDegree(n, 6)
	g := gen.RGG(n, r, 3)
	d := NewBlockDist(g, 8)
	st := d.ProcessGraphStats()
	if st.DMax > 2 {
		t.Errorf("RGG strip process graph dmax = %d, want <= 2", st.DMax)
	}
}

func TestSBPProcessGraphNearComplete(t *testing.T) {
	// The contrasting case (paper Table III): HILO block partition graphs
	// connect nearly every rank pair.
	g := gen.SBP(2000, 16, 20, 0.6, 4)
	d := NewBlockDist(g, 16)
	st := d.ProcessGraphStats()
	if st.DMax < 12 {
		t.Errorf("SBP process graph dmax = %d, want near 15", st.DMax)
	}
	if st.DAvg < 10 {
		t.Errorf("SBP process graph davg = %g, want high", st.DAvg)
	}
}

func TestProcessGraphSymmetric(t *testing.T) {
	g := gen.Graph500(9, 5)
	d := NewBlockDist(g, 7)
	pg := d.ProcessGraph()
	for r, nbrs := range pg {
		for _, q := range nbrs {
			found := false
			for _, rr := range pg[q] {
				if rr == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("process graph asymmetric: %d->%d", r, q)
			}
		}
	}
}

func TestGhostEdgeStats(t *testing.T) {
	g := gen.BandedMesh(1000, 10, 2, 0.01, 6)
	d := NewBlockDist(g, 4)
	st := d.GhostEdgeStats()
	if st.Total != g.NumArcs() {
		t.Errorf("|E'| total = %d, want %d", st.Total, g.NumArcs())
	}
	if st.Max < int64(st.Avg) {
		t.Error("max below average")
	}
	if st.Sigma < 0 {
		t.Error("negative sigma")
	}
}

func TestReorderingReducesEPrimeSigma(t *testing.T) {
	// The paper observes (Table V) that RCM reordering of a banded mesh
	// balances per-rank |E'|, shrinking its standard deviation. Here the
	// "original" is a scrambled mesh and reordering restores bandedness.
	mesh := gen.BandedMesh(3000, 15, 3, 0, 7)
	scrambled, _ := gen.Scramble(mesh, 8)
	p := 16
	before := NewBlockDist(scrambled, p).ProcessGraphStats()
	after := NewBlockDist(mesh, p).ProcessGraphStats()
	if after.DMax >= before.DMax {
		t.Errorf("banded order should shrink process-graph degree: %d -> %d", before.DMax, after.DMax)
	}
}

func TestLocalViewBasics(t *testing.T) {
	g := gen.Path(20)
	d := NewBlockDist(g, 4)
	l := d.BuildLocal(1)
	if l.Lo != 5 || l.Hi != 10 {
		t.Fatalf("range [%d,%d), want [5,10)", l.Lo, l.Hi)
	}
	if !l.Owns(5) || !l.Owns(9) || l.Owns(10) || l.Owns(4) {
		t.Error("Owns wrong")
	}
	// A path block touches exactly the previous and next rank.
	if len(l.NeighborRanks) != 2 || l.NeighborRanks[0] != 0 || l.NeighborRanks[1] != 2 {
		t.Errorf("neighbors = %v", l.NeighborRanks)
	}
	if l.TotalCrossArcs != 2 {
		t.Errorf("cross arcs = %d, want 2", l.TotalCrossArcs)
	}
	if l.NeighborIndex(2) != 1 || l.NeighborIndex(3) != -1 {
		t.Error("NeighborIndex wrong")
	}
	if l.MemoryModelBytes() <= 0 {
		t.Error("memory model must be positive")
	}
}

func TestDistributionInvariantsQuick(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := int(pRaw%10) + 1
		n := int(nRaw%100) + p
		g := gen.SBP(n, min(4, n), 5, 0.4, seed)
		d := NewBlockDist(g, p)
		// Cross arc totals are consistent with the process graph, and
		// each rank's local arcs equal its row span in the CSR.
		var cross int64
		for r := 0; r < p; r++ {
			l := d.BuildLocal(r)
			lo, hi := d.Range(r)
			if l.LocalArcs != g.Offsets[hi]-g.Offsets[lo] {
				return false
			}
			cross += l.TotalCrossArcs
		}
		// Every cross arc is counted once per side.
		return cross%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraphDistribution(t *testing.T) {
	d := NewBlockDist(graph.NewBuilder(0).Build(), 3)
	st := d.ProcessGraphStats()
	if st.Edges != 0 || st.DMax != 0 {
		t.Errorf("empty distribution stats = %+v", st)
	}
}
