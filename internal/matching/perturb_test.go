package matching

import (
	"testing"
	"time"

	"repro/internal/distgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// Seed-pinned schedule-perturbation regressions for the order-dependence
// suspects in engine.go (ISSUE 4 satellite 1). The explorer sweep in
// internal/sched found no divergence over 100+ seeds per model; these
// tests pin the suspect interleavings directly so a future regression is
// caught at unit scope with a named seed, not just by the sweep.

// pinnedSeeds are the adversarial seeds these regressions replay. 0x5eed
// is the explorer's base seed; the others were picked by running the
// ties-only profile until the mailbox tie-permutation demonstrably
// reordered REJECT/INVALID deliveries relative to the canonical order.
var pinnedSeeds = []uint64{0x5eed, 0xdead, 0x1, 0x2a, 0xbadc0de}

// assertMatchesSerialPerturbed is assertMatchesSerial under a pinned
// perturbation seed: the exact serial matching must still come out.
func assertMatchesSerialPerturbed(t *testing.T, g *graph.CSR, p int, m Model, prof sched.Profile, seed uint64) {
	t.Helper()
	want := Serial(g)
	got, err := Run(g, Options{
		Procs: p, Model: m, Deadline: time.Minute,
		Perturb: prof, PerturbSeed: seed,
	})
	if err != nil {
		t.Fatalf("%v p=%d seed=%#x profile=%v: %v", m, p, seed, prof, err)
	}
	if err := VerifyLocallyDominant(g, got.Result); err != nil {
		t.Fatalf("%v p=%d seed=%#x: %v", m, p, seed, err)
	}
	if got.Weight != want.Weight || got.Cardinality != want.Cardinality {
		t.Fatalf("%v p=%d seed=%#x: weight/card (%g,%d) != serial (%g,%d)",
			m, p, seed, got.Weight, got.Cardinality, want.Weight, want.Cardinality)
	}
	for v := range want.Mate {
		if got.Mate[v] != want.Mate[v] {
			t.Fatalf("%v p=%d seed=%#x: mate[%d] = %d, serial %d", m, p, seed, v, got.Mate[v], want.Mate[v])
		}
	}
}

// TestPerturbedMatchesSerialAllModels pins schedule-invariance for every
// model at every pinned seed under the full perturbation profile.
func TestPerturbedMatchesSerialAllModels(t *testing.T) {
	g := gen.RGG(300, gen.RGGRadiusForDegree(300, 6), 3)
	for _, m := range Models {
		for _, seed := range pinnedSeeds {
			assertMatchesSerialPerturbed(t, g, 4, m, sched.Full, seed)
		}
	}
}

// TestNSRRejectInvalidInterleavingPerturbed targets the first suspect:
// the NSR path receiving REJECT and INVALID deliveries in permuted order
// among concurrently-available sources. The ties-only profile isolates
// exactly that reordering (no timing changes), and the SBP input's
// near-complete process graph maximizes same-round multi-source ties.
func TestNSRRejectInvalidInterleavingPerturbed(t *testing.T) {
	g := gen.SBP(200, 8, 10, 0.5, 5)
	for _, m := range []Model{NSR, NSRA, MBP} {
		for _, seed := range pinnedSeeds {
			assertMatchesSerialPerturbed(t, g, 6, m, sched.Profile{Ties: true}, seed)
		}
	}
}

// TestNCLUnpackOrderPerturbed targets the second suspect: the NCL
// per-round unpack loop must not assume neighbor blocks arrive in rank
// order. Jitter + slowdown skews when each neighbor's block lands;
// ties permutes same-round availability.
func TestNCLUnpackOrderPerturbed(t *testing.T) {
	g := gen.SBP(200, 8, 10, 0.5, 5)
	// NCLC rides along: at p=6 this SBP input's near-complete process
	// graph (avg degree 5 > 1.5*ceil(log2 6)) puts it in combining mode,
	// so the multi-hop routed path is also swept for order dependence.
	for _, m := range []Model{NCL, NCLI, NCLC} {
		for _, seed := range pinnedSeeds {
			assertMatchesSerialPerturbed(t, g, 6, m, sched.Full, seed)
		}
	}
}

// TestEagerRejectPerturbedStillValid pins the half-approx family's one
// legitimately schedule-dependent mode: EagerReject (the paper's
// literal Algorithm 6) may produce different matchings under different
// schedules, but every one of them must still be a valid matching. The
// exclusion from fingerprint equivalence is now formal — the explorer
// sweeps it under sched.Outcome.ValidOnly (see
// internal/sched/explore_async_test.go, TestExploreEagerRejectExcluded),
// so a divergent-but-valid matching can never be a false positive. The
// asynchronous maximal engine shares the same contract.
func TestEagerRejectPerturbedStillValid(t *testing.T) {
	g := gen.SBP(200, 8, 10, 0.5, 5)
	for _, seed := range pinnedSeeds {
		got, err := Run(g, Options{
			Procs: 6, Model: NSR, EagerReject: true, Deadline: time.Minute,
			Perturb: sched.Full, PerturbSeed: seed,
		})
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if err := Verify(g, got.Result); err != nil {
			t.Fatalf("seed %#x: eager-reject matching invalid: %v", seed, err)
		}
	}
}

// captureSender records pushed protocol messages so the engine can be
// driven directly, message by message, in adversarial orders.
type captureSender struct {
	recs []struct {
		dst       int
		ctx, x, y int64
	}
}

func (s *captureSender) Send(dst int, ctx, x, y int64) {
	s.recs = append(s.recs, struct {
		dst       int
		ctx, x, y int64
	}{dst, ctx, x, y})
}

// TestEngineAdversarialInterleavings drives one rank's engine directly
// with the interleavings the suspects describe, which no transport can
// be forced to produce on demand:
//
//	(a) INVALID then REJECT for the same arc — the second delivery must
//	    be a no-op (arcResolved guard), not a double resolution;
//	(b) REJECT then a stale REQUEST for the same arc — the REQUEST must
//	    hit the stale guard, not revive the edge;
//	(c) a remembered REQUEST followed by INVALID from the same ghost —
//	    findMate must not complete a match over the now-evicted arc.
//
// The engine runs inside a 2-rank world so Compute/ledger charging works;
// rank 1 owns the ghosts and stays idle.
func TestEngineAdversarialInterleavings(t *testing.T) {
	// 6 vertices, 2 ranks of 3. Rank 0 owns {0,1,2}; ghosts {3,4,5}.
	// Vertex 0's neighbors are all ghosts, heaviest first: 3 (w=9),
	// 4 (w=8), 5 (w=7). Vertex 1-2 give rank 0 local fallback partners.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 3, W: 9},
		{U: 0, V: 4, W: 8},
		{U: 0, V: 5, W: 7},
		{U: 1, V: 2, W: 5},
		{U: 3, V: 4, W: 1},
	})
	d := distgraph.NewBlockDist(g, 2)
	_, err := mpi.RunChecked(2, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			c.Barrier()
			return nil
		}
		defer c.Barrier()
		tr := &captureSender{}
		e := newEngine(c, d.BuildLocal(0), tr, false, buildSortedAdjacency(g))
		e.start() // vertex 0 points at ghost 3 and requests; 1-2 match locally
		if e.cand[0] != 3 {
			t.Errorf("after start: cand[0] = %d, want ghost 3", e.cand[0])
		}
		pendingAfterStart := e.pending

		// (c) remembered REQUEST then INVALID from the same ghost: ghost 4
		// requests vertex 0 (non-mutual — 0 points at 3), then dies.
		e.handleMessage(ctxRequest, 0, 4)
		e.handleMessage(ctxInvalid, 0, 4)
		// (a) INVALID then REJECT for the arc to ghost 3 (both sides of a
		// concurrent deactivation): one resolution, second delivery no-op.
		e.handleMessage(ctxInvalid, 0, 3)
		if got := pendingAfterStart - e.pending; got != 2 {
			t.Errorf("resolved %d arcs, want 2 (one per distinct arc)", got)
		}
		e.handleMessage(ctxReject, 0, 3)
		if got := pendingAfterStart - e.pending; got != 2 {
			t.Errorf("REJECT after INVALID double-resolved the arc (pending now %d)", e.pending)
		}
		// Vertex 0 must now re-point past the evicted arcs to ghost 5 —
		// NOT match with the dead requester 4 via its remembered flag.
		e.drainWork()
		if e.state[0] == stMatched && e.mate[0] == 4 {
			t.Fatalf("vertex 0 matched dead ghost 4 via a stale remembered REQUEST")
		}
		if e.cand[0] != 5 {
			t.Errorf("after evictions: cand[0] = %d, want ghost 5", e.cand[0])
		}
		// (b) stale REQUEST for an already-resolved arc must be a no-op.
		before := e.pending
		e.handleMessage(ctxRequest, 0, 3)
		if e.pending != before || (e.state[0] == stMatched && e.mate[0] == 3) {
			t.Errorf("stale REQUEST revived resolved arc (pending %d->%d, mate[0]=%d)",
				before, e.pending, e.mate[0])
		}
		// Finish the protocol for this rank: ghost 5 accepts.
		e.handleMessage(ctxRequest, 0, 5)
		if e.state[0] != stMatched || e.mate[0] != 5 {
			t.Errorf("vertex 0 state/mate = %d/%d, want matched with 5", e.state[0], e.mate[0])
		}
		if e.pending != 0 {
			t.Errorf("pending = %d after all arcs settled, want 0", e.pending)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// NSRA's flush determinism (flushAll iterating destinations in rank
// order, not Go map order — map order would reshuffle Isend issuance
// and therefore the perturbation engine's per-message PRNG draws) is
// pinned at transport scope by TestP2PAggFlushRankOrder, which asserts
// the issuance order itself from the event trace. A matching-level
// ledger-replay assertion would be wrong here: NSRA is a probe-polling
// path, so its virtual times legitimately wobble with physical timing
// (see README "Determinism, perturbed schedules, and replay"); its
// result invariance is covered by TestNSRRejectInvalidInterleavingPerturbed.
