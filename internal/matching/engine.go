package matching

import (
	"fmt"
	"sort"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Communication contexts (paper §IV-B, Fig 3). For the Send-Recv
// transports the context travels as the message tag; for RMA and NCL it
// is the first word of the record.
const (
	ctxRequest int64 = 1 // sender's vertex proposes matching the edge
	ctxReject  int64 = 2 // sender's vertex matched elsewhere; deactivate
	ctxInvalid int64 = 3 // sender's vertex exhausted candidates; deactivate
)

// Per-cross-arc state bits, kept by the owning side of each arc.
const (
	arcEvicted   uint8 = 1 << iota // far endpoint no longer a candidate
	arcRequested                   // far endpoint has requested this edge
	arcResolved                    // termination accounting done for this arc
)

// Vertex states.
const (
	stUnmatched uint8 = iota
	stMatched
	stDead
)

// engine executes the distributed locally-dominant matching protocol for
// one rank. It is transport-agnostic: drivers feed incoming messages to
// handleMessage and drain the local work stack; outgoing messages go
// through the sender.
type engine struct {
	c  *mpi.Comm
	l  *distgraph.Local
	g  *graph.CSR
	tr transport.Sender

	// EagerReject reproduces the paper's literal Algorithm 6: a REQUEST
	// that is not immediately mutual is rejected and the edge evicted on
	// the spot, instead of being remembered. Faster convergence, but the
	// matching produced is no longer guaranteed locally dominant (see
	// DESIGN.md §3); used as an ablation.
	eagerReject bool

	lo, hi   int
	order    []int32 // shared whole-graph arena: row v's arc positions by descending key at Offsets[v]
	ptr      []int32
	cand     []int64 // global candidate id, or -1
	state    []uint8
	mate     []int64 // global partner id, or -1
	arcFlags []uint8 // indexed by global arc index - arcBase
	arcBase  int64

	pending  int64   // unresolved cross arcs owned by this rank (the paper's nghosts sum)
	work     []int32 // stack of owned-vertex local indices to re-point
	rounds   int
	sent     int64    // protocol messages pushed (diagnostic)
	kind     [4]int64 // cumulative pushes by context (ctxRequest..ctxInvalid)
	nmatched int64    // owned vertices currently matched
}

// newEngine builds one rank's engine around the shared read-only
// sorted-adjacency arena (buildSortedAdjacency), which replaces the old
// per-rank per-vertex row sorts. The rank still charges the setup to its
// virtual clock exactly as before — the arena rows it consumes represent
// the same O(local arcs) of sorting work an MPI rank would do locally.
func newEngine(c *mpi.Comm, l *distgraph.Local, tr transport.Sender, eagerReject bool, order []int32) *engine {
	g := l.Graph()
	nOwned := l.NumOwned()
	e := &engine{
		c: c, l: l, g: g, tr: tr,
		eagerReject: eagerReject,
		lo:          l.Lo, hi: l.Hi,
		order:    order,
		ptr:      make([]int32, nOwned),
		cand:     make([]int64, nOwned),
		state:    make([]uint8, nOwned),
		mate:     make([]int64, nOwned),
		arcBase:  g.Offsets[l.Lo],
		arcFlags: make([]uint8, g.Offsets[l.Hi]-g.Offsets[l.Lo]),
		pending:  l.TotalCrossArcs,
	}
	for i := range e.cand {
		e.cand[i] = -1
		e.mate[i] = -1
	}
	c.Compute(float64(l.LocalArcs))
	// Per-vertex protocol state memory (mirrors what an MPI rank holds).
	c.AccountAlloc(int64(nOwned)*(4+8+1+8) + int64(len(e.arcFlags)))
	return e
}

// sortedAt returns the row position of the i-th heaviest neighbor of
// owned vertex v (global id), reading the shared arena.
func (e *engine) sortedAt(v int, i int32) int32 {
	return e.order[e.g.Offsets[v]+int64(i)]
}

// owns reports whether global vertex v is owned here.
func (e *engine) owns(v int64) bool { return int(v) >= e.lo && int(v) < e.hi }

// arcIndex locates the global arc position of edge (x, y) in x's row;
// x must be owned. CSR rows are sorted by neighbor id.
func (e *engine) arcIndex(x, y int64) int64 {
	nbrs := e.g.Neighbors(int(x))
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(y) })
	if i == len(nbrs) || nbrs[i] != int32(y) {
		panic(fmt.Sprintf("matching: rank %d: message references nonexistent edge {%d,%d}", e.c.Rank(), x, y))
	}
	return e.g.Offsets[x] + int64(i)
}

func (e *engine) flags(arc int64) *uint8 { return &e.arcFlags[arc-e.arcBase] }

// resolve marks a cross arc's termination accounting complete.
func (e *engine) resolve(f *uint8) {
	if *f&arcResolved == 0 {
		*f |= arcResolved
		e.pending--
	}
}

// push emits a protocol message for the owner of ghost vertex x.
func (e *engine) push(ctx, x, y int64) {
	e.sent++
	e.kind[ctx]++
	e.tr.Send(e.l.Owner(int(x)), ctx, x, y)
}

// record appends one telemetry row at a driver round boundary: the
// rank's clock, unresolved cross-arc count, matched vertices, the
// cumulative per-kind protocol counters, the live mailbox occupancy and
// the transport's per-destination volume ledger. One nil check when off.
func (e *engine) record(log *telemetry.RoundLog, vol []int64) {
	if log == nil {
		return
	}
	log.Append(e.c.Now(), e.pending, e.nmatched,
		e.kind[ctxRequest], e.kind[ctxReject], e.kind[ctxInvalid],
		e.c.QueuedBytes(), vol)
}

// availableArc reports whether the neighbor at row position pos of owned
// vertex v is still a matching candidate.
func (e *engine) availableArc(v int, pos int32) bool {
	nbr := int(e.g.Neighbors(v)[pos])
	if nbr >= e.lo && nbr < e.hi {
		return e.state[nbr-e.lo] == stUnmatched
	}
	return e.arcFlags[e.g.Offsets[v]+int64(pos)-e.arcBase]&arcEvicted == 0
}

// findMate implements the paper's FINDMATE (Algorithm 4) for owned
// vertex index vi: point at the heaviest available neighbor, matching
// immediately when the pointing is mutual (locally, or via a remembered
// remote REQUEST), and issuing a REQUEST when the candidate is a ghost.
// A vertex whose current candidate is still available returns without
// action, so redundant work-stack entries are harmless.
func (e *engine) findMate(vi int32) {
	if e.state[vi] != stUnmatched {
		return
	}
	v := int(vi) + e.lo
	row := e.g.Neighbors(v)
	if c := e.cand[vi]; c >= 0 {
		if e.availableArc(v, e.sortedAt(v, e.ptr[vi])) {
			return
		}
	}
	for e.ptr[vi] < int32(len(row)) {
		e.c.Compute(1)
		if e.availableArc(v, e.sortedAt(v, e.ptr[vi])) {
			break
		}
		e.ptr[vi]++
	}
	if e.ptr[vi] == int32(len(row)) {
		e.die(vi)
		return
	}
	pos := e.sortedAt(v, e.ptr[vi])
	u := int64(row[pos])
	e.cand[vi] = u
	if e.owns(u) {
		ui := int32(int(u) - e.lo)
		if e.cand[ui] == int64(v) {
			e.matchLocal(vi, ui)
		}
		return
	}
	arc := e.g.Offsets[v] + int64(pos)
	f := e.flags(arc)
	if *f&arcRequested != 0 {
		// The ghost already requested us: the pointing is mutual. Match
		// here and send our REQUEST so the ghost's owner completes too.
		e.mate[vi] = u
		e.state[vi] = stMatched
		e.nmatched++
		*f |= arcEvicted
		e.resolve(f)
		e.push(ctxRequest, u, int64(v))
		e.afterMatch(vi)
		return
	}
	e.push(ctxRequest, u, int64(v))
}

// die implements FINDMATE's invalidation branch: the vertex has no
// candidates left; broadcast INVALID over any still-unresolved cross
// arcs and release local vertices pointing at it. (Under the default
// protocol every cross arc is already resolved by the time a vertex
// exhausts its pointer — eviction only travels with resolution — so the
// broadcast loop is defensive; under EagerReject it can fire.)
func (e *engine) die(vi int32) {
	e.cand[vi] = -1
	e.state[vi] = stDead
	v := int64(int(vi) + e.lo)
	row := e.g.Neighbors(int(v))
	for i, a := range row {
		e.c.Compute(1)
		if e.owns(int64(a)) {
			ai := int32(int(a) - e.lo)
			if e.state[ai] == stUnmatched && e.cand[ai] == v {
				e.work = append(e.work, ai)
			}
			continue
		}
		arc := e.g.Offsets[v] + int64(i)
		f := e.flags(arc)
		if *f&arcResolved == 0 {
			*f |= arcEvicted
			e.resolve(f)
			e.push(ctxInvalid, int64(a), v)
		}
	}
}

// matchLocal records the match of two owned vertices and processes both
// neighborhoods.
func (e *engine) matchLocal(vi, ui int32) {
	e.mate[vi] = int64(int(ui) + e.lo)
	e.mate[ui] = int64(int(vi) + e.lo)
	e.state[vi] = stMatched
	e.state[ui] = stMatched
	e.nmatched += 2
	e.afterMatch(vi)
	e.afterMatch(ui)
}

// afterMatch implements PROCESSNEIGHBORS (Algorithm 5) for a newly
// matched owned vertex: reject all other still-active cross arcs and
// re-point local vertices that were pointing here.
func (e *engine) afterMatch(vi int32) {
	v := int64(int(vi) + e.lo)
	row := e.g.Neighbors(int(v))
	for i, a := range row {
		e.c.Compute(1)
		if int64(a) == e.mate[vi] {
			continue
		}
		if e.owns(int64(a)) {
			ai := int32(int(a) - e.lo)
			if e.state[ai] == stUnmatched && e.cand[ai] == v {
				e.work = append(e.work, ai)
			}
			continue
		}
		arc := e.g.Offsets[v] + int64(i)
		f := e.flags(arc)
		if *f&arcResolved == 0 {
			*f |= arcEvicted
			e.resolve(f)
			e.push(ctxReject, int64(a), v)
		}
	}
}

// handleMessage implements PROCESSINCOMINGDATA (Algorithm 6) for one
// record targeting owned vertex x from remote vertex y.
func (e *engine) handleMessage(ctx, x, y int64) {
	e.c.Compute(1)
	if !e.owns(x) {
		panic(fmt.Sprintf("matching: rank %d received message for vertex %d outside [%d,%d)", e.c.Rank(), x, e.lo, e.hi))
	}
	xi := int32(int(x) - e.lo)
	arc := e.arcIndex(x, y)
	f := e.flags(arc)
	switch ctx {
	case ctxRequest:
		if *f&arcResolved != 0 {
			// Stale: we already matched elsewhere / rejected this edge;
			// our notification is in flight to them.
			return
		}
		if e.state[xi] == stUnmatched && e.cand[xi] == y {
			// Mutual pointing: complete the match on this side. The
			// requester completes on receiving our REQUEST (already sent
			// when we pointed at y).
			e.mate[xi] = y
			e.state[xi] = stMatched
			e.nmatched++
			*f |= arcEvicted
			e.resolve(f)
			e.afterMatch(xi)
			return
		}
		if e.eagerReject {
			// Paper's literal Algorithm 6: no memory of requesters —
			// deactivate the edge and reject immediately.
			*f |= arcEvicted
			e.resolve(f)
			e.push(ctxReject, y, x)
			return
		}
		*f |= arcRequested
	case ctxReject, ctxInvalid:
		if *f&arcResolved != 0 {
			// Both sides deactivated concurrently; nothing left to do.
			return
		}
		*f |= arcEvicted
		e.resolve(f)
		if e.state[xi] == stUnmatched && e.cand[xi] == y {
			e.work = append(e.work, xi)
		}
	default:
		panic(fmt.Sprintf("matching: unknown message context %d", ctx))
	}
}

// drainWork runs findMate for every queued re-point request.
func (e *engine) drainWork() {
	for len(e.work) > 0 {
		vi := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		e.findMate(vi)
	}
}

// start runs the first phase: every owned vertex points at its best
// candidate (Algorithm 3 lines 2-3), including the cascade of local
// matches that triggers.
func (e *engine) start() {
	for vi := int32(0); vi < int32(e.l.NumOwned()); vi++ {
		e.findMate(vi)
		e.drainWork()
	}
}

// writeMates copies this rank's owned mate values into the shared global
// result vector (disjoint ranges per rank, so no synchronization needed).
func (e *engine) writeMates(global []int64) {
	copy(global[e.lo:e.hi], e.mate)
}
