package matching

import (
	"fmt"
	"time"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// Model selects the communication model for the distributed matcher,
// using the paper's descriptors (§V-A).
type Model int

const (
	// NSR is the baseline: nonblocking MPI Send-Recv with Iprobe polling.
	NSR Model = iota
	// RMA uses MPI-3 passive-target one-sided puts with precomputed
	// displacements plus neighborhood count exchanges.
	RMA
	// NCL uses blocking MPI-3 neighborhood collectives over the
	// distributed graph topology with per-neighbor aggregation.
	NCL
	// MBP models MatchBox-P: Send-Recv with synchronous-mode sends.
	MBP
	// NCLI extends the study with nonblocking neighborhood collectives
	// (pipelined rounds with double buffering) — the direction the
	// paper's related work (Kandalla et al.) explores for BFS.
	NCLI
	// NSRA extends the study with sender-side message aggregation for
	// Send-Recv — the optimization the paper calls "challenging" for
	// irregular applications (§V-D).
	NSRA
)

// Models lists all communication models in presentation order.
var Models = []Model{NSR, RMA, NCL, MBP, NCLI, NSRA}

func (m Model) String() string {
	switch m {
	case NSR:
		return "NSR"
	case RMA:
		return "RMA"
	case NCL:
		return "NCL"
	case MBP:
		return "MBP"
	case NCLI:
		return "NCLI"
	case NSRA:
		return "NSRA"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Options configures a distributed matching run.
type Options struct {
	// Procs is the number of simulated MPI ranks. Must be >= 1.
	Procs int
	// Model selects the communication model.
	Model Model
	// Cost overrides the virtual-time cost model (nil = defaults).
	Cost *mpi.CostModel
	// TrackMatrices enables per-pair communication matrices (Fig 2/9/11).
	TrackMatrices bool
	// Deadline bounds wall-clock execution (0 = no watchdog).
	Deadline time.Duration
	// EagerReject switches the protocol to the paper's literal
	// Algorithm 6 (reject-on-sight); see DESIGN.md §3. The result is a
	// valid matching but not necessarily locally dominant.
	EagerReject bool
	// TraceWaits records per-rank blocked intervals for
	// Report.RenderTimeline.
	TraceWaits bool
}

// ParallelResult is the outcome of a distributed run.
type ParallelResult struct {
	*Result
	// Rounds is the maximum driver-loop iteration count over ranks (for
	// NCL/RMA, the number of neighborhood exchange rounds).
	Rounds int
	// Messages is the total protocol messages pushed by all ranks.
	Messages int64
	// Report carries the runtime's virtual time and traffic ledgers.
	Report *mpi.Report
	// Dist is the distribution used (for process-graph statistics).
	Dist *distgraph.Dist
}

// Run executes distributed half-approximate matching on g under the
// given options and returns the matching together with performance
// ledgers. The matching is identical to Serial(g) for all models unless
// EagerReject is set (in which case it is still a valid matching).
func Run(g *graph.CSR, opt Options) (*ParallelResult, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("matching: Procs = %d", opt.Procs)
	}
	d := distgraph.NewBlockDist(g, opt.Procs)
	mates := make([]int64, g.NumVertices())
	rounds := make([]int, opt.Procs)
	sent := make([]int64, opt.Procs)

	rep, err := mpi.Run(mpi.Config{
		Procs:         opt.Procs,
		Cost:          opt.Cost,
		TrackMatrices: opt.TrackMatrices,
		Deadline:      opt.Deadline,
		TraceWaits:    opt.TraceWaits,
	}, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		var e *engine
		switch opt.Model {
		case NSR, MBP:
			t := transport.NewP2P(c, opt.Model == MBP)
			e = newEngine(c, l, t, opt.EagerReject)
			runAsync(e, t)
		case NSRA:
			t := transport.NewP2PAgg(c, aggBatchRecords)
			e = newEngine(c, l, t, opt.EagerReject)
			runAsync(e, t)
		case NCL:
			topo := c.CreateGraphTopo(l.NeighborRanks)
			t := transport.NewNCL(c, topo, l, MaxMessagesPerCrossEdge)
			e = newEngine(c, l, t, opt.EagerReject)
			runRounds(e, t)
		case RMA:
			topo := c.CreateGraphTopo(l.NeighborRanks)
			t := transport.NewRMA(c, topo, l, MaxMessagesPerCrossEdge)
			e = newEngine(c, l, t, opt.EagerReject)
			runRounds(e, t)
			t.Free()
		case NCLI:
			topo := c.CreateGraphTopo(l.NeighborRanks)
			t := transport.NewNCLI(c, topo, l, MaxMessagesPerCrossEdge)
			e = newEngine(c, l, t, opt.EagerReject)
			runRounds(e, t)
		default:
			return fmt.Errorf("matching: unknown model %v", opt.Model)
		}
		e.writeMates(mates)
		rounds[c.Rank()] = e.rounds
		sent[c.Rank()] = e.sent
		return nil
	})
	if err != nil {
		return nil, err
	}

	mate := make([]int, len(mates))
	for i, m := range mates {
		mate[i] = int(m)
	}
	pr := &ParallelResult{
		Result: NewResult(g, mate),
		Report: rep,
		Dist:   d,
	}
	for r := 0; r < opt.Procs; r++ {
		if rounds[r] > pr.Rounds {
			pr.Rounds = rounds[r]
		}
		pr.Messages += sent[r]
	}
	return pr, nil
}
