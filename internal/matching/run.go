package matching

import (
	"fmt"
	"time"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Model aliases transport.Model, where the communication-model
// vocabulary now lives alongside the backends it selects; the constants
// are re-exported so existing matching.NSR-style references keep
// working.
type Model = transport.Model

// The paper's communication models plus the extensions (§V-A).
const (
	NSR  = transport.ModelNSR
	RMA  = transport.ModelRMA
	NCL  = transport.ModelNCL
	MBP  = transport.ModelMBP
	NCLI = transport.ModelNCLI
	NSRA = transport.ModelNSRA
	NCLC = transport.ModelNCLC
)

// Models lists all communication models in presentation order.
var Models = transport.Models

// Engine selects the matching protocol family.
type Engine int

const (
	// EngineHalfApprox is the paper's half-approximate locally-dominant
	// protocol (the default): round- or poll-structured, with per-arc
	// termination counting and a schedule-invariant result.
	EngineHalfApprox Engine = iota
	// EngineMaximal is the asynchronous Skipper-style maximal-matching
	// protocol: a single pass over local edges with proposal/accept/
	// decline messages and detected (not counted) termination. The
	// result is a valid maximal matching whose edge set is legitimately
	// schedule-dependent; see DESIGN.md §4f.
	EngineMaximal
)

func (e Engine) String() string {
	switch e {
	case EngineHalfApprox:
		return "halfapprox"
	case EngineMaximal:
		return "maximal"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI spelling to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "halfapprox", "half", "dominant", "":
		return EngineHalfApprox, nil
	case "maximal", "max", "async":
		return EngineMaximal, nil
	}
	return 0, fmt.Errorf("matching: unknown engine %q (want halfapprox or maximal)", s)
}

// Options configures a distributed matching run.
type Options struct {
	// Procs is the number of simulated MPI ranks. Must be >= 1.
	Procs int
	// Model selects the communication model.
	Model Model
	// Engine selects the protocol family (default EngineHalfApprox).
	Engine Engine
	// ForceRounds pins an async-flavor model to the round-structured
	// driver (flush, barrier, counting allreduce per round) instead of
	// the barrier-free detector path. Only meaningful for EngineMaximal
	// on NSR/MBP/NSRA: it is the controlled baseline the asynchronous
	// engine is measured against. Ignored elsewhere.
	ForceRounds bool
	// Cost overrides the virtual-time cost model (nil = defaults).
	Cost *mpi.CostModel
	// TrackMatrices enables per-pair communication matrices (Fig 2/9/11).
	TrackMatrices bool
	// Deadline bounds wall-clock execution (0 = no watchdog).
	Deadline time.Duration
	// EagerReject switches the protocol to the paper's literal
	// Algorithm 6 (reject-on-sight); see DESIGN.md §3. The result is a
	// valid matching but not necessarily locally dominant.
	EagerReject bool
	// TraceWaits records per-rank blocked intervals for
	// Report.RenderTimeline.
	TraceWaits bool
	// TraceEvents, when > 0, enables structured event tracing with a
	// per-rank ring of this capacity (Report.Events, WriteChromeTrace).
	TraceEvents int
	// RoundLog, when > 0, enables round-level protocol telemetry with a
	// per-rank log of this capacity (ParallelResult.Telemetry). Rounds
	// beyond the capacity are dropped, not wrapped; see Series.Drops.
	RoundLog int
	// Perturb, when enabled, runs under seeded schedule perturbation
	// (mpi.WithPerturb): the runtime varies its legal delivery
	// reorderings according to PerturbSeed. The default protocol's
	// result is invariant under it; see internal/sched and DESIGN §4.
	Perturb     sched.Profile
	PerturbSeed uint64
}

// mpiOptions translates the shared runtime knobs to mpi.Run options.
func mpiOptions(cost *mpi.CostModel, matrices bool, deadline time.Duration, waits bool, events int, pseed uint64, perturb sched.Profile) []mpi.Option {
	opts := make([]mpi.Option, 0, 6)
	if cost != nil {
		opts = append(opts, mpi.WithCost(cost))
	}
	if matrices {
		opts = append(opts, mpi.WithMatrices())
	}
	if deadline > 0 {
		opts = append(opts, mpi.WithDeadline(deadline))
	}
	if waits {
		opts = append(opts, mpi.WithWaitTrace())
	}
	if events > 0 {
		opts = append(opts, mpi.WithEventTrace(events))
	}
	if perturb.Enabled() {
		opts = append(opts, mpi.WithPerturb(pseed, perturb))
	}
	return opts
}

// ParallelResult is the outcome of a distributed run.
type ParallelResult struct {
	*Result
	// Rounds is the maximum driver-loop iteration count over ranks (for
	// NCL/RMA, the number of neighborhood exchange rounds).
	Rounds int
	// Messages is the total protocol messages pushed by all ranks.
	Messages int64
	// Report carries the runtime's virtual time and traffic ledgers.
	Report *mpi.Report
	// Dist is the distribution used (for process-graph statistics).
	Dist *distgraph.Dist
	// Telemetry is the merged round-level series (nil unless
	// Options.RoundLog was set).
	Telemetry *telemetry.Series
}

// Run executes distributed matching on g under the given options and
// returns the matching together with performance ledgers. The default
// engine is the half-approximate locally-dominant protocol, whose
// matching is identical to Serial(g) for all models unless EagerReject
// is set (in which case it is still a valid matching); EngineMaximal
// dispatches to the asynchronous maximal-matching engine instead.
func Run(g *graph.CSR, opt Options) (*ParallelResult, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("matching: Procs = %d", opt.Procs)
	}
	if opt.Engine == EngineMaximal {
		return runMaximal(g, opt)
	}
	d := distgraph.NewBlockDist(g, opt.Procs)
	// The sorted-adjacency arena is a pure function of the graph; build
	// it once, in parallel, outside the simulated world — every rank's
	// engine then shares the read-only arena (and still charges its local
	// share of the setup to its virtual clock, as before).
	order := buildSortedAdjacency(g)
	mates := make([]int64, g.NumVertices())
	rounds := make([]int, opt.Procs)
	sent := make([]int64, opt.Procs)
	var logs []*telemetry.RoundLog
	if opt.RoundLog > 0 {
		logs = make([]*telemetry.RoundLog, opt.Procs)
	}

	rep, err := mpi.Run(opt.Procs, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		var log *telemetry.RoundLog
		if logs != nil {
			log = telemetry.NewRoundLog(opt.RoundLog, opt.Procs)
			log.SetTotal(int64(l.NumOwned()))
			logs[c.Rank()] = log
		}
		t, err := transport.New(opt.Model, transport.Deps{
			Comm:      c,
			Local:     l,
			MaxPerArc: MaxMessagesPerCrossEdge,
			AggBatch:  aggBatchRecords,
		})
		if err != nil {
			return fmt.Errorf("matching: %w", err)
		}
		e := newEngine(c, l, t, opt.EagerReject, order)
		switch opt.Model.Flavor() {
		case transport.FlavorAsync:
			runAsync(e, t.(transport.Async), log)
		default:
			runRounds(e, t.(transport.Round), log)
		}
		transport.Release(t)
		e.writeMates(mates)
		rounds[c.Rank()] = e.rounds
		sent[c.Rank()] = e.sent
		return nil
	}, mpiOptions(opt.Cost, opt.TrackMatrices, opt.Deadline, opt.TraceWaits, opt.TraceEvents, opt.PerturbSeed, opt.Perturb)...)
	if err != nil {
		return nil, err
	}

	mate := make([]int, len(mates))
	for i, m := range mates {
		mate[i] = int(m)
	}
	pr := &ParallelResult{
		Result: NewResult(g, mate),
		Report: rep,
		Dist:   d,
	}
	if logs != nil {
		pr.Telemetry = telemetry.Merge(logs)
	}
	for r := 0; r < opt.Procs; r++ {
		if rounds[r] > pr.Rounds {
			pr.Rounds = rounds[r]
		}
		pr.Messages += sent[r]
	}
	return pr, nil
}
