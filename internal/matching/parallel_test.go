package matching

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

func opts(p int, m Model) Options {
	return Options{Procs: p, Model: m, Deadline: 60 * time.Second}
}

// assertMatchesSerial runs model m on g with p ranks and requires the
// exact serial matching (the uniqueness oracle).
func assertMatchesSerial(t *testing.T, g *graph.CSR, p int, m Model) *ParallelResult {
	t.Helper()
	want := Serial(g)
	got, err := Run(g, opts(p, m))
	if err != nil {
		t.Fatalf("%v with p=%d: %v", m, p, err)
	}
	if err := VerifyLocallyDominant(g, got.Result); err != nil {
		t.Fatalf("%v with p=%d: %v", m, p, err)
	}
	if got.Weight != want.Weight || got.Cardinality != want.Cardinality {
		t.Fatalf("%v with p=%d: weight/card (%g,%d) != serial (%g,%d)",
			m, p, got.Weight, got.Cardinality, want.Weight, want.Cardinality)
	}
	for v := range want.Mate {
		if got.Mate[v] != want.Mate[v] {
			t.Fatalf("%v with p=%d: mate[%d] = %d, serial %d", m, p, v, got.Mate[v], want.Mate[v])
		}
	}
	return got
}

func TestAllModelsTinyGraphs(t *testing.T) {
	tiny := []*graph.CSR{
		graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}}),
		graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 0, V: 2, W: 1}}),
		gen.Path(7),
		graph.NewBuilder(4).Build(), // no edges at all
	}
	for _, g := range tiny {
		for _, m := range Models {
			for _, p := range []int{1, 2, 3} {
				assertMatchesSerial(t, g, p, m)
			}
		}
	}
}

func TestAllModelsAllFamilies(t *testing.T) {
	families := map[string]*graph.CSR{
		"rgg":    gen.RGG(1200, gen.RGGRadiusForDegree(1200, 6), 1),
		"rmat":   gen.Graph500(9, 2),
		"sbp":    gen.SBP(800, 12, 10, 0.5, 3),
		"kmer":   gen.KMerGrids(10, 3, 8, 4),
		"social": gen.Social(900, 8, 5),
		"banded": gen.BandedMesh(1000, 12, 2, 0.01, 6),
	}
	for name, g := range families {
		for _, m := range Models {
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				assertMatchesSerial(t, g, 8, m)
			})
		}
	}
}

func TestManyRanks(t *testing.T) {
	g := gen.Social(2000, 8, 7)
	for _, m := range Models {
		assertMatchesSerial(t, g, 32, m)
	}
}

func TestMoreRanksThanVertices(t *testing.T) {
	g := gen.Path(5)
	for _, m := range Models {
		assertMatchesSerial(t, g, 9, m)
	}
}

func TestUniformWeightsParallel(t *testing.T) {
	// Pathological tie-break instances across models and rank counts.
	for _, g := range []*graph.CSR{gen.Path(400), gen.Grid2D(15, 20)} {
		for _, m := range Models {
			assertMatchesSerial(t, g, 8, m)
		}
	}
}

func TestEagerRejectProducesValidMatching(t *testing.T) {
	// The paper's literal Algorithm 6 protocol: result may differ from
	// the locally-dominant matching but must be a valid matching.
	g := gen.Social(800, 8, 8)
	serialWeight := Serial(g).Weight
	for _, m := range Models {
		o := opts(8, m)
		o.EagerReject = true
		got, err := Run(g, o)
		if err != nil {
			t.Fatalf("%v eager: %v", m, err)
		}
		if err := Verify(g, got.Result); err != nil {
			t.Fatalf("%v eager: %v", m, err)
		}
		if got.Weight < 0.5*serialWeight {
			t.Errorf("%v eager: weight %g collapsed versus LD %g", m, got.Weight, serialWeight)
		}
	}
}

func TestRoundCountsReported(t *testing.T) {
	g := gen.SBP(500, 8, 8, 0.5, 9)
	for _, m := range []Model{NCL, RMA} {
		res, err := Run(g, opts(6, m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds < 1 {
			t.Errorf("%v: rounds = %d", m, res.Rounds)
		}
		if res.Messages <= 0 {
			t.Errorf("%v: messages = %d", m, res.Messages)
		}
	}
}

func TestMessageBoundPerCrossEdge(t *testing.T) {
	// Protocol bound: total protocol messages <= MaxMessagesPerCrossEdge
	// per cross arc (sum over ranks of cross arcs counts each edge's two
	// sides separately).
	g := gen.Social(1000, 10, 10)
	res, err := Run(g, opts(8, NSR))
	if err != nil {
		t.Fatal(err)
	}
	var crossArcs int64
	for r := 0; r < 8; r++ {
		crossArcs += res.Dist.BuildLocal(r).TotalCrossArcs
	}
	if res.Messages > crossArcs*MaxMessagesPerCrossEdge {
		t.Errorf("messages %d exceed bound %d", res.Messages, crossArcs*MaxMessagesPerCrossEdge)
	}
}

func TestSingleRankMatchesAllModels(t *testing.T) {
	// p=1: no communication at all; every transport must degrade
	// gracefully (empty neighborhoods, zero-size windows).
	g := gen.Graph500(8, 4)
	for _, m := range Models {
		res := assertMatchesSerial(t, g, 1, m)
		if res.Messages != 0 {
			t.Errorf("%v: %d messages with one rank", m, res.Messages)
		}
	}
}

func TestVirtualTimePositiveAndModelDependent(t *testing.T) {
	g := gen.Social(1500, 10, 11)
	times := map[Model]float64{}
	for _, m := range Models {
		res, err := Run(g, opts(8, m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.MaxVirtualTime <= 0 {
			t.Fatalf("%v: nonpositive virtual time", m)
		}
		times[m] = res.Report.MaxVirtualTime
	}
	if times[MBP] <= times[NSR] {
		t.Errorf("MBP (%g) should model slower than NSR (%g)", times[MBP], times[NSR])
	}
}

func TestNCLBufferAccounting(t *testing.T) {
	g := gen.SBP(600, 8, 8, 0.5, 13)
	res, err := Run(g, opts(6, NCL))
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Report.Stats {
		if rs.AllocHighWater <= 0 {
			t.Errorf("rank %d: no buffer accounting", rs.Rank)
		}
	}
}

func TestParallelEqualsSerialQuick(t *testing.T) {
	// Property: on random SBP graphs, every model at random rank counts
	// reproduces the serial matching exactly.
	f := func(seed int64, pRaw, mRaw uint8) bool {
		p := int(pRaw%6) + 1
		m := Models[int(mRaw)%len(Models)]
		g := gen.SBP(120, 5, 6, 0.4, seed)
		want := Serial(g)
		got, err := Run(g, opts(p, m))
		if err != nil {
			return false
		}
		if got.Weight != want.Weight || got.Cardinality != want.Cardinality {
			return false
		}
		for v := range want.Mate {
			if got.Mate[v] != want.Mate[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationMatrixShape(t *testing.T) {
	// On an RGG strip distribution, ranks only talk to adjacent ranks:
	// the message matrix must be tri-diagonal (Fig 2's structure for
	// matching is neighbor-banded for RGG).
	n := 3000
	g := gen.RGG(n, gen.RGGRadiusForDegree(n, 6), 17)
	o := opts(8, NSR)
	o.TrackMatrices = true
	res, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	mm := mpi.MsgMatrix(res.Report.Stats)
	for i := range mm {
		for j := range mm[i] {
			if mm[i][j] > 0 && (j < i-1 || j > i+1) {
				t.Errorf("unexpected traffic %d->%d on a strip RGG", i, j)
			}
		}
	}
}

func TestRoundBasedModelsDeterministicTime(t *testing.T) {
	// The round-based transports are fully deterministic: two runs must
	// agree on modeled time, rounds, and message count bit-for-bit.
	g := gen.SBP(600, 10, 8, 0.5, 21)
	for _, m := range []Model{NCL, RMA, NCLI, NCLC} {
		a, err := Run(g, opts(6, m))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, opts(6, m))
		if err != nil {
			t.Fatal(err)
		}
		if a.Report.MaxVirtualTime != b.Report.MaxVirtualTime {
			t.Errorf("%v: virtual time differs across runs: %g vs %g",
				m, a.Report.MaxVirtualTime, b.Report.MaxVirtualTime)
		}
		if a.Rounds != b.Rounds || a.Messages != b.Messages {
			t.Errorf("%v: rounds/messages differ: (%d,%d) vs (%d,%d)",
				m, a.Rounds, a.Messages, b.Rounds, b.Messages)
		}
	}
}

func TestNCLIPipeliningCanBeatNCL(t *testing.T) {
	// On a volume-heavy input the pipelined nonblocking variant should
	// not be slower than the blocking collectives it extends.
	g := gen.Social(4000, 12, 23)
	ncl, err := Run(g, opts(8, NCL))
	if err != nil {
		t.Fatal(err)
	}
	ncli, err := Run(g, opts(8, NCLI))
	if err != nil {
		t.Fatal(err)
	}
	if ncli.Report.MaxVirtualTime > ncl.Report.MaxVirtualTime*1.3 {
		t.Errorf("NCLI (%g) should be within 1.3x of NCL (%g) or better",
			ncli.Report.MaxVirtualTime, ncl.Report.MaxVirtualTime)
	}
}
