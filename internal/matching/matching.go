// Package matching implements half-approximate maximum weight graph
// matching — the paper's case-study application — in serial and in
// distributed memory under four MPI communication models:
//
//   - NSR: nonblocking point-to-point Send-Recv (the paper's baseline),
//   - RMA: MPI-3 passive-target one-sided puts with precomputed remote
//     displacements and per-round neighborhood count exchanges,
//   - NCL: blocking MPI-3 neighborhood collectives with per-neighbor
//     message aggregation,
//   - MBP: a MatchBox-P-style synchronous-mode Send-Recv baseline.
//
// All variants parallelize the Manne-Bisseling locally-dominant
// algorithm: vertices point at their heaviest available neighbor, a
// mutually-pointing pair is matched, and neighbors of matched vertices
// re-point until no edges remain. Ties are broken by a hash of endpoint
// ids (graph.KeyOf), giving a strict total order under which the
// locally-dominant matching is unique — every variant must therefore
// produce exactly the serial matching, which the test suite exploits.
package matching

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Result describes a matching.
type Result struct {
	// Mate[v] is v's partner, or -1 if v is unmatched.
	Mate []int
	// Weight is the sum of matched edge weights.
	Weight float64
	// Cardinality is the number of matched edges.
	Cardinality int
}

// NewResult assembles a Result from a mate vector, computing weight and
// cardinality. It panics if mate references a nonexistent edge; use
// Verify for full validation with errors.
func NewResult(g *graph.CSR, mate []int) *Result {
	r := &Result{Mate: mate}
	for v, u := range mate {
		if u < 0 || u < v {
			continue
		}
		w, ok := g.EdgeWeight(v, u)
		if !ok {
			panic(fmt.Sprintf("matching: mate pair {%d,%d} is not an edge", v, u))
		}
		r.Weight += w
		r.Cardinality++
	}
	return r
}

// Verify checks that r is a valid matching of g: the mate relation is
// symmetric, every matched pair is an edge, and the recorded weight and
// cardinality are consistent.
func Verify(g *graph.CSR, r *Result) error {
	if len(r.Mate) != g.NumVertices() {
		return fmt.Errorf("matching: mate vector has %d entries for %d vertices", len(r.Mate), g.NumVertices())
	}
	var weight float64
	card := 0
	for v, u := range r.Mate {
		if u == -1 {
			continue
		}
		if u < 0 || u >= g.NumVertices() {
			return fmt.Errorf("matching: vertex %d matched to out-of-range %d", v, u)
		}
		if r.Mate[u] != v {
			return fmt.Errorf("matching: asymmetric mates: %d->%d but %d->%d", v, u, u, r.Mate[u])
		}
		w, ok := g.EdgeWeight(v, u)
		if !ok {
			return fmt.Errorf("matching: matched pair {%d,%d} is not an edge", v, u)
		}
		if u > v {
			weight += w
			card++
		}
	}
	if card != r.Cardinality {
		return fmt.Errorf("matching: cardinality %d recorded, %d actual", r.Cardinality, card)
	}
	if d := weight - r.Weight; d > 1e-6 || d < -1e-6 {
		return fmt.Errorf("matching: weight %g recorded, %g actual", r.Weight, weight)
	}
	return nil
}

// VerifyMaximal checks that r is a valid matching of g with no
// augmentable edge: every edge has at least one matched endpoint. This
// is the correctness contract of the asynchronous maximal engine —
// *which* maximal matching emerges is schedule-dependent, but
// maximality never is.
func VerifyMaximal(g *graph.CSR, r *Result) error {
	if err := Verify(g, r); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if r.Mate[v] >= 0 {
			continue
		}
		for _, a := range g.Neighbors(v) {
			if int(a) != v && r.Mate[a] < 0 {
				return fmt.Errorf("matching: edge {%d,%d} has both endpoints free — not maximal", v, a)
			}
		}
	}
	return nil
}

// VerifyLocallyDominant checks the property that makes a matching
// half-approximate: every edge of the graph is dominated — at least one
// endpoint is matched to an edge of greater-or-equal total-order key.
// All locally-dominant matchings satisfy this; a matching that satisfies
// it has weight at least half the maximum (Preis 1999).
func VerifyLocallyDominant(g *graph.CSR, r *Result) error {
	if err := Verify(g, r); err != nil {
		return err
	}
	matchKey := make([]graph.EdgeKey, g.NumVertices())
	hasKey := make([]bool, g.NumVertices())
	for v, u := range r.Mate {
		if u >= 0 {
			w, _ := g.EdgeWeight(v, u)
			matchKey[v] = graph.KeyOf(v, u, w)
			hasKey[v] = true
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) < v {
				continue
			}
			k := graph.KeyOf(v, int(a), ws[i])
			uOK := hasKey[v] && !matchKey[v].Less(k)
			vOK := hasKey[a] && !matchKey[a].Less(k)
			if !uOK && !vOK {
				return fmt.Errorf("matching: edge {%d,%d} (w=%g) dominates both endpoints' matches — not locally dominant", v, a, ws[i])
			}
		}
	}
	return nil
}

// Serial computes the locally-dominant half-approximate matching with
// the pointer-based algorithm of Manne & Bisseling (paper Algorithm 2):
// every vertex points at its heaviest available neighbor, mutually
// pointing pairs match, and neighbors of newly matched or exhausted
// vertices re-point. Runs in O(|E| log dmax) expected time. The sorted
// adjacency comes from the same flattened arena the distributed engines
// share (buildSortedAdjacency).
func Serial(g *graph.CSR) *Result {
	n := g.NumVertices()
	sorted := buildSortedAdjacency(g)
	ptr := make([]int32, n)
	cand := make([]int32, n)
	state := make([]uint8, n) // 0 unmatched, 1 matched, 2 dead
	mate := make([]int, n)
	for i := range cand {
		cand[i] = -1
		mate[i] = -1
	}
	const (
		unmatched = 0
		matched   = 1
		dead      = 2
	)

	work := make([]int32, 0, n)
	// repoint pushes neighbors of v that currently point at v.
	repoint := func(v int32) {
		for _, a := range g.Neighbors(int(v)) {
			if state[a] == unmatched && cand[a] == v {
				work = append(work, a)
			}
		}
	}
	process := func(v int32) {
		if state[v] != unmatched {
			return
		}
		// Idempotent: current candidate still available?
		if cand[v] >= 0 && state[cand[v]] == unmatched {
			return
		}
		rlo := g.Offsets[v]
		row := g.Neighbors(int(v))
		for ptr[v] < int32(len(row)) {
			u := row[sorted[rlo+int64(ptr[v])]]
			if state[u] == unmatched {
				break
			}
			ptr[v]++
		}
		if ptr[v] == int32(len(row)) {
			cand[v] = -1
			state[v] = dead
			repoint(v)
			return
		}
		u := row[sorted[rlo+int64(ptr[v])]]
		cand[v] = u
		if cand[u] == v {
			state[v], state[u] = matched, matched
			mate[v], mate[u] = int(u), int(v)
			repoint(v)
			repoint(u)
		}
	}

	for v := int32(0); v < int32(n); v++ {
		work = append(work, v)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			process(x)
		}
	}
	return NewResult(g, mate)
}

// Greedy computes the matching produced by sorting all edges by
// decreasing key and taking each edge whose endpoints are both free.
// Under a strict total order on edge keys, the greedy matching and the
// locally-dominant matching coincide (Preis 1999) — the test suite uses
// this as an independent oracle for Serial and all parallel variants.
func Greedy(g *graph.CSR) *Result {
	type keyed struct {
		u, v int32
		key  graph.EdgeKey
	}
	edges := make([]keyed, 0, g.NumArcs()/2)
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) > v {
				edges = append(edges, keyed{int32(v), a, graph.KeyOf(v, int(a), ws[i])})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[j].key.Less(edges[i].key) })
	mate := make([]int, g.NumVertices())
	for i := range mate {
		mate[i] = -1
	}
	for _, e := range edges {
		if mate[e.u] == -1 && mate[e.v] == -1 {
			mate[e.u], mate[e.v] = int(e.v), int(e.u)
		}
	}
	return NewResult(g, mate)
}
