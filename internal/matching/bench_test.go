package matching

import (
	"testing"
	"time"

	"repro/internal/gen"
)

// Wall-clock micro-benchmarks of the matchers (simulation throughput).

func BenchmarkSerialSocial(b *testing.B) {
	g := gen.Social(20000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Serial(g)
		if r.Cardinality == 0 {
			b.Fatal("empty matching")
		}
	}
	b.ReportMetric(float64(g.NumEdges())/1e6, "Medges")
}

func BenchmarkSerialRGG(b *testing.B) {
	n := 50000
	g := gen.RGG(n, gen.RGGRadiusForDegree(n, 8), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Serial(g)
	}
}

func BenchmarkGreedyOracle(b *testing.B) {
	g := gen.Social(20000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g)
	}
}

func benchParallel(b *testing.B, m Model, procs int) {
	g := gen.Social(10000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(g, Options{Procs: procs, Model: m, Deadline: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Report.MaxVirtualTime*1e3, "modeled-ms")
		}
	}
}

func BenchmarkParallelNSR(b *testing.B) { benchParallel(b, NSR, 8) }
func BenchmarkParallelRMA(b *testing.B) { benchParallel(b, RMA, 8) }
func BenchmarkParallelNCL(b *testing.B) { benchParallel(b, NCL, 8) }
func BenchmarkParallelMBP(b *testing.B) { benchParallel(b, MBP, 8) }

func BenchmarkVerifyLocallyDominant(b *testing.B) {
	g := gen.Social(20000, 10, 1)
	r := Serial(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyLocallyDominant(g, r); err != nil {
			b.Fatal(err)
		}
	}
}
