package matching

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

func mxOpts(p int, m Model) Options {
	return Options{Procs: p, Model: m, Engine: EngineMaximal, Deadline: 60 * time.Second}
}

// assertMaximal runs the maximal engine on g and requires a valid
// maximal matching. Unlike the half-approx oracle there is no unique
// expected edge set — maximality and validity are the whole contract.
func assertMaximal(t *testing.T, g *graph.CSR, o Options) *ParallelResult {
	t.Helper()
	got, err := Run(g, o)
	if err != nil {
		t.Fatalf("%v maximal p=%d: %v", o.Model, o.Procs, err)
	}
	if err := VerifyMaximal(g, got.Result); err != nil {
		t.Fatalf("%v maximal p=%d: %v", o.Model, o.Procs, err)
	}
	return got
}

func TestMaximalTinyGraphs(t *testing.T) {
	tiny := []*graph.CSR{
		graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}}),
		graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 0, V: 2, W: 1}}),
		gen.Path(7),
		graph.NewBuilder(4).Build(), // no edges at all
	}
	for _, g := range tiny {
		for _, m := range Models {
			for _, p := range []int{1, 2, 3} {
				assertMaximal(t, g, mxOpts(p, m))
			}
		}
	}
}

// TestMaximalAllModelsAllFamilies is the acceptance sweep: a valid
// maximal matching on every graph family, on every communication model
// — async-flavor models through the barrier-free detector path,
// round-flavor models through the counting fence.
func TestMaximalAllModelsAllFamilies(t *testing.T) {
	families := map[string]*graph.CSR{
		"rgg":    gen.RGG(1200, gen.RGGRadiusForDegree(1200, 6), 1),
		"rmat":   gen.Graph500(9, 2),
		"sbp":    gen.SBP(800, 12, 10, 0.5, 3),
		"kmer":   gen.KMerGrids(10, 3, 8, 4),
		"social": gen.Social(900, 8, 5),
		"banded": gen.BandedMesh(1000, 12, 2, 0.01, 6),
	}
	for name, g := range families {
		for _, m := range Models {
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				assertMaximal(t, g, mxOpts(8, m))
			})
		}
	}
}

// TestMaximalForcedRounds pins the async-flavor models to the
// round-structured baseline driver (flush + barrier + counting
// allreduce): same protocol, same transport, opposite termination
// style. Round-flavor models must be unaffected by the flag.
func TestMaximalForcedRounds(t *testing.T) {
	g := gen.SBP(600, 10, 8, 0.5, 21)
	for _, m := range Models {
		o := mxOpts(6, m)
		o.ForceRounds = true
		got := assertMaximal(t, g, o)
		if got.Rounds < 1 {
			t.Errorf("%v forced rounds reported %d rounds", m, got.Rounds)
		}
	}
}

func TestMaximalManyRanks(t *testing.T) {
	g := gen.Social(2000, 8, 7)
	for _, m := range []Model{NSR, NSRA, NCL} {
		assertMaximal(t, g, mxOpts(32, m))
	}
}

func TestMaximalMoreRanksThanVertices(t *testing.T) {
	g := gen.Path(5)
	for _, m := range Models {
		assertMaximal(t, g, mxOpts(9, m))
	}
}

// TestMaximalCardinalityFloor: a maximal matching is a 2-approximation
// of the maximum matching in cardinality, so it must reach at least
// half the serial greedy's card (itself maximal). A cheap sanity bound
// that catches protocols quietly dropping most of the graph.
func TestMaximalCardinalityFloor(t *testing.T) {
	g := gen.Social(1500, 10, 11)
	want := Serial(g).Cardinality // locally dominant => maximal
	for _, m := range []Model{NSR, MBP, NSRA} {
		got := assertMaximal(t, g, mxOpts(8, m))
		if 2*got.Cardinality < want {
			t.Errorf("%v maximal cardinality %d, below half of serial %d", m, got.Cardinality, want)
		}
	}
}

// TestMaximalPerturbedStillMaximal drives the async engine + detector
// through every perturbation class under pinned seeds: the matching
// stays valid and maximal under any legal reordering, and the detector
// never concludes early (a false termination would strand a pending
// vertex and break maximality, or trip the engine's unsettled panic).
func TestMaximalPerturbedStillMaximal(t *testing.T) {
	profiles := []sched.Profile{
		{Ties: true},
		{Jitter: 1.0},
		{Slowdown: 0.5},
		{ProbeMiss: 0.5},
		sched.Full,
	}
	seeds := []uint64{0x5eed, 0xdead, 0x1, 0x2a, 0xbadc0de}
	g := gen.SBP(500, 8, 8, 0.5, 9)
	for _, m := range []Model{NSR, MBP, NSRA} {
		for _, p := range profiles {
			for _, seed := range seeds {
				o := mxOpts(6, m)
				o.Perturb = p
				o.PerturbSeed = seed
				assertMaximal(t, g, o)
			}
		}
	}
}

// TestMaximalTelemetry: the epoch log must be populated with the
// protocol's counters under the shared round-log schema.
func TestMaximalTelemetry(t *testing.T) {
	g := gen.SBP(600, 8, 8, 0.5, 13)
	o := mxOpts(4, NSR)
	o.RoundLog = 256
	got := assertMaximal(t, g, o)
	if got.Telemetry == nil {
		t.Fatal("RoundLog set but no telemetry returned")
	}
	if got.Messages == 0 {
		t.Error("no protocol messages recorded on a multi-rank run")
	}
	if got.Rounds < 1 {
		t.Error("no epochs recorded")
	}
}

// TestMaximalAsyncBeatsForcedRounds is the tentpole's performance
// claim at unit scale: on a skewed input where one straggler rank
// dominates, the barrier-free engine's virtual time beats the same
// protocol on the same transport with a barrier + allreduce per round.
func TestMaximalAsyncBeatsForcedRounds(t *testing.T) {
	g := skewedBlockGraph(2400, 8, 48, 6, 19)
	base := mxOpts(8, NSR)
	async := assertMaximal(t, g, base)
	forced := base
	forced.ForceRounds = true
	rounds := assertMaximal(t, g, forced)
	ta, tr := async.Report.MaxVirtualTime, rounds.Report.MaxVirtualTime
	if ta >= tr {
		t.Errorf("async %.6fs not faster than round-structured %.6fs on skewed input", ta, tr)
	}
}

// skewedBlockGraph builds a block-partitioned graph where block 0 is
// far denser than the rest: under a block distribution one rank carries
// most of the edges, the straggler regime where round barriers hurt.
func skewedBlockGraph(n, p, denseDeg, sparseDeg int, seed int64) *graph.CSR {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	blk := n / p // n is a multiple of p, matching NewBlockDist's partition
	addWithin := func(lo, hi, deg int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < deg; k++ {
				u := lo + r.Intn(hi-lo)
				if u != v {
					b.AddEdge(v, u, 1+r.Float64())
				}
			}
		}
	}
	addWithin(0, blk, denseDeg)
	addWithin(blk, n, sparseDeg)
	// A sparse ring of cross-block edges keeps the graph connected so
	// every rank participates in the protocol.
	for v := 0; v+blk < n; v += blk / 2 {
		b.AddEdge(v, v+blk, 1)
	}
	return b.Build()
}
