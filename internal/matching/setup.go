package matching

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// setupGrain is the vertex-span grain for the parallel adjacency sort.
const setupGrain = 512

// buildSortedAdjacency returns the flattened matching-setup arena: one
// []int32 the length of g.NumArcs() where the slice
// order[Offsets[v]:Offsets[v+1]] holds vertex v's arc positions (0-based
// within the CSR row) ordered by decreasing edge key — the heaviest
// available neighbor is found by a monotone pointer scan. Ties on the
// (astronomically unlikely) equal key fall back to ascending row
// position, so the arena is fully deterministic.
//
// Compared with the old per-vertex [][]int32, the arena is one
// allocation instead of n, each arc's key is computed exactly once
// (instead of O(log d) times inside an interface comparator), and rows
// sort in parallel over vertex spans. The arena is read-only after
// construction, so one arena is shared by every rank's engine and by
// Serial.
func buildSortedAdjacency(g *graph.CSR) []int32 {
	n := g.NumVertices()
	order := make([]int32, g.NumArcs())
	par.Ranges(n, setupGrain, func(lo, hi int) {
		var keys []graph.EdgeKey // span-local scratch, grown to the widest row
		for v := lo; v < hi; v++ {
			rlo, rhi := g.Offsets[v], g.Offsets[v+1]
			row := g.Adj[rlo:rhi]
			ws := g.Weights[rlo:rhi]
			pos := order[rlo:rhi]
			if cap(keys) < len(row) {
				keys = make([]graph.EdgeKey, len(row))
			}
			keys = keys[:len(row)]
			for i := range row {
				pos[i] = int32(i)
				keys[i] = graph.KeyOf(v, int(row[i]), ws[i])
			}
			sortKeyedDesc(pos, keys)
		}
	})
	return order
}

// sortKeyedDesc sorts the parallel (position, key) arrays by decreasing
// key, ties by ascending position: a concrete-typed three-way quicksort
// with median-of-three pivoting and an insertion-sort tail, mirroring
// graph.sortArcs.
func sortKeyedDesc(pos []int32, keys []graph.EdgeKey) {
	for len(pos) > 24 {
		n := len(pos)
		m := n / 2
		if keyedBefore(pos[m], keys[m], pos[0], keys[0]) {
			keyedSwap(pos, keys, m, 0)
		}
		if keyedBefore(pos[n-1], keys[n-1], pos[0], keys[0]) {
			keyedSwap(pos, keys, n-1, 0)
		}
		if keyedBefore(pos[n-1], keys[n-1], pos[m], keys[m]) {
			keyedSwap(pos, keys, n-1, m)
		}
		keyedSwap(pos, keys, 0, m)
		pp, pk := pos[0], keys[0]

		lt, i, gt := 0, 1, n
		for i < gt {
			switch {
			case keyedBefore(pos[i], keys[i], pp, pk):
				keyedSwap(pos, keys, i, lt)
				lt++
				i++
			case keyedBefore(pp, pk, pos[i], keys[i]):
				gt--
				keyedSwap(pos, keys, i, gt)
			default:
				i++
			}
		}
		if lt < n-gt {
			sortKeyedDesc(pos[:lt], keys[:lt])
			pos, keys = pos[gt:], keys[gt:]
		} else {
			sortKeyedDesc(pos[gt:], keys[gt:])
			pos, keys = pos[:lt], keys[:lt]
		}
	}
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && keyedBefore(pos[j], keys[j], pos[j-1], keys[j-1]); j-- {
			keyedSwap(pos, keys, j, j-1)
		}
	}
}

// keyedBefore reports whether (p1, k1) sorts before (p2, k2): greater
// key first, equal keys by ascending position.
func keyedBefore(p1 int32, k1 graph.EdgeKey, p2 int32, k2 graph.EdgeKey) bool {
	if k2.Less(k1) {
		return true
	}
	if k1.Less(k2) {
		return false
	}
	return p1 < p2
}

func keyedSwap(pos []int32, keys []graph.EdgeKey, i, j int) {
	pos[i], pos[j] = pos[j], pos[i]
	keys[i], keys[j] = keys[j], keys[i]
}
