package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSerialTriangle(t *testing.T) {
	// Triangle with one heavy edge: matching is exactly that edge.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 0, V: 2, W: 1}})
	r := Serial(g)
	if err := VerifyLocallyDominant(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Cardinality != 1 || r.Weight != 5 || r.Mate[0] != 1 || r.Mate[2] != -1 {
		t.Errorf("result = %+v", r)
	}
}

func TestSerialPathAlternating(t *testing.T) {
	// Path with increasing weights 1,2,3,4 on 5 vertices: LD matching
	// takes edge {3,4} (w=4) and then {1,2} (w=2).
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, i+1, float64(i+1))
	}
	g := b.Build()
	r := Serial(g)
	if err := VerifyLocallyDominant(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Weight != 6 || r.Cardinality != 2 {
		t.Errorf("weight=%g card=%d, want 6, 2", r.Weight, r.Cardinality)
	}
}

func TestSerialEqualsGreedyOracle(t *testing.T) {
	// Under a strict total edge order, locally-dominant == greedy.
	graphs := map[string]*graph.CSR{
		"social": gen.Social(800, 8, 1),
		"rmat":   gen.Graph500(9, 2),
		"sbp":    gen.SBP(600, 12, 10, 0.5, 3),
		"kmer":   gen.KMerGrids(8, 3, 8, 4),
		"path":   gen.Path(500),
		"grid":   gen.Grid2D(20, 25),
	}
	for name, g := range graphs {
		s, gr := Serial(g), Greedy(g)
		if s.Weight != gr.Weight || s.Cardinality != gr.Cardinality {
			t.Errorf("%s: serial (w=%g,c=%d) != greedy (w=%g,c=%d)",
				name, s.Weight, s.Cardinality, gr.Weight, gr.Cardinality)
			continue
		}
		for v := range s.Mate {
			if s.Mate[v] != gr.Mate[v] {
				t.Errorf("%s: mate[%d] differs: %d vs %d", name, v, s.Mate[v], gr.Mate[v])
				break
			}
		}
		if err := VerifyLocallyDominant(g, s); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSerialUniformWeightsTieBreak(t *testing.T) {
	// Pathological instances: all weights equal. Hashed tie-breaking must
	// still yield a valid, locally dominant (hence maximal) matching.
	for _, g := range []*graph.CSR{gen.Path(1001), gen.Grid2D(30, 30)} {
		r := Serial(g)
		if err := VerifyLocallyDominant(g, r); err != nil {
			t.Fatal(err)
		}
		// A locally-dominant matching is maximal: on a path of n vertices
		// it has at least floor(n/3) edges... use the maximality check:
		// no edge has both endpoints unmatched.
		for v := 0; v < g.NumVertices(); v++ {
			if r.Mate[v] != -1 {
				continue
			}
			for _, a := range g.Neighbors(v) {
				if r.Mate[a] == -1 {
					t.Fatalf("edge {%d,%d} has both endpoints unmatched: not maximal", v, a)
				}
			}
		}
	}
}

func TestSerialEmptyAndIsolated(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	r := Serial(empty)
	if r.Cardinality != 0 || len(r.Mate) != 0 {
		t.Error("empty graph mismatch")
	}
	iso := graph.NewBuilder(5).Build()
	r = Serial(iso)
	for _, m := range r.Mate {
		if m != -1 {
			t.Error("isolated vertices must stay unmatched")
		}
	}
}

func TestSerialSingleEdge(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 3}})
	r := Serial(g)
	if r.Cardinality != 1 || r.Mate[0] != 1 || r.Mate[1] != 0 {
		t.Errorf("single edge not matched: %+v", r)
	}
}

func TestVerifyCatchesBadMatchings(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	// Asymmetric.
	if err := Verify(g, &Result{Mate: []int{1, -1, -1, -1}}); err == nil {
		t.Error("asymmetric mate accepted")
	}
	// Non-edge.
	if err := Verify(g, &Result{Mate: []int{2, -1, 0, -1}, Cardinality: 1}); err == nil {
		t.Error("non-edge match accepted")
	}
	// Wrong cardinality.
	if err := Verify(g, &Result{Mate: []int{1, 0, -1, -1}, Cardinality: 2, Weight: 1}); err == nil {
		t.Error("wrong cardinality accepted")
	}
	// Not locally dominant: match the light edge, leave the heavy one.
	g2 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 10}, {U: 2, V: 3, W: 1}})
	bad := &Result{Mate: []int{1, 0, 3, 2}, Cardinality: 2, Weight: 2}
	if err := Verify(g2, bad); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	if err := VerifyLocallyDominant(g2, bad); err == nil {
		t.Error("non-LD matching passed the LD check")
	}
}

// optimalMatchingWeight brute-forces the maximum weight matching of a
// small graph (n <= 16) by bitmask dynamic programming.
func optimalMatchingWeight(g *graph.CSR) float64 {
	n := g.NumVertices()
	dp := make([]float64, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		// Find lowest set vertex; either leave it unmatched or pair it.
		v := 0
		for mask&(1<<v) == 0 {
			v++
		}
		rest := mask &^ (1 << v)
		best := dp[rest]
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if rest&(1<<a) != 0 {
				if w := dp[rest&^(1<<a)] + ws[i]; w > best {
					best = w
				}
			}
		}
		dp[mask] = best
	}
	return dp[1<<n-1]
}

func TestHalfApproxBoundOnSmallGraphs(t *testing.T) {
	// Compare against brute-force optimal matchings on small random
	// graphs: LD weight must be >= optimal/2.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(7)
		b := graph.NewBuilder(n)
		m := n + rng.Intn(2*n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*9)
		}
		g := b.Build()
		opt := optimalMatchingWeight(g)
		ld := Serial(g).Weight
		if 2*ld < opt-1e-9 {
			t.Fatalf("trial %d: LD weight %g below half of optimal %g", trial, ld, opt)
		}
	}
}

func TestSerialDeterministic(t *testing.T) {
	g := gen.Social(400, 10, 9)
	a, b := Serial(g), Serial(g)
	for v := range a.Mate {
		if a.Mate[v] != b.Mate[v] {
			t.Fatal("serial matching not deterministic")
		}
	}
}

func TestSerialValidQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		g := gen.SBP(n, min(4, n), 5, 0.4, seed)
		r := Serial(g)
		return VerifyLocallyDominant(g, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
