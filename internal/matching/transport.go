package matching

import (
	"repro/internal/mpi"
	"repro/internal/transport"
)

// MaxMessagesPerCrossEdge bounds the protocol traffic per cross edge per
// direction: one REQUEST plus at most one REJECT or INVALID (paper
// §IV-B: "a vertex may send at most 2 messages to a ghost vertex"). The
// RMA window regions and the collective aggregation buffers are sized
// with it.
const MaxMessagesPerCrossEdge = 2

// aggBatchRecords is the per-destination batch size of the NSRA model's
// aggregating Send-Recv transport.
const aggBatchRecords = 64

// runAsync is the Send-Recv driver (paper Algorithms 1 and 3): process
// incoming messages and local work until this rank's unresolved ghost
// count reaches zero. As the paper notes (§V-D), the point-to-point
// variant needs no global reduction — a local test suffices — because a
// rank with no unresolved cross edges owes nothing to anyone.
func runAsync(e *engine, t transport.Async) {
	e.start()
	for e.pending > 0 {
		progressed := t.Drain(e.handleMessage)
		e.drainWork()
		if e.pending == 0 {
			break
		}
		if !progressed && len(e.work) == 0 {
			t.Block()
		}
		e.rounds++
	}
	// Peers may still depend on records parked in aggregation buffers.
	t.Finish()
}

// runRounds is the driver shared by the RMA, NCL and NCLI variants:
// rounds of (exchange, process, local work) with a global reduction on
// the unresolved ghost counts deciding termination — the extra
// collective the paper identifies as the cost of uncoordinated exits
// (§V-D).
func runRounds(e *engine, t transport.Round) {
	e.start()
	for {
		t.Exchange(e.handleMessage)
		e.drainWork()
		total := e.c.AllreduceScalarInt64(mpi.OpSum, e.pending)
		e.rounds++
		if total == 0 {
			t.Finish()
			return
		}
	}
}
