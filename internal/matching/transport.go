package matching

import (
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// MaxMessagesPerCrossEdge bounds the protocol traffic per cross edge per
// direction: one REQUEST plus at most one REJECT or INVALID (paper
// §IV-B: "a vertex may send at most 2 messages to a ghost vertex"). The
// RMA window regions and the collective aggregation buffers are sized
// with it.
const MaxMessagesPerCrossEdge = 2

// aggBatchRecords is the per-destination batch size of the NSRA model's
// aggregating Send-Recv transport.
const aggBatchRecords = 64

// volumeOf returns a transport's live per-destination byte ledger for
// round telemetry (all in-repo backends implement transport.Volumer).
// Only call it when telemetry is actually recording: VolumeByDest
// allocates an O(world size) ledger per rank on first use, which an
// untelemetered 64K-rank run must not pay.
func volumeOf(t transport.Sender) []int64 {
	if v, ok := t.(transport.Volumer); ok {
		return v.VolumeByDest()
	}
	return nil
}

// runAsync is the Send-Recv driver (paper Algorithms 1 and 3): process
// incoming messages and local work until this rank's unresolved ghost
// count reaches zero. As the paper notes (§V-D), the point-to-point
// variant needs no global reduction — a local test suffices — because a
// rank with no unresolved cross edges owes nothing to anyone. Row 0 of
// the round log is the state after the initial pointing phase; one row
// follows per poll iteration.
func runAsync(e *engine, t transport.Async, log *telemetry.RoundLog) {
	var vol []int64
	if log != nil {
		vol = volumeOf(t)
	}
	e.start()
	e.record(log, vol)
	for e.pending > 0 {
		progressed := t.Drain(e.handleMessage)
		e.drainWork()
		e.record(log, vol)
		if e.pending == 0 {
			break
		}
		if !progressed && len(e.work) == 0 {
			t.Block()
		}
		e.rounds++
	}
	// Peers may still depend on records parked in aggregation buffers.
	t.Finish()
}

// runRounds is the driver shared by the FlavorRound models (RMA, NCL,
// NCLI, NCLC): rounds of (exchange, process, local work) with a global reduction on
// the unresolved ghost counts deciding termination — the extra
// collective the paper identifies as the cost of uncoordinated exits
// (§V-D). Row 0 of the round log is the state after the initial pointing
// phase; one row follows per exchange round.
func runRounds(e *engine, t transport.Round, log *telemetry.RoundLog) {
	var vol []int64
	if log != nil {
		vol = volumeOf(t)
	}
	e.start()
	e.record(log, vol)
	for {
		t.Exchange(e.handleMessage)
		e.drainWork()
		total := e.c.AllreduceScalarInt64(mpi.OpSum, e.pending)
		e.rounds++
		e.record(log, vol)
		if total == 0 {
			t.Finish()
			return
		}
	}
}
