package matching

import (
	"testing"

	"repro/internal/gen"
)

// TestRoundLogSeries runs every model with round telemetry enabled and
// checks the merged series tells the convergence story the paper's §V-D
// reasons about: the unresolved cross-edge count drains monotonically to
// zero, the matched count never regresses and ends at exactly the
// matched vertices, and protocol/byte activity is non-trivial.
func TestRoundLogSeries(t *testing.T) {
	g := gen.Social(1500, 8, 11)
	const p = 8
	for _, m := range Models {
		t.Run(m.String(), func(t *testing.T) {
			o := opts(p, m)
			o.RoundLog = 1024
			res, err := Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Telemetry
			if s == nil || s.Rounds() == 0 {
				t.Fatal("no telemetry series despite RoundLog > 0")
			}
			if s.Procs != p {
				t.Errorf("series Procs = %d, want %d", s.Procs, p)
			}
			if s.Drops != 0 {
				t.Errorf("series dropped %d rows", s.Drops)
			}
			if s.Total != int64(g.NumVertices()) {
				t.Errorf("series Total = %d, want |V| = %d", s.Total, g.NumVertices())
			}
			prevUnresolved := s.Points[0].Unresolved
			prevDone := s.Points[0].Done
			prevTime := s.Points[0].Time
			var req, bytes int64
			for _, pt := range s.Points {
				if pt.Unresolved > prevUnresolved {
					t.Fatalf("unresolved grew %d -> %d at round %d", prevUnresolved, pt.Unresolved, pt.Round)
				}
				if pt.Done < prevDone {
					t.Fatalf("done regressed %d -> %d at round %d", prevDone, pt.Done, pt.Round)
				}
				if pt.Time < prevTime {
					t.Fatalf("virtual time regressed at round %d", pt.Round)
				}
				if pt.Req < 0 || pt.Rej < 0 || pt.Inv < 0 || pt.Bytes < 0 {
					t.Fatalf("negative per-round delta at round %d: %+v", pt.Round, pt)
				}
				prevUnresolved, prevDone, prevTime = pt.Unresolved, pt.Done, pt.Time
				req += pt.Req
				bytes += pt.Bytes
			}
			final := s.Final()
			if final.Unresolved != 0 {
				t.Errorf("final unresolved = %d, want 0", final.Unresolved)
			}
			if want := 2 * int64(res.Cardinality); final.Done != want {
				t.Errorf("final done = %d, want matched vertices %d", final.Done, want)
			}
			if req == 0 || bytes == 0 {
				t.Errorf("series shows no protocol activity: req=%d bytes=%d", req, bytes)
			}
		})
	}
}

// TestRoundLogDisabledByDefault pins the zero-cost-when-off contract at
// the API level: without Options.RoundLog there is no series.
func TestRoundLogDisabledByDefault(t *testing.T) {
	res, err := Run(gen.Path(40), opts(2, NSR))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Errorf("Telemetry = %+v, want nil when RoundLog is unset", res.Telemetry)
	}
}

// benchTelemetry measures a full distributed run with telemetry off or
// on; comparing the two quantifies the observer cost of the round logs
// (BENCH_telemetry.json records the before/after).
func benchTelemetry(b *testing.B, m Model, roundLog int) {
	g := gen.Social(4000, 8, 21)
	o := opts(8, m)
	o.RoundLog = roundLog
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunNSRTelemetryOff(b *testing.B) { benchTelemetry(b, NSR, 0) }
func BenchmarkRunNSRTelemetryOn(b *testing.B)  { benchTelemetry(b, NSR, 1024) }
func BenchmarkRunNCLTelemetryOff(b *testing.B) { benchTelemetry(b, NCL, 0) }
func BenchmarkRunNCLTelemetryOn(b *testing.B)  { benchTelemetry(b, NCL, 1024) }
