package matching

import (
	"fmt"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// This file implements the repo's first asynchronous engine family: a
// Skipper-style maximal-matching protocol (single pass over local
// edges, proposal/accept/decline messages, no round barrier). It
// contrasts with the half-approximate engine on every axis the paper
// cares about: termination is *detected* (mpi.Quiesce) rather than
// counted per round, message arrival order decides which maximal
// matching emerges (the result is schedule-dependent by design, unlike
// the locally-dominant protocol's invariant matching), and a rank with
// a light block finishes its scan and goes passive immediately instead
// of re-synchronizing with stragglers every round.
//
// Protocol. Each vertex v scans its sorted adjacency row once,
// considering only upward neighbors u > v (the downward edge is u's
// responsibility; orienting proposals up the id order makes every
// wait-for chain strictly increasing, hence acyclic, hence
// deadlock-free):
//
//   - free local target: match immediately.
//   - pending target (local or the proposal's remote owner finds it
//     pending): the proposal is *deferred* — parked at the target — not
//     rejected; the scan cursor stays put.
//   - matched target: skip / DECLINE, cursor advances.
//   - a vertex resolving its own fate (matched, or scan exhausted)
//     releases its deferred proposers: it accepts the lowest-id one if
//     it is still free (exhausted case) and declines the rest.
//
// Maximality: suppose edge {v,u}, v < u, with both endpoints free at
// termination. v's scan reached u (the cursor only passes u on a
// DECLINE or a local skip, both of which certify u was matched —
// permanent — contradiction), so v is parked pending at u; but then
// u's resolution either matched v or left a message in flight, and
// quiescence says there are none. Hence no such edge.
const (
	mxPropose int64 = 1 // sender's vertex proposes matching the edge
	mxDecline int64 = 2 // target is (or became) matched; proposer moves on
	mxAccept  int64 = 3 // target accepted; both sides matched
)

// Vertex states of the maximal engine.
const (
	mxsVirgin    uint8 = iota // scan not finished, not waiting on anyone
	mxsPending                // proposal outstanding (cursor parked on the target)
	mxsExhausted              // scan done, still free: open to proposals
	mxsMatched
)

// maximalMaxPerArc sizes the round-flavor transports' buffers: the
// protocol sends at most one record per directed cross arc — a proposal
// up the edge, or its single accept/decline response down it.
const maximalMaxPerArc = 1

// mxEngine executes the asynchronous maximal-matching protocol for one
// rank. It is transport-agnostic exactly like the half-approx engine:
// drivers feed incoming records to handleMessage and drain the local
// work stack. In async mode q accounts every protocol record with the
// quiescence detector; in round mode q is nil and the driver's counting
// allreduce uses sent/recvd directly.
type mxEngine struct {
	c  *mpi.Comm
	l  *distgraph.Local
	g  *graph.CSR
	tr transport.Sender
	q  *mpi.Quiesce

	lo, hi   int
	ptr      []int32   // scan cursor into the (ascending) adjacency row
	state    []uint8
	mate     []int64   // global partner id, or -1
	deferred [][]int64 // proposer ids parked at a pending target

	unsettled int64 // owned vertices not yet matched or exhausted
	work      []int32
	epochs    int
	sent      int64
	recvd     int64
	kind      [4]int64 // cumulative pushes by context (mxPropose..mxAccept)
	nmatched  int64
}

func newMxEngine(c *mpi.Comm, l *distgraph.Local, tr transport.Sender, q *mpi.Quiesce) *mxEngine {
	g := l.Graph()
	nOwned := l.NumOwned()
	e := &mxEngine{
		c: c, l: l, g: g, tr: tr, q: q,
		lo: l.Lo, hi: l.Hi,
		ptr:       make([]int32, nOwned),
		state:     make([]uint8, nOwned),
		mate:      make([]int64, nOwned),
		deferred:  make([][]int64, nOwned),
		unsettled: int64(nOwned),
	}
	for i := range e.mate {
		e.mate[i] = -1
	}
	// Per-vertex protocol state memory (mirrors what an MPI rank holds).
	c.AccountAlloc(int64(nOwned) * (4 + 1 + 8 + 24))
	return e
}

// owns reports whether global vertex v is owned here.
func (e *mxEngine) owns(v int64) bool { return int(v) >= e.lo && int(v) < e.hi }

// push emits a protocol record for the owner of remote vertex x. In
// async mode the record is accounted with the detector *before* it is
// handed to the transport — counting no later than the send is what
// keeps the deficit a safe in-flight bound even when the transport
// parks the record in an aggregation batch.
func (e *mxEngine) push(ctx, x, y int64) {
	e.sent++
	e.kind[ctx]++
	if e.q != nil {
		e.q.NoteSend(1)
	}
	e.tr.Send(e.l.Owner(int(x)), ctx, x, y)
}

// record appends one telemetry row at a driver epoch boundary. The
// columns reuse the round-log schema with the analogous meaning per
// slot: unresolved = unsettled vertices, req = proposals,
// rej = declines, inv = accepts.
func (e *mxEngine) record(log *telemetry.RoundLog, vol []int64) {
	if log == nil {
		return
	}
	log.Append(e.c.Now(), e.unsettled, e.nmatched,
		e.kind[mxPropose], e.kind[mxDecline], e.kind[mxAccept],
		e.c.QueuedBytes(), vol)
}

// setMatched finalizes owned vertex vi with the given partner.
func (e *mxEngine) setMatched(vi int32, mate int64) {
	if e.state[vi] == mxsMatched {
		panic(fmt.Sprintf("matching: rank %d: vertex %d matched twice (%d then %d)",
			e.c.Rank(), int(vi)+e.lo, e.mate[vi], mate))
	}
	if e.state[vi] != mxsExhausted {
		e.unsettled--
	}
	e.state[vi] = mxsMatched
	e.mate[vi] = mate
	e.nmatched++
}

// decline tells proposer d (parked on the declining vertex) to move on.
func (e *mxEngine) decline(d, from int64) {
	if e.owns(d) {
		e.declinedLocal(int32(int(d) - e.lo))
		return
	}
	e.push(mxDecline, d, from)
}

// declineDeferred releases every proposer parked at vi with a decline
// (vi just matched someone else).
func (e *mxEngine) declineDeferred(vi int32) {
	list := e.deferred[vi]
	if len(list) == 0 {
		return
	}
	e.deferred[vi] = nil
	v := int64(int(vi) + e.lo)
	for _, d := range list {
		e.decline(d, v)
	}
}

// acceptDeferred resolves a free vertex that holds parked proposers:
// accept the lowest id (a deterministic local tie-break), decline the
// rest.
func (e *mxEngine) acceptDeferred(vi int32) {
	v := int64(int(vi) + e.lo)
	list := e.deferred[vi]
	e.deferred[vi] = nil
	best := list[0]
	for _, d := range list[1:] {
		if d < best {
			best = d
		}
	}
	e.setMatched(vi, best)
	for _, d := range list {
		if d != best {
			e.decline(d, v)
		}
	}
	if e.owns(best) {
		// The proposer is local and was pending on v: complete its side
		// and release anyone parked on *it*.
		bi := int32(int(best) - e.lo)
		e.setMatched(bi, v)
		e.declineDeferred(bi)
		return
	}
	e.push(mxAccept, best, v)
}

// matchPair matches two owned vertices (the scanning vi and its free
// local target ui).
func (e *mxEngine) matchPair(vi, ui int32) {
	e.setMatched(vi, int64(int(ui)+e.lo))
	e.setMatched(ui, int64(int(vi)+e.lo))
	e.declineDeferred(vi)
	e.declineDeferred(ui)
}

// declinedLocal resumes owned vertex di after the target it was pending
// on turned it down: step past the target, then either resolve with a
// parked proposer or queue the scan to continue.
func (e *mxEngine) declinedLocal(di int32) {
	e.ptr[di]++
	e.state[di] = mxsVirgin
	if len(e.deferred[di]) > 0 {
		e.acceptDeferred(di)
		return
	}
	e.work = append(e.work, di)
}

// advance continues vi's single scan over its adjacency row from the
// parked cursor. Each arc is visited at most once across the whole run:
// the cursor only ever moves forward, parking while a proposal is
// outstanding.
func (e *mxEngine) advance(vi int32) {
	if e.state[vi] != mxsVirgin {
		return // stale work entry: vi got resolved while queued
	}
	v := int(vi) + e.lo
	row := e.g.Neighbors(v)
	for e.ptr[vi] < int32(len(row)) {
		e.c.Compute(1)
		u := int64(row[e.ptr[vi]])
		if u <= int64(v) {
			e.ptr[vi]++ // downward edge: u's scan owns it
			continue
		}
		if e.owns(u) {
			ui := int32(int(u) - e.lo)
			switch e.state[ui] {
			case mxsMatched:
				e.ptr[vi]++
				continue
			case mxsPending:
				e.deferred[ui] = append(e.deferred[ui], int64(v))
				e.state[vi] = mxsPending
				return
			default: // free
				e.matchPair(vi, ui)
				return
			}
		}
		e.state[vi] = mxsPending
		e.push(mxPropose, u, int64(v))
		return
	}
	// Scan exhausted while free.
	if len(e.deferred[vi]) > 0 {
		e.acceptDeferred(vi)
		return
	}
	e.state[vi] = mxsExhausted
	e.unsettled--
}

// handleMessage processes one protocol record targeting owned vertex x
// from remote vertex y.
func (e *mxEngine) handleMessage(ctx, x, y int64) {
	e.c.Compute(1)
	e.recvd++
	if e.q != nil {
		e.q.NoteRecv(1)
	}
	if !e.owns(x) {
		panic(fmt.Sprintf("matching: rank %d received message for vertex %d outside [%d,%d)", e.c.Rank(), x, e.lo, e.hi))
	}
	xi := int32(int(x) - e.lo)
	switch ctx {
	case mxPropose:
		switch e.state[xi] {
		case mxsMatched:
			e.push(mxDecline, y, x)
		case mxsPending:
			e.deferred[xi] = append(e.deferred[xi], y)
		default: // free: accept on the spot
			e.setMatched(xi, y)
			e.push(mxAccept, y, x)
			e.declineDeferred(xi)
		}
	case mxAccept:
		// x was pending on y; y's owner accepted.
		e.setMatched(xi, y)
		e.declineDeferred(xi)
	case mxDecline:
		e.declinedLocal(xi)
	default:
		panic(fmt.Sprintf("matching: unknown message context %d", ctx))
	}
}

// drainWork runs advance for every queued scan-resume request.
func (e *mxEngine) drainWork() {
	for len(e.work) > 0 {
		vi := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		e.advance(vi)
	}
}

// startScan runs the single pass: every owned vertex starts its scan,
// including the cascade of local matches that triggers.
func (e *mxEngine) startScan() {
	for vi := int32(0); vi < int32(e.l.NumOwned()); vi++ {
		e.advance(vi)
		e.drainWork()
	}
}

// writeMates copies this rank's owned mate values into the shared global
// result vector (disjoint ranges per rank, so no synchronization needed).
func (e *mxEngine) writeMates(global []int64) {
	copy(global[e.lo:e.hi], e.mate)
}

// runAsyncMaximal is the barrier-free driver: process arrivals and
// local work; when both run dry, flush anything parked in aggregation
// batches (peers depend on it, and the detector has already counted
// it), give the termination detector a turn, and park until either
// application or detector traffic shows up. No collective appears
// anywhere on the path — termination is detected, not counted.
func runAsyncMaximal(e *mxEngine, t transport.Async, log *telemetry.RoundLog) {
	var vol []int64
	if log != nil {
		vol = volumeOf(t)
	}
	e.startScan()
	e.record(log, vol)
	for {
		progressed := t.Drain(e.handleMessage)
		e.drainWork()
		if progressed {
			e.epochs++
			e.record(log, vol)
			continue
		}
		t.Finish()
		if e.q.Idle() {
			break
		}
		e.q.Block()
		e.epochs++
	}
	e.record(log, vol)
	if e.unsettled != 0 {
		panic(fmt.Sprintf("matching: rank %d: quiescence detected with %d unsettled vertices (false termination)", e.c.Rank(), e.unsettled))
	}
	t.Finish()
}

// runRoundsMaximal is the round-structured baseline for the same
// protocol: rounds of (exchange, process, local work) with a counting
// allreduce deciding termination — the fence sums unsettled vertices
// and the global send/receive imbalance, the latter covering pipelined
// backends that hold records a round in flight.
func runRoundsMaximal(e *mxEngine, t transport.Round, log *telemetry.RoundLog) {
	var vol []int64
	if log != nil {
		vol = volumeOf(t)
	}
	e.startScan()
	e.record(log, vol)
	for {
		t.Exchange(e.handleMessage)
		e.drainWork()
		e.epochs++
		st := e.c.AllreduceInt64(mpi.OpSum, []int64{e.unsettled, e.sent - e.recvd})
		e.record(log, vol)
		if st[0] == 0 && st[1] == 0 {
			t.Finish()
			return
		}
	}
}

// barrierRound adapts an async (point-to-point) backend to the Round
// driver: flush, fence, deliver. This is the round-structured NSR
// baseline the async engine is measured against — identical transport
// and protocol, with a barrier plus counting allreduce per round
// instead of termination detection.
type barrierRound struct {
	a transport.Async
	c *mpi.Comm
}

func (t *barrierRound) Send(dst int, ctx, x, y int64) { t.a.Send(dst, ctx, x, y) }

func (t *barrierRound) Exchange(h transport.Handler) int {
	t.a.Finish()  // every record of this round is on the wire...
	t.c.Barrier() // ...and, after the fence, in its destination mailbox
	n := 0
	t.a.Drain(func(ctx, x, y int64) { n++; h(ctx, x, y) })
	return n
}

func (t *barrierRound) Finish() { t.a.Finish() }

func (t *barrierRound) VolumeByDest() []int64 {
	if v, ok := t.a.(transport.Volumer); ok {
		return v.VolumeByDest()
	}
	return nil
}

// runMaximal executes the maximal-matching engine under opt, mirroring
// Run's plumbing (distribution, transports, telemetry, result
// assembly). Async-flavor models run barrier-free with a quiescence
// detector unless ForceRounds pins them to the barrierRound baseline;
// round-flavor models always use the counting fence.
func runMaximal(g *graph.CSR, opt Options) (*ParallelResult, error) {
	d := distgraph.NewBlockDist(g, opt.Procs)
	mates := make([]int64, g.NumVertices())
	epochs := make([]int, opt.Procs)
	sent := make([]int64, opt.Procs)
	var logs []*telemetry.RoundLog
	if opt.RoundLog > 0 {
		logs = make([]*telemetry.RoundLog, opt.Procs)
	}

	rep, err := mpi.Run(opt.Procs, func(c *mpi.Comm) error {
		l := d.BuildLocal(c.Rank())
		var log *telemetry.RoundLog
		if logs != nil {
			log = telemetry.NewRoundLog(opt.RoundLog, opt.Procs)
			log.SetTotal(int64(l.NumOwned()))
			logs[c.Rank()] = log
		}
		t, err := transport.New(opt.Model, transport.Deps{
			Comm:      c,
			Local:     l,
			MaxPerArc: maximalMaxPerArc,
			AggBatch:  aggBatchRecords,
		})
		if err != nil {
			return fmt.Errorf("matching: %w", err)
		}
		async := opt.Model.Flavor() == transport.FlavorAsync && !opt.ForceRounds
		var q *mpi.Quiesce
		if async {
			q = mpi.NewQuiesce(c)
		}
		e := newMxEngine(c, l, t, q)
		switch {
		case async:
			runAsyncMaximal(e, t.(transport.Async), log)
		case opt.Model.Flavor() == transport.FlavorAsync:
			runRoundsMaximal(e, &barrierRound{a: t.(transport.Async), c: c}, log)
		default:
			runRoundsMaximal(e, t.(transport.Round), log)
		}
		transport.Release(t)
		e.writeMates(mates)
		epochs[c.Rank()] = e.epochs
		sent[c.Rank()] = e.sent
		return nil
	}, mpiOptions(opt.Cost, opt.TrackMatrices, opt.Deadline, opt.TraceWaits, opt.TraceEvents, opt.PerturbSeed, opt.Perturb)...)
	if err != nil {
		return nil, err
	}

	mate := make([]int, len(mates))
	for i, m := range mates {
		mate[i] = int(m)
	}
	pr := &ParallelResult{
		Result: NewResult(g, mate),
		Report: rep,
		Dist:   d,
	}
	if logs != nil {
		pr.Telemetry = telemetry.Merge(logs)
	}
	for r := 0; r < opt.Procs; r++ {
		if epochs[r] > pr.Rounds {
			pr.Rounds = epochs[r]
		}
		pr.Messages += sent[r]
	}
	return pr, nil
}
