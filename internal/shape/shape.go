// Package shape turns the qualitative claims of the paper's evaluation
// (§V: which communication model wins on which input family, and why)
// into executable assertions over the harness's machine-readable run
// records. Each Check names one claim from EXPERIMENTS.md, the artifact
// (experiment id) whose records it reads, and a Verify predicate; the
// env-gated TestPaperShapes regenerates each artifact once at reduced
// scale and evaluates every check against it (`make tier2`).
//
// The checks assert orderings and trends — "RMA beats NSR", "the gap
// widens with p", "the unresolved count drains monotonically" — never
// absolute times, so they are stable across cost-model tweaks and
// machine speeds while still catching regressions that flip a
// conclusion of the paper.
package shape

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/harness"
	"repro/internal/metrics"
)

// ParseScale interprets the SHAPE_SCALE environment value: empty means
// the default, anything else must be a finite positive float. The two
// failure modes get distinct messages — an unparseable string and a
// parseable-but-useless scale (zero, negative, NaN, infinite) fail
// differently so the operator knows whether to fix syntax or value.
// Silent fallback to the default is exactly what this exists to prevent.
func ParseScale(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("SHAPE_SCALE=%q is not a number: %v (use a float like 0.5)", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 0, fmt.Errorf("SHAPE_SCALE=%q must be a finite positive scale factor, got %v", s, v)
	}
	return v, nil
}

// Check is one executable paper claim.
type Check struct {
	// ID is the stable identifier EXPERIMENTS.md references.
	ID string
	// Artifact is the harness experiment whose records the check reads.
	Artifact string
	// Claim states the qualitative shape being asserted.
	Claim string
	// Verify evaluates the claim against the artifact's record.
	Verify func(rec *harness.ExperimentRecord) error
}

// Checks returns the full shape-regression suite.
func Checks() []Check {
	return []Check{
		{
			ID:       "fig4a-ncl-rma-beat-nsr",
			Artifact: "fig4a",
			Claim:    "on RGG weak scaling both NCL and RMA beat NSR at the largest process count (paper: 2-3.5x)",
			Verify: func(rec *harness.ExperimentRecord) error {
				p, err := largestProcs(rec, "rgg-weak")
				if err != nil {
					return err
				}
				return fasterThan(rec, "rgg-weak", p, "NSR", "RMA", "NCL")
			},
		},
		{
			ID:       "fig4a-gap-widens",
			Artifact: "fig4a",
			Claim:    "the RMA and NCL advantage over NSR on RGG grows with the process count",
			Verify: func(rec *harness.ExperimentRecord) error {
				ps, err := allProcs(rec, "rgg-weak")
				if err != nil {
					return err
				}
				lo, hi := ps[0], ps[len(ps)-1]
				for _, m := range []string{"RMA", "NCL"} {
					slo, err := speedupOverNSR(rec, "rgg-weak", m, lo)
					if err != nil {
						return err
					}
					shi, err := speedupOverNSR(rec, "rgg-weak", m, hi)
					if err != nil {
						return err
					}
					if shi <= slo {
						return fmt.Errorf("%s/NSR speedup shrank with p: %.2fx at p=%d vs %.2fx at p=%d", m, slo, lo, shi, hi)
					}
				}
				return nil
			},
		},
		{
			ID:       "fig4a-protocol-drains",
			Artifact: "fig4a",
			Claim:    "the matching protocol converges: every run's unresolved cross-edge count is non-increasing and reaches zero",
			Verify: func(rec *harness.ExperimentRecord) error {
				checked := 0
				for _, r := range rec.Runs {
					if len(r.RoundSeries) == 0 {
						continue
					}
					checked++
					if r.TelemetryDrops > 0 {
						return fmt.Errorf("%s: %d telemetry rows dropped (capacity too small for the gate)", r.Label, r.TelemetryDrops)
					}
					prev := r.RoundSeries[0].Unresolved
					for _, p := range r.RoundSeries[1:] {
						if p.Unresolved > prev {
							return fmt.Errorf("%s: unresolved grew %d -> %d at round %d", r.Label, prev, p.Unresolved, p.Round)
						}
						prev = p.Unresolved
					}
					if last := r.RoundSeries[len(r.RoundSeries)-1]; last.Unresolved != 0 {
						return fmt.Errorf("%s: final unresolved = %d, want 0", r.Label, last.Unresolved)
					} else if last.DoneFrac <= 0 {
						return fmt.Errorf("%s: final done fraction = %v, want > 0", r.Label, last.DoneFrac)
					}
				}
				if checked == 0 {
					return fmt.Errorf("no run carried a round series (was telemetry enabled?)")
				}
				return nil
			},
		},
		{
			ID:       "fig4c-nsr-wins",
			Artifact: "fig4c",
			Claim:    "on the near-complete SBP process graph NSR beats both neighborhood models at the largest process count (paper: 1.5-2.7x)",
			Verify: func(rec *harness.ExperimentRecord) error {
				p, err := largestProcs(rec, "sbp-weak")
				if err != nil {
					return err
				}
				nsr, err := runTime(rec, "sbp-weak", "NSR", p)
				if err != nil {
					return err
				}
				for _, m := range []string{"RMA", "NCL"} {
					t, err := runTime(rec, "sbp-weak", m, p)
					if err != nil {
						return err
					}
					if t <= nsr {
						return fmt.Errorf("%s (%.3gs) not slower than NSR (%.3gs) at p=%d", m, t, nsr, p)
					}
				}
				return nil
			},
		},
		{
			ID:       "fig4c-termination-collectives",
			Artifact: "fig4c",
			Claim:    "the neighborhood models pay a per-round global exit reduction (§V-D): their collective-operation counts exceed NSR's",
			Verify: func(rec *harness.ExperimentRecord) error {
				p, err := largestProcs(rec, "sbp-weak")
				if err != nil {
					return err
				}
				nsr, err := findRun(rec, "sbp-weak", "NSR", p)
				if err != nil {
					return err
				}
				for _, m := range []string{"RMA", "NCL"} {
					r, err := findRun(rec, "sbp-weak", m, p)
					if err != nil {
						return err
					}
					if r.CollOps <= nsr.CollOps {
						return fmt.Errorf("%s coll_ops=%d not above NSR's %d at p=%d", m, r.CollOps, nsr.CollOps, p)
					}
				}
				return nil
			},
		},
		{
			ID:       "fig5-rma-wins-v1r",
			Artifact: "fig5",
			Claim:    "RMA beats NSR on the largest protein k-mer input (V1r) at every process count (paper: 25-35% up to 2-3x)",
			Verify: func(rec *harness.ExperimentRecord) error {
				ps, err := allProcs(rec, "V1r")
				if err != nil {
					return err
				}
				for _, p := range ps {
					if err := fasterThan(rec, "V1r", p, "NSR", "RMA"); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID:       "fig6-ncl-degrades",
			Artifact: "fig6",
			Claim:    "NCL's advantage over NSR on the Friendster analogue shrinks as p grows (denser process graph; paper Table IV)",
			Verify: func(rec *harness.ExperimentRecord) error {
				ps, err := allProcs(rec, "Friendster-analogue")
				if err != nil {
					return err
				}
				lo, hi := ps[0], ps[len(ps)-1]
				slo, err := speedupOverNSR(rec, "Friendster-analogue", "NCL", lo)
				if err != nil {
					return err
				}
				shi, err := speedupOverNSR(rec, "Friendster-analogue", "NCL", hi)
				if err != nil {
					return err
				}
				if shi >= slo {
					return fmt.Errorf("NCL/NSR speedup did not degrade: %.2fx at p=%d vs %.2fx at p=%d", slo, lo, shi, hi)
				}
				return nil
			},
		},
		{
			ID:       "fig8-rcm-flip",
			Artifact: "fig8",
			Claim:    "RCM reordering flips the meshes to the neighborhood models: NCL or RMA beats NSR on every reordered input (paper: 2-5x)",
			Verify: func(rec *harness.ExperimentRecord) error {
				for _, input := range []string{"cage15(RCM)", "hv15r(RCM)"} {
					ps, err := allProcs(rec, input)
					if err != nil {
						return err
					}
					for _, p := range ps {
						nsr, err := runTime(rec, input, "NSR", p)
						if err != nil {
							return err
						}
						rma, err := runTime(rec, input, "RMA", p)
						if err != nil {
							return err
						}
						ncl, err := runTime(rec, input, "NCL", p)
						if err != nil {
							return err
						}
						if rma >= nsr && ncl >= nsr {
							return fmt.Errorf("%s p=%d: neither RMA (%.3gs) nor NCL (%.3gs) beats NSR (%.3gs)", input, p, rma, ncl, nsr)
						}
					}
				}
				return nil
			},
		},
		{
			ID:       "fig8-mbp-slowest",
			Artifact: "fig8",
			Claim:    "synchronous batched sends (MBP) are the slowest implementation on the reordered meshes (paper: NSR 1.2-2x, NCL/RMA 2.5-7x over MBP)",
			Verify: func(rec *harness.ExperimentRecord) error {
				for _, input := range []string{"cage15(RCM)", "hv15r(RCM)"} {
					ps, err := allProcs(rec, input)
					if err != nil {
						return err
					}
					for _, p := range ps {
						mbp, err := runTime(rec, input, "MBP", p)
						if err != nil {
							return err
						}
						for _, m := range []string{"NSR", "RMA", "NCL"} {
							t, err := runTime(rec, input, m, p)
							if err != nil {
								return err
							}
							if t >= mbp {
								return fmt.Errorf("%s p=%d: %s (%.3gs) not faster than MBP (%.3gs)", input, p, m, t, mbp)
							}
						}
					}
				}
				return nil
			},
		},
		{
			ID:       "fig10-rma-ncl-dominate",
			Artifact: "fig10",
			Claim:    "over the whole input suite the neighborhood models' performance profiles dominate NSR's (paper: RMA area 0.82, NCL 0.79, NSR 0.49)",
			Verify: func(rec *harness.ExperimentRecord) error {
				// Recompute the profile curves from the raw run records
				// rather than parsing the rendered table.
				times := map[string][]float64{"NSR": nil, "RMA": nil, "NCL": nil}
				type key struct {
					input string
					p     int
				}
				byConfig := map[key]map[string]float64{}
				for _, r := range rec.Runs {
					k := key{r.Input, r.Procs}
					if byConfig[k] == nil {
						byConfig[k] = map[string]float64{}
					}
					byConfig[k][r.Model] = r.TimeSec
				}
				for k, ms := range byConfig {
					for m := range times {
						t, ok := ms[m]
						if !ok {
							return fmt.Errorf("config %s p=%d missing model %s", k.input, k.p, m)
						}
						times[m] = append(times[m], t)
					}
				}
				curves, err := metrics.Profiles(times)
				if err != nil {
					return err
				}
				area := map[string]float64{}
				for _, c := range curves {
					area[c.Name] = c.AreaScore(4)
				}
				for _, m := range []string{"RMA", "NCL"} {
					if area[m] <= area["NSR"] {
						return fmt.Errorf("%s profile area %.3f does not dominate NSR's %.3f", m, area[m], area["NSR"])
					}
				}
				return nil
			},
		},
		{
			ID:       "ext-density-nclc-crossover",
			Artifact: "ext-density",
			Claim:    "message combining crosses over with process-graph density: NCLC matches plain NCL on a sparse ring band (direct fallback) and strictly beats it once the process graph is near-complete (Träff-style combined bundles amortize the per-neighbor transfers NCL pays individually)",
			Verify: func(rec *harness.ExperimentRecord) error {
				p, err := largestProcs(rec, "density-b1")
				if err != nil {
					return err
				}
				// Sparse end: the collective mode decision must have picked
				// the direct fallback, so NCLC tracks NCL within noise (its
				// only extra cost is the one mode-decision allreduce).
				ncl, err := runTime(rec, "density-b1", "NCL", p)
				if err != nil {
					return err
				}
				nclc, err := runTime(rec, "density-b1", "NCLC", p)
				if err != nil {
					return err
				}
				if nclc > 1.15*ncl {
					return fmt.Errorf("density-b1 p=%d: NCLC (%.3gs) more than 15%% over NCL (%.3gs) — direct fallback not engaged?", p, nclc, ncl)
				}
				// Dense end: combining must win outright.
				return fasterThan(rec, "density-b8", p, "NCL", "NCLC")
			},
		},
		{
			ID:       "ext-async-beats-rounds",
			Artifact: "ext-async",
			Claim:    "the asynchronous maximal engine is sound and pays off: every configuration's matching verified maximal (a detector false termination would strand a free-free edge and fail the row), and on the straggler-skewed input the barrier-free NSR driver strictly beats the same protocol round-fenced",
			Verify: func(rec *harness.ExperimentRecord) error {
				// Soundness: the experiment verifies maximality inline and
				// stamps each row; every input must be present and stamped.
				inputs := []string{"mx-rgg", "mx-sbp", "mx-skew"}
				if len(rec.Tables) == 0 {
					return fmt.Errorf("ext-async produced no table")
				}
				t := rec.Tables[0]
				stamped := map[string]bool{}
				for _, row := range t.Rows {
					if len(row) > 0 && row[len(row)-1] == "ok" {
						stamped[row[0]] = true
					}
				}
				for _, in := range inputs {
					if !stamped[in] {
						return fmt.Errorf("input %s missing its verified-maximal stamp", in)
					}
				}
				// Performance: detected termination beats counted termination
				// where the round fence makes every rank pay the dense
				// rank's epoch time.
				p, err := largestProcs(rec, "mx-skew")
				if err != nil {
					return err
				}
				for _, in := range inputs {
					if _, err := runTime(rec, in, "NSRA", p); err != nil {
						return err
					}
				}
				return fasterThan(rec, "mx-skew", p, "NSR-rounds", "NSR")
			},
		},
		{
			ID:       "fig4c-wait-attribution",
			Artifact: "fig4c",
			Claim:    "the trace analyzer attributes each model's blocked time to its §V-D mechanism on SBP: NSR waits are >=50% late-sender with named causing ranks, the neighborhood models eliminate late-sender waiting entirely (their blocked time sits at the exchange and the round-termination collective), the fence class appears only under RMA, and every critical path tiles the run exactly",
			Verify: func(rec *harness.ExperimentRecord) error {
				p, err := largestProcs(rec, "sbp-weak")
				if err != nil {
					return err
				}
				nsr, err := findRun(rec, "sbp-weak", "NSR", p)
				if err != nil {
					return err
				}
				ncl, err := findRun(rec, "sbp-weak", "NCL", p)
				if err != nil {
					return err
				}
				rma, err := findRun(rec, "sbp-weak", "RMA", p)
				if err != nil {
					return err
				}
				for _, r := range []*harness.RunRecord{nsr, ncl, rma} {
					if r.Analysis == nil {
						return fmt.Errorf("%s: no embedded analysis (was Config.Analyze on?)", r.Label)
					}
					if r.Analysis.CriticalPath.LengthSec != r.TimeSec {
						return fmt.Errorf("%s: critical path %.6gs does not tile the run's %.6gs",
							r.Label, r.Analysis.CriticalPath.LengthSec, r.TimeSec)
					}
				}
				// NSR: the async Send-Recv driver blocks on user messages
				// still in flight.
				ls := nsr.Analysis.WaitState(analysis.ClassLateSender)
				if ls == nil || ls.Share < 0.5 {
					return fmt.Errorf("NSR p=%d: late_sender share %v, want >= 0.5", p, shareOf(ls))
				}
				if len(ls.TopCauses) == 0 {
					return fmt.Errorf("NSR p=%d: late_sender has no named causing ranks", p)
				}
				// NCL: no user p2p at all, so late-sender waiting vanishes;
				// the blocked time is neighborhood-exchange chunks plus the
				// per-round exit reduction.
				if s := ncl.Analysis.WaitState(analysis.ClassLateSender); s != nil && s.Share > 0.01 {
					return fmt.Errorf("NCL p=%d: late_sender share %v, want ~0 (no user p2p)", p, s.Share)
				}
				ex := ncl.Analysis.WaitState(analysis.ClassExchange)
				coll := ncl.Analysis.WaitState(analysis.ClassCollective)
				if ex == nil || ex.Seconds <= 0 {
					return fmt.Errorf("NCL p=%d: no wait_at_exchange time", p)
				}
				if shareOf(ex)+shareOf(coll) < 0.95 {
					return fmt.Errorf("NCL p=%d: exchange+collective share %.3f, want >= 0.95",
						p, shareOf(ex)+shareOf(coll))
				}
				// RMA: the same exchange wait is the fence analogue and must
				// be relabeled — the class exists only under RMA.
				if rma.Analysis.WaitState(analysis.ClassExchange) != nil {
					return fmt.Errorf("RMA p=%d: still reports wait_at_exchange (fence relabel missing)", p)
				}
				fence := rma.Analysis.WaitState(analysis.ClassFence)
				if fence == nil || fence.Seconds <= 0 {
					return fmt.Errorf("RMA p=%d: no wait_at_fence time", p)
				}
				if nclFence := ncl.Analysis.WaitState(analysis.ClassFence); nclFence != nil {
					return fmt.Errorf("NCL p=%d: reports wait_at_fence (%v s) — class must be RMA-only",
						p, nclFence.Seconds)
				}
				return nil
			},
		},
		{
			ID:       "tab8-ncl-lowest-memory",
			Artifact: "tab8",
			Claim:    "NCL has the lowest high-water memory on the social input: no unexpected-message queues, no window mirrors (paper: 1.03-2.3x below NSR)",
			Verify: func(rec *harness.ExperimentRecord) error {
				ncl, err := findRun(rec, "friendster-analogue", "NCL", 0)
				if err != nil {
					return err
				}
				for _, m := range []string{"NSR", "RMA"} {
					r, err := findRun(rec, "friendster-analogue", m, 0)
					if err != nil {
						return err
					}
					if r.MaxMemoryBytes <= ncl.MaxMemoryBytes {
						return fmt.Errorf("%s high-water memory %d B not above NCL's %d B", m, r.MaxMemoryBytes, ncl.MaxMemoryBytes)
					}
				}
				return nil
			},
		},
	}
}

// findRun returns the (last) run matching input/model/procs; zero procs
// matches any process count.
func findRun(rec *harness.ExperimentRecord, input, model string, procs int) (*harness.RunRecord, error) {
	rs := rec.FindRuns(input, model, procs)
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no run with input=%q model=%q procs=%d", rec.ID, input, model, procs)
	}
	return &rs[len(rs)-1], nil
}

// runTime returns the virtual time of the matching run.
func runTime(rec *harness.ExperimentRecord, input, model string, procs int) (float64, error) {
	r, err := findRun(rec, input, model, procs)
	if err != nil {
		return 0, err
	}
	return r.TimeSec, nil
}

// allProcs returns the sorted distinct process counts the artifact ran
// the given input on.
func allProcs(rec *harness.ExperimentRecord, input string) ([]int, error) {
	seen := map[int]bool{}
	for _, r := range rec.FindRuns(input, "", 0) {
		seen[r.Procs] = true
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("%s: no runs for input %q", rec.ID, input)
	}
	ps := make([]int, 0, len(seen))
	for p := range seen {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps, nil
}

func largestProcs(rec *harness.ExperimentRecord, input string) (int, error) {
	ps, err := allProcs(rec, input)
	if err != nil {
		return 0, err
	}
	return ps[len(ps)-1], nil
}

// speedupOverNSR returns time(NSR)/time(model) for one configuration.
func speedupOverNSR(rec *harness.ExperimentRecord, input, model string, procs int) (float64, error) {
	nsr, err := runTime(rec, input, "NSR", procs)
	if err != nil {
		return 0, err
	}
	t, err := runTime(rec, input, model, procs)
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, fmt.Errorf("%s %s p=%d: non-positive time %v", input, model, procs, t)
	}
	return nsr / t, nil
}

// shareOf reads a wait state's share of the blocked total, treating an
// absent class as zero so ordering assertions stay total.
func shareOf(ws *analysis.WaitState) float64 {
	if ws == nil {
		return 0
	}
	return ws.Share
}

// fasterThan asserts every challenger model strictly beats the baseline
// model on (input, procs).
func fasterThan(rec *harness.ExperimentRecord, input string, procs int, baseline string, challengers ...string) error {
	base, err := runTime(rec, input, baseline, procs)
	if err != nil {
		return err
	}
	for _, m := range challengers {
		t, err := runTime(rec, input, m, procs)
		if err != nil {
			return err
		}
		if t >= base {
			return fmt.Errorf("%s p=%d: %s (%.3gs) not faster than %s (%.3gs)", input, procs, m, t, baseline, base)
		}
	}
	return nil
}
