package shape

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestParseScale pins the SHAPE_SCALE contract: empty selects the
// default, valid positive floats pass through, and both failure modes
// (unparseable, and parseable-but-non-positive/non-finite) fail with a
// message naming the offending value — never a silent default fallback.
func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    float64
		wantErr string // substring of the error, "" = success
	}{
		{"", 0.5, ""},
		{"1", 1, ""},
		{"0.25", 0.25, ""},
		{"2e0", 2, ""},
		{"half", 0, "not a number"},
		{"0.5x", 0, "not a number"},
		{"", 0.5, ""},
		{"0", 0, "finite positive"},
		{"-1", 0, "finite positive"},
		{"NaN", 0, "finite positive"},
		{"+Inf", 0, "finite positive"},
	} {
		got, err := ParseScale(tc.in, 0.5)
		if tc.wantErr == "" {
			if err != nil || got != tc.want {
				t.Errorf("ParseScale(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseScale(%q) = %v, nil; want error containing %q", tc.in, got, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), tc.in) {
			t.Errorf("ParseScale(%q) error %q; want it to contain %q and name the value", tc.in, err, tc.wantErr)
		}
	}
}

// TestChecksWellFormed is the tier-1 guard over the suite itself: ids
// unique, claims stated, artifacts registered, and at least the six
// checks the regression gate promises.
func TestChecksWellFormed(t *testing.T) {
	checks := Checks()
	if len(checks) < 6 {
		t.Fatalf("suite has %d checks, want >= 6", len(checks))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		if c.ID == "" || c.Claim == "" {
			t.Errorf("check %+v: empty id or claim", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate check id %q", c.ID)
		}
		seen[c.ID] = true
		if harness.Find(c.Artifact) == nil {
			t.Errorf("check %s: unknown artifact %q", c.ID, c.Artifact)
		}
		if c.Verify == nil {
			t.Errorf("check %s: nil Verify", c.ID)
		}
	}
}

// TestPaperShapes is the tier-2 regression gate (`make tier2`): it
// regenerates each referenced artifact once at reduced scale and
// evaluates every qualitative claim of the paper against the run
// records. Gated on RUN_SHAPE_CHECKS because the full pass takes
// minutes, not milliseconds.
//
// Environment:
//
//	RUN_SHAPE_CHECKS=1   enable (otherwise the test skips)
//	SHAPE_SCALE=0.5      workload scale factor (default 0.5)
//	SHAPE_RECORDS=x.json also write the generated records as JSON
func TestPaperShapes(t *testing.T) {
	if os.Getenv("RUN_SHAPE_CHECKS") == "" {
		t.Skip("set RUN_SHAPE_CHECKS=1 (or run `make tier2`) to enable the paper-shape regression gate")
	}
	scale, err := ParseScale(os.Getenv("SHAPE_SCALE"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = scale
	cfg.Rounds = 4096
	// The wait-attribution check reads embedded trace analysis; tracing
	// perturbs no virtual time, so turning it on for every artifact keeps
	// the cache single-keyed.
	cfg.TraceEvents = 1 << 16
	cfg.Analyze = true
	if testing.Verbose() {
		cfg.Out = os.Stderr
	}

	doc := harness.NewDocument("shape-test", scale)
	cache := map[string]*harness.ExperimentRecord{}
	recordOf := func(t *testing.T, id string) *harness.ExperimentRecord {
		if rec, ok := cache[id]; ok {
			return rec
		}
		t.Logf("regenerating %s at scale %g", id, scale)
		rec, err := harness.RunOneRecord(id, cfg, io.Discard)
		if err != nil {
			t.Fatalf("regenerating %s: %v", id, err)
		}
		cache[id] = rec
		doc.Add(rec)
		return rec
	}

	for _, c := range Checks() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			rec := recordOf(t, c.Artifact)
			if err := c.Verify(rec); err != nil {
				t.Errorf("claim %q failed: %v", c.Claim, err)
			}
		})
	}

	if path := os.Getenv("SHAPE_RECORDS"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("SHAPE_RECORDS: %v", err)
		}
		err = doc.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("SHAPE_RECORDS: %v", err)
		}
		t.Logf("wrote %d experiment records to %s", len(doc.Experiments), path)
	}
}
