package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBarrierSynchronizesClocks(t *testing.T) {
	rep, err := runChecked(4, func(c *Comm) error {
		c.Compute(float64(c.Rank()) * 1000) // skew clocks
		c.Barrier()
		// After a barrier, all clocks are (at least) the maximum pre-barrier
		// clock; the slowest rank had ~3000 units.
		min := 3000 * c.Cost().ComputePerUnit
		if c.Now() < min {
			t.Errorf("rank %d clock %g after barrier, want >= %g", c.Rank(), c.Now(), min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
}

func TestAllreduceInt64Ops(t *testing.T) {
	const p = 5
	_, err := runChecked(p, func(c *Comm) error {
		r := int64(c.Rank())
		in := []int64{r + 1, r + 1}
		sum := c.AllreduceInt64(OpSum, in)
		if sum[0] != 15 || sum[1] != 15 {
			t.Errorf("sum = %v, want [15 15]", sum)
		}
		if mx := c.AllreduceInt64(OpMax, in); mx[0] != 5 {
			t.Errorf("max = %v, want 5", mx)
		}
		if mn := c.AllreduceInt64(OpMin, in); mn[0] != 1 {
			t.Errorf("min = %v, want 1", mn)
		}
		if pr := c.AllreduceInt64(OpProd, []int64{r + 1}); pr[0] != 120 {
			t.Errorf("prod = %v, want 120", pr)
		}
		land := c.AllreduceInt64(OpLand, []int64{r}) // rank 0 contributes 0
		if land[0] != 0 {
			t.Errorf("land = %v, want 0", land)
		}
		lor := c.AllreduceInt64(OpLor, []int64{r})
		if lor[0] != 1 {
			t.Errorf("lor = %v, want 1", lor)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat64(t *testing.T) {
	_, err := runChecked(4, func(c *Comm) error {
		v := []float64{float64(c.Rank()) + 0.5}
		sum := c.AllreduceFloat64(OpSum, v)
		if sum[0] != 8.0 { // 0.5+1.5+2.5+3.5
			t.Errorf("sum = %v, want 8", sum)
		}
		mx := c.AllreduceFloat64(OpMax, v)
		if mx[0] != 3.5 {
			t.Errorf("max = %v", mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallInt64(t *testing.T) {
	const p, chunk = 4, 2
	_, err := runChecked(p, func(c *Comm) error {
		send := make([]int64, p*chunk)
		for j := 0; j < p; j++ {
			send[j*chunk] = int64(c.Rank()*100 + j)
			send[j*chunk+1] = -1
		}
		got := c.AlltoallInt64(send, chunk)
		for j := 0; j < p; j++ {
			want := int64(j*100 + c.Rank())
			if got[j*chunk] != want {
				t.Errorf("rank %d slot %d = %d, want %d", c.Rank(), j, got[j*chunk], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvInt64RoundTrip(t *testing.T) {
	// Property: alltoallv followed by alltoallv of the received data (sent
	// back to the source) returns the original vectors.
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 1))
		send := make([][]int64, p)
		for j := range send {
			send[j] = make([]int64, rng.Intn(5))
			for k := range send[j] {
				send[j][k] = rng.Int63()
			}
		}
		got := c.AlltoallvInt64(send)
		back := c.AlltoallvInt64(got)
		for j := range send {
			if len(back[j]) != len(send[j]) {
				t.Errorf("rank %d: round trip to %d changed length %d -> %d", c.Rank(), j, len(send[j]), len(back[j]))
				continue
			}
			for k := range send[j] {
				if back[j][k] != send[j][k] {
					t.Errorf("rank %d: round trip corrupted element", c.Rank())
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBcastGatherReduce(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		all := c.AllgatherInt64([]int64{int64(c.Rank() * 2)})
		for r := 0; r < p; r++ {
			if all[r][0] != int64(r*2) {
				t.Errorf("allgather[%d] = %v", r, all[r])
			}
		}
		var payload []int64
		if c.Rank() == 2 {
			payload = []int64{7, 8, 9}
		}
		b := c.BcastInt64(2, payload)
		if len(b) != 3 || b[2] != 9 {
			t.Errorf("bcast got %v", b)
		}
		g := c.GatherInt64(1, []int64{int64(c.Rank())})
		if c.Rank() == 1 {
			for r := 0; r < p; r++ {
				if g[r][0] != int64(r) {
					t.Errorf("gather[%d] = %v", r, g[r])
				}
			}
		} else if g != nil {
			t.Error("non-root gather result should be nil")
		}
		red := c.ReduceInt64(0, OpSum, []int64{1})
		if c.Rank() == 0 && red[0] != p {
			t.Errorf("reduce = %v, want %d", red, p)
		}
		if c.Rank() != 0 && red != nil {
			t.Error("non-root reduce result should be nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMatchesLocalFoldQuick(t *testing.T) {
	// Property: for random vectors, Allreduce(sum) equals the serial fold.
	f := func(seed int64, width uint8) bool {
		p := 3
		w := int(width%8) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]int64, p)
		for r := range inputs {
			inputs[r] = make([]int64, w)
			for i := range inputs[r] {
				inputs[r][i] = rng.Int63n(1 << 30)
			}
		}
		want := make([]int64, w)
		for _, in := range inputs {
			for i, v := range in {
				want[i] += v
			}
		}
		ok := true
		_, err := runChecked(p, func(c *Comm) error {
			got := c.AllreduceInt64(OpSum, inputs[c.Rank()])
			for i := range want {
				if got[i] != want[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveDeterministicAcrossRanks(t *testing.T) {
	// Float reductions fold in rank order everywhere, so all ranks get
	// bit-identical results.
	const p = 6
	_, err := runChecked(p, func(c *Comm) error {
		in := []float64{0.1 * float64(c.Rank()+1)}
		out := c.AllreduceFloat64(OpSum, in)
		all := c.AllgatherInt64([]int64{int64(floatBits(out[0]))})
		for r := 1; r < p; r++ {
			if all[r][0] != all[0][0] {
				t.Error("float allreduce result differs between ranks")
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func floatBits(f float64) uint64 {
	return math.Float64bits(f)
}
