package mpi

import (
	"testing"
	"time"
)

// Steady-state allocation contracts for the hot path: after warmup the
// pooled-message runtime must complete point-to-point round trips and
// scalar reductions without touching the heap. testing.AllocsPerRun
// calls its body runs+1 times with GOMAXPROCS(1) and counts mallocs
// process-wide, so the measuring rank's peer executes exactly runs+1
// matching iterations (themselves allocation-free in steady state).

func TestRoundTripZeroAlloc(t *testing.T) {
	const runs = 100
	_, err := RunChecked(2, func(c *Comm) error {
		sbuf := [3]int64{1, 2, 3}
		var rbuf [3]int64
		peer := 1 - c.Rank()
		roundTrip := func() {
			c.Isend(peer, 0, sbuf[:])
			c.RecvInto(peer, 0, rbuf[:])
		}
		// Warm the message pool and the mailbox index rings.
		for i := 0; i < 16; i++ {
			roundTrip()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, roundTrip); avg != 0 {
				t.Errorf("3-word Isend/RecvInto round trip: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				roundTrip()
			}
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceScalarZeroAlloc(t *testing.T) {
	const runs = 100
	_, err := RunChecked(2, func(c *Comm) error {
		reduce := func() {
			if got := c.AllreduceScalarInt64(OpSum, int64(c.Rank()+1)); got != 3 {
				t.Errorf("scalar allreduce = %d, want 3", got)
			}
		}
		for i := 0; i < 4; i++ {
			reduce()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, reduce); avg != 0 {
				t.Errorf("AllreduceScalarInt64: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				reduce()
			}
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}
