package mpi

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// eventRun runs body with event tracing at the given ring capacity.
func eventRun(p, capacity int, body func(c *Comm) error) (*Report, error) {
	return Run(p, body, WithEventTrace(capacity), WithDeadline(30*time.Second))
}

// checkEventOrdering asserts the per-rank trace invariants: nonnegative
// spans, Start <= End, and completion (End) times nondecreasing in
// recorded order — the ring records events as they complete.
func checkEventOrdering(t *testing.T, rep *Report) {
	t.Helper()
	for rank := 0; rank < rep.Procs; rank++ {
		prev := 0.0
		for i, e := range rep.Events(rank) {
			if e.Start < 0 || e.End < e.Start {
				t.Errorf("rank %d event %d (%v): span [%g, %g] invalid", rank, i, e.Kind, e.Start, e.End)
			}
			if e.End < prev {
				t.Errorf("rank %d event %d (%v): End %g before previous %g", rank, i, e.Kind, e.End, prev)
			}
			prev = e.End
		}
	}
}

func TestEventsDisabledByDefault(t *testing.T) {
	rep, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 0, []int64{1})
		} else {
			c.Recv(0, 0)
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		if ev := rep.Events(rank); ev != nil {
			t.Errorf("rank %d has %d events without WithEventTrace", rank, len(ev))
		}
		if d := rep.EventDrops(rank); d != 0 {
			t.Errorf("rank %d reports %d drops without WithEventTrace", rank, d)
		}
	}
}

// TestEventOrderingProperty drives an all-to-all exchange plus
// collectives at several rank counts and checks the trace invariants:
// per-rank nondecreasing completion times, and byte agreement between
// every matched send/recv pair.
func TestEventOrderingProperty(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		rep, err := eventRun(p, 4096, func(c *Comm) error {
			// Stagger compute so ranks hit the exchange at different
			// virtual times (forces genuine waits).
			c.Compute(float64(1000 * c.Rank()))
			for d := 0; d < p; d++ {
				if d != c.Rank() {
					// Payload size encodes the sender so byte matching is
					// nontrivial.
					c.Isend(d, 5, make([]int64, c.Rank()+1))
				}
			}
			for i := 0; i < p-1; i++ {
				c.Recv(AnySource, 5)
			}
			c.Barrier()
			c.AllreduceScalarInt64(OpSum, int64(c.Rank()))
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkEventOrdering(t, rep)

		// Matched pairs agree on bytes: for every ordered (sender,
		// receiver) pair the multiset of sent sizes equals the multiset
		// of received sizes.
		type pair struct{ s, r int }
		sent := map[pair][]int64{}
		recvd := map[pair][]int64{}
		var sends, recvs, colls int
		for rank := 0; rank < p; rank++ {
			for _, e := range rep.Events(rank) {
				switch e.Kind {
				case EvSend:
					sent[pair{rank, e.Peer}] = append(sent[pair{rank, e.Peer}], e.Bytes)
					sends++
				case EvRecv:
					recvd[pair{e.Peer, rank}] = append(recvd[pair{e.Peer, rank}], e.Bytes)
					recvs++
				case EvColl:
					colls++
				}
			}
			if d := rep.EventDrops(rank); d != 0 {
				t.Errorf("p=%d rank %d dropped %d events with ample capacity", p, rank, d)
			}
		}
		if want := p * (p - 1); sends != want || recvs != want {
			t.Errorf("p=%d: %d sends / %d recvs traced, want %d each", p, sends, recvs, want)
		}
		if want := 2 * p; colls != want {
			t.Errorf("p=%d: %d collective events, want %d (barrier + allreduce per rank)", p, colls, want)
		}
		for pr, s := range sent {
			r := recvd[pr]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
			if fmt.Sprint(s) != fmt.Sprint(r) {
				t.Errorf("p=%d pair %v: sent bytes %v != received bytes %v", p, pr, s, r)
			}
		}
	}
}

// TestEventRingBounded checks the overflow contract: a full ring drops
// new events (the trace is a prefix of the run) and counts them.
func TestEventRingBounded(t *testing.T) {
	const capacity, msgs = 4, 20
	rep, err := eventRun(2, capacity, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Isend(1, 0, []int64{int64(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				c.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkEventOrdering(t, rep)
	for rank := 0; rank < 2; rank++ {
		n, d := len(rep.Events(rank)), rep.EventDrops(rank)
		if n != capacity {
			t.Errorf("rank %d retained %d events, want ring capacity %d", rank, n, capacity)
		}
		if d <= 0 {
			t.Errorf("rank %d drop counter = %d, want > 0", rank, d)
		}
		if int64(n)+d < msgs {
			t.Errorf("rank %d: retained %d + dropped %d < %d primitives", rank, n, d, msgs)
		}
	}
}

// TestRMAAndNeighborhoodEvents checks the one-sided and neighborhood
// primitives land in the trace with their categories and byte counts.
func TestRMAAndNeighborhoodEvents(t *testing.T) {
	rep, err := eventRun(2, 256, func(c *Comm) error {
		win := c.WinCreate(64)
		win.LockAll()
		if c.Rank() == 0 {
			win.Put(1, 0, []int64{1, 2, 3, 4}) // 32 bytes
		}
		win.FlushAll()
		c.Barrier()
		win.UnlockAll()
		win.Free()

		topo := c.CreateGraphTopo([]int{1 - c.Rank()})
		topo.NeighborAlltoallvInt64([][]int64{{int64(c.Rank()), 7}}) // 16 bytes out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkEventOrdering(t, rep)
	var put, flush, nbr *Event
	for _, e := range rep.Events(0) {
		e := e
		switch e.Kind {
		case EvPut:
			put = &e
		case EvFlush:
			if flush == nil { // UnlockAll flushes again, with nothing pending
				flush = &e
			}
		case EvNbrColl:
			nbr = &e
		}
	}
	if put == nil || put.Bytes != 32 || put.Peer != 1 {
		t.Errorf("put event = %+v, want 32 bytes to peer 1", put)
	}
	if put != nil && put.Kind.Category() != "rma" {
		t.Errorf("put category = %q, want rma", put.Kind.Category())
	}
	if flush == nil || flush.Bytes != 32 {
		t.Errorf("flush event = %+v, want 32 drained bytes", flush)
	}
	if nbr == nil || nbr.Bytes != 16 {
		t.Errorf("neighborhood event = %+v, want 16 sent bytes", nbr)
	}
	if nbr != nil && nbr.Kind.Category() != "nbr" {
		t.Errorf("neighborhood category = %q, want nbr", nbr.Kind.Category())
	}
}

// TestTracedRoundTripZeroAlloc extends the steady-state allocation
// contract to tracing-enabled runs: the preallocated ring makes event
// recording — including the saturated drop path — heap-free.
func TestTracedRoundTripZeroAlloc(t *testing.T) {
	const runs = 100
	_, err := eventRun(2, 64, func(c *Comm) error {
		sbuf := [3]int64{1, 2, 3}
		var rbuf [3]int64
		peer := 1 - c.Rank()
		roundTrip := func() {
			c.Isend(peer, 0, sbuf[:])
			c.RecvInto(peer, 0, rbuf[:])
		}
		for i := 0; i < 16; i++ {
			roundTrip()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, roundTrip); avg != 0 {
				t.Errorf("traced round trip: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				roundTrip()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
