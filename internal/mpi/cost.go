package mpi

import "fmt"

// CostModel parameterizes the virtual-time charges for every runtime
// primitive. The model is LogGP-flavored: each operation pays a fixed
// latency (alpha, seconds) plus a per-byte cost (beta, seconds/byte), and
// CPU-side overheads are charged separately from network transit so that
// overlap behaves sensibly (an Isend charges the sender only its software
// overhead; the transit latency is paid by the message's arrival time).
//
// Default values are calibrated so that the relative behavior of the three
// communication models matches the shapes reported by Ghosh et al. on Cray
// Aries: point-to-point messages pay a comparatively high per-message cost
// (software matching + rendezvous machinery), RDMA puts are cheap and
// consistent, and neighborhood collectives amortize per-message costs via
// aggregation but synchronize each rank with its process-graph neighborhood
// every round, so their cost grows with neighborhood degree.
type CostModel struct {
	// Point-to-point.
	AlphaP2P      float64 // network latency per message
	BetaP2P       float64 // network cost per byte
	SendOverhead  float64 // sender CPU overhead per Isend/Send
	RecvOverhead  float64 // receiver CPU overhead per Recv (match + unpack)
	ProbeOverhead float64 // CPU overhead per Iprobe/Probe poll
	SyncSendRTT   float64 // extra round-trip charge for synchronous sends (MBP model)

	// Global collectives: cost = (AlphaColl + BetaColl*bytes) * ceil(log2 P).
	AlphaColl float64
	BetaColl  float64

	// Neighborhood collectives: a fixed per-invocation setup cost plus a
	// per-neighbor and per-byte cost. The per-neighbor term is what makes
	// blocking neighborhood collectives degrade on dense process graphs
	// (the paper's SBP and social-network findings): every call touches
	// every neighbor whether or not data flows.
	AlphaNbrCall float64
	AlphaNbr     float64
	BetaNbr      float64
	// AlphaNbrStart replaces AlphaNbrCall for each Start of a persistent
	// neighborhood collective (Topo.NeighborAlltoallvInit, MPI-4 style):
	// the argument checking, schedule derivation and buffer-layout math
	// AlphaNbrCall folds in were paid once at init time, so starting a
	// prepared round costs only the doorbell.
	AlphaNbrStart float64

	// Per-record pack/unpack CPU cost for aggregated transports (filling
	// and parsing coalesced buffers); point-to-point paths pay their own
	// per-message overheads instead.
	PackOverhead float64

	// RMA.
	AlphaPut   float64 // origin-side cost to issue a put
	BetaPut    float64 // per-byte put cost (paid at flush/drain)
	AlphaGet   float64
	BetaGet    float64
	AlphaFlush float64 // per flush call
	// FlushPerTarget is charged per distinct rank with outstanding puts
	// when a flush completes: MPI_Win_flush_all must confirm remote
	// completion with every active target, so its cost grows with the
	// spread of the epoch's traffic — RMA's (milder) version of the
	// neighborhood-degree penalty.
	FlushPerTarget float64
	AtomicRTT      float64 // remote atomic (fetch-and-op / CAS) round trip

	// Compute.
	ComputePerUnit float64 // seconds per unit charged via Comm.Compute
}

// DefaultCostModel returns parameters loosely modeled on a Cray XC40 /
// Aries class interconnect (microsecond-scale message latencies, ~10 GB/s
// effective per-link bandwidth) with software overheads chosen so that the
// three communication models reproduce the paper's qualitative behavior.
func DefaultCostModel() *CostModel {
	return &CostModel{
		AlphaP2P:      1.2e-6,
		BetaP2P:       4.0e-10, // ~2.5 GB/s effective small-message path
		SendOverhead:  2.5e-7,
		RecvOverhead:  2.5e-7,
		ProbeOverhead: 5.0e-8,
		SyncSendRTT:   1.0e-6,

		AlphaColl: 2.5e-6,
		BetaColl:  2.5e-10,

		// The per-neighbor charge is deliberately several times the
		// point-to-point alpha: it folds in the per-peer software setup,
		// serialization and straggler slack of Cray's blocking
		// neighborhood collectives, which the paper itself identifies as
		// under-optimized relative to RMA (§V-D "Implementation
		// remarks"). This single constant is what reproduces the paper's
		// crossover: aggregation wins when per-rank message volume is
		// high, and loses to Send-Recv when the process graph is dense
		// but per-neighbor volume is thin (SBP, Fig 4c).
		AlphaNbrCall: 1.0e-5,
		AlphaNbr:     1.2e-5,
		BetaNbr:      1.2e-10, // aggregated transfers stream at near link rate

		AlphaNbrStart: 2.0e-6, // persistent start: schedule work prepaid at init

		PackOverhead: 3.0e-8,

		AlphaPut:       1.0e-7,
		BetaPut:        1.5e-10,
		AlphaGet:       4.0e-7,
		BetaGet:        1.5e-10,
		AlphaFlush:     1.8e-6,
		FlushPerTarget: 2.0e-6,
		AtomicRTT:      2.8e-6,

		ComputePerUnit: 4.0e-9,
	}
}

// Validate reports an error if any parameter is negative.
func (m *CostModel) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"AlphaP2P", m.AlphaP2P}, {"BetaP2P", m.BetaP2P},
		{"SendOverhead", m.SendOverhead}, {"RecvOverhead", m.RecvOverhead},
		{"ProbeOverhead", m.ProbeOverhead}, {"SyncSendRTT", m.SyncSendRTT},
		{"AlphaColl", m.AlphaColl}, {"BetaColl", m.BetaColl},
		{"AlphaNbrCall", m.AlphaNbrCall}, {"AlphaNbrStart", m.AlphaNbrStart},
		{"AlphaNbr", m.AlphaNbr}, {"BetaNbr", m.BetaNbr},
		{"PackOverhead", m.PackOverhead},
		{"AlphaPut", m.AlphaPut}, {"BetaPut", m.BetaPut},
		{"AlphaGet", m.AlphaGet}, {"BetaGet", m.BetaGet},
		{"AlphaFlush", m.AlphaFlush}, {"FlushPerTarget", m.FlushPerTarget},
		{"AtomicRTT", m.AtomicRTT},
		{"ComputePerUnit", m.ComputePerUnit},
	}
	for _, c := range checks {
		if c.v < 0 {
			return fmt.Errorf("mpi: cost model parameter %s is negative (%g)", c.name, c.v)
		}
	}
	return nil
}

// Scale returns a copy of the model with every parameter multiplied by f.
// Useful for sensitivity sweeps in the ablation benchmarks.
func (m *CostModel) Scale(f float64) *CostModel {
	out := *m
	out.AlphaP2P *= f
	out.BetaP2P *= f
	out.SendOverhead *= f
	out.RecvOverhead *= f
	out.ProbeOverhead *= f
	out.SyncSendRTT *= f
	out.AlphaColl *= f
	out.BetaColl *= f
	out.AlphaNbrCall *= f
	out.AlphaNbrStart *= f
	out.AlphaNbr *= f
	out.BetaNbr *= f
	out.PackOverhead *= f
	out.AlphaPut *= f
	out.BetaPut *= f
	out.AlphaGet *= f
	out.BetaGet *= f
	out.AlphaFlush *= f
	out.FlushPerTarget *= f
	out.AtomicRTT *= f
	out.ComputePerUnit *= f
	return &out
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// collCost is the modeled duration of a global collective over p ranks
// moving bytes per rank.
func (m *CostModel) collCost(p int, bytes int64) float64 {
	return (m.AlphaColl + m.BetaColl*float64(bytes)) * float64(log2Ceil(p))
}
