package mpi

import (
	"fmt"
	"runtime"
	"time"
)

// Post-run invariant checks shared by the runtime's own tests and by the
// application-level test suites (DESIGN §7 item iv): a completed run must
// not leak rank goroutines, and its traffic ledgers must balance. These
// were previously asserted ad hoc per test; the helpers centralize them.

// CheckBalanced verifies conservation of user-level point-to-point
// traffic across a completed run's ledgers: every message and byte sent
// was either received or is still sitting in a mailbox (UnreceivedMsgs).
// It returns a descriptive error on imbalance, which would indicate
// runtime message loss or duplication.
func CheckBalanced(rep *Report) error {
	var sent, recvd, unrecv, sentBytes, recvBytes int64
	for _, rs := range rep.Stats {
		sent += rs.SendCount
		recvd += rs.RecvCount
		unrecv += rs.UnreceivedMsgs
		sentBytes += rs.SendBytes
		recvBytes += rs.RecvBytes
	}
	if sent != recvd+unrecv {
		return fmt.Errorf("mpi: unbalanced run: %d messages sent but %d received + %d unreceived", sent, recvd, unrecv)
	}
	if unrecv == 0 && sentBytes != recvBytes {
		return fmt.Errorf("mpi: unbalanced run: %d bytes sent but %d received", sentBytes, recvBytes)
	}
	return nil
}

// CheckDrained is CheckBalanced plus the stronger requirement that no
// message was left unreceived — the expected end state for workloads
// whose protocols receive everything they send (blocking collectives,
// round-based transports, echo tests). Protocols that legally terminate
// with stale in-flight messages (the Send-Recv matching driver) should
// use CheckBalanced instead.
func CheckDrained(rep *Report) error {
	if err := CheckBalanced(rep); err != nil {
		return err
	}
	for _, rs := range rep.Stats {
		if rs.UnreceivedMsgs != 0 {
			return fmt.Errorf("mpi: rank %d finished with %d unreceived message(s)", rs.Rank, rs.UnreceivedMsgs)
		}
	}
	return nil
}

// CheckGoroutines verifies that the process's goroutine count has
// returned to at most baseline (a runtime.NumGoroutine snapshot taken
// before Run), waiting briefly for rank goroutines that are still
// unwinding. A persistent excess means a run leaked its ranks.
func CheckGoroutines(baseline int) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpi: goroutine leak: %d running, %d at baseline", n, baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// RunChecked wraps Run with the standard post-run hygiene checks: on a
// successful run it additionally verifies that no goroutines leaked and
// that the send/receive ledgers balance, folding any violation into the
// returned error. Tests should prefer it over Run.
func RunChecked(procs int, body func(c *Comm) error, opts ...Option) (*Report, error) {
	baseline := runtime.NumGoroutine()
	rep, err := Run(procs, body, opts...)
	if err != nil {
		return rep, err
	}
	if err := CheckGoroutines(baseline); err != nil {
		return rep, err
	}
	if err := CheckBalanced(rep); err != nil {
		return rep, err
	}
	return rep, nil
}
