package mpi

import (
	"fmt"
	"sync"
)

// ReduceOp selects the combining operation for reductions.
type ReduceOp int

// Supported reduction operations.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
	OpProd
	OpLand // logical and of nonzero-ness
	OpLor  // logical or of nonzero-ness
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpProd:
		return "prod"
	case OpLand:
		return "land"
	case OpLor:
		return "lor"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

func (op ReduceOp) foldInt64(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	case OpLand:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpLor:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}
	panic("mpi: unknown ReduceOp")
}

func (op ReduceOp) foldFloat64(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	}
	panic("mpi: ReduceOp " + op.String() + " not supported for float64")
}

// collHub is the rendezvous point for global collectives. All ranks must
// invoke the same sequence of collective operations (the standard MPI
// contract); each operation performs a deposit barrier, a read phase, and
// a release barrier, so the hub's scratch space can be reused immediately.
type collHub struct {
	mu       sync.Mutex
	cv       *sync.Cond
	n        int
	count    int
	gen      int64
	poisoned bool

	ideps [][]int64
	fdeps [][]float64
	vdeps [][][]int64
	adeps []any
	times []float64
}

func newCollHub(n int) *collHub {
	h := &collHub{
		n:     n,
		ideps: make([][]int64, n),
		fdeps: make([][]float64, n),
		vdeps: make([][][]int64, n),
		adeps: make([]any, n),
		times: make([]float64, n),
	}
	h.cv = sync.NewCond(&h.mu)
	return h
}

func (h *collHub) poison() {
	h.mu.Lock()
	h.poisoned = true
	h.mu.Unlock()
	h.cv.Broadcast()
}

// await is a reusable full barrier over the world.
func (h *collHub) await() {
	h.mu.Lock()
	if h.poisoned {
		h.mu.Unlock()
		panic("mpi: collective aborted: a peer rank failed")
	}
	gen := h.gen
	h.count++
	if h.count == h.n {
		h.count = 0
		h.gen++
		h.mu.Unlock()
		h.cv.Broadcast()
		return
	}
	for h.gen == gen && !h.poisoned {
		h.cv.Wait()
	}
	poisoned := h.poisoned
	h.mu.Unlock()
	if poisoned {
		panic("mpi: collective aborted: a peer rank failed")
	}
}

// maxTime returns the maximum deposited clock; callable between the two
// barriers of a collective (deposits are stable there).
func (h *collHub) maxTime() float64 {
	t := h.times[0]
	for _, v := range h.times[1:] {
		if v > t {
			t = v
		}
	}
	return t
}

// enter deposits this rank's clock and runs the deposit barrier.
func (c *Comm) enterColl(dep func(h *collHub)) *collHub {
	c.ps.collStart = c.ps.now
	h := c.hub
	h.mu.Lock()
	h.times[c.rank] = c.ps.now
	h.mu.Unlock()
	if dep != nil {
		dep(h)
	}
	h.await()
	return h
}

// exitColl runs the release barrier and applies the synchronized clock.
func (c *Comm) exitColl(h *collHub, bytes int64) {
	t := h.maxTime()
	h.await()
	end := t + c.w.cost.collCost(c.size(), bytes)
	c.waitUntil(end)
	c.ps.rs.CollCount++
	c.ps.rs.CollBytes += bytes
	c.event(EvColl, -1, -1, bytes, c.ps.collStart)
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	h := c.enterColl(nil)
	c.exitColl(h, 8)
}

// AllreduceInt64 combines in element-wise across all ranks with op and
// returns the combined vector on every rank. All ranks must pass vectors
// of the same length.
func (c *Comm) AllreduceInt64(op ReduceOp, in []int64) []int64 {
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = in
		h.mu.Unlock()
	})
	if len(h.ideps[0]) != len(in) {
		panic(fmt.Sprintf("mpi: AllreduceInt64 length mismatch: rank %d has %d, rank 0 has %d", c.rank, len(in), len(h.ideps[0])))
	}
	out := append([]int64(nil), h.ideps[0]...)
	for r := 1; r < c.size(); r++ {
		for i, v := range h.ideps[r] {
			out[i] = op.foldInt64(out[i], v)
		}
	}
	c.exitColl(h, int64(8*len(in)))
	return out
}

// AllreduceScalarInt64 combines a single int64 across all ranks with op
// and returns the combined value on every rank. It is equivalent to
// AllreduceInt64 on a one-element vector but allocation-free: the deposit
// travels through a per-process scratch cell and the fold happens in
// registers. The matching and coloring drivers call this once per round
// for termination detection, which makes it part of the steady-state hot
// path.
func (c *Comm) AllreduceScalarInt64(op ReduceOp, v int64) int64 {
	c.ps.collScratch[0] = v
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = c.ps.collScratch[:]
		h.mu.Unlock()
	})
	out := h.ideps[0][0]
	for r := 1; r < c.size(); r++ {
		out = op.foldInt64(out, h.ideps[r][0])
	}
	c.exitColl(h, 8)
	return out
}

// AllreduceFloat64 is AllreduceInt64 for float64 vectors. The fold is
// performed in rank order on every rank, so the result is deterministic
// and identical everywhere.
func (c *Comm) AllreduceFloat64(op ReduceOp, in []float64) []float64 {
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.fdeps[c.rank] = in
		h.mu.Unlock()
	})
	out := append([]float64(nil), h.fdeps[0]...)
	for r := 1; r < c.size(); r++ {
		for i, v := range h.fdeps[r] {
			out[i] = op.foldFloat64(out[i], v)
		}
	}
	c.exitColl(h, int64(8*len(in)))
	return out
}

// AlltoallInt64 exchanges fixed-size chunks: rank i's send[j*chunk:(j+1)*chunk]
// is delivered to rank j, and the result holds rank j's chunk for this rank
// at position j*chunk. len(send) must be Size()*chunk.
func (c *Comm) AlltoallInt64(send []int64, chunk int) []int64 {
	if len(send) != c.size()*chunk {
		panic(fmt.Sprintf("mpi: AlltoallInt64: len(send)=%d, want %d*%d", len(send), c.size(), chunk))
	}
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = send
		h.mu.Unlock()
	})
	out := make([]int64, c.size()*chunk)
	for r := 0; r < c.size(); r++ {
		copy(out[r*chunk:(r+1)*chunk], h.ideps[r][c.rank*chunk:(c.rank+1)*chunk])
	}
	c.exitColl(h, int64(8*len(send)))
	return out
}

// AlltoallvInt64 exchanges variable-size slices: send[j] goes to rank j;
// the result's element r is what rank r sent to this rank. send must have
// length Size(); entries may be nil/empty.
func (c *Comm) AlltoallvInt64(send [][]int64) [][]int64 {
	if len(send) != c.size() {
		panic(fmt.Sprintf("mpi: AlltoallvInt64: len(send)=%d, want %d", len(send), c.size()))
	}
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.vdeps[c.rank] = send
		h.mu.Unlock()
	})
	out := make([][]int64, c.size())
	var bytes int64
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), h.vdeps[r][c.rank]...)
		bytes += int64(8 * len(send[r]))
	}
	c.exitColl(h, bytes)
	return out
}

// AllgatherInt64 gathers each rank's vector onto all ranks; result[r] is
// rank r's contribution. Contributions may differ in length (MPI's
// Allgatherv generality).
func (c *Comm) AllgatherInt64(mine []int64) [][]int64 {
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = mine
		h.mu.Unlock()
	})
	out := make([][]int64, c.size())
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), h.ideps[r]...)
	}
	c.exitColl(h, int64(8*len(mine)))
	return out
}

// BcastInt64 broadcasts root's data to all ranks; every rank returns a
// private copy. Non-root ranks' data argument is ignored (may be nil).
func (c *Comm) BcastInt64(root int, data []int64) []int64 {
	c.checkRank(root, "bcast")
	h := c.enterColl(func(h *collHub) {
		if c.rank == root {
			h.mu.Lock()
			h.ideps[root] = data
			h.mu.Unlock()
		}
	})
	out := append([]int64(nil), h.ideps[root]...)
	c.exitColl(h, int64(8*len(out)))
	return out
}

// ReduceInt64 combines across ranks like AllreduceInt64, but only root
// receives the result; other ranks return nil.
func (c *Comm) ReduceInt64(root int, op ReduceOp, in []int64) []int64 {
	c.checkRank(root, "reduce")
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = in
		h.mu.Unlock()
	})
	var out []int64
	if c.rank == root {
		out = append([]int64(nil), h.ideps[0]...)
		for r := 1; r < c.size(); r++ {
			for i, v := range h.ideps[r] {
				out[i] = op.foldInt64(out[i], v)
			}
		}
	}
	c.exitColl(h, int64(8*len(in)))
	return out
}

// GatherInt64 gathers each rank's vector onto root; root's result[r] is
// rank r's contribution, other ranks return nil.
func (c *Comm) GatherInt64(root int, mine []int64) [][]int64 {
	c.checkRank(root, "gather")
	h := c.enterColl(func(h *collHub) {
		h.mu.Lock()
		h.ideps[c.rank] = mine
		h.mu.Unlock()
	})
	var out [][]int64
	if c.rank == root {
		out = make([][]int64, c.size())
		for r := 0; r < c.size(); r++ {
			out[r] = append([]int64(nil), h.ideps[r]...)
		}
	}
	c.exitColl(h, int64(8*len(mine)))
	return out
}
