package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ReduceOp selects the combining operation for reductions.
type ReduceOp int

// Supported reduction operations.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
	OpProd
	OpLand // logical and of nonzero-ness
	OpLor  // logical or of nonzero-ness
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpProd:
		return "prod"
	case OpLand:
		return "land"
	case OpLor:
		return "lor"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

func (op ReduceOp) foldInt64(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	case OpLand:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpLor:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}
	panic("mpi: unknown ReduceOp")
}

func (op ReduceOp) foldFloat64(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	}
	panic("mpi: ReduceOp " + op.String() + " not supported for float64")
}

const collAbort = "mpi: collective aborted: a peer rank failed"

// hubShardShift sets the collective hub's shard width: ranks are mapped
// to shards in contiguous blocks of 1<<hubShardShift, so a barrier
// arrival touches one shard-local lock and the per-rank virtual clocks
// are folded into one running maximum per shard. Only the single
// last-to-arrive rank walks all shards.
const hubShardShift = 6

// collShard is one block of ranks' arrival state within a collHub.
type collShard struct {
	mu     sync.Mutex
	count  int     // arrivals this round
	size   int     // ranks mapped to this shard
	maxNow float64 // running max of deposited clocks this round
	// maxRank is the comm rank that deposited maxNow (-1 before the
	// first arrival). Ties go to the lowest rank so the fold is
	// independent of arrival order — the argmax must be deterministic
	// because it is recorded in wait events.
	maxRank int32
	// waiters collects every arrived task this round (capacity size, so
	// steady state never allocates); the releaser unparks them.
	waiters []*task
	_       [8]byte // round up to a cache line
}

// collHub is the rendezvous point for a communicator's collectives. All
// member ranks must invoke the same sequence of collective operations
// (the standard MPI contract); each operation performs a deposit
// barrier, a read phase, and a release barrier, so the hub's scratch
// space can be reused immediately.
//
// The barrier is sharded: a rank folds its virtual clock into its own
// shard under that shard's lock — never a hub-global one — and parks.
// The shard's last arrival decrements pendingShards; whoever drives it
// to zero becomes the releaser: it folds the per-shard clock maxima
// into roundMax, resets every shard for the next round, advances gen
// and unparks all collected waiters. Waiters observe the new gen (an
// acquire load ordered after the releaser's roundMax write and shard
// resets) and read roundMax and the deposit slots race-free.
//
// A subtle ordering keeps this correct: the shard-last rank appends
// itself to its shard's waiter list under the shard lock BEFORE
// decrementing pendingShards. Decrementing first would let a
// concurrent releaser reset the shard in between, and the late
// self-append would land in the next round's waiter list — a rank
// asleep in round r but only woken by round r+1's releaser, which
// round r+1 can then never reach.
//
// Only one releaser can be live at a time: round r+1 cannot complete
// until the round-r releaser's own await returns (it is a member rank),
// so the shared relbuf scratch needs no lock.
type collHub struct {
	shards []collShard
	n      int
	// pendingShards counts shards that have not yet filled this round;
	// the decrement to zero elects the releaser.
	pendingShards atomic.Int32
	// gen is the round number; advancing it (after roundMax and the
	// shard resets are written) is the release signal waiters poll.
	gen      atomic.Int64
	poisoned atomic.Bool
	roundMax float64 // max deposited clock of the released round
	// roundMaxRank is the comm rank that deposited roundMax — the last
	// entrant whose arrival releases the collective, i.e. the causing
	// rank of every other member's collective wait.
	roundMaxRank int32
	relbuf       []*task // releaser scratch (capacity n)

	// Deposit slots, one per member rank, written by plain stores before
	// the deposit barrier and read between the barriers.
	ideps [][]int64
	fdeps [][]float64
	vdeps [][][]int64
	adeps []any
}

func newCollHub(n int) *collHub {
	nshard := (n + (1 << hubShardShift) - 1) >> hubShardShift
	h := &collHub{
		shards: make([]collShard, nshard),
		n:      n,
		relbuf: make([]*task, 0, n),
		ideps:  make([][]int64, n),
		fdeps:  make([][]float64, n),
		vdeps:  make([][][]int64, n),
		adeps:  make([]any, n),
	}
	for i := range h.shards {
		size := n - i<<hubShardShift
		if size > 1<<hubShardShift {
			size = 1 << hubShardShift
		}
		h.shards[i].size = size
		h.shards[i].maxRank = -1
		h.shards[i].waiters = make([]*task, 0, size)
	}
	h.pendingShards.Store(int32(nshard))
	return h
}

// poison marks the hub failed. It only raises the flag; World.poison
// performs the one unpark sweep over all tasks afterwards, which covers
// ranks parked here (flag first, then wake, so a rank cannot re-park
// without observing the flag).
func (h *collHub) poison() {
	h.poisoned.Store(true)
}

// clearDeps drops deposit-slot references so a pooled hub does not pin
// caller buffers across runs.
func (h *collHub) clearDeps() {
	clear(h.ideps)
	clear(h.fdeps)
	clear(h.vdeps)
	clear(h.adeps)
}

// waitGen blocks the task until the hub's round advances past gen.
// Wakeups may be spurious (a banked notification from unrelated
// traffic), hence the re-check loop.
func (h *collHub) waitGen(t *task, gen int64) {
	for h.gen.Load() == gen {
		if h.poisoned.Load() {
			panic(collAbort)
		}
		t.park()
	}
}

// await is a reusable full barrier over the communicator that also folds
// now across all ranks: every caller returns max(now_r) plus the comm
// rank that deposited it (the round's last entrant; ties break to the
// lowest rank so the result is schedule-independent). Task t must be
// the goroutine's own task and rank its rank within this hub.
func (h *collHub) await(t *task, rank int, now float64) (float64, int32) {
	sh := &h.shards[rank>>hubShardShift]
	sh.mu.Lock()
	if h.poisoned.Load() {
		sh.mu.Unlock()
		panic(collAbort)
	}
	gen := h.gen.Load()
	if sh.maxRank < 0 || now > sh.maxNow || (now == sh.maxNow && int32(rank) < sh.maxRank) {
		sh.maxNow = now
		sh.maxRank = int32(rank)
	}
	sh.count++
	last := sh.count == sh.size
	sh.waiters = append(sh.waiters, t) // self-append BEFORE the decrement below
	sh.mu.Unlock()
	if !last || h.pendingShards.Add(-1) > 0 {
		h.waitGen(t, gen)
		return h.roundMax, h.roundMaxRank
	}
	// This rank completed the last pending shard: release the round.
	maxNow := 0.0
	maxRank := int32(-1)
	buf := h.relbuf[:0]
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if s.maxRank >= 0 && (maxRank < 0 || s.maxNow > maxNow || (s.maxNow == maxNow && s.maxRank < maxRank)) {
			maxNow = s.maxNow
			maxRank = s.maxRank
		}
		buf = append(buf, s.waiters...)
		clear(s.waiters)
		s.waiters = s.waiters[:0]
		s.count = 0
		s.maxNow = 0
		s.maxRank = -1
		s.mu.Unlock()
	}
	h.roundMax = maxNow
	h.roundMaxRank = maxRank
	h.pendingShards.Store(int32(len(h.shards)))
	h.gen.Add(1) // publishes roundMax + resets; waiters may now proceed
	for _, wt := range buf {
		if wt != t {
			wt.unpark()
		}
	}
	return maxNow, maxRank
}

// enterColl deposits this rank's payload (dep performs plain writes to
// the rank's own slots; no lock needed, the barrier orders them) and
// runs the deposit barrier. It returns the synchronized clock — the
// maximum virtual time across all ranks at entry — and the comm rank
// that brought it (the last entrant).
func (c *Comm) enterColl(dep func(h *collHub)) (*collHub, float64, int) {
	c.ps.collStart = c.ps.now
	h := c.hub
	if dep != nil {
		dep(h)
	}
	tmax, lastRank := h.await(c.ps.task, c.rank, c.ps.now)
	return h, tmax, int(lastRank)
}

// exitColl runs the release barrier and applies the synchronized clock.
// last is the comm rank of the round's last entrant: the rank every
// other member's collective wait is attributed to.
func (c *Comm) exitColl(h *collHub, tmax float64, last int, bytes int64) {
	h.await(c.ps.task, c.rank, 0)
	end := tmax + c.w.cost.collCost(c.size(), bytes)
	cause := -1
	if last >= 0 {
		cause = c.worldRank(last)
	}
	c.waitFor(end, WaitCollective, cause, tmax)
	c.ps.rs.CollCount++
	c.ps.rs.CollBytes += bytes
	c.event(EvColl, -1, -1, bytes, c.ps.collStart)
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	h, tmax, last := c.enterColl(nil)
	c.exitColl(h, tmax, last, 8)
}

// AllreduceInt64 combines in element-wise across all ranks with op and
// returns the combined vector on every rank. All ranks must pass vectors
// of the same length.
func (c *Comm) AllreduceInt64(op ReduceOp, in []int64) []int64 {
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = in
	})
	if len(h.ideps[0]) != len(in) {
		panic(fmt.Sprintf("mpi: AllreduceInt64 length mismatch: rank %d has %d, rank 0 has %d", c.rank, len(in), len(h.ideps[0])))
	}
	out := append([]int64(nil), h.ideps[0]...)
	for r := 1; r < c.size(); r++ {
		for i, v := range h.ideps[r] {
			out[i] = op.foldInt64(out[i], v)
		}
	}
	c.exitColl(h, tmax, last, int64(8*len(in)))
	return out
}

// AllreduceScalarInt64 combines a single int64 across all ranks with op
// and returns the combined value on every rank. It is equivalent to
// AllreduceInt64 on a one-element vector but allocation-free: the deposit
// travels through a per-process scratch cell and the fold happens in
// registers. The matching and coloring drivers call this once per round
// for termination detection, which makes it part of the steady-state hot
// path.
func (c *Comm) AllreduceScalarInt64(op ReduceOp, v int64) int64 {
	c.ps.collScratch[0] = v
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = c.ps.collScratch[:]
	})
	out := h.ideps[0][0]
	for r := 1; r < c.size(); r++ {
		out = op.foldInt64(out, h.ideps[r][0])
	}
	c.exitColl(h, tmax, last, 8)
	return out
}

// AllreduceFloat64 is AllreduceInt64 for float64 vectors. The fold is
// performed in rank order on every rank, so the result is deterministic
// and identical everywhere.
func (c *Comm) AllreduceFloat64(op ReduceOp, in []float64) []float64 {
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.fdeps[c.rank] = in
	})
	out := append([]float64(nil), h.fdeps[0]...)
	for r := 1; r < c.size(); r++ {
		for i, v := range h.fdeps[r] {
			out[i] = op.foldFloat64(out[i], v)
		}
	}
	c.exitColl(h, tmax, last, int64(8*len(in)))
	return out
}

// AlltoallInt64 exchanges fixed-size chunks: rank i's send[j*chunk:(j+1)*chunk]
// is delivered to rank j, and the result holds rank j's chunk for this rank
// at position j*chunk. len(send) must be Size()*chunk.
func (c *Comm) AlltoallInt64(send []int64, chunk int) []int64 {
	if len(send) != c.size()*chunk {
		panic(fmt.Sprintf("mpi: AlltoallInt64: len(send)=%d, want %d*%d", len(send), c.size(), chunk))
	}
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = send
	})
	out := make([]int64, c.size()*chunk)
	for r := 0; r < c.size(); r++ {
		copy(out[r*chunk:(r+1)*chunk], h.ideps[r][c.rank*chunk:(c.rank+1)*chunk])
	}
	c.exitColl(h, tmax, last, int64(8*len(send)))
	return out
}

// AlltoallvInt64 exchanges variable-size slices: send[j] goes to rank j;
// the result's element r is what rank r sent to this rank. send must have
// length Size(); entries may be nil/empty.
func (c *Comm) AlltoallvInt64(send [][]int64) [][]int64 {
	if len(send) != c.size() {
		panic(fmt.Sprintf("mpi: AlltoallvInt64: len(send)=%d, want %d", len(send), c.size()))
	}
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.vdeps[c.rank] = send
	})
	out := make([][]int64, c.size())
	var bytes int64
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), h.vdeps[r][c.rank]...)
		bytes += int64(8 * len(send[r]))
	}
	c.exitColl(h, tmax, last, bytes)
	return out
}

// AllgatherInt64 gathers each rank's vector onto all ranks; result[r] is
// rank r's contribution. Contributions may differ in length (MPI's
// Allgatherv generality).
func (c *Comm) AllgatherInt64(mine []int64) [][]int64 {
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = mine
	})
	out := make([][]int64, c.size())
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), h.ideps[r]...)
	}
	c.exitColl(h, tmax, last, int64(8*len(mine)))
	return out
}

// BcastInt64 broadcasts root's data to all ranks; every rank returns a
// private copy. Non-root ranks' data argument is ignored (may be nil).
func (c *Comm) BcastInt64(root int, data []int64) []int64 {
	c.checkRank(root, "bcast")
	h, tmax, last := c.enterColl(func(h *collHub) {
		if c.rank == root {
			h.ideps[root] = data
		}
	})
	out := append([]int64(nil), h.ideps[root]...)
	c.exitColl(h, tmax, last, int64(8*len(out)))
	return out
}

// ReduceInt64 combines across ranks like AllreduceInt64, but only root
// receives the result; other ranks return nil.
func (c *Comm) ReduceInt64(root int, op ReduceOp, in []int64) []int64 {
	c.checkRank(root, "reduce")
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = in
	})
	var out []int64
	if c.rank == root {
		out = append([]int64(nil), h.ideps[0]...)
		for r := 1; r < c.size(); r++ {
			for i, v := range h.ideps[r] {
				out[i] = op.foldInt64(out[i], v)
			}
		}
	}
	c.exitColl(h, tmax, last, int64(8*len(in)))
	return out
}

// GatherInt64 gathers each rank's vector onto root; root's result[r] is
// rank r's contribution, other ranks return nil.
func (c *Comm) GatherInt64(root int, mine []int64) [][]int64 {
	c.checkRank(root, "gather")
	h, tmax, last := c.enterColl(func(h *collHub) {
		h.ideps[c.rank] = mine
	})
	var out [][]int64
	if c.rank == root {
		out = make([][]int64, c.size())
		for r := 0; r < c.size(); r++ {
			out[r] = append([]int64(nil), h.ideps[r]...)
		}
	}
	c.exitColl(h, tmax, last, int64(8*len(mine)))
	return out
}
