package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ReduceOp selects the combining operation for reductions.
type ReduceOp int

// Supported reduction operations.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
	OpProd
	OpLand // logical and of nonzero-ness
	OpLor  // logical or of nonzero-ness
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpProd:
		return "prod"
	case OpLand:
		return "land"
	case OpLor:
		return "lor"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

func (op ReduceOp) foldInt64(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	case OpLand:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpLor:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}
	panic("mpi: unknown ReduceOp")
}

func (op ReduceOp) foldFloat64(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpProd:
		return a * b
	}
	panic("mpi: ReduceOp " + op.String() + " not supported for float64")
}

const collAbort = "mpi: collective aborted: a peer rank failed"

// hubShardShift sets the collective hub's shard width: ranks are mapped
// to shards in contiguous blocks of 1<<hubShardShift, so a barrier
// arrival touches one shard-local lock and the per-rank virtual clocks
// (and int64 reduction contributions) are folded into one running
// accumulator per shard. Only the single last-to-arrive rank walks all
// shards.
const hubShardShift = 6

// foldKind says what, besides its clock, a rank deposits into its shard
// on arrival.
type foldKind uint8

const (
	foldNone   foldKind = iota
	foldScalar          // one int64, folded with the round's ReduceOp
	foldVec             // an []int64, folded element-wise
)

// collShard is one block of ranks' arrival state within a collHub.
type collShard struct {
	mu     sync.Mutex
	count  int     // arrivals this round
	size   int     // ranks mapped to this shard
	maxNow float64 // running max of deposited clocks this round
	// maxRank is the comm rank that deposited maxNow (-1 before the
	// first arrival). Ties go to the lowest rank so the fold is
	// independent of arrival order — the argmax must be deterministic
	// because it is recorded in wait events.
	maxRank int32
	// acc/accN fold scalar reduction deposits this round; vacc/vaccN
	// fold vector deposits element-wise (vacc's capacity is retained, so
	// steady-state reductions never allocate). Every supported int64 op
	// is associative and commutative (sum/prod wrap mod 2^64), so
	// folding in arrival order within the shard and then across shards
	// in shard order is bit-identical to the old rank-ordered fold —
	// which is what lets a collective advance all resident clocks with
	// one shard-local deposit instead of every rank reading every slot.
	acc   int64
	accN  int
	vacc  []int64
	vaccN int
	// waiters collects every arrived task this round (capacity size, so
	// steady state never allocates); the releaser unparks them.
	waiters []*task
	_       [8]byte // round up to a cache line
}

// collHub is the rendezvous point for a communicator's collectives. All
// member ranks must invoke the same sequence of collective operations
// (the standard MPI contract); each operation is one deposit barrier
// followed by a race-free read phase — there is no release barrier.
//
// The barrier is sharded: a rank folds its virtual clock (and, for the
// int64 reductions, its contribution) into its own shard under that
// shard's lock — never a hub-global one — and parks. The shard's last
// arrival decrements pendingShards; whoever drives it to zero becomes
// the releaser: it folds the per-shard clock maxima and reduction
// partials into the round outputs, resets every shard for the next
// round, advances gen and unparks all collected waiters in one batch.
// Waiters observe the new gen (an acquire load ordered after the
// releaser's output writes and shard resets) and read the round outputs
// and deposit slots race-free.
//
// Removing the release barrier halves the synchronization rounds per
// collective; what it used to protect — reuse of the deposit slots by
// the next collective while a slow reader still reads the previous
// round's — is instead handled by parity double-buffering: round r uses
// slot set r&1. Round r+2 reuses round r's set, and by then every rank
// has deposited round r+1, which it can only do after finishing its
// round-r reads, so the overwrite cannot race them. Clock arithmetic is
// unchanged: the old release barrier deposited now=0 everywhere and
// contributed nothing to virtual time.
//
// A subtle ordering keeps the election correct: the shard-last rank
// appends itself to its shard's waiter list under the shard lock BEFORE
// decrementing pendingShards. Decrementing first would let a
// concurrent releaser reset the shard in between, and the late
// self-append would land in the next round's waiter list — a rank
// asleep in round r but only woken by round r+1's releaser, which
// round r+1 can then never reach.
//
// Only one releaser can be live at a time: round r+1 cannot complete
// until the round-r releaser's own await returns (it is a member rank),
// so the shared relbuf scratch needs no lock.
type collHub struct {
	shards []collShard
	n      int
	// pendingShards counts shards that have not yet filled this round;
	// the decrement to zero elects the releaser.
	pendingShards atomic.Int32
	// gen is the round number; advancing it (after the round outputs and
	// the shard resets are written) is the release signal waiters poll.
	// gen&1 selects the round's parity slot set.
	gen      atomic.Int64
	poisoned atomic.Bool
	roundMax float64 // max deposited clock of the released round
	// roundMaxRank is the comm rank that deposited roundMax — the last
	// entrant whose arrival releases the collective, i.e. the causing
	// rank of every other member's collective wait.
	roundMaxRank int32
	relbuf       []*task // releaser scratch (capacity n)

	// redOut/vredOut are the published int64 reduction results, indexed
	// by round parity (vredOut capacity is retained across rounds).
	redOut  [2]int64
	vredOut [2][]int64

	// Deposit slots, one per member rank per parity, written by plain
	// stores before the deposit barrier and read after it. They serve
	// the data-movement collectives (alltoall, gather, bcast, float
	// reductions) — the hot int64 reductions travel through the shard
	// fold above and never touch them — so they are allocated lazily on
	// first use (the sync.Once runs on every member before its deposit,
	// and the deposit barrier publishes the arrays to pure readers).
	ideps     [2][][]int64
	fdeps     [2][][]float64
	vdeps     [2][][][]int64
	idepsOnce sync.Once
	fdepsOnce sync.Once
	vdepsOnce sync.Once

	// adeps is the untyped publication slot set used by WinCreate and
	// Split. It is deliberately single-buffered: unlike the typed slots,
	// its writers are mid-phase republishes into the writer's own slot
	// (see WinCreate), which must remain visible across the next
	// barrier regardless of parity. That is safe because no two
	// adjacent rounds both touch adeps — every adeps rendezvous is
	// preceded by an id-allocation collective that doesn't — so a
	// deposit can never race the previous round's reads. Keep that
	// invariant when adding adeps users.
	adeps     []any
	adepsOnce sync.Once
}

func newCollHub(n int) *collHub {
	nshard := (n + (1 << hubShardShift) - 1) >> hubShardShift
	h := &collHub{
		shards: make([]collShard, nshard),
		n:      n,
		relbuf: make([]*task, 0, n),
	}
	for i := range h.shards {
		size := n - i<<hubShardShift
		if size > 1<<hubShardShift {
			size = 1 << hubShardShift
		}
		h.shards[i].size = size
		h.shards[i].maxRank = -1
		h.shards[i].waiters = make([]*task, 0, size)
	}
	h.pendingShards.Store(int32(nshard))
	return h
}

func (h *collHub) ensureIdeps() {
	h.idepsOnce.Do(func() {
		h.ideps[0] = make([][]int64, h.n)
		h.ideps[1] = make([][]int64, h.n)
	})
}

func (h *collHub) ensureFdeps() {
	h.fdepsOnce.Do(func() {
		h.fdeps[0] = make([][]float64, h.n)
		h.fdeps[1] = make([][]float64, h.n)
	})
}

func (h *collHub) ensureVdeps() {
	h.vdepsOnce.Do(func() {
		h.vdeps[0] = make([][][]int64, h.n)
		h.vdeps[1] = make([][][]int64, h.n)
	})
}

func (h *collHub) ensureAdeps() {
	h.adepsOnce.Do(func() {
		h.adeps = make([]any, h.n)
	})
}

// poison marks the hub failed. It only raises the flag; World.poison
// performs the one unpark sweep over all tasks afterwards, which covers
// ranks parked here (flag first, then wake, so a rank cannot re-park
// without observing the flag).
func (h *collHub) poison() {
	h.poisoned.Store(true)
}

// clearDeps drops deposit-slot references so a pooled hub does not pin
// caller buffers across runs.
func (h *collHub) clearDeps() {
	for p := 0; p < 2; p++ {
		clear(h.ideps[p])
		clear(h.fdeps[p])
		clear(h.vdeps[p])
		h.vredOut[p] = h.vredOut[p][:0]
	}
	clear(h.adeps)
}

// waitGen blocks the task until the hub's round advances past gen.
// Wakeups may be spurious (a banked notification from unrelated
// traffic), hence the re-check loop.
func (h *collHub) waitGen(t *task, gen int64) {
	for h.gen.Load() == gen {
		if h.poisoned.Load() {
			panic(collAbort)
		}
		t.park()
	}
}

// await is a reusable full barrier over the communicator that also folds
// now across all ranks: every caller returns max(now_r) plus the comm
// rank that deposited it (the round's last entrant; ties break to the
// lowest rank so the result is schedule-independent). Task t must be
// the goroutine's own task and rank its rank within this hub.
func (h *collHub) await(t *task, rank int, now float64) (float64, int32) {
	return h.awaitFold(t, rank, now, foldNone, OpSum, 0, nil)
}

// awaitFold is await plus a shard-local int64 reduction: each arrival
// folds v (foldScalar) or vec (foldVec) into its shard's accumulator
// under the shard lock it already holds, and the releaser folds the
// O(n/64) shard partials and publishes the result in redOut/vredOut at
// the round's parity. This replaces the old per-rank read of all n
// deposit slots — O(n^2) total work per collective, the superlinear
// wall in the ranks-scaling curve — with O(n) total. All members of a
// round must pass the same kind and op (the MPI collective contract).
func (h *collHub) awaitFold(t *task, rank int, now float64, kind foldKind, op ReduceOp, v int64, vec []int64) (float64, int32) {
	sh := &h.shards[rank>>hubShardShift]
	sh.mu.Lock()
	if h.poisoned.Load() {
		sh.mu.Unlock()
		panic(collAbort)
	}
	gen := h.gen.Load()
	if sh.maxRank < 0 || now > sh.maxNow || (now == sh.maxNow && int32(rank) < sh.maxRank) {
		sh.maxNow = now
		sh.maxRank = int32(rank)
	}
	switch kind {
	case foldScalar:
		if sh.accN == 0 {
			sh.acc = v
		} else {
			sh.acc = op.foldInt64(sh.acc, v)
		}
		sh.accN++
	case foldVec:
		if sh.vaccN == 0 {
			sh.vacc = append(sh.vacc[:0], vec...)
		} else {
			if len(vec) != len(sh.vacc) {
				sh.mu.Unlock()
				panic(fmt.Sprintf("mpi: AllreduceInt64 length mismatch: rank %d has %d, peers have %d", rank, len(vec), len(sh.vacc)))
			}
			for i, x := range vec {
				sh.vacc[i] = op.foldInt64(sh.vacc[i], x)
			}
		}
		sh.vaccN++
	}
	sh.count++
	last := sh.count == sh.size
	sh.waiters = append(sh.waiters, t) // self-append BEFORE the decrement below
	sh.mu.Unlock()
	if !last || h.pendingShards.Add(-1) > 0 {
		h.waitGen(t, gen)
		return h.roundMax, h.roundMaxRank
	}
	// This rank completed the last pending shard: release the round.
	p := gen & 1
	maxNow := 0.0
	maxRank := int32(-1)
	var racc int64
	raccN := 0
	rvec := h.vredOut[p][:0]
	rvecN := 0
	buf := h.relbuf[:0]
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if s.maxRank >= 0 && (maxRank < 0 || s.maxNow > maxNow || (s.maxNow == maxNow && s.maxRank < maxRank)) {
			maxNow = s.maxNow
			maxRank = s.maxRank
		}
		if s.accN > 0 {
			if raccN == 0 {
				racc = s.acc
			} else {
				racc = op.foldInt64(racc, s.acc)
			}
			raccN += s.accN
			s.accN = 0
		}
		if s.vaccN > 0 {
			if rvecN == 0 {
				rvec = append(rvec, s.vacc...)
			} else {
				if len(s.vacc) != len(rvec) {
					s.mu.Unlock()
					panic(fmt.Sprintf("mpi: AllreduceInt64 length mismatch across shards: %d vs %d", len(s.vacc), len(rvec)))
				}
				for j, x := range s.vacc {
					rvec[j] = op.foldInt64(rvec[j], x)
				}
			}
			rvecN += s.vaccN
			s.vaccN = 0
		}
		buf = append(buf, s.waiters...)
		clear(s.waiters)
		s.waiters = s.waiters[:0]
		s.count = 0
		s.maxNow = 0
		s.maxRank = -1
		s.mu.Unlock()
	}
	if (raccN != 0 && raccN != h.n) || (rvecN != 0 && rvecN != h.n) {
		panic("mpi: mismatched collective operations across ranks (MPI contract violation)")
	}
	h.roundMax = maxNow
	h.roundMaxRank = maxRank
	h.redOut[p] = racc
	h.vredOut[p] = rvec
	h.pendingShards.Store(int32(len(h.shards)))
	h.gen.Add(1) // publishes round outputs + resets; waiters may now proceed
	if pool := t.pool; pool != nil {
		pool.readyBatch(buf, t)
	} else {
		for _, wt := range buf {
			if wt != t {
				wt.unpark()
			}
		}
	}
	return maxNow, maxRank
}

// enterColl deposits this rank's payload (dep performs plain writes to
// the rank's own slots at parity p; no lock needed, the barrier orders
// them) and runs the deposit barrier. It returns the round's parity for
// the read phase plus the synchronized clock — the maximum virtual time
// across all ranks at entry — and the comm rank that brought it (the
// last entrant). The parity read is stable: the hub's round cannot
// advance before this rank itself deposits.
func (c *Comm) enterColl(dep func(h *collHub, p int)) (*collHub, int, float64, int) {
	c.ps.collStart = c.ps.now
	h := c.hub
	p := int(h.gen.Load() & 1)
	if dep != nil {
		dep(h, p)
	}
	tmax, lastRank := h.await(c.ps.task, c.rank, c.ps.now)
	return h, p, tmax, int(lastRank)
}

// exitColl applies the synchronized clock and books the collective.
// last is the comm rank of the round's last entrant: the rank every
// other member's collective wait is attributed to. There is no release
// barrier — parity double-buffering (see collHub) makes the read phase
// race-free without one.
func (c *Comm) exitColl(tmax float64, last int, bytes int64) {
	end := tmax + c.w.cost.collCost(c.size(), bytes)
	cause := -1
	if last >= 0 {
		cause = c.worldRank(last)
	}
	c.waitFor(end, WaitCollective, cause, tmax)
	c.ps.rs.CollCount++
	c.ps.rs.CollBytes += bytes
	c.event(EvColl, -1, -1, bytes, c.ps.collStart)
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	_, _, tmax, last := c.enterColl(nil)
	c.exitColl(tmax, last, 8)
}

// AllreduceInt64 combines in element-wise across all ranks with op and
// returns the combined vector on every rank. All ranks must pass vectors
// of the same length. The fold happens inside the deposit barrier (see
// awaitFold), so each rank's cost is O(len(in)), independent of the
// communicator size.
func (c *Comm) AllreduceInt64(op ReduceOp, in []int64) []int64 {
	c.ps.collStart = c.ps.now
	h := c.hub
	p := h.gen.Load() & 1
	tmax, last := h.awaitFold(c.ps.task, c.rank, c.ps.now, foldVec, op, 0, in)
	out := append([]int64(nil), h.vredOut[p]...)
	c.exitColl(tmax, int(last), int64(8*len(in)))
	return out
}

// AllreduceScalarInt64 combines a single int64 across all ranks with op
// and returns the combined value on every rank. It is equivalent to
// AllreduceInt64 on a one-element vector but allocation-free: the value
// folds into the shard accumulator on arrival and every rank reads one
// published result. The matching and coloring drivers call this once per
// round for termination detection, which makes it part of the
// steady-state hot path.
func (c *Comm) AllreduceScalarInt64(op ReduceOp, v int64) int64 {
	c.ps.collStart = c.ps.now
	h := c.hub
	p := h.gen.Load() & 1
	tmax, last := h.awaitFold(c.ps.task, c.rank, c.ps.now, foldScalar, op, v, nil)
	out := h.redOut[p]
	c.exitColl(tmax, int(last), 8)
	return out
}

// AllreduceFloat64 is AllreduceInt64 for float64 vectors. Floating-point
// folds are not associative, so this path keeps the deposit slots and
// folds in rank order on every rank — the result is deterministic and
// identical everywhere, at O(P) cost per rank.
func (c *Comm) AllreduceFloat64(op ReduceOp, in []float64) []float64 {
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureFdeps()
		h.fdeps[p][c.rank] = in
	})
	deps := h.fdeps[p]
	out := append([]float64(nil), deps[0]...)
	for r := 1; r < c.size(); r++ {
		for i, v := range deps[r] {
			out[i] = op.foldFloat64(out[i], v)
		}
	}
	c.exitColl(tmax, last, int64(8*len(in)))
	return out
}

// AlltoallInt64 exchanges fixed-size chunks: rank i's send[j*chunk:(j+1)*chunk]
// is delivered to rank j, and the result holds rank j's chunk for this rank
// at position j*chunk. len(send) must be Size()*chunk.
func (c *Comm) AlltoallInt64(send []int64, chunk int) []int64 {
	if len(send) != c.size()*chunk {
		panic(fmt.Sprintf("mpi: AlltoallInt64: len(send)=%d, want %d*%d", len(send), c.size(), chunk))
	}
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureIdeps()
		h.ideps[p][c.rank] = send
	})
	deps := h.ideps[p]
	out := make([]int64, c.size()*chunk)
	for r := 0; r < c.size(); r++ {
		copy(out[r*chunk:(r+1)*chunk], deps[r][c.rank*chunk:(c.rank+1)*chunk])
	}
	c.exitColl(tmax, last, int64(8*len(send)))
	return out
}

// AlltoallvInt64 exchanges variable-size slices: send[j] goes to rank j;
// the result's element r is what rank r sent to this rank. send must have
// length Size(); entries may be nil/empty.
func (c *Comm) AlltoallvInt64(send [][]int64) [][]int64 {
	if len(send) != c.size() {
		panic(fmt.Sprintf("mpi: AlltoallvInt64: len(send)=%d, want %d", len(send), c.size()))
	}
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureVdeps()
		h.vdeps[p][c.rank] = send
	})
	deps := h.vdeps[p]
	out := make([][]int64, c.size())
	var bytes int64
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), deps[r][c.rank]...)
		bytes += int64(8 * len(send[r]))
	}
	c.exitColl(tmax, last, bytes)
	return out
}

// AllgatherInt64 gathers each rank's vector onto all ranks; result[r] is
// rank r's contribution. Contributions may differ in length (MPI's
// Allgatherv generality).
func (c *Comm) AllgatherInt64(mine []int64) [][]int64 {
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureIdeps()
		h.ideps[p][c.rank] = mine
	})
	deps := h.ideps[p]
	out := make([][]int64, c.size())
	for r := 0; r < c.size(); r++ {
		out[r] = append([]int64(nil), deps[r]...)
	}
	c.exitColl(tmax, last, int64(8*len(mine)))
	return out
}

// BcastInt64 broadcasts root's data to all ranks; every rank returns a
// private copy. Non-root ranks' data argument is ignored (may be nil).
func (c *Comm) BcastInt64(root int, data []int64) []int64 {
	c.checkRank(root, "bcast")
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureIdeps()
		if c.rank == root {
			h.ideps[p][root] = data
		}
	})
	out := append([]int64(nil), h.ideps[p][root]...)
	c.exitColl(tmax, last, int64(8*len(out)))
	return out
}

// ReduceInt64 combines across ranks like AllreduceInt64, but only root
// receives the result; other ranks return nil.
func (c *Comm) ReduceInt64(root int, op ReduceOp, in []int64) []int64 {
	c.checkRank(root, "reduce")
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureIdeps()
		h.ideps[p][c.rank] = in
	})
	var out []int64
	if c.rank == root {
		deps := h.ideps[p]
		out = append([]int64(nil), deps[0]...)
		for r := 1; r < c.size(); r++ {
			for i, v := range deps[r] {
				out[i] = op.foldInt64(out[i], v)
			}
		}
	}
	c.exitColl(tmax, last, int64(8*len(in)))
	return out
}

// GatherInt64 gathers each rank's vector onto root; root's result[r] is
// rank r's contribution, other ranks return nil.
func (c *Comm) GatherInt64(root int, mine []int64) [][]int64 {
	c.checkRank(root, "gather")
	h, p, tmax, last := c.enterColl(func(h *collHub, p int) {
		h.ensureIdeps()
		h.ideps[p][c.rank] = mine
	})
	var out [][]int64
	if c.rank == root {
		deps := h.ideps[p]
		out = make([][]int64, c.size())
		for r := 0; r < c.size(); r++ {
			out[r] = append([]int64(nil), deps[r]...)
		}
	}
	c.exitColl(tmax, last, int64(8*len(mine)))
	return out
}
