package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/sched"
)

// The adversarial perturbation menu the detector must survive: every
// single jitter class plus the everything-on profile, under a handful
// of pinned seeds. Latency jitter delays tokens relative to the app
// messages they chase; slowdown stretches whole ranks; ties permute
// AnySource selection; probe misses starve the nonblocking Idle path.
var quiescePerturbations = []struct {
	name string
	p    sched.Profile
}{
	{"none", sched.Profile{}},
	{"ties", sched.Profile{Ties: true}},
	{"jitter", sched.Profile{Jitter: 1.0}},
	{"slowdown", sched.Profile{Slowdown: 0.5}},
	{"probemiss", sched.Profile{ProbeMiss: 0.5}},
	{"full", sched.Full},
}

var quiesceSeeds = []uint64{0x5eed, 0xdead, 0x2a}

// quiesceLoop is the engine-style drive: drain and process application
// traffic (reacting to it), then hand the detector a chance, then park.
// handle is called for each received app message and returns any
// follow-up payloads to send as (dst, value) pairs — re-activation
// after idle is the norm, not the exception.
func quiesceLoop(c *Comm, q *Quiesce, handle func(src int, v int64) [][2]int64) (recvd int) {
	buf := make([]int64, 1)
	for {
		progressed := false
		for {
			ok, st := c.Iprobe(AnySource, AnyTag)
			if !ok {
				break
			}
			c.RecvInto(st.Source, st.Tag, buf)
			q.NoteRecv(1)
			recvd++
			progressed = true
			for _, out := range handle(st.Source, buf[0]) {
				q.NoteSend(1)
				c.Isend(int(out[0]), 0, []int64{out[1]})
			}
		}
		if progressed {
			continue
		}
		if q.Idle() {
			return recvd
		}
		q.Block()
	}
}

// TestQuiesceSingleRank: in a one-rank world quiescence is a local
// condition; the detector must conclude immediately once the deficit is
// balanced, with no token machinery.
func TestQuiesceSingleRank(t *testing.T) {
	_, err := RunChecked(1, func(c *Comm) error {
		q := NewQuiesce(c)
		q.NoteSend(1)
		c.Isend(0, 7, []int64{42})
		if q.Idle() {
			return errors.New("concluded with a self-addressed record in flight")
		}
		if v, _ := c.Recv(0, 7); v[0] != 42 {
			return fmt.Errorf("self-recv got %v", v)
		}
		q.NoteRecv(1)
		if !q.Idle() {
			return errors.New("balanced single rank did not conclude")
		}
		if q.DetectedAt() < 0 {
			return errors.New("no detection instant recorded")
		}
		if got := q.Quiesce(); got != q.DetectedAt() {
			return errors.New("Quiesce after conclusion changed the instant")
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuiesceInFlightNotTermination is the central safety case: a rank
// that has gone idle after sending may look finished to a circulating
// token while its message is still in flight. The relay workload makes
// every hop exactly that scenario — sender idles immediately, receiver
// is reawakened — and the test asserts conclusion happened only after
// every sent record was received, under every perturbation class.
func TestQuiesceInFlightNotTermination(t *testing.T) {
	const procs, hops = 8, 200
	for _, pp := range quiescePerturbations {
		for _, seed := range quiesceSeeds {
			t.Run(fmt.Sprintf("%s/seed=%#x", pp.name, seed), func(t *testing.T) {
				_, err := RunChecked(procs, func(c *Comm) error {
					q := NewQuiesce(c)
					sent := 0
					// A deterministic pseudo-random relay: the ball carries its
					// remaining TTL; each receiver forwards it to a rank derived
					// from the TTL until it dies.
					handle := func(src int, ttl int64) [][2]int64 {
						if ttl == 0 {
							return nil
						}
						dst := (c.Rank() + 1 + int(ttl*2654435761)%(c.Size()-1)) % c.Size()
						sent++
						return [][2]int64{{int64(dst), ttl - 1}}
					}
					if c.Rank() == 0 {
						q.NoteSend(1)
						sent++
						c.Isend(1, 0, []int64{hops})
					}
					recvd := quiesceLoop(c, q, handle)
					// Safety observables at the instant this rank learned of
					// termination: globally every record sent was received, and
					// nothing is left queued for anyone.
					if ok, st := c.Iprobe(AnySource, AnyTag); ok {
						return fmt.Errorf("rank %d: app message from %d still queued after termination", c.Rank(), st.Source)
					}
					tot := c.AllreduceInt64(OpSum, []int64{int64(sent), int64(recvd)})
					if tot[0] != tot[1] {
						return fmt.Errorf("sent %d != received %d at termination", tot[0], tot[1])
					}
					if tot[0] != hops+1 {
						return fmt.Errorf("relay died early: %d records, want %d", tot[0], hops+1)
					}
					// Every rank must agree on the detection instant bit for bit
					// (it is carried in the TERM message).
					mx := c.AllreduceInt64(OpMax, []int64{int64(floatBits(q.DetectedAt()))})
					if uint64(mx[0]) != floatBits(q.DetectedAt()) {
						return fmt.Errorf("rank %d: detection instant disagrees with max", c.Rank())
					}
					return nil
				}, WithDeadline(60*time.Second), WithPerturb(seed, pp.p))
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestQuiesceReactivation: ranks alternate idle and active phases — a
// ping-pong where each side goes fully idle (token has every chance to
// sneak a circuit in) between reactions. The detector must wait out all
// rounds and only then conclude.
func TestQuiesceReactivation(t *testing.T) {
	const procs, rounds = 4, 50
	_, err := RunChecked(procs, func(c *Comm) error {
		q := NewQuiesce(c)
		handle := func(src int, v int64) [][2]int64 {
			if v == 0 {
				return nil
			}
			// bounce back with one less life
			return [][2]int64{{int64(src), v - 1}}
		}
		if c.Rank() == 0 {
			// one ping-pong stream per partner rank
			for dst := 1; dst < c.Size(); dst++ {
				q.NoteSend(1)
				c.Isend(dst, 0, []int64{rounds})
			}
		}
		recvd := quiesceLoop(c, q, handle)
		tot := c.AllreduceInt64(OpSum, []int64{int64(recvd)})
		if got := int64(procs-1) * (rounds + 1); tot[0] != got {
			return fmt.Errorf("total receives %d, want %d", tot[0], got)
		}
		return nil
	}, WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuiesceDeterministicInstant: with a fully counted protocol driven
// through the blocking-only Quiesce path, the detection instant is a
// pure function of the virtual timeline. It must be bit-identical
// across scheduler modes and GOMAXPROCS settings.
func TestQuiesceDeterministicInstant(t *testing.T) {
	const procs = 6
	instant := func(mode SchedMode) float64 {
		var at float64
		_, err := RunChecked(procs, func(c *Comm) error {
			q := NewQuiesce(c)
			// Counted app phase: one ring message each, received with a
			// blocking exact-source Recv before entering detection.
			next, prev := (c.Rank()+1)%c.Size(), (c.Rank()+c.Size()-1)%c.Size()
			q.NoteSend(1)
			c.Isend(next, 3, []int64{int64(c.Rank())})
			v, _ := c.Recv(prev, 3)
			if v[0] != int64(prev) {
				return fmt.Errorf("ring got %d from %d", v[0], prev)
			}
			q.NoteRecv(1)
			got := q.Quiesce()
			if got < 0 {
				return errors.New("Quiesce returned without an instant")
			}
			if c.Rank() == 0 {
				at = got
			}
			// All ranks observe the same instant bit for bit.
			mx := c.AllreduceInt64(OpMax, []int64{int64(floatBits(got))})
			if uint64(mx[0]) != floatBits(got) {
				return fmt.Errorf("rank %d: instant %v differs from max", c.Rank(), got)
			}
			return nil
		}, WithScheduler(mode), WithDeadline(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return at
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var ref float64
	first := true
	for _, mode := range []SchedMode{SchedDirect, SchedWorkers} {
		for _, gmp := range []int{1, 2, old} {
			runtime.GOMAXPROCS(gmp)
			got := instant(mode)
			if first {
				ref, first = got, false
				continue
			}
			if got != ref {
				t.Errorf("detection instant %v under %v/GOMAXPROCS=%d, want %v (bit-identical)", got, mode, gmp, ref)
			}
		}
	}
	runtime.GOMAXPROCS(old)
	if ref <= 0 {
		t.Fatalf("reference instant %v, want positive virtual time", ref)
	}
}

// TestQuiesceTokenCostAccounted: detector traffic is real traffic — it
// must show up in the run's send statistics, not ride for free.
func TestQuiesceTokenCostAccounted(t *testing.T) {
	rep, err := RunChecked(4, func(c *Comm) error {
		q := NewQuiesce(c)
		quiesceLoop(c, q, func(int, int64) [][2]int64 { return nil })
		return nil
	}, WithMatrices(), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var sends int64
	for _, rs := range rep.Stats {
		sends += rs.SendCount
	}
	// At least one full token circuit plus the TERM ring.
	if sends < 2*4-1 {
		t.Errorf("detector run recorded %d sends, want at least one circuit + TERM", sends)
	}
}
