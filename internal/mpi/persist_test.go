package mpi

import (
	"strings"
	"testing"
)

func TestPersistentNbrRoundTripAndReuse(t *testing.T) {
	const p = 5
	const rounds = 4
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		nbrs := topo.Neighbors()
		pn := topo.NeighborAlltoallvInit()
		send := make([][]int64, len(nbrs))
		var recv [][]int64
		for r := 0; r < rounds; r++ {
			for i, nb := range nbrs {
				// Variable volume per round: neighbor i gets r+1 words.
				send[i] = send[i][:0]
				for k := 0; k <= r; k++ {
					send[i] = append(send[i], int64(c.Rank()*1_000_000+nb*1000+r))
				}
			}
			pn.Start(send)
			recv = pn.WaitInto(recv)
			for i, nb := range nbrs {
				if len(recv[i]) != r+1 {
					t.Errorf("round %d rank %d from %d: %d words, want %d", r, c.Rank(), nb, len(recv[i]), r+1)
					continue
				}
				want := int64(nb*1_000_000 + c.Rank()*1000 + r)
				for _, g := range recv[i] {
					if g != want {
						t.Errorf("round %d rank %d from %d: got %d want %d", r, c.Rank(), nb, g, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPersistentNbrCheaperThanPerCall is the point of the API: N rounds
// over a persistent schedule must cost less virtual time than N
// independent NeighborAlltoallv calls, because each Start pays only the
// AlphaNbrStart doorbell instead of the full AlphaNbrCall setup.
func TestPersistentNbrCheaperThanPerCall(t *testing.T) {
	const p = 4
	const rounds = 20
	timeOf := func(persistent bool) float64 {
		rep, err := runChecked(p, func(c *Comm) error {
			topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
			send := make([][]int64, len(topo.Neighbors()))
			for i := range send {
				send[i] = []int64{int64(c.Rank())}
			}
			if persistent {
				pn := topo.NeighborAlltoallvInit()
				var recv [][]int64
				for r := 0; r < rounds; r++ {
					pn.Start(send)
					recv = pn.WaitInto(recv)
				}
			} else {
				for r := 0; r < rounds; r++ {
					topo.NeighborAlltoallvInt64(send)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxVirtualTime
	}
	if pt, ct := timeOf(true), timeOf(false); pt >= ct {
		t.Errorf("persistent %d-round loop (%g) should beat per-call loop (%g)", rounds, pt, ct)
	}
}

func TestPersistentNbrMisusePanics(t *testing.T) {
	expectPanic := func(substr string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("no panic, want %q", substr)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
				t.Errorf("panic %v, want substring %q", r, substr)
			}
		}()
		f()
	}
	_, err := runChecked(2, func(c *Comm) error {
		topo := c.CreateGraphTopo([]int{1 - c.Rank()})
		pn := topo.NeighborAlltoallvInit()
		send := [][]int64{{int64(c.Rank())}}
		if c.Rank() == 0 {
			expectPanic("Wait without a started round", func() { pn.Wait() })
			expectPanic("len(send)", func() { pn.Start(nil) })
		}
		pn.Start(send)
		if c.Rank() == 0 {
			expectPanic("while a round is in flight", func() { pn.Start(send) })
		}
		pn.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
