package mpi

import (
	"runtime"
	"sync/atomic"
)

// A task is the scheduler's view of one rank: a resumable unit of work
// that parks when it cannot make progress (empty mailbox, barrier not
// yet full) and is unparked by the event that makes progress possible
// (a message push, a barrier release, a poison sweep). The rank body
// still runs on its own goroutine — arbitrary Go code needs a real
// stack — but in pooled mode the goroutine only runs while it holds a
// worker ticket, so at most workerCount ranks are runnable at once and
// the Go scheduler never sees a 64K-wide runnable set.
//
// Park/unpark is a saturating one-slot notification (the futex/eventcount
// shape): unpark on a running task sets a sticky "notified" token that
// the next park consumes without blocking. Callers therefore tolerate
// spurious wakeups by construction — every blocking site re-checks its
// predicate under the relevant lock after park returns.
type task struct {
	// status is one of taskRunning/taskNotified/taskParked (below).
	status atomic.Int32
	rank   int32
	shard  int32
	// pool is nil in direct (legacy) scheduling mode; park/unpark then
	// degrade to a plain channel handoff with no ticket accounting.
	pool *workerPool
	// wake delivers the worker ticket that resumes this task. Buffered
	// so an unparker never blocks handing the task to a worker, and so
	// a worker can publish the ticket before the task reaches its
	// receive. In direct mode the value is nil.
	wake chan *worker
	// w is the ticket currently held (pooled mode, while running).
	w *worker
}

const (
	taskRunning  = int32(iota) // running, no wakeup pending
	taskNotified               // running, a wakeup arrived and is banked
	taskParked                 // blocked in park awaiting unpark
)

func newTask() *task {
	return &task{wake: make(chan *worker, 1)}
}

// reset prepares a pooled task for a new run.
func (t *task) reset(rank, shard int32, pool *workerPool) {
	t.rank, t.shard, t.pool = rank, shard, pool
	t.status.Store(taskRunning)
	select { // drop any ticket stranded by an abandoned run
	case <-t.wake:
	default:
	}
}

// park blocks the calling task until unpark, consuming a banked
// notification instead of blocking when one is pending. Only the task's
// own goroutine may call it, and never while holding a runtime lock.
func (t *task) park() {
	if t.status.CompareAndSwap(taskNotified, taskRunning) {
		return // wakeup already banked: consume it, don't block
	}
	if !t.status.CompareAndSwap(taskRunning, taskParked) {
		// An unpark slipped in between the two CASes and set Notified.
		t.status.Store(taskRunning)
		return
	}
	if t.pool != nil {
		t.yieldTicket()
	}
	t.w = <-t.wake
}

// unpark makes a parked task runnable (enqueuing it on its shard in
// pooled mode) or banks a notification if the task is running. Safe
// from any goroutine, idempotent, non-blocking.
func (t *task) unpark() {
	for {
		switch s := t.status.Load(); s {
		case taskParked:
			if t.status.CompareAndSwap(taskParked, taskRunning) {
				if p := t.pool; p != nil {
					p.ready(t)
				} else {
					t.wake <- nil
				}
				return
			}
		default: // running or already notified: bank (or keep) the token
			if t.status.CompareAndSwap(s, taskNotified) {
				return
			}
		}
	}
}

// yieldTicket returns the held worker ticket to its worker loop. The
// worker resumes scheduling other tasks; this task must next block on
// t.wake (or exit).
func (t *task) yieldTicket() {
	w := t.w
	t.w = nil
	w.yield <- struct{}{}
}

// yieldNow reschedules the task to the back of its shard's run queue,
// giving other ranks a turn. Poll loops that spin without blocking
// (Iprobe under a miss streak) call it so a full worker pool cannot
// starve the ranks whose messages the poller is waiting for.
func (t *task) yieldNow() {
	p := t.pool
	if p == nil {
		runtime.Gosched()
		return
	}
	p.ready(t) // requeue self; a worker will hand back a ticket on t.wake
	t.yieldTicket()
	t.w = <-t.wake
}
