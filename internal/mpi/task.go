package mpi

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// A task is the scheduler's view of one rank: a resumable unit of work
// that parks when it cannot make progress (empty mailbox, barrier not
// yet full) and is unparked by the event that makes progress possible
// (a message push, a barrier release, a poison sweep). The rank body
// still runs on its own goroutine — arbitrary Go code needs a real
// stack — but in pooled mode the goroutine only runs while it holds a
// worker ticket, so at most workerCount ranks are runnable at once and
// the Go scheduler never sees a 64K-wide runnable set.
//
// Park/unpark is a saturating one-slot notification (the futex/eventcount
// shape): unpark on a running task sets a sticky "notified" token that
// the next park consumes without blocking. Callers therefore tolerate
// spurious wakeups by construction — every blocking site re-checks its
// predicate under the relevant lock after park returns.
//
// The blocking primitive underneath is a benaphore (counting semaphore
// built from an atomic counter plus a mutex that rests locked) instead
// of the earlier per-task buffered channel: a channel costs ~100 heap
// bytes per rank plus a pointer, which at 64K-131K ranks is megabytes of
// per-world state and GC-visible pointers for a strictly 1:1
// block/resume handoff. The benaphore is two inline words. resume() may
// run before block() — the counter banks it, exactly like the old
// capacity-1 channel — and the mutex is only touched when the task
// really has to sleep.
type task struct {
	// status is one of taskRunning/taskNotified/taskParked (below).
	status atomic.Int32
	// sem is the benaphore count: 1 when a resume is banked, -1 while a
	// blocker holds (or is acquiring) mu, 0 at rest.
	sem   atomic.Int32
	rank  int32
	shard int32
	// pool is nil in direct (legacy) scheduling mode; park/unpark then
	// degrade to a bare benaphore handoff with no ticket accounting.
	pool *workerPool
	// w is the ticket currently held (pooled mode, while running). Only
	// the task's own goroutine touches it.
	w *worker
	// handoff is where the resuming worker publishes the ticket before
	// resume(); the task claims it after block(). The next write cannot
	// happen until this task parks again, so the field needs no further
	// synchronization beyond the benaphore's.
	handoff *worker
	// mu rests locked; resume unlocks it only when a blocker is waiting.
	mu sync.Mutex
}

const (
	taskRunning  = int32(iota) // running, no wakeup pending
	taskNotified               // running, a wakeup arrived and is banked
	taskParked                 // blocked in park awaiting unpark
)

// initTask locks the benaphore mutex into its rest state. Called exactly
// once when the task's backing storage is created, never on pooled reuse.
func (t *task) initTask() {
	t.mu.Lock()
}

// block waits for one resume, consuming a banked one without sleeping.
// Rest state: sem == 0 and mu locked. A first-mover blocker drives sem
// to -1 and sleeps in mu.Lock(); the matching resume drives sem back to
// 0 and unlocks, so the blocker's Lock succeeds and mu rests locked
// again.
func (t *task) block() {
	if t.sem.Add(-1) < 0 {
		t.mu.Lock()
	}
}

// resume delivers one block's worth of progress: it wakes a sleeping
// blocker, or banks the wakeup for the next block. Strictly paired 1:1
// with block by the park/unpark protocol.
func (t *task) resume() {
	if t.sem.Add(1) <= 0 {
		t.mu.Unlock()
	}
}

// reset prepares a pooled task for a new run. Only tasks from clean runs
// are reset, so sem is 0 and mu rests locked; the stores are defensive.
func (t *task) reset(rank, shard int32, pool *workerPool) {
	t.rank, t.shard, t.pool = rank, shard, pool
	t.status.Store(taskRunning)
	t.sem.Store(0)
	t.w = nil
	t.handoff = nil
}

// park blocks the calling task until unpark, consuming a banked
// notification instead of blocking when one is pending. Only the task's
// own goroutine may call it, and never while holding a runtime lock.
func (t *task) park() {
	if t.status.CompareAndSwap(taskNotified, taskRunning) {
		return // wakeup already banked: consume it, don't block
	}
	if !t.status.CompareAndSwap(taskRunning, taskParked) {
		// An unpark slipped in between the two CASes and set Notified.
		t.status.Store(taskRunning)
		return
	}
	if t.pool != nil {
		t.yieldTicket()
		t.block()
		t.claimTicket()
		return
	}
	t.block()
}

// claimTicket takes ownership of the worker ticket published by the
// resuming worker.
func (t *task) claimTicket() {
	t.w = t.handoff
	t.handoff = nil
}

// claimParked attempts the parked->running transition. True means the
// caller now owns making the task runnable (enqueue or resume); false
// means the task was running and a notification has been banked instead.
func (t *task) claimParked() bool {
	for {
		s := t.status.Load()
		if s == taskParked {
			if t.status.CompareAndSwap(taskParked, taskRunning) {
				return true
			}
			continue
		}
		// Running or already notified: bank (or keep) the token.
		if t.status.CompareAndSwap(s, taskNotified) {
			return false
		}
	}
}

// unpark makes a parked task runnable (enqueuing it on its shard in
// pooled mode) or banks a notification if the task is running. Safe
// from any goroutine, idempotent, non-blocking.
func (t *task) unpark() {
	if !t.claimParked() {
		return
	}
	if p := t.pool; p != nil {
		p.ready(t)
	} else {
		t.resume()
	}
}

// yieldTicket returns the held worker ticket to its worker loop. The
// worker resumes scheduling other tasks; this task must next block on
// the benaphore (or exit).
func (t *task) yieldTicket() {
	w := t.w
	t.w = nil
	w.yield <- struct{}{}
}

// yieldNow reschedules the task to the back of its shard's run queue,
// giving other ranks a turn. Poll loops that spin without blocking
// (Iprobe under a miss streak) call it so a full worker pool cannot
// starve the ranks whose messages the poller is waiting for.
func (t *task) yieldNow() {
	p := t.pool
	if p == nil {
		runtime.Gosched()
		return
	}
	p.ready(t) // requeue self; a worker will publish a fresh ticket
	t.yieldTicket()
	t.block()
	t.claimTicket()
}
