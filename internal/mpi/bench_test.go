package mpi

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// Micro-benchmarks of the runtime primitives. These measure wall-clock
// cost of the simulation itself (how fast the harness can run
// experiments), not modeled time.

func benchRun(b *testing.B, procs int, body func(c *Comm) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := Run(procs, body, WithDeadline(time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	benchRun(b, 2, func(c *Comm) error {
		const rounds = 200
		for k := 0; k < rounds; k++ {
			if c.Rank() == 0 {
				c.Isend(1, 0, []int64{int64(k)})
				c.Recv(1, 0)
			} else {
				c.Recv(0, 0)
				c.Isend(0, 0, []int64{int64(k)})
			}
		}
		return nil
	})
}

func BenchmarkIsendFanout(b *testing.B) {
	const procs, msgs = 8, 100
	benchRun(b, procs, func(c *Comm) error {
		for k := 0; k < msgs; k++ {
			for d := 0; d < procs; d++ {
				if d != c.Rank() {
					c.Isend(d, 0, []int64{1, 2})
				}
			}
		}
		for k := 0; k < msgs*(procs-1); k++ {
			c.Recv(AnySource, 0)
		}
		return nil
	})
}

func BenchmarkBarrier(b *testing.B) {
	benchRun(b, 8, func(c *Comm) error {
		for k := 0; k < 100; k++ {
			c.Barrier()
		}
		return nil
	})
}

func BenchmarkAllreduce(b *testing.B) {
	benchRun(b, 8, func(c *Comm) error {
		v := []int64{int64(c.Rank())}
		for k := 0; k < 100; k++ {
			c.AllreduceInt64(OpSum, v)
		}
		return nil
	})
}

func BenchmarkNeighborAlltoallv(b *testing.B) {
	const procs = 8
	benchRun(b, procs, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), procs))
		payload := make([]int64, 64)
		send := [][]int64{payload, payload}
		for k := 0; k < 100; k++ {
			topo.NeighborAlltoallvInt64(send)
		}
		return nil
	})
}

// BenchmarkMailboxBacklog drains a 1024-message backlog with tag-specific
// receives. Under the seed's flat linear-scan mailbox every Recv scanned
// the whole queue and compacted it with an O(n) shift-delete, so the
// drain was O(n^2); the bucketed index resolves each (src, tag) lookup
// from a FIFO ring front in O(1).
func BenchmarkMailboxBacklog(b *testing.B) {
	const n, tags = 1024, 8
	benchRun(b, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for k := 0; k < n; k++ {
				c.Isend(1, k%tags, []int64{int64(k), 0, 0})
			}
			c.Barrier()
		} else {
			c.Barrier() // let the full backlog queue up first
			for tag := 0; tag < tags; tag++ {
				for k := 0; k < n/tags; k++ {
					c.Recv(0, tag)
				}
			}
		}
		return nil
	})
}

// BenchmarkIprobeBacklogMiss polls for a tag that is not present while a
// large backlog of other-tag messages is queued — the worst case for a
// linear-scan mailbox (every miss walks the whole queue) and the common
// case for the NSR driver's polling loop under load.
func BenchmarkIprobeBacklogMiss(b *testing.B) {
	const n = 1024
	benchRun(b, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for k := 0; k < n; k++ {
				c.Isend(1, 1, []int64{int64(k)})
			}
			c.Barrier()
		} else {
			c.Barrier()
			for k := 0; k < n; k++ {
				if ok, _ := c.Iprobe(0, 2); ok {
					b.Error("unexpected hit")
				}
			}
			for k := 0; k < n; k++ {
				c.Recv(0, 1)
			}
		}
		return nil
	})
}

// BenchmarkAnySourceFanIn64 receives with AnySource from 64 senders, the
// wildcard pattern of the Send-Recv matching driver.
func BenchmarkAnySourceFanIn64(b *testing.B) {
	const procs, msgs = 65, 8
	benchRun(b, procs, func(c *Comm) error {
		if c.Rank() != 0 {
			for k := 0; k < msgs; k++ {
				c.Isend(0, 3, []int64{int64(c.Rank()), int64(k)})
			}
			return nil
		}
		for k := 0; k < msgs*(procs-1); k++ {
			c.Recv(AnySource, 3)
		}
		return nil
	})
}

// BenchmarkWorldSetup measures the fixed per-Run cost (world
// construction and teardown) with an empty body. Clean worlds are
// pooled across Run invocations, so steady-state setup reuses the
// mailboxes, tasks and comms of the previous run at the same size.
func BenchmarkWorldSetup(b *testing.B) {
	for _, procs := range []int{2, 64, 1024} {
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			body := func(c *Comm) error { return nil }
			for i := 0; i < b.N; i++ {
				if _, err := Run(procs, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRanksLadder returns the world sizes for the ranks-scaling curve.
// The BENCH_RANKS environment variable caps the ladder (default 16384;
// `make bench-ranks` raises it to 131072).
func benchRanksLadder() []int {
	cap := 16384
	if s := os.Getenv("BENCH_RANKS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 2 {
			cap = v
		}
	}
	var out []int
	for _, p := range []int{1024, 4096, 16384, 65536, 131072} {
		if p <= cap {
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkRanksRing is the ranks-scaling curve recorded in
// BENCH_p2p.json: one world per op running a 4-round neighbor ring
// exchange plus a scalar allreduce, at 1K-131K ranks under both
// scheduler modes. Wall-clock per op is the headline number; direct
// mode's slope shows the runnable-set bottleneck the worker pool
// removes.
func BenchmarkRanksRing(b *testing.B) {
	for _, procs := range benchRanksLadder() {
		for _, mode := range []SchedMode{SchedDirect, SchedWorkers} {
			b.Run(fmt.Sprintf("p%d/%s", procs, mode), func(b *testing.B) {
				b.ReportAllocs()
				body := func(c *Comm) error {
					r, n := c.Rank(), c.Size()
					for k := 0; k < 4; k++ {
						c.Isend((r+1)%n, 0, []int64{int64(r), int64(k)})
						c.Recv((r+n-1)%n, 0)
					}
					c.AllreduceScalarInt64(OpMax, int64(r))
					return nil
				}
				for i := 0; i < b.N; i++ {
					if _, err := Run(procs, body, WithScheduler(mode), WithDeadline(10*time.Minute)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkRMAPutFlush(b *testing.B) {
	benchRun(b, 2, func(c *Comm) error {
		win := c.WinCreate(1 << 12)
		data := make([]int64, 16)
		if c.Rank() == 0 {
			for k := 0; k < 200; k++ {
				win.Put(1, (k*16)%(1<<12-16), data)
				if k%10 == 9 {
					win.FlushAll()
				}
			}
			win.FlushAll()
		}
		c.Barrier()
		win.Free()
		return nil
	})
}
