package mpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

// White-box tests for the bucketed mailbox: arrival-order selection,
// per-source FIFO, dual-index lazy deletion under struct pooling, and
// post-poison stability. These pin down the invariants the rewrite must
// preserve (DESIGN §7): matching selects the earliest virtual arrival
// regardless of physical enqueue order, and messages from one source
// never overtake each other.

// pushAt fabricates a user-level world message with an explicit virtual
// arrival time and pushes it, bypassing a Comm (payload = seq for
// identification).
func pushAt(mb *mailbox, src, tag int, arrive float64, seq int64) {
	m := newMessage(src, tag, 0, 0, []int64{seq})
	m.arrive = arrive
	mb.push(m)
}

// drainAll dequeues every user message via AnySource/AnyTag wildcards in
// match order.
func drainAll(mb *mailbox) []*message {
	var out []*message
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		m := mb.matchUserLocked(AnySource, AnyTag, 0, true, 0)
		if m == nil {
			return out
		}
		out = append(out, m)
	}
}

// TestMailboxEarliestArrivalOutOfOrderEnqueue is the regression the old
// flat-slice mailbox solved by linear scan: goroutine scheduling pushes a
// late-stamped message physically before an early-stamped one, and the
// receiver must still see them in virtual-arrival order.
func TestMailboxEarliestArrivalOutOfOrderEnqueue(t *testing.T) {
	mb := newMailbox(4)
	// Physical push order deliberately scrambles virtual arrivals across
	// two sources; per-source stamps stay monotone (senders' clocks are).
	pushAt(mb, 1, 7, 50, 0) // src 1: 50, 60
	pushAt(mb, 0, 7, 10, 1) // src 0: 10, 55
	pushAt(mb, 1, 7, 60, 2)
	pushAt(mb, 0, 7, 55, 3)

	wantArrive := []float64{10, 50, 55, 60}
	wantSrc := []int{0, 1, 0, 1}
	got := drainAll(mb)
	if len(got) != 4 {
		t.Fatalf("drained %d messages, want 4", len(got))
	}
	for i, m := range got {
		if m.arrive != wantArrive[i] || m.src != wantSrc[i] {
			t.Errorf("match %d: (src %d, arrive %g), want (src %d, arrive %g)",
				i, m.src, m.arrive, wantSrc[i], wantArrive[i])
		}
		m.release()
	}
}

// TestMailboxOrderProperty drives the mailbox with randomized interleaved
// pushes (per-source monotone stamps, as the runtime guarantees) and
// checks the two delivery invariants on the wildcard drain: globally
// nondecreasing (arrive, src) order, and per-source FIFO.
func TestMailboxOrderProperty(t *testing.T) {
	const nSrc = 4
	prop := func(deltas []uint8, srcs []uint8) bool {
		mb := newMailbox(nSrc)
		clock := [nSrc]float64{}
		count := [nSrc]int64{}
		n := min(len(deltas), len(srcs))
		for i := 0; i < n; i++ {
			s := int(srcs[i]) % nSrc
			clock[s] += float64(deltas[i]) // monotone per source (may tie)
			pushAt(mb, s, 3, clock[s], count[s])
			count[s]++
		}
		got := drainAll(mb)
		if len(got) != n {
			return false
		}
		var next [nSrc]int64
		for i, m := range got {
			if i > 0 {
				p := got[i-1]
				if m.arrive < p.arrive {
					return false // later match with earlier arrival
				}
			}
			if m.data[0] != next[m.src] {
				return false // per-source FIFO violated
			}
			next[m.src]++
			m.release()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// perturbProfiles enumerates every perturbation profile class (plus the
// all-on and all-off combinations) for the schedule-invariance property
// tests below.
var perturbProfiles = []sched.Profile{
	{},
	{Ties: true},
	{Jitter: 1},
	{Slowdown: 0.5},
	{ProbeMiss: 0.5},
	sched.Full,
}

// TestMailboxPerturbedOrderProperty is the satellite property test for
// perturbed schedules: under EVERY perturbation profile, wildcard
// (AnySource/AnyTag) draining must still deliver each source's messages
// in FIFO order and must lose nothing — permutation is only ever legal
// across sources. With jitter active per-source arrival stamps are no
// longer monotone (the push order is the sender's send order, which is
// what MPI's non-overtaking clause is about), so unlike the unperturbed
// property test this one asserts FIFO by sequence number only.
func TestMailboxPerturbedOrderProperty(t *testing.T) {
	const nSrc = 4
	for _, prof := range perturbProfiles {
		prof := prof
		t.Run(prof.String(), func(t *testing.T) {
			pt := sched.New(0xc0ffee, sched.Profile{Ties: prof.Ties}, 1)
			jit := sched.New(0xbeef, prof, nSrc)
			prop := func(deltas []uint8, srcs []uint8) bool {
				mb := newMailbox(nSrc)
				if pt != nil {
					mb.pert = pt.Rank(0)
				}
				clock := [nSrc]float64{}
				count := [nSrc]int64{}
				n := min(len(deltas), len(srcs))
				for i := 0; i < n; i++ {
					s := int(srcs[i]) % nSrc
					// The sender's clock advances monotonically; the stamped
					// latency is perturbed per profile, so with jitter the
					// arrival stamps within one source can reorder.
					clock[s] += float64(deltas[i])
					arrive := clock[s]
					if jit != nil {
						arrive = clock[s] + jit.Rank(s).Latency(1+float64(deltas[i]))
					}
					pushAt(mb, s, 3, arrive, count[s])
					count[s]++
				}
				got := drainAll(mb)
				if len(got) != n {
					return false
				}
				var next [nSrc]int64
				for _, m := range got {
					if m.data[0] != next[m.src] {
						return false // per-source FIFO violated
					}
					next[m.src]++
					m.release()
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMailboxPerturbedProbeRecvConsistency pins the Drain pattern under
// tie-permutation: whatever message a perturbed wildcard probe reports,
// the follow-up exact (src, tag) match must return that same message —
// a permuted pick is always a bucket front, hence also the front of its
// tag index.
func TestMailboxPerturbedProbeRecvConsistency(t *testing.T) {
	pt := sched.New(42, sched.Profile{Ties: true}, 1)
	mb := newMailbox(4)
	mb.pert = pt.Rank(0)
	seq := int64(0)
	for s := 0; s < 4; s++ {
		for k := 0; k < 3; k++ {
			pushAt(mb, s, 5+k, float64(10+k), seq) // equal stamps across sources: maximal tie sets
			seq++
		}
	}
	for i := 0; i < int(seq); i++ {
		mb.mu.Lock()
		probe := mb.matchUserLocked(AnySource, AnyTag, 0, false, 100)
		if probe == nil {
			mb.mu.Unlock()
			t.Fatalf("probe %d found nothing with %d messages left", i, int(seq)-i)
		}
		got := mb.matchUserLocked(probe.src, probe.tag, 0, true, 100)
		mb.mu.Unlock()
		if got != probe {
			t.Fatalf("probe %d saw src %d tag %d but exact match returned a different message", i, probe.src, probe.tag)
		}
		got.release()
	}
}

// TestMailboxTiePermutationActuallyPermutes guards against the hooks
// silently becoming dead code: with several equal-stamp fronts and Ties
// enabled, different seeds must produce more than one wildcard
// selection order.
func TestMailboxTiePermutationActuallyPermutes(t *testing.T) {
	orders := map[string]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		pt := sched.New(seed, sched.Profile{Ties: true}, 1)
		mb := newMailbox(4)
		mb.pert = pt.Rank(0)
		for s := 0; s < 4; s++ {
			pushAt(mb, s, 1, 10, int64(s)) // all tied
		}
		order := ""
		for _, m := range drainAll(mb) {
			order += fmt.Sprint(m.src)
			m.release()
		}
		orders[order] = true
	}
	if len(orders) < 2 {
		t.Fatalf("16 seeds produced only the selection order(s) %v; tie permutation is inert", orders)
	}
}

// TestMailboxStaleTagEntrySurvivesReuse pins the interaction of lazy
// dual-index deletion with struct pooling: a message dequeued through the
// arrival FIFO leaves a stale pointer in its tag FIFO, and once the
// struct is recycled for an unrelated send the stale entry must stay
// dead — matching it would steal a message queued elsewhere and deadlock
// the rightful receiver. The generation check in qent is what enforces
// this.
func TestMailboxStaleTagEntrySurvivesReuse(t *testing.T) {
	a, b := newMailbox(2), newMailbox(2)
	pushAt(a, 0, 1, 10, 100)
	pushAt(a, 0, 2, 20, 200) // keeps bucket 0 of a live after the take

	// Dequeue the tag-1 message through the wildcard (arrival-FIFO) path;
	// its tags[{0,1}] queue now holds a stale entry.
	a.mu.Lock()
	m := a.matchUserLocked(AnySource, AnyTag, 0, true, 0)
	a.mu.Unlock()
	if m == nil || m.tag != 1 {
		t.Fatalf("wildcard match = %+v, want the tag-1 message", m)
	}

	// Recycle the struct the way release+newMessage would when the pool
	// hands the same struct back, and enqueue it on a different mailbox
	// with the same source and tag.
	m.release()
	m2 := newMessage(0, 1, 0, 0, []int64{300})
	m2.arrive = 5
	b.push(m2)

	// The stale entry in a must not resurrect, even if the recycled
	// struct is the one it points at and looks live again.
	a.mu.Lock()
	stale := a.matchUserLocked(0, 1, 0, true, 0)
	a.mu.Unlock()
	if stale != nil {
		t.Fatalf("mailbox a matched a recycled message: src %d tag %d data %v", stale.src, stale.tag, stale.data)
	}
	b.mu.Lock()
	got := b.matchUserLocked(0, 1, 0, true, 0)
	b.mu.Unlock()
	if got == nil || got.data[0] != 300 {
		t.Fatalf("mailbox b lost its message: %+v", got)
	}
}

// TestMailboxExactTagMatchesWildcardView: Iprobe(AnySource) reports a
// message's (src, tag); the follow-up exact Recv must find the same
// message. This is the transport Drain pattern, and it exercises the tag
// index against the arrival index.
func TestMailboxExactTagMatchesWildcardView(t *testing.T) {
	mb := newMailbox(3)
	pushAt(mb, 2, 9, 30, 0)
	pushAt(mb, 1, 4, 40, 1)
	for i := 0; i < 2; i++ {
		mb.mu.Lock()
		probe := mb.matchUserLocked(AnySource, AnyTag, 0, false, 0)
		if probe == nil {
			mb.mu.Unlock()
			t.Fatalf("probe %d found nothing", i)
		}
		got := mb.matchUserLocked(probe.src, probe.tag, 0, true, 0)
		mb.mu.Unlock()
		if got != probe {
			t.Fatalf("probe %d saw %p (src %d tag %d) but exact match returned %p", i, probe, probe.src, probe.tag, got)
		}
		got.release()
	}
}

// TestMailboxPoisonedPushNoOp: after poison, push must drop the message
// without touching the queues or the eager-buffer accounting, so the
// high-water snapshot a failed run reports is stable no matter how late
// the surviving senders race.
func TestMailboxPoisonedPushNoOp(t *testing.T) {
	mb := newMailbox(2)
	pushAt(mb, 0, 1, 1, 0) // 8 bytes queued
	if hw := mb.highWater(); hw != 8 {
		t.Fatalf("high-water before poison = %d, want 8", hw)
	}
	mb.poison()
	pushAt(mb, 1, 1, 2, 1)
	pushAt(mb, 1, 1, 3, 2)
	if hw := mb.highWater(); hw != 8 {
		t.Errorf("high-water moved after poison: %d, want 8", hw)
	}
	if n := mb.pendingUser(); n != 1 {
		t.Errorf("pending after poisoned pushes = %d, want 1", n)
	}
	mb.mu.Lock()
	m := mb.matchUserLocked(AnySource, AnyTag, 0, true, 0)
	mb.mu.Unlock()
	if m == nil || m.data[0] != 0 {
		t.Errorf("pre-poison message lost: %+v", m)
	}
}
