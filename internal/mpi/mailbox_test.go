package mpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

// White-box tests for the bucketed mailbox: arrival-order selection,
// per-source FIFO, dual-index lazy deletion under struct pooling, and
// post-poison stability. These pin down the invariants the rewrite must
// preserve (DESIGN §7): matching selects the earliest virtual arrival
// regardless of physical enqueue order, and messages from one source
// never overtake each other.

// pushAt fabricates a user-level world message with an explicit virtual
// arrival time and pushes it, bypassing a Comm (payload = seq for
// identification).
func pushAt(mb *mailbox, src, tag int, arrive float64, seq int64) {
	m := newMessage(src, tag, 0, 0, []int64{seq})
	m.arrive = arrive
	mb.push(m)
}

// drainAll dequeues every user message via AnySource/AnyTag wildcards in
// match order.
func drainAll(mb *mailbox) []*message {
	var out []*message
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		m := mb.matchUserLocked(AnySource, AnyTag, 0, true, 0)
		if m == nil {
			return out
		}
		out = append(out, m)
	}
}

// TestMailboxEarliestArrivalOutOfOrderEnqueue is the regression the old
// flat-slice mailbox solved by linear scan: goroutine scheduling pushes a
// late-stamped message physically before an early-stamped one, and the
// receiver must still see them in virtual-arrival order.
func TestMailboxEarliestArrivalOutOfOrderEnqueue(t *testing.T) {
	mb := newMailbox(4)
	// Physical push order deliberately scrambles virtual arrivals across
	// two sources; per-source stamps stay monotone (senders' clocks are).
	pushAt(mb, 1, 7, 50, 0) // src 1: 50, 60
	pushAt(mb, 0, 7, 10, 1) // src 0: 10, 55
	pushAt(mb, 1, 7, 60, 2)
	pushAt(mb, 0, 7, 55, 3)

	wantArrive := []float64{10, 50, 55, 60}
	wantSrc := []int{0, 1, 0, 1}
	got := drainAll(mb)
	if len(got) != 4 {
		t.Fatalf("drained %d messages, want 4", len(got))
	}
	for i, m := range got {
		if m.arrive != wantArrive[i] || m.src != wantSrc[i] {
			t.Errorf("match %d: (src %d, arrive %g), want (src %d, arrive %g)",
				i, m.src, m.arrive, wantSrc[i], wantArrive[i])
		}
		m.release()
	}
}

// TestMailboxOrderProperty drives the mailbox with randomized interleaved
// pushes (per-source monotone stamps, as the runtime guarantees) and
// checks the two delivery invariants on the wildcard drain: globally
// nondecreasing (arrive, src) order, and per-source FIFO.
func TestMailboxOrderProperty(t *testing.T) {
	const nSrc = 4
	prop := func(deltas []uint8, srcs []uint8) bool {
		mb := newMailbox(nSrc)
		clock := [nSrc]float64{}
		count := [nSrc]int64{}
		n := min(len(deltas), len(srcs))
		for i := 0; i < n; i++ {
			s := int(srcs[i]) % nSrc
			clock[s] += float64(deltas[i]) // monotone per source (may tie)
			pushAt(mb, s, 3, clock[s], count[s])
			count[s]++
		}
		got := drainAll(mb)
		if len(got) != n {
			return false
		}
		var next [nSrc]int64
		for i, m := range got {
			if i > 0 {
				p := got[i-1]
				if m.arrive < p.arrive {
					return false // later match with earlier arrival
				}
			}
			if m.data[0] != next[m.src] {
				return false // per-source FIFO violated
			}
			next[m.src]++
			m.release()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// perturbProfiles enumerates every perturbation profile class (plus the
// all-on and all-off combinations) for the schedule-invariance property
// tests below.
var perturbProfiles = []sched.Profile{
	{},
	{Ties: true},
	{Jitter: 1},
	{Slowdown: 0.5},
	{ProbeMiss: 0.5},
	sched.Full,
}

// TestMailboxPerturbedOrderProperty is the satellite property test for
// perturbed schedules: under EVERY perturbation profile, wildcard
// (AnySource/AnyTag) draining must still deliver each source's messages
// in FIFO order and must lose nothing — permutation is only ever legal
// across sources. With jitter active per-source arrival stamps are no
// longer monotone (the push order is the sender's send order, which is
// what MPI's non-overtaking clause is about), so unlike the unperturbed
// property test this one asserts FIFO by sequence number only.
func TestMailboxPerturbedOrderProperty(t *testing.T) {
	const nSrc = 4
	for _, prof := range perturbProfiles {
		prof := prof
		t.Run(prof.String(), func(t *testing.T) {
			pt := sched.New(0xc0ffee, sched.Profile{Ties: prof.Ties}, 1)
			jit := sched.New(0xbeef, prof, nSrc)
			prop := func(deltas []uint8, srcs []uint8) bool {
				mb := newMailbox(nSrc)
				if pt != nil {
					mb.pert = pt.Rank(0)
				}
				clock := [nSrc]float64{}
				count := [nSrc]int64{}
				n := min(len(deltas), len(srcs))
				for i := 0; i < n; i++ {
					s := int(srcs[i]) % nSrc
					// The sender's clock advances monotonically; the stamped
					// latency is perturbed per profile, so with jitter the
					// arrival stamps within one source can reorder.
					clock[s] += float64(deltas[i])
					arrive := clock[s]
					if jit != nil {
						arrive = clock[s] + jit.Rank(s).Latency(1+float64(deltas[i]))
					}
					pushAt(mb, s, 3, arrive, count[s])
					count[s]++
				}
				got := drainAll(mb)
				if len(got) != n {
					return false
				}
				var next [nSrc]int64
				for _, m := range got {
					if m.data[0] != next[m.src] {
						return false // per-source FIFO violated
					}
					next[m.src]++
					m.release()
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMailboxPerturbedProbeRecvConsistency pins the Drain pattern under
// tie-permutation: whatever message a perturbed wildcard probe reports,
// the follow-up exact (src, tag) match must return that same message —
// a permuted pick is always a bucket front, hence also the front of its
// tag index.
func TestMailboxPerturbedProbeRecvConsistency(t *testing.T) {
	pt := sched.New(42, sched.Profile{Ties: true}, 1)
	mb := newMailbox(4)
	mb.pert = pt.Rank(0)
	seq := int64(0)
	for s := 0; s < 4; s++ {
		for k := 0; k < 3; k++ {
			pushAt(mb, s, 5+k, float64(10+k), seq) // equal stamps across sources: maximal tie sets
			seq++
		}
	}
	for i := 0; i < int(seq); i++ {
		mb.mu.Lock()
		probe := mb.matchUserLocked(AnySource, AnyTag, 0, false, 100)
		if probe == nil {
			mb.mu.Unlock()
			t.Fatalf("probe %d found nothing with %d messages left", i, int(seq)-i)
		}
		got := mb.matchUserLocked(probe.src, probe.tag, 0, true, 100)
		mb.mu.Unlock()
		if got != probe {
			t.Fatalf("probe %d saw src %d tag %d but exact match returned a different message", i, probe.src, probe.tag)
		}
		got.release()
	}
}

// TestMailboxTiePermutationActuallyPermutes guards against the hooks
// silently becoming dead code: with several equal-stamp fronts and Ties
// enabled, different seeds must produce more than one wildcard
// selection order.
func TestMailboxTiePermutationActuallyPermutes(t *testing.T) {
	orders := map[string]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		pt := sched.New(seed, sched.Profile{Ties: true}, 1)
		mb := newMailbox(4)
		mb.pert = pt.Rank(0)
		for s := 0; s < 4; s++ {
			pushAt(mb, s, 1, 10, int64(s)) // all tied
		}
		order := ""
		for _, m := range drainAll(mb) {
			order += fmt.Sprint(m.src)
			m.release()
		}
		orders[order] = true
	}
	if len(orders) < 2 {
		t.Fatalf("16 seeds produced only the selection order(s) %v; tie permutation is inert", orders)
	}
}

// TestMailboxStaleTagEntrySurvivesReuse pins the interaction of lazy
// dual-index deletion with struct pooling: a message dequeued through the
// arrival FIFO leaves a stale pointer in its tag FIFO, and once the
// struct is recycled for an unrelated send the stale entry must stay
// dead — matching it would steal a message queued elsewhere and deadlock
// the rightful receiver. The generation check in qent is what enforces
// this.
func TestMailboxStaleTagEntrySurvivesReuse(t *testing.T) {
	a, b := newMailbox(2), newMailbox(2)
	pushAt(a, 0, 1, 10, 100)
	pushAt(a, 0, 2, 20, 200) // keeps bucket 0 of a live after the take

	// Dequeue the tag-1 message through the wildcard (arrival-FIFO) path;
	// its tags[{0,1}] queue now holds a stale entry.
	a.mu.Lock()
	m := a.matchUserLocked(AnySource, AnyTag, 0, true, 0)
	a.mu.Unlock()
	if m == nil || m.tag != 1 {
		t.Fatalf("wildcard match = %+v, want the tag-1 message", m)
	}

	// Recycle the struct the way release+newMessage would when the pool
	// hands the same struct back, and enqueue it on a different mailbox
	// with the same source and tag.
	m.release()
	m2 := newMessage(0, 1, 0, 0, []int64{300})
	m2.arrive = 5
	b.push(m2)

	// The stale entry in a must not resurrect, even if the recycled
	// struct is the one it points at and looks live again.
	a.mu.Lock()
	stale := a.matchUserLocked(0, 1, 0, true, 0)
	a.mu.Unlock()
	if stale != nil {
		t.Fatalf("mailbox a matched a recycled message: src %d tag %d data %v", stale.src, stale.tag, stale.data)
	}
	b.mu.Lock()
	got := b.matchUserLocked(0, 1, 0, true, 0)
	b.mu.Unlock()
	if got == nil || got.data[0] != 300 {
		t.Fatalf("mailbox b lost its message: %+v", got)
	}
}

// TestMailboxExactTagMatchesWildcardView: Iprobe(AnySource) reports a
// message's (src, tag); the follow-up exact Recv must find the same
// message. This is the transport Drain pattern, and it exercises the tag
// index against the arrival index.
func TestMailboxExactTagMatchesWildcardView(t *testing.T) {
	mb := newMailbox(3)
	pushAt(mb, 2, 9, 30, 0)
	pushAt(mb, 1, 4, 40, 1)
	for i := 0; i < 2; i++ {
		mb.mu.Lock()
		probe := mb.matchUserLocked(AnySource, AnyTag, 0, false, 0)
		if probe == nil {
			mb.mu.Unlock()
			t.Fatalf("probe %d found nothing", i)
		}
		got := mb.matchUserLocked(probe.src, probe.tag, 0, true, 0)
		mb.mu.Unlock()
		if got != probe {
			t.Fatalf("probe %d saw %p (src %d tag %d) but exact match returned %p", i, probe, probe.src, probe.tag, got)
		}
		got.release()
	}
}

// TestMailboxPoisonedPushNoOp: after poison, push must drop the message
// without touching the queues or the eager-buffer accounting, so the
// high-water snapshot a failed run reports is stable no matter how late
// the surviving senders race.
func TestMailboxPoisonedPushNoOp(t *testing.T) {
	mb := newMailbox(2)
	pushAt(mb, 0, 1, 1, 0) // 8 bytes queued
	if hw := mb.highWater(); hw != 8 {
		t.Fatalf("high-water before poison = %d, want 8", hw)
	}
	mb.poison()
	pushAt(mb, 1, 1, 2, 1)
	pushAt(mb, 1, 1, 3, 2)
	if hw := mb.highWater(); hw != 8 {
		t.Errorf("high-water moved after poison: %d, want 8", hw)
	}
	if n := mb.pendingUser(); n != 1 {
		t.Errorf("pending after poisoned pushes = %d, want 1", n)
	}
	mb.mu.Lock()
	m := mb.matchUserLocked(AnySource, AnyTag, 0, true, 0)
	mb.mu.Unlock()
	if m == nil || m.data[0] != 0 {
		t.Errorf("pre-poison message lost: %+v", m)
	}
}

// TestMailboxDenseSparseCrossover pins the bucket-storage crossover at
// denseSrcLimit: a world of exactly denseSrcLimit ranks uses the dense
// pointer table, one rank more uses the scan/map path — and matching
// semantics (bucket resolution for edge sources, per-source FIFO,
// AnySource ties breaking toward the lower source) are identical on
// both sides of the threshold.
func TestMailboxDenseSparseCrossover(t *testing.T) {
	for _, n := range []int{denseSrcLimit, denseSrcLimit + 1} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			mb := newMailbox(n)
			wantDense := n <= denseSrcLimit
			if gotDense := mb.dense != nil; gotDense != wantDense {
				t.Fatalf("n=%d: dense table present=%v, want %v", n, gotDense, wantDense)
			}
			if wantDense && len(mb.dense) != n {
				t.Fatalf("dense table len %d, want %d", len(mb.dense), n)
			}
			// Sources at both edges of the id space, plus a middle one.
			lo, mid, hi := 0, n/2, n-1
			pushAt(mb, hi, 7, 30, 0) // ties at arrive=30 with mid: lower src wins
			pushAt(mb, lo, 7, 40, 1)
			pushAt(mb, mid, 7, 30, 2)
			pushAt(mb, lo, 7, 41, 3) // FIFO behind lo's first
			for _, src := range []int{lo, mid, hi} {
				if mb.peek(int32(src)) == nil {
					t.Fatalf("n=%d: bucket for src %d did not resolve", n, src)
				}
			}
			if b := mb.peek(int32(mid + 1)); b != nil {
				t.Fatalf("n=%d: phantom bucket for silent src %d", n, mid+1)
			}
			got := drainAll(mb)
			wantSrc := []int{mid, hi, lo, lo}
			wantSeq := []int64{2, 0, 1, 3}
			if len(got) != len(wantSrc) {
				t.Fatalf("drained %d messages, want %d", len(got), len(wantSrc))
			}
			for i, m := range got {
				if m.src != wantSrc[i] || m.data[0] != wantSeq[i] {
					t.Errorf("n=%d match %d: (src %d, seq %d), want (src %d, seq %d)",
						n, i, m.src, m.data[0], wantSrc[i], wantSeq[i])
				}
				m.release()
			}
		})
	}
}

// TestMailboxSparseMapSpill drives a large-world mailbox past
// bucketScanLimit distinct sources: below the limit buckets are found by
// scanning the used list (no map exists), above it the map is installed
// once and every bucket — old and new — still resolves.
func TestMailboxSparseMapSpill(t *testing.T) {
	n := denseSrcLimit + 100
	mb := newMailbox(n)
	nsrc := bucketScanLimit + 4
	for s := 0; s < nsrc; s++ {
		pushAt(mb, s, 3, float64(s+1), int64(s))
		if s == bucketScanLimit-2 && mb.sparse != nil {
			t.Fatalf("map installed at %d sources, below the scan limit %d", s+1, bucketScanLimit)
		}
	}
	if mb.sparse == nil {
		t.Fatalf("map not installed after %d sources (scan limit %d)", nsrc, bucketScanLimit)
	}
	if len(mb.sparse) != nsrc {
		t.Fatalf("spilled map holds %d buckets, want %d", len(mb.sparse), nsrc)
	}
	for s := 0; s < nsrc; s++ {
		mb.mu.Lock()
		m := mb.matchUserLocked(s, 3, 0, true, 0)
		mb.mu.Unlock()
		if m == nil || m.data[0] != int64(s) {
			t.Fatalf("exact-source match for src %d failed after map spill: %+v", s, m)
		}
		m.release()
	}
}

// TestMailboxRingTrimOnReset pins the backlog-spike shedding (the old
// unbounded recycled-queue list): after a burst grows a ring well past
// qRetainEnts, reset must cap the retained capacity, while a
// steady-state-sized ring is kept for reuse.
func TestMailboxRingTrimOnReset(t *testing.T) {
	mb := newMailbox(8)
	const burst = 4 * qRetainEnts
	for i := 0; i < burst; i++ {
		pushAt(mb, 1, 2, float64(i+1), int64(i))
	}
	pushAt(mb, 2, 2, 1, 0) // steady-sized ring on another source
	b1 := mb.peek(1)
	if c := cap(b1.userPeek(0).buf); c < burst {
		t.Fatalf("burst ring capacity %d, want >= %d", c, burst)
	}
	mb.reset() // releases the backlog and trims spike-sized rings
	if c := cap(b1.userPeek(0).buf); c > qRetainEnts {
		t.Errorf("user ring kept capacity %d after reset, want <= %d", c, qRetainEnts)
	}
	if c := cap(b1.tagPeek(0, 2).buf); c > qRetainEnts {
		t.Errorf("tag ring kept capacity %d after reset, want <= %d", c, qRetainEnts)
	}
	b2 := mb.peek(2)
	if q := b2.userPeek(0); q == nil || cap(q.buf) == 0 || cap(q.buf) > qRetainEnts {
		t.Errorf("steady ring not retained for reuse: %+v", q)
	}
	if got := mb.pendingUser(); got != 0 {
		t.Errorf("pending after reset = %d, want 0", got)
	}
}

// TestMailboxInternalSlotRetire pins the in-place retirement of internal
// (itag) queue slots: draining an itag frees its slot (itag 0) and the
// next fresh itag reuses slot and ring instead of growing the index.
func TestMailboxInternalSlotRetire(t *testing.T) {
	mb := newMailbox(4)
	push := func(itag int64, seq int64) {
		m := newMessage(1, 0, itag, 0, []int64{seq})
		m.arrive = float64(seq)
		mb.push(m)
	}
	take := func(itag int64, wantSeq int64) {
		mb.mu.Lock()
		m := mb.matchInternalLocked(1, itag, true)
		mb.mu.Unlock()
		if m == nil || m.data[0] != wantSeq {
			t.Fatalf("itag %d: got %+v, want seq %d", itag, m, wantSeq)
		}
		m.release()
	}
	for round := int64(1); round <= 5; round++ {
		itag := round * 1000 // fresh key every round, like topology sequence numbers
		push(itag, round)
		push(itag, round+100)
		take(itag, round)
		take(itag, round+100)
	}
	b := mb.peek(1)
	if len(b.intl) != 1 {
		t.Fatalf("internal index grew to %d slots across rounds, want 1 (retire-in-place)", len(b.intl))
	}
	if b.intl[0].itag != 0 {
		t.Errorf("drained slot still keyed %d, want 0 (free)", b.intl[0].itag)
	}
	if cap(b.intl[0].q.buf) == 0 {
		t.Errorf("retired slot dropped its ring; want it retained for reuse")
	}
}
