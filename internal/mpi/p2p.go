package mpi

import (
	"fmt"
	"sync"
)

// Status describes a received or probed message, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int // number of int64 words in the payload
}

// message is an in-flight payload. itag != 0 marks runtime-internal
// traffic (neighborhood collectives, RMA control) which is invisible to
// user-level Recv/Probe.
type message struct {
	src    int // sender's rank within the sending communicator
	tag    int
	itag   int64
	mctx   int32 // communicator id (user-level traffic only)
	data   []int64
	bytes  int64
	arrive float64 // virtual arrival time at the receiver
}

// mailbox is one rank's receive queue. Senders push under mu; the owner
// scans for matches. FIFO order per (src,tag) gives MPI's non-overtaking
// guarantee.
type mailbox struct {
	mu       sync.Mutex
	cv       *sync.Cond
	q        []*message
	queued   int64 // bytes currently queued (eager-buffer occupancy)
	hw       int64 // high-water of queued
	poisoned bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cv = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m *message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.queued += m.bytes
	if mb.queued > mb.hw {
		mb.hw = mb.queued
	}
	mb.mu.Unlock()
	mb.cv.Broadcast()
}

// match finds the queued message matching (src, tag, itag) with the
// earliest virtual arrival time and, if remove is set, dequeues it.
// Returns nil when nothing matches.
//
// Selecting by virtual arrival rather than physical queue position
// matters for timing fidelity: goroutine scheduling (especially on few
// cores) can enqueue a late-stamped message ahead of an early-stamped
// one, and processing the late one first would ratchet the receiver's
// clock and contaminate every subsequent reply with artificial delay.
// Ties (and messages from one source, whose stamps are monotone) retain
// FIFO order, preserving MPI's non-overtaking guarantee.
func (mb *mailbox) match(src, tag int, itag int64, mctx int32, remove bool) *message {
	best := -1
	for i, m := range mb.q {
		if m.itag != itag {
			continue
		}
		if itag == 0 {
			if m.mctx != mctx {
				continue
			}
			if src != AnySource && m.src != src {
				continue
			}
			if tag != AnyTag && m.tag != tag {
				continue
			}
		} else if m.src != src {
			continue
		}
		if best < 0 || m.arrive < mb.q[best].arrive {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	m := mb.q[best]
	if remove {
		mb.q = append(mb.q[:best], mb.q[best+1:]...)
		mb.queued -= m.bytes
	}
	return m
}

func (mb *mailbox) poison() {
	mb.mu.Lock()
	mb.poisoned = true
	mb.mu.Unlock()
	mb.cv.Broadcast()
}

func (mb *mailbox) highWater() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.hw
}

// poison unblocks every rank in the world after a failure so the run can
// unwind instead of deadlocking.
func (w *World) poison() {
	w.hub.poison()
	for _, mb := range w.mailboxes {
		mb.poison()
	}
}

// Isend posts a nonblocking standard-mode send of data to rank dst with
// the given tag (tag must be >= 0). The payload is copied, so the caller
// may immediately reuse data — this mirrors MPI eager-protocol semantics,
// under which small sends complete locally and the message is buffered at
// the receiver. The sender is charged only its software send overhead.
func (c *Comm) Isend(dst, tag int, data []int64) {
	c.send(dst, tag, data, false)
}

// Send is a blocking standard-mode send. Under the runtime's eager
// delivery it is equivalent to Isend; it exists so ported code reads
// naturally.
func (c *Comm) Send(dst, tag int, data []int64) {
	c.send(dst, tag, data, false)
}

// Ssend is a synchronous-mode send: functionally identical to Send, but
// the sender is additionally charged a rendezvous round trip
// (CostModel.SyncSendRTT). The MatchBox-P baseline model uses this.
func (c *Comm) Ssend(dst, tag int, data []int64) {
	c.send(dst, tag, data, true)
}

func (c *Comm) send(dst, tag int, data []int64, sync bool) {
	c.checkRank(dst, "send")
	if tag < 0 {
		panic(fmt.Sprintf("mpi: send with negative tag %d (tags < 0 are reserved)", tag))
	}
	m := &message{src: c.rank, tag: tag, mctx: c.ctx, data: append([]int64(nil), data...)}
	m.bytes = int64(8 * len(m.data))
	cost := c.w.cost
	c.chargeComm(cost.SendOverhead)
	if sync {
		c.chargeComm(cost.SyncSendRTT)
		c.ps.rs.SyncSends++
	}
	m.arrive = c.ps.now + cost.AlphaP2P + cost.BetaP2P*float64(m.bytes)
	c.ps.rs.noteSend(c.worldRank(dst), m.bytes)
	c.w.mailboxes[c.worldRank(dst)].push(m)
}

// Recv blocks until a message matching (src, tag) is available and returns
// its payload. src may be AnySource and tag may be AnyTag. The receiver's
// clock advances to at least the message's arrival time.
func (c *Comm) Recv(src, tag int) ([]int64, Status) {
	if src != AnySource {
		c.checkRank(src, "recv")
	}
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.match(src, tag, 0, c.ctx, true); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: Recv aborted: a peer rank failed")
		}
		mb.cv.Wait()
	}
	mb.mu.Unlock()
	c.completeRecv(m)
	return m.data, Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
}

// Iprobe checks, without blocking, whether a message matching (src, tag)
// is queued. It charges the probe overhead so that poll-heavy code (the
// Send-Recv matching driver) pays for its polling, as it does under MPI.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	if src != AnySource {
		c.checkRank(src, "iprobe")
	}
	c.chargeComm(c.w.cost.ProbeOverhead)
	c.ps.rs.ProbeCount++
	mb := c.mbox()
	mb.mu.Lock()
	m := mb.match(src, tag, 0, c.ctx, false)
	mb.mu.Unlock()
	if m == nil {
		return false, Status{}
	}
	c.ps.rs.ProbeHits++
	return true, Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
}

// Probe blocks until a message matching (src, tag) is queued and returns
// its status without receiving it.
func (c *Comm) Probe(src, tag int) Status {
	if src != AnySource {
		c.checkRank(src, "probe")
	}
	c.chargeComm(c.w.cost.ProbeOverhead)
	c.ps.rs.ProbeCount++
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.match(src, tag, 0, c.ctx, false); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: Probe aborted: a peer rank failed")
		}
		mb.cv.Wait()
	}
	mb.mu.Unlock()
	c.ps.rs.ProbeHits++
	c.waitUntil(m.arrive)
	return Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
}

// completeRecv applies receive-side timing and accounting for m.
func (c *Comm) completeRecv(m *message) {
	rs := c.ps.rs
	if d := m.arrive - c.ps.now; d > 0 {
		rs.RecvWaitTime += d
		if d > rs.MaxRecvWait {
			rs.MaxRecvWait = d
			rs.MaxRecvWaitSrc = m.src
		}
	}
	c.waitUntil(m.arrive)
	c.chargeComm(c.w.cost.RecvOverhead)
	rs.RecvCount++
	rs.RecvBytes += m.bytes
}

// internalSend delivers runtime-internal traffic (neighborhood collective
// chunks, RMA control messages) outside the user tag space. alpha/beta
// select the cost category; note attributes the traffic in the ledger.
func (c *Comm) internalSend(dst int, itag int64, data []int64, alpha, beta float64, note func(rs *RankStats, dst int, bytes int64)) {
	m := &message{src: c.rank, itag: itag, data: append([]int64(nil), data...)}
	m.bytes = int64(8 * len(m.data))
	m.arrive = c.ps.now + alpha + beta*float64(m.bytes)
	if note != nil {
		note(c.ps.rs, c.worldRank(dst), m.bytes)
	}
	c.w.mailboxes[c.worldRank(dst)].push(m)
}

// internalRecv blocks for an internal message from src with the exact itag.
func (c *Comm) internalRecv(src int, itag int64) []int64 {
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.match(src, 0, itag, 0, true); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: internal recv aborted: a peer rank failed")
		}
		mb.cv.Wait()
	}
	mb.mu.Unlock()
	c.waitUntil(m.arrive)
	return m.data
}

// PendingMessages returns how many user-level messages are queued for this
// rank (diagnostic; used by tests to verify clean shutdown).
func (c *Comm) PendingMessages() int {
	mb := c.mbox()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, m := range mb.q {
		if m.itag == 0 {
			n++
		}
	}
	return n
}
