package mpi

import "fmt"

// Status describes a received or probed message, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int // number of int64 words in the payload
}

// poison unblocks every rank in the world after a failure so the run can
// unwind instead of deadlocking. All poisoned flags — every collective
// hub's (the world's and any Split sub-communicators') and every
// mailbox's — are raised first, and only then is every task unparked
// once. The flag-before-wake order means a rank that is about to park
// re-checks its predicate under the relevant lock (or atomic) and sees
// the flag, so no rank can sleep through the teardown; a wakeup landing
// on a healthy running rank just banks a notification its next park
// consumes harmlessly.
func (w *World) poison() {
	w.hubMu.Lock()
	for _, h := range w.hubs {
		h.poison()
	}
	w.hubMu.Unlock()
	for _, mb := range w.mailboxes {
		mb.poison()
	}
	for _, t := range w.tasks {
		t.unpark()
	}
}

// pollYieldEvery bounds how long a non-blocking poll loop (Iprobe,
// NbrRequest.Test) may spin without yielding the scheduler. In pooled
// mode a handful of spinning pollers could otherwise hold every worker
// ticket and starve the very ranks whose sends they are polling for.
const pollYieldEvery = 64

// pollMiss records an unfruitful non-blocking poll, periodically
// rescheduling the rank to the back of its run queue.
func (c *Comm) pollMiss() {
	c.ps.pollMisses++
	if c.ps.pollMisses%pollYieldEvery == 0 {
		c.ps.task.yieldNow()
	}
}

// Isend posts a nonblocking standard-mode send of data to rank dst with
// the given tag (tag must be >= 0). The payload is copied, so the caller
// may immediately reuse data — this mirrors MPI eager-protocol semantics,
// under which small sends complete locally and the message is buffered at
// the receiver. The sender is charged only its software send overhead.
func (c *Comm) Isend(dst, tag int, data []int64) {
	c.send(dst, tag, data, false)
}

// Send is a blocking standard-mode send. Under the runtime's eager
// delivery it is equivalent to Isend; it exists so ported code reads
// naturally.
func (c *Comm) Send(dst, tag int, data []int64) {
	c.send(dst, tag, data, false)
}

// Ssend is a synchronous-mode send: functionally identical to Send, but
// the sender is additionally charged a rendezvous round trip
// (CostModel.SyncSendRTT). The MatchBox-P baseline model uses this.
func (c *Comm) Ssend(dst, tag int, data []int64) {
	c.send(dst, tag, data, true)
}

func (c *Comm) send(dst, tag int, data []int64, sync bool) {
	c.checkRank(dst, "send")
	if tag < 0 {
		panic(fmt.Sprintf("mpi: send with negative tag %d (tags < 0 are reserved)", tag))
	}
	start := c.ps.now
	m := newMessage(c.rank, tag, 0, c.ctx, data)
	cost := c.w.cost
	c.chargeComm(cost.SendOverhead)
	if sync {
		c.chargeComm(cost.SyncSendRTT)
		c.ps.rs.SyncSends++
	}
	m.sent = c.ps.now
	m.arrive = c.ps.now + c.perturbLatency(cost.AlphaP2P+cost.BetaP2P*float64(m.bytes))
	c.ps.rs.noteSend(c.worldRank(dst), m.bytes)
	c.event(EvSend, c.worldRank(dst), tag, m.bytes, start)
	c.w.mailboxes[c.worldRank(dst)].push(m)
}

// recvMsg blocks until a user-level message matching (src, tag) is
// queued, dequeues it and applies receive-side timing. The returned
// message is owned by the caller, which must release it after copying
// the payload out.
func (c *Comm) recvMsg(src, tag int, what string) *message {
	if src != AnySource {
		c.checkRank(src, what)
	}
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.matchUserLocked(src, tag, c.ctx, true, c.ps.now); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: " + what + " aborted: a peer rank failed")
		}
		mb.parkLocked(c.ps.task)
	}
	mb.mu.Unlock()
	c.completeRecv(m)
	return m
}

// recvEvent records the EvRecv for a message just completed by recvMsg,
// before the caller releases it. m.src is a rank of this communicator
// (sends stamp the sender's comm rank).
func (c *Comm) recvEvent(m *message, start float64) {
	if c.ps.ev != nil {
		c.event(EvRecv, c.worldRank(m.src), m.tag, m.bytes, start)
	}
}

// Recv blocks until a message matching (src, tag) is available and returns
// its payload. src may be AnySource and tag may be AnyTag. The receiver's
// clock advances to at least the message's arrival time.
//
// Ownership: the returned slice is freshly allocated and owned by the
// caller indefinitely — it never aliases runtime-internal (pooled)
// storage. Hot paths that cannot afford the allocation should use
// RecvInto instead.
func (c *Comm) Recv(src, tag int) ([]int64, Status) {
	start := c.ps.now
	m := c.recvMsg(src, tag, "recv")
	c.recvEvent(m, start)
	out := append([]int64(nil), m.data...)
	st := Status{Source: m.src, Tag: m.tag, Count: len(out)}
	m.release()
	return out, st
}

// RecvInto is Recv receiving into a caller-supplied buffer, the analogue
// of MPI_Recv's preposted buffer: the payload is copied into buf and the
// word count returned. It is the allocation-free receive path — the
// runtime recycles its internal message storage immediately.
//
// Like MPI_Recv with a too-small buffer (MPI_ERR_TRUNCATE under
// MPI_ERRORS_ARE_FATAL), RecvInto panics if buf cannot hold the matched
// message; probe first when sizes are unknown.
func (c *Comm) RecvInto(src, tag int, buf []int64) (int, Status) {
	start := c.ps.now
	m := c.recvMsg(src, tag, "recv")
	c.recvEvent(m, start)
	if len(m.data) > len(buf) {
		defer m.release()
		panic(fmt.Sprintf("mpi: RecvInto: message of %d words truncated by %d-word buffer", len(m.data), len(buf)))
	}
	n := copy(buf, m.data)
	st := Status{Source: m.src, Tag: m.tag, Count: n}
	m.release()
	return n, st
}

// Iprobe checks, without blocking, whether a message matching (src, tag)
// is queued. It charges the probe overhead so that poll-heavy code (the
// Send-Recv matching driver) pays for its polling, as it does under MPI.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	if src != AnySource {
		c.checkRank(src, "iprobe")
	}
	start := c.ps.now
	c.chargeComm(c.w.cost.ProbeOverhead)
	c.ps.rs.ProbeCount++
	// Perturbation may legally force a nonblocking probe to miss — a
	// real MPI Iprobe can fail to observe a message whose envelope has
	// not yet been processed. Misses are bounded (sched.Rank.ForceMiss)
	// so polling loops keep making progress.
	if pt := c.ps.pert; pt != nil && pt.ForceMiss() {
		c.event(EvProbe, -1, tag, 0, start)
		c.pollMiss()
		return false, Status{}
	}
	mb := c.mbox()
	mb.mu.Lock()
	m := mb.matchUserLocked(src, tag, c.ctx, false, c.ps.now)
	mb.mu.Unlock()
	if m == nil {
		c.event(EvProbe, -1, tag, 0, start)
		c.pollMiss()
		return false, Status{}
	}
	c.ps.rs.ProbeHits++
	c.ps.pollMisses = 0
	if c.ps.ev != nil {
		c.event(EvProbe, c.worldRank(m.src), m.tag, m.bytes, start)
	}
	return true, Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
}

// Probe blocks until a message matching (src, tag) is queued and returns
// its status without receiving it.
func (c *Comm) Probe(src, tag int) Status {
	if src != AnySource {
		c.checkRank(src, "probe")
	}
	start := c.ps.now
	c.chargeComm(c.w.cost.ProbeOverhead)
	c.ps.rs.ProbeCount++
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		// Blocking probes are never forced to miss: a Probe that has
		// observed a message must return it, or a perturbed run could
		// livelock where a real MPI run cannot.
		if m = mb.matchUserLocked(src, tag, c.ctx, false, c.ps.now); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: Probe aborted: a peer rank failed")
		}
		mb.parkLocked(c.ps.task)
	}
	mb.mu.Unlock()
	c.ps.rs.ProbeHits++
	// A blocking probe stalled on an in-flight message is a late-sender
	// wait just like the receive that will follow it.
	c.waitFor(m.arrive, WaitLateSender, c.worldRank(m.src), m.sent)
	if c.ps.ev != nil {
		c.event(EvProbe, c.worldRank(m.src), m.tag, m.bytes, start)
	}
	return Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
}

// completeRecv applies receive-side timing and accounting for m.
func (c *Comm) completeRecv(m *message) {
	rs := c.ps.rs
	if d := m.arrive - c.ps.now; d > 0 {
		rs.RecvWaitTime += d
		if d > rs.MaxRecvWait {
			rs.MaxRecvWait = d
			rs.MaxRecvWaitSrc = m.src
		}
	}
	c.waitFor(m.arrive, WaitLateSender, c.worldRank(m.src), m.sent)
	c.chargeComm(c.w.cost.RecvOverhead)
	rs.RecvCount++
	rs.RecvBytes += m.bytes
}

// internalSend delivers runtime-internal traffic (neighborhood collective
// chunks, RMA control messages) outside the user tag space. alpha/beta
// select the cost category; note attributes the traffic in the ledger.
func (c *Comm) internalSend(dst int, itag int64, data []int64, alpha, beta float64, note func(rs *RankStats, dst int, bytes int64)) {
	m := newMessage(c.rank, 0, itag, 0, data)
	m.sent = c.ps.now
	m.arrive = c.ps.now + c.perturbLatency(alpha+beta*float64(m.bytes))
	if note != nil {
		note(c.ps.rs, c.worldRank(dst), m.bytes)
	}
	c.w.mailboxes[c.worldRank(dst)].push(m)
}

// internalRecvMsg blocks for an internal message from src with the exact
// itag, advances the clock to its arrival and returns it. The caller owns
// the message and must release it after copying the payload out.
func (c *Comm) internalRecvMsg(src int, itag int64) *message {
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.matchInternalLocked(src, itag, true); m != nil {
			break
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: internal recv aborted: a peer rank failed")
		}
		mb.parkLocked(c.ps.task)
	}
	mb.mu.Unlock()
	c.waitFor(m.arrive, WaitNbrExchange, c.worldRank(m.src), m.sent)
	return m
}

// internalRecvAppend receives an internal message from src with the exact
// itag and appends its payload to buf[:0], reusing buf's capacity. The
// returned slice is caller-owned.
func (c *Comm) internalRecvAppend(src int, itag int64, buf []int64) []int64 {
	m := c.internalRecvMsg(src, itag)
	buf = append(buf[:0], m.data...)
	m.release()
	return buf
}

// PendingMessages returns how many user-level messages are queued for this
// rank (diagnostic; used by tests to verify clean shutdown).
func (c *Comm) PendingMessages() int {
	return c.mbox().pendingUser()
}

// QueuedBytes returns the bytes currently occupying this rank's eager
// buffer (user and internal messages alike). RankStats.QueueHighWater is
// the post-run maximum; this is the live value, which the round-telemetry
// layer samples at round boundaries.
func (c *Comm) QueuedBytes() int64 {
	return c.mbox().queuedBytes()
}
