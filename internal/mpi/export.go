package mpi

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Chrome trace_event export. A traced Report (Config.TraceEvents > 0)
// can be rendered as the JSON object format understood by
// chrome://tracing and Perfetto: each run becomes one "process", each
// rank one "thread" track, and each recorded Event one complete ("X")
// slice on the rank's virtual timeline. Timestamps are virtual seconds
// converted to microseconds, the unit the viewers expect, so a trace of
// a modeled run reads exactly like a TAU/Chrome profile of a real one.
//
// The writer is hand-formatted (not encoding/json) so the output is
// deterministic byte-for-byte — the golden-file test depends on that —
// and streams without building the whole document in memory.

// ChromeTrace accumulates one or more completed runs for export into a
// single trace file, e.g. the same experiment under every communication
// model side by side.
type ChromeTrace struct {
	labels  []string
	reports []*Report
}

// NewChromeTrace returns an empty trace accumulator.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// Add appends a completed run under the given process label. Reports
// without event tracing enabled still get their track skeleton (useful
// to spot them missing) but contribute no slices.
func (t *ChromeTrace) Add(label string, rep *Report) {
	t.labels = append(t.labels, label)
	t.reports = append(t.reports, rep)
}

// Len returns the number of runs accumulated.
func (t *ChromeTrace) Len() int { return len(t.reports) }

// Write writes the accumulated runs as one trace_event JSON document.
func (t *ChromeTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		fmt.Fprintf(bw, format, args...)
	}
	for pid, rep := range t.reports {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, jsonString(t.labels[pid]))
		for rank := 0; rank < rep.Procs; rank++ {
			if d := rep.EventDrops(rank); d > 0 {
				emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"rank %d (dropped %d)"}}`,
					pid, rank, rank, d)
			} else {
				emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`,
					pid, rank, rank)
			}
			for _, e := range rep.Events(rank) {
				if e.Kind == EvWait && e.Class != WaitNone {
					// Classified waits carry their dependency edge: the
					// causing rank and its clock when it enabled progress.
					emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"%s","cat":"wait","args":{"peer":%d,"bytes":0,"class":"%s","cause_t":%s}}`,
						pid, rank, usec(e.Start), usec(e.Duration()),
						e.Kind.String(), e.Peer, e.Class.String(), usec(e.CauseT))
					continue
				}
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"%s","cat":"%s","args":{"peer":%d,"tag":%d,"bytes":%d}}`,
					pid, rank, usec(e.Start), usec(e.Duration()),
					e.Kind.String(), e.Kind.Category(), e.Peer, e.Tag, e.Bytes)
			}
		}
	}
	fmt.Fprint(bw, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// WriteChromeTrace writes this run alone as a Chrome trace_event JSON
// document. Requires a run with Config.TraceEvents (the document is
// valid but empty of slices otherwise).
func (r *Report) WriteChromeTrace(w io.Writer) error {
	t := NewChromeTrace()
	t.Add("mpi run", r)
	return t.Write(w)
}

// usec formats a duration in virtual seconds as microseconds with
// nanosecond resolution, trimming trailing zeros for compactness.
func usec(sec float64) string {
	s := strconv.FormatFloat(sec*1e6, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// jsonString quotes a label as a JSON string. Go's %q escaping is a
// superset of JSON for ASCII; control characters and quotes are the
// only bytes our labels could trip on and strconv.Quote handles both.
func jsonString(s string) string { return strconv.Quote(s) }
