package mpi

import "fmt"

// Structured event tracing. When Config.TraceEvents > 0 every rank
// records one Event per runtime primitive — sends, receives, probes,
// blocked waits, collectives, neighborhood rounds, one-sided operations
// — into a preallocated per-rank ring of that capacity. Recording is a
// single bounds-checked store; when the ring fills, further events are
// counted in a drop counter instead of evicting older ones, so a
// truncated trace is always the prefix of the run and stays sorted by
// virtual time. With tracing off the only cost on any primitive is one
// nil check, which keeps the pinned AllocsPerRun contracts intact.
//
// Snapshots are exposed through Report.Events / Report.EventDrops and
// the exporters in export.go (Chrome trace_event JSON) and profile.go
// (phase breakdown).

// EventKind classifies a traced runtime primitive.
type EventKind uint8

// Event kinds, one per traced primitive family.
const (
	// EvSend is an Isend/Send/Ssend completing at the sender.
	EvSend EventKind = iota
	// EvRecv is a Recv/RecvInto completing (including its blocked time).
	EvRecv
	// EvProbe is an Iprobe/Probe poll; Peer is -1 on a miss.
	EvProbe
	// EvWait is a blocked interval: the clock jumping forward to a
	// remote arrival or synchronization point.
	EvWait
	// EvColl is a global collective (Barrier, Allreduce, Alltoall, ...).
	EvColl
	// EvNbrColl is a blocking neighborhood collective; Tag is the
	// topology-local call sequence number (the round, for round-based
	// transports).
	EvNbrColl
	// EvNbrStart is the injection half of a nonblocking neighborhood
	// collective (INeighborAlltoallvInt64); Tag is the call sequence.
	EvNbrStart
	// EvNbrWait is the completion half (NbrRequest.Wait); Tag matches
	// the EvNbrStart it completes.
	EvNbrWait
	// EvPut is a one-sided put issue (origin side).
	EvPut
	// EvGet is a one-sided get (full round trip at the origin).
	EvGet
	// EvAtomic is a remote atomic: Accumulate, FetchAndAdd, CompareAndSwap.
	EvAtomic
	// EvFlush is an RMA flush draining pending puts; Bytes is the drained
	// volume and Tag the number of distinct targets completed.
	EvFlush

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvSend:     "send",
	EvRecv:     "recv",
	EvProbe:    "probe",
	EvWait:     "wait",
	EvColl:     "coll",
	EvNbrColl:  "nbr_coll",
	EvNbrStart: "nbr_start",
	EvNbrWait:  "nbr_wait",
	EvPut:      "put",
	EvGet:      "get",
	EvAtomic:   "atomic",
	EvFlush:    "flush",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Category returns the Chrome-trace category grouping for the kind:
// "p2p", "coll", "nbr", "rma" or "wait".
func (k EventKind) Category() string {
	switch k {
	case EvSend, EvRecv, EvProbe:
		return "p2p"
	case EvColl:
		return "coll"
	case EvNbrColl, EvNbrStart, EvNbrWait:
		return "nbr"
	case EvPut, EvGet, EvAtomic, EvFlush:
		return "rma"
	case EvWait:
		return "wait"
	}
	return "other"
}

// WaitClass classifies what an EvWait event was blocked on. It is the
// runtime-level half of the wait-state taxonomy: the post-mortem
// analyzer (internal/analysis) refines it with derived states
// (probe-spin from EvProbe misses, late-receiver from send/recv
// matching) that need no runtime support.
type WaitClass uint8

const (
	// WaitNone marks an unclassified wait (no known enabling peer).
	WaitNone WaitClass = iota
	// WaitLateSender is a receive or blocking probe stalled on a user
	// message still in flight: the Scalasca "late sender" state. The
	// event's Peer is the sending world rank and CauseT the sender's
	// clock at injection.
	WaitLateSender
	// WaitNbrExchange is a stall on runtime-internal neighborhood
	// traffic: a neighborhood-collective chunk or topology handshake
	// still in flight from the Peer rank.
	WaitNbrExchange
	// WaitCollective is synchronization delay inside a global
	// collective: the Peer rank was the last to enter, at clock CauseT.
	WaitCollective

	numWaitClasses
)

var waitClassNames = [numWaitClasses]string{
	WaitNone:        "none",
	WaitLateSender:  "late_sender",
	WaitNbrExchange: "nbr_exchange",
	WaitCollective:  "collective",
}

func (w WaitClass) String() string {
	if int(w) < len(waitClassNames) {
		return waitClassNames[w]
	}
	return fmt.Sprintf("WaitClass(%d)", int(w))
}

// Event is one traced primitive on a rank's virtual timeline.
type Event struct {
	Kind EventKind
	// Class refines EvWait events with what the rank was blocked on;
	// WaitNone for every other kind.
	Class WaitClass
	// Peer is the world rank of the remote party (destination of a send
	// or put, source of a receive or probe hit, causing rank of a
	// classified wait), or -1 when there is no single peer
	// (unclassified waits, probe misses, flushes).
	Peer int
	// Tag is the user tag for point-to-point events, the call sequence
	// number for neighborhood events, the target count for flushes, and
	// -1 otherwise.
	Tag int
	// Bytes is the payload volume the event moved (0 for barriers,
	// waits and probe misses).
	Bytes int64
	// Start and End delimit the event on the rank's virtual clock, in
	// seconds. End is the clock when the primitive completed; events are
	// recorded at completion, so rings are sorted by End.
	Start, End float64
	// CauseT is the causing rank's local clock when it enabled this
	// rank's progress — the injection time of the message a classified
	// wait blocked on, or the last entrant's clock for a collective
	// wait. Zero for non-wait events. It is the dependency edge the
	// critical-path walk follows: the waiting rank's timeline continues
	// on Peer's timeline at CauseT.
	CauseT float64
}

// Duration returns the event's virtual-time extent in seconds.
func (e Event) Duration() float64 { return e.End - e.Start }

// eventRing is one rank's fixed-capacity event log. It is written only
// by the owning rank goroutine during the run and read only after Run
// returns, so it needs no synchronization.
type eventRing struct {
	buf     []Event
	n       int
	dropped int64
}

func newEventRing(capacity int) *eventRing {
	return &eventRing{buf: make([]Event, capacity)}
}

// event records one primitive if tracing is enabled. The End timestamp
// is the rank's current clock, so callers capture Start before charging
// costs and call event after. Kept small enough to inline: the traced-off
// path must cost one predictable branch.
func (c *Comm) event(kind EventKind, peer, tag int, bytes int64, start float64) {
	r := c.ps.ev
	if r == nil {
		return
	}
	if r.n == len(r.buf) {
		r.dropped++
		return
	}
	r.buf[r.n] = Event{Kind: kind, Peer: peer, Tag: tag, Bytes: bytes, Start: start, End: c.ps.now}
	r.n++
}

// Events returns rank r's recorded events in completion order (nil
// unless the run enabled event tracing). The slice aliases the ring;
// callers must not modify it.
func (r *Report) Events(rank int) []Event {
	if r.events == nil || r.events[rank] == nil {
		return nil
	}
	ring := r.events[rank]
	return ring.buf[:ring.n]
}

// EventTracing reports whether the run recorded structured events at
// all (Config.TraceEvents > 0).
func (r *Report) EventTracing() bool { return r.events != nil }

// EventDrops returns how many events rank r's ring discarded after
// filling (0 when tracing was off or the ring sufficed).
func (r *Report) EventDrops(rank int) int64 {
	if r.events == nil || r.events[rank] == nil {
		return 0
	}
	return r.events[rank].dropped
}
