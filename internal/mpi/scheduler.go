package mpi

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// SchedMode selects how rank goroutines are scheduled (see WithScheduler).
type SchedMode int

const (
	// SchedAuto picks SchedWorkers for worlds of at least
	// pooledMinProcs ranks and SchedDirect below that, where per-run
	// pool setup would dominate.
	SchedAuto SchedMode = iota
	// SchedDirect is the legacy mode: every rank goroutine is runnable
	// whenever the Go scheduler pleases. Simple and fastest for small
	// worlds; at tens of thousands of ranks the runnable set itself
	// becomes the bottleneck.
	SchedDirect
	// SchedWorkers multiplexes rank tasks over a sharded worker pool of
	// at most min(GOMAXPROCS, 64) workers: a rank goroutine runs only
	// while it holds a worker ticket and parks (releasing the ticket)
	// whenever it blocks in the runtime. Both modes execute the same
	// deterministic virtual-time matching logic, so results are
	// bit-identical across them.
	SchedWorkers
)

func (m SchedMode) String() string {
	switch m {
	case SchedAuto:
		return "auto"
	case SchedDirect:
		return "direct"
	case SchedWorkers:
		return "workers"
	}
	return "SchedMode(?)"
}

// pooledMinProcs is the world size at which SchedAuto switches to the
// worker pool. Below it, spawning the pool costs more than it saves.
const pooledMinProcs = 256

// maxWorkers bounds the pool so the idle set fits one atomic word.
const maxWorkers = 64

func resolveSched(mode SchedMode, procs int) SchedMode {
	if mode == SchedAuto {
		if procs >= pooledMinProcs {
			return SchedWorkers
		}
		return SchedDirect
	}
	return mode
}

func workerCount(procs int) int {
	w := runtime.GOMAXPROCS(0)
	if w > procs {
		w = procs
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// taskq is a growable FIFO ring of tasks (one per shard).
type taskq struct {
	buf  []*task
	head int
	n    int
}

func (q *taskq) push(t *task) {
	if q.n == len(q.buf) {
		grown := make([]*task, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = t
	q.n++
}

func (q *taskq) pop() *task {
	if q.n == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return t
}

// schedShard is one worker's run queue. Ranks map to shards in blocks
// (rank*W/n), so ring and mesh neighborhoods mostly wake tasks on their
// own shard and senders from other shards contend only on that shard's
// lock, never on a global one.
type schedShard struct {
	mu sync.Mutex
	q  taskq
	// pad keeps neighboring shards' locks off one cache line.
	_ [40]byte
}

type worker struct {
	id   int
	pool *workerPool
	// yield receives the ticket back from the task this worker resumed.
	yield chan struct{}
	// wakeCh receives an idle-wakeup token from ready()/stop().
	wakeCh chan struct{}
}

// workerPool schedules rank tasks over a fixed set of workers, one
// shard (run queue) per worker, with work stealing. Lost wakeups are
// impossible by a standard two-sided protocol: a worker publishes
// itself idle and then re-scans every shard before sleeping, while
// ready() enqueues first and then claims+wakes an idle worker; tokens
// are sticky (capacity-1 channels), so a racing token is consumed by a
// harmless extra scan.
type workerPool struct {
	shards   []schedShard
	workers  []*worker
	idleMask atomic.Uint64 // bit i set: worker i is (about to be) asleep
	stopping atomic.Bool
	wg       sync.WaitGroup
}

func newWorkerPool(nworkers int) *workerPool {
	p := &workerPool{
		shards:  make([]schedShard, nworkers),
		workers: make([]*worker, nworkers),
	}
	for i := range p.workers {
		p.workers[i] = &worker{
			id:     i,
			pool:   p,
			yield:  make(chan struct{}, 1),
			wakeCh: make(chan struct{}, 1),
		}
	}
	return p
}

func (p *workerPool) start() {
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go w.loop()
	}
}

// ready enqueues t on its shard and wakes an idle worker if any.
func (p *workerPool) ready(t *task) {
	sh := &p.shards[t.shard]
	sh.mu.Lock()
	sh.q.push(t)
	sh.mu.Unlock()
	p.wakeIdle(int(t.shard))
}

// wakeIdle claims one idle worker (preferring the shard's owner) and
// sends it a token. Non-blocking: if the claimed worker still holds an
// unconsumed token, that token already guarantees a future re-scan.
func (p *workerPool) wakeIdle(prefer int) {
	for {
		mask := p.idleMask.Load()
		if mask == 0 {
			return
		}
		id := prefer
		if mask&(1<<uint(id)) == 0 {
			id = bits.TrailingZeros64(mask)
		}
		if p.idleMask.CompareAndSwap(mask, mask&^(1<<uint(id))) {
			select {
			case p.workers[id].wakeCh <- struct{}{}:
			default:
			}
			return
		}
	}
}

// readyBatch unparks every claimable task in ts except skip, taking each
// scheduler shard's lock once per run of same-shard tasks instead of
// once per task. Collective releasers call it with waiter lists that
// are walked in hub-shard (≈ rank) order; ranks map to scheduler shards
// in contiguous blocks, so the list is nearly sorted by shard and the
// batch degenerates to one lock round-trip per shard in the common
// case. Tasks that are not parked get a banked notification, exactly as
// unpark would do.
func (p *workerPool) readyBatch(ts []*task, skip *task) {
	i, n := 0, len(ts)
	for i < n {
		t := ts[i]
		i++
		if t == skip || !t.claimParked() {
			continue
		}
		shard := t.shard
		sh := &p.shards[shard]
		sh.mu.Lock()
		sh.q.push(t)
		for i < n {
			t2 := ts[i]
			if t2 == skip {
				i++
				continue
			}
			if t2.shard != shard {
				break
			}
			i++
			if t2.claimParked() {
				sh.q.push(t2)
			}
		}
		sh.mu.Unlock()
		p.wakeIdle(int(shard))
	}
}

// stop asks all workers to exit once their queues drain and joins them.
// Callers must ensure no further ready() calls can occur.
func (p *workerPool) stop() {
	p.stopping.Store(true)
	for _, w := range p.workers {
		select {
		case w.wakeCh <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

// grab pops a task from w's own shard, stealing from the others when
// it is empty.
func (p *workerPool) grab(w *worker) *task {
	n := len(p.shards)
	for i := 0; i < n; i++ {
		sh := &p.shards[(w.id+i)%n]
		sh.mu.Lock()
		t := sh.q.pop()
		sh.mu.Unlock()
		if t != nil {
			return t
		}
	}
	return nil
}

func (w *worker) loop() {
	p := w.pool
	defer p.wg.Done()
	for {
		t := p.grab(w)
		if t == nil {
			if p.stopping.Load() {
				return
			}
			// Publish idle, then re-scan: a ready() that missed the bit
			// has already pushed, so this scan finds its task; a ready()
			// that saw the bit sends a token below.
			atomicOr(&p.idleMask, 1<<uint(w.id))
			if t = p.grab(w); t == nil {
				if p.stopping.Load() {
					atomicAnd(&p.idleMask, ^uint64(1<<uint(w.id)))
					return
				}
				<-w.wakeCh
				atomicAnd(&p.idleMask, ^uint64(1<<uint(w.id)))
				continue
			}
			atomicAnd(&p.idleMask, ^uint64(1<<uint(w.id)))
		}
		// Publish the ticket, resume the task and wait for the ticket
		// back (park, yield or exit). The task may be resumed later by
		// any worker.
		t.handoff = w
		t.resume()
		<-w.yield
	}
}

// atomicOr and atomicAnd are CAS loops standing in for the
// atomic.Uint64.Or/And methods, which require a go1.23 module.

func atomicOr(u *atomic.Uint64, bitsToSet uint64) {
	for {
		old := u.Load()
		if old&bitsToSet == bitsToSet || u.CompareAndSwap(old, old|bitsToSet) {
			return
		}
	}
}

func atomicAnd(u *atomic.Uint64, mask uint64) {
	for {
		old := u.Load()
		if old&^mask == 0 || u.CompareAndSwap(old, old&mask) {
			return
		}
	}
}
