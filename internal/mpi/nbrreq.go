package mpi

import "fmt"

// NbrRequest is an in-flight nonblocking neighborhood collective started
// with INeighborAlltoallvInt64 (the analogue of MPI_Ineighbor_alltoallv
// from MPI-3's nonblocking collectives). The caller may compute while the
// exchange progresses and must eventually call Wait (or poll Test until
// completion) exactly once.
//
// Real MPI requires receive counts when the operation is posted; the
// runtime sizes receives from the arriving messages instead, which models
// an implementation with preposted maximum-size buffers — valid whenever
// the application can bound per-neighbor volume, as the matching protocol
// can (MaxMessagesPerCrossEdge).
type NbrRequest struct {
	t        *Topo
	seq      int64
	finished bool
}

// INeighborAlltoallvInt64 starts a nonblocking neighborhood all-to-all:
// send[i] is delivered to neighbor i. The injection cost is charged at
// start; transit overlaps with whatever the caller does before Wait.
func (t *Topo) INeighborAlltoallvInt64(send [][]int64) *NbrRequest {
	if len(send) != len(t.neighbors) {
		panic(fmt.Sprintf("mpi: INeighborAlltoallvInt64: len(send)=%d, want degree %d", len(send), len(t.neighbors)))
	}
	c := t.c
	cost := c.w.cost
	seq := t.seq
	t.seq++
	start := c.ps.now
	c.ps.rs.NbrCollCount++
	c.chargeComm(cost.AlphaNbrCall)
	var sent int64
	for i, nb := range t.neighbors {
		bytes := int64(8 * len(send[i]))
		sent += bytes
		c.chargeComm(cost.AlphaNbr + cost.BetaNbr*float64(bytes))
		c.internalSend(nb, t.itag(seq), send[i], cost.AlphaNbr, cost.BetaNbr, (*RankStats).noteNbrChunk)
	}
	c.event(EvNbrStart, -1, int(seq), sent, start)
	return &NbrRequest{t: t, seq: seq}
}

// Wait blocks until every neighbor's contribution has arrived and
// returns them in neighbor order. The caller's clock advances only to
// the latest arrival — time spent computing since the start overlaps the
// transfer, which is the point of the nonblocking form.
func (r *NbrRequest) Wait() [][]int64 {
	return r.WaitInto(nil)
}

// WaitInto is Wait receiving into a caller-supplied slice of per-neighbor
// buffers (allocated when nil). Each recv[i] is reset to length zero and
// appended to, reusing its capacity; the possibly-regrown recv is
// returned. The pipelined transport keeps one receive set across rounds
// so steady-state completion allocates nothing.
func (r *NbrRequest) WaitInto(recv [][]int64) [][]int64 {
	if r.finished {
		panic("mpi: NbrRequest.Wait called twice")
	}
	r.finished = true
	c := r.t.c
	if recv == nil {
		recv = make([][]int64, len(r.t.neighbors))
	} else if len(recv) != len(r.t.neighbors) {
		panic(fmt.Sprintf("mpi: NbrRequest.WaitInto: len(recv)=%d, want degree %d", len(recv), len(r.t.neighbors)))
	}
	start := c.ps.now
	var got int64
	for i, nb := range r.t.neighbors {
		recv[i] = c.internalRecvAppend(nb, r.t.itag(r.seq), recv[i])
		got += int64(8 * len(recv[i]))
	}
	c.event(EvNbrWait, -1, int(r.seq), got, start)
	return recv
}

// Test reports whether the exchange has completed without blocking; when
// it has, the received contributions are returned and the request is
// finished (as MPI_Test frees the request). A small probe cost is
// charged per poll.
func (r *NbrRequest) Test() ([][]int64, bool) {
	if r.finished {
		panic("mpi: NbrRequest.Test called after completion")
	}
	c := r.t.c
	start := c.ps.now
	c.chargeComm(c.w.cost.ProbeOverhead)
	// Like Iprobe, a nonblocking completion test may legally miss even
	// when everything has arrived; bounded, so Test/Wait loops progress.
	if pt := c.ps.pert; pt != nil && pt.ForceMiss() {
		c.event(EvProbe, -1, int(r.seq), 0, start)
		c.pollMiss()
		return nil, false
	}
	mb := c.mbox()
	mb.mu.Lock()
	for _, nb := range r.t.neighbors {
		if mb.matchInternalLocked(nb, r.t.itag(r.seq), false) == nil {
			mb.mu.Unlock()
			c.event(EvProbe, -1, int(r.seq), 0, start)
			c.pollMiss()
			return nil, false
		}
	}
	mb.mu.Unlock()
	c.ps.pollMisses = 0
	return r.Wait(), true
}
