// Package mpi implements an in-process, MPI-3-like message-passing runtime.
//
// The runtime exists so that distributed-memory SPMD codes written against
// the three MPI communication models studied by Ghosh et al. (IPDPS 2019) —
// nonblocking point-to-point Send-Recv, one-sided Remote Memory Access
// (RMA), and neighborhood collectives over a distributed graph topology —
// can run, unmodified in structure, inside a single Go process: every MPI
// rank is a goroutine, every message is really delivered, and every
// synchronization primitive really synchronizes.
//
// In addition to functional semantics the runtime keeps two ledgers:
//
//   - Traffic statistics: per-rank and per-pair message and byte counts for
//     every primitive, plus buffer high-water marks, mirroring what tools
//     like TAU and CrayPat report on a real machine.
//
//   - A deterministic virtual clock per rank, advanced by a configurable
//     LogGP-style cost model (see CostModel). Message receive operations
//     never observe data "before" it was sent: arrival times propagate
//     through messages, and collectives synchronize clocks. The maximum
//     rank clock at the end of a run is the modeled parallel execution
//     time, which is what the benchmark harness reports.
//
// Ranks communicate through typed []int64 payloads; higher layers encode
// their records into int64 words (8 bytes each for accounting purposes).
//
// Usage:
//
//	rep, err := mpi.Run(2, func(c *mpi.Comm) error {
//	    if c.Rank() == 0 {
//	        c.Isend(1, 7, []int64{42})
//	    } else if c.Rank() == 1 {
//	        data, _ := c.Recv(0, 7)
//	        _ = data
//	    }
//	    c.Barrier()
//	    return nil
//	}, mpi.WithMatrices())
//
// API errors that correspond to MPI usage errors (bad rank, negative tag)
// panic, mirroring the default MPI_ERRORS_ARE_FATAL behavior; errors
// returned from rank bodies abort the run and are reported by Run.
package mpi

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sched"
)

// Wildcard values for Recv, Probe and Iprobe, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes a runtime instance.
type Config struct {
	// Procs is the number of ranks (goroutines) to launch. Must be >= 1.
	Procs int

	// Cost is the virtual-time cost model. Nil selects DefaultCostModel.
	Cost *CostModel

	// TrackMatrices enables per-pair message/byte matrices (O(P^2) memory
	// per enabled run). Scalar counters are always collected.
	TrackMatrices bool

	// Deadline aborts a run (with a full goroutine dump) if the ranks have
	// not all returned within this wall-clock duration. Zero disables the
	// watchdog. The watchdog exists to turn accidental communication
	// deadlocks into actionable failures instead of hangs.
	Deadline time.Duration

	// TraceWaits records every rank's blocked intervals for
	// Report.WaitSpans / Report.RenderTimeline.
	TraceWaits bool

	// TraceEvents, when > 0, enables structured event tracing with a
	// per-rank ring of this capacity (see events.go). Events beyond the
	// capacity are dropped and counted, never reallocated, so a traced
	// run's memory is bounded up front.
	TraceEvents int

	// Perturb, when enabled, runs under seeded schedule perturbation
	// (see WithPerturb and package sched). PerturbSeed selects the
	// deterministic decision streams; the zero Profile disables
	// perturbation entirely.
	Perturb     sched.Profile
	PerturbSeed uint64

	// Sched selects how rank goroutines are scheduled (see SchedMode).
	// The default, SchedAuto, uses the sharded worker pool for large
	// worlds and direct goroutine scheduling for small ones. Results are
	// bit-identical across modes.
	Sched SchedMode
}

// World holds the shared state of one runtime instance. A World is created
// by Run and lives for the duration of one SPMD execution.
type World struct {
	n         int
	cost      *CostModel
	matrices  bool
	mailboxes []*mailbox
	hub       *collHub
	stats     []*RankStats
	// tasks holds every rank's scheduler task; poison unparks them all.
	tasks []*task
	// pool is the worker pool in SchedWorkers mode, nil in SchedDirect.
	pool *workerPool

	// hubs registers every collective hub in the world — the world hub
	// plus any sub-communicator hubs created by Split — so poison can
	// flag them all before the wakeup sweep. Guarded by hubMu (Split may
	// run concurrently on several ranks).
	hubMu sync.Mutex
	hubs  []*collHub

	topoMu  sync.Mutex
	topoSeq int

	winMu  sync.Mutex
	winSeq int

	ctxMu  sync.Mutex
	ctxSeq int32
}

// procState is the per-process (per-goroutine) mutable state shared by
// every communicator handle the process holds: one virtual clock, one
// statistics ledger, one trace buffer.
type procState struct {
	now   float64
	rs    *RankStats
	trace *[]WaitSpan
	// task is this rank's scheduler task: the unit that parks when the
	// rank blocks in the runtime and is unparked when progress becomes
	// possible.
	task *task
	// pollMisses counts consecutive unfruitful non-blocking polls
	// (Iprobe, NbrRequest.Test). Every pollYieldEvery-th miss yields the
	// scheduler so a full worker pool cannot be starved by spinning
	// pollers; any successful match resets it.
	pollMisses int
	// ev is the structured event ring, nil when tracing is off; the nil
	// check is the entire cost of a disabled instrumentation point.
	ev *eventRing
	// pert is this rank's schedule-perturbation stream, nil when
	// perturbation is off — like ev, the nil check is the whole cost of
	// the disabled hooks.
	pert *sched.Rank
	// collStart snapshots the clock at enterColl so exitColl can record
	// the collective as one event spanning the whole synchronization.
	collStart float64
}

// Comm is a rank's handle to a communicator. Exactly one goroutine (the
// rank body) may use a given Comm; a process may hold several Comms
// (the world plus any produced by Split), all sharing one clock and
// ledger. All communication, timing and statistics methods hang off
// Comm.
type Comm struct {
	w     *World
	wrank int   // rank in the world (mailbox / ledger index)
	rank  int   // rank within this communicator
	group []int // comm rank -> world rank; nil for the world communicator
	hub   *collHub
	ctx   int32 // communicator id isolating point-to-point traffic
	ps    *procState
}

// size returns the number of ranks in this communicator.
func (c *Comm) size() int {
	if c.group == nil {
		return c.w.n
	}
	return len(c.group)
}

// worldRank translates a rank of this communicator to a world rank.
func (c *Comm) worldRank(r int) int {
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// Report summarizes a completed run.
type Report struct {
	// Procs is the number of ranks that ran.
	Procs int
	// MaxVirtualTime is the modeled parallel execution time in seconds:
	// the maximum final virtual clock over all ranks.
	MaxVirtualTime float64
	// TotalVirtualTime is the sum of final clocks (useful for averages).
	TotalVirtualTime float64
	// FinalTimes holds every rank's final virtual clock, indexed by
	// world rank. MaxVirtualTime is its maximum; the post-mortem
	// critical-path walk starts from its argmax.
	FinalTimes []float64
	// Wall is the real elapsed time of the run.
	Wall time.Duration
	// Stats holds the per-rank statistics ledgers. Prefer the accessor
	// methods (Totals, MsgMatrix, ByteMatrix, Events, Profile) in new
	// code; the field remains exported for direct inspection.
	Stats []*RankStats

	waits  [][]WaitSpan
	events []*eventRing
}

// Totals aggregates all per-rank ledgers (Aggregate over Stats).
func (r *Report) Totals() Totals { return Aggregate(r.Stats) }

// MsgMatrix returns the per-pair message-count matrix (row = sender),
// or nil if the run did not track matrices.
func (r *Report) MsgMatrix() [][]int64 { return MsgMatrix(r.Stats) }

// ByteMatrix returns the per-pair byte-volume matrix (row = sender),
// or nil if the run did not track matrices.
func (r *Report) ByteMatrix() [][]int64 { return ByteMatrix(r.Stats) }

// Run launches procs rank goroutines executing body and waits for all
// of them, with the run configured by functional options:
//
//	rep, err := mpi.Run(16, body,
//	    mpi.WithCost(m), mpi.WithMatrices(), mpi.WithEventTrace(1<<16))
//
// It returns a Report with traffic statistics and the modeled virtual
// time. If any rank body returns an error or panics, Run returns an
// error describing the first few failures (the Report is still valid
// for whatever completed).
func Run(procs int, body func(c *Comm) error, opts ...Option) (*Report, error) {
	cfg := Config{Procs: procs}
	for _, o := range opts {
		o(&cfg)
	}
	return runConfig(cfg, body)
}

// worldState is the reusable skeleton of a run: every per-rank object
// whose lifetime ends with Run and whose contents do not escape into the
// Report. Benchmark and experiment loops call Run thousands of times
// with the same world size; recycling the skeleton removes the dominant
// per-run setup cost (mailbox shells, bucket tables, task structs, the
// collective hub's shard and deposit arrays). Statistics ledgers, trace
// buffers and the Report are always fresh — they outlive the run.
//
// Only skeletons from clean runs are recycled: a failed or poisoned
// world may hold ranks unwinding concurrently with Run's return, so it
// is simply dropped for the GC.
// All per-rank fixed-size state lives in arenas — one backing array of
// structs per kind instead of n individual heap objects — which removes
// n-1 allocations per kind, the per-object heap headers, and most of the
// pointer graph the GC would otherwise walk every cycle at 64K+ ranks.
// The []*T views exist because pushers, poison sweeps and the public
// Report API traffic in pointers; the pointers are stable for the
// arena's life.
type worldState struct {
	n         int
	mbArena   []mailbox
	taskArena []task
	commArena []Comm
	mailboxes []*mailbox
	tasks     []*task
	comms     []*Comm
	procs     []procState
	hub       *collHub
}

var worldPool sync.Pool

// acquireWorldState returns a pooled skeleton for n ranks, or a fresh
// one. Pooled skeletons are only reused at the exact same world size:
// the hub's shard layout and the dense mailbox tables are sized to n,
// and repeat callers (benchmarks, Explore sweeps) keep n fixed.
func acquireWorldState(n int) *worldState {
	if v := worldPool.Get(); v != nil {
		ws := v.(*worldState)
		if ws.n == n {
			return ws
		}
		// Wrong size: drop it and build fresh below.
	}
	ws := &worldState{
		n:         n,
		mbArena:   make([]mailbox, n),
		taskArena: make([]task, n),
		commArena: make([]Comm, n),
		mailboxes: make([]*mailbox, n),
		tasks:     make([]*task, n),
		comms:     make([]*Comm, n),
		procs:     make([]procState, n),
		hub:       newCollHub(n),
	}
	// Small worlds use dense per-source bucket tables; carving all n
	// tables out of one n*n backing array costs one allocation for the
	// whole world instead of one per mailbox.
	var denseTabs []*srcBucket
	if n <= denseSrcLimit {
		denseTabs = make([]*srcBucket, n*n)
	}
	for i := 0; i < n; i++ {
		mb := &ws.mbArena[i]
		if denseTabs != nil {
			mb.init(n, denseTabs[i*n:(i+1)*n:(i+1)*n])
		} else {
			mb.init(n, nil)
		}
		ws.mailboxes[i] = mb
		t := &ws.taskArena[i]
		t.initTask()
		ws.tasks[i] = t
		ws.comms[i] = &ws.commArena[i]
	}
	return ws
}

// releaseWorldState drains the skeleton and returns it to the pool.
// procState and Comm structs are zeroed: they hold pointers into the
// run's statistics ledgers (which escape into the Report), and a pooled
// skeleton must not pin a dead run's O(P) ledger memory.
func releaseWorldState(ws *worldState) {
	for _, mb := range ws.mailboxes {
		mb.reset()
	}
	ws.hub.clearDeps()
	clear(ws.procs)
	clear(ws.commArena)
	worldPool.Put(ws)
}

func runConfig(cfg Config, body func(c *Comm) error) (*Report, error) {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("mpi: Config.Procs must be >= 1, got %d", cfg.Procs))
	}
	cost := cfg.Cost
	if cost == nil {
		cost = DefaultCostModel()
	}
	ws := acquireWorldState(cfg.Procs)
	w := &World{
		n:         cfg.Procs,
		cost:      cost,
		matrices:  cfg.TrackMatrices,
		mailboxes: ws.mailboxes,
		hub:       ws.hub,
		tasks:     ws.tasks,
		stats:     make([]*RankStats, cfg.Procs),
	}
	w.hubs = append(w.hubs, ws.hub)
	mode := resolveSched(cfg.Sched, cfg.Procs)
	if mode == SchedWorkers {
		w.pool = newWorkerPool(workerCount(cfg.Procs))
	}
	nworkers := 1
	if w.pool != nil {
		nworkers = len(w.pool.workers)
	}
	// Ledgers escape into the Report, so they are freshly allocated every
	// run — but as one backing array, not cfg.Procs separate objects.
	statsArena := make([]RankStats, cfg.Procs)
	for i := range w.stats {
		statsArena[i].init(i, cfg.Procs, cfg.TrackMatrices)
		w.stats[i] = &statsArena[i]
	}
	// New returns nil for a disabled profile, so the hot-path hooks stay
	// on their nil fast paths in ordinary runs.
	pt := sched.New(cfg.PerturbSeed, cfg.Perturb, cfg.Procs)

	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errs   []error
		comms  = ws.comms
		start  = time.Now()
		doneCh = make(chan struct{})
	)
	var waits [][]WaitSpan
	if cfg.TraceWaits {
		waits = make([][]WaitSpan, cfg.Procs)
	}
	var events []*eventRing
	if cfg.TraceEvents > 0 {
		events = make([]*eventRing, cfg.Procs)
		for i := range events {
			events[i] = newEventRing(cfg.TraceEvents)
		}
	}
	// Set up every rank before spawning any: in direct mode an early
	// rank's body may immediately send into a later rank's mailbox, and
	// that push reads mb.owner and task state. The `go` statements below
	// happen-after this whole loop, so all setup writes are visible to
	// every rank goroutine.
	for r := 0; r < cfg.Procs; r++ {
		t := ws.tasks[r]
		// Ranks map to scheduler shards in contiguous blocks so ring and
		// mesh neighborhoods stay shard-local.
		t.reset(int32(r), int32(r*nworkers/cfg.Procs), w.pool)
		ps := &ws.procs[r]
		*ps = procState{rs: w.stats[r], task: t}
		if waits != nil {
			ps.trace = &waits[r]
		}
		if events != nil {
			ps.ev = events[r]
		}
		mb := ws.mailboxes[r]
		mb.owner = t
		if pt != nil {
			ps.pert = pt.Rank(r)
			if cfg.Perturb.Ties {
				// The mailbox needs the stream too, for wildcard-selection
				// permutation; matchUserLocked is only ever called by the
				// owning rank, so the single-goroutine discipline holds.
				mb.pert = ps.pert
			}
		}
		*comms[r] = Comm{w: w, wrank: r, rank: r, hub: w.hub, ps: ps}
	}
	for r := 0; r < cfg.Procs; r++ {
		t := ws.tasks[r]
		c := comms[r]
		wg.Add(1)
		go func() {
			// Defer order matters in pooled mode: the worker ticket must be
			// yielded (second defer) before wg.Done (first defer, runs last)
			// lets Run proceed to pool.stop, or stop joins a worker that is
			// still waiting for this task's ticket. The recover (third
			// defer, runs first) fires while the ticket is still held, so
			// poisoning may unpark peers freely.
			defer wg.Done()
			if w.pool != nil {
				defer t.yieldTicket()
				// Wait for the initial ticket: the seeding loop below has
				// enqueued this task, and the worker that grabs it publishes
				// the ticket and resumes the benaphore.
				t.block()
				t.claimTicket()
			}
			defer func() {
				if p := recover(); p != nil {
					buf := make([]byte, 16<<10)
					buf = buf[:runtime.Stack(buf, false)]
					errMu.Lock()
					errs = append(errs, fmt.Errorf("rank %d panicked: %v\n%s", c.wrank, p, buf))
					errMu.Unlock()
					// Unblock peers that may be blocked waiting anywhere.
					w.poison()
				}
			}()
			if err := body(c); err != nil {
				errMu.Lock()
				errs = append(errs, fmt.Errorf("rank %d: %w", c.wrank, err))
				errMu.Unlock()
				// A failed rank will never send or deposit again, so any
				// peer waiting on it would block forever and an undeadlined
				// Run would hang. Poison the world: blocked peers unwind
				// with "a peer rank failed" panics, which the error report
				// ranks below the root cause.
				w.poison()
			}
		}()
	}
	if w.pool != nil {
		// Seed every task into its shard, then start the workers; each
		// rank goroutine begins running when a worker hands it a ticket.
		for _, t := range ws.tasks {
			w.pool.ready(t)
		}
		w.pool.start()
	}
	go func() { wg.Wait(); close(doneCh) }()

	var deadlineErr error
	if cfg.Deadline > 0 {
		select {
		case <-doneCh:
		case <-time.After(cfg.Deadline):
			// Deadline blown: poison the world so every rank blocked in a
			// receive, probe or collective unwinds (their blocking loops
			// check the poisoned flag and panic, which the rank goroutine
			// recovers), then report the deadlock as an error instead of
			// crashing the process. The grace wait below only fails if a
			// rank is stuck outside the runtime (e.g. user code blocked on
			// a channel), where a dump is the only useful artifact.
			deadlineErr = fmt.Errorf("mpi: run exceeded deadline %v (likely communication deadlock)", cfg.Deadline)
			w.poison()
			select {
			case <-doneCh:
			case <-time.After(10 * time.Second):
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				panic(fmt.Sprintf("mpi: ranks failed to unwind after deadline %v poison; goroutines:\n%s", cfg.Deadline, buf))
			}
		}
	} else {
		<-doneCh
	}
	if w.pool != nil {
		// All rank goroutines have yielded their tickets (wg.Done ordering
		// above), so the queues are drained and no further ready() can
		// occur: the workers exit and are joined before Run returns, which
		// keeps CheckGoroutines exact.
		w.pool.stop()
	}

	for i, mb := range w.mailboxes {
		w.stats[i].QueueHighWater = mb.highWater()
		w.stats[i].UnreceivedMsgs = int64(mb.pendingUser())
	}
	rep := &Report{Procs: cfg.Procs, Wall: time.Since(start), Stats: w.stats, waits: waits, events: events}
	rep.FinalTimes = make([]float64, cfg.Procs)
	for i, c := range comms {
		rep.FinalTimes[i] = c.ps.now
		rep.MaxVirtualTime = math.Max(rep.MaxVirtualTime, c.ps.now)
		rep.TotalVirtualTime += c.ps.now
	}
	errMu.Lock()
	defer errMu.Unlock()
	if deadlineErr == nil && len(errs) == 0 {
		releaseWorldState(ws)
	}
	if deadlineErr != nil {
		// The per-rank "aborted: a peer rank failed" panics that the
		// poison provoked are a consequence, not the cause; report the
		// deadline itself.
		return rep, fmt.Errorf("%w (%d rank(s) were still blocked)", deadlineErr, len(errs))
	}
	if len(errs) > 0 {
		// "a peer rank failed" unwinds are consequences of the poison, not
		// causes; sort them after the originating failures.
		consequence := func(e error) bool {
			return strings.Contains(e.Error(), "a peer rank failed")
		}
		sort.Slice(errs, func(i, j int) bool {
			if ci, cj := consequence(errs[i]), consequence(errs[j]); ci != cj {
				return cj
			}
			return errs[i].Error() < errs[j].Error()
		})
		if len(errs) > 3 {
			errs = errs[:3]
		}
		return rep, fmt.Errorf("mpi: %d rank failure(s); first: %w", len(errs), errs[0])
	}
	return rep, nil
}

// Rank returns this process's rank within this communicator, in
// [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return c.size() }

// WorldRank returns this process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.wrank }

// Now returns this rank's current virtual clock in seconds.
func (c *Comm) Now() float64 { return c.ps.now }

// Cost returns the cost model in effect.
func (c *Comm) Cost() *CostModel { return c.w.cost }

// Stats returns this rank's statistics ledger. The ledger must only be
// inspected by this rank while the run is live; after Run returns, all
// ledgers may be read freely from the Report.
func (c *Comm) Stats() *RankStats { return c.ps.rs }

// Compute charges units of local computation to this rank's virtual clock
// using CostModel.ComputePerUnit. A "unit" is deliberately abstract: the
// matching and BFS codes charge one unit per adjacency entry scanned or
// per protocol event handled.
func (c *Comm) Compute(units float64) {
	dt := units * c.w.cost.ComputePerUnit
	c.ps.now += dt
	c.ps.rs.CompTime += dt
}

// AdvanceTime adds dt seconds of miscellaneous local activity to the
// virtual clock without classifying it as compute or communication.
func (c *Comm) AdvanceTime(dt float64) {
	if dt < 0 {
		panic("mpi: AdvanceTime with negative duration")
	}
	c.ps.now += dt
}

// Pack charges the CPU cost of appending n records to an aggregation
// buffer (n times CostModel.PackOverhead), booked as pack time in the
// phase profile. Aggregating transports call it per queued record.
func (c *Comm) Pack(n int) {
	dt := float64(n) * c.w.cost.PackOverhead
	c.ps.now += dt
	c.ps.rs.PackTime += dt
}

// Unpack charges the CPU cost of parsing n records out of a received
// coalesced buffer, booked as unpack time in the phase profile.
func (c *Comm) Unpack(n int) {
	dt := float64(n) * c.w.cost.PackOverhead
	c.ps.now += dt
	c.ps.rs.UnpackTime += dt
}

// AccountAlloc records bytes of application communication-buffer memory
// against this rank (window memory, aggregation buffers). Use a negative
// value to record a release. The high-water mark feeds the Table VIII
// style memory reports.
func (c *Comm) AccountAlloc(bytes int64) { c.ps.rs.accountAlloc(bytes) }

// chargeComm adds dt of communication time to the clock and the ledger.
func (c *Comm) chargeComm(dt float64) {
	c.ps.now += dt
	c.ps.rs.CommTime += dt
}

// perturbLatency applies this rank's schedule perturbation (per-rank
// slowdown and per-message jitter) to an in-flight latency before it is
// stamped into a message's virtual arrival. One nil check when off; the
// perturbed value is never smaller than the base, preserving causality.
func (c *Comm) perturbLatency(base float64) float64 {
	if pt := c.ps.pert; pt != nil {
		return pt.Latency(base)
	}
	return base
}

// waitFor advances the clock to at least t, booking the idle gap as
// communication (wait) time. class says what the rank was blocked on,
// cause the world rank that enables progress at time t, and causeT that
// rank's local clock when it did so (message injection, collective
// entry) — together they form the cross-rank dependency edge the
// post-mortem critical-path analysis walks. The traced-off cost is
// unchanged: one nil check inside event.
func (c *Comm) waitFor(t float64, class WaitClass, cause int, causeT float64) {
	if t > c.ps.now {
		from := c.ps.now
		c.ps.rs.CommTime += t - from
		c.ps.rs.WaitTime += t - from
		c.noteWait(from, t)
		c.ps.now = t
		if r := c.ps.ev; r != nil {
			if r.n == len(r.buf) {
				r.dropped++
			} else {
				r.buf[r.n] = Event{Kind: EvWait, Class: class, Peer: cause, Tag: -1, Start: from, End: t, CauseT: causeT}
				r.n++
			}
		}
	}
}

// waitUntil is waitFor without a known cause (no dependency edge).
func (c *Comm) waitUntil(t float64) { c.waitFor(t, WaitNone, -1, 0) }

func (c *Comm) mbox() *mailbox { return c.w.mailboxes[c.wrank] }

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= c.size() {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", what, r, c.size()))
	}
}
