package mpi

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// runChecked and testRun run body under the standard test options:
// matrices tracked, 30-second deadlock watchdog. runChecked adds the
// post-run hygiene checks; testRun is for bodies that end with traffic
// intentionally in flight or expect failure.
func runChecked(p int, body func(c *Comm) error) (*Report, error) {
	return RunChecked(p, body, WithMatrices(), WithDeadline(30*time.Second))
}

func testRun(p int, body func(c *Comm) error) (*Report, error) {
	return Run(p, body, WithMatrices(), WithDeadline(30*time.Second))
}

func TestSendRecvBasic(t *testing.T) {
	rep, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 7, []int64{1, 2, 3})
		} else {
			data, st := c.Recv(0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v, want src 0 tag 7 count 3", st)
			}
			if data[0] != 1 || data[1] != 2 || data[2] != 3 {
				t.Errorf("data = %v", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats[0].SendCount != 1 || rep.Stats[0].SendBytes != 24 {
		t.Errorf("sender stats = %+v", rep.Stats[0])
	}
	if rep.Stats[1].RecvCount != 1 || rep.Stats[1].RecvBytes != 24 {
		t.Errorf("receiver stats = %+v", rep.Stats[1])
	}
	if err := CheckDrained(rep); err != nil {
		t.Error(err)
	}
}

func TestSendBufferReusable(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []int64{42}
			c.Isend(1, 0, buf)
			buf[0] = 99 // must not affect the in-flight message
		} else {
			data, _ := c.Recv(0, 0)
			if data[0] != 42 {
				t.Errorf("got %d, want 42 (send buffer not copied)", data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	_, err := runChecked(4, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Isend(0, 10+c.Rank(), []int64{int64(c.Rank())})
			return nil
		}
		seen := map[int64]bool{}
		for i := 0; i < 3; i++ {
			data, st := c.Recv(AnySource, AnyTag)
			if int64(st.Source) != data[0] {
				t.Errorf("source %d but payload %d", st.Source, data[0])
			}
			if st.Tag != 10+st.Source {
				t.Errorf("tag %d from %d", st.Tag, st.Source)
			}
			seen[data[0]] = true
		}
		if len(seen) != 3 {
			t.Errorf("saw %d distinct senders, want 3", len(seen))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingOrder(t *testing.T) {
	// Messages from one sender with one tag must arrive in send order.
	const k = 50
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := int64(0); i < k; i++ {
				c.Isend(1, 3, []int64{i})
			}
			return nil
		}
		for i := int64(0); i < k; i++ {
			data, _ := c.Recv(0, 3)
			if data[0] != i {
				t.Errorf("message %d arrived out of order (got %d)", i, data[0])
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 1, []int64{1})
			c.Isend(1, 2, []int64{2})
			return nil
		}
		// Receive tag 2 first even though tag 1 was sent earlier.
		d2, _ := c.Recv(0, 2)
		d1, _ := c.Recv(0, 1)
		if d2[0] != 2 || d1[0] != 1 {
			t.Errorf("tag-selective receive failed: %v %v", d2, d1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 5, []int64{11, 22})
			return nil
		}
		// Wait for the message to land, then probe.
		st := c.Probe(0, AnyTag)
		if st.Tag != 5 || st.Count != 2 {
			t.Errorf("probe status %+v", st)
		}
		ok, st2 := c.Iprobe(AnySource, 5)
		if !ok || st2.Source != 0 {
			t.Errorf("iprobe: ok=%v st=%+v", ok, st2)
		}
		// Probe must not consume: message still receivable.
		data, _ := c.Recv(0, 5)
		if len(data) != 2 || data[0] != 11 {
			t.Errorf("after probes, recv got %v", data)
		}
		// Now the queue is empty.
		if ok, _ := c.Iprobe(AnySource, AnyTag); ok {
			t.Error("iprobe found a message after all were received")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSsendCharges(t *testing.T) {
	var tSync, tEager float64
	for _, sync := range []bool{false, true} {
		rep, err := runChecked(2, func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < 10; i++ {
					if sync {
						c.Ssend(1, 0, []int64{1})
					} else {
						c.Isend(1, 0, []int64{1})
					}
				}
			} else {
				for i := 0; i < 10; i++ {
					c.Recv(0, 0)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sync {
			tSync = rep.MaxVirtualTime
			if rep.Stats[0].SyncSends != 10 {
				t.Errorf("SyncSends = %d, want 10", rep.Stats[0].SyncSends)
			}
		} else {
			tEager = rep.MaxVirtualTime
		}
	}
	if tSync <= tEager {
		t.Errorf("synchronous sends (%g) should model slower than eager (%g)", tSync, tEager)
	}
}

func TestVirtualTimeCausality(t *testing.T) {
	// A receiver that posts Recv "early" must still observe an arrival
	// time no earlier than the sender's send time plus latency.
	rep, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(1e6) // sender is busy for a long virtual while
			c.Isend(1, 0, []int64{1})
		} else {
			before := c.Now()
			c.Recv(0, 0)
			if c.Now() <= before {
				t.Error("receiver clock did not advance across a blocking recv")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultCostModel()
	wantMin := 1e6 * m.ComputePerUnit
	if rep.MaxVirtualTime < wantMin {
		t.Errorf("MaxVirtualTime = %g, want >= %g (receiver must wait for busy sender)", rep.MaxVirtualTime, wantMin)
	}
}

func TestMessageMatrix(t *testing.T) {
	rep, err := runChecked(3, func(c *Comm) error {
		next := (c.Rank() + 1) % 3
		c.Isend(next, 0, []int64{0, 0}) // 16 bytes
		c.Recv((c.Rank()+2)%3, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mm := MsgMatrix(rep.Stats)
	bm := ByteMatrix(rep.Stats)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			wantM, wantB := int64(0), int64(0)
			if j == (i+1)%3 {
				wantM, wantB = 1, 16
			}
			if mm[i][j] != wantM || bm[i][j] != wantB {
				t.Errorf("matrix[%d][%d] = (%d,%d), want (%d,%d)", i, j, mm[i][j], bm[i][j], wantM, wantB)
			}
		}
	}
}

func TestQueueHighWater(t *testing.T) {
	rep, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				c.Isend(1, 0, []int64{1, 2, 3, 4}) // 32 bytes each
			}
			c.Barrier()
		} else {
			c.Barrier() // let all four queue up before receiving
			for i := 0; i < 4; i++ {
				c.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := rep.Stats[1].QueueHighWater; hw != 128 {
		t.Errorf("receiver queue high-water = %d, want 128", hw)
	}
	if hw := rep.Stats[0].QueueHighWater; hw != 0 {
		t.Errorf("sender queue high-water = %d, want 0", hw)
	}
}

func TestRankFailurePropagates(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("deliberate test failure")
		}
		c.Recv(0, 0) // would deadlock without poisoning
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from a panicking rank")
	}
}

func TestSelfSend(t *testing.T) {
	_, err := runChecked(1, func(c *Comm) error {
		c.Isend(0, 9, []int64{5})
		data, st := c.Recv(0, 9)
		if data[0] != 5 || st.Source != 0 {
			t.Errorf("self-send got %v %+v", data, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPendingMessagesDiagnostic(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 0, []int64{1})
		}
		c.Barrier()
		if c.Rank() == 1 {
			if n := c.PendingMessages(); n != 1 {
				t.Errorf("pending = %d, want 1", n)
			}
			c.Recv(0, 0)
			if n := c.PendingMessages(); n != 0 {
				t.Errorf("pending after recv = %d, want 0", n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineWatchdogFires(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 0) // never sent: deadlock
		}
		return nil
	}, WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("expected a deadline error on a deadlocked run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error %q does not report the deadline", err)
	}
}

// TestDeadlineNoGoroutineLeak: a rank blocked forever in Recv must be
// unwound by the deadline teardown, not abandoned — a leaked rank
// goroutine would pin its mailbox and stack for the life of the
// process. Covers Recv, Probe and an internal (neighborhood) receive,
// which block in different loops.
func TestDeadlineNoGoroutineLeak(t *testing.T) {
	block := map[string]func(c *Comm){
		"recv":  func(c *Comm) { c.Recv(1, 0) },
		"probe": func(c *Comm) { c.Probe(1, 0) },
		"nbr": func(c *Comm) {
			topo := c.CreateGraphTopo([]int{1})
			topo.INeighborAlltoallvInt64([][]int64{{1}}).Wait() // peer never sends
		},
	}
	for name, blocked := range block {
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			_, err := Run(2, func(c *Comm) error {
				if c.Rank() == 0 {
					blocked(c) // rank 1 exits immediately: rank 0 blocks forever
				}
				return nil
			}, WithDeadline(100*time.Millisecond))
			if err == nil {
				t.Fatal("expected a deadline error")
			}
			if cerr := CheckGoroutines(baseline); cerr != nil {
				t.Fatalf("deadline teardown leaked the blocked rank: %v", cerr)
			}
		})
	}
}
