package mpi

import (
	"math"
	"testing"
)

// ringNeighbors returns the two ring neighbors of rank r in a world of p.
func ringNeighbors(r, p int) []int {
	if p == 1 {
		return nil
	}
	if p == 2 {
		return []int{1 - r}
	}
	return []int{(r + p - 1) % p, (r + 1) % p}
}

func TestNeighborAlltoallRing(t *testing.T) {
	const p = 5
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		nbrs := topo.Neighbors()
		send := make([]int64, len(nbrs))
		for i := range send {
			send[i] = int64(c.Rank()*1000 + nbrs[i])
		}
		got := topo.NeighborAlltoallInt64(send, 1)
		for i, nb := range nbrs {
			want := int64(nb*1000 + c.Rank())
			if got[i] != want {
				t.Errorf("rank %d from %d: got %d want %d", c.Rank(), nb, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAlltoallvVariableSizes(t *testing.T) {
	const p = 4
	// Star topology: rank 0 in the middle.
	_, err := runChecked(p, func(c *Comm) error {
		var nbrs []int
		if c.Rank() == 0 {
			nbrs = []int{1, 2, 3}
		} else {
			nbrs = []int{0}
		}
		topo := c.CreateGraphTopo(nbrs)
		send := make([][]int64, topo.Degree())
		for i, nb := range topo.Neighbors() {
			// Rank r sends r copies of its rank to each neighbor.
			for k := 0; k < c.Rank()+1; k++ {
				send[i] = append(send[i], int64(c.Rank()))
			}
			_ = nb
		}
		got := topo.NeighborAlltoallvInt64(send)
		for i, nb := range topo.Neighbors() {
			if len(got[i]) != nb+1 {
				t.Errorf("rank %d got %d words from %d, want %d", c.Rank(), len(got[i]), nb, nb+1)
			}
			for _, v := range got[i] {
				if v != int64(nb) {
					t.Errorf("rank %d corrupted payload from %d: %v", c.Rank(), nb, got[i])
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAllgather(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		got := topo.NeighborAllgatherInt64([]int64{int64(c.Rank()), int64(c.Rank())})
		for i, nb := range topo.Neighbors() {
			if len(got[i]) != 2 || got[i][0] != int64(nb) {
				t.Errorf("rank %d allgather from %d = %v", c.Rank(), nb, got[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyNeighborhoodIsNonBlocking(t *testing.T) {
	// Ranks 2,3 have no neighbors; they must not be required for 0<->1
	// neighborhood collectives (unlike global collectives).
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		var nbrs []int
		switch c.Rank() {
		case 0:
			nbrs = []int{1}
		case 1:
			nbrs = []int{0}
		}
		topo := c.CreateGraphTopo(nbrs)
		if c.Rank() <= 1 {
			// Isolated ranks never call this; it must still complete.
			got := topo.NeighborAlltoallInt64([]int64{int64(c.Rank())}, 1)
			if got[0] != int64(1-c.Rank()) {
				t.Errorf("rank %d got %v", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricTopologyPanics(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		var nbrs []int
		if c.Rank() == 0 {
			nbrs = []int{1} // rank 1 does not reciprocate
		}
		c.CreateGraphTopo(nbrs)
		return nil
	})
	if err == nil {
		t.Fatal("asymmetric topology must be rejected")
	}
}

func TestMultipleTopologiesAreIndependent(t *testing.T) {
	const p = 3
	_, err := runChecked(p, func(c *Comm) error {
		ring := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		full := c.CreateGraphTopo(func() []int {
			var out []int
			for r := 0; r < p; r++ {
				if r != c.Rank() {
					out = append(out, r)
				}
			}
			return out
		}())
		// Interleave calls on both topologies; traffic must not cross.
		a := ring.NeighborAllgatherInt64([]int64{int64(10 + c.Rank())})
		b := full.NeighborAllgatherInt64([]int64{int64(20 + c.Rank())})
		for i, nb := range ring.Neighbors() {
			if a[i][0] != int64(10+nb) {
				t.Errorf("ring traffic corrupted: %v", a[i])
			}
		}
		for i, nb := range full.Neighbors() {
			if b[i][0] != int64(20+nb) {
				t.Errorf("full traffic corrupted: %v", b[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherTopoStats(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		// Star: center degree 3, leaves degree 1 -> |Ep| = 3.
		var nbrs []int
		if c.Rank() == 0 {
			nbrs = []int{1, 2, 3}
		} else {
			nbrs = []int{0}
		}
		topo := c.CreateGraphTopo(nbrs)
		st := topo.GatherTopoStats()
		if st.Edges != 3 {
			t.Errorf("edges = %d, want 3", st.Edges)
		}
		if st.DegMax != 3 || st.DegMin != 1 {
			t.Errorf("deg range = [%d,%d], want [1,3]", st.DegMin, st.DegMax)
		}
		if math.Abs(st.DegAvg-1.5) > 1e-12 {
			t.Errorf("avg = %g, want 1.5", st.DegAvg)
		}
		// Variance of {3,1,1,1} is (9+1+1+1)/4 - 2.25 = 0.75.
		if math.Abs(st.DegSigma-math.Sqrt(0.75)) > 1e-12 {
			t.Errorf("sigma = %g", st.DegSigma)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborCollectiveChargesDegree(t *testing.T) {
	// A denser neighborhood must cost more virtual time per round than a
	// sparse one — the mechanism behind the paper's NCL degradation on
	// dense process graphs (Tables III/IV).
	round := func(full bool) float64 {
		const p = 8
		rep, err := runChecked(p, func(c *Comm) error {
			var nbrs []int
			if full {
				for r := 0; r < p; r++ {
					if r != c.Rank() {
						nbrs = append(nbrs, r)
					}
				}
			} else {
				nbrs = ringNeighbors(c.Rank(), p)
			}
			topo := c.CreateGraphTopo(nbrs)
			for i := 0; i < 50; i++ {
				topo.NeighborAlltoallInt64(make([]int64, topo.Degree()), 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxVirtualTime
	}
	sparse, dense := round(false), round(true)
	if dense <= sparse {
		t.Errorf("dense neighborhood rounds (%g) should cost more than sparse (%g)", dense, sparse)
	}
}

func TestINeighborAlltoallvOverlap(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		send := make([][]int64, topo.Degree())
		for i, nb := range topo.Neighbors() {
			send[i] = []int64{int64(c.Rank()*100 + nb)}
		}
		req := topo.INeighborAlltoallvInt64(send)
		c.Compute(1000) // overlap with transfer
		got := req.Wait()
		for i, nb := range topo.Neighbors() {
			if got[i][0] != int64(nb*100+c.Rank()) {
				t.Errorf("rank %d: got %v from %d", c.Rank(), got[i], nb)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNbrRequestTest(t *testing.T) {
	const p = 2
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		req := topo.INeighborAlltoallvInt64([][]int64{{int64(c.Rank())}})
		// Poll until complete; must terminate since the peer also sends.
		for {
			if got, ok := req.Test(); ok {
				if got[0][0] != int64(1-c.Rank()) {
					t.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNbrRequestDoubleWaitPanics(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), 2))
		req := topo.INeighborAlltoallvInt64([][]int64{{1}})
		req.Wait()
		req.Wait() // must panic
		return nil
	})
	if err == nil {
		t.Fatal("double Wait must fail the run")
	}
}

func TestOverlapSavesVirtualTime(t *testing.T) {
	// The point of the nonblocking form: compute between start and wait
	// should overlap the transfer, finishing earlier than the blocking
	// sequence (exchange then compute).
	const p, work = 2, 400
	run := func(nonblocking bool) float64 {
		rep, err := runChecked(p, func(c *Comm) error {
			topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
			send := [][]int64{make([]int64, 4096)}
			for k := 0; k < 20; k++ {
				if nonblocking {
					req := topo.INeighborAlltoallvInt64(send)
					c.Compute(work)
					req.Wait()
				} else {
					topo.NeighborAlltoallvInt64(send)
					c.Compute(work)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxVirtualTime
	}
	if nb, bl := run(true), run(false); nb >= bl {
		t.Errorf("nonblocking (%g) should not be slower than blocking (%g)", nb, bl)
	}
}
