package mpi

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTraceRun is a fully deterministic traced scenario: no probes
// (whose hit/miss outcomes depend on real scheduling), only blocking
// operations whose virtual timestamps follow from the cost model alone.
func goldenTraceRun(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(100)
			c.Isend(1, 7, []int64{1, 2, 3})
		} else {
			c.Recv(0, 7)
		}
		c.Barrier()
		return nil
	}, WithEventTrace(64), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTraceRun(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter emitted invalid JSON:\n%s", buf.String())
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenTraceRun(t).WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenTraceRun(t).WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical runs exported different traces:\n%s\nvs:\n%s", a.String(), b.String())
	}
}

// TestChromeTraceStructure decodes the export and checks the document
// shape the viewers rely on: metadata rows naming process and threads,
// complete ("X") slices with microsecond timestamps and args.
func TestChromeTraceStructure(t *testing.T) {
	tr := NewChromeTrace()
	tr.Add("run A", goldenTraceRun(t))
	tr.Add("run B", goldenTraceRun(t))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	meta, slices := 0, 0
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("slice %q has negative ts/dur: %+v", e.Name, e)
			}
			if _, ok := e.Args["bytes"]; !ok {
				t.Errorf("slice %q missing bytes arg", e.Name)
			}
			if e.Cat == "" {
				t.Errorf("slice %q missing category", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		pids[e.Pid] = true
	}
	// 2 runs x (1 process_name + 2 thread_name) metadata rows.
	if meta != 6 {
		t.Errorf("metadata rows = %d, want 6", meta)
	}
	if slices == 0 {
		t.Error("no slices exported")
	}
	if len(pids) != 2 {
		t.Errorf("distinct pids = %d, want one per run", len(pids))
	}
}
