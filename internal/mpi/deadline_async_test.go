package mpi

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDeadlineAsyncNoLeak is the async-path teardown bug hunt: an
// asynchronous engine has no round fence, so a rank can be parked
// indefinitely in a blocking AnySource receive or in the quiescence
// detector's Block/Quiesce waits with nothing on the way. Deadline
// poison must unwind every such park without leaking the rank
// goroutine or its mailbox.
func TestDeadlineAsyncNoLeak(t *testing.T) {
	cases := map[string]func(c *Comm){
		// Blocking wildcard receive with no round fence and no sender.
		"anysource-recv": func(c *Comm) {
			if c.Rank() == 0 {
				c.Recv(AnySource, AnyTag)
			}
		},
		// Engine-style detector park. A phantom unmatched send keeps the
		// deficit nonzero forever, so the ring can never conclude; rank 0
		// ends up parked in Block with no app or detector traffic due.
		"quiesce-block": func(c *Comm) {
			q := NewQuiesce(c)
			if c.Rank() == 0 {
				q.NoteSend(1) // never actually sent: permanent deficit
				for !q.Idle() {
					q.Block()
				}
			}
		},
		// Blocking detector drive where the ring is broken: every other
		// rank exits without relaying, so rank 0 blocks in the detector's
		// internal receive.
		"quiesce-ring-broken": func(c *Comm) {
			q := NewQuiesce(c)
			if c.Rank() == 0 {
				q.Quiesce()
			}
		},
	}
	for _, mode := range []SchedMode{SchedDirect, SchedWorkers} {
		for name, blocked := range cases {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				start := time.Now()
				_, err := Run(4, func(c *Comm) error {
					blocked(c) // other ranks exit immediately
					return nil
				}, WithScheduler(mode), WithDeadline(200*time.Millisecond))
				if err == nil {
					t.Fatal("expected a deadline error")
				}
				if !strings.Contains(err.Error(), "deadline") {
					t.Fatalf("error %q does not report the deadline", err)
				}
				if el := time.Since(start); el > 10*time.Second {
					t.Errorf("teardown took %v, want prompt unwind", el)
				}
				if cerr := CheckGoroutines(baseline); cerr != nil {
					t.Fatalf("deadline teardown leaked the parked rank: %v", cerr)
				}
			})
		}
	}
}

// TestPeerErrorAsyncNoLeak covers the second poison source: a peer
// returning an error from its body while this rank is parked in an
// async wait. The parked ranks must observe the peer failure and
// unwind; the run reports the original error.
func TestPeerErrorAsyncNoLeak(t *testing.T) {
	boom := errors.New("boom: application failure on rank 1")
	cases := map[string]func(c *Comm) error{
		"anysource-recv": func(c *Comm) error {
			if c.Rank() == 1 {
				return boom
			}
			if c.Rank() != 2 {
				c.Recv(AnySource, AnyTag) // parked; only poison can free it
			}
			return nil
		},
		"quiesce-block": func(c *Comm) error {
			q := NewQuiesce(c) // collective: every rank joins before the failure
			if c.Rank() == 1 {
				return boom
			}
			if c.Rank() == 2 {
				return nil
			}
			q.NoteSend(1) // permanent deficit: Block is the only exit
			for !q.Idle() {
				q.Block()
			}
			return nil
		},
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			_, err := Run(4, body, WithDeadline(30*time.Second))
			if err == nil {
				t.Fatal("expected the peer's error")
			}
			if !strings.Contains(err.Error(), "boom") {
				t.Fatalf("error %q does not carry the failing rank's error", err)
			}
			if cerr := CheckGoroutines(baseline); cerr != nil {
				t.Fatalf("peer-error teardown leaked a parked rank: %v", cerr)
			}
		})
	}
}
