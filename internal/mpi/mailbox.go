package mpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// This file implements the runtime's receive-side message store. Every
// rank owns one mailbox; senders push under the mailbox lock and the
// owning rank matches, probes and dequeues.
//
// The store is organized the way real MPI implementations index their
// posted-receive and unexpected-message queues (cf. MPICH's queue-search
// optimizations): messages are bucketed by source, and each bucket keeps
// small FIFO indexes so the common lookups are O(1) instead of a linear
// scan over everything queued:
//
//   - per (source, communicator) FIFO of user-level messages, in virtual
//     arrival order — resolves (src, AnyTag) and feeds AnySource scans;
//   - per (source, communicator, tag) FIFO — resolves exact (src, tag);
//   - per (source, itag) FIFO for runtime-internal traffic (neighborhood
//     collective chunks, RMA control), which is matched exactly.
//
// A user-level message is indexed by both the arrival FIFO and its tag
// FIFO. Dequeuing through one index bumps the message's generation; the
// other index skips dead entries lazily when it next reaches them, so
// removal is O(1) amortized with no shift-deletes. Because message
// structs are pooled, a stale index entry can outlive its message's
// recycling — and the recycled struct may by then live in a different
// mailbox, under a different lock. Every entry therefore records the
// generation at push time and compares it with one atomic load: take and
// release each bump the counter, so equality proves the entry still
// refers to the live, untaken incarnation owned by this mailbox.
//
// Within one (source, communicator) the sender's virtual clock is
// monotone, so FIFO order is arrival order and the front of a queue is
// its earliest message. This makes per-source FIFO delivery (MPI's
// non-overtaking guarantee) structural rather than incidental. AnySource
// wildcards take the minimum virtual-arrival front across the buckets
// that currently hold user traffic — O(#sources-with-pending), not
// O(#messages) — which preserves the earliest-virtual-arrival selection
// the timing model depends on (see the comment on matchUserLocked).
//
// Buckets are stored densely (an indexed array) for worlds of up to
// denseSrcLimit ranks and sparsely (a lazily populated map keyed by
// source) above that: a graph-topology rank hears from its process-graph
// neighbors, not from all P peers, so dense bucket tables would cost
// O(P) per mailbox = O(P^2) per world — about 10 GB of empty buckets at
// 16K ranks. Either way, buckets holding live user traffic are also
// linked into an active list of bucket pointers, so wildcard scans never
// touch the map.
//
// Messages themselves are pooled: see message.release. Payloads of up to
// inlineWords words (covering the 3-word protocol records that dominate
// matching traffic) live inline in the struct; larger payloads use a
// spill buffer that is recycled with the struct.

// inlineWords is the payload capacity stored directly inside a pooled
// message struct. Four words cover the {ctx, x, y} protocol records and
// the one-word control messages that dominate the runtime's traffic.
const inlineWords = 4

// denseSrcLimit is the world size up to which a mailbox keeps its
// source buckets in a dense array. Above it buckets are allocated
// per-source on first traffic, bounding mailbox memory by the rank's
// in-degree instead of the world size.
const denseSrcLimit = 1024

// message is an in-flight payload. itag != 0 marks runtime-internal
// traffic (neighborhood collectives, RMA control) which is invisible to
// user-level Recv/Probe.
type message struct {
	src  int // sender's rank within the sending communicator
	tag  int
	itag int64
	mctx int32 // communicator id (user-level traffic only)
	// gen is bumped on take and on release. Index entries snapshot it at
	// push time; a mismatch means the entry is dead (taken through the
	// other index, or recycled entirely). Atomic because a stale entry
	// may be examined under one mailbox's lock while the recycled
	// struct's current owner bumps it under another's.
	gen    atomic.Uint64
	data   []int64
	bytes  int64
	arrive float64 // virtual arrival time at the receiver
	// sent is the sender's virtual clock at injection (arrive minus the
	// in-flight latency). Classified waits record it as the cause
	// timestamp, linking the receiver's blocked interval back to the
	// point on the sender's timeline that bounds it.
	sent   float64
	inline [inlineWords]int64
	spill  []int64 // reusable storage for payloads > inlineWords
}

// msgPool recycles message structs (with their spill buffers) across the
// whole process. Senders allocate from it in newMessage; receivers return
// structs via release once the payload has been copied out.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// newMessage obtains a pooled message and copies data into it. The caller
// may reuse data immediately (MPI eager-buffering semantics).
func newMessage(src, tag int, itag int64, mctx int32, data []int64) *message {
	m := msgPool.Get().(*message)
	m.src, m.tag, m.itag, m.mctx = src, tag, itag, mctx
	n := len(data)
	if n <= inlineWords {
		m.data = m.inline[:n:inlineWords]
	} else {
		if cap(m.spill) < n {
			m.spill = make([]int64, n)
		}
		m.data = m.spill[:n]
	}
	copy(m.data, data)
	m.bytes = int64(8 * n)
	return m
}

// release returns a message to the pool. The caller must have copied out
// everything it needs: after release, m.data may be overwritten by an
// unrelated send at any time. Bumping gen invalidates any index entry
// still pointing at the struct (lazy deletion leaves those behind).
func (m *message) release() {
	m.gen.Add(1)
	m.data = nil
	msgPool.Put(m)
}

// qent is one ring slot: the message plus its generation at push time. A
// mismatch against the struct's current generation means the message was
// dequeued through the other index (or already recycled) — the slot is
// dead even though the reused struct may look live again.
type qent struct {
	m   *message
	gen uint64
}

// msgq is a FIFO ring of messages. Capacity grows by doubling and is
// retained for the life of the mailbox, so steady-state operation does
// not allocate. front and pop skip entries already taken through another
// index.
type msgq struct {
	buf  []qent
	head int // index of the front element (valid when n > 0)
	n    int // live slots, including taken entries not yet skipped
}

func (q *msgq) push(m *message) {
	if q.n == len(q.buf) {
		grown := make([]qent, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = qent{m, m.gen.Load()}
	q.n++
}

// front returns the earliest live message, discarding taken and recycled
// entries.
func (q *msgq) front() *message {
	for q.n > 0 {
		e := q.buf[q.head]
		if e.m.gen.Load() == e.gen {
			return e.m
		}
		q.buf[q.head] = qent{}
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.n--
	}
	return nil
}

// popFront removes the message returned by front. Callers must have just
// called front (so the head entry is live).
func (q *msgq) popFront() {
	q.buf[q.head] = qent{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
}

// tagKey indexes a user-level (communicator, tag) FIFO within a bucket.
type tagKey struct {
	mctx int32
	tag  int
}

// srcBucket holds everything queued from one source rank. For a fixed
// communicator a source rank maps to exactly one sending goroutine, so
// each FIFO below has a single producer with a monotone clock.
type srcBucket struct {
	user  map[int32]*msgq  // mctx -> user messages in arrival order
	tags  map[tagKey]*msgq // (mctx, tag) -> user messages with that tag
	intl  map[int64]*msgq  // itag -> internal messages
	src   int32            // source rank this bucket indexes
	nUser int              // live user-level messages in this bucket
	alive int              // position in mailbox.active, or -1
	used  bool             // touched since the last reset (dense mode)
}

// mailbox is one rank's receive queue. Senders push under mu; the single
// owning rank matches and dequeues. The owner parks its task (not a
// condvar) when nothing matches; push unparks it, so a sender's wakeup
// is one CAS plus, in pooled mode, a shard-local enqueue.
type mailbox struct {
	mu       sync.Mutex
	owner    *task
	dense    []srcBucket          // index by src; non-nil for small worlds
	sparse   map[int32]*srcBucket // lazily populated for large worlds
	used     []*srcBucket         // buckets touched since the last reset
	active   []*srcBucket         // buckets with nUser > 0, unordered
	nUser    int                  // live user-level messages across all buckets
	qfree    []*msgq              // recycled internal queues (itags are sequence-numbered)
	parked   bool                 // the owner's task is parked on this mailbox
	queued   int64                // bytes currently queued (eager-buffer occupancy)
	hw       int64                // high-water of queued
	poisoned bool
	// pert, when non-nil, permutes wildcard selection among concurrently
	// available bucket fronts (sched Ties class). It is the owning
	// rank's stream: matchUserLocked runs only on the owner's goroutine,
	// so no additional synchronization is needed beyond mu.
	pert *sched.Rank
}

// newMailbox returns a mailbox accepting traffic from up to n sources
// (communicator ranks are always < the world size n).
func newMailbox(n int) *mailbox {
	mb := &mailbox{}
	if n <= denseSrcLimit {
		mb.dense = make([]srcBucket, n)
	} else {
		mb.sparse = make(map[int32]*srcBucket)
	}
	return mb
}

// compatible reports whether a pooled mailbox can serve a world of n
// ranks: sparse mailboxes fit any n; dense ones need a big enough table.
func (mb *mailbox) compatible(n int) bool {
	return mb.dense == nil || len(mb.dense) >= n
}

// bucket returns (creating if needed) the bucket for source src. Caller
// holds mb.mu.
func (mb *mailbox) bucket(src int32) *srcBucket {
	if mb.dense != nil {
		b := &mb.dense[src]
		if !b.used {
			b.used, b.src, b.alive = true, src, -1
			mb.used = append(mb.used, b)
		}
		return b
	}
	b := mb.sparse[src]
	if b == nil {
		b = &srcBucket{src: src, alive: -1, used: true}
		mb.sparse[src] = b
		mb.used = append(mb.used, b)
	}
	return b
}

// peek returns the bucket for src without creating one, or nil.
func (mb *mailbox) peek(src int32) *srcBucket {
	if mb.dense != nil {
		b := &mb.dense[src]
		if !b.used {
			return nil
		}
		return b
	}
	return mb.sparse[src]
}

// push enqueues m, indexing it by source and tag, and unparks the owner
// if it is parked. On a poisoned mailbox push is a no-op (the run is
// already failing and the owner may have unwound), so queued/hw stay
// frozen at their poison-time snapshot for the memory reports.
func (mb *mailbox) push(m *message) {
	mb.mu.Lock()
	if mb.poisoned {
		mb.mu.Unlock()
		m.release()
		return
	}
	b := mb.bucket(int32(m.src))
	if m.itag != 0 {
		if b.intl == nil {
			b.intl = make(map[int64]*msgq)
		}
		q := b.intl[m.itag]
		if q == nil {
			// Internal tags embed a per-topology sequence number, so every
			// collective round arrives under a fresh key; recycling drained
			// queues (rings included) keeps the steady state allocation-free.
			if n := len(mb.qfree); n > 0 {
				q, mb.qfree = mb.qfree[n-1], mb.qfree[:n-1]
			} else {
				q = new(msgq)
			}
			b.intl[m.itag] = q
		}
		q.push(m)
	} else {
		if b.user == nil {
			b.user = make(map[int32]*msgq)
			b.tags = make(map[tagKey]*msgq)
		}
		q := b.user[m.mctx]
		if q == nil {
			q = new(msgq)
			b.user[m.mctx] = q
		}
		q.push(m)
		k := tagKey{m.mctx, m.tag}
		tq := b.tags[k]
		if tq == nil {
			tq = new(msgq)
			b.tags[k] = tq
		}
		tq.push(m)
		b.nUser++
		mb.nUser++
		if b.alive < 0 {
			b.alive = len(mb.active)
			mb.active = append(mb.active, b)
		}
	}
	mb.queued += m.bytes
	if mb.queued > mb.hw {
		mb.hw = mb.queued
	}
	wake := mb.parked
	mb.parked = false
	owner := mb.owner
	mb.mu.Unlock()
	if wake {
		owner.unpark()
	}
}

// parkLocked parks the owning task on the mailbox until the next push.
// The caller holds mb.mu with nothing matched; on return the lock is
// held again and the caller re-checks its predicate (wakeups may be
// spurious).
func (mb *mailbox) parkLocked(t *task) {
	mb.parked = true
	mb.mu.Unlock()
	t.park()
	mb.mu.Lock()
}

// take finalizes the dequeue of a user-level message found by
// matchUserLocked: the generation bump kills the entry in the index it
// was not popped from, and the byte/liveness accounting is updated.
func (mb *mailbox) take(m *message) {
	m.gen.Add(1)
	mb.queued -= m.bytes
	b := mb.peek(int32(m.src))
	b.nUser--
	mb.nUser--
	if b.nUser == 0 && b.alive >= 0 {
		last := len(mb.active) - 1
		moved := mb.active[last]
		mb.active[b.alive] = moved
		moved.alive = b.alive
		mb.active[last] = nil
		mb.active = mb.active[:last]
		b.alive = -1
	}
}

// userFront returns the earliest live user-level message from bucket b
// matching (tag, mctx), consulting the tag index for exact tags and the
// arrival FIFO for AnyTag. Returns the queue it came from so the caller
// can pop it.
func (b *srcBucket) userFront(tag int, mctx int32) (*message, *msgq) {
	var q *msgq
	if tag == AnyTag {
		q = b.user[mctx]
	} else {
		q = b.tags[tagKey{mctx, tag}]
	}
	if q == nil {
		return nil, nil
	}
	m := q.front()
	return m, q
}

// matchUserLocked finds the queued user-level message matching (src, tag)
// in communicator mctx with the earliest virtual arrival time and, if
// remove is set, dequeues it. Returns nil when nothing matches. now is
// the receiver's current virtual clock, consulted only when schedule
// perturbation is active. The caller holds mb.mu.
//
// Selecting by virtual arrival rather than physical enqueue position
// matters for timing fidelity: goroutine scheduling (especially on few
// cores) can enqueue a late-stamped message ahead of an early-stamped
// one, and processing the late one first would ratchet the receiver's
// clock and contaminate every subsequent reply with artificial delay.
// Per-source stamps are monotone, so each bucket FIFO is already in
// arrival order and an AnySource wildcard only has to compare bucket
// fronts; ties across sources break toward the lower source rank, and
// messages from one source retain FIFO order, preserving MPI's
// non-overtaking guarantee.
//
// Under perturbation (mb.pert with Ties), wildcard selection instead
// draws uniformly among every front that is concurrently available —
// arrival no later than max(now, earliest front arrival) — which is
// exactly the set a real MPI implementation could legally hand back
// first. Selection still only ever takes bucket fronts, so per-source
// FIFO holds, and a front is by construction also the front of its
// (comm, tag) index, so a probed wildcard status stays consistent with
// the follow-up exact-source receive.
func (mb *mailbox) matchUserLocked(src, tag int, mctx int32, remove bool, now float64) *message {
	var (
		best  *message
		bestq *msgq
	)
	if src != AnySource {
		b := mb.peek(int32(src))
		if b == nil || b.user == nil {
			return nil
		}
		best, bestq = b.userFront(tag, mctx)
	} else if mb.pert != nil && mb.pert.Ties() {
		best, bestq = mb.pickAnySourceLocked(tag, mctx, now)
	} else {
		for _, b := range mb.active {
			m, q := b.userFront(tag, mctx)
			if m == nil {
				continue
			}
			if best == nil || m.arrive < best.arrive ||
				(m.arrive == best.arrive && m.src < best.src) {
				best, bestq = m, q
			}
		}
	}
	if best == nil {
		return nil
	}
	if remove {
		bestq.popFront()
		mb.take(best)
	}
	return best
}

// pickAnySourceLocked implements perturbed wildcard selection: among
// the bucket fronts matching (tag, mctx), every front with virtual
// arrival <= max(now, earliest arrival) is concurrently available, and
// one is drawn uniformly from the owner rank's perturbation stream.
// The draw maps to candidates ordered by (arrive, src) — not by the
// physical order of mb.active, which depends on goroutine scheduling —
// so a seed replays the same choices given the same candidate sets.
func (mb *mailbox) pickAnySourceLocked(tag int, mctx int32, now float64) (*message, *msgq) {
	// Pass 1: earliest front arrival; the availability threshold can
	// never exclude it.
	first := false
	minArrive := 0.0
	for _, b := range mb.active {
		m, _ := b.userFront(tag, mctx)
		if m == nil {
			continue
		}
		if !first || m.arrive < minArrive {
			first, minArrive = true, m.arrive
		}
	}
	if !first {
		return nil, nil
	}
	thr := minArrive
	if now > thr {
		thr = now
	}
	// Pass 2: count the available candidates and draw one.
	k := 0
	for _, b := range mb.active {
		if m, _ := b.userFront(tag, mctx); m != nil && m.arrive <= thr {
			k++
		}
	}
	pick := mb.pert.Pick(k)
	// Pass 3: select the pick-th candidate in (arrive, src) order by
	// counting, for each candidate, how many others precede it. O(k^2)
	// in the candidate count, which is bounded by the source count.
	for _, b := range mb.active {
		m, q := b.userFront(tag, mctx)
		if m == nil || m.arrive > thr {
			continue
		}
		ord := 0
		for _, b2 := range mb.active {
			m2, _ := b2.userFront(tag, mctx)
			if m2 == nil || m2 == m || m2.arrive > thr {
				continue
			}
			if m2.arrive < m.arrive || (m2.arrive == m.arrive && m2.src < m.src) {
				ord++
			}
		}
		if ord == pick {
			return m, q
		}
	}
	panic("mpi: pickAnySourceLocked: pick out of range")
}

// matchInternalLocked finds (and, if remove is set, dequeues) the oldest
// internal message from src with the exact itag. The caller holds mb.mu.
func (mb *mailbox) matchInternalLocked(src int, itag int64, remove bool) *message {
	b := mb.peek(int32(src))
	if b == nil || b.intl == nil {
		return nil
	}
	q := b.intl[itag]
	if q == nil {
		return nil
	}
	m := q.front()
	if m == nil {
		return nil
	}
	if remove {
		q.popFront()
		mb.queued -= m.bytes
		// Internal messages are single-indexed, so n == 0 means truly
		// empty: retire the queue for reuse under the next fresh itag.
		if q.n == 0 {
			delete(b.intl, itag)
			mb.qfree = append(mb.qfree, q)
		}
	}
	return m
}

// drainQueue releases every live message still in q and zeroes the
// ring. front() discards dead entries (zeroing their slots) as it
// walks, so after it returns nil the ring holds no message pointers.
func drainQueue(q *msgq) {
	for m := q.front(); m != nil; m = q.front() {
		q.popFront()
		m.release()
	}
}

// reset drains and reinitializes a mailbox for reuse by the next run.
// Live messages (protocols like the Send-Recv matcher legally finish
// with stale traffic queued) go back to the message pool; the bucket
// maps and index rings are retained, since communicator ids and
// internal tags restart identically in a fresh world, so a pooled
// mailbox's steady state carries over. Only mailboxes from clean runs
// are reset — failed or poisoned runs discard the whole world state.
func (mb *mailbox) reset() {
	for _, b := range mb.used {
		for _, q := range b.user {
			drainQueue(q) // primary index: releases each live message
		}
		for _, q := range b.tags {
			drainQueue(q) // secondary index: all entries now dead
		}
		for itag, q := range b.intl {
			drainQueue(q)
			delete(b.intl, itag)
			mb.qfree = append(mb.qfree, q)
		}
		b.nUser = 0
		b.alive = -1
	}
	clear(mb.active)
	mb.active = mb.active[:0]
	mb.nUser = 0
	mb.owner = nil
	mb.parked = false
	mb.poisoned = false
	mb.pert = nil
	mb.queued = 0
	mb.hw = 0
}

// pendingUser returns the number of live user-level messages queued.
func (mb *mailbox) pendingUser() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.nUser
}

func (mb *mailbox) poison() {
	mb.mu.Lock()
	mb.poisoned = true
	wake := mb.parked
	mb.parked = false
	owner := mb.owner
	mb.mu.Unlock()
	if wake && owner != nil {
		owner.unpark()
	}
}

// queuedBytes snapshots the current eager-buffer occupancy. Unlike hw it
// is a live value, sampled by the round-telemetry layer at round
// boundaries while senders are still pushing.
func (mb *mailbox) queuedBytes() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.queued
}

// highWater snapshots the eager-buffer high-water mark. After poisoning
// the value is stable: push is a no-op on a poisoned mailbox, so a late
// sender racing a failed run cannot move it.
func (mb *mailbox) highWater() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.hw
}
