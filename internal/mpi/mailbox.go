package mpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// This file implements the runtime's receive-side message store. Every
// rank owns one mailbox; senders push under the mailbox lock and the
// owning rank matches, probes and dequeues.
//
// The store is organized the way real MPI implementations index their
// posted-receive and unexpected-message queues (cf. MPICH's queue-search
// optimizations): messages are bucketed by source, and each bucket keeps
// small FIFO indexes so the common lookups are O(1) instead of a linear
// scan over everything queued:
//
//   - per (source, communicator) FIFO of user-level messages, in virtual
//     arrival order — resolves (src, AnyTag) and feeds AnySource scans;
//   - per (source, communicator, tag) FIFO — resolves exact (src, tag);
//   - per (source, itag) FIFO for runtime-internal traffic (neighborhood
//     collective chunks, RMA control), which is matched exactly.
//
// A user-level message is indexed by both the arrival FIFO and its tag
// FIFO. Dequeuing through one index bumps the message's generation; the
// other index skips dead entries lazily when it next reaches them, so
// removal is O(1) amortized with no shift-deletes. Because message
// structs are pooled, a stale index entry can outlive its message's
// recycling — and the recycled struct may by then live in a different
// mailbox, under a different lock. Every entry therefore records the
// generation at push time and compares it with one atomic load: take and
// release each bump the counter, so equality proves the entry still
// refers to the live, untaken incarnation owned by this mailbox.
//
// Within one (source, communicator) the sender's virtual clock is
// monotone, so FIFO order is arrival order and the front of a queue is
// its earliest message. This makes per-source FIFO delivery (MPI's
// non-overtaking guarantee) structural rather than incidental. AnySource
// wildcards take the minimum virtual-arrival front across the buckets
// that currently hold user traffic — O(#sources-with-pending), not
// O(#messages) — which preserves the earliest-virtual-arrival selection
// the timing model depends on (see the comment on matchUserLocked).
//
// The per-bucket indexes are small slices of inline rings, not maps: a
// rank hears from a handful of sources on a handful of (comm, tag)
// keys, so a linear scan over an index of a few entries beats three Go
// maps' hashing and — more important at scale — their per-bucket heap
// footprint. Keys are never removed (rings are retained and reused), so
// a bucket whose tag-key cardinality ever exceeds bucketScanLimit
// installs a position map once and keeps O(1) lookups; below the limit
// the map never exists. Internal (itag) keys ARE retired — itags embed
// per-topology sequence numbers, so every collective round arrives
// under a fresh key — by marking the slot free (itag 0) and reusing it
// in place, which keeps the steady state allocation-free without the
// old shared free-list of queue pointers.
//
// Buckets are stored as a dense pointer table (indexed by source, slots
// nil until first traffic) for worlds of up to denseSrcLimit ranks and
// in a lazily populated map above that: a graph-topology rank hears
// from its process-graph neighbors, not from all P peers, so eager
// per-source bucket structs would cost O(P) per mailbox = O(P^2) per
// world. Either way buckets are allocated in chunks on first traffic,
// and buckets holding live user traffic are linked into an active list,
// so wildcard scans never touch the table. Chunk storage is
// pointer-stable: index entries and the active list hold *srcBucket
// safely across appends.
//
// Messages themselves are pooled: see message.release. Payloads of up to
// inlineWords words (covering the 3-word protocol records that dominate
// matching traffic) live inline in the struct; larger payloads use a
// spill buffer that is recycled with the struct.

// inlineWords is the payload capacity stored directly inside a pooled
// message struct. Four words cover the {ctx, x, y} protocol records and
// the one-word control messages that dominate the runtime's traffic.
const inlineWords = 4

// denseSrcLimit is the world size up to which a mailbox keeps its
// source-bucket pointers in a dense table. Above it buckets are found
// through a map, bounding mailbox memory by the rank's in-degree
// instead of the world size.
const denseSrcLimit = 1024

// bucketScanLimit is the per-bucket tag-key cardinality above which a
// bucket installs a position map over its tag index. Matching protocols
// use a handful of tags, so the map is for pathological workloads only.
const bucketScanLimit = 16

// bucketChunk is how many srcBucket structs are allocated at once when
// a mailbox needs a new bucket. Graph topologies have small in-degrees
// (2 for a ring, a few dozen for meshes and halos), so the chunk is kept
// tiny: a stranded unused struct costs as much as the allocation it
// saves.
const bucketChunk = 2

// qRetainEnts caps the ring capacity a retired or reset queue keeps for
// reuse. Rings grow by doubling during backlog spikes (a 1K-message
// burst grows one ring to 16 KiB); without the cap a pooled world pins
// every spike's high-water ring forever.
const qRetainEnts = 64

// spillRetainWords caps the spill-buffer capacity a pooled message
// keeps, for the same reason: one huge payload must not pin an 8 KiB+
// buffer in the process-wide pool for the rest of its life.
const spillRetainWords = 1024

// message is an in-flight payload. itag != 0 marks runtime-internal
// traffic (neighborhood collectives, RMA control) which is invisible to
// user-level Recv/Probe.
type message struct {
	src  int // sender's rank within the sending communicator
	tag  int
	itag int64
	mctx int32 // communicator id (user-level traffic only)
	// gen is bumped on take and on release. Index entries snapshot it at
	// push time; a mismatch means the entry is dead (taken through the
	// other index, or recycled entirely). Atomic because a stale entry
	// may be examined under one mailbox's lock while the recycled
	// struct's current owner bumps it under another's.
	gen    atomic.Uint64
	data   []int64
	bytes  int64
	arrive float64 // virtual arrival time at the receiver
	// sent is the sender's virtual clock at injection (arrive minus the
	// in-flight latency). Classified waits record it as the cause
	// timestamp, linking the receiver's blocked interval back to the
	// point on the sender's timeline that bounds it.
	sent   float64
	inline [inlineWords]int64
	spill  []int64 // reusable storage for payloads > inlineWords
}

// msgPool recycles message structs (with their spill buffers) across the
// whole process. Senders allocate from it in newMessage; receivers return
// structs via release once the payload has been copied out.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// newMessage obtains a pooled message and copies data into it. The caller
// may reuse data immediately (MPI eager-buffering semantics).
func newMessage(src, tag int, itag int64, mctx int32, data []int64) *message {
	m := msgPool.Get().(*message)
	m.src, m.tag, m.itag, m.mctx = src, tag, itag, mctx
	n := len(data)
	if n <= inlineWords {
		m.data = m.inline[:n:inlineWords]
	} else {
		if cap(m.spill) < n {
			m.spill = make([]int64, n)
		}
		m.data = m.spill[:n]
	}
	copy(m.data, data)
	m.bytes = int64(8 * n)
	return m
}

// release returns a message to the pool. The caller must have copied out
// everything it needs: after release, m.data may be overwritten by an
// unrelated send at any time. Bumping gen invalidates any index entry
// still pointing at the struct (lazy deletion leaves those behind).
func (m *message) release() {
	m.gen.Add(1)
	m.data = nil
	if cap(m.spill) > spillRetainWords {
		m.spill = nil
	}
	msgPool.Put(m)
}

// qent is one ring slot: the message plus its generation at push time. A
// mismatch against the struct's current generation means the message was
// dequeued through the other index (or already recycled) — the slot is
// dead even though the reused struct may look live again.
type qent struct {
	m   *message
	gen uint64
}

// msgq is a FIFO ring of messages. Capacity grows by doubling and is
// retained for reuse (capped at qRetainEnts on retirement/reset), so
// steady-state operation does not allocate. front and pop skip entries
// already taken through another index.
type msgq struct {
	buf  []qent
	head int // index of the front element (valid when n > 0)
	n    int // live slots, including taken entries not yet skipped
}

func (q *msgq) push(m *message) {
	if q.n == len(q.buf) {
		grown := make([]qent, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = qent{m, m.gen.Load()}
	q.n++
}

// front returns the earliest live message, discarding taken and recycled
// entries.
func (q *msgq) front() *message {
	for q.n > 0 {
		e := q.buf[q.head]
		if e.m.gen.Load() == e.gen {
			return e.m
		}
		q.buf[q.head] = qent{}
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.n--
	}
	return nil
}

// popFront removes the message returned by front. Callers must have just
// called front (so the head entry is live).
func (q *msgq) popFront() {
	q.buf[q.head] = qent{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
}

// trim drops an oversized ring so a pooled world sheds backlog spikes.
// Only legal when the ring is logically empty (front/pop zero slots as
// they retire entries, so an n==0 ring holds no message pointers).
func (q *msgq) trim() {
	if q.n == 0 && cap(q.buf) > qRetainEnts {
		q.buf, q.head = nil, 0
	}
}

// tagKey identifies a user-level (communicator, tag) FIFO within a
// bucket; used only by the overflow position map.
type tagKey struct {
	mctx int32
	tag  int
}

// userq is one per-communicator arrival FIFO: every user-level message
// from this bucket's source in communicator mctx, in arrival order.
type userq struct {
	mctx int32
	q    msgq
}

// tagq is one (communicator, tag) FIFO.
type tagq struct {
	mctx int32
	tag  int
	q    msgq
}

// intq is one internal (itag) FIFO; itag 0 marks a retired slot whose
// ring is ready for reuse under the next fresh key.
type intq struct {
	itag int64
	q    msgq
}

// srcBucket holds everything queued from one source rank. For a fixed
// communicator a source rank maps to exactly one sending goroutine, so
// each FIFO below has a single producer with a monotone clock. Index
// entries hold their rings by value; pointers into the slices are only
// ever used within one locked mailbox call, never across appends.
type srcBucket struct {
	user   []userq // per-communicator arrival FIFOs
	tags   []tagq  // per (communicator, tag) FIFOs; keys never removed
	intl   []intq  // per live-itag FIFOs; slots retire in place
	tagIdx map[tagKey]int
	src    int32 // source rank this bucket indexes
	nUser  int32 // live user-level messages in this bucket
	alive  int32 // position in mailbox.active, or -1
}

// userqFor returns the arrival FIFO for mctx, creating it if needed.
func (b *srcBucket) userqFor(mctx int32) *msgq {
	for i := range b.user {
		if b.user[i].mctx == mctx {
			return &b.user[i].q
		}
	}
	b.user = append(b.user, userq{mctx: mctx})
	return &b.user[len(b.user)-1].q
}

// userPeek returns the arrival FIFO for mctx, or nil.
func (b *srcBucket) userPeek(mctx int32) *msgq {
	for i := range b.user {
		if b.user[i].mctx == mctx {
			return &b.user[i].q
		}
	}
	return nil
}

// tagqFor returns the (mctx, tag) FIFO, creating it if needed. When the
// key cardinality outgrows a linear scan the bucket installs a position
// map once; entries are never removed, so positions stay valid.
func (b *srcBucket) tagqFor(mctx int32, tag int) *msgq {
	if b.tagIdx != nil {
		if i, ok := b.tagIdx[tagKey{mctx, tag}]; ok {
			return &b.tags[i].q
		}
	} else {
		for i := range b.tags {
			if b.tags[i].tag == tag && b.tags[i].mctx == mctx {
				return &b.tags[i].q
			}
		}
	}
	b.tags = append(b.tags, tagq{mctx: mctx, tag: tag})
	i := len(b.tags) - 1
	if b.tagIdx != nil {
		b.tagIdx[tagKey{mctx, tag}] = i
	} else if len(b.tags) > bucketScanLimit {
		b.tagIdx = make(map[tagKey]int, 2*len(b.tags))
		for j := range b.tags {
			b.tagIdx[tagKey{b.tags[j].mctx, b.tags[j].tag}] = j
		}
	}
	return &b.tags[i].q
}

// tagPeek returns the (mctx, tag) FIFO, or nil.
func (b *srcBucket) tagPeek(mctx int32, tag int) *msgq {
	if b.tagIdx != nil {
		if i, ok := b.tagIdx[tagKey{mctx, tag}]; ok {
			return &b.tags[i].q
		}
		return nil
	}
	for i := range b.tags {
		if b.tags[i].tag == tag && b.tags[i].mctx == mctx {
			return &b.tags[i].q
		}
	}
	return nil
}

// intlqFor returns the FIFO for itag, reusing a retired slot (ring
// included) before growing the index.
func (b *srcBucket) intlqFor(itag int64) *msgq {
	free := -1
	for i := range b.intl {
		if b.intl[i].itag == itag {
			return &b.intl[i].q
		}
		if b.intl[i].itag == 0 && free < 0 {
			free = i
		}
	}
	if free >= 0 {
		b.intl[free].itag = itag
		return &b.intl[free].q
	}
	b.intl = append(b.intl, intq{itag: itag})
	return &b.intl[len(b.intl)-1].q
}

// mailbox is one rank's receive queue. Senders push under mu; the single
// owning rank matches and dequeues. The owner parks its task (not a
// condvar) when nothing matches; push unparks it, so a sender's wakeup
// is one CAS plus, in pooled mode, a shard-local enqueue.
type mailbox struct {
	mu       sync.Mutex
	owner    *task
	dense    []*srcBucket         // index by src; non-nil for small worlds, slots lazily filled
	sparse   map[int32]*srcBucket // lazily populated for large worlds
	used     []*srcBucket         // buckets created since the mailbox was built
	active   []*srcBucket         // buckets with nUser > 0, unordered
	bfree    []*srcBucket         // preallocated buckets (chunk remainder)
	nUser    int                  // live user-level messages across all buckets
	parked   bool                 // the owner's task is parked on this mailbox
	queued   int64                // bytes currently queued (eager-buffer occupancy)
	hw       int64                // high-water of queued
	poisoned bool
	// pert, when non-nil, permutes wildcard selection among concurrently
	// available bucket fronts (sched Ties class). It is the owning
	// rank's stream: matchUserLocked runs only on the owner's goroutine,
	// so no additional synchronization is needed beyond mu.
	pert *sched.Rank
}

// newMailbox returns a mailbox accepting traffic from up to n sources
// (communicator ranks are always < the world size n).
func newMailbox(n int) *mailbox {
	mb := &mailbox{}
	mb.init(n, nil)
	return mb
}

// init prepares a zero mailbox for a world of n ranks. denseTab, when
// non-nil, is a caller-provided len-n pointer table (worldState carves
// all n tables out of one n*n backing array so a dense world costs one
// allocation instead of n). Large worlds start with no index at all:
// buckets are found by scanning the used list while the in-degree stays
// below bucketScanLimit, and the sparse map is built only on spill — so
// the common graph-topology mailbox (a handful of neighbor sources)
// never pays for a map.
func (mb *mailbox) init(n int, denseTab []*srcBucket) {
	if n <= denseSrcLimit {
		if denseTab == nil {
			denseTab = make([]*srcBucket, n)
		}
		mb.dense = denseTab
	}
}

// compatible reports whether a pooled mailbox can serve a world of n
// ranks: sparse mailboxes fit any n; dense ones need a big enough table.
func (mb *mailbox) compatible(n int) bool {
	return mb.dense == nil || len(mb.dense) >= n
}

// newBucket hands out a bucket from the chunk free-list, refilling it
// with a bucketChunk-sized allocation when empty. Chunk storage is never
// reallocated, so the returned pointer is stable for the mailbox's life.
func (mb *mailbox) newBucket(src int32) *srcBucket {
	if len(mb.bfree) == 0 {
		chunk := make([]srcBucket, bucketChunk)
		for i := range chunk {
			mb.bfree = append(mb.bfree, &chunk[i])
		}
	}
	n := len(mb.bfree) - 1
	b := mb.bfree[n]
	mb.bfree[n] = nil
	mb.bfree = mb.bfree[:n]
	b.src, b.alive = src, -1
	mb.used = append(mb.used, b)
	return b
}

// bucket returns (creating if needed) the bucket for source src. Caller
// holds mb.mu.
func (mb *mailbox) bucket(src int32) *srcBucket {
	if b := mb.peek(src); b != nil {
		return b
	}
	b := mb.newBucket(src)
	if mb.dense != nil {
		mb.dense[src] = b
	} else if mb.sparse != nil {
		mb.sparse[src] = b
	} else if len(mb.used) > bucketScanLimit {
		// In-degree outgrew the linear scan: install the map once.
		mb.sparse = make(map[int32]*srcBucket, 2*len(mb.used))
		for _, ub := range mb.used {
			mb.sparse[ub.src] = ub
		}
	}
	return b
}

// peek returns the bucket for src without creating one, or nil.
func (mb *mailbox) peek(src int32) *srcBucket {
	if mb.dense != nil {
		return mb.dense[src]
	}
	if mb.sparse != nil {
		return mb.sparse[src]
	}
	for _, b := range mb.used {
		if b.src == src {
			return b
		}
	}
	return nil
}

// push enqueues m, indexing it by source and tag, and unparks the owner
// if it is parked. On a poisoned mailbox push is a no-op (the run is
// already failing and the owner may have unwound), so queued/hw stay
// frozen at their poison-time snapshot for the memory reports.
func (mb *mailbox) push(m *message) {
	mb.mu.Lock()
	if mb.poisoned {
		mb.mu.Unlock()
		m.release()
		return
	}
	b := mb.bucket(int32(m.src))
	if m.itag != 0 {
		b.intlqFor(m.itag).push(m)
	} else {
		b.userqFor(m.mctx).push(m)
		b.tagqFor(m.mctx, m.tag).push(m)
		b.nUser++
		mb.nUser++
		if b.alive < 0 {
			b.alive = int32(len(mb.active))
			mb.active = append(mb.active, b)
		}
	}
	mb.queued += m.bytes
	if mb.queued > mb.hw {
		mb.hw = mb.queued
	}
	wake := mb.parked
	mb.parked = false
	owner := mb.owner
	mb.mu.Unlock()
	if wake {
		owner.unpark()
	}
}

// parkLocked parks the owning task on the mailbox until the next push.
// The caller holds mb.mu with nothing matched; on return the lock is
// held again and the caller re-checks its predicate (wakeups may be
// spurious).
func (mb *mailbox) parkLocked(t *task) {
	mb.parked = true
	mb.mu.Unlock()
	t.park()
	mb.mu.Lock()
}

// take finalizes the dequeue of a user-level message found by
// matchUserLocked: the generation bump kills the entry in the index it
// was not popped from, and the byte/liveness accounting is updated.
func (mb *mailbox) take(m *message) {
	m.gen.Add(1)
	mb.queued -= m.bytes
	b := mb.peek(int32(m.src))
	b.nUser--
	mb.nUser--
	if b.nUser == 0 && b.alive >= 0 {
		last := len(mb.active) - 1
		moved := mb.active[last]
		mb.active[b.alive] = moved
		moved.alive = b.alive
		mb.active[last] = nil
		mb.active = mb.active[:last]
		b.alive = -1
	}
}

// userFront returns the earliest live user-level message from bucket b
// matching (tag, mctx), consulting the tag index for exact tags and the
// arrival FIFO for AnyTag. Returns the queue it came from so the caller
// can pop it.
func (b *srcBucket) userFront(tag int, mctx int32) (*message, *msgq) {
	var q *msgq
	if tag == AnyTag {
		q = b.userPeek(mctx)
	} else {
		q = b.tagPeek(mctx, tag)
	}
	if q == nil {
		return nil, nil
	}
	return q.front(), q
}

// matchUserLocked finds the queued user-level message matching (src, tag)
// in communicator mctx with the earliest virtual arrival time and, if
// remove is set, dequeues it. Returns nil when nothing matches. now is
// the receiver's current virtual clock, consulted only when schedule
// perturbation is active. The caller holds mb.mu.
//
// Selecting by virtual arrival rather than physical enqueue position
// matters for timing fidelity: goroutine scheduling (especially on few
// cores) can enqueue a late-stamped message ahead of an early-stamped
// one, and processing the late one first would ratchet the receiver's
// clock and contaminate every subsequent reply with artificial delay.
// Per-source stamps are monotone, so each bucket FIFO is already in
// arrival order and an AnySource wildcard only has to compare bucket
// fronts; ties across sources break toward the lower source rank, and
// messages from one source retain FIFO order, preserving MPI's
// non-overtaking guarantee.
//
// Under perturbation (mb.pert with Ties), wildcard selection instead
// draws uniformly among every front that is concurrently available —
// arrival no later than max(now, earliest front arrival) — which is
// exactly the set a real MPI implementation could legally hand back
// first. Selection still only ever takes bucket fronts, so per-source
// FIFO holds, and a front is by construction also the front of its
// (comm, tag) index, so a probed wildcard status stays consistent with
// the follow-up exact-source receive.
func (mb *mailbox) matchUserLocked(src, tag int, mctx int32, remove bool, now float64) *message {
	var (
		best  *message
		bestq *msgq
	)
	if src != AnySource {
		b := mb.peek(int32(src))
		if b == nil || b.user == nil {
			return nil
		}
		best, bestq = b.userFront(tag, mctx)
	} else if mb.pert != nil && mb.pert.Ties() {
		best, bestq = mb.pickAnySourceLocked(tag, mctx, now)
	} else {
		for _, b := range mb.active {
			m, q := b.userFront(tag, mctx)
			if m == nil {
				continue
			}
			if best == nil || m.arrive < best.arrive ||
				(m.arrive == best.arrive && m.src < best.src) {
				best, bestq = m, q
			}
		}
	}
	if best == nil {
		return nil
	}
	if remove {
		bestq.popFront()
		mb.take(best)
	}
	return best
}

// pickAnySourceLocked implements perturbed wildcard selection: among
// the bucket fronts matching (tag, mctx), every front with virtual
// arrival <= max(now, earliest arrival) is concurrently available, and
// one is drawn uniformly from the owner rank's perturbation stream.
// The draw maps to candidates ordered by (arrive, src) — not by the
// physical order of mb.active, which depends on goroutine scheduling —
// so a seed replays the same choices given the same candidate sets.
func (mb *mailbox) pickAnySourceLocked(tag int, mctx int32, now float64) (*message, *msgq) {
	// Pass 1: earliest front arrival; the availability threshold can
	// never exclude it.
	first := false
	minArrive := 0.0
	for _, b := range mb.active {
		m, _ := b.userFront(tag, mctx)
		if m == nil {
			continue
		}
		if !first || m.arrive < minArrive {
			first, minArrive = true, m.arrive
		}
	}
	if !first {
		return nil, nil
	}
	thr := minArrive
	if now > thr {
		thr = now
	}
	// Pass 2: count the available candidates and draw one.
	k := 0
	for _, b := range mb.active {
		if m, _ := b.userFront(tag, mctx); m != nil && m.arrive <= thr {
			k++
		}
	}
	pick := mb.pert.Pick(k)
	// Pass 3: select the pick-th candidate in (arrive, src) order by
	// counting, for each candidate, how many others precede it. O(k^2)
	// in the candidate count, which is bounded by the source count.
	for _, b := range mb.active {
		m, q := b.userFront(tag, mctx)
		if m == nil || m.arrive > thr {
			continue
		}
		ord := 0
		for _, b2 := range mb.active {
			m2, _ := b2.userFront(tag, mctx)
			if m2 == nil || m2 == m || m2.arrive > thr {
				continue
			}
			if m2.arrive < m.arrive || (m2.arrive == m.arrive && m2.src < m.src) {
				ord++
			}
		}
		if ord == pick {
			return m, q
		}
	}
	panic("mpi: pickAnySourceLocked: pick out of range")
}

// matchInternalLocked finds (and, if remove is set, dequeues) the oldest
// internal message from src with the exact itag. The caller holds mb.mu.
func (mb *mailbox) matchInternalLocked(src int, itag int64, remove bool) *message {
	b := mb.peek(int32(src))
	if b == nil {
		return nil
	}
	var e *intq
	for i := range b.intl {
		if b.intl[i].itag == itag {
			e = &b.intl[i]
			break
		}
	}
	if e == nil {
		return nil
	}
	m := e.q.front()
	if m == nil {
		return nil
	}
	if remove {
		e.q.popFront()
		mb.queued -= m.bytes
		// Internal messages are single-indexed, so n == 0 means truly
		// empty: retire the slot in place for reuse under the next fresh
		// itag, shedding any backlog-spike ring on the way.
		if e.q.n == 0 {
			e.itag = 0
			e.q.trim()
		}
	}
	return m
}

// drainQueue releases every live message still in q and zeroes the
// ring. front() discards dead entries (zeroing their slots) as it
// walks, so after it returns nil the ring holds no message pointers.
func drainQueue(q *msgq) {
	for m := q.front(); m != nil; m = q.front() {
		q.popFront()
		m.release()
	}
}

// reset drains and reinitializes a mailbox for reuse by the next run.
// Live messages (protocols like the Send-Recv matcher legally finish
// with stale traffic queued) go back to the message pool; the bucket
// index entries and their rings are retained (trimmed of spike-sized
// capacity), since communicator ids and internal tags restart
// identically in a fresh world, so a pooled mailbox's steady state
// carries over. Only mailboxes from clean runs are reset — failed or
// poisoned runs discard the whole world state.
func (mb *mailbox) reset() {
	for _, b := range mb.used {
		for i := range b.user {
			drainQueue(&b.user[i].q) // primary index: releases each live message
			b.user[i].q.trim()
		}
		for i := range b.tags {
			drainQueue(&b.tags[i].q) // secondary index: all entries now dead
			b.tags[i].q.trim()
		}
		for i := range b.intl {
			drainQueue(&b.intl[i].q)
			b.intl[i].itag = 0
			b.intl[i].q.trim()
		}
		b.nUser = 0
		b.alive = -1
	}
	clear(mb.active)
	mb.active = mb.active[:0]
	mb.nUser = 0
	mb.owner = nil
	mb.parked = false
	mb.poisoned = false
	mb.pert = nil
	mb.queued = 0
	mb.hw = 0
}

// pendingUser returns the number of live user-level messages queued.
func (mb *mailbox) pendingUser() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.nUser
}

func (mb *mailbox) poison() {
	mb.mu.Lock()
	mb.poisoned = true
	wake := mb.parked
	mb.parked = false
	owner := mb.owner
	mb.mu.Unlock()
	if wake && owner != nil {
		owner.unpark()
	}
}

// queuedBytes snapshots the current eager-buffer occupancy. Unlike hw it
// is a live value, sampled by the round-telemetry layer at round
// boundaries while senders are still pushing.
func (mb *mailbox) queuedBytes() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.queued
}

// highWater snapshots the eager-buffer high-water mark. After poisoning
// the value is stable: push is a no-op on a poisoned mailbox, so a late
// sender racing a failed run cannot move it.
func (mb *mailbox) highWater() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.hw
}
