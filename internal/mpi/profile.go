package mpi

// Phase profiling: the §V-D MPI-time analysis of the paper (Table VIII)
// splits each rank's execution into protocol compute, buffer
// pack/unpack, active communication and blocked waiting. The runtime
// already books these categories in RankStats; PhaseProfile folds them
// into one comparable breakdown per rank or per run.

// PhaseProfile is a virtual-time breakdown of one rank (or, summed, a
// whole run), in seconds.
type PhaseProfile struct {
	// Compute is protocol computation charged via Comm.Compute.
	Compute float64
	// Pack and Unpack are aggregation-buffer fill/parse CPU time
	// (Comm.Pack / Comm.Unpack); zero for non-aggregating transports.
	Pack   float64
	Unpack float64
	// Exchange is active communication-call time: overheads, probes and
	// injection costs, excluding blocked time.
	Exchange float64
	// Wait is time blocked for remote progress (message arrivals,
	// collective synchronization, flush completion of peers).
	Wait float64
}

func profileOf(rs *RankStats) PhaseProfile {
	return PhaseProfile{
		Compute:  rs.CompTime,
		Pack:     rs.PackTime,
		Unpack:   rs.UnpackTime,
		Exchange: rs.CommTime - rs.WaitTime,
		Wait:     rs.WaitTime,
	}
}

// Total returns the accounted virtual time across all phases.
func (p PhaseProfile) Total() float64 {
	return p.Compute + p.Pack + p.Unpack + p.Exchange + p.Wait
}

// MPITime returns time inside the runtime: everything but Compute
// (pack/unpack happen in MPI datatype/buffer machinery on a real
// system, which is how TAU attributes them).
func (p PhaseProfile) MPITime() float64 {
	return p.Pack + p.Unpack + p.Exchange + p.Wait
}

// MPIFrac returns MPITime as a fraction of Total (0 when empty) — the
// paper's Table VIII "MPI %" column.
func (p PhaseProfile) MPIFrac() float64 {
	t := p.Total()
	if t <= 0 {
		return 0
	}
	return p.MPITime() / t
}

// WaitFrac returns Wait as a fraction of Total (0 when empty).
func (p PhaseProfile) WaitFrac() float64 {
	t := p.Total()
	if t <= 0 {
		return 0
	}
	return p.Wait / t
}

// Add returns the element-wise sum of two profiles.
func (p PhaseProfile) Add(q PhaseProfile) PhaseProfile {
	return PhaseProfile{
		Compute:  p.Compute + q.Compute,
		Pack:     p.Pack + q.Pack,
		Unpack:   p.Unpack + q.Unpack,
		Exchange: p.Exchange + q.Exchange,
		Wait:     p.Wait + q.Wait,
	}
}

// RankProfile returns the phase breakdown of one rank.
func (r *Report) RankProfile(rank int) PhaseProfile {
	return profileOf(r.Stats[rank])
}

// Profile returns the phase breakdown summed over all ranks.
func (r *Report) Profile() PhaseProfile {
	var p PhaseProfile
	for _, rs := range r.Stats {
		p = p.Add(profileOf(rs))
	}
	return p
}
