package mpi

import "time"

// Option configures a run. Options are applied in order to a zero
// Config whose Procs is set by Run, so later options win. The
// functional-options form is the primary run API; RunConfig remains for
// code that already holds a Config value.
type Option func(*Config)

// WithCost selects the virtual-time cost model (nil keeps the default).
func WithCost(m *CostModel) Option {
	return func(cfg *Config) { cfg.Cost = m }
}

// WithMatrices enables per-pair message/byte matrices (O(P^2) memory).
func WithMatrices() Option {
	return func(cfg *Config) { cfg.TrackMatrices = true }
}

// WithDeadline arms the wall-clock deadlock watchdog (see
// Config.Deadline). Zero disables it.
func WithDeadline(d time.Duration) Option {
	return func(cfg *Config) { cfg.Deadline = d }
}

// WithWaitTrace records blocked intervals for Report.WaitSpans and
// Report.RenderTimeline.
func WithWaitTrace() Option {
	return func(cfg *Config) { cfg.TraceWaits = true }
}

// WithEventTrace enables structured event tracing with a per-rank ring
// of the given capacity (see Config.TraceEvents); capacity <= 0 leaves
// tracing off.
func WithEventTrace(capacity int) Option {
	return func(cfg *Config) { cfg.TraceEvents = capacity }
}
