package mpi

import (
	"time"

	"repro/internal/sched"
)

// Option configures a run. Options are applied in order to a zero
// Config whose Procs is set by Run, so later options win. The
// functional-options form is the run API: Run(procs, body, opts...).
type Option func(*Config)

// WithCost selects the virtual-time cost model (nil keeps the default).
func WithCost(m *CostModel) Option {
	return func(cfg *Config) { cfg.Cost = m }
}

// WithMatrices enables per-pair message/byte matrices (O(P^2) memory).
func WithMatrices() Option {
	return func(cfg *Config) { cfg.TrackMatrices = true }
}

// WithDeadline arms the wall-clock deadlock watchdog (see
// Config.Deadline). Zero disables it.
func WithDeadline(d time.Duration) Option {
	return func(cfg *Config) { cfg.Deadline = d }
}

// WithWaitTrace records blocked intervals for Report.WaitSpans and
// Report.RenderTimeline.
func WithWaitTrace() Option {
	return func(cfg *Config) { cfg.TraceWaits = true }
}

// WithEventTrace enables structured event tracing with a per-rank ring
// of the given capacity (see Config.TraceEvents); capacity <= 0 leaves
// tracing off.
func WithEventTrace(capacity int) Option {
	return func(cfg *Config) { cfg.TraceEvents = capacity }
}

// WithPerturb runs under seeded schedule perturbation: the runtime
// varies its legal reordering points (wildcard selection among
// concurrently available messages, per-message latency and per-rank
// slowdown before arrival stamping, forced nonblocking-probe misses)
// according to the profile, drawing every decision from per-rank PRNG
// streams derived from seed. Per-(source, communicator) FIFO delivery —
// the only order MPI actually guarantees — is preserved. A disabled
// profile leaves the runtime on its deterministic
// earliest-virtual-arrival schedule with no overhead beyond a nil
// check. See package sched and DESIGN §4.
func WithPerturb(seed uint64, p sched.Profile) Option {
	return func(cfg *Config) { cfg.PerturbSeed, cfg.Perturb = seed, p }
}

// WithScheduler selects the rank scheduling mode (see SchedMode). The
// default SchedAuto picks the sharded worker pool for large worlds and
// direct goroutine scheduling for small ones; results are bit-identical
// either way, so the choice is purely a wall-clock/memory trade.
func WithScheduler(m SchedMode) Option {
	return func(cfg *Config) { cfg.Sched = m }
}
