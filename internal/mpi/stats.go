package mpi

// RankStats is one rank's traffic and resource ledger. During a run it is
// written only by the owning rank goroutine (message-queue high-water marks
// are tracked inside the receiver's mailbox under its lock and folded in
// when read), so no additional synchronization is needed. After Run
// returns, all ledgers are safe to read from any goroutine.
type RankStats struct {
	Rank int

	// Point-to-point.
	SendCount  int64 // Isend/Send/Ssend operations issued
	SendBytes  int64
	RecvCount  int64 // Recv operations completed
	RecvBytes  int64
	ProbeCount int64 // Iprobe/Probe polls
	ProbeHits  int64 // polls that found a message
	SyncSends  int64 // synchronous-mode sends (MBP model)
	// Collectives.
	CollCount    int64 // global collective operations
	CollBytes    int64
	NbrCollCount int64 // neighborhood collective operations
	NbrCollBytes int64 // bytes sent into neighborhood collectives
	// RMA.
	PutCount    int64
	PutBytes    int64
	GetCount    int64
	GetBytes    int64
	FlushCount  int64
	AtomicCount int64

	// Virtual-time breakdown (seconds).
	CommTime float64 // time in communication calls, including waits
	CompTime float64 // time charged via Compute
	// WaitTime is the portion of CommTime spent blocked for remote
	// progress (clock jumps in waitUntil); CommTime - WaitTime is active
	// call overhead. PackTime/UnpackTime are the CPU costs of filling
	// and parsing aggregation buffers (Comm.Pack / Comm.Unpack), booked
	// outside CommTime. Together these drive Report.Profile, the
	// Table VIII style compute/pack/exchange/unpack/wait breakdown.
	WaitTime   float64
	PackTime   float64
	UnpackTime float64

	// Memory accounting (bytes).
	AllocCurrent   int64 // live application comm-buffer bytes
	AllocHighWater int64 // high-water of AllocCurrent
	// QueueHighWater is the high-water mark of bytes queued in this rank's
	// mailbox (unreceived eager messages) — the analogue of MPI internal
	// eager-buffer memory. It is folded in from the mailbox by Finalize.
	QueueHighWater int64
	// UnreceivedMsgs is the number of user-level messages still queued in
	// this rank's mailbox when the run ended (folded in like
	// QueueHighWater). Nonzero values are legal for protocols whose
	// termination tolerates stale in-flight messages (the Send-Recv
	// matching driver); CheckDrained asserts zero for workloads that
	// receive everything they send.
	UnreceivedMsgs int64
	// PeerBufBytes models the per-connection eager/rendezvous pools an
	// MPI implementation allocates for every peer a rank exchanges
	// point-to-point traffic with (the reason the paper's Send-Recv
	// variant is the memory hog at scale, Table VIII). Counted once per
	// distinct destination at EagerBufPerPeer bytes. Peers are tracked
	// densely for small worlds and in a lazily allocated set above
	// denseSrcLimit ranks, for the same reason mailboxes bucket sparsely
	// there: a rank talks to its process-graph neighbors, and a dense
	// []bool per rank would cost O(P^2) across the world.
	PeerBufBytes int64
	peerSeen     []bool
	peerSet      map[int]struct{}
	worldSize    int32

	// RecvWaitTime totals the virtual time this rank spent blocked
	// waiting for messages to arrive; MaxRecvWait is the largest single
	// wait and MaxRecvWaitSrc its sender (useful for diagnosing
	// dependency chains and load imbalance).
	RecvWaitTime   float64
	MaxRecvWait    float64
	MaxRecvWaitSrc int

	// Optional per-destination matrices (row view), length = world size.
	// MsgRow[d] counts messages this rank sent to d by any mechanism
	// (point-to-point, put, neighborhood chunk); ByteRow[d] the bytes.
	MsgRow  []int64
	ByteRow []int64
}

// EagerBufPerPeer is the modeled per-peer buffer pool for point-to-point
// connections (64 KiB, the order of MPICH/Cray eager-path pools).
const EagerBufPerPeer = 64 << 10

// init prepares a zeroed ledger for a world of n ranks. Ledgers are laid
// out in one per-run backing array (they outlive the run inside the
// Report, so they are never pooled); peer tracking state is allocated on
// first use so a rank that never sends costs nothing beyond the struct.
func (rs *RankStats) init(rank, n int, matrices bool) {
	rs.Rank = rank
	rs.worldSize = int32(n)
	if matrices {
		rs.MsgRow = make([]int64, n)
		rs.ByteRow = make([]int64, n)
	}
}

func newRankStats(rank, n int, matrices bool) *RankStats {
	rs := new(RankStats)
	rs.init(rank, n, matrices)
	return rs
}

// notePeer charges the per-peer connection pool the first time dst is
// targeted. The dense bitmap (small worlds) and the sparse set (large
// worlds) are both allocated on the rank's first send.
func (rs *RankStats) notePeer(dst int) {
	if rs.peerSeen != nil {
		if !rs.peerSeen[dst] {
			rs.peerSeen[dst] = true
			rs.PeerBufBytes += EagerBufPerPeer
		}
		return
	}
	if int(rs.worldSize) <= denseSrcLimit {
		rs.peerSeen = make([]bool, rs.worldSize)
		rs.peerSeen[dst] = true
		rs.PeerBufBytes += EagerBufPerPeer
		return
	}
	if _, ok := rs.peerSet[dst]; !ok {
		if rs.peerSet == nil {
			rs.peerSet = make(map[int]struct{})
		}
		rs.peerSet[dst] = struct{}{}
		rs.PeerBufBytes += EagerBufPerPeer
	}
}

func (rs *RankStats) accountAlloc(bytes int64) {
	rs.AllocCurrent += bytes
	if rs.AllocCurrent > rs.AllocHighWater {
		rs.AllocHighWater = rs.AllocCurrent
	}
}

func (rs *RankStats) noteSend(dst int, bytes int64) {
	rs.SendCount++
	rs.SendBytes += bytes
	rs.notePeer(dst)
	if rs.MsgRow != nil {
		rs.MsgRow[dst]++
		rs.ByteRow[dst] += bytes
	}
}

func (rs *RankStats) notePut(dst int, bytes int64) {
	rs.PutCount++
	rs.PutBytes += bytes
	if rs.MsgRow != nil {
		rs.MsgRow[dst]++
		rs.ByteRow[dst] += bytes
	}
}

func (rs *RankStats) noteNbrChunk(dst int, bytes int64) {
	rs.NbrCollBytes += bytes
	if rs.MsgRow != nil {
		rs.MsgRow[dst]++
		rs.ByteRow[dst] += bytes
	}
}

// MemoryBytes returns the modeled per-rank memory footprint of
// communication state: application buffers, runtime queue high-water,
// and per-peer connection pools.
func (rs *RankStats) MemoryBytes() int64 {
	return rs.AllocHighWater + rs.QueueHighWater + rs.PeerBufBytes
}

// Totals aggregates a set of per-rank ledgers.
type Totals struct {
	Msgs, Bytes       int64 // all transmitted traffic (p2p + put + neighborhood)
	P2PMsgs, P2PBytes int64
	PutMsgs, PutBytes int64
	NbrOps, NbrBytes  int64
	CollOps           int64
	CommTimeSum       float64
	CompTimeSum       float64
	MaxMemoryBytes    int64
	SumMemoryBytes    int64
	MaxAllocHighWater int64
	MaxQueueHighWater int64
}

// Aggregate folds per-rank ledgers into totals.
func Aggregate(stats []*RankStats) Totals {
	var t Totals
	for _, rs := range stats {
		t.P2PMsgs += rs.SendCount
		t.P2PBytes += rs.SendBytes
		t.PutMsgs += rs.PutCount
		t.PutBytes += rs.PutBytes
		t.NbrOps += rs.NbrCollCount
		t.NbrBytes += rs.NbrCollBytes
		t.CollOps += rs.CollCount
		t.CommTimeSum += rs.CommTime
		t.CompTimeSum += rs.CompTime
		mem := rs.MemoryBytes()
		t.SumMemoryBytes += mem
		if mem > t.MaxMemoryBytes {
			t.MaxMemoryBytes = mem
		}
		if rs.AllocHighWater > t.MaxAllocHighWater {
			t.MaxAllocHighWater = rs.AllocHighWater
		}
		if rs.QueueHighWater > t.MaxQueueHighWater {
			t.MaxQueueHighWater = rs.QueueHighWater
		}
	}
	t.Msgs = t.P2PMsgs + t.PutMsgs
	t.Bytes = t.P2PBytes + t.PutBytes + t.NbrBytes
	return t
}

// MsgMatrix assembles the full per-pair message-count matrix from per-rank
// rows; returns nil if matrices were not tracked. Row = sender, column =
// receiver, matching the paper's communication plots.
func MsgMatrix(stats []*RankStats) [][]int64 {
	return gatherRows(stats, func(rs *RankStats) []int64 { return rs.MsgRow })
}

// ByteMatrix assembles the per-pair byte-volume matrix; nil if untracked.
func ByteMatrix(stats []*RankStats) [][]int64 {
	return gatherRows(stats, func(rs *RankStats) []int64 { return rs.ByteRow })
}

func gatherRows(stats []*RankStats, row func(*RankStats) []int64) [][]int64 {
	if len(stats) == 0 || row(stats[0]) == nil {
		return nil
	}
	m := make([][]int64, len(stats))
	for i, rs := range stats {
		r := make([]int64, len(row(rs)))
		copy(r, row(rs))
		m[i] = r
	}
	return m
}
