package mpi

import (
	"testing"
)

func TestSplitBasic(t *testing.T) {
	const p = 6
	_, err := runChecked(p, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub == nil {
			t.Error("nil subcomm for nonnegative color")
			return nil
		}
		if sub.Size() != p/2 {
			t.Errorf("subcomm size = %d, want %d", sub.Size(), p/2)
		}
		// With key = old rank, ordering is preserved within each parity.
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("world %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), want)
		}
		if sub.WorldRank() != c.Rank() {
			t.Errorf("world rank mangled: %d vs %d", sub.WorldRank(), c.Rank())
		}
		// Collectives run independently per group: sum of world ranks of
		// the parity class.
		sum := sub.AllreduceInt64(OpSum, []int64{int64(c.Rank())})[0]
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			t.Errorf("world %d: group sum = %d, want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		// One group, keys in reverse order: sub rank = p-1-world rank.
		sub := c.Split(0, -c.Rank())
		if want := p - 1 - c.Rank(); sub.Rank() != want {
			t.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		var color int
		if c.Rank() == 3 {
			color = -1 // opts out, like MPI_UNDEFINED
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color returned a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("subcomm size = %d, want 3", sub.Size())
		}
		sub.Barrier() // must not involve rank 3
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIsolatesP2PTraffic(t *testing.T) {
	// Same (src-within-comm, tag) coordinates on two communicators must
	// not cross: message context isolation.
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank()) // evens: {0,2}, odds: {1,3}
		// World traffic: rank 0 -> rank 1, tag 5.
		if c.Rank() == 0 {
			c.Isend(1, 5, []int64{100})
		}
		// Sub traffic: sub-rank 0 -> sub-rank 1, tag 5 (world 0->2, 1->3).
		if sub.Rank() == 0 {
			sub.Isend(1, 5, []int64{int64(200 + c.Rank()%2)})
		}
		c.Barrier()
		if c.Rank() == 1 {
			// World receive must get the world message even though a sub
			// message with the same (src=0, tag=5) coordinates exists on
			// this process's mailbox... (it does not: sub src 0 for odd
			// group is world rank 1). Receive both spaces explicitly.
			d, _ := c.Recv(0, 5)
			if d[0] != 100 {
				t.Errorf("world recv got %d", d[0])
			}
		}
		if sub.Rank() == 1 {
			d, _ := sub.Recv(0, 5)
			if want := int64(200 + c.Rank()%2); d[0] != want {
				t.Errorf("sub recv got %d, want %d", d[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitConcurrentGroupWork(t *testing.T) {
	// Two halves independently run topology + neighborhood collectives;
	// a world barrier at the end checks nothing deadlocked or crossed.
	const p = 6
	_, err := runChecked(p, func(c *Comm) error {
		sub := c.Split(c.Rank()/3, c.Rank()) // {0,1,2} and {3,4,5}
		topo := sub.CreateGraphTopo(ringNeighbors(sub.Rank(), sub.Size()))
		got := topo.NeighborAllgatherInt64([]int64{int64(c.Rank())})
		for i, nb := range topo.Neighbors() {
			wantWorld := int64(sub.worldRank(nb))
			if got[i][0] != wantWorld {
				t.Errorf("world %d: neighbor %d sent %d, want %d", c.Rank(), nb, got[i][0], wantWorld)
			}
		}
		// Windows on the subcomm.
		win := sub.WinCreate(2)
		win.Put((sub.Rank()+1)%sub.Size(), 0, []int64{int64(c.Rank())})
		win.FlushAll()
		sub.Barrier()
		left := (sub.Rank() + sub.Size() - 1) % sub.Size()
		if got := win.Local()[0]; got != int64(sub.worldRank(left)) {
			t.Errorf("world %d: window holds %d, want %d", c.Rank(), got, sub.worldRank(left))
		}
		win.Free()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOfSplit(t *testing.T) {
	const p = 8
	_, err := runChecked(p, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank())   // {0..3}, {4..7}
		quarter := half.Split(half.Rank()/2, 0) // pairs
		if quarter.Size() != 2 {
			t.Errorf("quarter size = %d", quarter.Size())
		}
		sum := quarter.AllreduceInt64(OpSum, []int64{int64(c.Rank())})[0]
		// Pairs are consecutive world ranks (2k, 2k+1).
		base := int64(c.Rank() / 2 * 2)
		if sum != base+base+1 {
			t.Errorf("world %d: pair sum = %d", c.Rank(), sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSharedClock(t *testing.T) {
	// The subcomm shares the process clock: work on the subcomm advances
	// the world communicator's view of time.
	_, err := runChecked(2, func(c *Comm) error {
		sub := c.Split(0, 0)
		before := c.Now()
		sub.Barrier()
		sub.AllreduceInt64(OpSum, []int64{1})
		if c.Now() <= before {
			t.Error("subcomm activity did not advance the shared clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
