package mpi

import (
	"fmt"
	"sync"
)

// Win is an MPI-3 RMA window: every rank exposes a local buffer of int64
// words that any other rank can target with one-sided Put, Get and atomic
// operations. The runtime models passive-target synchronization
// (MPI_Win_lock_all / MPI_Win_unlock_all around an epoch, with
// MPI_Win_flush_all to complete outstanding operations), which is the mode
// the paper's RMA implementation uses.
//
// Consistency contract (identical to MPI's separate memory model used
// correctly): a target may read a window region that a peer Put into only
// after some synchronizing communication from the origin informs it the
// data is there — in the matching code, the per-round neighborhood count
// exchange, exactly as in the paper (§IV-D). Put data is physically
// applied on delivery under a per-target lock, so conforming access
// patterns are race-free.
type Win struct {
	w     *World
	id    int64
	size  int
	bufs  [][]int64
	locks []sync.Mutex
}

// winView is a rank's handle to a window; pending tracks bytes put since
// the last flush for virtual-time draining.
type winView struct {
	win            *Win
	c              *Comm
	pending        int64
	pendingTargets map[int]struct{}
	locked         bool
}

// WinHandle is what ranks use to operate on a window.
type WinHandle = *winView

// WinCreate collectively creates an RMA window with a local buffer of
// localSize int64 words on every rank (sizes may differ per rank). The
// buffer memory is charged to the rank's allocation ledger.
func (c *Comm) WinCreate(localSize int) WinHandle {
	if localSize < 0 {
		panic(fmt.Sprintf("mpi: WinCreate: negative size %d", localSize))
	}
	var id int64
	if c.rank == 0 {
		c.w.winMu.Lock()
		c.w.winSeq++
		id = int64(c.w.winSeq)
		c.w.winMu.Unlock()
	}
	id = c.BcastInt64(0, []int64{id})[0]

	buf := make([]int64, localSize)
	c.AccountAlloc(int64(8 * localSize))

	// Share buffer references through the hub. adeps is single-buffered;
	// the preceding BcastInt64 round keeps this deposit from racing any
	// earlier adeps reads (see the adeps invariant on collHub).
	h, _, tmax, last := c.enterColl(func(h *collHub, _ int) {
		h.ensureAdeps()
		h.adeps[c.rank] = buf
	})
	var win *Win
	if c.rank == 0 {
		win = &Win{w: c.w, id: id, size: localSize}
		win.bufs = make([][]int64, c.size())
		win.locks = make([]sync.Mutex, c.size())
		for r := 0; r < c.size(); r++ {
			win.bufs[r] = h.adeps[r].([]int64)
		}
		// Republish the assembled Win in rank 0's slot — an early deposit
		// for the next rendezvous that only rank 0 writes and nobody
		// reads this round; the second deposit barrier below orders it
		// before the other ranks' reads.
		h.adeps[0] = win
	}
	c.exitColl(tmax, last, 8)
	// Second rendezvous so non-root ranks can pick up the Win object.
	h, _, tmax, last = c.enterColl(nil)
	win = h.adeps[0].(*Win)
	c.exitColl(tmax, last, 8)

	return &winView{win: win, c: c, pendingTargets: make(map[int]struct{})}
}

// Free collectively releases the window and returns its memory to the
// allocation ledger.
func (v *winView) Free() {
	c := v.c
	c.Barrier()
	c.AccountAlloc(int64(-8 * len(v.win.bufs[c.rank])))
}

// LockAll opens a passive-target access epoch on all ranks (cheap: the
// runtime's windows are always accessible; the call exists for fidelity
// and charges a small synchronization cost).
func (v *winView) LockAll() {
	if v.locked {
		panic("mpi: LockAll: epoch already open")
	}
	v.locked = true
	v.c.chargeComm(v.c.w.cost.AlphaFlush)
}

// UnlockAll closes the passive-target epoch, completing all outstanding
// operations like FlushAll.
func (v *winView) UnlockAll() {
	if !v.locked {
		panic("mpi: UnlockAll: no epoch open")
	}
	v.FlushAll()
	v.locked = false
}

// Put copies data into target's window starting at word offset disp. The
// origin pays only the issue cost; transfer bytes are drained at the next
// Flush/FlushAll, modeling RDMA write pipelining.
func (v *winView) Put(target, disp int, data []int64) {
	c := v.c
	c.checkRank(target, "Put")
	win := v.win
	if disp < 0 || disp+len(data) > len(win.bufs[target]) {
		panic(fmt.Sprintf("mpi: Put: rank %d target %d range [%d,%d) outside window of %d words",
			c.rank, target, disp, disp+len(data), len(win.bufs[target])))
	}
	win.locks[target].Lock()
	copy(win.bufs[target][disp:], data)
	win.locks[target].Unlock()
	bytes := int64(8 * len(data))
	start := c.ps.now
	c.chargeComm(c.w.cost.AlphaPut)
	v.pending += bytes
	v.pendingTargets[target] = struct{}{}
	c.ps.rs.notePut(c.worldRank(target), bytes)
	c.event(EvPut, c.worldRank(target), -1, bytes, start)
}

// Get copies count words from target's window starting at disp. Unlike
// Put, a Get's result is needed immediately, so the origin pays the full
// round trip.
func (v *winView) Get(target, disp, count int) []int64 {
	c := v.c
	c.checkRank(target, "Get")
	win := v.win
	if disp < 0 || disp+count > len(win.bufs[target]) {
		panic(fmt.Sprintf("mpi: Get: rank %d target %d range [%d,%d) outside window of %d words",
			c.rank, target, disp, disp+count, len(win.bufs[target])))
	}
	out := make([]int64, count)
	win.locks[target].Lock()
	copy(out, win.bufs[target][disp:disp+count])
	win.locks[target].Unlock()
	bytes := int64(8 * count)
	start := c.ps.now
	c.chargeComm(c.w.cost.AlphaGet + c.w.cost.AlphaP2P + c.w.cost.BetaGet*float64(bytes))
	c.ps.rs.GetCount++
	c.ps.rs.GetBytes += bytes
	c.event(EvGet, c.worldRank(target), -1, bytes, start)
	return out
}

// Accumulate atomically adds each element of data into target's window at
// disp (MPI_Accumulate with MPI_SUM).
func (v *winView) Accumulate(target, disp int, data []int64) {
	c := v.c
	c.checkRank(target, "Accumulate")
	win := v.win
	if disp < 0 || disp+len(data) > len(win.bufs[target]) {
		panic(fmt.Sprintf("mpi: Accumulate: range [%d,%d) outside window of %d words",
			disp, disp+len(data), len(win.bufs[target])))
	}
	win.locks[target].Lock()
	for i, x := range data {
		win.bufs[target][disp+i] += x
	}
	win.locks[target].Unlock()
	bytes := int64(8 * len(data))
	start := c.ps.now
	c.chargeComm(c.w.cost.AlphaPut)
	v.pending += bytes
	v.pendingTargets[target] = struct{}{}
	c.ps.rs.AtomicCount++
	c.ps.rs.notePut(c.worldRank(target), bytes)
	c.event(EvAtomic, c.worldRank(target), -1, bytes, start)
}

// FetchAndAdd atomically adds delta to the single word at target:disp and
// returns the previous value (MPI_Fetch_and_op with MPI_SUM). Used by the
// ablation study comparing the paper's precomputed-displacement scheme
// against a naive distributed counter; note the full round-trip charge.
func (v *winView) FetchAndAdd(target, disp int, delta int64) int64 {
	c := v.c
	c.checkRank(target, "FetchAndAdd")
	win := v.win
	if disp < 0 || disp >= len(win.bufs[target]) {
		panic(fmt.Sprintf("mpi: FetchAndAdd: disp %d outside window of %d words", disp, len(win.bufs[target])))
	}
	win.locks[target].Lock()
	old := win.bufs[target][disp]
	win.bufs[target][disp] = old + delta
	win.locks[target].Unlock()
	start := c.ps.now
	c.chargeComm(c.w.cost.AtomicRTT)
	c.ps.rs.AtomicCount++
	c.event(EvAtomic, c.worldRank(target), -1, 8, start)
	return old
}

// CompareAndSwap atomically replaces target:disp with swap if it equals
// expect, returning the previous value (MPI_Compare_and_swap).
func (v *winView) CompareAndSwap(target, disp int, expect, swap int64) int64 {
	c := v.c
	c.checkRank(target, "CompareAndSwap")
	win := v.win
	if disp < 0 || disp >= len(win.bufs[target]) {
		panic(fmt.Sprintf("mpi: CompareAndSwap: disp %d outside window of %d words", disp, len(win.bufs[target])))
	}
	win.locks[target].Lock()
	old := win.bufs[target][disp]
	if old == expect {
		win.bufs[target][disp] = swap
	}
	win.locks[target].Unlock()
	start := c.ps.now
	c.chargeComm(c.w.cost.AtomicRTT)
	c.ps.rs.AtomicCount++
	c.event(EvAtomic, c.worldRank(target), -1, 8, start)
	return old
}

// FlushAll completes all outstanding RMA operations issued by this rank
// (MPI_Win_flush_all): the virtual clock drains pending put bytes plus a
// per-active-target completion round trip.
func (v *winView) FlushAll() {
	c := v.c
	start := c.ps.now
	drained, targets := v.pending, len(v.pendingTargets)
	// The flush drain is in-flight latency, so perturbation jitters it
	// like any other transfer: flush completion time is a legal point of
	// variation (MPI only promises completion, not when).
	c.chargeComm(c.perturbLatency(c.w.cost.AlphaFlush +
		c.w.cost.FlushPerTarget*float64(targets) +
		c.w.cost.BetaPut*float64(drained)))
	v.pending = 0
	clear(v.pendingTargets)
	c.ps.rs.FlushCount++
	c.event(EvFlush, -1, targets, drained, start)
}

// Flush completes outstanding operations to one target. The runtime does
// not track pending bytes per target, so this conservatively drains
// everything, like FlushAll, but charges only the flush latency once.
func (v *winView) Flush(target int) {
	v.c.checkRank(target, "Flush")
	v.FlushAll()
}

// Local returns this rank's own window buffer. Reads of regions written
// by remote Puts are safe once a synchronizing message from the origin
// (for example a count exchange) has been received, per the window
// consistency contract.
func (v *winView) Local() []int64 { return v.win.bufs[v.c.rank] }

// TargetSize returns the window size (in words) of the given rank.
func (v *winView) TargetSize(target int) int {
	v.c.checkRank(target, "TargetSize")
	return len(v.win.bufs[target])
}
