package mpi

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// This file exercises the sharded worker-pool scheduler: mode resolution,
// correctness of a pooled world, clock and result determinism across
// scheduling modes and GOMAXPROCS settings, perturbation replay, poison
// teardown (including Split sub-communicators), world-skeleton pooling,
// the large-world symmetry handshake, and the 16K-rank smoke/leak test.

// schedModes are the two concrete scheduling strategies; every behavioral
// test in this file runs under both so pooled execution is held to exactly
// the semantics of the legacy one-goroutine-per-rank path.
var schedModes = []SchedMode{SchedDirect, SchedWorkers}

func mix64(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b97f4a7c15
	return bits.RotateLeft64(h, 29)
}

// withMaxProcs runs f under the given GOMAXPROCS setting, restoring the
// previous value afterwards.
func withMaxProcs(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestSchedModeResolution(t *testing.T) {
	if got := resolveSched(SchedAuto, pooledMinProcs-1); got != SchedDirect {
		t.Errorf("resolveSched(auto, %d) = %v, want direct", pooledMinProcs-1, got)
	}
	if got := resolveSched(SchedAuto, pooledMinProcs); got != SchedWorkers {
		t.Errorf("resolveSched(auto, %d) = %v, want workers", pooledMinProcs, got)
	}
	if got := resolveSched(SchedDirect, 1<<20); got != SchedDirect {
		t.Errorf("explicit direct not honored at large world: got %v", got)
	}
	if got := resolveSched(SchedWorkers, 2); got != SchedWorkers {
		t.Errorf("explicit workers not honored at small world: got %v", got)
	}
	if n := workerCount(2); n < 1 || n > 2 {
		t.Errorf("workerCount(2) = %d, want in [1,2]", n)
	}
	if n := workerCount(1 << 20); n > maxWorkers {
		t.Errorf("workerCount(1<<20) = %d, want <= %d", n, maxWorkers)
	}
	for _, m := range []SchedMode{SchedAuto, SchedDirect, SchedWorkers} {
		if m.String() == "" || strings.Contains(m.String(), "SchedMode") {
			t.Errorf("SchedMode(%d).String() = %q", m, m.String())
		}
	}
}

// TestWorkerPoolBasic runs a world big enough that SchedAuto selects the
// worker pool and checks a mixed point-to-point + collective workload for
// correct results, balanced ledgers and zero leaked goroutines.
func TestWorkerPoolBasic(t *testing.T) {
	const p = pooledMinProcs + 44 // force pooled under SchedAuto
	rep, err := RunChecked(p, func(c *Comm) error {
		r, n := c.Rank(), c.Size()
		next, prev := (r+1)%n, (r-1+n)%n
		var buf [2]int64
		for k := 0; k < 3; k++ {
			c.Isend(next, k, []int64{int64(r), int64(k)})
			if _, st := c.RecvInto(prev, k, buf[:]); st.Source != prev {
				return fmt.Errorf("rank %d: recv from %d, want %d", r, st.Source, prev)
			}
			if buf[0] != int64(prev) || buf[1] != int64(k) {
				return fmt.Errorf("rank %d round %d: payload %v", r, k, buf)
			}
		}
		c.Barrier()
		if got := c.AllreduceScalarInt64(OpSum, int64(r)); got != int64(n*(n-1)/2) {
			return fmt.Errorf("rank %d: allreduce = %d", r, got)
		}
		return nil
	}, WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	sends, recvs := countP2P(rep)
	if sends != int64(3*p) || recvs != int64(3*p) {
		t.Errorf("totals: sends=%d recvs=%d, want %d each", sends, recvs, 3*p)
	}
}

// countP2P sums point-to-point operation counts over all rank ledgers.
func countP2P(rep *Report) (sends, recvs int64) {
	for _, rs := range rep.Stats {
		sends += rs.SendCount
		recvs += rs.RecvCount
	}
	return
}

// clockBody is an exact-source-only workload (no wildcard receives, no
// probes), for which the deterministic earliest-virtual-arrival matching
// makes every rank's virtual clock — not just the results — a pure function
// of the program. Its fingerprint therefore folds the virtual-time report.
func clockBody(rounds int) func(c *Comm) error {
	return func(c *Comm) error {
		r, n := c.Rank(), c.Size()
		next, prev := (r+1)%n, (r-1+n)%n
		var buf [1]int64
		for k := 0; k < rounds; k++ {
			c.Isend(next, k, []int64{int64(r*31 + k)})
			c.RecvInto(prev, k, buf[:])
			if buf[0] != int64(prev*31+k) {
				return fmt.Errorf("rank %d round %d: got %d", r, k, buf[0])
			}
		}
		c.Barrier()
		vec := c.AllreduceInt64(OpMax, []int64{int64(r), int64(-r)})
		if vec[0] != int64(n-1) || vec[1] != 0 {
			return fmt.Errorf("rank %d: allreduce vec = %v", r, vec)
		}
		c.AllreduceScalarInt64(OpSum, int64(r))
		// Back-to-back slot collectives: consecutive rounds alternate the
		// hub's parity-buffered deposit slots, so any cross-round slot
		// reuse bug lands here. Each result feeds the next round's input
		// or the local clock, so a wrong value shifts the fingerprint even
		// if the final payloads happen to agree.
		all := c.AllgatherInt64([]int64{int64(r*7 + 1)})
		if got := all[prev][0]; got != int64(prev*7+1) {
			return fmt.Errorf("rank %d: allgather[%d] = %d", r, prev, got)
		}
		c.Compute(float64(all[next][0] % 5))
		root := n / 2
		bc := c.BcastInt64(root, []int64{all[root][0] * 3})
		if bc[0] != int64((root*7+1)*3) {
			return fmt.Errorf("rank %d: bcast = %d", r, bc[0])
		}
		red := c.ReduceInt64(0, OpSum, []int64{1, int64(r)})
		if r == 0 && (red[0] != int64(n) || red[1] != int64(n*(n-1)/2)) {
			return fmt.Errorf("reduce at root = %v", red)
		}
		// Float allreduce keeps the rank-ordered fold path (float addition
		// is not associative); route the result into the clock so a fold
		// order change breaks determinism visibly.
		fs := c.AllreduceFloat64(OpSum, []float64{float64(r+1) * 0.125})
		c.AdvanceTime(fs[0] * 1e-9)
		sc := c.AllreduceScalarInt64(OpProd, int64(2-(r&1)))
		c.Compute(float64(sc & 7))
		return nil
	}
}

func clockFingerprint(rep *Report) uint64 {
	h := uint64(0x51ed27f5)
	h = mix64(h, math.Float64bits(rep.MaxVirtualTime))
	h = mix64(h, math.Float64bits(rep.TotalVirtualTime))
	for _, rs := range rep.Stats {
		h = mix64(h, uint64(rs.SendCount)<<32|uint64(rs.RecvCount))
		h = mix64(h, math.Float64bits(rs.CommTime))
		h = mix64(h, math.Float64bits(rs.WaitTime))
	}
	return h
}

// TestClockDeterminismAcrossModes asserts the strongest determinism
// property the runtime offers: for exact-source workloads the entire
// virtual-time profile is bit-identical whether ranks run as goroutines or
// as pooled tasks, at any GOMAXPROCS.
func TestClockDeterminismAcrossModes(t *testing.T) {
	const p = 64
	body := clockBody(4)
	var want uint64
	first := true
	for _, mode := range schedModes {
		for _, procs := range []int{1, 4, runtime.NumCPU()} {
			mode, procs := mode, procs
			withMaxProcs(procs, func() {
				rep, err := Run(p, body, WithScheduler(mode), WithDeadline(30*time.Second))
				if err != nil {
					t.Fatalf("%v/GOMAXPROCS=%d: %v", mode, procs, err)
				}
				got := clockFingerprint(rep)
				if first {
					want, first = got, false
				} else if got != want {
					t.Errorf("%v/GOMAXPROCS=%d: clock fingerprint %#x, want %#x", mode, procs, got, want)
				}
			})
		}
	}
}

// wildcardResult is one rank's contribution to the result fingerprint of
// the perturbable workload: only order-insensitive folds of what was
// received, never clocks, since wildcard arrival clocks may legally vary
// with the physical schedule.
func wildcardBody(res []uint64) func(c *Comm) error {
	return func(c *Comm) error {
		r, n := c.Rank(), c.Size()
		acc := uint64(0x9f2e)
		if r == 0 {
			// Fan-in over AnySource: half via blocking Probe, half via an
			// Iprobe poll loop (exercising forced misses and poll-yield).
			for got := 0; got < n-1; got++ {
				var st Status
				if got%2 == 0 {
					st = c.Probe(AnySource, 7)
				} else {
					for {
						ok, s := c.Iprobe(AnySource, 7)
						if ok {
							st = s
							break
						}
					}
				}
				data, st2 := c.Recv(st.Source, 7)
				// Commutative fold: sum of per-message mixes.
				acc += mix64(uint64(st2.Source), uint64(data[0]))
			}
		} else {
			c.Isend(0, 7, []int64{int64(r) * 1315423911})
		}
		// Exact-source ring: ordered fold is safe here.
		next, prev := (r+1)%n, (r-1+n)%n
		c.Isend(next, 9, []int64{int64(r * r)})
		ring, _ := c.Recv(prev, 9)
		acc = mix64(acc, uint64(ring[0]))
		// Collectives, including a Split sub-communicator.
		sum := c.AllreduceScalarInt64(OpSum, int64(r+1))
		acc = mix64(acc, uint64(sum))
		sub := c.Split(r%2, r)
		subsum := sub.AllreduceScalarInt64(OpMax, int64(r))
		sub.Barrier()
		acc = mix64(acc, uint64(subsum)<<8|uint64(sub.Size()))
		res[r] = acc
		return nil
	}
}

func wildcardRunFunc(p int, mode SchedMode) sched.RunFunc {
	return func(seed uint64, prof sched.Profile) (sched.Outcome, error) {
		res := make([]uint64, p)
		opts := []Option{WithScheduler(mode), WithDeadline(30 * time.Second)}
		if prof.Enabled() {
			opts = append(opts, WithPerturb(seed, prof))
		}
		rep, err := Run(p, wildcardBody(res), opts...)
		if err != nil {
			return sched.Outcome{}, err
		}
		h := uint64(0x2545f491)
		for r, v := range res {
			h = mix64(h, uint64(r)<<32^v)
		}
		sends, recvs := countP2P(rep)
		h = mix64(h, uint64(sends)<<32|uint64(recvs))
		return sched.Outcome{Fingerprint: h, Desc: fmt.Sprintf("p=%d", p)}, nil
	}
}

// TestPerturbReplayAcrossModes asserts that protocol results are invariant
// under every perturbation class, under both scheduling strategies, at
// GOMAXPROCS 1, 4 and max — and that sched.Explore/Replay see identical
// fingerprints, i.e. the perturbation engine survived the scheduler swap.
func TestPerturbReplayAcrossModes(t *testing.T) {
	const p = 24
	// Unperturbed baseline, legacy scheduling: the reference fingerprint.
	base, err := wildcardRunFunc(p, SchedDirect)(0, sched.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	// perturbProfiles (mailbox_test.go) enumerates every class in isolation
	// plus all-off and all-on.
	for pi, prof := range perturbProfiles {
		for _, mode := range schedModes {
			for _, procs := range []int{1, 4, runtime.NumCPU()} {
				prof, mode, procs := prof, mode, procs
				withMaxProcs(procs, func() {
					got, err := wildcardRunFunc(p, mode)(uint64(pi)+1, prof)
					if err != nil {
						t.Fatalf("%v %v/GOMAXPROCS=%d: %v", prof, mode, procs, err)
					}
					if got.Fingerprint != base.Fingerprint {
						t.Errorf("%v %v/GOMAXPROCS=%d: fingerprint %#x, want %#x",
							prof, mode, procs, got.Fingerprint, base.Fingerprint)
					}
				})
			}
		}
		// The explorer itself, driving the pooled scheduler.
		if fail := sched.Explore(wildcardRunFunc(p, SchedWorkers), prof, 42, 5); fail != nil {
			t.Errorf("Explore(%v, pooled): %v", prof, fail)
		}
		if fail := sched.Replay(wildcardRunFunc(p, SchedWorkers), prof, sched.SeedAt(42, 3)); fail != nil {
			t.Errorf("Replay(%v, pooled): %v", prof, fail)
		}
	}
}

// TestDeadlinePoisonBothModes checks that the deadline watchdog can tear
// down a deadlocked world promptly under both schedulers: poisoned
// mailboxes must unpark a task that is parked waiting for a message that
// will never arrive.
func TestDeadlinePoisonBothModes(t *testing.T) {
	for _, mode := range schedModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			start := time.Now()
			_, err := Run(64, func(c *Comm) error {
				if c.Rank() == 0 {
					c.Recv(1, 0) // rank 1 never sends: deadlock
				}
				return nil
			}, WithScheduler(mode), WithDeadline(300*time.Millisecond))
			if err == nil {
				t.Fatal("expected deadline error, got nil")
			}
			if !strings.Contains(err.Error(), "deadline") {
				t.Errorf("error = %v, want mention of deadline", err)
			}
			if el := time.Since(start); el > 10*time.Second {
				t.Errorf("teardown took %v, want prompt unwind", el)
			}
		})
	}
}

// TestSplitSubCommPoisonTeardown is the regression test for poison
// reaching Split sub-communicator hubs: ranks parked in a sub-hub
// collective (not the world hub) must still be woken by the watchdog.
func TestSplitSubCommPoisonTeardown(t *testing.T) {
	for _, mode := range schedModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			start := time.Now()
			_, err := Run(4, func(c *Comm) error {
				sub := c.Split(min(c.Rank(), 1), c.Rank())
				if c.Rank() == 3 {
					c.Recv(0, 5) // never sent: ranks 1,2 park forever in sub.Barrier
				}
				if c.Rank() > 0 {
					sub.Barrier()
				}
				return nil
			}, WithScheduler(mode), WithDeadline(300*time.Millisecond))
			if err == nil {
				t.Fatal("expected deadline error, got nil")
			}
			if !strings.Contains(err.Error(), "deadline") {
				t.Errorf("error = %v, want mention of deadline", err)
			}
			if el := time.Since(start); el > 10*time.Second {
				t.Errorf("sub-communicator teardown took %v, want prompt unwind", el)
			}
		})
	}
}

// TestWorldStatePooling leaves unreceived messages behind in one run and
// verifies that subsequent runs of the same size always start with clean
// mailboxes — the skeleton-recycling reset must drain everything a
// previous world queued, whether or not the sync.Pool actually hits.
func TestWorldStatePooling(t *testing.T) {
	rep, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Isend(1, 5, []int64{int64(i)})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Stats[1].UnreceivedMsgs; got != 3 {
		t.Fatalf("rank 1 UnreceivedMsgs = %d, want 3", got)
	}
	for i := 0; i < 8; i++ {
		_, err := Run(2, func(c *Comm) error {
			if n := c.PendingMessages(); n != 0 {
				return fmt.Errorf("rank %d starts with %d pending messages", c.Rank(), n)
			}
			// The cleanliness check must precede all traffic on every rank
			// (an early peer send is otherwise a legal pending message).
			c.Barrier()
			peer := 1 - c.Rank()
			c.Isend(peer, 0, []int64{int64(c.Rank())})
			got, _ := c.Recv(peer, 0)
			if got[0] != int64(peer) {
				return fmt.Errorf("rank %d: got %d", c.Rank(), got[0])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("recycled run %d: %v", i, err)
		}
	}
}

// TestBodyErrorPoisonsPeers: a rank body returning an error must poison
// the world so peers blocked on its traffic unwind promptly — even with
// no deadline set, an undeadlined Run must not hang. The root-cause error
// must outrank the "a peer rank failed" consequence unwinds.
func TestBodyErrorPoisonsPeers(t *testing.T) {
	for _, mode := range schedModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			start := time.Now()
			_, err := Run(8, func(c *Comm) error {
				if c.Rank() == 3 {
					return fmt.Errorf("injected failure")
				}
				if c.Rank() == 0 {
					c.Recv(3, 0) // never sent: unblocked only by the poison
				}
				return nil
			}, WithScheduler(mode))
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), "injected failure") {
				t.Errorf("first reported error = %v, want the injected root cause", err)
			}
			if el := time.Since(start); el > 10*time.Second {
				t.Errorf("teardown took %v, want prompt unwind", el)
			}
		})
	}
}

// TestTopoHandshakePath forces the pairwise symmetry handshake (normally
// reserved for worlds above topoVerifyDenseLimit) at a small size and
// checks both a symmetric topology (must work, including a neighborhood
// collective over it) and an asymmetric one (must surface as a deadline
// teardown rather than a hang).
func TestTopoHandshakePath(t *testing.T) {
	defer func(old int) { topoVerifyDenseLimit = old }(topoVerifyDenseLimit)
	topoVerifyDenseLimit = 4

	const p = 8
	_, err := RunChecked(p, func(c *Comm) error {
		r, n := c.Rank(), c.Size()
		topo := c.CreateGraphTopo([]int{(r + 1) % n, (r - 1 + n) % n})
		recv := topo.NeighborAlltoallInt64([]int64{int64(r), int64(r)}, 1)
		if recv[0] != int64((r+1)%n) || recv[1] != int64((r-1+n)%n) {
			return fmt.Errorf("rank %d: neighbor exchange %v", r, recv)
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("symmetric handshake topology: %v", err)
	}

	// Asymmetric: rank 0 lists rank 1, but not vice versa. The handshake
	// rank 0 waits for never comes; the watchdog must name the deadlock.
	_, err = Run(p, func(c *Comm) error {
		var nbrs []int
		if c.Rank() == 0 {
			nbrs = []int{1}
		}
		c.CreateGraphTopo(nbrs)
		return nil
	}, WithDeadline(300*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("asymmetric handshake topology: err = %v, want deadline error", err)
	}
}

// TestLargeWorldSmoke is the 16K-rank scale gate from the issue: a full
// NSR-style ping ring plus a scalar reduction must complete in CI time
// with balanced ledgers and no leaked goroutines or parked tasks
// (RunChecked runs CheckGoroutines after the world tears down).
func TestLargeWorldSmoke(t *testing.T) {
	p := 16384
	if raceEnabled {
		p = 2048 // the detector makes 16K tasks an order of magnitude slower
	}
	if testing.Short() {
		p = 4096
	}
	rep, err := RunChecked(p, func(c *Comm) error {
		r, n := c.Rank(), c.Size()
		next, prev := (r+1)%n, (r-1+n)%n
		var buf [1]int64
		c.Isend(next, 0, []int64{int64(r)})
		c.RecvInto(prev, 0, buf[:])
		if buf[0] != int64(prev) {
			return fmt.Errorf("rank %d: ring got %d, want %d", r, buf[0], prev)
		}
		if got := c.AllreduceScalarInt64(OpMax, int64(r)); got != int64(n-1) {
			return fmt.Errorf("rank %d: allreduce max = %d", r, got)
		}
		return nil
	}, WithDeadline(120*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != p {
		t.Errorf("Procs = %d, want %d", rep.Procs, p)
	}
	sends, recvs := countP2P(rep)
	if sends != int64(p) || recvs != int64(p) {
		t.Errorf("totals: sends=%d recvs=%d, want %d each", sends, recvs, p)
	}
}

// Pooled-mode variants of the steady-state allocation contracts: parking
// and unparking through the worker pool must stay off the heap just as
// the legacy condvar path does.

func TestRoundTripZeroAllocPooled(t *testing.T) {
	const runs = 100
	_, err := RunChecked(2, func(c *Comm) error {
		sbuf := [3]int64{1, 2, 3}
		var rbuf [3]int64
		peer := 1 - c.Rank()
		roundTrip := func() {
			c.Isend(peer, 0, sbuf[:])
			c.RecvInto(peer, 0, rbuf[:])
		}
		for i := 0; i < 16; i++ {
			roundTrip()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, roundTrip); avg != 0 {
				t.Errorf("pooled 3-word round trip: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				roundTrip()
			}
		}
		return nil
	}, WithScheduler(SchedWorkers), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceScalarZeroAllocPooled(t *testing.T) {
	const runs = 100
	_, err := RunChecked(2, func(c *Comm) error {
		reduce := func() {
			if got := c.AllreduceScalarInt64(OpSum, int64(c.Rank()+1)); got != 3 {
				t.Errorf("pooled scalar allreduce = %d, want 3", got)
			}
		}
		for i := 0; i < 4; i++ {
			reduce()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, reduce); avg != 0 {
				t.Errorf("pooled AllreduceScalarInt64: %.2f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				reduce()
			}
		}
		return nil
	}, WithScheduler(SchedWorkers), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}
