//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in; large-world
// tests size themselves down under it (the detector multiplies both memory
// and time per goroutine by an order of magnitude).
const raceEnabled = true
