package mpi

import (
	"fmt"
	"math"
	"sort"
)

// Topo is a distributed graph process topology, the analogue of a
// communicator created with MPI_Dist_graph_create_adjacent. Each rank
// declares the set of ranks it communicates with; neighborhood collectives
// then involve only those ranks. The topology must be symmetric: if j is
// a neighbor of i, then i must be a neighbor of j (CreateGraphTopo
// verifies this and panics otherwise, since an asymmetric topology would
// deadlock neighborhood collectives).
type Topo struct {
	c         *Comm
	id        int64
	neighbors []int
	index     map[int]int // neighbor rank -> position in neighbors
	seq       int64       // per-call sequence, advances identically on all members
}

// CreateGraphTopo collectively creates a distributed graph topology from
// each rank's adjacency list. The call is collective over the world (as
// MPI_Dist_graph_create_adjacent is over its communicator); ranks with no
// neighbors pass an empty list. Neighbor order is preserved: buffers in
// neighborhood collectives are laid out in this order, exactly as in MPI.
func (c *Comm) CreateGraphTopo(neighbors []int) *Topo {
	idx := make(map[int]int, len(neighbors))
	for i, nb := range neighbors {
		c.checkRank(nb, "CreateGraphTopo")
		if nb == c.rank {
			panic(fmt.Sprintf("mpi: CreateGraphTopo: rank %d listed itself as a neighbor", c.rank))
		}
		if _, dup := idx[nb]; dup {
			panic(fmt.Sprintf("mpi: CreateGraphTopo: rank %d listed neighbor %d twice", c.rank, nb))
		}
		idx[nb] = i
	}

	// Allocate a world-unique topology id (collective, so all members
	// agree), then verify symmetry from the gathered adjacency lists.
	var id int64
	if c.rank == 0 {
		c.w.topoMu.Lock()
		c.w.topoSeq++
		id = int64(c.w.topoSeq)
		c.w.topoMu.Unlock()
	}
	id = c.BcastInt64(0, []int64{id})[0]

	if c.size() <= topoVerifyDenseLimit {
		// Small worlds: gather every adjacency list and cross-check
		// directly, yielding a precise panic naming the asymmetric pair.
		mine := make([]int64, len(neighbors))
		for i, nb := range neighbors {
			mine[i] = int64(nb)
		}
		all := c.AllgatherInt64(mine)
		for _, nb := range neighbors {
			found := false
			for _, v := range all[nb] {
				if int(v) == c.rank {
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("mpi: CreateGraphTopo: asymmetric topology: rank %d lists %d but not vice versa", c.rank, nb))
			}
		}
	} else {
		// Large worlds: the allgather materializes every adjacency list on
		// every rank — O(P * E_p) memory, which at 16K+ ranks dwarfs the
		// topology itself. Verify symmetry pairwise instead: each rank
		// sends a zero-cost handshake to every listed neighbor on a
		// reserved internal tag (below this topology's itag sequence) and
		// then receives one from each. Total traffic is O(E_p). An
		// asymmetric listing means some handshake never arrives; that
		// surfaces as a deadline-watchdog deadlock naming the blocked
		// ranks rather than a pinpointed panic — the price of scalability.
		hs := 1 + id<<32 + topoHandshakeSeq
		var one [1]int64
		one[0] = int64(c.rank)
		for _, nb := range neighbors {
			c.internalSend(nb, hs, one[:], 0, 0, nil)
		}
		for _, nb := range neighbors {
			c.internalRecvMsg(nb, hs).release()
		}
	}

	return &Topo{
		c:         c,
		id:        id,
		neighbors: append([]int(nil), neighbors...),
		index:     idx,
	}
}

// Neighbors returns the topology's neighbor list for this rank (a copy).
func (t *Topo) Neighbors() []int { return append([]int(nil), t.neighbors...) }

// Degree returns the number of neighbors of this rank.
func (t *Topo) Degree() int { return len(t.neighbors) }

// NeighborIndex returns the buffer position of neighbor rank nb, or -1.
func (t *Topo) NeighborIndex(nb int) int {
	if i, ok := t.index[nb]; ok {
		return i
	}
	return -1
}

// itag derives the internal message tag for call number seq on this topo.
func (t *Topo) itag(seq int64) int64 { return 1 + t.id<<32 + seq }

// topoHandshakeSeq is the reserved pseudo-sequence for the symmetry
// handshake: itag(-1) sits below every real call's tag for this topology
// id and above the previous id's space, so handshakes can never match
// collective traffic.
const topoHandshakeSeq = -1

// topoVerifyDenseLimit is the world size up to which CreateGraphTopo
// verifies symmetry via a full adjacency allgather (precise diagnostics,
// O(P*E_p) memory). Larger worlds use the pairwise handshake. A variable
// so tests can exercise the handshake path at small sizes.
var topoVerifyDenseLimit = 2048

// NeighborAlltoallInt64 is MPI_Neighbor_alltoall: each rank sends a
// fixed-size chunk to every neighbor and receives one from each. send
// must hold Degree()*chunk words, laid out in neighbor order; the result
// has the same layout with received chunks. A rank with zero neighbors
// returns immediately — neighborhood collectives synchronize only within
// the neighborhood, never globally.
func (t *Topo) NeighborAlltoallInt64(send []int64, chunk int) []int64 {
	return t.NeighborAlltoallInt64Into(send, chunk, nil)
}

// NeighborAlltoallInt64Into is NeighborAlltoallInt64 receiving into a
// caller-supplied buffer of Degree()*chunk words (allocated when nil),
// which it returns. Transports reuse one buffer across rounds to keep the
// per-round count exchange allocation-free.
func (t *Topo) NeighborAlltoallInt64Into(send []int64, chunk int, recv []int64) []int64 {
	if len(send) != len(t.neighbors)*chunk {
		panic(fmt.Sprintf("mpi: NeighborAlltoallInt64: len(send)=%d, want %d*%d", len(send), len(t.neighbors), chunk))
	}
	if recv == nil {
		recv = make([]int64, len(t.neighbors)*chunk)
	} else if len(recv) != len(t.neighbors)*chunk {
		panic(fmt.Sprintf("mpi: NeighborAlltoallInt64Into: len(recv)=%d, want %d*%d", len(recv), len(t.neighbors), chunk))
	}
	c := t.c
	cost := c.w.cost
	seq := t.seq
	t.seq++
	start := c.ps.now
	c.ps.rs.NbrCollCount++
	c.chargeComm(cost.AlphaNbrCall)
	var moved int64
	for i, nb := range t.neighbors {
		part := send[i*chunk : (i+1)*chunk]
		bytes := int64(8 * len(part))
		moved += bytes
		c.chargeComm(cost.AlphaNbr + cost.BetaNbr*float64(bytes))
		c.internalSend(nb, t.itag(seq), part, cost.AlphaNbr, cost.BetaNbr, (*RankStats).noteNbrChunk)
	}
	for i, nb := range t.neighbors {
		m := c.internalRecvMsg(nb, t.itag(seq))
		if len(m.data) != chunk {
			panic(fmt.Sprintf("mpi: NeighborAlltoallInt64: rank %d received %d words from %d, want chunk %d", c.rank, len(m.data), nb, chunk))
		}
		copy(recv[i*chunk:(i+1)*chunk], m.data)
		m.release()
	}
	c.event(EvNbrColl, -1, int(seq), moved, start)
	return recv
}

// NeighborAlltoallvInt64 is MPI_Neighbor_alltoallv: send[i] is delivered
// to neighbor i; the result's element i is what neighbor i sent to this
// rank. Callers typically learn incoming sizes beforehand with a
// NeighborAlltoallInt64 count exchange, as the paper's NCL implementation
// does; this API nevertheless sizes receive buffers from the actual
// messages and the caller may cross-check.
func (t *Topo) NeighborAlltoallvInt64(send [][]int64) [][]int64 {
	return t.NeighborAlltoallvInt64Into(send, nil)
}

// NeighborAlltoallvInt64Into is NeighborAlltoallvInt64 receiving into a
// caller-supplied slice of per-neighbor buffers (allocated when nil).
// Each recv[i] is reset to length zero and appended to, so its capacity
// is reused; the possibly-regrown recv is returned. Transports keep one
// receive set across rounds so a steady-state exchange allocates nothing.
func (t *Topo) NeighborAlltoallvInt64Into(send, recv [][]int64) [][]int64 {
	if len(send) != len(t.neighbors) {
		panic(fmt.Sprintf("mpi: NeighborAlltoallvInt64: len(send)=%d, want degree %d", len(send), len(t.neighbors)))
	}
	if recv == nil {
		recv = make([][]int64, len(t.neighbors))
	} else if len(recv) != len(t.neighbors) {
		panic(fmt.Sprintf("mpi: NeighborAlltoallvInt64Into: len(recv)=%d, want degree %d", len(recv), len(t.neighbors)))
	}
	c := t.c
	cost := c.w.cost
	seq := t.seq
	t.seq++
	start := c.ps.now
	c.ps.rs.NbrCollCount++
	c.chargeComm(cost.AlphaNbrCall)
	var moved int64
	for i, nb := range t.neighbors {
		bytes := int64(8 * len(send[i]))
		moved += bytes
		c.chargeComm(cost.AlphaNbr + cost.BetaNbr*float64(bytes))
		c.internalSend(nb, t.itag(seq), send[i], cost.AlphaNbr, cost.BetaNbr, (*RankStats).noteNbrChunk)
	}
	for i, nb := range t.neighbors {
		recv[i] = c.internalRecvAppend(nb, t.itag(seq), recv[i])
	}
	c.event(EvNbrColl, -1, int(seq), moved, start)
	return recv
}

// NeighborAllgatherInt64 is MPI_Neighbor_allgather: every rank sends the
// same vector to all neighbors; the result's element i is neighbor i's
// vector.
func (t *Topo) NeighborAllgatherInt64(mine []int64) [][]int64 {
	send := make([][]int64, len(t.neighbors))
	for i := range send {
		send[i] = mine
	}
	return t.NeighborAlltoallvInt64(send)
}

// TopoStats summarizes a process graph: number of undirected edges, and
// degree distribution statistics, as reported in the paper's Tables III,
// IV and VI.
type TopoStats struct {
	Procs    int
	Edges    int64 // |Ep|: undirected process-graph edges
	DegMin   int
	DegMax   int     // dmax
	DegAvg   float64 // davg
	DegSigma float64 // sigma_d
}

// GatherTopoStats collectively computes process-graph statistics for the
// topology. Every member receives the result.
func (t *Topo) GatherTopoStats() TopoStats {
	c := t.c
	deg := int64(len(t.neighbors))
	sums := c.AllreduceInt64(OpSum, []int64{deg, deg * deg})
	maxs := c.AllreduceInt64(OpMax, []int64{deg})
	mins := c.AllreduceInt64(OpMin, []int64{deg})
	n := float64(c.size())
	avg := float64(sums[0]) / n
	variance := float64(sums[1])/n - avg*avg
	if variance < 0 {
		variance = 0
	}
	return TopoStats{
		Procs:    c.size(),
		Edges:    sums[0] / 2,
		DegMin:   int(mins[0]),
		DegMax:   int(maxs[0]),
		DegAvg:   avg,
		DegSigma: math.Sqrt(variance),
	}
}

// SortedNeighbors returns the neighbor list in ascending rank order
// (convenience for deterministic iteration in diagnostics).
func (t *Topo) SortedNeighbors() []int {
	out := append([]int(nil), t.neighbors...)
	sort.Ints(out)
	return out
}
