package mpi

import (
	"testing"
	"testing/quick"
)

func TestPutGetBasic(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		win := c.WinCreate(8)
		win.LockAll()
		if c.Rank() == 0 {
			win.Put(1, 2, []int64{10, 20, 30})
			win.FlushAll()
			c.Isend(1, 0, []int64{1}) // synchronize: tell target data is there
		} else {
			c.Recv(0, 0)
			local := win.Local()
			if local[2] != 10 || local[3] != 20 || local[4] != 30 {
				t.Errorf("window = %v", local)
			}
			if local[0] != 0 || local[5] != 0 {
				t.Errorf("put touched bytes outside its range: %v", local)
			}
		}
		win.UnlockAll()
		c.Barrier()
		if c.Rank() == 1 {
			got := win.Get(0, 0, 1)
			if got[0] != 0 {
				t.Errorf("get = %v, want fresh zeros", got)
			}
		}
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutVisibilityAcrossCountExchange(t *testing.T) {
	// The paper's RMA pattern: puts, flush, then a neighborhood count
	// exchange tells each target how many words landed.
	const p = 4
	_, err := runChecked(p, func(c *Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank(), p))
		deg := topo.Degree()
		const slot = 4 // words reserved per neighbor
		win := c.WinCreate(deg * slot)
		win.LockAll()

		// Each rank puts (rank, seq) pairs into the slot its target
		// reserved for it. The target's slot for us is at index
		// (their NeighborIndex of us) * slot — exchange those indexes
		// first, as the paper's prefix-sum/alltoall scheme does.
		mine := make([]int64, deg)
		for i := range topo.Neighbors() {
			mine[i] = int64(topo.NeighborIndex(topo.Neighbors()[i])) // our slot index for them, by construction i
			mine[i] = int64(i)
		}
		theirIdx := topo.NeighborAlltoallInt64(mine, 1)

		counts := make([]int64, deg)
		for i, nb := range topo.Neighbors() {
			n := int64(1 + (c.Rank()+nb)%3) // 1..3 words
			data := make([]int64, n)
			for k := range data {
				data[k] = int64(c.Rank()*100 + k)
			}
			win.Put(nb, int(theirIdx[i])*slot, data)
			counts[i] = n
		}
		win.FlushAll()
		incoming := topo.NeighborAlltoallInt64(counts, 1)

		local := win.Local()
		for i, nb := range topo.Neighbors() {
			n := int(incoming[i])
			want := 1 + (nb+c.Rank())%3
			if n != want {
				t.Errorf("rank %d: count from %d = %d, want %d", c.Rank(), nb, n, want)
			}
			for k := 0; k < n; k++ {
				if local[i*slot+k] != int64(nb*100+k) {
					t.Errorf("rank %d: word %d from %d = %d", c.Rank(), k, nb, local[i*slot+k])
				}
			}
		}
		win.UnlockAll()
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateAndFetchAndAdd(t *testing.T) {
	const p = 4
	rep, err := runChecked(p, func(c *Comm) error {
		win := c.WinCreate(2)
		win.LockAll()
		// Everyone accumulates into rank 0's first word.
		win.Accumulate(0, 0, []int64{int64(c.Rank() + 1)})
		win.FlushAll()
		c.Barrier()
		if c.Rank() == 0 {
			if got := win.Local()[0]; got != 10 {
				t.Errorf("accumulate sum = %d, want 10", got)
			}
		}
		// FetchAndAdd hands out disjoint tickets.
		old := win.FetchAndAdd(0, 1, 1)
		all := c.AllgatherInt64([]int64{old})
		if c.Rank() == 0 {
			seen := map[int64]bool{}
			for _, v := range all {
				if seen[v[0]] {
					t.Errorf("duplicate ticket %d", v[0])
				}
				seen[v[0]] = true
			}
		}
		win.UnlockAll()
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var atomics int64
	for _, rs := range rep.Stats {
		atomics += rs.AtomicCount
	}
	if atomics != 2*p {
		t.Errorf("atomic ops = %d, want %d", atomics, 2*p)
	}
}

func TestCompareAndSwap(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		win := c.WinCreate(1)
		if c.Rank() == 0 {
			if old := win.CompareAndSwap(0, 0, 0, 42); old != 0 {
				t.Errorf("first CAS old = %d", old)
			}
			if old := win.CompareAndSwap(0, 0, 0, 99); old != 42 {
				t.Errorf("failed CAS should return current 42, got %d", old)
			}
			if got := win.Local()[0]; got != 42 {
				t.Errorf("failed CAS must not write; got %d", got)
			}
		}
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutBoundsPanics(t *testing.T) {
	_, err := runChecked(2, func(c *Comm) error {
		win := c.WinCreate(4)
		if c.Rank() == 0 {
			win.Put(1, 3, []int64{1, 2}) // overruns the 4-word window
		}
		win.Free()
		return nil
	})
	if err == nil {
		t.Fatal("out-of-bounds put must fail the run")
	}
}

func TestWindowMemoryAccounted(t *testing.T) {
	rep, err := runChecked(2, func(c *Comm) error {
		win := c.WinCreate(1000)
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rs := range rep.Stats {
		if rs.AllocHighWater != 8000 {
			t.Errorf("rank %d window high-water = %d, want 8000", r, rs.AllocHighWater)
		}
		if rs.AllocCurrent != 0 {
			t.Errorf("rank %d leaked %d buffer bytes", r, rs.AllocCurrent)
		}
	}
}

func TestFlushDrainsPendingTime(t *testing.T) {
	// Flushing after large puts must cost more than flushing after none.
	run := func(words int) float64 {
		rep, err := runChecked(2, func(c *Comm) error {
			win := c.WinCreate(words + 1)
			if c.Rank() == 0 {
				if words > 0 {
					win.Put(1, 0, make([]int64, words))
				}
				win.FlushAll()
			}
			c.Barrier()
			win.Free()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats[0].CommTime
	}
	if big, small := run(1<<16), run(0); big <= small {
		t.Errorf("flush after 512KiB of puts (%g) should cost more than empty flush (%g)", big, small)
	}
}

func TestDifferentWindowSizesPerRank(t *testing.T) {
	_, err := runChecked(3, func(c *Comm) error {
		win := c.WinCreate((c.Rank() + 1) * 2)
		for r := 0; r < 3; r++ {
			if got, want := win.TargetSize(r), (r+1)*2; got != want {
				t.Errorf("TargetSize(%d) = %d, want %d", r, got, want)
			}
		}
		win.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAQuickPutGetIdentity(t *testing.T) {
	// Property: any vector put into a peer window and read back via Get
	// round-trips exactly.
	f := func(vals []int64) bool {
		if len(vals) > 256 {
			vals = vals[:256]
		}
		ok := true
		_, err := runChecked(2, func(c *Comm) error {
			win := c.WinCreate(len(vals) + 1)
			if c.Rank() == 0 {
				win.Put(1, 0, vals)
				win.FlushAll()
				got := win.Get(1, 0, len(vals))
				for i := range vals {
					if got[i] != vals[i] {
						ok = false
					}
				}
			}
			c.Barrier()
			win.Free()
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
