package mpi

import (
	"fmt"
	"math"
)

// This file implements distributed termination (quiescence) detection —
// the primitive an asynchronous engine needs where the round-structured
// engines use a per-round counting allreduce. A computation over a
// communicator is quiescent when every rank is passive (no local work)
// and no application message is in flight or queued unprocessed; an
// asynchronous protocol with data-dependent traffic cannot observe this
// locally, so the runtime provides Safra's token-ring algorithm (EWD
// 998) as a reusable detector.
//
// The detector rides on a private communicator obtained with Split —
// the same trick real MPI libraries use (MPI_Comm_dup) to keep library
// traffic out of the application's tag space, which matters doubly here
// because the application side of an asynchronous engine receives with
// (AnySource, AnyTag) wildcards that would otherwise swallow the token.
//
// Algorithm (token forwarded rank 0 -> 1 -> ... -> p-1 -> 0):
//
//   - every rank keeps a message-count deficit (records sent minus
//     records received, maintained by the application via NoteSend and
//     NoteRecv) and a color: receiving an application message makes a
//     rank black.
//   - rank 0, when first idle, launches a white token carrying an
//     accumulator of 0. A rank holding the token forwards it when idle,
//     adding its deficit to the accumulator, blackening the token if
//     the rank is black, and turning itself white.
//   - when the token returns to an idle rank 0, termination is
//     concluded iff the token is white, rank 0 is white, and the
//     accumulated deficit plus rank 0's own is zero. Otherwise a fresh
//     white token goes around.
//   - on conclusion rank 0 circulates a TERM message (carrying the
//     detection instant) once around the ring; every rank observes Done
//     after relaying it.
//
// Safety (no false termination) is Safra's invariant and holds under
// every legal reordering the runtime models: latency jitter and rank
// slowdowns only delay the token, and a blackened rank forces at least
// one more full circuit after any receive. Forced Iprobe misses
// (sched.Rank.ForceMiss) are bounded, and the blocking paths (Block,
// Quiesce) are never forced to miss, so a quiescent system is always
// detected after at most two further circuits: guaranteed progress.

// Detector messages travel on the private communicator under these tags.
const (
	quiesceTokenTag = 0 // payload: {accumulated deficit, token color}
	quiesceTermTag  = 1 // payload: {detection instant, as float bits}
)

// Quiesce is a distributed termination detector for one communicator.
// Construction is collective; afterwards each rank drives its own
// detector from its protocol loop:
//
//	NoteSend(n) / NoteRecv(n)  account application records
//	Idle()                     nonblocking: pass the token on, conclude
//	Block()                    sleep until app or detector traffic
//	Quiesce()                  blocking drive once app traffic is done
//
// The intended engine loop is: drain application messages (counting
// them), do local work, and when both run dry call Idle; if Idle does
// not report termination, Block and go around again. A rank must call
// Idle before Block — Idle is where a held token is released, and a
// rank sleeping on the token would stall the ring.
type Quiesce struct {
	app  *Comm // application communicator being monitored
	tok  *Comm // private detector communicator (nil when p == 1)
	p    int
	rank int
	prev int // ring predecessor (tokens arrive from it)
	next int // ring successor (tokens leave toward it)

	deficit int64 // application records sent minus received
	black   bool  // received an application record since last hand-off

	holding  bool  // this rank holds the token
	tokAccum int64 // held token's accumulated deficit
	tokBlack bool  // held token's color
	started  bool  // rank 0: first token launched

	done       bool
	detectedAt float64 // virtual instant of rank 0's conclusion
	circuits   int64   // completed token circuits (rank 0 only)

	buf [2]int64 // send/receive scratch for detector payloads
}

// NewQuiesce builds a detector over c. The call is collective: it
// splits a private communicator for the detector's traffic (no-op in a
// single-rank world, where quiescence is a local condition).
func NewQuiesce(c *Comm) *Quiesce {
	q := &Quiesce{app: c, p: c.Size(), rank: c.Rank(), detectedAt: -1}
	if q.p > 1 {
		q.tok = c.Split(0, c.Rank())
		q.prev = (q.rank + q.p - 1) % q.p
		q.next = (q.rank + 1) % q.p
	}
	return q
}

// NoteSend accounts n application records this rank has sent (or
// irrevocably queued for transmission). Must be called no later than
// the send itself — counting before the message can possibly be
// received is what makes the deficit sum a safe in-flight bound.
func (q *Quiesce) NoteSend(n int) { q.deficit += int64(n) }

// NoteRecv accounts n application records this rank has received and
// processed, and blackens the rank: any receive since the last token
// hand-off invalidates the current circuit, forcing another one.
func (q *Quiesce) NoteRecv(n int) {
	q.deficit -= int64(n)
	q.black = true
}

// Done reports whether global termination has been detected.
func (q *Quiesce) Done() bool { return q.done }

// DetectedAt returns the virtual time at which rank 0 concluded
// termination — identical on every rank (it travels in the TERM
// message) — or -1 before detection.
func (q *Quiesce) DetectedAt() float64 { return q.detectedAt }

// Circuits returns how many full token circuits rank 0 has observed
// (diagnostic; 0 on other ranks).
func (q *Quiesce) Circuits() int64 { return q.circuits }

// Idle drives the detector from a locally idle rank without blocking:
// it launches or relays the token, consumes any detector traffic that
// has arrived, and reports whether global termination is detected. The
// caller must be passive — no unprocessed application records it
// intends to handle and no local work — though a message that slips in
// concurrently only costs an extra circuit, never a false positive
// (the in-flight record keeps the deficit sum nonzero).
func (q *Quiesce) Idle() bool {
	for !q.done {
		if q.p == 1 {
			// Single-rank world: quiescence is local. A nonzero deficit
			// means self-addressed records are still queued.
			if q.deficit == 0 {
				q.conclude()
			}
			return q.done
		}
		if q.rank == 0 && !q.started {
			q.launch()
			continue
		}
		if q.holding {
			q.handOff()
			continue
		}
		// Nonblocking check for the token or TERM. A forced Iprobe miss
		// is safe: the caller's Block wakes on the same message and the
		// next Idle retries, and misses are bounded.
		if ok, _ := q.tok.Iprobe(q.prev, AnyTag); !ok {
			return false
		}
		q.recvDetector()
	}
	return true
}

// Block parks the rank until an application message (any source, any
// tag) or detector traffic is available, whichever exists first. Like a
// blocking Probe it charges one probe overhead and books the stall as a
// late-sender wait; it is never forced to miss. Poisoned worlds unwind
// with the standard peer-failure panic, so a rank parked here exits
// cleanly on deadline or peer-error teardown.
func (q *Quiesce) Block() {
	if q.done {
		return
	}
	if q.holding {
		panic("mpi: Quiesce.Block called while holding the token; call Idle first")
	}
	c := q.app
	start := c.ps.now
	c.chargeComm(c.w.cost.ProbeOverhead)
	c.ps.rs.ProbeCount++
	mb := c.mbox()
	mb.mu.Lock()
	var m *message
	for {
		if m = mb.matchUserLocked(AnySource, AnyTag, c.ctx, false, c.ps.now); m != nil {
			break
		}
		if q.tok != nil {
			if m = mb.matchUserLocked(q.prev, AnyTag, q.tok.ctx, false, c.ps.now); m != nil {
				break
			}
		}
		if mb.poisoned {
			mb.mu.Unlock()
			panic("mpi: quiescence wait aborted: a peer rank failed")
		}
		mb.parkLocked(c.ps.task)
	}
	mb.mu.Unlock()
	c.ps.rs.ProbeHits++
	c.waitFor(m.arrive, WaitLateSender, c.worldRank(m.src), m.sent)
	if c.ps.ev != nil {
		c.event(EvProbe, c.worldRank(m.src), m.tag, m.bytes, start)
	}
}

// Quiesce drives the detector to conclusion using only blocking,
// exact-source operations and returns the detection instant. It is for
// ranks that have finished every application send AND receive they will
// ever perform (a counted protocol's end, a test harness): under that
// contract the detection instant is a pure function of the virtual
// timeline — bit-identical across scheduler modes and GOMAXPROCS.
// Engines with data-dependent traffic must use Idle/Block instead: a
// rank inside Quiesce no longer watches application traffic.
func (q *Quiesce) Quiesce() float64 {
	if q.p == 1 {
		if q.deficit != 0 {
			panic(fmt.Sprintf("mpi: Quiesce on a single-rank world with deficit %d: self-addressed records can never be received", q.deficit))
		}
		if !q.done {
			q.conclude()
		}
		return q.detectedAt
	}
	for !q.done {
		if q.rank == 0 && !q.started {
			q.launch()
			continue
		}
		if q.holding {
			q.handOff()
			continue
		}
		q.recvDetector()
	}
	return q.detectedAt
}

// launch sends the first white token (rank 0 only). Launching is a
// hand-off: rank 0 turns white.
func (q *Quiesce) launch() {
	q.started = true
	q.black = false
	q.sendToken(0, false)
}

// handOff releases a held token from an idle rank: relay with this
// rank's contribution folded in, or — back at rank 0 — test Safra's
// conclusion predicate and either finish or start a fresh circuit.
func (q *Quiesce) handOff() {
	q.holding = false
	if q.rank == 0 {
		q.circuits++
		if !q.tokBlack && !q.black && q.tokAccum+q.deficit == 0 {
			q.conclude()
			return
		}
		q.launch()
		return
	}
	q.sendToken(q.tokAccum+q.deficit, q.tokBlack || q.black)
	q.black = false
}

// conclude records detection and, in multi-rank worlds, circulates the
// TERM message once around the ring.
func (q *Quiesce) conclude() {
	q.done = true
	q.detectedAt = q.app.Now()
	if q.tok != nil {
		q.buf[0] = int64(math.Float64bits(q.detectedAt))
		q.tok.Isend(q.next, quiesceTermTag, q.buf[:1])
	}
}

// sendToken forwards the token with the given accumulator and color.
func (q *Quiesce) sendToken(accum int64, black bool) {
	q.buf[0] = accum
	q.buf[1] = 0
	if black {
		q.buf[1] = 1
	}
	q.tok.Isend(q.next, quiesceTokenTag, q.buf[:2])
}

// recvDetector blocks for one detector message from the ring
// predecessor and applies it: tokens are held for the next hand-off,
// TERM is relayed (short of rank 0, which originated it) and finishes
// this rank.
func (q *Quiesce) recvDetector() {
	_, st := q.tok.RecvInto(q.prev, AnyTag, q.buf[:])
	switch st.Tag {
	case quiesceTokenTag:
		q.tokAccum, q.tokBlack = q.buf[0], q.buf[1] != 0
		q.holding = true
	case quiesceTermTag:
		q.done = true
		q.detectedAt = math.Float64frombits(uint64(q.buf[0]))
		if q.next != 0 {
			q.tok.Isend(q.next, quiesceTermTag, q.buf[:1])
		}
	default:
		panic(fmt.Sprintf("mpi: unexpected detector tag %d", st.Tag))
	}
}
