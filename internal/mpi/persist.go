package mpi

import "fmt"

// PersistentNbr is a persistent neighborhood all-to-all-v schedule, the
// analogue of MPI-4's MPI_Neighbor_alltoallv_init: the exchange plan —
// peer set, tag layout, per-neighbor cost structure — is derived once
// from the topology when the operation is initialized, and every
// subsequent Start/WaitInto round reuses it. Rounds in this repository's
// drivers are isomorphic by construction (the same neighbors exchange
// every round, only volumes vary), which is exactly the case persistent
// collectives exist for: a Start pays only the reduced AlphaNbrStart
// doorbell instead of the full AlphaNbrCall schedule setup.
//
// Usage mirrors MPI persistent requests: Init once, then any number of
// Start/WaitInto pairs. Start while a round is in flight, or WaitInto
// without a Start, panic — the same misuse MPI defines as erroneous.
// Like the nonblocking form, receive buffers are sized from the arriving
// messages, modeling preposted maximum-size buffers (valid whenever the
// application can bound per-neighbor volume).
type PersistentNbr struct {
	t        *Topo
	seq      int64 // topo sequence of the in-flight round
	inflight bool
}

// NeighborAlltoallvInit prepares a persistent neighborhood all-to-all-v
// over the topology. The call is collective over the topology's members
// (every member must create the operation in the same order relative to
// other collectives on the same topo) and charges the one-time schedule
// setup; each Start then pays only AlphaNbrStart.
func (t *Topo) NeighborAlltoallvInit() *PersistentNbr {
	// The schedule derivation — the work AlphaNbrCall models per call —
	// is paid here, once.
	t.c.chargeComm(t.c.w.cost.AlphaNbrCall)
	return &PersistentNbr{t: t}
}

// Start begins one round of the persistent exchange: send[i] is
// delivered to neighbor i. The injection cost is charged at start;
// transit overlaps with whatever the caller does before WaitInto. The
// runtime copies payloads, so the caller may reuse send buffers
// immediately after Start returns.
func (p *PersistentNbr) Start(send [][]int64) {
	if p.inflight {
		panic("mpi: PersistentNbr.Start while a round is in flight")
	}
	t := p.t
	if len(send) != len(t.neighbors) {
		panic(fmt.Sprintf("mpi: PersistentNbr.Start: len(send)=%d, want degree %d", len(send), len(t.neighbors)))
	}
	c := t.c
	cost := c.w.cost
	p.seq = t.seq
	t.seq++
	p.inflight = true
	start := c.ps.now
	c.ps.rs.NbrCollCount++
	c.chargeComm(cost.AlphaNbrStart)
	var sent int64
	for i, nb := range t.neighbors {
		bytes := int64(8 * len(send[i]))
		sent += bytes
		c.chargeComm(cost.AlphaNbr + cost.BetaNbr*float64(bytes))
		c.internalSend(nb, t.itag(p.seq), send[i], cost.AlphaNbr, cost.BetaNbr, (*RankStats).noteNbrChunk)
	}
	c.event(EvNbrStart, -1, int(p.seq), sent, start)
}

// Wait completes the in-flight round, returning the neighbors'
// contributions in neighbor order.
func (p *PersistentNbr) Wait() [][]int64 {
	return p.WaitInto(nil)
}

// WaitInto completes the in-flight round, receiving into a
// caller-supplied slice of per-neighbor buffers (allocated when nil).
// Each recv[i] is reset to length zero and appended to, reusing its
// capacity; the possibly-regrown recv is returned. Unlike a nonblocking
// request, the operation stays valid: the next Start reuses the same
// schedule.
func (p *PersistentNbr) WaitInto(recv [][]int64) [][]int64 {
	if !p.inflight {
		panic("mpi: PersistentNbr.Wait without a started round")
	}
	p.inflight = false
	t := p.t
	c := t.c
	if recv == nil {
		recv = make([][]int64, len(t.neighbors))
	} else if len(recv) != len(t.neighbors) {
		panic(fmt.Sprintf("mpi: PersistentNbr.WaitInto: len(recv)=%d, want degree %d", len(recv), len(t.neighbors)))
	}
	start := c.ps.now
	var got int64
	for i, nb := range t.neighbors {
		recv[i] = c.internalRecvAppend(nb, t.itag(p.seq), recv[i])
		got += int64(8 * len(recv[i]))
	}
	c.event(EvNbrWait, -1, int(p.seq), got, start)
	return recv
}
