package mpi

import (
	"strings"
	"testing"
	"time"
)

func TestWaitSpansRecorded(t *testing.T) {
	rep, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(100000) // keep rank 1 waiting
			c.Isend(1, 0, []int64{1})
		} else {
			c.Recv(0, 0)
		}
		return nil
	}, WithWaitTrace(), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if w := rep.TotalWaitTime(1); w <= 0 {
		t.Fatalf("receiver recorded no wait (%g)", w)
	}
	if w := rep.TotalWaitTime(0); w != 0 {
		t.Fatalf("busy sender recorded a wait (%g)", w)
	}
	spans := rep.WaitSpans(1)
	if len(spans) == 0 || spans[0].Duration() <= 0 {
		t.Fatalf("spans = %v", spans)
	}
}

func TestRenderTimeline(t *testing.T) {
	rep, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(100000)
			c.Isend(1, 0, []int64{1})
		} else {
			c.Recv(0, 0)
		}
		return nil
	}, WithWaitTrace(), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	lines := rep.RenderTimeline(40)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[1], "#") {
		t.Errorf("waiting rank shows no wait marks: %q", lines[1])
	}
	if strings.Contains(lines[0], "#") {
		t.Errorf("busy rank shows wait marks: %q", lines[0])
	}
}

func TestTimelineDisabledWithoutTrace(t *testing.T) {
	rep, err := Run(1, func(c *Comm) error { c.Compute(10); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.RenderTimeline(10) != nil || rep.WaitSpans(0) != nil {
		t.Error("tracing data present without TraceWaits")
	}
}
