package mpi

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Steady-state memory footprint of a pooled world. The measurement
// protocol matters: sync.Pool drops its contents after two GC cycles
// (the victim cache survives one), so the skeleton is pulled out of the
// pool with acquireWorldState and held across the final GC, and the
// Report (whose stats ledgers legitimately outlive the run) is dropped
// first. What remains is the recyclable per-rank state a resident world
// pins between runs: mailboxes with their retained buckets and rings,
// tasks, comms, procState, and the collective hub.

// footprintBody is the workload that populates the skeleton: the same
// 4-round ring exchange + scalar allreduce as BenchmarkRanksRing, so
// every mailbox ends the run with its steady-state bucket and ring
// complement.
func footprintBody(c *Comm) error {
	r, n := c.Rank(), c.Size()
	for k := 0; k < 4; k++ {
		c.Isend((r+1)%n, 0, []int64{int64(r), int64(k)})
		c.Recv((r+n-1)%n, 0)
	}
	c.AllreduceScalarInt64(OpMax, int64(r))
	return nil
}

// measureFootprint returns the steady-state live-heap bytes retained by
// a pooled n-rank world after two runs of footprintBody (the second run
// reuses the first's skeleton, so retained rings and buckets are at
// their steady state).
func measureFootprint(tb testing.TB, n int) (total int64, perRank float64) {
	tb.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC() // flush pool victims from earlier tests
	runtime.ReadMemStats(&before)
	for i := 0; i < 2; i++ {
		rep, err := Run(n, footprintBody, WithDeadline(5*time.Minute))
		if err != nil {
			tb.Fatal(err)
		}
		_ = rep // dropped before the final GC: ledgers outlive runs by design
	}
	ws := acquireWorldState(n) // pin the skeleton so GC cannot drop it
	if ws.n != n {
		tb.Fatalf("pooled skeleton lost before measurement (got size %d, want %d)", ws.n, n)
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	releaseWorldState(ws)
	total = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if total < 0 {
		total = 0
	}
	return total, float64(total) / float64(n)
}

// BenchmarkWorldFootprint reports steady-state bytes/rank for pooled
// worlds; the numbers are recorded in BENCH_p2p.json (world_footprint).
func BenchmarkWorldFootprint(b *testing.B) {
	for _, n := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("p%d", n), func(b *testing.B) {
			total, perRank := measureFootprint(b, n)
			b.ReportMetric(perRank, "bytes/rank")
			b.ReportMetric(float64(total)/(1<<20), "MB-total")
			for i := 0; i < b.N; i++ {
				// The measurement is one-shot; iterations are no-ops so
				// -benchtime does not multiply multi-second world runs.
			}
		})
	}
}

// footprintCeiling16K is the regression gate asserted by
// TestWorldFootprintCeiling16K: the measured steady-state bytes/rank at
// 16K ranks (1294, recorded in BENCH_p2p.json world_footprint) plus 25%
// headroom. Raise it only with a BENCH_p2p.json re-measurement
// justifying the growth.
const footprintCeiling16K = 1620

// TestWorldFootprintCeiling16K guards the per-rank memory diet: a
// pooled 16K-rank world must retain at most footprintCeiling16K bytes
// per rank between runs. Part of make scale-smoke.
func TestWorldFootprintCeiling16K(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates heap bookkeeping; footprint gate runs in the non-race suite")
	}
	if testing.Short() {
		t.Skip("multi-second 16K-rank measurement; skipped under -short")
	}
	const n = 16384
	total, perRank := measureFootprint(t, n)
	t.Logf("steady-state footprint at %d ranks: %d bytes total, %.1f bytes/rank", n, total, perRank)
	if perRank > footprintCeiling16K {
		t.Fatalf("steady-state footprint %.1f bytes/rank exceeds ceiling %d (memory diet regression)", perRank, footprintCeiling16K)
	}
}
