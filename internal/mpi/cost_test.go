package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	m := DefaultCostModel()
	m.AlphaP2P = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative parameter must fail validation")
	}
}

func TestScale(t *testing.T) {
	m := DefaultCostModel()
	s := m.Scale(2)
	if s.AlphaP2P != 2*m.AlphaP2P || s.ComputePerUnit != 2*m.ComputePerUnit {
		t.Errorf("Scale(2) did not double parameters")
	}
	if m.AlphaP2P == s.AlphaP2P {
		t.Error("Scale must not mutate the receiver")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCollCostMonotone(t *testing.T) {
	m := DefaultCostModel()
	if m.collCost(16, 100) >= m.collCost(256, 100) {
		t.Error("collective cost must grow with rank count")
	}
	if m.collCost(16, 100) >= m.collCost(16, 1<<20) {
		t.Error("collective cost must grow with payload")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	_, err := testRun(1, func(c *Comm) error {
		t0 := c.Now()
		c.Compute(1000)
		want := t0 + 1000*c.Cost().ComputePerUnit
		if math.Abs(c.Now()-want) > 1e-15 {
			t.Errorf("clock = %g, want %g", c.Now(), want)
		}
		if c.Stats().CompTime <= 0 {
			t.Error("compute time not booked")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoreMessagesCostMoreVirtualTime(t *testing.T) {
	// Per-message alpha must make N small messages cost more than one
	// message carrying the same bytes — the root cause of NSR's
	// disadvantage versus aggregated NCL in the paper.
	run := func(msgs, words int) float64 {
		rep, err := testRun(2, func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					c.Isend(1, 0, make([]int64, words))
				}
			} else {
				for i := 0; i < msgs; i++ {
					c.Recv(0, 0)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxVirtualTime
	}
	many := run(1000, 1)
	one := run(1, 1000)
	if many <= 5*one {
		t.Errorf("1000 single-word messages (%g) should cost far more than one 1000-word message (%g)", many, one)
	}
}

func TestVirtualTimeNonNegativeQuick(t *testing.T) {
	f := func(units uint16) bool {
		rep, err := Run(2, func(c *Comm) error {
			c.Compute(float64(units))
			c.Barrier()
			return nil
		})
		return err == nil && rep.MaxVirtualTime >= 0 && rep.TotalVirtualTime >= rep.MaxVirtualTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateTotals(t *testing.T) {
	rep, err := testRun(3, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 0, []int64{1, 2}) // 16 bytes
		}
		if c.Rank() == 1 {
			c.Recv(0, 0)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := Aggregate(rep.Stats)
	if tot.P2PMsgs != 1 || tot.P2PBytes != 16 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.CollOps != 3 {
		t.Errorf("coll ops = %d, want 3 (one barrier per rank)", tot.CollOps)
	}
	if tot.CommTimeSum <= 0 {
		t.Error("communication time not aggregated")
	}
}
