package mpi

import (
	"fmt"
	"sort"
)

// Split partitions the communicator into disjoint sub-communicators, the
// analogue of MPI_Comm_split: ranks passing the same color land in the
// same new communicator, ordered by (key, old rank). A negative color
// (like MPI_UNDEFINED) returns nil, and the caller takes no further part
// in any of the new communicators.
//
// The call is collective over c. The returned communicator shares the
// process's clock and statistics ledger with c but has its own rank
// numbering, collective rendezvous, and isolated point-to-point message
// space: traffic on one communicator can never be received on another.
func (c *Comm) Split(color, key int) *Comm {
	// Gather (color, key, commRank) from every member.
	all := c.AllgatherInt64([]int64{int64(color), int64(key), int64(c.rank)})

	// Allocate ctx ids and hubs once (lowest member of each color group),
	// and publish them through this communicator's hub so all members of
	// a group agree on identity and share one rendezvous structure.
	type member struct{ color, key, rank int }
	members := make([]member, len(all))
	for i, v := range all {
		members[i] = member{int(v[0]), int(v[1]), int(v[2])}
	}
	if color < 0 {
		// Still participate in the publication rendezvous below.
		_, _, tmax, last := c.enterColl(nil)
		c.exitColl(tmax, last, 8)
		return nil
	}

	// Deterministic group construction, identical on every member.
	var group []member
	for _, m := range members {
		if m.color == color {
			group = append(group, m)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	leader := group[0].rank
	myRank := -1
	worldGroup := make([]int, len(group))
	for i, m := range group {
		worldGroup[i] = c.worldRank(m.rank)
		if m.rank == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		panic("mpi: Split: caller missing from its own color group")
	}

	// The group leader allocates the context id and the hub; everyone
	// else picks them up from the publication slot keyed by leader rank.
	type subComm struct {
		ctx int32
		hub *collHub
	}
	var mine *subComm
	h, _, tmax, last := c.enterColl(func(h *collHub, _ int) {
		h.ensureAdeps()
		if c.rank == leader {
			c.w.ctxMu.Lock()
			c.w.ctxSeq++
			ctx := c.w.ctxSeq
			c.w.ctxMu.Unlock()
			sub := &subComm{ctx: ctx, hub: newCollHub(len(group))}
			// Register the sub-hub so World.poison can flag it: a rank
			// parked in a sub-communicator collective must observe the
			// teardown too.
			c.w.hubMu.Lock()
			c.w.hubs = append(c.w.hubs, sub.hub)
			c.w.hubMu.Unlock()
			h.adeps[c.rank] = sub
		}
	})
	v, ok := h.adeps[leader].(*subComm)
	if !ok {
		panic(fmt.Sprintf("mpi: Split: leader %d published nothing", leader))
	}
	mine = v
	c.exitColl(tmax, last, 8)

	return &Comm{
		w:     c.w,
		wrank: c.wrank,
		rank:  myRank,
		group: worldGroup,
		hub:   mine.hub,
		ctx:   mine.ctx,
		ps:    c.ps,
	}
}
