package mpi

import (
	"fmt"
	"strings"
)

// Wait-span tracing. When Config.TraceWaits is set, every rank records
// the virtual-time intervals it spends blocked waiting for remote
// progress (message arrivals, collective synchronization). The resulting
// per-rank timelines make load imbalance and serialization chains — the
// phenomena behind the paper's NCL-degradation findings — directly
// visible.

// WaitSpan is one blocked interval on a rank's virtual timeline.
type WaitSpan struct {
	Start, End float64
}

// Duration returns the span length in seconds.
func (s WaitSpan) Duration() float64 { return s.End - s.Start }

// noteWait records a wait if tracing is on (called from waitUntil).
func (c *Comm) noteWait(from, to float64) {
	if c.ps.trace != nil && to > from {
		*c.ps.trace = append(*c.ps.trace, WaitSpan{Start: from, End: to})
	}
}

// WaitSpans returns rank r's recorded waits (nil unless Config.TraceWaits
// was set). Safe to call after Run returns.
func (r *Report) WaitSpans(rank int) []WaitSpan {
	if r.waits == nil {
		return nil
	}
	return r.waits[rank]
}

// RenderTimeline draws per-rank virtual-time utilization as text: each
// row is one rank, each column a bucket of the run's duration; '#' marks
// buckets dominated by waiting, ':' mixed, '.' busy. Requires a run with
// Config.TraceWaits.
func (r *Report) RenderTimeline(width int) []string {
	if r.waits == nil || width < 1 || r.MaxVirtualTime <= 0 {
		return nil
	}
	bucket := r.MaxVirtualTime / float64(width)
	out := make([]string, r.Procs)
	for rank := 0; rank < r.Procs; rank++ {
		waitPerBucket := make([]float64, width)
		for _, s := range r.waits[rank] {
			for b := int(s.Start / bucket); b < width && float64(b)*bucket < s.End; b++ {
				lo := max(float64(b)*bucket, s.Start)
				hi := min(float64(b+1)*bucket, s.End)
				if hi > lo {
					waitPerBucket[b] += hi - lo
				}
			}
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "rank %3d |", rank)
		for b := 0; b < width; b++ {
			frac := waitPerBucket[b] / bucket
			switch {
			case frac > 0.66:
				sb.WriteByte('#')
			case frac > 0.15:
				sb.WriteByte(':')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('|')
		out[rank] = sb.String()
	}
	return out
}

// TotalWaitTime sums rank r's recorded waits.
func (r *Report) TotalWaitTime(rank int) float64 {
	var t float64
	for _, s := range r.WaitSpans(rank) {
		t += s.Duration()
	}
	return t
}
