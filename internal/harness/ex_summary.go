package harness

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

func init() {
	register(&Experiment{
		ID:    "tab7",
		Title: "Best speedup over the Send-Recv baseline per input",
		Paper: "best variants: NCL 2-6x (RGG, cage15, HV15R, Orkut), RMA 1.4-4.45x (k-mer, Friendster, larger R-MAT)",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab7", Title: "Versions yielding the best performance over NSR",
				Headers: []string{"category", "input", "best speedup", "version"}}
			type input struct {
				cat, name string
				g         *graph.CSR
				procs     []int
			}
			std := []int{cfg.scaledProcs(16), cfg.scaledProcs(32)}
			inputs := []input{
				{"RGG", "rgg-weak", cfg.rggWeak(cfg.scaledProcs(16)), std},
				{"Graph500", "rmat-weak", cfg.rmatWeak(cfg.scaledProcs(16)), std},
				{"Social", "orkut", cfg.orkut(), std},
				{"Social", "friendster", cfg.friendster(), std},
				{"Mesh", "cage15(RCM)", cfg.rcmOf("cage15-analogue", cfg.cage15()), std},
				{"Mesh", "hv15r(RCM)", cfg.rcmOf("hv15r-analogue", cfg.hv15r()), std},
			}
			for _, k := range cfg.kmerInputs() {
				inputs = append(inputs, input{"K-mer", k.Name, k.G, std})
			}
			for _, in := range inputs {
				best, bestName := 0.0, "-"
				for _, p := range in.procs {
					cfg.logf("tab7: %s p=%d", in.name, p)
					var nsr float64
					for _, m := range cfg.models(scalingModels) {
						res, err := cfg.match(in.name, in.g, p, m, false)
						if err != nil {
							return nil, fmt.Errorf("%s/%v: %w", in.name, m, err)
						}
						tm := res.Report.MaxVirtualTime
						if m == matching.NSR {
							nsr = tm
							continue
						}
						if s := nsr / tm; s > best {
							best, bestName = s, m.String()
						}
					}
				}
				t.AddRow(in.cat, in.name, fmt.Sprintf("%.2fx", best), bestName)
			}
			t.Notes = append(t.Notes, "expected shape: every non-SBP input has best speedup > 1 with RMA or NCL winning")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig10",
		Title: "Performance profiles of NSR/RMA/NCL over the input suite",
		Paper: "RMA consistently best, NCL close behind, NSR up to 6x slower yet competitive on ~10% of inputs",
		Run: func(cfg Config) ([]*Table, error) {
			models := cfg.models(scalingModels)
			times := map[string][]float64{}
			for _, m := range models {
				times[m.String()] = nil
			}
			count := 0
			for _, in := range cfg.profileInputs() {
				for _, p := range []int{cfg.scaledProcs(8), cfg.scaledProcs(16), cfg.scaledProcs(32)} {
					cfg.logf("fig10: %s p=%d", in.Name, p)
					for _, m := range models {
						res, err := cfg.match(in.Name, in.G, p, m, false)
						if err != nil {
							return nil, fmt.Errorf("%s/p=%d/%v: %w", in.Name, p, m, err)
						}
						times[m.String()] = append(times[m.String()], res.Report.MaxVirtualTime)
					}
					count++
				}
			}
			curves, err := metrics.Profiles(times)
			if err != nil {
				return nil, err
			}
			t := &Table{ID: "fig10", Title: fmt.Sprintf("performance profiles over %d (input, p) configurations", count),
				Headers: []string{"scheme", "frac@tau=1", "tau=1.25", "tau=1.5", "tau=2", "tau=4", "area(4)"}}
			for _, c := range curves {
				t.AddRow(c.Name,
					f3(c.FracWithin(1)), f3(c.FracWithin(1.25)), f3(c.FracWithin(1.5)),
					f3(c.FracWithin(2)), f3(c.FracWithin(4)), f3(c.AreaScore(4)))
			}
			t.Notes = append(t.Notes, "expected shape: RMA/NCL curves hug the left axis; NSR wins a small fraction (the SBP-like cases)")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "tab8",
		Title: "Power, energy and memory usage per communication model",
		Paper: "NCL lowest memory (1.03-2.3x below NSR); NSR burns ~4x the energy of NCL/RMA on Friendster; RMA/NCL show higher MPI%% due to the global exit reduction",
		Run: func(cfg Config) ([]*Table, error) {
			em := metrics.DefaultEnergyModel()
			em.CoresPerNode = max(2, cfg.scaledProcs(32))
			t := &Table{ID: "tab8", Title: "Power/energy and memory on " + fmt.Sprint(cfg.scaledProcs(32)) + " processes",
				Headers: []string{"input", "ver", "mem(MB/proc)", "energy(kJ)", "power(kW)", "comp%", "mpi%", "EDP"}}
			p := cfg.scaledProcs(32)
			for _, in := range []struct {
				name string
				g    *graph.CSR
			}{
				{"friendster-analogue", cfg.friendster()},
				{"sbp", cfg.sbpWeak(cfg.scaledProcs(16))},
				{"hv15r-analogue", cfg.hv15r()},
			} {
				d := distgraph.NewBlockDist(in.g, p)
				extra := make([]int64, p)
				for r := 0; r < p; r++ {
					extra[r] = d.BuildLocal(r).MemoryModelBytes()
				}
				for _, m := range cfg.models(scalingModels) {
					cfg.logf("tab8: %s %v", in.name, m)
					res, err := cfg.match(in.name, in.g, p, m, false)
					if err != nil {
						return nil, err
					}
					rep := em.Evaluate(res.Report, extra)
					t.AddRow(in.name, m.String(), f2(rep.MemMBPerProc), fmt.Sprintf("%.4g", rep.EnergyKJ),
						fmt.Sprintf("%.4g", rep.AvgPowerKW), f2(rep.CompPct), f2(rep.MPIPct), fmt.Sprintf("%.3g", rep.EDP))
				}
			}
			t.Notes = append(t.Notes,
				"expected shape: NSR rows carry the largest memory (eager queue high-water) on social inputs;",
				"energy tracks runtime, so whichever model wins fig4-6 wins here; RMA/NCL mpi%% exceeds NSR's")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig2",
		Title: "Send-Recv invocation matrices: matching vs Graph500 BFS",
		Paper: "matching traffic is denser and less structured than BFS's frontier exchanges on the same R-MAT input",
		Run: func(cfg Config) ([]*Table, error) {
			return commMatrixTables(cfg, "fig2", false)
		},
	})

	register(&Experiment{
		ID:    "fig11",
		Title: "Byte-volume matrices: matching vs Graph500 BFS",
		Paper: "matching exhibits dynamic, unpredictable volume versus BFS's level-synchronous pattern",
		Run: func(cfg Config) ([]*Table, error) {
			return commMatrixTables(cfg, "fig11", true)
		},
	})
}

// commMatrixTables renders matching-vs-BFS communication matrices; bytes
// selects byte volume (fig11, both sides on one R-MAT input) versus
// message counts (fig2, which like the paper profiles matching on the
// Friendster analogue against Graph500 BFS on R-MAT).
func commMatrixTables(cfg Config, id string, bytes bool) ([]*Table, error) {
	p := cfg.scaledProcs(32)
	g := cfg.rmatWeak(cfg.scaledProcs(16))
	mg, mname := g, "rmat-weak"
	if !bytes {
		mg, mname = cfg.friendster(), "Friendster-analogue"
	}
	mres, err := cfg.match(mname, mg, p, matching.NSR, true)
	if err != nil {
		return nil, err
	}
	bres, err := bfs.Run(g, 0, bfs.Options{Procs: p, Cost: cfg.Cost, TrackMatrices: true, Deadline: cfg.Deadline, TraceEvents: cfg.TraceEvents, RoundLog: cfg.Rounds})
	if err != nil {
		return nil, err
	}
	cfg.observe(RunInfo{
		Label:     fmt.Sprintf("rmat-weak BFS p=%d |V|=%d", p, g.NumVertices()),
		App:       "bfs",
		Input:     "rmat-weak",
		Procs:     p,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Rounds:    bres.Levels,
		Report:    bres.Report,
		Telemetry: bres.Telemetry,
	})
	pick := (*mpi.Report).MsgMatrix
	unit := "messages"
	if bytes {
		pick = (*mpi.Report).ByteMatrix
		unit = "bytes"
	}
	a := matrixDensity(pick(mres.Report), min(24, p))
	b := matrixDensity(pick(bres.Report), min(24, p))
	t := &Table{ID: id, Title: fmt.Sprintf("%s exchanged on %d processes, matching |E|=%d vs BFS |E|=%d (left: matching, right: BFS)", unit, p, mg.NumEdges(), g.NumEdges()),
		Headers: []string{"half-approx matching", "Graph500 BFS"}}
	for i := range a {
		t.AddRow(a[i], b[i])
	}
	mt, bt := mres.Report.Totals(), bres.Report.Totals()
	t.AddRow(fmt.Sprintf("msgs=%d bytes=%d", mt.Msgs, mt.Bytes), fmt.Sprintf("msgs=%d bytes=%d", bt.Msgs, bt.Bytes))
	t.Notes = append(t.Notes, "expected shape: both dense for R-MAT, but matching's mass is distributed irregularly while BFS concentrates along frontier waves")
	return []*Table{t}, nil
}
