// Package harness regenerates every table and figure of the paper's
// evaluation section (§V) at laptop scale. Each experiment is a
// registry entry keyed by the paper's artifact id (fig4a, tab8, ...);
// running one produces text tables — the same rows or series the paper
// reports — annotated with the shape the paper observed so the output
// is self-checking. See DESIGN.md §5 for the full index.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Config scales and parameterizes experiment runs.
type Config struct {
	// Scale multiplies workload sizes; 1.0 is the default laptop scale
	// (graphs of 10^5..10^6 arcs, up to 64 simulated ranks). Benchmarks
	// use smaller scales to stay within testing.B budgets.
	Scale float64
	// Cost overrides the runtime cost model (nil = defaults).
	Cost *mpi.CostModel
	// Deadline per runtime launch (0 = none).
	Deadline time.Duration
	// Out receives progress and tables; nil discards progress output.
	Out io.Writer
	// Models restricts which communication models the model-comparison
	// experiments exercise (nil = each experiment's default set). The
	// filter preserves the experiment's ordering; an empty intersection
	// falls back to the defaults so fixed-column experiments stay valid.
	Models []matching.Model
	// Engine selects the matching protocol family every matching launch
	// uses (matchbench -engine). The zero value is the paper's
	// half-approximate locally-dominant protocol; EngineMaximal swaps in
	// the asynchronous maximal-matching engine (DESIGN §4f). The
	// ext-async experiment ignores it — it compares engines explicitly.
	Engine matching.Engine
	// TraceEvents, when > 0, enables structured event tracing on every
	// launched run with the given per-rank ring capacity.
	TraceEvents int
	// Analyze runs the post-mortem trace analyzer (internal/analysis)
	// over every launched run and embeds the result in its RunRecord.
	// Requires event tracing; RunOneRecord defaults TraceEvents to a
	// 64K-event ring when Analyze is set without it.
	Analyze bool
	// Rounds, when > 0, enables round-level telemetry on every launched
	// run with the given per-rank log capacity; the merged series lands
	// in each RunInfo (and RunRecord.RoundSeries).
	Rounds int
	// Profile appends a per-experiment phase-profile table (the §V-D
	// compute/pack/exchange/unpack/wait breakdown) covering every run
	// the experiment launched.
	Profile bool
	// OnRun, if set, observes every successful runtime launch. Used to
	// collect Chrome traces and the machine-readable run records.
	OnRun func(info RunInfo)
	// Ranks caps the world sizes the rank-count scaling experiment
	// ("ranks") sweeps: the ladder 1024/4096/16384/65536 is filtered to
	// sizes <= Ranks. 0 means the experiment default (16384, CI-sized);
	// 65536 runs the full curve. Other experiments ignore it — their
	// rank counts are paper artifacts scaled by Scale.
	Ranks int
	// Perturb, when enabled, runs every matching launch under seeded
	// schedule perturbation with PerturbSeed (matchbench -perturb /
	// -perturb-seed; see internal/sched). Results are unchanged for the
	// default protocol — only delivery schedules and virtual timings
	// vary — so perturbed harness runs double as an end-to-end
	// schedule-invariance check.
	Perturb     sched.Profile
	PerturbSeed uint64
}

// RunInfo describes one completed runtime launch, delivered to
// Config.OnRun and serialized as a RunRecord.
type RunInfo struct {
	// Label identifies the configuration in human-readable output
	// ("rgg-weak NCL p=16 |V|=4096").
	Label string
	// App is the algorithm: "matching", "coloring" or "bfs".
	App string
	// Input is the workload identifier ("rgg-weak", "Friendster-analogue").
	Input string
	// Model is the communication model's name; empty for BFS, which has
	// its own fixed exchange structure.
	Model string
	// Procs is the simulated rank count.
	Procs int
	// Vertices and Edges describe the input graph.
	Vertices int
	Edges    int64
	// Rounds is the driver round (or BFS level) count; Messages the total
	// protocol messages pushed.
	Rounds   int
	Messages int64
	// Report carries the runtime's virtual time and traffic ledgers.
	Report *mpi.Report
	// Telemetry is the merged round series (nil unless Config.Rounds).
	Telemetry *telemetry.Series
}

// DefaultConfig returns the standard full-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Deadline: 10 * time.Minute}
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// scaledProcs shrinks a process count with the square root of Scale so
// per-rank work stays meaningful at small scales.
func (c Config) scaledProcs(p int) int {
	if c.Scale >= 1 {
		return p
	}
	v := int(float64(p) * c.Scale)
	if v < 2 {
		v = 2
	}
	return v
}

// models applies the Config.Models filter to an experiment's default
// model list, keeping the defaults' order.
func (c Config) models(defaults []matching.Model) []matching.Model {
	if len(c.Models) == 0 {
		return defaults
	}
	out := make([]matching.Model, 0, len(defaults))
	for _, m := range defaults {
		for _, want := range c.Models {
			if m == want {
				out = append(out, m)
				break
			}
		}
	}
	if len(out) == 0 {
		return defaults
	}
	return out
}

// observe reports a finished run to Config.OnRun, if registered.
func (c Config) observe(info RunInfo) {
	if c.OnRun != nil {
		c.OnRun(info)
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// Table is one rendered artifact: a titled grid of cells plus notes
// recording the paper-reported shape it should reproduce.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the paper artifact id: fig2, fig4a..fig4c, tab3, fig5, fig6,
	// tab4, fig7, tab5, tab6, fig8, fig9, tab7, fig10, tab8, fig11.
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes the shape the paper reported.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) ([]*Table, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment { return registry[id] }

// IDs returns all registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunOne executes the experiment with the given id under cfg and renders
// its tables to w. With cfg.Profile set, a phase-profile table covering
// every run the experiment launched is appended.
func RunOne(id string, cfg Config, w io.Writer) error {
	_, err := RunOneRecord(id, cfg, w)
	return err
}

// RunOneRecord is RunOne plus a machine-readable result: alongside the
// rendered text it returns the experiment's tables and every launched
// run as a schema-versioned ExperimentRecord (see record.go).
func RunOneRecord(id string, cfg Config, w io.Writer) (*ExperimentRecord, error) {
	e := Find(id)
	if e == nil {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	fmt.Fprintf(w, "# %s — %s\n# paper: %s\n\n", e.ID, e.Title, e.Paper)
	rec := &ExperimentRecord{ID: e.ID, Title: e.Title, Paper: e.Paper}
	if cfg.Analyze && cfg.TraceEvents == 0 {
		cfg.TraceEvents = 1 << 16
	}
	var prof *Table
	if cfg.Profile {
		prof = &Table{ID: id, Title: "phase profile (virtual seconds summed over ranks; §V-D breakdown)",
			Headers: []string{"run", "compute", "pack", "exchange", "unpack", "wait", "mpi%", "wait%"}}
	}
	inner := cfg.OnRun
	cfg.OnRun = func(info RunInfo) {
		rec.Runs = append(rec.Runs, newRunRecord(info, cfg))
		if prof != nil {
			p := info.Report.Profile()
			prof.AddRow(info.Label, fsec(p.Compute), fsec(p.Pack), fsec(p.Exchange), fsec(p.Unpack), fsec(p.Wait),
				f2(100*p.MPIFrac()), f2(100*p.WaitFrac()))
		}
		if inner != nil {
			inner(info)
		}
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", id, err)
	}
	for _, t := range tables {
		t.Render(w)
		rec.Tables = append(rec.Tables, TableRecord{
			ID: t.ID, Title: t.Title, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes,
		})
	}
	if prof != nil && len(prof.Rows) > 0 {
		prof.Render(w)
	}
	return rec, nil
}

// RunAll executes every registered experiment.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs() {
		if err := RunOne(id, cfg, w); err != nil {
			return err
		}
	}
	return nil
}

// f2 formats a float with 2 decimals; f3 with 3; fx chooses compactly.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// fsec formats virtual seconds compactly (profiles span ms to minutes).
func fsec(v float64) string { return fmt.Sprintf("%.4g", v) }

// ms formats seconds of virtual time as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.3fms", sec*1e3) }

// speedup formats a ratio like the paper ("2.3x").
func speedup(base, t float64) string {
	if t <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", base/t)
}
