package harness

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
)

// The rank-count scaling experiment is not a paper artifact: it
// characterizes the simulation harness itself. The paper's clusters run
// 512-16K MPI ranks; this experiment shows the simulated runtime
// sustaining the same rank counts (and beyond) on one machine, which is
// what lets the weak-scaling experiments keep the paper's process
// counts instead of shrinking them. Each row launches two workloads at
// world size p:
//
//   - ring: a raw mpi.Run world doing a 4-round neighbor ring exchange
//     plus a scalar allreduce — the NSR-style p2p skeleton, measuring
//     pure runtime overhead (and, below the direct-mode cutoff, the
//     legacy scheduler side by side);
//   - NCL match: a full half-approximate matching run under the NCL
//     model on a weak-scaled RGG strip (ranksVPR vertices per rank), the
//     lightest per-rank real workload.
//
// Wall-clock columns are physical seconds of the simulation; virtual
// time is the modeled result as everywhere else.

// ranksLadder is the world-size sweep; Config.Ranks caps it.
var ranksLadder = []int{1024, 4096, 16384, 65536, 131072}

// ranksDefaultCap keeps the default sweep CI-sized; -ranks 131072 (or
// Config.Ranks) unlocks the full curve.
const ranksDefaultCap = 16384

// ranksDirectCap bounds the legacy direct-mode comparison column: above
// it, one OS-scheduled goroutine per rank is exactly the regime the
// worker pool exists to avoid, so the column reads "-".
const ranksDirectCap = 16384

// ranksVPR is the vertices-per-rank density of the matching workload.
const ranksVPR = 4

func (c Config) ranksRing(p int, mode mpi.SchedMode) (*mpi.Report, time.Duration, error) {
	deadline := c.Deadline
	if deadline == 0 {
		deadline = 10 * time.Minute
	}
	start := time.Now()
	rep, err := mpi.Run(p, func(cm *mpi.Comm) error {
		r, n := cm.Rank(), cm.Size()
		for k := 0; k < 4; k++ {
			cm.Isend((r+1)%n, 0, []int64{int64(r), int64(k)})
			cm.Recv((r+n-1)%n, 0)
		}
		cm.AllreduceScalarInt64(mpi.OpMax, int64(r))
		return nil
	}, mpi.WithScheduler(mode), mpi.WithDeadline(deadline))
	return rep, time.Since(start), err
}

func init() {
	register(&Experiment{
		ID:    "ranks",
		Title: "Rank-count scaling of the simulated runtime (worker-pool scheduler)",
		Paper: "harness artifact, not a paper figure: the paper's evaluation spans 512-16K MPI ranks; the sharded scheduler sustains those world sizes in simulation (131K with -ranks 131072)",
		Run: func(cfg Config) ([]*Table, error) {
			rcap := cfg.Ranks
			if rcap == 0 {
				rcap = ranksDefaultCap
			}
			var sizes []int
			for _, p := range ranksLadder {
				if p <= rcap {
					sizes = append(sizes, p)
				}
			}
			if len(sizes) == 0 {
				// Cap below the smallest rung: run that single size so the
				// table is never empty (and tests stay cheap).
				sizes = []int{rcap}
			}
			t := &Table{ID: "ranks", Title: "world-size scaling (wall = physical simulation time)",
				Headers: []string{"ranks", "ring-wall(pool)", "ring-wall(direct)", "ring-msgs", "ncl-wall", "ncl-virt", "rounds"}}
			for _, p := range sizes {
				cfg.logf("ranks: p=%d ring (pooled)", p)
				rep, wall, err := cfg.ranksRing(p, mpi.SchedWorkers)
				if err != nil {
					return nil, fmt.Errorf("p=%d ring pooled: %w", p, err)
				}
				cfg.observe(RunInfo{
					Label: fmt.Sprintf("ring pooled p=%d", p),
					App:   "ring", Input: "ring", Model: "nsr-skeleton",
					Procs: p, Report: rep,
				})
				directCell := "-"
				if p <= ranksDirectCap {
					cfg.logf("ranks: p=%d ring (direct)", p)
					_, dwall, err := cfg.ranksRing(p, mpi.SchedDirect)
					if err != nil {
						return nil, fmt.Errorf("p=%d ring direct: %w", p, err)
					}
					directCell = dwall.Round(time.Millisecond).String()
				}
				g := cfg.memo(fmt.Sprintf("ranks-rgg-%d", p), func() *graph.CSR {
					n := ranksVPR * p
					return gen.RGG(n, gen.RGGRadiusForDegree(n, 8), 7001+int64(p))
				})
				cfg.logf("ranks: p=%d NCL matching |V|=%d", p, g.NumVertices())
				mstart := time.Now()
				res, err := cfg.match("ranks-rgg", g, p, matching.NCL, false)
				if err != nil {
					return nil, fmt.Errorf("p=%d NCL match: %w", p, err)
				}
				mwall := time.Since(mstart)
				tot := rep.Totals()
				t.AddRow(fmt.Sprint(p),
					wall.Round(time.Millisecond).String(),
					directCell,
					fmt.Sprint(tot.Msgs),
					mwall.Round(time.Millisecond).String(),
					ms(res.Report.MaxVirtualTime),
					fmt.Sprint(res.Rounds))
			}
			t.Notes = append(t.Notes,
				"expected shape: ring wall-clock grows near-linearly in ranks under the worker pool (flat per-rank cost)",
				fmt.Sprintf("ladder capped at %d ranks (matchbench -ranks 131072 for the full curve)", rcap))
			return []*Table{t}, nil
		},
	})
}
