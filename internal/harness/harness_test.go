package harness

import (
	"io"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{Scale: 0.12, Deadline: 10 * time.Minute}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig4a", "fig4b", "fig4c", "tab2", "tab3", "fig5", "fig6", "tab4",
		"fig7", "tab5", "tab6", "fig8", "fig9", "tab7", "fig10", "tab8", "fig11",
		"ext-ncli", "ext-coloring", "ext-density", "ext-async", "ranks",
	}
	for _, id := range want {
		e := Find(id)
		if e == nil {
			t.Errorf("experiment %s not registered", id)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete: %+v", id, e)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestFindUnknown(t *testing.T) {
	if Find("nope") != nil {
		t.Error("unknown id found")
	}
	if err := RunOne("nope", testConfig(), io.Discard); err == nil {
		t.Error("unknown id ran")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Headers: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "long-header", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// parseSpeedups extracts the trailing "N.NNx" cells from a scaling table.
func parseSpeedups(t *testing.T, tb *Table) [][]float64 {
	t.Helper()
	var out [][]float64
	for _, row := range tb.Rows {
		var ratios []float64
		for _, cell := range row {
			if strings.HasSuffix(cell, "x") {
				v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
				if err == nil {
					ratios = append(ratios, v)
				}
			}
		}
		out = append(out, ratios)
	}
	return out
}

func TestFig4aShapeRGG(t *testing.T) {
	// The headline shape: on RGG, the aggregated models beat NSR at the
	// largest process count.
	// Full workload scale: the asynchronous Send-Recv path's modeled
	// time varies slightly with goroutine interleaving, and small-scale
	// margins can flip under instrumentation (e.g. -race).
	cfg := testConfig()
	cfg.Scale = 1.0
	tables, err := Find("fig4a").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseSpeedups(t, tables[0])
	last := rows[len(rows)-1]
	for i, s := range last {
		if s <= 1 {
			t.Errorf("fig4a largest-p speedup %d = %g, want > 1 (RMA/NCL must beat NSR)", i, s)
		}
	}
}

func TestFig4cShapeSBP(t *testing.T) {
	// Contrasting shape: on SBP at the largest p, NSR wins.
	cfg := testConfig()
	cfg.Scale = 1.0
	tables, err := Find("fig4c").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseSpeedups(t, tables[0])
	last := rows[len(rows)-1]
	for i, s := range last {
		if s >= 1 {
			t.Errorf("fig4c largest-p speedup %d = %g, want < 1 (NSR must win)", i, s)
		}
	}
}

func TestTab3NearCompleteTopology(t *testing.T) {
	tables, err := Find("tab3").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Last row: p, |Ep|, dmax, davg, sigma: dmax must be p-1.
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	p, _ := strconv.Atoi(last[0])
	dmax, _ := strconv.Atoi(last[2])
	if dmax != p-1 {
		t.Errorf("SBP process graph dmax = %d, want p-1 = %d", dmax, p-1)
	}
}

func TestFig7RCMShape(t *testing.T) {
	tables, err := Find("fig7").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		// The bandwidth row reads "bandwidth=N" in both columns.
		var orig, rcm int
		for _, row := range tb.Rows {
			if strings.HasPrefix(row[0], "bandwidth=") {
				orig, _ = strconv.Atoi(strings.TrimPrefix(row[0], "bandwidth="))
				rcm, _ = strconv.Atoi(strings.TrimPrefix(row[1], "bandwidth="))
			}
		}
		if rcm == 0 || rcm >= orig/4 {
			t.Errorf("%s: RCM bandwidth %d not well below original %d", tb.Title, rcm, orig)
		}
	}
}

func TestTab5SigmaShrinks(t *testing.T) {
	tables, err := Find("tab5").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Rows alternate original/RCM per input; sigma is the last column.
	for i := 0; i+1 < len(rows); i += 2 {
		so, _ := strconv.ParseFloat(rows[i][len(rows[i])-1], 64)
		sr, _ := strconv.ParseFloat(rows[i+1][len(rows[i+1])-1], 64)
		if sr >= so {
			t.Errorf("row %d: RCM sigma(|E'|) %g not below original %g", i, sr, so)
		}
	}
}

func TestFig10ProfileSane(t *testing.T) {
	cfg := testConfig()
	tables, err := Find("fig10").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fractions at tau=1 over the three schemes sum to >= 1 (winners).
	var sum float64
	for _, row := range tables[0].Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v < 0 || v > 1 {
			t.Errorf("profile fraction %g out of range", v)
		}
		sum += v
	}
	if sum < 0.99 {
		t.Errorf("winners at tau=1 sum to %g, want >= 1", sum)
	}
}

func TestTab8EnergyColumns(t *testing.T) {
	tables, err := Find("tab8").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		mem, _ := strconv.ParseFloat(row[2], 64)
		energy, _ := strconv.ParseFloat(row[3], 64)
		comp, _ := strconv.ParseFloat(row[5], 64)
		mpiPct, _ := strconv.ParseFloat(row[6], 64)
		if mem <= 0 || energy <= 0 {
			t.Errorf("nonpositive mem/energy in row %v", row)
		}
		if comp+mpiPct < 99.9 || comp+mpiPct > 100.1 {
			t.Errorf("comp%%+mpi%% = %g in row %v", comp+mpiPct, row)
		}
	}
}

func TestCommMatrixExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig11", "fig9"} {
		tables, err := Find(id).Run(testConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Errorf("%s produced no grid", id)
		}
	}
}

func TestScaledProcsAndSizes(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if p := cfg.scaledProcs(32); p < 2 || p > 32 {
		t.Errorf("scaledProcs = %d", p)
	}
	if cfg.scaled(100) < 8 {
		t.Error("scaled floor broken")
	}
	full := Config{Scale: 1}
	if full.scaledProcs(32) != 32 {
		t.Error("full scale must not shrink procs")
	}
}

func TestWorkloadsMemoized(t *testing.T) {
	cfg := testConfig()
	a := cfg.orkut()
	b := cfg.orkut()
	if a != b {
		t.Error("workload memoization broken (regenerated)")
	}
	other := Config{Scale: cfg.Scale * 2}
	if other.orkut() == a {
		t.Error("different scales must not share graphs")
	}
}

func TestSpeedupFormat(t *testing.T) {
	if s := speedup(2, 1); s != "2.00x" {
		t.Errorf("speedup = %q", s)
	}
	if s := speedup(1, 0); s != "-" {
		t.Errorf("speedup by zero = %q", s)
	}
	if ms(0.001) != "1.000ms" {
		t.Error("ms format")
	}
}

func TestTab2Inventory(t *testing.T) {
	tables, err := Find("tab2").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) < 10 {
		t.Errorf("inventory has %d rows, want all input families", len(tables[0].Rows))
	}
}

func TestExtNCLIRuns(t *testing.T) {
	tables, err := Find("ext-ncli").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) == 0 {
		t.Error("no rows")
	}
}

// TestExtAsyncRuns exercises the asynchronous-engine comparison at test
// scale: three inputs, each row's matchings verified maximal inside the
// experiment (a detector false termination fails the run itself), and
// the async/fenced pair distinguishable in the emitted run records by
// the "-rounds" model suffix.
func TestExtAsyncRuns(t *testing.T) {
	cfg := testConfig()
	models := map[string]int{}
	cfg.OnRun = func(info RunInfo) { models[info.Model]++ }
	tables, err := Find("ext-async").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 3 {
		t.Errorf("got %d rows, want 3 inputs", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "ok" {
			t.Errorf("input %s missing its verified-maximal stamp: %v", row[0], row)
		}
	}
	for _, m := range []string{"NSR", "NSRA", "NSR-rounds"} {
		if models[m] != 3 {
			t.Errorf("model %s observed %d times, want 3", m, models[m])
		}
	}
}

func TestExtColoringRuns(t *testing.T) {
	tables, err := Find("ext-coloring").Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) == 0 {
		t.Error("no rows")
	}
}
