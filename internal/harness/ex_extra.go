package harness

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
)

// Supplementary experiments: the dataset inventory (paper Table II) and
// the repository's extension beyond the paper (nonblocking neighborhood
// collectives).

func init() {
	register(&Experiment{
		ID:    "tab2",
		Title: "Dataset inventory: this repository's analogues of the paper's inputs",
		Paper: "Table II lists RGG (6.6-27.7B edges), Graph500 scale 21-24, SBP HILO, protein k-mer V2a/U1a/P1a/V1r, Cage15, HV15R, Orkut, Friendster",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab2", Title: "Synthetic analogues used for evaluation (scale factor applied)",
				Headers: []string{"category", "identifier", "|V|", "|E|", "components", "paper counterpart"}}
			add := func(cat, name string, g *graph.CSR, paper string) {
				_, comps := g.ConnectedComponents()
				t.AddRow(cat, name, fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()), fmt.Sprint(comps), paper)
			}
			p16 := cfg.scaledProcs(16)
			add("RGG", "rgg-weak", cfg.rggWeak(p16), "d=8.56E-05 .. 4.37E-05 (6.6B-27.7B edges)")
			add("Graph500 R-MAT", "rmat-weak", cfg.rmatWeak(p16), "scale 21-24 (33.5M-268M edges)")
			add("SBP HILO", "sbp-weak", cfg.sbpWeak(p16), "1M-20M vertices, 23.7M-475M edges")
			for _, k := range cfg.kmerInputs() {
				add("Protein k-mer", k.Name, k.G, "V2a 117M / U1a 139M / P1a 298M / V1r 465M edges")
			}
			add("DNA", "cage15-analogue", cfg.cage15(), "Cage15: 5.15M vertices, 99.2M edges")
			add("CFD", "hv15r-analogue", cfg.hv15r(), "HV15R: 2.01M vertices, 283M edges")
			add("Social", "orkut-analogue", cfg.orkut(), "Orkut: 3M vertices, 117.1M edges")
			add("Social", "friendster-analogue", cfg.friendster(), "Friendster: 65.6M vertices, 1.8B edges")
			t.Notes = append(t.Notes, "sizes are ~1000x below the paper's; the structural character of each family is preserved (DESIGN.md §2)")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "ext-ncli",
		Title: "Extension: blocking vs nonblocking (pipelined) neighborhood collectives",
		Paper: "beyond the paper — its related work (Kandalla et al.) asks whether nonblocking neighborhood collectives can hide communication; NCLI answers for matching",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "ext-ncli", Title: "NCL vs NCLI across input regimes",
				Headers: []string{"input", "p", "NCL", "NCLI", "NCLI/NCL"}}
			for _, in := range []struct {
				name string
				g    *graph.CSR
			}{
				{"friendster-analogue", cfg.friendster()},
				{"sbp-weak", cfg.sbpWeak(cfg.scaledProcs(16))},
				{"rgg-weak", cfg.rggWeak(cfg.scaledProcs(16))},
			} {
				for _, p := range []int{cfg.scaledProcs(16), cfg.scaledProcs(32)} {
					cfg.logf("ext-ncli: %s p=%d", in.name, p)
					var times [2]float64
					for i, m := range []matching.Model{matching.NCL, matching.NCLI} {
						res, err := cfg.match(in.name, in.g, p, m, false)
						if err != nil {
							return nil, fmt.Errorf("%s/%v: %w", in.name, m, err)
						}
						times[i] = res.Report.MaxVirtualTime
					}
					t.AddRow(in.name, fmt.Sprint(p), ms(times[0]), ms(times[1]), speedup(times[0], times[1]))
				}
			}
			t.Notes = append(t.Notes, "expected shape: NCLI at least matches NCL when per-round volume is high (overlap pays); near parity when rounds are cheap")
			return []*Table{t}, nil
		},
	})
}

// init registers the second-application experiment: the same four
// communication models driving distributed Jones-Plassmann coloring,
// demonstrating the paper's closing claim that the communication
// substrate "can be applied to any graph algorithm imitating the
// owner-computes model" (§IV-D).
func init() {
	register(&Experiment{
		ID:    "ext-coloring",
		Title: "Extension: the communication models on a second owner-computes algorithm (greedy coloring)",
		Paper: "beyond the paper's evaluation — §IV-D asserts the substrate generalizes; ref [5] treats matching and coloring together",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "ext-coloring", Title: "Jones-Plassmann coloring under each model",
				Headers: []string{"input", "p", "colors", "NSR", "RMA", "NCL", "best/NSR"}}
			for _, in := range []struct {
				name string
				g    *graph.CSR
			}{
				{"social", cfg.orkut()},
				{"rgg", cfg.rggWeak(cfg.scaledProcs(16))},
			} {
				for _, p := range []int{cfg.scaledProcs(16), cfg.scaledProcs(32)} {
					cfg.logf("ext-coloring: %s p=%d", in.name, p)
					var times [3]float64
					var colors int
					for i, m := range scalingModels {
						res, err := coloring.Run(in.g, coloring.Options{
							Procs: p, Model: m, Cost: cfg.Cost, Deadline: cfg.Deadline,
							TraceEvents: cfg.TraceEvents, RoundLog: cfg.Rounds,
						})
						if err != nil {
							return nil, fmt.Errorf("%s/%v: %w", in.name, m, err)
						}
						cfg.observe(RunInfo{
							Label:     fmt.Sprintf("coloring %s %v p=%d |V|=%d", in.name, m, p, in.g.NumVertices()),
							App:       "coloring",
							Input:     in.name,
							Model:     m.String(),
							Procs:     p,
							Vertices:  in.g.NumVertices(),
							Edges:     in.g.NumEdges(),
							Rounds:    res.Rounds,
							Messages:  res.Messages,
							Report:    res.Report,
							Telemetry: res.Telemetry,
						})
						times[i] = res.Report.MaxVirtualTime
						colors = res.Colors
					}
					best := times[0]
					for _, tm := range times[1:] {
						if tm < best {
							best = tm
						}
					}
					t.AddRow(in.name, fmt.Sprint(p), fmt.Sprint(colors),
						ms(times[0]), ms(times[1]), ms(times[2]), speedup(times[0], best))
				}
			}
			t.Notes = append(t.Notes, "expected shape: the same volume-vs-degree trade-offs as matching, on an independent algorithm")
			return []*Table{t}, nil
		},
	})
}
