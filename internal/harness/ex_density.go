package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/matching"
)

// densityInput is one point of the process-graph density sweep.
type densityInput struct {
	Name string
	Band int
	G    *graph.CSR
}

// bandedBlockGraph builds a graph whose block distribution over p ranks
// yields a ring-banded process graph of degree exactly min(2*band, p-1):
// each vertex draws deg edges to uniform vertices in blocks at ring
// distance <= band from its own. Unlike an SBP overlap fraction — whose
// scattered cross edges cover every block pair almost immediately — the
// band directly dials the process-graph density, independent of graph
// size, which is the axis this sweep varies.
func bandedBlockGraph(n, p, deg, band int, seed int64) *graph.CSR {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	per := n / p // n is a multiple of p, matching NewBlockDist's partition
	for v := 0; v < n; v++ {
		blk := v / per
		for e := 0; e < deg; e++ {
			tb := (blk + r.Intn(2*band+1) - band + p) % p
			u := tb*per + r.Intn(per)
			if u == v {
				continue
			}
			b.AddEdge(v, u, 1+10*r.Float64())
		}
	}
	return b.Build()
}

// densitySweep builds banded inputs whose process graph sweeps from a
// sparse ring neighborhood (degree 2) to near-complete (degree p-1) —
// the axis along which the paper's Fig 4c conclusion flips. Vertices
// and per-vertex degree are held fixed so only the process-graph
// density moves.
func (c Config) densitySweep(p int) []densityInput {
	var out []densityInput
	// The ladder is fixed (not derived from p) so row names are stable
	// across harness scales; bands past (p-1)/2 wrap the ring and simply
	// saturate at a complete process graph.
	for _, band := range []int{1, 2, 3, 5, 8} {
		band := band
		name := fmt.Sprintf("density-b%d", band)
		g := c.memo(fmt.Sprintf("%s-%d", name, p), func() *graph.CSR {
			return bandedBlockGraph(c.scaled(250)*p, p, 10, band, 7007+int64(band))
		})
		out = append(out, densityInput{Name: name, Band: band, G: g})
	}
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-density",
		Title: "Extension: message-combining collectives across process-graph density (NCL vs NCLC crossover)",
		Paper: "beyond the paper — §V-B/Fig 4c shows NCL degrading as the process graph densifies (one transfer per neighbor); NCLC routes O(log p) combined bundles instead, so its advantage should appear exactly where NCL's conclusion flips",
		Run: func(cfg Config) ([]*Table, error) {
			p := cfg.scaledProcs(16)
			models := []matching.Model{matching.NSR, matching.NCL, matching.NCLC}
			t := &Table{ID: "ext-density", Title: fmt.Sprintf("process-graph density sweep on %d processes (ring-banded blocks)", p),
				Headers: []string{"input", "davg", "dmax", "NSR", "NCL", "NCLC", "NCLC/NCL"}}
			for _, in := range cfg.densitySweep(p) {
				st := distgraph.NewBlockDist(in.G, p).ProcessGraphStats()
				cfg.logf("ext-density: %s p=%d davg=%.1f", in.Name, p, st.DAvg)
				times := make([]float64, len(models))
				for i, m := range models {
					res, err := cfg.match(in.Name, in.G, p, m, false)
					if err != nil {
						return nil, fmt.Errorf("%s/%v: %w", in.Name, m, err)
					}
					times[i] = res.Report.MaxVirtualTime
				}
				t.AddRow(in.Name, f2(st.DAvg), fmt.Sprint(st.DMax),
					ms(times[0]), ms(times[1]), ms(times[2]), speedup(times[1], times[2]))
			}
			t.Notes = append(t.Notes,
				"expected shape: NCLC tracks NCL on sparse rows (direct fallback), then beats it once davg clears ~1.5*ceil(log2 p)",
				"expected shape: the NCLC/NCL speedup grows with the band")
			return []*Table{t}, nil
		},
	})
}
