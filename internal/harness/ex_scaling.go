package harness

import (
	"fmt"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/matching"
)

// match runs one distributed matching configuration on the named input
// and returns the result (with virtual time in Report.MaxVirtualTime).
// Successful runs are reported to Config.OnRun for trace, profile and
// record collection.
func (c Config) match(input string, g *graph.CSR, p int, m matching.Model, trackMatrices bool) (*matching.ParallelResult, error) {
	res, err := matching.Run(g, matching.Options{
		Procs:         p,
		Model:         m,
		Engine:        c.Engine,
		Cost:          c.Cost,
		Deadline:      c.Deadline,
		TrackMatrices: trackMatrices,
		TraceEvents:   c.TraceEvents,
		RoundLog:      c.Rounds,
		Perturb:       c.Perturb,
		PerturbSeed:   c.PerturbSeed,
	})
	if err == nil {
		c.observe(RunInfo{
			Label:     fmt.Sprintf("%s %v p=%d |V|=%d", input, m, p, g.NumVertices()),
			App:       "matching",
			Input:     input,
			Model:     m.String(),
			Procs:     p,
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			Rounds:    res.Rounds,
			Messages:  res.Messages,
			Report:    res.Report,
			Telemetry: res.Telemetry,
		})
	}
	return res, err
}

// scalingTable runs the given models over (graph(p), p) pairs and emits
// one row per p: |E|, per-model virtual time, and speedups over NSR.
func (c Config) scalingTable(id, title, input string, procs []int, graphOf func(p int) *graph.CSR, models []matching.Model) (*Table, error) {
	models = c.models(models)
	t := &Table{ID: id, Title: title}
	t.Headers = []string{"procs", "|V|", "|E|"}
	for _, m := range models {
		t.Headers = append(t.Headers, m.String())
	}
	for _, m := range models[1:] {
		t.Headers = append(t.Headers, m.String()+"/"+models[0].String())
	}
	for _, p := range procs {
		g := graphOf(p)
		c.logf("%s: p=%d |E|=%d", id, p, g.NumEdges())
		times := make([]float64, len(models))
		for i, m := range models {
			res, err := c.match(input, g, p, m, false)
			if err != nil {
				return nil, fmt.Errorf("p=%d model=%v: %w", p, m, err)
			}
			times[i] = res.Report.MaxVirtualTime
		}
		row := []string{
			fmt.Sprint(p),
			fmt.Sprint(g.NumVertices()),
			fmt.Sprint(g.NumEdges()),
		}
		for _, tm := range times {
			row = append(row, ms(tm))
		}
		for _, tm := range times[1:] {
			row = append(row, speedup(times[0], tm))
		}
		t.AddRow(row...)
	}
	return t, nil
}

var scalingModels = []matching.Model{matching.NSR, matching.RMA, matching.NCL}

func init() {
	register(&Experiment{
		ID:    "fig4a",
		Title: "Weak scaling of NSR/RMA/NCL on random geometric graphs",
		Paper: "RGG strips bound each rank's neighborhood to <=2; NCL and RMA run 2-3.5x faster than NSR on 4K-16K processes",
		Run: func(cfg Config) ([]*Table, error) {
			t, err := cfg.scalingTable("fig4a", "RGG weak scaling (strip distribution, <=2 process neighbors)", "rgg-weak",
				[]int{cfg.scaledProcs(8), cfg.scaledProcs(16), cfg.scaledProcs(32)}, cfg.rggWeak, scalingModels)
			if err != nil {
				return nil, err
			}
			d := distgraph.NewBlockDist(cfg.rggWeak(cfg.scaledProcs(16)), cfg.scaledProcs(16))
			t.Notes = append(t.Notes,
				"expected shape: NCL/RMA several times faster than NSR, gap widening with p",
				"process graph at middle p: "+d.ProcessGraphStats().String())
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig4b",
		Title: "Weak scaling on Graph500 R-MAT graphs",
		Paper: "RMA and NCL achieve 1.2-3x speedup over NSR for scale 21-24 R-MAT on 512-4K processes",
		Run: func(cfg Config) ([]*Table, error) {
			t, err := cfg.scalingTable("fig4b", "Graph500 R-MAT weak scaling", "rmat-weak",
				[]int{cfg.scaledProcs(8), cfg.scaledProcs(16), cfg.scaledProcs(32), cfg.scaledProcs(64)}, cfg.rmatWeak, scalingModels)
			if err != nil {
				return nil, err
			}
			t.Notes = append(t.Notes, "expected shape: RMA/NCL 1.2-3x over NSR")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig4c",
		Title: "Weak scaling on stochastic block-partitioned (HILO) graphs",
		Paper: "contrasting case: NSR beats NCL/RMA by 1.5-2.7x because the process graph is near-complete (Table III)",
		Run: func(cfg Config) ([]*Table, error) {
			t, err := cfg.scalingTable("fig4c", "Stochastic block partition weak scaling (NSR wins)", "sbp-weak",
				[]int{cfg.scaledProcs(16), cfg.scaledProcs(32), cfg.scaledProcs(64)}, cfg.sbpWeak, scalingModels)
			if err != nil {
				return nil, err
			}
			t.Notes = append(t.Notes, "expected shape: speedup columns < 1 (NSR fastest)")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "tab3",
		Title: "Process-graph topology statistics for the SBP inputs",
		Paper: "dmax = davg = p-1: every rank neighbors every other (|Ep| grows ~quadratically)",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab3", Title: "SBP neighborhood graph topology",
				Headers: []string{"p", "|Ep|", "dmax", "davg", "sigma_d"}}
			for _, p := range []int{cfg.scaledProcs(16), cfg.scaledProcs(32), cfg.scaledProcs(64)} {
				st := distgraph.NewBlockDist(cfg.sbpWeak(p), p).ProcessGraphStats()
				t.AddRow(fmt.Sprint(p), fmt.Sprint(st.Edges), fmt.Sprint(st.DMax), f2(st.DAvg), f2(st.DSigma))
			}
			t.Notes = append(t.Notes, "expected shape: dmax ~= davg ~= p-1 (near-complete process graph)")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig5",
		Title: "Strong scaling on protein k-mer graphs (V2a, U1a, P1a, V1r)",
		Paper: "RMA about 25-35% faster than NSR and NCL; sometimes RMA/NCL 2-3x over NSR",
		Run: func(cfg Config) ([]*Table, error) {
			var tables []*Table
			procs := []int{cfg.scaledProcs(16), cfg.scaledProcs(32), cfg.scaledProcs(64)}
			for _, in := range cfg.kmerInputs() {
				in := in
				t, err := cfg.scalingTable("fig5", fmt.Sprintf("k-mer %s strong scaling (|E|=%d)", in.Name, in.G.NumEdges()),
					in.Name, procs, func(int) *graph.CSR { return in.G }, scalingModels)
				if err != nil {
					return nil, err
				}
				t.Notes = append(t.Notes, "expected shape: RMA best or tied-best at every p")
				tables = append(tables, t)
			}
			return tables, nil
		},
	})

	register(&Experiment{
		ID:    "fig6",
		Title: "Strong scaling on social networks (Orkut, Friendster analogues)",
		Paper: "2-5x speedup for NCL/RMA at 1-2K processes, degrading at scale as |E'| and process-graph degree explode (Table IV)",
		Run: func(cfg Config) ([]*Table, error) {
			var tables []*Table
			inputs := []struct {
				name string
				g    *graph.CSR
			}{
				{"Orkut-analogue", cfg.orkut()},
				{"Friendster-analogue", cfg.friendster()},
			}
			for _, in := range inputs {
				in := in
				t, err := cfg.scalingTable("fig6", fmt.Sprintf("%s strong scaling (|E|=%d)", in.name, in.g.NumEdges()),
					in.name, []int{cfg.scaledProcs(16), cfg.scaledProcs(32), cfg.scaledProcs(64)},
					func(int) *graph.CSR { return in.g }, scalingModels)
				if err != nil {
					return nil, err
				}
				t.Notes = append(t.Notes, "expected shape: NCL/RMA ahead at low p; NCL's edge shrinks as p grows (denser process graph)")
				tables = append(tables, t)
			}
			return tables, nil
		},
	})

	register(&Experiment{
		ID:    "tab4",
		Title: "Process-graph topology statistics for the social networks",
		Paper: "davg within 1% of dmax = p-1; Orkut |E'| grows 14x from 512 to 2048 processes",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab4", Title: "Social network neighborhood topology",
				Headers: []string{"input", "p", "|Ep|", "dmax", "davg", "sigma_d"}}
			for _, in := range []struct {
				name string
				g    *graph.CSR
				ps   []int
			}{
				{"Friendster-analogue", cfg.friendster(), []int{cfg.scaledProcs(32), cfg.scaledProcs(64)}},
				{"Orkut-analogue", cfg.orkut(), []int{cfg.scaledProcs(16), cfg.scaledProcs(64)}},
			} {
				for _, p := range in.ps {
					st := distgraph.NewBlockDist(in.g, p).ProcessGraphStats()
					t.AddRow(in.name, fmt.Sprint(p), fmt.Sprint(st.Edges), fmt.Sprint(st.DMax), f2(st.DAvg), f2(st.DSigma))
				}
			}
			t.Notes = append(t.Notes, "expected shape: davg ~= dmax ~= p-1 (hubs connect every pair of blocks)")
			return []*Table{t}, nil
		},
	})
}
