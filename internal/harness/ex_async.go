package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/matching"
)

// asyncInput is one workload of the asynchronous-engine comparison.
type asyncInput struct {
	name string
	g    *graph.CSR
}

// skewedAsyncGraph builds a block-partitioned graph where block 0 is far
// denser than the rest: under a block distribution one rank carries most
// of the protocol work — the straggler regime where every rank pays that
// rank's epoch time through the round fence, and where the barrier-free
// engine should win.
func skewedAsyncGraph(n, p, denseDeg, sparseDeg int, seed int64) *graph.CSR {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	blk := n / p // n is a multiple of p, matching NewBlockDist's partition
	addWithin := func(lo, hi, deg int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < deg; k++ {
				u := lo + r.Intn(hi-lo)
				if u != v {
					b.AddEdge(v, u, 1+r.Float64())
				}
			}
		}
	}
	addWithin(0, blk, denseDeg)
	addWithin(blk, n, sparseDeg)
	// A sparse ring of cross-block edges keeps the graph connected so
	// every rank participates in the protocol.
	for v := 0; v+blk < n; v += blk / 2 {
		b.AddEdge(v, v+blk, 1)
	}
	return b.Build()
}

// asyncInputs returns the graph families the asynchronous engine is
// validated and timed on: the paper's two weak-scaling families plus the
// skewed straggler input the barrier-free claim is about.
func (c Config) asyncInputs(p int) []asyncInput {
	return []asyncInput{
		{"mx-rgg", c.rggWeak(p)},
		{"mx-sbp", c.sbpWeak(p)},
		{"mx-skew", c.memo(fmt.Sprintf("mx-skew-%d", p), func() *graph.CSR {
			return skewedAsyncGraph(c.scaled(300)*p, p, 48, 6, 1900+int64(p))
		})},
	}
}

// matchMaximal runs the maximal-matching engine on one configuration,
// verifies maximality (an invalid or non-maximal matching — e.g. from a
// false termination — fails the experiment outright), and reports the
// run with the driver encoded in the model name: "NSR" is the
// barrier-free detector path, "NSR-rounds" the ForceRounds baseline.
func (c Config) matchMaximal(input string, g *graph.CSR, p int, m matching.Model, forceRounds bool) (*matching.ParallelResult, error) {
	res, err := matching.Run(g, matching.Options{
		Procs:       p,
		Model:       m,
		Engine:      matching.EngineMaximal,
		ForceRounds: forceRounds,
		Cost:        c.Cost,
		Deadline:    c.Deadline,
		TraceEvents: c.TraceEvents,
		RoundLog:    c.Rounds,
		Perturb:     c.Perturb,
		PerturbSeed: c.PerturbSeed,
	})
	if err != nil {
		return nil, err
	}
	if err := matching.VerifyMaximal(g, res.Result); err != nil {
		return nil, fmt.Errorf("%s %v forceRounds=%v: %w", input, m, forceRounds, err)
	}
	model := m.String()
	if forceRounds {
		model += "-rounds"
	}
	c.observe(RunInfo{
		Label:     fmt.Sprintf("%s maximal %s p=%d |V|=%d", input, model, p, g.NumVertices()),
		App:       "matching",
		Input:     input,
		Model:     model,
		Procs:     p,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Rounds:    res.Rounds,
		Messages:  res.Messages,
		Report:    res.Report,
		Telemetry: res.Telemetry,
	})
	return res, nil
}

func init() {
	register(&Experiment{
		ID:    "ext-async",
		Title: "Extension: asynchronous maximal matching (Safra termination detection) vs the round-fenced baseline",
		Paper: "beyond the paper — §III's NSR driver still fences each iteration with a counting allreduce; a fully asynchronous engine with detected (not counted) termination removes the fence, so on straggler-skewed inputs the sparse ranks stop paying the dense rank's epoch time",
		Run: func(cfg Config) ([]*Table, error) {
			p := cfg.scaledProcs(8)
			t := &Table{ID: "ext-async",
				Title: fmt.Sprintf("asynchronous engine vs round-fenced baseline on %d processes (all matchings verified maximal)", p),
				Headers: []string{"input", "|V|", "|E|", "NSR", "NSRA", "NSR-rounds", "rounds/NSR", "epochs", "fences", "maximal"}}
			for _, in := range cfg.asyncInputs(p) {
				cfg.logf("ext-async: %s p=%d |E|=%d", in.name, p, in.g.NumEdges())
				async, err := cfg.matchMaximal(in.name, in.g, p, matching.NSR, false)
				if err != nil {
					return nil, err
				}
				agg, err := cfg.matchMaximal(in.name, in.g, p, matching.NSRA, false)
				if err != nil {
					return nil, err
				}
				fenced, err := cfg.matchMaximal(in.name, in.g, p, matching.NSR, true)
				if err != nil {
					return nil, err
				}
				t.AddRow(in.name,
					fmt.Sprint(in.g.NumVertices()), fmt.Sprint(in.g.NumEdges()),
					ms(async.Report.MaxVirtualTime), ms(agg.Report.MaxVirtualTime),
					ms(fenced.Report.MaxVirtualTime),
					speedup(fenced.Report.MaxVirtualTime, async.Report.MaxVirtualTime),
					fmt.Sprint(async.Rounds), fmt.Sprint(fenced.Rounds), "ok")
			}
			t.Notes = append(t.Notes,
				"every run's matching is verified maximal — a false termination by the detector would strand a free-free edge and fail the row",
				"expected shape: on mx-skew the barrier-free NSR time beats NSR-rounds (sparse ranks idle at the detector instead of fencing on the dense rank every round)")
			return []*Table{t}, nil
		},
	})
}
