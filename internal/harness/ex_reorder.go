package harness

import (
	"fmt"

	"repro/internal/distgraph"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/order"
)

// densityRow renders one row of a coarse density plot; levels mirror the
// paper's black-spots-are-zero rendering.
func densityGlyph(v, max int64) byte {
	if v == 0 {
		return ' '
	}
	levels := []byte{'.', ':', '*', '#', '@'}
	idx := int(int64(len(levels)) * v / (max + 1))
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}

// adjacencyDensity buckets the adjacency matrix of g into a buckets x
// buckets grid of edge counts, rendered as text (the paper's Fig 7
// spy-plot rendering).
func adjacencyDensity(g *graph.CSR, buckets int) []string {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if buckets > n {
		buckets = n
	}
	grid := make([][]int64, buckets)
	for i := range grid {
		grid[i] = make([]int64, buckets)
	}
	var max int64
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			bi := v * buckets / n
			bj := int(a) * buckets / n
			grid[bi][bj]++
			if grid[bi][bj] > max {
				max = grid[bi][bj]
			}
		}
	}
	return renderGrid(grid, max)
}

// matrixDensity renders a per-pair communication matrix as a density
// grid (Figs 2, 9, 11).
func matrixDensity(m [][]int64, buckets int) []string {
	n := len(m)
	if n == 0 {
		return nil
	}
	if buckets > n {
		buckets = n
	}
	grid := make([][]int64, buckets)
	for i := range grid {
		grid[i] = make([]int64, buckets)
	}
	var max int64
	for i := range m {
		for j, v := range m[i] {
			bi := i * buckets / n
			bj := j * buckets / n
			grid[bi][bj] += v
			if grid[bi][bj] > max {
				max = grid[bi][bj]
			}
		}
	}
	return renderGrid(grid, max)
}

func renderGrid(grid [][]int64, max int64) []string {
	rows := make([]string, len(grid))
	for i, r := range grid {
		line := make([]byte, len(r))
		for j, v := range r {
			line[j] = densityGlyph(v, max)
		}
		rows[i] = "|" + string(line) + "|"
	}
	return rows
}

// rcmOf memoizes the RCM-reordered version of a named workload.
func (c Config) rcmOf(name string, g *graph.CSR) *graph.CSR {
	return c.memo(name+"-rcm", func() *graph.CSR {
		return order.Apply(g, order.RCM(g))
	})
}

func init() {
	register(&Experiment{
		ID:    "fig7",
		Title: "Adjacency structure of original vs RCM-reordered meshes",
		Paper: "originals are scattered; RCM produces tight banded structure along the diagonal",
		Run: func(cfg Config) ([]*Table, error) {
			var tables []*Table
			for _, in := range []struct {
				name string
				g    *graph.CSR
			}{
				{"cage15-analogue", cfg.cage15()},
				{"hv15r-analogue", cfg.hv15r()},
			} {
				re := cfg.rcmOf(in.name, in.g)
				t := &Table{ID: "fig7", Title: in.name + " adjacency structure (left: original, right: RCM)",
					Headers: []string{"original", "RCM"}}
				a, b := adjacencyDensity(in.g, 24), adjacencyDensity(re, 24)
				for i := range a {
					t.AddRow(a[i], b[i])
				}
				t.AddRow(fmt.Sprintf("bandwidth=%d", in.g.Bandwidth()), fmt.Sprintf("bandwidth=%d", re.Bandwidth()))
				t.AddRow(fmt.Sprintf("profile=%d", in.g.Profile()), fmt.Sprintf("profile=%d", re.Profile()))
				t.Notes = append(t.Notes, "expected shape: RCM bandwidth and profile orders of magnitude below original")
				tables = append(tables, t)
			}
			return tables, nil
		},
	})

	register(&Experiment{
		ID:    "tab5",
		Title: "Ghost-augmented edges |E'| for original vs RCM partitions",
		Paper: "totals within 1-5%, but sigma(|E'|) drops 30-40% under RCM (better balance)",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab5", Title: "|E'| statistics, original vs RCM",
				Headers: []string{"graph", "p", "order", "|E'|", "|E'|max", "|E'|avg", "sigma"}}
			for _, in := range []struct {
				name string
				g    *graph.CSR
				p    int
			}{
				{"cage15-analogue", cfg.cage15(), cfg.scaledProcs(32)},
				{"hv15r-analogue", cfg.hv15r(), cfg.scaledProcs(64)},
			} {
				for _, v := range []struct {
					order string
					g     *graph.CSR
				}{{"original", in.g}, {"RCM", cfg.rcmOf(in.name, in.g)}} {
					st := distgraph.NewBlockDist(v.g, in.p).GhostEdgeStats()
					t.AddRow(in.name, fmt.Sprint(in.p), v.order,
						fmt.Sprint(st.Total), fmt.Sprint(st.Max), f2(st.Avg), f2(st.Sigma))
				}
			}
			t.Notes = append(t.Notes, "expected shape: RCM rows have clearly smaller sigma and |E'|max")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "tab6",
		Title: "Process-graph topology of original vs RCM orderings",
		Paper: "counter-intuitively, RCM raises davg ~2x under 1-D partitioning (more, smaller neighbor exchanges)",
		Run: func(cfg Config) ([]*Table, error) {
			t := &Table{ID: "tab6", Title: "Neighborhood topology, original vs RCM",
				Headers: []string{"graph", "p", "order", "|Ep|", "dmax", "davg", "sigma_d"}}
			for _, in := range []struct {
				name string
				g    *graph.CSR
				p    int
			}{
				{"cage15-analogue", cfg.cage15(), cfg.scaledProcs(32)},
				{"hv15r-analogue", cfg.hv15r(), cfg.scaledProcs(64)},
			} {
				for _, v := range []struct {
					order string
					g     *graph.CSR
				}{{"original", in.g}, {"RCM", cfg.rcmOf(in.name, in.g)}} {
					st := distgraph.NewBlockDist(v.g, in.p).ProcessGraphStats()
					t.AddRow(in.name, fmt.Sprint(in.p), v.order,
						fmt.Sprint(st.Edges), fmt.Sprint(st.DMax), f2(st.DAvg), f2(st.DSigma))
				}
			}
			t.Notes = append(t.Notes,
				"our scrambled 'original' has a denser process graph than the paper's (already partially ordered) inputs;",
				"the invariant that transfers: RCM localizes communication into few, adjacent, balanced neighbors")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig8",
		Title: "All four implementations on original vs RCM inputs",
		Paper: "NCL gains 2-5x over NSR on RCM inputs; NSR slows 1.2-1.7x on reordered graphs; NSR 1.2-2x over MBP; NCL/RMA 2.5-7x over MBP",
		Run: func(cfg Config) ([]*Table, error) {
			models := cfg.models([]matching.Model{matching.NSR, matching.RMA, matching.NCL, matching.MBP})
			var tables []*Table
			for _, p := range []int{cfg.scaledProcs(32), cfg.scaledProcs(64)} {
				t := &Table{ID: "fig8", Title: fmt.Sprintf("original vs RCM on %d processes", p)}
				t.Headers = []string{"graph"}
				for _, m := range models {
					t.Headers = append(t.Headers, m.String())
				}
				t.Headers = append(t.Headers, "best/NSR")
				for _, in := range []struct {
					name string
					g    *graph.CSR
				}{
					{"cage15", cfg.cage15()},
					{"cage15(RCM)", cfg.rcmOf("cage15-analogue", cfg.cage15())},
					{"hv15r", cfg.hv15r()},
					{"hv15r(RCM)", cfg.rcmOf("hv15r-analogue", cfg.hv15r())},
				} {
					cfg.logf("fig8: %s p=%d", in.name, p)
					row := []string{in.name}
					var nsr, best float64
					for _, m := range models {
						res, err := cfg.match(in.name, in.g, p, m, false)
						if err != nil {
							return nil, fmt.Errorf("%s/%v: %w", in.name, m, err)
						}
						tm := res.Report.MaxVirtualTime
						if m == matching.NSR {
							nsr = tm
						}
						if best == 0 || tm < best {
							best = tm
						}
						row = append(row, ms(tm))
					}
					row = append(row, speedup(nsr, best))
					t.AddRow(row...)
				}
				t.Notes = append(t.Notes, "expected shape: NCL/RMA lead on RCM rows; MBP slowest everywhere")
				tables = append(tables, t)
			}
			return tables, nil
		},
	})

	register(&Experiment{
		ID:    "fig9",
		Title: "Communication byte volumes, original vs RCM (HV15R analogue)",
		Paper: "RCM pulls traffic toward the diagonal; irregular blocks along it cause residual imbalance",
		Run: func(cfg Config) ([]*Table, error) {
			p := cfg.scaledProcs(32)
			var tables []*Table
			grids := make([][]string, 2)
			for i, in := range []struct {
				name string
				g    *graph.CSR
			}{
				{"original", cfg.hv15r()},
				{"RCM", cfg.rcmOf("hv15r-analogue", cfg.hv15r())},
			} {
				res, err := cfg.match("hv15r-"+in.name, in.g, p, matching.NSR, true)
				if err != nil {
					return nil, err
				}
				grids[i] = matrixDensity(res.Report.ByteMatrix(), min(24, p))
			}
			t := &Table{ID: "fig9", Title: fmt.Sprintf("byte volume matrices on %d processes (sender rows, receiver cols)", p),
				Headers: []string{"original", "RCM"}}
			for i := range grids[0] {
				t.AddRow(grids[0][i], grids[1][i])
			}
			t.Notes = append(t.Notes, "expected shape: RCM concentrates volume near the diagonal band")
			tables = append(tables, t)
			return tables, nil
		},
	})
}
