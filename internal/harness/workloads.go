package harness

import (
	"fmt"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Workload generation. Sizes are laptop-scale stand-ins for the paper's
// Table II inputs, preserving each family's structural character (see
// DESIGN.md §2). A process count that was 512-16K on Cori maps to 8-64
// simulated ranks here.
//
// Generated graphs are memoized per (name, scale) because several
// experiments share inputs.

var (
	wlMu    sync.Mutex
	wlCache = map[string]*graph.CSR{}
)

func (c Config) memo(name string, build func() *graph.CSR) *graph.CSR {
	key := fmt.Sprintf("%s@%g", name, c.Scale)
	wlMu.Lock()
	g, ok := wlCache[key]
	wlMu.Unlock()
	if ok {
		return g
	}
	g = build()
	wlMu.Lock()
	wlCache[key] = g
	wlMu.Unlock()
	return g
}

// rggWeak returns the weak-scaling RGG input for p ranks: vertices grow
// linearly with p and the x-sorted strip ordering bounds every rank's
// process neighborhood to <= 2 (paper Fig 4a).
func (c Config) rggWeak(p int) *graph.CSR {
	return c.memo(fmt.Sprintf("rgg-weak-%d", p), func() *graph.CSR {
		n := c.scaled(3000) * p
		return gen.RGG(n, gen.RGGRadiusForDegree(n, 8), 1001+int64(p))
	})
}

// rmatWeak returns the weak-scaling Graph500 R-MAT input for p ranks:
// edge count doubles with p as in the paper's scale-21..24 sweep.
func (c Config) rmatWeak(p int) *graph.CSR {
	return c.memo(fmt.Sprintf("rmat-weak-%d", p), func() *graph.CSR {
		// Volume matters: the paper's scale-21..24 inputs carry ~65K
		// edges per rank, enough for aggregation to pay; keep that
		// per-rank density at our reduced process counts.
		scale := 13
		for q := 8; q < p; q *= 2 {
			scale++
		}
		if c.Scale >= 2 {
			scale++
		} else if c.Scale <= 0.5 {
			scale -= 2
		} else if c.Scale < 1 {
			scale--
		}
		return gen.Graph500(scale, 2002+int64(p))
	})
}

// sbpWeak returns the weak-scaling stochastic-block-partition (HILO)
// input for p ranks: high overlap across many small blocks, the family
// whose near-complete process graph favors Send-Recv (paper Fig 4c).
func (c Config) sbpWeak(p int) *graph.CSR {
	return c.memo(fmt.Sprintf("sbp-weak-%d", p), func() *graph.CSR {
		// Thin per-rank volume: with a near-complete process graph and
		// few records per neighbor per round, the per-neighbor cost of
		// the blocking collectives dominates and Send-Recv wins, the
		// regime of the paper's Fig 4c.
		n := c.scaled(700) * p
		return gen.SBP(n, n/150, 9, 0.6, 3003+int64(p))
	})
}

// kmerInputs returns the four protein k-mer analogues in the paper's
// Fig 5 size order (V2a < U1a < P1a < V1r).
func (c Config) kmerInputs() []struct {
	Name string
	G    *graph.CSR
} {
	// K-mer vertex ids come from hashing, so the grids are scattered
	// across the id space: scramble the component-local numbering to
	// reproduce the heavy cross-rank traffic the paper observes. Sizes
	// follow the paper's V2a < U1a < P1a < V1r progression (117M, 139M,
	// 298M, 465M edges, scaled down ~1000x).
	mk := func(name string, comps, lo, hi int, seed int64) struct {
		Name string
		G    *graph.CSR
	} {
		return struct {
			Name string
			G    *graph.CSR
		}{name, c.memo("kmer-"+name, func() *graph.CSR {
			g := gen.KMerGrids(c.scaled(comps), lo, hi, seed)
			s, _ := gen.Scramble(g, seed^0x9e37)
			return s
		})}
	}
	return []struct {
		Name string
		G    *graph.CSR
	}{
		mk("V2a", 1400, 5, 9, 41),
		mk("U1a", 1700, 5, 9, 42),
		mk("P1a", 3500, 5, 9, 43),
		mk("V1r", 5500, 5, 9, 44),
	}
}

// orkut returns the moderate social-network analogue (Orkut: 117M edges
// in the paper; heavy-tailed community graph here).
func (c Config) orkut() *graph.CSR {
	return c.memo("orkut", func() *graph.CSR {
		n := c.scaled(24000)
		return gen.Social(n, 12, 51)
	})
}

// friendster returns the large social-network analogue (Friendster:
// 1.8B edges in the paper).
func (c Config) friendster() *graph.CSR {
	return c.memo("friendster", func() *graph.CSR {
		n := c.scaled(80000)
		return gen.Social(n, 10, 52)
	})
}

// cage15 returns the DNA-electrophoresis mesh analogue in its "original"
// vertex order: rows grouped by degree, as matrix collections tend to
// deliver them — bandwidth is poor and per-block work is skewed until
// RCM repairs both.
func (c Config) cage15() *graph.CSR {
	return c.memo("cage15", func() *graph.CSR {
		mesh := gen.BandedMesh(c.scaled(30000), 24, 2.5, 0.002, 61)
		return gen.OrderByDegree(mesh)
	})
}

// hv15r returns the CFD mesh analogue (HV15R: denser rows than cage15),
// also in degree-grouped "original" order.
func (c Config) hv15r() *graph.CSR {
	return c.memo("hv15r", func() *graph.CSR {
		mesh := gen.BandedMesh(c.scaled(36000), 48, 5, 0.001, 63)
		return gen.OrderByDegree(mesh)
	})
}

// profileInputs returns the (name, graph) set for the Fig 10 performance
// profiles: a cross-section of every family at modest size.
func (c Config) profileInputs() []struct {
	Name string
	G    *graph.CSR
} {
	type ng = struct {
		Name string
		G    *graph.CSR
	}
	out := []ng{}
	add := func(name string, build func() *graph.CSR) {
		out = append(out, ng{name, c.memo("profile-"+name, build)})
	}
	add("rgg", func() *graph.CSR {
		n := c.scaled(48000)
		return gen.RGG(n, gen.RGGRadiusForDegree(n, 8), 71)
	})
	add("rmat", func() *graph.CSR {
		sc := 14
		if c.Scale < 0.5 {
			sc = 11
		}
		return gen.Graph500(sc, 72)
	})
	add("sbp", func() *graph.CSR { n := c.scaled(12000); return gen.SBP(n, n/150, 14, 0.5, 73) })
	add("kmer", func() *graph.CSR {
		g := gen.KMerGrids(c.scaled(2500), 5, 9, 74)
		s, _ := gen.Scramble(g, 77)
		return s
	})
	add("social", func() *graph.CSR { return gen.Social(c.scaled(50000), 10, 75) })
	add("banded", func() *graph.CSR { return gen.BandedMesh(c.scaled(40000), 32, 3, 0.002, 76) })
	return out
}
