package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/analysis"
)

// SchemaVersion identifies the JSON layout of Document and its nested
// records. Bump it on any field rename or semantic change so downstream
// consumers (the shape-regression suite, plotting scripts) can refuse
// data they do not understand.
//
// v2 added RunRecord.EventsTruncated and the embedded post-mortem
// analysis record (RunRecord.Analysis); v1 documents remain readable
// (both additions are optional fields).
const SchemaVersion = 2

// RoundPoint is one merged round (or BFS level) of a run's telemetry
// series. Counts are per-round deltas summed over ranks; Unresolved and
// DoneFrac are instantaneous; Time, MaxLinkBytes and MaxQueueBytes are
// maxima over ranks (see telemetry.Point).
type RoundPoint struct {
	Round         int     `json:"round"`
	Time          float64 `json:"time_sec"`
	Unresolved    int64   `json:"unresolved"`
	DoneFrac      float64 `json:"done_frac"`
	Requests      int64   `json:"requests"`
	Rejects       int64   `json:"rejects"`
	Invalids      int64   `json:"invalids"`
	Bytes         int64   `json:"bytes"`
	MaxLinkBytes  int64   `json:"max_link_bytes"`
	MaxQueueBytes int64   `json:"max_queue_bytes"`
}

// ProfileRecord is the §V-D phase breakdown in virtual seconds summed
// over ranks.
type ProfileRecord struct {
	Compute  float64 `json:"compute"`
	Pack     float64 `json:"pack"`
	Exchange float64 `json:"exchange"`
	Unpack   float64 `json:"unpack"`
	Wait     float64 `json:"wait"`
}

// RunRecord serializes one runtime launch.
type RunRecord struct {
	Label    string `json:"label"`
	App      string `json:"app"`
	Input    string `json:"input"`
	Model    string `json:"model,omitempty"`
	Procs    int    `json:"procs"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// TimeSec is the run's modeled time: the maximum virtual clock over
	// ranks at completion.
	TimeSec  float64 `json:"time_sec"`
	Rounds   int     `json:"rounds"`
	Messages int64   `json:"messages"`
	// Msgs/Bytes are the runtime ledger totals (every MPI-level message,
	// including collectives), as opposed to Messages, which counts
	// application protocol records.
	Msgs           int64         `json:"mpi_msgs"`
	Bytes          int64         `json:"mpi_bytes"`
	CollOps        int64         `json:"coll_ops"`
	MaxMemoryBytes int64         `json:"max_memory_bytes"`
	Profile        ProfileRecord `json:"profile"`
	RoundSeries    []RoundPoint  `json:"round_series,omitempty"`
	TelemetryDrops int64         `json:"telemetry_drops,omitempty"`
	// EventsTruncated is set when event tracing was enabled and at least
	// one rank's ring dropped events: any trace-derived view of this run
	// (including Analysis) undercounts late activity.
	EventsTruncated bool `json:"events_truncated,omitempty"`
	// Analysis is the post-mortem wait-state / critical-path / efficiency
	// record (Config.Analyze; requires event tracing).
	Analysis *analysis.Record `json:"analysis,omitempty"`
}

// TableRecord serializes one rendered Table.
type TableRecord struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// ExperimentRecord serializes one experiment regeneration: its tables
// plus every runtime launch it performed, in launch order.
type ExperimentRecord struct {
	ID     string        `json:"id"`
	Title  string        `json:"title"`
	Paper  string        `json:"paper"`
	Tables []TableRecord `json:"tables"`
	Runs   []RunRecord   `json:"runs"`
}

// Document is the top-level JSON artifact matchbench -json emits.
type Document struct {
	Schema      int                 `json:"schema"`
	Generator   string              `json:"generator"`
	Scale       float64             `json:"scale"`
	Experiments []*ExperimentRecord `json:"experiments"`
}

// NewDocument returns an empty schema-versioned document.
func NewDocument(generator string, scale float64) *Document {
	return &Document{Schema: SchemaVersion, Generator: generator, Scale: scale}
}

// Add appends one experiment record.
func (d *Document) Add(rec *ExperimentRecord) {
	d.Experiments = append(d.Experiments, rec)
}

// Write emits the document as indented JSON, reporting encode and write
// errors (callers surface them instead of truncating silently).
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("harness: encoding records: %w", err)
	}
	return nil
}

// newRunRecord converts an observed launch into its serialized form.
// With cfg.Analyze set (and event tracing on), the post-mortem analyzer
// runs over the finished report and its record is embedded.
func newRunRecord(info RunInfo, cfg Config) RunRecord {
	tot := info.Report.Totals()
	p := info.Report.Profile()
	rr := RunRecord{
		Label:    info.Label,
		App:      info.App,
		Input:    info.Input,
		Model:    info.Model,
		Procs:    info.Procs,
		Vertices: info.Vertices,
		Edges:    info.Edges,
		TimeSec:  info.Report.MaxVirtualTime,
		Rounds:   info.Rounds,
		Messages: info.Messages,
		Msgs:     tot.Msgs,
		Bytes:    tot.Bytes,
		CollOps:  tot.CollOps,
		Profile: ProfileRecord{
			Compute: p.Compute, Pack: p.Pack, Exchange: p.Exchange,
			Unpack: p.Unpack, Wait: p.Wait,
		},
	}
	rr.MaxMemoryBytes = tot.MaxMemoryBytes
	if info.Report.EventTracing() {
		for r := 0; r < info.Report.Procs; r++ {
			if info.Report.EventDrops(r) > 0 {
				rr.EventsTruncated = true
				break
			}
		}
		if cfg.Analyze {
			if rec, err := analysis.Analyze(info.Report, analysis.Options{
				Model:     info.Model,
				Cost:      cfg.Cost,
				Telemetry: info.Telemetry,
			}); err == nil {
				rr.Analysis = rec
			}
		}
	}
	if s := info.Telemetry; s != nil {
		rr.TelemetryDrops = s.Drops
		rr.RoundSeries = make([]RoundPoint, len(s.Points))
		for i, pt := range s.Points {
			rr.RoundSeries[i] = RoundPoint{
				Round:         pt.Round,
				Time:          pt.Time,
				Unresolved:    pt.Unresolved,
				DoneFrac:      pt.DoneFrac,
				Requests:      pt.Req,
				Rejects:       pt.Rej,
				Invalids:      pt.Inv,
				Bytes:         pt.Bytes,
				MaxLinkBytes:  pt.MaxLinkBytes,
				MaxQueueBytes: pt.MaxQueueBytes,
			}
		}
	}
	return rr
}

// FindRuns returns the record's runs matching the given input, model
// and procs; empty strings / zero procs match anything.
func (e *ExperimentRecord) FindRuns(input, model string, procs int) []RunRecord {
	var out []RunRecord
	for _, r := range e.Runs {
		if input != "" && r.Input != input {
			continue
		}
		if model != "" && r.Model != model {
			continue
		}
		if procs != 0 && r.Procs != procs {
			continue
		}
		out = append(out, r)
	}
	return out
}

// RenderRounds writes the run's convergence series as an aligned text
// table (the -rounds view): one row per round with virtual time,
// unresolved cross edges, done fraction, per-kind message deltas, byte
// volume and queue depth.
func (r *RunRecord) RenderRounds(w io.Writer) {
	if len(r.RoundSeries) == 0 {
		return
	}
	t := &Table{ID: "rounds", Title: "convergence of " + r.Label,
		Headers: []string{"round", "t(ms)", "unresolved", "done%", "REQ", "REJ", "INV", "bytes", "maxlink", "maxqueue"}}
	for _, p := range r.RoundSeries {
		t.AddRow(fmt.Sprint(p.Round), fmt.Sprintf("%.3f", p.Time*1e3),
			fmt.Sprint(p.Unresolved), f2(100*p.DoneFrac),
			fmt.Sprint(p.Requests), fmt.Sprint(p.Rejects), fmt.Sprint(p.Invalids),
			fmt.Sprint(p.Bytes), fmt.Sprint(p.MaxLinkBytes), fmt.Sprint(p.MaxQueueBytes))
	}
	if r.TelemetryDrops > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d rounds dropped (raise the round-log capacity)", r.TelemetryDrops))
	}
	t.Render(w)
}
