package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// ExampleMatch demonstrates the high-level API: generate a deterministic
// graph, match it distributed under the neighborhood-collective model,
// and confirm the result is exactly the serial locally-dominant matching.
func ExampleMatch() {
	g := gen.Social(5000, 8, 42)
	serial := core.MatchSerial(g)

	res, err := core.Match(g, core.Options{
		Procs:    8,
		Model:    core.NCL,
		Deadline: time.Minute,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("matches serial:", res.Weight == serial.Weight && res.Cardinality == serial.Cardinality)
	fmt.Println("valid:", core.Verify(g, res.Result) == nil)
	// Output:
	// matches serial: true
	// valid: true
}

// ExampleMatch_compareModels runs a volume-heavy social graph under the
// point-to-point baseline and the neighborhood-collective model and
// reports which modeled faster (the paper's Fig 6 regime, where
// aggregation wins by severalfold).
func ExampleMatch_compareModels() {
	g := gen.Social(30000, 10, 7)
	var times [2]float64
	for i, m := range []core.Model{core.NSR, core.NCL} {
		res, err := core.Match(g, core.Options{Procs: 16, Model: m, Deadline: 5 * time.Minute})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		times[i] = res.Report.MaxVirtualTime
	}
	fmt.Println("aggregated collectives faster on a volume-heavy social graph:", times[1] < times[0])
	// Output:
	// aggregated collectives faster on a volume-heavy social graph: true
}
