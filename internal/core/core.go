// Package core is the top-level facade over the paper's primary
// contribution: distributed-memory half-approximate weighted graph
// matching under interchangeable MPI communication models. It re-exports
// the essential types of internal/matching so applications and examples
// can depend on one package:
//
//	g := gen.Social(1_000_000, 16, 42)
//	res, err := core.Match(g, core.Options{Procs: 64, Model: core.NCL})
//	fmt.Println(res.Weight, res.Report.MaxVirtualTime)
//
// The full surface (transports, verification, serial baselines) lives in
// internal/matching; graph construction in internal/graph and
// internal/gen; the MPI-3 runtime in internal/mpi.
package core

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// Model selects a communication model; see matching.Model.
type Model = matching.Model

// Communication models (paper §V-A, plus this repository's extensions).
const (
	NSR  = matching.NSR  // nonblocking Send-Recv baseline
	RMA  = matching.RMA  // MPI-3 one-sided
	NCL  = matching.NCL  // MPI-3 neighborhood collectives
	MBP  = matching.MBP  // MatchBox-P-style synchronous Send-Recv
	NCLI = matching.NCLI // extension: nonblocking (pipelined) neighborhood collectives
	NSRA = matching.NSRA // extension: Send-Recv with sender-side aggregation
	NCLC = matching.NCLC // extension: message-combining neighborhood collectives
)

// Models lists every communication model in presentation order.
var Models = matching.Models

// Options configures a distributed matching run; see matching.Options.
type Options = matching.Options

// Result is a matching; see matching.Result.
type Result = matching.Result

// ParallelResult is a distributed run's outcome; see
// matching.ParallelResult.
type ParallelResult = matching.ParallelResult

// Match runs distributed half-approximate matching on g.
func Match(g *graph.CSR, opt Options) (*ParallelResult, error) {
	return matching.Run(g, opt)
}

// MatchSerial runs the serial locally-dominant algorithm.
func MatchSerial(g *graph.CSR) *Result {
	return matching.Serial(g)
}

// Verify checks that r is a valid matching of g.
func Verify(g *graph.CSR, r *Result) error {
	return matching.Verify(g, r)
}
