package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := gen.Social(2000, 8, 1)
	serial := core.MatchSerial(g)
	if err := core.Verify(g, serial); err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Model{core.NSR, core.RMA, core.NCL, core.MBP} {
		res, err := core.Match(g, core.Options{Procs: 6, Model: m, Deadline: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := core.Verify(g, res.Result); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Weight != serial.Weight {
			t.Fatalf("%v: weight %g != serial %g", m, res.Weight, serial.Weight)
		}
		if res.Report == nil || res.Report.MaxVirtualTime <= 0 {
			t.Fatalf("%v: missing performance report", m)
		}
	}
}
