package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the text parser: arbitrary input must
// either parse into a structurally valid graph or return an error —
// never panic, never produce a graph that fails Validate.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add(mmSymmetric)
	f.Add(mmGeneral)
	f.Add(mmPattern)
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parser accepted input producing invalid graph: %v", verr)
		}
	})
}

// FuzzDecode hardens the binary reader the same way.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := pathGraph(5).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GMCSR001 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<16 {
			return
		}
		g, err := Decode(bytes.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("decoder accepted bytes producing invalid graph: %v", verr)
		}
	})
}
