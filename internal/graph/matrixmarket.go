package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Matrix Market support. The paper's real-world inputs (Cage15, HV15R,
// Orkut, Friendster, the protein k-mer graphs) are distributed by the
// SuiteSparse Matrix Collection and the MIT Graph Challenge as Matrix
// Market coordinate files; this reader turns them into CSR graphs so the
// benchmark harness can run the originals when they are available
// locally. Supported headers: matrix coordinate {real|integer|pattern}
// {general|symmetric}. Entries off the diagonal become undirected edges
// (both triangle conventions collapse to the same simple graph);
// pattern matrices get unit weights.

// ReadMatrixMarket parses a Matrix Market coordinate stream into an
// undirected weighted graph. Rectangular matrices are rejected.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("graph: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: only coordinate format supported, got %q", header[2])
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("graph: unsupported field type %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("graph: unsupported symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("graph: bad size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("graph: bad row count: %w", err)
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("graph: bad column count: %w", err)
		}
		if nnz, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("graph: bad nnz count: %w", err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %dx%d", rows, cols)
	}

	b := NewBuilder(rows)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		wantCols := 3
		if field == "pattern" {
			wantCols = 2
		}
		if len(f) < wantCols {
			return nil, fmt.Errorf("graph: entry %d malformed: %q", read+1, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: entry %d row: %w", read+1, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: entry %d col: %w", read+1, err)
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return nil, fmt.Errorf("graph: entry %d index (%d,%d) out of range", read+1, i, j)
		}
		w := 1.0
		if field != "pattern" {
			if w, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("graph: entry %d value: %w", read+1, err)
			}
			if w < 0 {
				w = -w // matchers need nonnegative weights; magnitude is standard
			}
		}
		if i != j {
			b.AddEdge(i-1, j-1, w)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("graph: expected %d entries, found %d", nnz, read)
	}
	return b.Build(), nil
}

// LoadMatrixMarket reads a Matrix Market file from path.
func LoadMatrixMarket(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixMarket(f)
}

// WriteMatrixMarket emits the graph as a symmetric real coordinate
// matrix (each undirected edge written once, lower triangle).
func (g *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) <= v { // lower triangle, 1-based
				fmt.Fprintf(bw, "%d %d %g\n", v+1, a+1, ws[i])
			}
		}
	}
	return bw.Flush()
}
