package graph

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// sameCSR reports whether two CSRs are bit-identical.
func sameCSR(a, b *CSR) bool {
	if len(a.Offsets) != len(b.Offsets) || len(a.Adj) != len(b.Adj) || len(a.Weights) != len(b.Weights) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] || a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return true
}

// TestBuildMatchesSerialReference is the tentpole property: on random
// edge lists — duplicates with distinct weights (max-weight merge),
// repeated identical edges, self loops, both endpoint orders — the
// parallel counting-sort Build is bit-identical to the retained serial
// global-sort reference.
func TestBuildMatchesSerialReference(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	f := func(seed int64, nRaw uint16, mRaw uint16) bool {
		n := int(nRaw)%200 + 1
		m := int(mRaw) % 4000
		rng := rand.New(rand.NewSource(seed))
		es := make([]Edge, m)
		for i := range es {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Intn(10) == 0 {
				v = u // forced self loop
			}
			w := float64(rng.Intn(8)) // narrow range: force duplicate weights
			if rng.Intn(2) == 0 {
				w = rng.Float64() * 100
			}
			es[i] = Edge{U: u, V: v, W: w}
		}
		b := NewBuilder(n)
		b.UseEdges(es)
		got := b.Build()
		want := b.buildSerial()
		if !sameCSR(got, want) {
			t.Logf("n=%d m=%d seed=%d: parallel and serial builds differ", n, m, seed)
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildIndependentOfWorkerCount pins the determinism contract
// directly: the same edge list builds the same CSR under GOMAXPROCS=1
// and GOMAXPROCS=8.
func TestBuildIndependentOfWorkerCount(t *testing.T) {
	_, edges := rmatEdges(12, 8, 7)
	build := func(procs int) *CSR {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		b := NewBuilder(1 << 12)
		b.UseEdges(append([]Edge(nil), edges...))
		return b.Build()
	}
	if !sameCSR(build(1), build(8)) {
		t.Fatal("Build output depends on GOMAXPROCS")
	}
}

// TestBuildDuplicateMaxWeightAndLoops pins the merge conventions on a
// hand-built case: duplicates keep the maximum weight regardless of
// endpoint order, self loops vanish.
func TestBuildDuplicateMaxWeightAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.UseEdges([]Edge{
		{U: 0, V: 1, W: 2},
		{U: 1, V: 0, W: 7}, // same edge, reversed, heavier
		{U: 0, V: 1, W: 3},
		{U: 2, V: 2, W: 99}, // self loop: dropped
		{U: 2, V: 3, W: 1},
	})
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 7 {
		t.Fatalf("weight(0,1) = %g,%v, want 7", w, ok)
	}
	if g.Degree(2) != 1 {
		t.Fatalf("self loop survived: deg(2)=%d", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestUseEdgesRangeCheck ensures the bulk path still panics on
// out-of-range endpoints, like AddEdge.
func TestUseEdgesRangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge accepted")
		}
	}()
	NewBuilder(3).UseEdges([]Edge{{U: 0, V: 3, W: 1}})
}

// TestPermuteMatchesBuilderPath checks the direct CSR permute against
// the original builder-roundtrip implementation.
func TestPermuteMatchesBuilderPath(t *testing.T) {
	g := randomGraph(t, 300, 2000, 11)
	perm := rand.New(rand.NewSource(12)).Perm(300)
	got := g.Permute(perm)
	// Reference: the old implementation, via the builder.
	b := NewBuilder(300)
	for v := 0; v < 300; v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) >= v {
				b.AddEdge(perm[v], perm[int(a)], ws[i])
			}
		}
	}
	if !sameCSR(got, b.Build()) {
		t.Fatal("direct Permute differs from builder-path permute")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	g := pathGraph(4)
	for _, bad := range [][]int{{0, 1, 2, 2}, {0, 1, 2, 4}, {-1, 1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v accepted", bad)
				}
			}()
			g.Permute(bad)
		}()
	}
}

// TestSummaryMatchesNaive cross-checks the fused parallel Summary
// against independently computed quantities.
func TestSummaryMatchesNaive(t *testing.T) {
	g := randomGraph(t, 500, 3000, 13)
	st := g.Summary()
	if st.Edges != g.NumEdges() {
		t.Errorf("Edges=%d, NumEdges=%d", st.Edges, g.NumEdges())
	}
	if st.MaxDeg != g.MaxDegree() {
		t.Errorf("MaxDeg=%d, MaxDegree=%d", st.MaxDeg, g.MaxDegree())
	}
	if st.Bandwidth != g.Bandwidth() {
		t.Errorf("Bandwidth=%d, want %d", st.Bandwidth, g.Bandwidth())
	}
	if st.AvgDeg != g.AvgDegree() {
		t.Errorf("AvgDeg=%g, want %g", st.AvgDeg, g.AvgDegree())
	}
	minW, maxW := g.Weights[0], g.Weights[0]
	for _, w := range g.Weights {
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if st.MinW != minW || st.MaxW != maxW {
		t.Errorf("weights [%g,%g], want [%g,%g]", st.MinW, st.MaxW, minW, maxW)
	}
}

func TestSummaryEmptyGraph(t *testing.T) {
	st := (&CSR{Offsets: []int64{0}}).Summary()
	if st.Vertices != 0 || st.Edges != 0 || st.MinW != 0 || st.MaxW != 0 {
		t.Errorf("empty summary = %+v", st)
	}
	if st2 := (&CSR{}).Summary(); st2.Vertices != 0 {
		t.Errorf("zero-value summary = %+v", st2)
	}
}

func TestSortArcsOrdersPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		a := make([]int32, n)
		w := make([]float64, n)
		for i := range a {
			a[i] = int32(rng.Intn(10)) // heavy duplication
			w[i] = float64(rng.Intn(4))
		}
		sortArcs(a, w)
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] || (a[i-1] == a[i] && w[i-1] > w[i]) {
				t.Fatalf("trial %d: unsorted at %d: (%d,%g) before (%d,%g)", trial, i, a[i-1], w[i-1], a[i], w[i])
			}
		}
	}
}
