package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph returns a path 0-1-...-(n-1) with unit weights.
func pathGraph(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

func randomGraph(t testing.TB, n int, m int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()*100)
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("random graph invalid: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 2.5}, {1, 2, 1.0}, {2, 3, 4.0}, {0, 3, 0.5}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 || g.NumArcs() != 8 {
		t.Errorf("sizes: V=%d E=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 2.5 {
		t.Errorf("EdgeWeight(1,0) = %v,%v", w, ok)
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge 0-2")
	}
	if g.Degree(0) != 2 || g.Degree(2) != 2 {
		t.Error("bad degrees")
	}
}

func TestBuilderDedupKeepsMaxWeight(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 0, 7) // same edge, reversed, heavier
	b.AddEdge(0, 1, 5)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 7 {
		t.Errorf("weight = %g, want max 7", w)
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 5)
	b.AddEdge(0, 2, 1)
	g := b.Build()
	if g.NumEdges() != 1 || g.Degree(1) != 0 {
		t.Errorf("self loop survived: E=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Error("empty graph misreports")
	}
	g2 := NewBuilder(5).Build() // isolated vertices
	if g2.NumVertices() != 5 || g2.NumEdges() != 0 {
		t.Error("isolated-vertex graph misreports")
	}
}

func TestBandwidthAndProfile(t *testing.T) {
	p := pathGraph(6)
	if bw := p.Bandwidth(); bw != 1 {
		t.Errorf("path bandwidth = %d, want 1", bw)
	}
	if pr := p.Profile(); pr != 5 {
		t.Errorf("path profile = %d, want 5", pr)
	}
	g := FromEdges(10, []Edge{{0, 9, 1}})
	if bw := g.Bandwidth(); bw != 9 {
		t.Errorf("bandwidth = %d, want 9", bw)
	}
}

func TestPermuteIsIsomorphic(t *testing.T) {
	g := randomGraph(t, 30, 80, 1)
	perm := rand.New(rand.NewSource(2)).Perm(30)
	h := g.Permute(perm)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), h.NumEdges())
	}
	for v := 0; v < 30; v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			w, ok := h.EdgeWeight(perm[v], perm[int(a)])
			if !ok || w != ws[i] {
				t.Fatalf("edge {%d,%d} lost or reweighted under permutation", v, a)
			}
		}
	}
	if d := h.TotalWeight() - g.TotalWeight(); d > 1e-9 || d < -1e-9 {
		t.Errorf("total weight changed under permutation by %g", d)
	}
}

func TestSummary(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {0, 2, 2}, {0, 3, 3}})
	st := g.Summary()
	if st.MaxDeg != 3 || st.Edges != 3 || st.AvgDeg != 1.5 {
		t.Errorf("summary = %+v", st)
	}
	if st.MinW != 1 || st.MaxW != 3 {
		t.Errorf("weight range = [%g,%g]", st.MinW, st.MaxW)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	h := g.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 20, 50, 3)
	h := FromEdges(20, g.EdgeList())
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("edge list lost edges")
	}
	for v := 0; v < 20; v++ {
		if h.Degree(v) != g.Degree(v) {
			t.Fatal("edge list changed structure")
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := randomGraph(t, 25, 60, 4)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
		t.Fatal("sizes changed in round trip")
	}
	for i := range g.Adj {
		if g.Adj[i] != h.Adj[i] || g.Weights[i] != h.Weights[i] {
			t.Fatal("payload changed in round trip")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a graph file"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestKeyOfSymmetricAndTotal(t *testing.T) {
	k1 := KeyOf(3, 8, 1.5)
	k2 := KeyOf(8, 3, 1.5)
	if k1 != k2 {
		t.Error("edge key not symmetric in endpoints")
	}
	// Same weight, different edges: hash must discriminate.
	a := KeyOf(0, 1, 1.0)
	b := KeyOf(1, 2, 1.0)
	if a == b {
		t.Error("distinct edges share a key")
	}
	if !a.Less(b) && !b.Less(a) {
		t.Error("keys not totally ordered")
	}
	// Weight dominates hash.
	lo := KeyOf(5, 6, 1.0)
	hi := KeyOf(7, 8, 2.0)
	if !lo.Less(hi) {
		t.Error("heavier edge must order above lighter regardless of hash")
	}
}

func TestCSRInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw) + 1
		g := randomGraph(t, n, m, seed)
		if g.Validate() != nil {
			return false
		}
		// Arc count is even (no self loops) and equals 2*NumEdges.
		if g.NumArcs()%2 != 0 || g.NumArcs() != 2*g.NumEdges() {
			return false
		}
		// Handshake: sum of degrees equals arc count.
		var degSum int64
		for v := 0; v < n; v++ {
			degSum += int64(g.Degree(v))
		}
		return degSum == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteInverseQuick(t *testing.T) {
	// Property: permuting by p then by p^-1 restores the original arrays.
	f := func(seed int64) bool {
		g := randomGraph(t, 15, 40, seed)
		perm := rand.New(rand.NewSource(seed ^ 0x55)).Perm(15)
		inv := make([]int, 15)
		for i, p := range perm {
			inv[p] = i
		}
		back := g.Permute(perm).Permute(inv)
		if back.NumArcs() != g.NumArcs() {
			return false
		}
		for i := range g.Adj {
			if g.Adj[i] != back.Adj[i] || g.Weights[i] != back.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	// 5, 6 isolated
	g := b.Build()
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0-1-2 should share a component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("3-4 should be their own component")
	}
	if labels[5] == labels[6] {
		t.Error("isolated vertices must differ")
	}
	sizes := g.ComponentSizes()
	if len(sizes) != 4 || sizes[labels[0]] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	if g.LargestComponent() != 3 {
		t.Errorf("largest = %d", g.LargestComponent())
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if _, count := g.ConnectedComponents(); count != 0 {
		t.Error("empty graph has components")
	}
	if g.LargestComponent() != 0 {
		t.Error("largest of empty")
	}
}

func TestComponentsQuick(t *testing.T) {
	// Property: endpoints of every edge share a label; label count equals
	// number of distinct labels; path graph has one component.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := randomGraph(t, n, n, seed)
		labels, count := g.ConnectedComponents()
		seen := map[int]bool{}
		for v := 0; v < n; v++ {
			if labels[v] < 0 || labels[v] >= count {
				return false
			}
			seen[labels[v]] = true
			for _, a := range g.Neighbors(v) {
				if labels[a] != labels[v] {
					return false
				}
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if _, count := pathGraph(10).ConnectedComponents(); count != 1 {
		t.Error("path must be one component")
	}
}

func TestBuilderArgumentChecks(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("negative builder", func() { NewBuilder(-1) })
	b := NewBuilder(3)
	assertPanics("edge out of range", func() { b.AddEdge(0, 5, 1) })
	assertPanics("negative vertex", func() { b.AddEdge(-1, 0, 1) })
	b.AddEdge(0, 1, 1)
	if b.NumEdgesAdded() != 1 {
		t.Errorf("NumEdgesAdded = %d", b.NumEdgesAdded())
	}
	g := b.Build()
	if g.AvgDegree() != 2.0/3.0 {
		t.Errorf("avg degree = %g", g.AvgDegree())
	}
	assertPanics("permute wrong length", func() { g.Permute([]int{0}) })
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *CSR { return FromEdges(3, []Edge{{0, 1, 2}, {1, 2, 3}}) }

	g := mk()
	g.Offsets[1] = 99 // non-monotone / out of bounds
	if g.Validate() == nil {
		t.Error("bad offsets accepted")
	}

	g = mk()
	g.Adj[0] = 77 // out-of-range neighbor
	if g.Validate() == nil {
		t.Error("out-of-range neighbor accepted")
	}

	g = mk()
	g.Weights[0] = 99 // asymmetric weight
	if g.Validate() == nil {
		t.Error("asymmetric weight accepted")
	}

	g = mk()
	g.Weights = g.Weights[:1] // length mismatch
	if g.Validate() == nil {
		t.Error("weights length mismatch accepted")
	}
}

func TestSaveLoadFileErrors(t *testing.T) {
	g := pathGraph(3)
	if err := g.SaveFile("/nonexistent-dir/x.csr"); err == nil {
		t.Error("save to bad path accepted")
	}
	if _, err := LoadFile("/nonexistent-dir/x.csr"); err == nil {
		t.Error("load of missing file accepted")
	}
	dir := t.TempDir()
	if err := g.SaveFile(dir + "/g.csr"); err != nil {
		t.Fatal(err)
	}
	h, err := LoadFile(dir + "/g.csr")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Error("file round trip lost edges")
	}
}
