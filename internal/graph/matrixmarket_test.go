package graph

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const mmSymmetric = `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
2 1 5.0
3 1 1.5
3 2 2.5
`

const mmGeneral = `%%MatrixMarket matrix coordinate real general
3 3 4
1 2 5.0
2 1 5.0
1 3 1.5
2 2 9.0
`

const mmPattern = `%%MatrixMarket matrix coordinate pattern symmetric
4 4 3
2 1
3 2
4 3
`

func TestReadMatrixMarketSymmetric(t *testing.T) {
	g, err := ReadMatrixMarket(strings.NewReader(mmSymmetric))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 5.0 {
		t.Errorf("edge 0-1 = %v %v", w, ok)
	}
}

func TestReadMatrixMarketGeneralDedupsAndDropsDiagonal(t *testing.T) {
	g, err := ReadMatrixMarket(strings.NewReader(mmGeneral))
	if err != nil {
		t.Fatal(err)
	}
	// (1,2) and (2,1) collapse; (2,2) diagonal dropped.
	if g.NumEdges() != 2 {
		t.Fatalf("E=%d, want 2", g.NumEdges())
	}
	if g.Degree(1) != 1 {
		t.Errorf("degree(1)=%d", g.Degree(1))
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	g, err := ReadMatrixMarket(strings.NewReader(mmPattern))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("E=%d", g.NumEdges())
	}
	for _, w := range g.Weights {
		if w != 1 {
			t.Fatal("pattern weights must be unit")
		}
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not mm":      "hello\n1 1 1\n",
		"array":       "%%MatrixMarket matrix array real general\n2 2 4\n",
		"complex":     "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1 0\n",
		"rectangular": "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n",
		"range":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5 1.0\n",
		"truncated":   "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 2 1.0\n",
		"bad value":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 xyz\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := randomGraph(t, 20, 45, 9)
	var buf bytes.Buffer
	if err := g.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() || h.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip changed sizes")
	}
	for v := 0; v < 20; v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if w, ok := h.EdgeWeight(v, int(a)); !ok || w != ws[i] {
				t.Fatalf("edge {%d,%d} lost in round trip", v, a)
			}
		}
	}
}

func TestReadMatrixMarketNegativeWeightsAbs(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -3.5\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 3.5 {
		t.Errorf("weight = %g, want |−3.5|", w)
	}
}

func TestLoadFileDetectsMatrixMarket(t *testing.T) {
	g := randomGraph(t, 10, 20, 15)
	dir := t.TempDir()
	mtx := dir + "/g.mtx"
	f, err := os.Create(mtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteMatrixMarket(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	bin := dir + "/g.csr"
	if err := g.SaveFile(bin); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{mtx, bin} {
		h, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if h.NumEdges() != g.NumEdges() {
			t.Errorf("%s: edges %d != %d", path, h.NumEdges(), g.NumEdges())
		}
	}
}
