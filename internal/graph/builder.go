package graph

import (
	"fmt"
	"sort"
)

// Edge is one undirected weighted edge for builder input.
type Edge struct {
	U, V int
	W    float64
}

// Builder accumulates undirected edges and produces a CSR. Duplicate
// edges are merged keeping the maximum weight (the convention used by the
// SuiteSparse-derived matching literature); self loops are dropped, since
// a matching can never use them.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBuilder(%d): negative size", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v} with weight w. Order of u,v
// is irrelevant. Self loops are silently ignored.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// NumEdgesAdded returns how many AddEdge calls were recorded (before
// dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build produces the CSR. The builder may be reused afterwards; Build
// does not clear it.
func (b *Builder) Build() *CSR {
	// Dedup on canonicalized (u,v), keeping max weight.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0:0]
	for _, e := range b.edges {
		if k := len(uniq) - 1; k >= 0 && uniq[k].U == e.U && uniq[k].V == e.V {
			if e.W > uniq[k].W {
				uniq[k].W = e.W
			}
			continue
		}
		uniq = append(uniq, e)
	}

	deg := make([]int64, b.n+1)
	for _, e := range uniq {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	g := &CSR{
		Offsets: deg,
		Adj:     make([]int32, deg[b.n]),
		Weights: make([]float64, deg[b.n]),
	}
	cursor := make([]int64, b.n)
	copy(cursor, deg[:b.n])
	place := func(u, v int, w float64) {
		g.Adj[cursor[u]] = int32(v)
		g.Weights[cursor[u]] = w
		cursor[u]++
	}
	for _, e := range uniq {
		place(e.U, e.V, e.W)
		place(e.V, e.U, e.W)
	}
	// Rows were filled in (U,V)-sorted edge order: U-side entries arrive
	// sorted, V-side entries may interleave, so sort each row.
	for v := 0; v < b.n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		row := rowSorter{adj: g.Adj[lo:hi], w: g.Weights[lo:hi]}
		sort.Sort(row)
	}
	return g
}

type rowSorter struct {
	adj []int32
	w   []float64
}

func (r rowSorter) Len() int           { return len(r.adj) }
func (r rowSorter) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// FromEdges is a convenience constructor.
func FromEdges(n int, edges []Edge) *CSR {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build()
}

// EdgeList returns each undirected edge once, in (U,V) sorted order.
func (g *CSR) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumArcs()/2)
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) > v {
				out = append(out, Edge{U: v, V: int(a), W: ws[i]})
			}
		}
	}
	return out
}
