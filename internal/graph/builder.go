package graph

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// Edge is one undirected weighted edge for builder input.
type Edge struct {
	U, V int
	W    float64
}

// Builder accumulates undirected edges and produces a CSR. Duplicate
// edges are merged keeping the maximum weight (the convention used by the
// SuiteSparse-derived matching literature); self loops are dropped, since
// a matching can never use them.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBuilder(%d): negative size", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v} with weight w. Order of u,v
// is irrelevant. Self loops are silently ignored.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// UseEdges adopts es as the builder's edge list without copying — the
// bulk path the parallel generators use after writing samples directly
// into a preallocated slice. Endpoints are range-checked here; unlike
// AddEdge, entries need not be canonicalized: Build swaps U>V pairs and
// drops U==V self loops itself, so generators may leave dead samples as
// self loops. The builder owns es afterwards.
func (b *Builder) UseEdges(es []Edge) {
	for k := range es {
		e := &es[k]
		if e.U < 0 || e.U >= b.n || e.V < 0 || e.V >= b.n {
			panic(fmt.Sprintf("graph: UseEdges: edge {%d,%d} out of range [0,%d)", e.U, e.V, b.n))
		}
	}
	b.edges = es
}

// NumEdgesAdded returns how many edges were recorded (before dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Grain sizes for the parallel ingest passes: coarse enough that span
// bookkeeping is noise, fine enough that real inputs fan out.
const (
	edgeGrain   = 8192
	vertexGrain = 1024
)

// Build produces the CSR with a parallel LSD radix sort over the arcs,
// O(m) with no comparison sort anywhere: (1) per-span per-vertex arc
// counts, (2) placement into rows — which, read arcs-as-(dst, src), is
// exactly the arcs sorted by destination — (3) a stable counting
// scatter of that sequence by source, after which every row is sorted
// by neighbor, then a max-weight dedup scan and a final compaction to
// the deduplicated offsets. Every pass fans out over par.Workers().
//
// The result is a pure function of the edge *multiset* — duplicate
// (src, dst) arcs land adjacently in span-dependent order, but the
// commutative max-weight merge erases it — so the CSR is bit-identical
// for any GOMAXPROCS, and bit-identical to the retained serial
// reference (buildSerial). The builder may be reused afterwards; Build
// does not clear it.
func (b *Builder) Build() *CSR {
	n, m := b.n, len(b.edges)
	g := &CSR{Offsets: make([]int64, n+1), Adj: []int32{}, Weights: []float64{}}
	if m == 0 || n == 0 {
		return g
	}

	// Pass 1: per-span arc counts per vertex. Self loops are dropped;
	// both endpoints of every other edge count one arc.
	spans := par.Split(m, edgeGrain)
	w := len(spans)
	cnt := make([]int32, w*n)
	par.Do(spans, func(si, lo, hi int) {
		c := cnt[si*n : si*n+n]
		for k := lo; k < hi; k++ {
			e := &b.edges[k]
			if e.U == e.V {
				continue
			}
			c[e.U]++
			c[e.V]++
		}
	})

	// Turn the counts into per-span write bases: for each vertex, an
	// exclusive prefix across spans (so span si writes its arcs for v at
	// poff[v]+cnt[si*n+v]...), and the duplicate-inclusive row width into
	// the provisional offsets.
	poff := make([]int64, n+1)
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var s int32
			for si := 0; si < w; si++ {
				c := &cnt[si*n+v]
				s, *c = s+*c, s
			}
			poff[v+1] = int64(s)
		}
	})
	for v := 0; v < n; v++ {
		poff[v+1] += poff[v]
	}

	// Pass 2: placement with duplicates, same span partition as pass 1
	// so the per-span bases line up. Row u of tmp holds u's neighbors in
	// arbitrary order — equivalently, reading the rows in order, tmp is
	// the arc sequence (dst=u, src=tmpAdj[i]) sorted by destination: the
	// first key pass of an LSD radix sort by (src, dst).
	tmpAdj := make([]int32, poff[n])
	tmpWts := make([]float64, poff[n])
	par.Do(spans, func(si, lo, hi int) {
		c := cnt[si*n : si*n+n]
		for k := lo; k < hi; k++ {
			e := &b.edges[k]
			u, v := e.U, e.V
			if u == v {
				continue
			}
			i := poff[u] + int64(c[u])
			c[u]++
			tmpAdj[i], tmpWts[i] = int32(v), e.W
			j := poff[v] + int64(c[v])
			c[v]++
			tmpAdj[j], tmpWts[j] = int32(u), e.W
		}
	})

	// Pass 3: stable counting scatter of the dst-sorted arc sequence by
	// source — the second radix pass. Stability preserves the ascending
	// destination order within each source row, so rows come out sorted
	// by neighbor with no comparison sort. The graph is symmetric, so
	// per-source row widths equal the pass-1 widths and poff serves as
	// the base offsets again; only the per-span sub-counts are new.
	vspans := par.Split(n, vertexGrain)
	w2 := len(vspans)
	cnt2 := make([]int32, w2*n)
	par.Do(vspans, func(si, lo, hi int) {
		c := cnt2[si*n : si*n+n]
		for i := poff[lo]; i < poff[hi]; i++ {
			c[tmpAdj[i]]++
		}
	})
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var s int32
			for si := 0; si < w2; si++ {
				c := &cnt2[si*n+v]
				s, *c = s+*c, s
			}
		}
	})
	adj := make([]int32, poff[n])
	wts := make([]float64, poff[n])
	par.Do(vspans, func(si, lo, hi int) {
		c := cnt2[si*n : si*n+n]
		for v := lo; v < hi; v++ {
			for i := poff[v]; i < poff[v+1]; i++ {
				s := tmpAdj[i]
				j := poff[s] + int64(c[s])
				c[s]++
				adj[j], wts[j] = int32(v), tmpWts[i]
			}
		}
	})

	// Pass 4: max-weight dedup, in place. Duplicate (src, dst) arcs are
	// adjacent now; their relative order still depends on the pass-2
	// span partition, but max is commutative, so the compacted row is a
	// pure function of the multiset.
	uniq := make([]int32, n)
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ra := adj[poff[v]:poff[v+1]]
			rw := wts[poff[v]:poff[v+1]]
			k := 0
			for i := range ra {
				if k > 0 && ra[k-1] == ra[i] {
					if rw[i] > rw[k-1] {
						rw[k-1] = rw[i]
					}
					continue
				}
				ra[k], rw[k] = ra[i], rw[i]
				k++
			}
			uniq[v] = int32(k)
		}
	})

	// Final offsets over the deduplicated widths, then compact.
	for v := 0; v < n; v++ {
		g.Offsets[v+1] = g.Offsets[v] + int64(uniq[v])
	}
	g.Adj = make([]int32, g.Offsets[n])
	g.Weights = make([]float64, g.Offsets[n])
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			o, k := g.Offsets[v], int64(uniq[v])
			copy(g.Adj[o:o+k], adj[poff[v]:])
			copy(g.Weights[o:o+k], wts[poff[v]:])
		}
	})
	return g
}

// buildSerial is the retained serial reference: the original global-sort
// construction (O(m log m) with interface comparators). It is kept so
// the property suite can assert the parallel Build is bit-identical to
// it on arbitrary edge lists; it is not on any hot path.
func (b *Builder) buildSerial() *CSR {
	// AddEdge canonicalizes eagerly, UseEdges defers to Build; normalize
	// here so the reference accepts both input forms.
	canon := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		canon = append(canon, e)
	}
	// Dedup on canonicalized (u,v), keeping max weight.
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	uniq := canon[:0:0]
	for _, e := range canon {
		if k := len(uniq) - 1; k >= 0 && uniq[k].U == e.U && uniq[k].V == e.V {
			if e.W > uniq[k].W {
				uniq[k].W = e.W
			}
			continue
		}
		uniq = append(uniq, e)
	}

	deg := make([]int64, b.n+1)
	for _, e := range uniq {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	g := &CSR{
		Offsets: deg,
		Adj:     make([]int32, deg[b.n]),
		Weights: make([]float64, deg[b.n]),
	}
	cursor := make([]int64, b.n)
	copy(cursor, deg[:b.n])
	place := func(u, v int, w float64) {
		g.Adj[cursor[u]] = int32(v)
		g.Weights[cursor[u]] = w
		cursor[u]++
	}
	for _, e := range uniq {
		place(e.U, e.V, e.W)
		place(e.V, e.U, e.W)
	}
	// Rows were filled in (U,V)-sorted edge order: U-side entries arrive
	// sorted, V-side entries may interleave, so sort each row.
	for v := 0; v < b.n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		row := rowSorter{adj: g.Adj[lo:hi], w: g.Weights[lo:hi]}
		sort.Sort(row)
	}
	return g
}

type rowSorter struct {
	adj []int32
	w   []float64
}

func (r rowSorter) Len() int           { return len(r.adj) }
func (r rowSorter) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// FromEdges is a convenience constructor.
func FromEdges(n int, edges []Edge) *CSR {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build()
}

// EdgeList returns each undirected edge once, in (U,V) sorted order.
func (g *CSR) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumArcs()/2)
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) > v {
				out = append(out, Edge{U: v, V: int(a), W: ws[i]})
			}
		}
	}
	return out
}
