package graph

// ConnectedComponents labels each vertex with a component id in [0, k)
// and returns the labels plus k. Component ids are assigned in order of
// each component's smallest vertex. Used by the k-mer workload analysis
// (those graphs are unions of many small grids) and by diagnostics.
func (g *CSR) ConnectedComponents() (labels []int, count int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = count
		queue = append(queue[:0], int32(v))
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, a := range g.Neighbors(int(x)) {
				if labels[a] < 0 {
					labels[a] = count
					queue = append(queue, a)
				}
			}
		}
		count++
	}
	return labels, count
}

// ComponentSizes returns the vertex count of every component, indexed by
// component id.
func (g *CSR) ComponentSizes() []int {
	labels, count := g.ConnectedComponents()
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// LargestComponent returns the vertex count of the largest connected
// component (0 for an empty graph).
func (g *CSR) LargestComponent() int {
	max := 0
	for _, s := range g.ComponentSizes() {
		if s > max {
			max = s
		}
	}
	return max
}
