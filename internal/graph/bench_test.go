package graph

import (
	"math/rand"
	"testing"
)

// rmatEdges samples an RMAT-style edge list (Graph500 quadrant
// probabilities) for builder benchmarks, without going through the gen
// package (graph must stay importable from gen).
func rmatEdges(scale, edgeFactor int, seed int64) (int, []Edge) {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < 0.57:
			case r < 0.76:
				v |= 1 << bit
			case r < 0.95:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, Edge{U: u, V: v, W: rng.Float64() * 100})
	}
	return n, edges
}

// benchBuild measures one build path alone: the edge list is staged
// outside the timer each iteration (a build may reorder the builder's
// edge slice).
func benchBuild(b *testing.B, scale, edgeFactor int, build func(*Builder) *CSR) {
	n, pristine := rmatEdges(scale, edgeFactor, 1)
	builder := NewBuilder(n)
	builder.edges = make([]Edge, len(pristine))
	b.SetBytes(int64(len(pristine)) * 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(builder.edges, pristine)
		b.StartTimer()
		g := build(builder)
		if g.NumVertices() != n {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkBuildRMAT1M is the acceptance benchmark: CSR construction
// from a >=1M-edge RMAT sample (scale 17, edge factor 8).
func BenchmarkBuildRMAT1M(b *testing.B) { benchBuild(b, 17, 8, (*Builder).Build) }

// BenchmarkBuildRMAT128K is a smaller variant for quick comparisons.
func BenchmarkBuildRMAT128K(b *testing.B) { benchBuild(b, 14, 8, (*Builder).Build) }

// BenchmarkBuildSerialRMAT1M measures the retained serial reference
// (the pre-radix global-sort construction) on the same input, so the
// Build speedup in BENCH_graph.json can be reproduced as a ratio of two
// contemporaneous runs rather than against stale numbers.
func BenchmarkBuildSerialRMAT1M(b *testing.B) { benchBuild(b, 17, 8, (*Builder).buildSerial) }

func BenchmarkPermute(b *testing.B) {
	n, edges := rmatEdges(14, 8, 2)
	g := FromEdges(n, edges)
	perm := rand.New(rand.NewSource(3)).Perm(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Permute(perm).NumVertices() != n {
			b.Fatal("bad permute")
		}
	}
}

func BenchmarkSummary(b *testing.B) {
	n, edges := rmatEdges(14, 8, 4)
	g := FromEdges(n, edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Summary().Vertices != n {
			b.Fatal("bad summary")
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	n, edges := rmatEdges(14, 8, 5)
	g := FromEdges(n, edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Validate() != nil {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkNumEdges(b *testing.B) {
	n, edges := rmatEdges(14, 8, 6)
	g := FromEdges(n, edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.NumEdges() == 0 {
			b.Fatal("no edges")
		}
		_ = n
	}
}
