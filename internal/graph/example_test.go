package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// ExampleBuilder shows basic graph construction and queries.
func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1.0)
	b.AddEdge(0, 1, 4.0) // duplicate: max weight wins
	g := b.Build()

	fmt.Println("vertices:", g.NumVertices())
	fmt.Println("edges:", g.NumEdges())
	w, _ := g.EdgeWeight(0, 1)
	fmt.Println("weight(0,1):", w)
	// Output:
	// vertices: 4
	// edges: 2
	// weight(0,1): 4
}

// ExampleKeyOf shows the hashed total order that breaks weight ties.
func ExampleKeyOf() {
	a := graph.KeyOf(0, 1, 1.0)
	b := graph.KeyOf(1, 2, 1.0) // same weight, different edge
	fmt.Println("distinct keys:", a != b)
	fmt.Println("symmetric:", graph.KeyOf(1, 0, 1.0) == a)
	// Output:
	// distinct keys: true
	// symmetric: true
}
