package graph

// sortArcs sorts the parallel (neighbor id, weight) arrays ascending by
// (id, weight). It is the concrete-typed row sort on the ingest hot
// path: no interface comparator, no closure — a three-way quicksort with
// median-of-three pivoting, falling back to insertion sort on small
// slices. The (id, weight) order is total for comparable weights, so the
// sorted row is independent of the input permutation — the property the
// parallel builder's determinism rests on.
func sortArcs(a []int32, w []float64) {
	for len(a) > 24 {
		// Median-of-three pivot, moved to position 0.
		n := len(a)
		m := n / 2
		if arcLess(a[m], w[m], a[0], w[0]) {
			arcSwap(a, w, m, 0)
		}
		if arcLess(a[n-1], w[n-1], a[0], w[0]) {
			arcSwap(a, w, n-1, 0)
		}
		if arcLess(a[n-1], w[n-1], a[m], w[m]) {
			arcSwap(a, w, n-1, m)
		}
		arcSwap(a, w, 0, m)
		pa, pw := a[0], w[0]

		// Three-way partition: [0,lt) < pivot, [lt,gt) == pivot, [gt,n) >
		// pivot. Duplicate-heavy rows stay linear.
		lt, i, gt := 0, 1, n
		for i < gt {
			switch {
			case arcLess(a[i], w[i], pa, pw):
				arcSwap(a, w, i, lt)
				lt++
				i++
			case arcLess(pa, pw, a[i], w[i]):
				gt--
				arcSwap(a, w, i, gt)
			default:
				i++
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if lt < n-gt {
			sortArcs(a[:lt], w[:lt])
			a, w = a[gt:], w[gt:]
		} else {
			sortArcs(a[gt:], w[gt:])
			a, w = a[:lt], w[:lt]
		}
	}
	// Insertion sort tail, shifting rather than swapping: the displaced
	// run moves one store per element instead of a full dual-array swap.
	for i := 1; i < len(a); i++ {
		ka, kw := a[i], w[i]
		j := i
		for j > 0 && arcLess(ka, kw, a[j-1], w[j-1]) {
			a[j], w[j] = a[j-1], w[j-1]
			j--
		}
		a[j], w[j] = ka, kw
	}
}

func arcLess(a1 int32, w1 float64, a2 int32, w2 float64) bool {
	if a1 != a2 {
		return a1 < a2
	}
	return w1 < w2
}

func arcSwap(a []int32, w []float64, i, j int) {
	a[i], a[j] = a[j], a[i]
	w[i], w[j] = w[j], w[i]
}
