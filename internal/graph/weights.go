package graph

import "repro/internal/rng"

// Tie-breaking for edge weights.
//
// The locally-dominant matching algorithm stalls into long sequential
// chains when many adjacent edges share one weight (paper §III-A: paths
// and grids with ordered vertex numbering are pathological). The standard
// fix, which the paper adopts, is to extend the weight comparison with a
// hash of the endpoint ids, producing a strict total order on edges. With
// a strict total order the locally-dominant matching is unique, which
// also gives the test suite its strongest oracle: every parallel variant
// must reproduce the serial matching exactly.

// EdgeKey is a totally ordered comparison key for an undirected edge.
type EdgeKey struct {
	W float64
	H uint64
}

// Less reports whether k orders strictly below o (lower weight, hash as
// tiebreak).
func (k EdgeKey) Less(o EdgeKey) bool {
	if k.W != o.W {
		return k.W < o.W
	}
	return k.H < o.H
}

// KeyOf returns the comparison key of edge {u,v} with weight w. The key
// is symmetric in u and v. The mixer is the shared SplitMix64 (rng.Mix),
// bit-identical to the local copy this package used to carry.
func KeyOf(u, v int, w float64) EdgeKey {
	a, b := uint64(u), uint64(v)
	if a > b {
		a, b = b, a
	}
	return EdgeKey{W: w, H: rng.Mix(a*0x9E3779B97F4A7C15 ^ rng.Mix(b))}
}

// HashID mixes a single vertex id (exported for generators that want
// reproducible pseudo-random weights keyed by structure).
func HashID(v int) uint64 { return rng.Mix(uint64(v)) }
