package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// Binary graph format (little endian):
//
//	magic   uint64  'G','M','C','S','R','0','0','1'
//	n       uint64  vertices
//	m       uint64  arcs
//	offsets (n+1) * int64
//	adj     m * int32
//	weights m * float64
//
// The format exists so cmd/gengraph can persist generated inputs and the
// benchmark harness can reload them without regeneration.

var magic = [8]byte{'G', 'M', 'C', 'S', 'R', '0', '0', '1'}

// Encode serializes the graph to w.
func (g *CSR) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	n := uint64(g.NumVertices())
	m := uint64(len(g.Adj))
	for _, v := range []uint64{n, m} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, section := range []any{g.Offsets, g.Adj, g.Weights} {
		if err := binary.Write(bw, binary.LittleEndian, section); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode deserializes a graph written by Encode.
func Decode(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("graph: bad magic %q", got[:])
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	const limit = 1 << 31
	if n > limit || m > limit {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	// Read each section in bounded chunks so a corrupt header cannot
	// trigger a giant allocation before the (short) payload disproves it.
	g := &CSR{}
	if err := readChunked(br, int(n+1), &g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := readChunked(br, int(m), &g.Adj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	if err := readChunked(br, int(m), &g.Weights); err != nil {
		return nil, fmt.Errorf("graph: reading weights: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return g, nil
}

// SaveFile writes the graph to path.
func (g *CSR) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path. Files ending in .mtx are parsed as
// Matrix Market; everything else as the binary CSR format.
func LoadFile(path string) (*CSR, error) {
	if strings.HasSuffix(path, ".mtx") {
		return LoadMatrixMarket(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// readChunked reads exactly count little-endian elements into *dst,
// growing the slice in bounded increments so untrusted headers cannot
// force a huge allocation ahead of the data that would justify it.
func readChunked[T int32 | int64 | float64](r io.Reader, count int, dst *[]T) error {
	const chunk = 1 << 16
	out := make([]T, 0, min(count, chunk))
	for len(out) < count {
		k := min(count-len(out), chunk)
		part := make([]T, k)
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return err
		}
		out = append(out, part...)
	}
	*dst = out
	return nil
}
