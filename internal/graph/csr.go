// Package graph provides the in-memory graph representation shared by the
// matching and BFS codes: undirected, edge-weighted graphs in Compressed
// Sparse Row (CSR) form, plus builders, statistics, permutation and a
// simple binary serialization.
//
// Vertices are dense integers in [0, N). An undirected edge {u,v} is
// stored twice (u's row holds v and vice versa), as in the paper's
// distribution (§IV-A), so CSR.NumArcs() == 2 * CSR.NumEdges() for simple
// graphs without self loops.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// CSR is an undirected weighted graph in compressed sparse row format.
// The zero value is an empty graph.
type CSR struct {
	// Offsets has length NumVertices()+1; vertex v's arcs occupy
	// Adj[Offsets[v]:Offsets[v+1]] with parallel Weights.
	Offsets []int64
	// Adj holds neighbor vertex ids.
	Adj []int32
	// Weights holds the edge weight for each arc. Both arcs of one
	// undirected edge carry the same weight.
	Weights []float64
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumArcs returns the number of stored directed arcs (twice the edge
// count for a simple undirected graph).
func (g *CSR) NumArcs() int64 { return int64(len(g.Adj)) }

// NumEdges returns the number of undirected edges, counting self loops
// once.
func (g *CSR) NumEdges() int64 {
	return edgesFromLoops(g.NumArcs(), g.countLoops(0, g.NumVertices()))
}

// countLoops counts self arcs in rows [lo,hi) with one flat walk over
// Adj — no per-vertex Neighbors slicing. Summary reuses it per span.
func (g *CSR) countLoops(lo, hi int) int64 {
	var loops int64
	for v := lo; v < hi; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			if g.Adj[k] == int32(v) {
				loops++
			}
		}
	}
	return loops
}

// edgesFromLoops converts an arc count to an undirected edge count:
// every non-loop edge is stored as two arcs, every self loop as one.
func edgesFromLoops(arcs, loops int64) int64 {
	return (arcs-loops)/2 + loops
}

// Degree returns the number of arcs out of v.
func (g *CSR) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *CSR) Neighbors(v int) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v).
func (g *CSR) NeighborWeights(v int) []float64 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether the arc u->v exists (neighbors are sorted by
// the builder, so this is a binary search).
func (g *CSR) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// EdgeWeight returns the weight of arc u->v; ok is false if absent.
func (g *CSR) EdgeWeight(u, v int) (w float64, ok bool) {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	if i < len(nbrs) && nbrs[i] == int32(v) {
		return g.NeighborWeights(u)[i], true
	}
	return 0, false
}

// Validate checks structural invariants: monotone offsets, in-range
// neighbor ids, sorted rows, and symmetry (u in Adj[v] iff v in Adj[u]
// with equal weights). Both phases fan out over vertex ranges; the
// violation at the lowest vertex of the failing phase is returned, as in
// the serial scan.
func (g *CSR) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) > 0 && g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	if len(g.Adj) != len(g.Weights) {
		return fmt.Errorf("graph: len(Adj)=%d != len(Weights)=%d", len(g.Adj), len(g.Weights))
	}
	// Structure phase: every row's offsets guard its own slicing, so
	// spans are independently safe even on corrupt inputs.
	if err := g.firstError(n, func(v int) error {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: Offsets not monotone at %d", v)
		}
		if g.Offsets[v] < 0 || g.Offsets[v+1] > int64(len(g.Adj)) {
			return fmt.Errorf("graph: Offsets[%d..%d] = [%d,%d] outside Adj of %d entries",
				v, v+1, g.Offsets[v], g.Offsets[v+1], len(g.Adj))
		}
		nbrs := g.Neighbors(v)
		for i, a := range nbrs {
			if a < 0 || int(a) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, a)
			}
			if i > 0 && nbrs[i-1] >= a {
				return fmt.Errorf("graph: vertex %d row not strictly sorted at position %d", v, i)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if len(g.Offsets) > 0 && int(g.Offsets[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Offsets[n]=%d != len(Adj)=%d", g.Offsets[n], len(g.Adj))
	}
	// Symmetry phase: runs only on structurally sound graphs, so the
	// binary searches cannot index out of range.
	return g.firstError(n, func(v int) error {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) == v {
				continue
			}
			w, ok := g.EdgeWeight(int(a), v)
			if !ok {
				return fmt.Errorf("graph: edge %d->%d has no reverse arc", v, a)
			}
			if w != ws[i] {
				return fmt.Errorf("graph: edge {%d,%d} weight mismatch: %g vs %g", v, a, ws[i], w)
			}
		}
		return nil
	})
}

// firstError runs check over all vertices in parallel spans and returns
// the error of the lowest-vertex violation (spans stop at their first
// hit; span order recovers global order).
func (g *CSR) firstError(n int, check func(v int) error) error {
	spans := par.Split(n, vertexGrain)
	errs := make([]error, len(spans))
	par.Do(spans, func(si, lo, hi int) {
		for v := lo; v < hi; v++ {
			if err := check(v); err != nil {
				errs[si] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TotalWeight returns the sum of all undirected edge weights.
func (g *CSR) TotalWeight() float64 {
	var s float64
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) >= v { // count each undirected edge once
				s += ws[i]
			}
		}
	}
	return s
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(g.NumVertices())
}

// Bandwidth returns the matrix bandwidth of the adjacency structure: the
// maximum |u-v| over all edges. RCM reordering aims to reduce it
// (paper §V-C).
func (g *CSR) Bandwidth() int {
	bw := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Neighbors(v) {
			if d := v - int(a); d > bw {
				bw = d
			} else if -d > bw {
				bw = -d
			}
		}
	}
	return bw
}

// Profile returns the envelope size: sum over rows of (v - min neighbor)
// for rows with at least one neighbor below v; a finer-grained measure of
// how tightly the structure hugs the diagonal than Bandwidth.
func (g *CSR) Profile() int64 {
	var p int64
	for v := 0; v < g.NumVertices(); v++ {
		min := v
		for _, a := range g.Neighbors(v) {
			if int(a) < min {
				min = int(a)
			}
		}
		p += int64(v - min)
	}
	return p
}

// Permute relabels vertices: newID = perm[oldID]. It returns a new
// graph; perm must be a permutation of [0,N). The relabeling is direct
// CSR-to-CSR — each old row lands as one new row, in parallel over
// vertex ranges, with a per-row sort restoring neighbor order — instead
// of a round trip through the edge-list builder. Self loops (possible
// only in hand-decoded graphs) are dropped, as the builder path did.
func (g *CSR) Permute(perm []int) *CSR {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: Permute: len(perm)=%d, want %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("graph: Permute: perm is not a permutation of [0,%d)", n))
		}
		seen[p] = true
	}
	ng := &CSR{Offsets: make([]int64, n+1)}
	// New row widths: perm is a bijection, so writes are disjoint.
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			d := int64(0)
			for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
				if g.Adj[k] != int32(v) {
					d++
				}
			}
			ng.Offsets[perm[v]+1] = d
		}
	})
	for v := 0; v < n; v++ {
		ng.Offsets[v+1] += ng.Offsets[v]
	}
	ng.Adj = make([]int32, ng.Offsets[n])
	ng.Weights = make([]float64, ng.Offsets[n])
	par.Ranges(n, vertexGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			o := ng.Offsets[perm[v]]
			i := int64(0)
			for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
				if a := g.Adj[k]; a != int32(v) {
					ng.Adj[o+i] = int32(perm[a])
					ng.Weights[o+i] = g.Weights[k]
					i++
				}
			}
			sortArcs(ng.Adj[o:o+i], ng.Weights[o:o+i])
		}
	})
	return ng
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// up to and including the max degree.
func (g *CSR) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Stats bundles summary statistics for reporting.
type Stats struct {
	Vertices  int
	Edges     int64
	MaxDeg    int
	AvgDeg    float64
	SigmaDeg  float64
	Bandwidth int
	MinW      float64
	MaxW      float64
}

// Summary computes Stats in one parallel pass over vertex ranges. Each
// span reads its rows once — degree comes straight off Offsets (the old
// code called Degree three times per vertex), bandwidth, weight extrema
// and the self-loop count for the edge total (the NumEdges identity,
// via countLoops per span) all ride the same walk — and the span
// partials merge exactly.
func (g *CSR) Summary() Stats {
	n := g.NumVertices()
	st := Stats{Vertices: n, MinW: math.Inf(1), MaxW: math.Inf(-1)}
	type partial struct {
		sum, sumSq float64
		maxDeg, bw int
		loops      int64
		minW, maxW float64
	}
	spans := par.Split(n, vertexGrain)
	parts := make([]partial, len(spans))
	par.Do(spans, func(si, lo, hi int) {
		p := partial{minW: math.Inf(1), maxW: math.Inf(-1)}
		for v := lo; v < hi; v++ {
			d := g.Offsets[v+1] - g.Offsets[v]
			p.sum += float64(d)
			p.sumSq += float64(d) * float64(d)
			if int(d) > p.maxDeg {
				p.maxDeg = int(d)
			}
			for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
				if s := v - int(g.Adj[k]); s > p.bw {
					p.bw = s
				} else if -s > p.bw {
					p.bw = -s
				}
				w := g.Weights[k]
				if w < p.minW {
					p.minW = w
				}
				if w > p.maxW {
					p.maxW = w
				}
			}
		}
		p.loops = g.countLoops(lo, hi)
		parts[si] = p
	})
	var sum, sumSq float64
	var loops int64
	for _, p := range parts {
		sum += p.sum
		sumSq += p.sumSq
		loops += p.loops
		if p.maxDeg > st.MaxDeg {
			st.MaxDeg = p.maxDeg
		}
		if p.bw > st.Bandwidth {
			st.Bandwidth = p.bw
		}
		if p.minW < st.MinW {
			st.MinW = p.minW
		}
		if p.maxW > st.MaxW {
			st.MaxW = p.maxW
		}
	}
	st.Edges = edgesFromLoops(g.NumArcs(), loops)
	if len(g.Weights) == 0 {
		st.MinW, st.MaxW = 0, 0
	}
	if n > 0 {
		st.AvgDeg = sum / float64(n)
		variance := sumSq/float64(n) - st.AvgDeg*st.AvgDeg
		if variance > 0 {
			st.SigmaDeg = math.Sqrt(variance)
		}
	}
	return st
}

func (st Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d dmax=%d davg=%.2f sigma=%.2f bw=%d w=[%.3g,%.3g]",
		st.Vertices, st.Edges, st.MaxDeg, st.AvgDeg, st.SigmaDeg, st.Bandwidth, st.MinW, st.MaxW)
}
