// Package graph provides the in-memory graph representation shared by the
// matching and BFS codes: undirected, edge-weighted graphs in Compressed
// Sparse Row (CSR) form, plus builders, statistics, permutation and a
// simple binary serialization.
//
// Vertices are dense integers in [0, N). An undirected edge {u,v} is
// stored twice (u's row holds v and vice versa), as in the paper's
// distribution (§IV-A), so CSR.NumArcs() == 2 * CSR.NumEdges() for simple
// graphs without self loops.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// CSR is an undirected weighted graph in compressed sparse row format.
// The zero value is an empty graph.
type CSR struct {
	// Offsets has length NumVertices()+1; vertex v's arcs occupy
	// Adj[Offsets[v]:Offsets[v+1]] with parallel Weights.
	Offsets []int64
	// Adj holds neighbor vertex ids.
	Adj []int32
	// Weights holds the edge weight for each arc. Both arcs of one
	// undirected edge carry the same weight.
	Weights []float64
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumArcs returns the number of stored directed arcs (twice the edge
// count for a simple undirected graph).
func (g *CSR) NumArcs() int64 { return int64(len(g.Adj)) }

// NumEdges returns the number of undirected edges, counting self loops
// once.
func (g *CSR) NumEdges() int64 {
	var loops int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Neighbors(v) {
			if int(a) == v {
				loops++
			}
		}
	}
	return (g.NumArcs()-loops)/2 + loops
}

// Degree returns the number of arcs out of v.
func (g *CSR) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *CSR) Neighbors(v int) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v).
func (g *CSR) NeighborWeights(v int) []float64 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether the arc u->v exists (neighbors are sorted by
// the builder, so this is a binary search).
func (g *CSR) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// EdgeWeight returns the weight of arc u->v; ok is false if absent.
func (g *CSR) EdgeWeight(u, v int) (w float64, ok bool) {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	if i < len(nbrs) && nbrs[i] == int32(v) {
		return g.NeighborWeights(u)[i], true
	}
	return 0, false
}

// Validate checks structural invariants: monotone offsets, in-range
// neighbor ids, sorted rows, and symmetry (u in Adj[v] iff v in Adj[u]
// with equal weights). It returns the first violation found.
func (g *CSR) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) > 0 && g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	if len(g.Adj) != len(g.Weights) {
		return fmt.Errorf("graph: len(Adj)=%d != len(Weights)=%d", len(g.Adj), len(g.Weights))
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: Offsets not monotone at %d", v)
		}
		if g.Offsets[v] < 0 || g.Offsets[v+1] > int64(len(g.Adj)) {
			return fmt.Errorf("graph: Offsets[%d..%d] = [%d,%d] outside Adj of %d entries",
				v, v+1, g.Offsets[v], g.Offsets[v+1], len(g.Adj))
		}
		nbrs := g.Neighbors(v)
		for i, a := range nbrs {
			if a < 0 || int(a) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, a)
			}
			if i > 0 && nbrs[i-1] >= a {
				return fmt.Errorf("graph: vertex %d row not strictly sorted at position %d", v, i)
			}
		}
	}
	if int(g.Offsets[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Offsets[n]=%d != len(Adj)=%d", g.Offsets[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) == v {
				continue
			}
			w, ok := g.EdgeWeight(int(a), v)
			if !ok {
				return fmt.Errorf("graph: edge %d->%d has no reverse arc", v, a)
			}
			if w != ws[i] {
				return fmt.Errorf("graph: edge {%d,%d} weight mismatch: %g vs %g", v, a, ws[i], w)
			}
		}
	}
	return nil
}

// TotalWeight returns the sum of all undirected edge weights.
func (g *CSR) TotalWeight() float64 {
	var s float64
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) >= v { // count each undirected edge once
				s += ws[i]
			}
		}
	}
	return s
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(g.NumVertices())
}

// Bandwidth returns the matrix bandwidth of the adjacency structure: the
// maximum |u-v| over all edges. RCM reordering aims to reduce it
// (paper §V-C).
func (g *CSR) Bandwidth() int {
	bw := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Neighbors(v) {
			if d := v - int(a); d > bw {
				bw = d
			} else if -d > bw {
				bw = -d
			}
		}
	}
	return bw
}

// Profile returns the envelope size: sum over rows of (v - min neighbor)
// for rows with at least one neighbor below v; a finer-grained measure of
// how tightly the structure hugs the diagonal than Bandwidth.
func (g *CSR) Profile() int64 {
	var p int64
	for v := 0; v < g.NumVertices(); v++ {
		min := v
		for _, a := range g.Neighbors(v) {
			if int(a) < min {
				min = int(a)
			}
		}
		p += int64(v - min)
	}
	return p
}

// Permute relabels vertices: newID = perm[oldID]. It returns a new graph;
// perm must be a permutation of [0,N).
func (g *CSR) Permute(perm []int) *CSR {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: Permute: len(perm)=%d, want %d", len(perm), n))
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		ws := g.NeighborWeights(v)
		for i, a := range g.Neighbors(v) {
			if int(a) >= v {
				b.AddEdge(perm[v], perm[int(a)], ws[i])
			}
		}
	}
	return b.Build()
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// up to and including the max degree.
func (g *CSR) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Stats bundles summary statistics for reporting.
type Stats struct {
	Vertices  int
	Edges     int64
	MaxDeg    int
	AvgDeg    float64
	SigmaDeg  float64
	Bandwidth int
	MinW      float64
	MaxW      float64
}

// Summary computes Stats in one pass over the graph.
func (g *CSR) Summary() Stats {
	n := g.NumVertices()
	st := Stats{Vertices: n, Edges: g.NumEdges(), Bandwidth: g.Bandwidth(), MinW: math.Inf(1), MaxW: math.Inf(-1)}
	var sum, sumSq float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		sum += d
		sumSq += d * d
		if g.Degree(v) > st.MaxDeg {
			st.MaxDeg = g.Degree(v)
		}
	}
	for _, w := range g.Weights {
		if w < st.MinW {
			st.MinW = w
		}
		if w > st.MaxW {
			st.MaxW = w
		}
	}
	if len(g.Weights) == 0 {
		st.MinW, st.MaxW = 0, 0
	}
	if n > 0 {
		st.AvgDeg = sum / float64(n)
		variance := sumSq/float64(n) - st.AvgDeg*st.AvgDeg
		if variance > 0 {
			st.SigmaDeg = math.Sqrt(variance)
		}
	}
	return st
}

func (st Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d dmax=%d davg=%.2f sigma=%.2f bw=%d w=[%.3g,%.3g]",
		st.Vertices, st.Edges, st.MaxDeg, st.AvgDeg, st.SigmaDeg, st.Bandwidth, st.MinW, st.MaxW)
}
