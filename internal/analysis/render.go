package analysis

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Text rendering for cmd/matchprof and matchbench -analyze. The package
// deliberately does not import internal/harness (harness will embed
// analysis Records), so it carries its own small tabwriter helpers; the
// output style matches the harness tables.

// Render writes the full report: wait states, critical path, efficiency
// and (when present) the per-round resolution.
func (r *Record) Render(w io.Writer, label string) {
	if label == "" {
		label = Label(r.Model, r.Procs)
	}
	fmt.Fprintf(w, "== %s: %s total, %s blocked across %d ranks (%d events)\n",
		label, fsec(r.TimeSec), fsec(r.TotalWaitSec), r.Procs, r.Events)
	if r.EventsTruncated {
		fmt.Fprintf(w, "WARNING: event rings dropped %d events; analysis is a prefix view (raise TraceEvents)\n",
			r.DroppedEvents)
	}
	r.RenderWaitStates(w)
	r.RenderCriticalPath(w)
	r.RenderEfficiency(w)
	r.RenderRounds(w)
}

// RenderWaitStates writes the wait-state classification table. Derived
// classes (probe_spin, late_receiver) are marked: they measure overhead
// evidence, not blocked time, and do not sum into the total.
func (r *Record) RenderWaitStates(w io.Writer) {
	if len(r.WaitStates) == 0 {
		fmt.Fprintln(w, "wait states: none recorded")
		return
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "wait state\tseconds\tshare\tcount\ttop causes")
	anyDerived := false
	for _, ws := range r.WaitStates {
		class := ws.Class
		if ws.Derived {
			class += " *"
			anyDerived = true
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n",
			class, fsec(ws.Seconds), pct(ws.Share), ws.Count, causeList(ws.TopCauses, 3))
	}
	tw.Flush()
	if anyDerived {
		fmt.Fprintln(w, "  (* derived: overhead evidence, outside the blocked total)")
	}
}

// RenderCriticalPath writes the path length, its activity breakdown and
// the bounding dependency edges.
func (r *Record) RenderCriticalPath(w io.Writer) {
	cp := &r.CriticalPath
	fmt.Fprintf(w, "critical path: %s across %d cross-rank hops", fsec(cp.LengthSec), cp.Hops)
	if cp.Truncated {
		fmt.Fprint(w, " (truncated)")
	}
	fmt.Fprintln(w)
	if len(cp.ByKind) > 0 {
		kinds := make([]string, 0, len(cp.ByKind))
		for k := range cp.ByKind {
			kinds = append(kinds, k)
		}
		sortByKindDesc(kinds, cp.ByKind)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s %s (%s)", k, fsec(cp.ByKind[k]), pct(cp.ByKind[k]/nonZero(cp.LengthSec))))
		}
		fmt.Fprintf(w, "  by activity: %s\n", strings.Join(parts, ", "))
	}
	if len(cp.RankShares) > 0 {
		parts := make([]string, 0, len(cp.RankShares))
		for _, rs := range cp.RankShares {
			parts = append(parts, fmt.Sprintf("r%d %s", rs.Rank, pct(rs.Seconds/nonZero(cp.LengthSec))))
		}
		fmt.Fprintf(w, "  by rank: %s\n", strings.Join(parts, ", "))
	}
	if len(cp.TopEdges) > 0 {
		tw := newTab(w)
		fmt.Fprintln(tw, "  edge\tclass\twait\ttransfer\tat")
		for _, e := range cp.TopEdges {
			fmt.Fprintf(tw, "  r%d<-r%d\t%s\t%s\t%s\t%s\n",
				e.Rank, e.Peer, e.Class, fsec(e.WaitSec), fsec(e.TransferSec), fsec(e.AtSec))
		}
		tw.Flush()
	}
}

// RenderEfficiency writes the POP factorization one metric per line.
func (r *Record) RenderEfficiency(w io.Writer) {
	e := &r.Efficiency
	fmt.Fprintf(w, "efficiency: parallel %s = load balance %s x comm %s (serialization %s x transfer %s); useful avg %s max %s\n",
		pct(e.ParallelEff), pct(e.LoadBalance), pct(e.CommEff),
		pct(e.SerializationEff), pct(e.TransferEff),
		fsec(e.AvgUsefulSec), fsec(e.MaxUsefulSec))
}

// RenderRounds writes the per-round wait resolution when telemetry was
// attached (no-op otherwise).
func (r *Record) RenderRounds(w io.Writer) {
	if len(r.Rounds) == 0 {
		return
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "round\tend\twait\twait%\tdominant")
	for _, re := range r.Rounds {
		dom := "-"
		if re.Dominant != "" {
			dom = fmt.Sprintf("%s (%s)", re.Dominant, pct(re.DominantShare))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			re.Round, fsec(re.TimeSec), fsec(re.WaitSec), pct(re.WaitFrac), dom)
	}
	tw.Flush()
}

// RenderComparison writes one row per record: the per-model efficiency
// comparison matchprof prints when asked for several models.
func RenderComparison(w io.Writer, recs []*Record) {
	tw := newTab(w)
	fmt.Fprintln(tw, "model\tprocs\ttime\twait%\tpar eff\tload bal\tcomm eff\thops\tdominant wait")
	for _, r := range recs {
		if r == nil {
			continue
		}
		waitFrac := 0.0
		if r.TimeSec > 0 && r.Procs > 0 {
			waitFrac = r.TotalWaitSec / (r.TimeSec * float64(r.Procs))
		}
		dom := "-"
		for _, ws := range r.WaitStates {
			if !ws.Derived {
				dom = fmt.Sprintf("%s (%s)", ws.Class, pct(ws.Share))
				break
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%d\t%s\n",
			orDash(r.Model), r.Procs, fsec(r.TimeSec), pct(waitFrac),
			pct(r.Efficiency.ParallelEff), pct(r.Efficiency.LoadBalance),
			pct(r.Efficiency.CommEff), r.CriticalPath.Hops, dom)
	}
	tw.Flush()
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sortByKindDesc orders activity names by their seconds, largest first,
// name as tiebreak.
func sortByKindDesc(kinds []string, sec map[string]float64) {
	for i := 1; i < len(kinds); i++ {
		for j := i; j > 0; j-- {
			a, b := kinds[j-1], kinds[j]
			if sec[b] > sec[a] || (sec[b] == sec[a] && b < a) {
				kinds[j-1], kinds[j] = b, a
			} else {
				break
			}
		}
	}
}

func causeList(causes []Cause, k int) string {
	if len(causes) == 0 {
		return "-"
	}
	if len(causes) > k {
		causes = causes[:k]
	}
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = fmt.Sprintf("r%d %s", c.Rank, fsec(c.Seconds))
	}
	return strings.Join(parts, ", ")
}

// fsec renders virtual seconds with an auto-scaled unit.
func fsec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3fus", s*1e6)
	default:
		return fmt.Sprintf("%.1fns", s*1e9)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

func nonZero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
