package analysis

import (
	"sort"

	"repro/internal/mpi"
)

// criticalPath walks the virtual-time critical path backward from the
// last rank to finish. The walk alternates two moves:
//
//   - On the current rank, find the latest blocked interval (EvWait)
//     ending at or before the cursor and attribute the wait-free window
//     between its end and the cursor to the rank's local activity
//     (traced primitives by category, event-free time as compute).
//
//   - If that wait carries a dependency edge (a causing peer and its
//     clock CauseT when it enabled progress), the in-flight span from
//     CauseT to the wait's end is transfer time on the path and the walk
//     hops to (peer, CauseT). Waits without a usable edge are charged to
//     the current rank as blocked time and the walk continues locally at
//     the wait's start.
//
// Each step extends the covered suffix of [0, T] downward, so the path
// tiles the run exactly and LengthSec equals the end-to-end virtual time
// by construction. Rings are sorted by End, which makes the latest-wait
// lookup a binary search plus an amortized-linear backward scan.
func criticalPath(rep *mpi.Report, exchangeClass string, topK int) Path {
	p := Path{
		LengthSec: rep.MaxVirtualTime,
		ByKind:    map[string]float64{},
	}
	n := rep.Procs
	rank := 0
	for r := 1; r < n; r++ {
		if rep.FinalTimes[r] > rep.FinalTimes[rank] {
			rank = r
		}
	}
	t := rep.MaxVirtualTime
	localSec := make([]float64, n)
	var edges []Edge

	// The cursor strictly decreases every step, and each step consumes at
	// least one event or terminates, so total steps are bounded by the
	// event count; the cap is a safety net against malformed timestamps.
	maxSteps := n + 1
	for r := 0; r < n; r++ {
		maxSteps += len(rep.Events(r))
	}
	for step := 0; t > 0; step++ {
		if step > maxSteps {
			p.Truncated = true
			break
		}
		events := rep.Events(rank)
		// Latest EvWait with End <= t. Positions only move downward per
		// rank across visits, so the backward scans never re-cover ground.
		i := sort.Search(len(events), func(k int) bool { return events[k].End > t }) - 1
		for i >= 0 && events[i].Kind != mpi.EvWait {
			i--
		}
		if i < 0 {
			// No blocked interval remains below the cursor: the rank's
			// whole prefix [0, t] is on the path.
			localSec[rank] += attributeWindow(events, 0, t, p.ByKind)
			p.Hops = len(edges)
			break
		}
		w := events[i]
		localSec[rank] += attributeWindow(events, w.End, t, p.ByKind)
		if w.Class != mpi.WaitNone && w.Peer >= 0 && w.Peer < n && w.CauseT < w.End {
			// A usable dependency edge: (CauseT, w.End] was in flight.
			transfer := w.End - w.CauseT
			p.ByKind["transfer"] += transfer
			localSec[rank] += transfer
			edges = append(edges, Edge{
				Rank:        rank,
				Peer:        w.Peer,
				Class:       pathClass(w.Class, exchangeClass),
				WaitSec:     w.End - w.Start,
				TransferSec: transfer,
				AtSec:       w.End,
			})
			rank, t = w.Peer, w.CauseT
			continue
		}
		// No causal edge recorded (unclassified wait, or a cause clock
		// that would not move the cursor backward): the blocked span is
		// charged here and the walk continues on the same rank.
		blocked := w.End - w.Start
		p.ByKind["blocked"] += blocked
		localSec[rank] += blocked
		t = w.Start
	}
	p.Hops = len(edges)
	if rep.EventTracing() {
		for r := 0; r < n; r++ {
			if rep.EventDrops(r) > 0 {
				p.Truncated = true
			}
		}
	}
	p.RankShares = topShares(localSec, topK)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].WaitSec != edges[j].WaitSec {
			return edges[i].WaitSec > edges[j].WaitSec
		}
		if edges[i].AtSec != edges[j].AtSec {
			return edges[i].AtSec > edges[j].AtSec
		}
		return edges[i].Rank < edges[j].Rank
	})
	if len(edges) > topK {
		edges = edges[:topK]
	}
	p.TopEdges = edges
	return p
}

// pathClass maps a runtime wait class to the serialized edge class,
// routing neighborhood-exchange waits through the model-dependent label
// (wait_at_fence under RMA).
func pathClass(c mpi.WaitClass, exchangeClass string) string {
	switch c {
	case mpi.WaitLateSender:
		return ClassLateSender
	case mpi.WaitNbrExchange:
		return exchangeClass
	case mpi.WaitCollective:
		return ClassCollective
	}
	return ClassUnclassified
}

// attributeWindow attributes the wait-free window (lo, hi] of one rank's
// timeline to activity kinds: traced non-wait events clipped to the
// window by their Chrome-trace category, uncovered time as compute.
// Overlapping events (a recv slice spanning the blocked probe inside it)
// are coverage-merged so no second is counted twice. Returns hi - lo.
func attributeWindow(events []mpi.Event, lo, hi float64, byKind map[string]float64) float64 {
	if hi <= lo {
		return 0
	}
	i := sort.Search(len(events), func(k int) bool { return events[k].End > lo })
	cov := lo
	for ; i < len(events) && events[i].End <= hi; i++ {
		e := events[i]
		if e.Kind == mpi.EvWait {
			continue // none strictly inside by construction; skip zero-width edges
		}
		s, end := e.Start, e.End
		if s < cov {
			s = cov
		}
		if end <= s {
			continue
		}
		if s > cov {
			byKind["compute"] += s - cov
		}
		byKind[e.Kind.Category()] += end - s
		cov = end
	}
	if hi > cov {
		byKind["compute"] += hi - cov
	}
	return hi - lo
}

// topShares returns the k heaviest per-rank contributions, by seconds
// then rank.
func topShares(localSec []float64, k int) []RankShare {
	out := make([]RankShare, 0, 8)
	for r, s := range localSec {
		if s > 0 {
			out = append(out, RankShare{Rank: r, Seconds: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Rank < out[j].Rank
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
