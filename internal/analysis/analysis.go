// Package analysis is the post-mortem trace analyzer: it consumes a
// finished, event-traced mpi.Report and explains *why* a run spent its
// time the way the §V-D phase profiles say it did. Three products come
// out of one pass over the event rings:
//
//   - a wait-state classification of every blocked interval in the
//     Scalasca taxonomy (late-sender, wait-at-exchange/-fence,
//     wait-at-collective), each with the causing peer rank and its
//     virtual-time cost, plus two derived states that need no blocked
//     interval at all: probe-spin (active Iprobe polling that found
//     nothing) and late-receiver (virtual time completed messages spent
//     parked in the unexpected queue because the receiver was late);
//
//   - the virtual-time critical path: a backward walk from the last
//     rank to finish, hopping across ranks through the dependency edges
//     the runtime stamps into classified wait events (message injection
//     times, collective last-entrant clocks). Its length equals the
//     run's end-to-end virtual time exactly, and its segments attribute
//     every second of it to a rank and an activity;
//
//   - POP-style efficiency metrics: parallel efficiency factored into
//     load balance and communication efficiency, with the latter split
//     into serialization and transfer components using the critical
//     path's transfer share. With a telemetry.Series the same wait
//     accounting is resolved per driver round.
//
// Analysis runs strictly after the simulated world has finished — it
// only reads the Report — so the runtime's allocation and scheduling
// behavior is untouched.
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// SchemaVersion identifies the JSON layout of Record. Bump on any field
// rename or semantic change.
const SchemaVersion = 1

// Wait-state class names as serialized in Record.WaitStates. The
// blocked classes partition the runtime's EvWait time; the derived
// classes measure overlap-free overhead that blocks nothing.
const (
	ClassLateSender   = "late_sender"
	ClassExchange     = "wait_at_exchange"
	ClassFence        = "wait_at_fence"
	ClassCollective   = "wait_at_collective"
	ClassUnclassified = "unclassified"
	ClassProbeSpin    = "probe_spin"
	ClassLateReceiver = "late_receiver"
)

// Options parameterizes Analyze.
type Options struct {
	// Model is the communication model's name ("NSR", "RMA", ...). It
	// only affects labeling: under RMA the neighborhood-exchange wait
	// after the flush is the fence-synchronization analogue (paper
	// §IV-D), so its class is reported as wait_at_fence.
	Model string
	// Cost is the run's cost model, used to reconstruct message arrival
	// times for the late-receiver estimate. Nil selects the default
	// model. Under schedule perturbation the estimate is a lower bound
	// (perturbed latencies are never shorter than modeled ones).
	Cost *mpi.CostModel
	// Telemetry, when non-nil, resolves wait states per driver round
	// into Record.Rounds using the series' round-boundary clocks.
	Telemetry *telemetry.Series
	// TopK bounds the per-class cause lists and the critical path's
	// edge list (default 10).
	TopK int
}

// Cause is one peer rank's contribution to a wait-state class.
type Cause struct {
	Rank    int     `json:"rank"`
	Seconds float64 `json:"seconds"`
}

// WaitState aggregates one class of wait time across the run.
type WaitState struct {
	Class string `json:"class"`
	// Seconds is virtual time summed over ranks; Count the number of
	// intervals (or polls, for probe_spin; messages for late_receiver).
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
	// Share is Seconds over the run's total blocked wait time. Derived
	// (non-blocking) classes report the same ratio for comparability;
	// it may exceed 1 when polling overhead dwarfs blocked time.
	Share float64 `json:"share"`
	// Derived marks the classes computed from non-blocking evidence
	// (probe_spin, late_receiver); they are not part of the blocked
	// total.
	Derived bool `json:"derived,omitempty"`
	// TopCauses names the peer ranks responsible for the most seconds.
	TopCauses []Cause `json:"top_causes,omitempty"`
}

// Edge is one cross-rank dependency on the critical path: Rank was
// blocked WaitSec waiting for Peer, and the dependency's in-flight
// (transfer) share of the path is TransferSec, ending at AtSec.
type Edge struct {
	Rank        int     `json:"rank"`
	Peer        int     `json:"peer"`
	Class       string  `json:"class"`
	WaitSec     float64 `json:"wait_sec"`
	TransferSec float64 `json:"transfer_sec"`
	AtSec       float64 `json:"at_sec"`
}

// RankShare is one rank's share of the critical path's local time.
type RankShare struct {
	Rank    int     `json:"rank"`
	Seconds float64 `json:"seconds"`
}

// Path is the virtual-time critical path across ranks.
type Path struct {
	// LengthSec equals the run's end-to-end virtual time exactly: the
	// walk starts at the last completion and tiles [0, LengthSec].
	LengthSec float64 `json:"length_sec"`
	// Hops counts cross-rank dependency edges followed.
	Hops int `json:"hops"`
	// Truncated is set when an exhausted event ring forced the walk to
	// attribute the remaining prefix to the current rank wholesale.
	Truncated bool `json:"truncated,omitempty"`
	// ByKind attributes the path's seconds to activities: compute (and
	// other event-free time), transfer (in-flight dependency edges),
	// blocked (waits with no known cause) and the traced primitive
	// kinds (send, recv, probe, coll, ...).
	ByKind map[string]float64 `json:"by_kind"`
	// RankShares lists the top ranks by on-path local seconds.
	RankShares []RankShare `json:"rank_shares,omitempty"`
	// TopEdges lists the bounding dependency edges by blocked seconds.
	TopEdges []Edge `json:"top_edges,omitempty"`
}

// Efficiency is the POP-style efficiency factorization. All values are
// in [0,1] up to floating-point noise (useful = compute + pack +
// unpack, T = end-to-end virtual time):
//
//	ParallelEff   = avg(useful) / T            = LoadBalance * CommEff
//	LoadBalance   = avg(useful) / max(useful)
//	CommEff       = max(useful) / T            = SerializationEff * TransferEff
//	TransferEff   = (T - transfer-on-critical-path) / T
//	SerializationEff = max(useful) / (T - transfer-on-critical-path)
type Efficiency struct {
	ParallelEff      float64 `json:"parallel_eff"`
	LoadBalance      float64 `json:"load_balance"`
	CommEff          float64 `json:"comm_eff"`
	SerializationEff float64 `json:"serialization_eff"`
	TransferEff      float64 `json:"transfer_eff"`
	AvgUsefulSec     float64 `json:"avg_useful_sec"`
	MaxUsefulSec     float64 `json:"max_useful_sec"`
}

// RoundEff resolves the wait accounting over one driver round: the
// window between consecutive telemetry round boundaries.
type RoundEff struct {
	Round   int     `json:"round"`
	TimeSec float64 `json:"time_sec"` // window end (boundary clock)
	WaitSec float64 `json:"wait_sec"` // blocked time in window, all ranks
	// WaitFrac is WaitSec over the window's total rank-time
	// (procs * window length).
	WaitFrac float64 `json:"wait_frac"`
	// Dominant names the blocked class with the most seconds in the
	// window (empty when the window has no blocked time).
	Dominant      string  `json:"dominant,omitempty"`
	DominantShare float64 `json:"dominant_share,omitempty"`
}

// Record is the analyzer's schema-versioned output, embedded in the
// harness RunRecord JSON and rendered by cmd/matchprof.
type Record struct {
	Schema int    `json:"schema"`
	Model  string `json:"model,omitempty"`
	Procs  int    `json:"procs"`
	// TimeSec is the run's end-to-end virtual time.
	TimeSec float64 `json:"time_sec"`
	// Events is the total number of events analyzed across ranks.
	Events int `json:"events"`
	// EventsTruncated is set when any rank's ring dropped events: the
	// analysis then undercounts late activity and should be read as a
	// prefix view. DroppedEvents totals the discards.
	EventsTruncated bool  `json:"events_truncated,omitempty"`
	DroppedEvents   int64 `json:"dropped_events,omitempty"`
	// TotalWaitSec is all blocked (EvWait) time summed over ranks.
	TotalWaitSec float64     `json:"total_wait_sec"`
	WaitStates   []WaitState `json:"wait_states"`
	CriticalPath Path        `json:"critical_path"`
	Efficiency   Efficiency  `json:"efficiency"`
	Rounds       []RoundEff  `json:"rounds,omitempty"`
}

// WaitState returns the record's entry for the given class, or nil.
func (r *Record) WaitState(class string) *WaitState {
	for i := range r.WaitStates {
		if r.WaitStates[i].Class == class {
			return &r.WaitStates[i]
		}
	}
	return nil
}

// classState is the accumulator behind one WaitState.
type classState struct {
	seconds float64
	count   int64
	causes  map[int]float64
}

func (s *classState) add(cause int, sec float64) {
	s.seconds += sec
	s.count++
	if cause >= 0 {
		if s.causes == nil {
			s.causes = make(map[int]float64)
		}
		s.causes[cause] += sec
	}
}

// Analyze runs the full post-mortem pass over a traced report. It
// returns an error when the run recorded no events (Config.TraceEvents
// was zero) — the analyzer has nothing to read then.
func Analyze(rep *mpi.Report, opts Options) (*Record, error) {
	if rep == nil {
		return nil, errors.New("analysis: nil report")
	}
	if !rep.EventTracing() {
		return nil, errors.New("analysis: run recorded no events (enable event tracing, e.g. matchbench -trace-events or mpi.WithEventTrace)")
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = 10
	}
	cost := opts.Cost
	if cost == nil {
		cost = mpi.DefaultCostModel()
	}

	rec := &Record{
		Schema:  SchemaVersion,
		Model:   opts.Model,
		Procs:   rep.Procs,
		TimeSec: rep.MaxVirtualTime,
	}

	// The RMA implementation has no blocking fence primitive of its
	// own: FlushAll charges the drain and the post-flush neighborhood
	// count exchange is where every rank synchronizes with its peers'
	// epochs (paper §IV-D). Its exchange waits are therefore the fence
	// waits.
	exchangeClass := ClassExchange
	if opts.Model == "RMA" {
		exchangeClass = ClassFence
	}

	states := map[string]*classState{}
	state := func(class string) *classState {
		s := states[class]
		if s == nil {
			s = &classState{}
			states[class] = s
		}
		return s
	}

	for rank := 0; rank < rep.Procs; rank++ {
		if d := rep.EventDrops(rank); d > 0 {
			rec.EventsTruncated = true
			rec.DroppedEvents += d
		}
		events := rep.Events(rank)
		rec.Events += len(events)
		for _, e := range events {
			switch e.Kind {
			case mpi.EvWait:
				d := e.Duration()
				rec.TotalWaitSec += d
				switch e.Class {
				case mpi.WaitLateSender:
					state(ClassLateSender).add(e.Peer, d)
				case mpi.WaitNbrExchange:
					state(exchangeClass).add(e.Peer, d)
				case mpi.WaitCollective:
					state(ClassCollective).add(e.Peer, d)
				default:
					state(ClassUnclassified).add(-1, d)
				}
			case mpi.EvProbe:
				if e.Peer < 0 {
					// A miss: pure polling overhead, the Send-Recv
					// driver's active busy-wait.
					state(ClassProbeSpin).add(-1, e.Duration())
				}
			}
		}
	}

	lateReceiver(rep, cost, state(ClassLateReceiver))

	rec.WaitStates = buildWaitStates(states, rec.TotalWaitSec, topK)
	rec.CriticalPath = criticalPath(rep, exchangeClass, topK)
	rec.Efficiency = efficiency(rep, rec.CriticalPath.ByKind["transfer"])
	if opts.Telemetry != nil {
		rec.Rounds = roundEfficiency(rep, opts.Telemetry, exchangeClass)
	}
	return rec, nil
}

// lateReceiver estimates, per completed user message, the virtual time
// it sat in the receiver's unexpected queue: the receive started after
// the modeled arrival. Matching pairs the k-th receive on rank d from
// (source s, tag t) with the k-th send from s to d with tag t — exact
// under the runtime's per-source non-overtaking delivery — and arrival
// is reconstructed as send end + alpha + beta*bytes. The blame lands on
// the receiving rank: it is the late party.
func lateReceiver(rep *mpi.Report, cost *mpi.CostModel, out *classState) {
	type flow struct{ dst, tag int }
	// Per sending rank, its EvSend ring indices grouped by (dst, tag)
	// flow, built lazily on the first receive naming that sender. Ring
	// order is send order and within one flow receives consume sends in
	// order (per-source non-overtaking), so each receive pops the next
	// index — O(events) overall.
	sendIdx := make([]map[flow][]int32, rep.Procs)
	taken := make([]map[flow]int, rep.Procs)
	for d := 0; d < rep.Procs; d++ {
		for _, e := range rep.Events(d) {
			if e.Kind != mpi.EvRecv || e.Peer < 0 || e.Peer >= rep.Procs {
				continue
			}
			s := e.Peer
			sendEvents := rep.Events(s)
			if sendIdx[s] == nil {
				sendIdx[s] = make(map[flow][]int32)
				taken[s] = make(map[flow]int)
				for i := range sendEvents {
					if se := &sendEvents[i]; se.Kind == mpi.EvSend {
						sf := flow{dst: se.Peer, tag: se.Tag}
						sendIdx[s][sf] = append(sendIdx[s][sf], int32(i))
					}
				}
			}
			f := flow{dst: d, tag: e.Tag}
			k := taken[s][f]
			taken[s][f] = k + 1
			idx := sendIdx[s][f]
			if k >= len(idx) {
				continue // sender's ring truncated before this message
			}
			send := &sendEvents[idx[k]]
			arrive := send.End + cost.AlphaP2P + cost.BetaP2P*float64(send.Bytes)
			if late := e.Start - arrive; late > 1e-12 {
				out.add(d, late)
			}
		}
	}
}

// buildWaitStates freezes the accumulators into sorted WaitState rows:
// blocked classes first by seconds, then derived classes by seconds.
func buildWaitStates(states map[string]*classState, totalWait float64, topK int) []WaitState {
	derived := map[string]bool{ClassProbeSpin: true, ClassLateReceiver: true}
	out := make([]WaitState, 0, len(states))
	for class, s := range states {
		if s.seconds <= 0 && s.count == 0 {
			continue
		}
		ws := WaitState{Class: class, Seconds: s.seconds, Count: s.count, Derived: derived[class]}
		if totalWait > 0 {
			ws.Share = s.seconds / totalWait
		}
		ws.TopCauses = topCauses(s.causes, topK)
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Derived != out[j].Derived {
			return !out[i].Derived
		}
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// topCauses returns the k heaviest entries of a cause map, by seconds
// then rank (deterministic).
func topCauses(causes map[int]float64, k int) []Cause {
	if len(causes) == 0 {
		return nil
	}
	out := make([]Cause, 0, len(causes))
	for r, s := range causes {
		out = append(out, Cause{Rank: r, Seconds: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Rank < out[j].Rank
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// efficiency computes the POP factorization from the per-rank phase
// profiles and the critical path's transfer time.
func efficiency(rep *mpi.Report, transferCP float64) Efficiency {
	var sum, maxU float64
	for r := 0; r < rep.Procs; r++ {
		p := rep.RankProfile(r)
		u := p.Compute + p.Pack + p.Unpack
		sum += u
		if u > maxU {
			maxU = u
		}
	}
	e := Efficiency{
		AvgUsefulSec: sum / float64(rep.Procs),
		MaxUsefulSec: maxU,
	}
	T := rep.MaxVirtualTime
	if T <= 0 {
		return e
	}
	if maxU > 0 {
		e.LoadBalance = e.AvgUsefulSec / maxU
	}
	e.CommEff = maxU / T
	e.ParallelEff = e.AvgUsefulSec / T
	noTransfer := T - transferCP
	e.TransferEff = noTransfer / T
	if noTransfer > 0 {
		e.SerializationEff = maxU / noTransfer
	}
	return e
}

// roundEfficiency clips every rank's blocked intervals to the windows
// between consecutive telemetry round boundaries and reports per-round
// wait volume, wait fraction and the dominant blocked class.
func roundEfficiency(rep *mpi.Report, series *telemetry.Series, exchangeClass string) []RoundEff {
	pts := series.Points
	if len(pts) == 0 {
		return nil
	}
	classOf := func(e mpi.Event) string {
		switch e.Class {
		case mpi.WaitLateSender:
			return ClassLateSender
		case mpi.WaitNbrExchange:
			return exchangeClass
		case mpi.WaitCollective:
			return ClassCollective
		}
		return ClassUnclassified
	}
	type acc struct {
		wait    float64
		byClass map[string]float64
	}
	accs := make([]acc, len(pts))
	for i := range accs {
		accs[i].byClass = map[string]float64{}
	}
	windowStart := func(i int) float64 {
		if i == 0 {
			return 0
		}
		return pts[i-1].Time
	}
	for rank := 0; rank < rep.Procs; rank++ {
		events := rep.Events(rank)
		w := 0 // window cursor; both events (by End) and windows are time-sorted
		for _, e := range events {
			if e.Kind != mpi.EvWait {
				continue
			}
			for w < len(pts) && pts[w].Time <= e.Start {
				w++
			}
			// Spread the interval over the windows it crosses.
			for i, lo := w, e.Start; i < len(pts) && lo < e.End; i++ {
				hi := pts[i].Time
				if hi > e.End {
					hi = e.End
				}
				if d := hi - lo; d > 0 {
					accs[i].wait += d
					accs[i].byClass[classOf(e)] += d
				}
				lo = hi
			}
		}
	}
	out := make([]RoundEff, len(pts))
	for i, p := range pts {
		re := RoundEff{Round: p.Round, TimeSec: p.Time, WaitSec: accs[i].wait}
		if width := p.Time - windowStart(i); width > 0 {
			re.WaitFrac = accs[i].wait / (width * float64(rep.Procs))
		}
		for class, sec := range accs[i].byClass {
			if sec > re.DominantShare {
				re.Dominant, re.DominantShare = class, sec
			} else if sec == re.DominantShare && re.Dominant != "" && class < re.Dominant {
				re.Dominant = class
			}
		}
		if accs[i].wait > 0 {
			re.DominantShare /= accs[i].wait
		}
		out[i] = re
	}
	return out
}

// Label formats a run identity for rendered output.
func Label(model string, procs int) string {
	if model == "" {
		return fmt.Sprintf("p=%d", procs)
	}
	return fmt.Sprintf("%s p=%d", model, procs)
}
