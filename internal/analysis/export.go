package analysis

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mpi"
)

// Enriched Chrome trace_event export. The base exporter in internal/mpi
// renders one slice per traced primitive; this one layers the analyzer's
// products on top so Perfetto shows not just what each rank did but what
// the run as a whole was limited by:
//
//   - two counter tracks: "outstanding msgs" (sends injected minus
//     receives completed, the in-flight user-message population) and
//     "wait depth" (how many ranks are blocked at once);
//   - a "critical path" track after the rank tracks, carrying the
//     bounding dependency edges as slices at the moment they held the
//     run back.
//
// Counter tracks are decimated to maxCounterPoints samples so a 16K-rank
// trace stays loadable.

// maxCounterPoints bounds each counter track's sample count.
const maxCounterPoints = 4096

// WriteChromeTrace writes the run with its analysis overlay as one
// Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, label string, rep *mpi.Report, rec *Record) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		bw.WriteString(s)
	}
	if label == "" {
		label = Label(rec.Model, rec.Procs)
	}
	emit(`{"ph":"M","pid":0,"name":"process_name","args":{"name":` + strconv.Quote(label) + `}}`)

	var msgDeltas, waitDeltas []counterDelta
	for rank := 0; rank < rep.Procs; rank++ {
		name := "rank " + strconv.Itoa(rank)
		if d := rep.EventDrops(rank); d > 0 {
			name += " (dropped " + strconv.FormatInt(d, 10) + ")"
		}
		emit(`{"ph":"M","pid":0,"tid":` + strconv.Itoa(rank) + `,"name":"thread_name","args":{"name":` + strconv.Quote(name) + `}}`)
		for _, e := range rep.Events(rank) {
			emit(sliceJSON(rank, e))
			switch e.Kind {
			case mpi.EvSend:
				msgDeltas = append(msgDeltas, counterDelta{e.End, 1})
			case mpi.EvRecv:
				msgDeltas = append(msgDeltas, counterDelta{e.End, -1})
			case mpi.EvWait:
				waitDeltas = append(waitDeltas,
					counterDelta{e.Start, 1}, counterDelta{e.End, -1})
			}
		}
	}

	emitCounter(emit, "outstanding msgs", msgDeltas)
	emitCounter(emit, "wait depth", waitDeltas)

	// The critical-path track sits after the rank tracks.
	cpTid := rep.Procs
	emit(`{"ph":"M","pid":0,"tid":` + strconv.Itoa(cpTid) + `,"name":"thread_name","args":{"name":"critical path"}}`)
	for _, e := range rec.CriticalPath.TopEdges {
		var b strings.Builder
		b.WriteString(`{"ph":"X","pid":0,"tid":`)
		b.WriteString(strconv.Itoa(cpTid))
		b.WriteString(`,"ts":`)
		b.WriteString(usec(e.AtSec - e.WaitSec))
		b.WriteString(`,"dur":`)
		b.WriteString(usec(e.WaitSec))
		b.WriteString(`,"name":`)
		b.WriteString(strconv.Quote(e.Class))
		b.WriteString(`,"cat":"critical_path","args":{"rank":`)
		b.WriteString(strconv.Itoa(e.Rank))
		b.WriteString(`,"peer":`)
		b.WriteString(strconv.Itoa(e.Peer))
		b.WriteString(`,"transfer_us":`)
		b.WriteString(usec(e.TransferSec))
		b.WriteString(`}}`)
		emit(b.String())
	}

	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// sliceJSON renders one event as a complete ("X") slice, mirroring the
// base exporter's fields (classified waits keep their dependency edge).
func sliceJSON(rank int, e mpi.Event) string {
	var b strings.Builder
	b.WriteString(`{"ph":"X","pid":0,"tid":`)
	b.WriteString(strconv.Itoa(rank))
	b.WriteString(`,"ts":`)
	b.WriteString(usec(e.Start))
	b.WriteString(`,"dur":`)
	b.WriteString(usec(e.Duration()))
	b.WriteString(`,"name":"`)
	b.WriteString(e.Kind.String())
	if e.Kind == mpi.EvWait && e.Class != mpi.WaitNone {
		b.WriteString(`","cat":"wait","args":{"peer":`)
		b.WriteString(strconv.Itoa(e.Peer))
		b.WriteString(`,"class":"`)
		b.WriteString(e.Class.String())
		b.WriteString(`","cause_t":`)
		b.WriteString(usec(e.CauseT))
		b.WriteString(`}}`)
		return b.String()
	}
	b.WriteString(`","cat":"`)
	b.WriteString(e.Kind.Category())
	b.WriteString(`","args":{"peer":`)
	b.WriteString(strconv.Itoa(e.Peer))
	b.WriteString(`,"tag":`)
	b.WriteString(strconv.Itoa(e.Tag))
	b.WriteString(`,"bytes":`)
	b.WriteString(strconv.FormatInt(e.Bytes, 10))
	b.WriteString(`}}`)
	return b.String()
}

// counterDelta is one +-1 step of a population counter at virtual time t.
type counterDelta struct {
	t float64
	d int
}

// emitCounter folds deltas into cumulative samples and emits them as a
// "C" counter track, decimated by stride when the sample count exceeds
// maxCounterPoints (the final sample always survives so the track ends
// at its true value).
func emitCounter(emit func(string), name string, deltas []counterDelta) {
	if len(deltas) == 0 {
		return
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].t != deltas[j].t {
			return deltas[i].t < deltas[j].t
		}
		return deltas[i].d < deltas[j].d // decrements first: no phantom spike
	})
	stride := 1
	if len(deltas) > maxCounterPoints {
		stride = (len(deltas) + maxCounterPoints - 1) / maxCounterPoints
	}
	val := 0
	for i, d := range deltas {
		val += d.d
		if i%stride != 0 && i != len(deltas)-1 {
			continue
		}
		var b strings.Builder
		b.WriteString(`{"ph":"C","pid":0,"name":`)
		b.WriteString(strconv.Quote(name))
		b.WriteString(`,"ts":`)
		b.WriteString(usec(d.t))
		b.WriteString(`,"args":{"value":`)
		b.WriteString(strconv.Itoa(val))
		b.WriteString(`}}`)
		emit(b.String())
	}
}

// usec formats virtual seconds as microseconds with nanosecond
// resolution, matching the base exporter's timestamp style.
func usec(sec float64) string {
	s := strconv.FormatFloat(sec*1e6, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
