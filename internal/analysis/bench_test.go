package analysis

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

// benchReport builds one traced ring-exchange world: every rank sends
// right and receives left for the given number of rounds, then a
// barrier. The workload is communication-dense so the trace carries the
// analyzer's full event mix (sends, receives, classified waits, a
// collective). Built once per benchmark; the analyzer is what's timed.
func benchReport(b *testing.B, procs, rounds int) *mpi.Report {
	b.Helper()
	payload := make([]int64, 8)
	rep, err := mpi.Run(procs, func(c *mpi.Comm) error {
		right := (c.Rank() + 1) % procs
		left := (c.Rank() + procs - 1) % procs
		for r := 0; r < rounds; r++ {
			c.Compute(float64(10 + c.Rank()%7)) // mild imbalance: real waits
			c.Isend(right, r, payload)
			c.Recv(left, r)
		}
		c.Barrier()
		return nil
	}, mpi.WithEventTrace(4*rounds+16), mpi.WithDeadline(5*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAnalyze times the full post-mortem pass (wait states, late
// receiver, critical path, efficiency) and reports events/sec, the
// number BENCH_analysis.json records. Rounds shrink as ranks grow so
// each world stays a comparable total event count.
func BenchmarkAnalyze(b *testing.B) {
	for _, cfg := range []struct{ procs, rounds int }{
		{1 << 10, 256},
		{1 << 12, 64},
		{1 << 14, 16},
	} {
		b.Run(fmt.Sprintf("ranks=%d", cfg.procs), func(b *testing.B) {
			rep := benchReport(b, cfg.procs, cfg.rounds)
			var events int
			for r := 0; r < rep.Procs; r++ {
				events += len(rep.Events(r))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := Analyze(rep, Options{Model: "NSR"})
				if err != nil {
					b.Fatal(err)
				}
				if rec.CriticalPath.LengthSec != rep.MaxVirtualTime {
					b.Fatalf("path length %v != %v", rec.CriticalPath.LengthSec, rep.MaxVirtualTime)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(events), "events")
		})
	}
}
