package analysis

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// testGraph is a fig4c-style stochastic block partition graph, small
// enough for unit tests but irregular enough that ranks genuinely wait
// on each other.
func testGraph(tb testing.TB) *graph.CSR {
	tb.Helper()
	return gen.SBP(2000, 16, 8, 0.05, 42)
}

// runModel executes a traced matching run under the given model.
func runModel(tb testing.TB, g *graph.CSR, model matching.Model, procs int) *matching.ParallelResult {
	tb.Helper()
	res, err := matching.Run(g, matching.Options{
		Procs:       procs,
		Model:       model,
		TraceEvents: 1 << 16,
		RoundLog:    1024,
		Deadline:    2 * time.Minute,
	})
	if err != nil {
		tb.Fatalf("%v run: %v", model, err)
	}
	return res
}

func analyzeModel(tb testing.TB, res *matching.ParallelResult, model matching.Model) *Record {
	tb.Helper()
	rec, err := Analyze(res.Report, Options{Model: model.String(), Telemetry: res.Telemetry})
	if err != nil {
		tb.Fatalf("Analyze(%v): %v", model, err)
	}
	return rec
}

func TestAnalyzeRequiresTrace(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("Analyze(nil) = nil error")
	}
	rep, err := mpi.Run(2, func(c *mpi.Comm) error {
		c.Barrier()
		return nil
	}, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(rep, Options{}); err == nil {
		t.Error("Analyze(untraced report) = nil error, want tracing hint")
	}
}

// TestCriticalPathExactLength is the tentpole invariant: the backward
// walk tiles the whole run, so the reported path length equals the
// end-to-end virtual time exactly (==, not approximately) and the
// activity breakdown sums back to it.
func TestCriticalPathExactLength(t *testing.T) {
	g := testGraph(t)
	for _, model := range []matching.Model{matching.NSR, matching.MBP, matching.NCL, matching.RMA} {
		t.Run(model.String(), func(t *testing.T) {
			res := runModel(t, g, model, 8)
			rec := analyzeModel(t, res, model)
			if rec.CriticalPath.LengthSec != res.Report.MaxVirtualTime {
				t.Errorf("LengthSec = %v, want exactly MaxVirtualTime = %v",
					rec.CriticalPath.LengthSec, res.Report.MaxVirtualTime)
			}
			if rec.TimeSec != res.Report.MaxVirtualTime {
				t.Errorf("TimeSec = %v, want %v", rec.TimeSec, res.Report.MaxVirtualTime)
			}
			var sum float64
			for _, s := range rec.CriticalPath.ByKind {
				sum += s
			}
			if tol := 1e-9 * rec.CriticalPath.LengthSec; math.Abs(sum-rec.CriticalPath.LengthSec) > tol {
				t.Errorf("ByKind sums to %v, want %v (Δ=%g)", sum, rec.CriticalPath.LengthSec,
					sum-rec.CriticalPath.LengthSec)
			}
			if rec.CriticalPath.Truncated {
				t.Error("path truncated on an untruncated trace")
			}
			var shares float64
			for _, rs := range rec.CriticalPath.RankShares {
				shares += rs.Seconds
			}
			if shares > rec.CriticalPath.LengthSec*(1+1e-9) {
				t.Errorf("rank shares sum %v exceeds path length %v", shares, rec.CriticalPath.LengthSec)
			}
		})
	}
}

// TestNSRLateSenderDominates pins the acceptance criterion: on an SBP
// run under the Send-Recv model, at least half the blocked wait time is
// late-sender, with named causing ranks.
func TestNSRLateSenderDominates(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NSR, 8)
	rec := analyzeModel(t, res, matching.NSR)
	ls := rec.WaitState(ClassLateSender)
	if ls == nil {
		t.Fatal("no late_sender wait state recorded for NSR")
	}
	if ls.Share < 0.5 {
		t.Errorf("late_sender share = %.3f, want >= 0.5 (states: %+v)", ls.Share, rec.WaitStates)
	}
	if len(ls.TopCauses) == 0 {
		t.Fatal("late_sender has no named causing ranks")
	}
	for _, c := range ls.TopCauses {
		if c.Rank < 0 || c.Rank >= rec.Procs {
			t.Errorf("cause rank %d out of range", c.Rank)
		}
		if c.Seconds <= 0 {
			t.Errorf("cause rank %d has non-positive seconds %v", c.Rank, c.Seconds)
		}
	}
}

// TestNCLExchangeWaits checks the neighborhood-collective model blocks
// in its exchange, not on late senders.
func TestNCLExchangeWaits(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NCL, 8)
	rec := analyzeModel(t, res, matching.NCL)
	ex := rec.WaitState(ClassExchange)
	if ex == nil || ex.Seconds <= 0 {
		t.Fatalf("no wait_at_exchange time for NCL (states: %+v)", rec.WaitStates)
	}
	if ls := rec.WaitState(ClassLateSender); ls != nil && ls.Seconds > ex.Seconds {
		t.Errorf("late_sender (%v) exceeds wait_at_exchange (%v) under NCL", ls.Seconds, ex.Seconds)
	}
}

// TestRMAFenceClass checks the model-dependent relabeling: under RMA the
// post-flush exchange waits are reported as fence synchronization.
func TestRMAFenceClass(t *testing.T) {
	res := runModel(t, testGraph(t), matching.RMA, 8)
	rec := analyzeModel(t, res, matching.RMA)
	if rec.WaitState(ClassExchange) != nil {
		t.Error("RMA record still reports wait_at_exchange; want it folded into wait_at_fence")
	}
	if f := rec.WaitState(ClassFence); f == nil || f.Seconds <= 0 {
		t.Errorf("no wait_at_fence time for RMA (states: %+v)", rec.WaitStates)
	}
	for _, e := range rec.CriticalPath.TopEdges {
		if e.Class == ClassExchange {
			t.Errorf("critical-path edge %+v kept class %s under RMA", e, ClassExchange)
		}
	}
}

// TestLateReceiverSynthetic reconstructs the one derived state that
// blocks nobody: rank 0 sends early, rank 1 computes before receiving,
// so the message sat in the unexpected queue for compute-minus-flight.
func TestLateReceiverSynthetic(t *testing.T) {
	rep, err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 3, []int64{1, 2, 3, 4})
		} else {
			c.Compute(5000)
			c.Recv(0, 3)
		}
		c.Barrier()
		return nil
	}, mpi.WithEventTrace(64), mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Analyze(rep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := rec.WaitState(ClassLateReceiver)
	if lr == nil {
		t.Fatal("no late_receiver state recorded")
	}
	if !lr.Derived {
		t.Error("late_receiver not marked derived")
	}
	// Expected parking time from the actual event timestamps.
	cost := mpi.DefaultCostModel()
	var send, recv *mpi.Event
	for _, e := range rep.Events(0) {
		if e.Kind == mpi.EvSend {
			send = &e
			break
		}
	}
	for _, e := range rep.Events(1) {
		if e.Kind == mpi.EvRecv {
			recv = &e
			break
		}
	}
	if send == nil || recv == nil {
		t.Fatal("missing send/recv events")
	}
	want := recv.Start - (send.End + cost.AlphaP2P + cost.BetaP2P*float64(send.Bytes))
	if want <= 0 {
		t.Fatalf("scenario did not produce a late receiver (want %v)", want)
	}
	if math.Abs(lr.Seconds-want) > 1e-12 {
		t.Errorf("late_receiver seconds = %v, want %v", lr.Seconds, want)
	}
	if len(lr.TopCauses) != 1 || lr.TopCauses[0].Rank != 1 {
		t.Errorf("late_receiver causes = %+v, want rank 1 (the late party)", lr.TopCauses)
	}
}

// TestProbeSpinDerived: an Iprobe that can never match is pure polling
// overhead and must surface as the probe_spin derived state.
func TestProbeSpinDerived(t *testing.T) {
	rep, err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			if ok, _ := c.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
				return nil // impossible: nobody sends
			}
		}
		c.Barrier()
		return nil
	}, mpi.WithEventTrace(64), mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Analyze(rep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := rec.WaitState(ClassProbeSpin)
	if ps == nil || ps.Count != 1 || !ps.Derived {
		t.Errorf("probe_spin state = %+v, want one derived miss", ps)
	}
}

// TestEfficiencyFactorization checks the POP identities hold up to
// floating-point noise and the factors stay in range.
func TestEfficiencyFactorization(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NSR, 8)
	rec := analyzeModel(t, res, matching.NSR)
	e := rec.Efficiency
	approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), 1) }
	if !approx(e.ParallelEff, e.LoadBalance*e.CommEff) {
		t.Errorf("PE %v != LB %v * CommE %v", e.ParallelEff, e.LoadBalance, e.CommEff)
	}
	if !approx(e.CommEff, e.SerializationEff*e.TransferEff) {
		t.Errorf("CommE %v != SerE %v * TransferE %v", e.CommEff, e.SerializationEff, e.TransferEff)
	}
	for name, v := range map[string]float64{
		"parallel": e.ParallelEff, "load_balance": e.LoadBalance, "comm": e.CommEff,
		"serialization": e.SerializationEff, "transfer": e.TransferEff,
	} {
		if v <= 0 || v > 1+1e-9 {
			t.Errorf("%s efficiency = %v, want in (0, 1]", name, v)
		}
	}
}

// TestRoundsResolution checks the per-round wait accounting is a
// partition: every window's wait is non-negative and the total never
// exceeds the run's blocked time.
func TestRoundsResolution(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NCL, 8)
	if res.Telemetry == nil || len(res.Telemetry.Points) == 0 {
		t.Fatal("run produced no telemetry")
	}
	rec := analyzeModel(t, res, matching.NCL)
	if len(rec.Rounds) != len(res.Telemetry.Points) {
		t.Fatalf("rounds = %d, want one per telemetry point (%d)",
			len(rec.Rounds), len(res.Telemetry.Points))
	}
	var sum float64
	for _, r := range rec.Rounds {
		if r.WaitSec < 0 || r.WaitFrac < 0 || r.WaitFrac > 1+1e-9 {
			t.Errorf("round %d: wait %v frac %v out of range", r.Round, r.WaitSec, r.WaitFrac)
		}
		if r.WaitSec > 0 && r.Dominant == "" {
			t.Errorf("round %d has wait but no dominant class", r.Round)
		}
		sum += r.WaitSec
	}
	if sum > rec.TotalWaitSec*(1+1e-9) {
		t.Errorf("per-round wait sums to %v, exceeds run total %v", sum, rec.TotalWaitSec)
	}
}

// TestRoundEfficiencySynthetic pins the window clipping on a hand-built
// series: one wait interval spanning two round boundaries.
func TestRoundEfficiencySynthetic(t *testing.T) {
	rep, err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Compute(5000)
			c.Isend(1, 1, []int64{1})
		} else {
			c.Recv(0, 1) // blocks from ~0 until the send arrives
		}
		c.Barrier()
		return nil
	}, mpi.WithEventTrace(64), mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// One boundary strictly inside rank 1's late-sender wait: the wait
	// must be split across the two windows.
	var wait *mpi.Event
	for _, e := range rep.Events(1) {
		if e.Kind == mpi.EvWait && e.Class == mpi.WaitLateSender {
			wait = &e
			break
		}
	}
	if wait == nil {
		t.Fatal("no late-sender wait on rank 1")
	}
	mid := (wait.Start + wait.End) / 2
	series := &telemetry.Series{Procs: 2, Points: []telemetry.Point{
		{Round: 0, Time: mid},
		{Round: 1, Time: rep.MaxVirtualTime},
	}}
	rec, err := Analyze(rep, Options{Telemetry: series})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rec.Rounds))
	}
	firstHalf := mid - wait.Start
	if math.Abs(rec.Rounds[0].WaitSec-firstHalf) > 1e-12 {
		t.Errorf("window 0 wait = %v, want clipped %v", rec.Rounds[0].WaitSec, firstHalf)
	}
	if rec.Rounds[0].Dominant != ClassLateSender {
		t.Errorf("window 0 dominant = %q, want %s", rec.Rounds[0].Dominant, ClassLateSender)
	}
}

// TestAnalyzeDeterministic: same report, same record — byte for byte
// through JSON (maps included).
func TestAnalyzeDeterministic(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NCL, 4)
	a := analyzeModel(t, res, matching.NCL)
	b := analyzeModel(t, res, matching.NCL)
	if !reflect.DeepEqual(a, b) {
		t.Error("two analyses of the same report differ")
	}
}

// TestRecordJSONRoundTrip: the schema-versioned record survives
// marshal/unmarshal with its key fields intact.
func TestRecordJSONRoundTrip(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NSR, 4)
	rec := analyzeModel(t, res, matching.NSR)
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", back.Schema, SchemaVersion)
	}
	if back.CriticalPath.LengthSec != rec.CriticalPath.LengthSec {
		t.Errorf("LengthSec lost in round trip: %v != %v",
			back.CriticalPath.LengthSec, rec.CriticalPath.LengthSec)
	}
	if len(back.WaitStates) != len(rec.WaitStates) {
		t.Errorf("wait states lost: %d != %d", len(back.WaitStates), len(rec.WaitStates))
	}
}

// TestTruncationSurfaced: a ring too small for the run must set the
// loud flags on the record.
func TestTruncationSurfaced(t *testing.T) {
	res, err := matching.Run(testGraph(t), matching.Options{
		Procs:       4,
		Model:       matching.NCL,
		TraceEvents: 8, // absurdly small: guaranteed drops
		Deadline:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Analyze(res.Report, Options{Model: "NCL"})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.EventsTruncated || rec.DroppedEvents == 0 {
		t.Errorf("truncated run not flagged: truncated=%v dropped=%d",
			rec.EventsTruncated, rec.DroppedEvents)
	}
	if !rec.CriticalPath.Truncated {
		t.Error("critical path not marked truncated on a dropped-events run")
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NSR, 4)
	rec := analyzeModel(t, res, matching.NSR)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "nsr test", res.Report, rec); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter emitted invalid JSON (first 400 bytes):\n%.400s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"outstanding msgs"`, `"wait depth"`, `"critical path"`, `"ph":"C"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestRenderSmoke(t *testing.T) {
	res := runModel(t, testGraph(t), matching.NSR, 4)
	rec := analyzeModel(t, res, matching.NSR)
	var buf bytes.Buffer
	rec.Render(&buf, "")
	out := buf.String()
	for _, want := range []string{"critical path", "efficiency", "wait state", "late_sender"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var cmp bytes.Buffer
	RenderComparison(&cmp, []*Record{rec})
	if !strings.Contains(cmp.String(), "NSR") {
		t.Errorf("comparison missing model name:\n%s", cmp.String())
	}
}
