// Package par provides the small data-parallel fan-out primitive used by
// the graph ingest pipeline (generators, CSR construction, matching
// setup). It is deliberately minimal: contiguous index ranges fanned out
// over GOMAXPROCS-bounded workers, with a hard rule the callers rely on
// for determinism — the *results* a caller computes must not depend on
// how [0,n) was split. Two caller patterns satisfy that rule:
//
//   - writes land at positions that are a pure function of the index
//     (e.g. edges[i] for sample i, or one CSR row per vertex), or
//   - per-span partial results are merged in span order afterwards, and
//     the downstream consumer is order-insensitive (e.g. an edge multiset
//     handed to the canonicalizing CSR builder).
//
// The package is a leaf and allocation-light; a call with one worker (or
// n below grain) runs inline with no goroutines at all.
package par

import (
	"runtime"
	"sync"
)

// maxWorkers bounds fan-out on very wide machines: past this width the
// ingest kernels are memory-bandwidth bound and extra workers only add
// per-span bookkeeping.
const maxWorkers = 64

// Workers returns the fan-out width used by Ranges: GOMAXPROCS at the
// time of the call, capped at maxWorkers.
func Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Split returns the contiguous spans [lo,hi) that Ranges(n, grain, ...)
// fans out: at most Workers() spans, each at least grain wide (except
// that a single span covers any n < 2*grain). Exposed so callers that
// need per-span scratch (counting-sort buckets, edge buffers) can size
// and index it before fanning out.
func Split(n, grain int) [][2]int {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if max := n / grain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	spans := make([][2]int, w)
	for i := 0; i < w; i++ {
		spans[i] = [2]int{i * n / w, (i + 1) * n / w}
	}
	return spans
}

// Ranges runs fn over the Split(n, grain) spans concurrently and blocks
// until all complete. fn is called at most Workers() times on disjoint
// ranges covering [0,n) exactly once. With one span the call runs inline
// on the caller's goroutine.
func Ranges(n, grain int, fn func(lo, hi int)) {
	Do(Split(n, grain), func(_, lo, hi int) { fn(lo, hi) })
}

// IndexedRanges is Ranges with the span's index in Split order passed
// through, for callers indexing per-span scratch.
func IndexedRanges(n, grain int, fn func(span, lo, hi int)) {
	Do(Split(n, grain), fn)
}

// Do runs fn concurrently over an explicit span list (normally one
// returned by Split, captured once so per-span scratch and the fan-out
// agree even if GOMAXPROCS changes between the two). Blocks until all
// spans complete; a single span runs inline on the caller's goroutine.
func Do(spans [][2]int, fn func(span, lo, hi int)) {
	if len(spans) == 0 {
		return
	}
	if len(spans) == 1 {
		fn(0, spans[0][0], spans[0][1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(spans) - 1)
	for i := 1; i < len(spans); i++ {
		go func(i int) {
			defer wg.Done()
			fn(i, spans[i][0], spans[i][1])
		}(i)
	}
	fn(0, spans[0][0], spans[0][1])
	wg.Wait()
}
