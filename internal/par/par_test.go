package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSplitCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 1000, 1 << 20} {
		for _, grain := range []int{0, 1, 16, 4096} {
			spans := Split(n, grain)
			if n == 0 {
				if spans != nil {
					t.Fatalf("Split(0) = %v", spans)
				}
				continue
			}
			next := 0
			for _, s := range spans {
				if s[0] != next || s[1] <= s[0] {
					t.Fatalf("Split(%d,%d) = %v: bad span %v", n, grain, spans, s)
				}
				next = s[1]
			}
			if next != n {
				t.Fatalf("Split(%d,%d) covers to %d", n, grain, next)
			}
			if len(spans) > Workers() {
				t.Fatalf("Split(%d,%d): %d spans > %d workers", n, grain, len(spans), Workers())
			}
		}
	}
}

func TestSplitRespectsGrain(t *testing.T) {
	spans := Split(100, 60) // only one span of >= 60 fits
	if len(spans) != 1 || spans[0] != [2]int{0, 100} {
		t.Fatalf("Split(100, 60) = %v, want one full span", spans)
	}
}

func TestRangesVisitsEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const n = 100000
	marks := make([]int32, n)
	Ranges(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestIndexedRangesSpanIndexMatchesSplit(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	spans := Split(10000, 1)
	got := make([][2]int, len(spans))
	IndexedRanges(10000, 1, func(span, lo, hi int) {
		got[span] = [2]int{lo, hi}
	})
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d: IndexedRanges saw %v, Split says %v", i, got[i], spans[i])
		}
	}
}

func TestRangesInlineWhenTiny(t *testing.T) {
	// n below grain must run on the calling goroutine (single span).
	ran := false
	Ranges(10, 100, func(lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Fatalf("span [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn never ran")
	}
	Ranges(0, 1, func(lo, hi int) { t.Fatal("fn ran for n=0") })
}
