// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), one benchmark per artifact, plus ablation benches for
// the design choices called out in DESIGN.md §6.
//
// The artifact benches drive the same experiment registry as
// cmd/matchbench, at a reduced workload scale so a full `go test
// -bench=. -benchmem` stays tractable; run `matchbench -exp <id>` for
// the full-scale tables. Each bench reports the modeled execution times
// of the communication models as custom metrics (model-ms/op), which are
// the quantities the paper plots.
package repro_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// benchCfg is the reduced-scale harness configuration for benchmarks.
func benchCfg() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Scale = 0.25
	cfg.Deadline = 5 * time.Minute
	return cfg
}

// runExperiment executes one registry experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if err := harness.RunOne(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2CommMatrix(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig4aWeakScalingRGG(b *testing.B)   { runExperiment(b, "fig4a") }
func BenchmarkFig4bWeakScalingRMAT(b *testing.B)  { runExperiment(b, "fig4b") }
func BenchmarkFig4cWeakScalingSBP(b *testing.B)   { runExperiment(b, "fig4c") }
func BenchmarkTab3ProcessGraphSBP(b *testing.B)   { runExperiment(b, "tab3") }
func BenchmarkFig5StrongScalingKmer(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6StrongScalingSocial(b *testing.B) {
	runExperiment(b, "fig6")
}
func BenchmarkTab4ProcessGraphSocial(b *testing.B) { runExperiment(b, "tab4") }
func BenchmarkFig7AdjacencyRCM(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkTab5GhostEdgesRCM(b *testing.B)      { runExperiment(b, "tab5") }
func BenchmarkTab6TopologyRCM(b *testing.B)        { runExperiment(b, "tab6") }
func BenchmarkFig8Reordering(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9CommVolumeRCM(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkTab7BestSpeedup(b *testing.B)        { runExperiment(b, "tab7") }
func BenchmarkFig10Profiles(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkTab8Energy(b *testing.B)             { runExperiment(b, "tab8") }
func BenchmarkFig11CommVolume(b *testing.B)        { runExperiment(b, "fig11") }

// benchModels runs each communication model once per iteration on g and
// reports the modeled times as per-model metrics.
func benchModels(b *testing.B, g *graph.CSR, procs int, models []matching.Model) {
	b.Helper()
	sums := make([]float64, len(models))
	for i := 0; i < b.N; i++ {
		for k, m := range models {
			res, err := matching.Run(g, matching.Options{Procs: procs, Model: m, Deadline: 5 * time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			sums[k] += res.Report.MaxVirtualTime
		}
	}
	for k, m := range models {
		b.ReportMetric(sums[k]*1e3/float64(b.N), m.String()+"-ms/op")
	}
}

// BenchmarkModelComparisonSocial is the headline comparison: all four
// models on a social graph at moderate scale (paper Fig 6 regime).
func BenchmarkModelComparisonSocial(b *testing.B) {
	g := gen.Social(20000, 10, 5)
	benchModels(b, g, 16, matching.Models)
}

// BenchmarkModelComparisonRGG covers the bounded-neighborhood regime
// (paper Fig 4a): aggregation should win decisively.
func BenchmarkModelComparisonRGG(b *testing.B) {
	n := 24000
	g := gen.RGG(n, gen.RGGRadiusForDegree(n, 8), 6)
	benchModels(b, g, 16, []matching.Model{matching.NSR, matching.RMA, matching.NCL})
}

// BenchmarkModelComparisonSBP covers the dense-process-graph regime
// (paper Fig 4c): Send-Recv should win.
func BenchmarkModelComparisonSBP(b *testing.B) {
	g := gen.SBP(11200, 75, 12, 0.55, 7)
	benchModels(b, g, 16, []matching.Model{matching.NSR, matching.RMA, matching.NCL})
}

// BenchmarkAblationAggregation isolates the value of message aggregation:
// the same protocol traffic sent as one message per record (NSR) versus
// aggregated per neighbor per round (NCL), on a volume-heavy input.
func BenchmarkAblationAggregation(b *testing.B) {
	g := gen.Social(30000, 10, 8)
	benchModels(b, g, 16, []matching.Model{matching.NSR, matching.NCL})
}

// BenchmarkAblationRMACounter compares the paper's precomputed remote
// displacements (Fig 1) against the naive alternative it rejects: a
// remote atomic counter fetched before every put (§IV-D(b): "maintaining
// a distributed counter requires extra communication, and relatively
// expensive atomic operations").
func BenchmarkAblationRMACounter(b *testing.B) {
	const (
		procs   = 8
		records = 2000 // records each rank pushes to its right neighbor
	)
	run := func(useCounter bool) float64 {
		rep, err := mpi.Run(procs, func(c *mpi.Comm) error {
			right := (c.Rank() + 1) % procs
			win := c.WinCreate(records*3 + 1)
			win.LockAll()
			cursor := 0
			for k := 0; k < records; k++ {
				var disp int
				if useCounter {
					disp = int(win.FetchAndAdd(right, records*3, 3))
				} else {
					disp = cursor * 3
					cursor++
				}
				win.Put(right, disp%(records*3), []int64{1, 2, 3})
			}
			win.UnlockAll()
			win.Free()
			return nil
		}, mpi.WithDeadline(time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		return rep.MaxVirtualTime
	}
	var tPrefix, tCounter float64
	for i := 0; i < b.N; i++ {
		tPrefix += run(false)
		tCounter += run(true)
	}
	b.ReportMetric(tPrefix*1e3/float64(b.N), "prefix-sum-ms/op")
	b.ReportMetric(tCounter*1e3/float64(b.N), "atomic-counter-ms/op")
	if tCounter <= tPrefix {
		b.Fatalf("expected the atomic counter (%.3g) to cost more than precomputed displacements (%.3g)", tCounter, tPrefix)
	}
}

// BenchmarkAblationTieBreak shows why hashed tie-breaking matters
// (paper §III-A): on a path with adversarially ordered weights the
// locally-dominant cascade serializes into a cross-rank chain, while
// hashed ties on a uniform-weight path keep the round count flat.
func BenchmarkAblationTieBreak(b *testing.B) {
	const n, procs = 4000, 16
	// Adversarial: strictly increasing weights force a single chain from
	// the heavy end down.
	adv := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		adv.AddEdge(i, i+1, float64(i+1))
	}
	chain := adv.Build()
	uniform := gen.Path(n) // equal weights; hash breaks ties locally
	var chainRounds, uniformRounds int
	for i := 0; i < b.N; i++ {
		r1, err := matching.Run(chain, matching.Options{Procs: procs, Model: matching.NCL, Deadline: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := matching.Run(uniform, matching.Options{Procs: procs, Model: matching.NCL, Deadline: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		chainRounds, uniformRounds = r1.Rounds, r2.Rounds
	}
	b.ReportMetric(float64(chainRounds), "ordered-weights-rounds")
	b.ReportMetric(float64(uniformRounds), "hashed-ties-rounds")
	if chainRounds <= uniformRounds {
		b.Fatalf("expected ordered weights (%d rounds) to serialize beyond hashed ties (%d rounds)", chainRounds, uniformRounds)
	}
}

// BenchmarkAblationEagerReject compares the default Manne-Bisseling
// protocol against the paper's literal Algorithm 6 (reject-on-sight):
// eager rejection can trade matching weight for fewer rounds.
func BenchmarkAblationEagerReject(b *testing.B) {
	g := gen.Social(20000, 10, 9)
	ld := matching.Serial(g).Weight
	var tMB, tEager, wEager float64
	for i := 0; i < b.N; i++ {
		r1, err := matching.Run(g, matching.Options{Procs: 16, Model: matching.NCL, Deadline: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := matching.Run(g, matching.Options{Procs: 16, Model: matching.NCL, EagerReject: true, Deadline: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		tMB += r1.Report.MaxVirtualTime
		tEager += r2.Report.MaxVirtualTime
		wEager = r2.Weight
	}
	b.ReportMetric(tMB*1e3/float64(b.N), "manne-bisseling-ms/op")
	b.ReportMetric(tEager*1e3/float64(b.N), "eager-reject-ms/op")
	b.ReportMetric(100*wEager/ld, "eager-weight-pct")
}

// BenchmarkAblationCostSensitivity sweeps the neighborhood-collective
// per-neighbor cost to locate the NSR/NCL crossover on a dense-process-
// graph input — the calibration DESIGN.md documents.
func BenchmarkAblationCostSensitivity(b *testing.B) {
	g := gen.SBP(11200, 75, 12, 0.55, 10)
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.25, 1.0, 4.0} {
			cost := mpi.DefaultCostModel()
			cost.AlphaNbr *= f
			cost.AlphaNbrCall *= f
			res, err := matching.Run(g, matching.Options{Procs: 16, Model: matching.NCL, Cost: cost, Deadline: 5 * time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Report.MaxVirtualTime*1e3, "ncl-alpha-x"+trim(f)+"-ms")
			}
		}
	}
}

func trim(f float64) string {
	switch f {
	case 0.25:
		return "0.25"
	case 1.0:
		return "1"
	case 4.0:
		return "4"
	}
	return "?"
}

// BenchmarkEnergyModel exercises the Table VIII pipeline end to end.
func BenchmarkEnergyModel(b *testing.B) {
	g := gen.Social(16000, 10, 11)
	for i := 0; i < b.N; i++ {
		res, err := matching.Run(g, matching.Options{Procs: 16, Model: matching.NCL, Deadline: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		rep := metrics.DefaultEnergyModel().Evaluate(res.Report, nil)
		if rep.EnergyKJ <= 0 {
			b.Fatal("nonpositive energy")
		}
	}
}

// BenchmarkExtensionNonblockingNCL compares the paper's blocking
// neighborhood collectives against the pipelined nonblocking variant
// (model NCLI) this repository adds: double-buffered rounds hide
// transfer latency behind protocol processing.
func BenchmarkExtensionNonblockingNCL(b *testing.B) {
	g := gen.Social(30000, 10, 12)
	benchModels(b, g, 16, []matching.Model{matching.NCL, matching.NCLI})
}

// BenchmarkExtensionColoring exercises the second owner-computes
// application (Jones-Plassmann coloring) under the three primary models.
func BenchmarkExtensionColoring(b *testing.B) {
	g := gen.Social(12000, 10, 13)
	models := []matching.Model{matching.NSR, matching.RMA, matching.NCL}
	sums := make([]float64, len(models))
	for i := 0; i < b.N; i++ {
		for k, m := range models {
			res, err := coloring.Run(g, coloring.Options{Procs: 16, Model: m, Deadline: 5 * time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			sums[k] += res.Report.MaxVirtualTime
		}
	}
	for k, m := range models {
		b.ReportMetric(sums[k]*1e3/float64(b.N), m.String()+"-ms/op")
	}
}
